(* Benchmark harness.

   Usage:
     main.exe                    run every paper experiment + microbenchmarks
     main.exe fig5 fig7 ...      run selected experiments
     main.exe micro              run only the Bechamel microbenchmarks
     main.exe all --quick       shrink workloads (smoke mode)
     main.exe ... --json        also write BENCH_micro.json (name -> ns/run)

   Experiment output is the paper-shaped table for each figure/section of
   the evaluation (see DESIGN.md's per-experiment index). *)

module Experiments = Rw_workload.Experiments

(* --- Bechamel microbenchmarks of the core primitives --- *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Page = Rw_storage.Page
  module Page_id = Rw_storage.Page_id
  module Lsn = Rw_storage.Lsn
  module Media = Rw_storage.Media
  module Sim_clock = Rw_storage.Sim_clock
  module Slotted_page = Rw_storage.Slotted_page
  module Log_manager = Rw_wal.Log_manager
  module Log_record = Rw_wal.Log_record

  let test_slotted_insert =
    Test.make ~name:"slotted_page insert+delete"
      (Staged.stage (fun () ->
           let p = Page.create ~id:(Page_id.of_int 0) ~typ:Page.Heap in
           for i = 0 to 19 do
             Slotted_page.insert p ~at:i "0123456789abcdef"
           done;
           for _ = 0 to 19 do
             Slotted_page.delete p ~at:0
           done))

  let test_crc32 =
    let page = Page.create ~id:(Page_id.of_int 0) ~typ:Page.Heap in
    Test.make ~name:"crc32 of one 8KiB page" (Staged.stage (fun () -> Page.seal page))

  let test_log_append =
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram () in
    let record =
      Log_record.make
        (Log_record.Page_op
           {
             page = Page_id.of_int 1;
             prev_page_lsn = Lsn.nil;
             op = Log_record.Insert_row { slot = 0; row = String.make 64 'r' };
           })
    in
    Test.make ~name:"log append (64B row record)"
      (Staged.stage (fun () -> ignore (Log_manager.append log record)))

  let test_record_codec =
    let record =
      Log_record.make
        (Log_record.Page_op
           {
             page = Page_id.of_int 1;
             prev_page_lsn = Lsn.of_int 123;
             op =
               Log_record.Update_row
                 { slot = 3; before = String.make 60 'b'; after = String.make 60 'a' };
           })
    in
    let encoded = Log_record.encode record in
    Test.make ~name:"log record encode+decode"
      (Staged.stage (fun () -> ignore (Log_record.decode encoded = record)))

  (* One page with a 400-modification history; each run rewinds a copy of
     the final image all the way back. *)
  let prepare_env () =
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram ~cache_blocks:4096 () in
    let pid = Page_id.of_int 0 in
    let page = Page.create ~id:pid ~typ:Page.Heap in
    let append op =
      let prev = Page.lsn page in
      let lsn =
        Log_manager.append log
          (Log_record.make (Log_record.Page_op { page = pid; prev_page_lsn = prev; op }))
      in
      Log_record.redo pid op page;
      Page.set_lsn page lsn
    in
    append (Log_record.Format { typ = Page.Heap; level = 0 });
    for i = 1 to 400 do
      if i mod 3 = 0 && Slotted_page.count page > 0 then
        append (Log_record.Delete_row { slot = 0; row = Slotted_page.get page ~at:0 })
      else append (Log_record.Insert_row { slot = 0; row = Printf.sprintf "row-%04d" i })
    done;
    (log, page)

  let test_prepare_page =
    let log, page = prepare_env () in
    Test.make ~name:"prepare_page_as_of (400-op rewind)"
      (Staged.stage (fun () ->
           let copy = Page.copy page in
           ignore (Rw_core.Page_undo.prepare_page_as_of ~log ~page:copy ~as_of:(Lsn.of_int 1))))

  (* The record-at-a-time reference walk over the same history: the gap
     between this row and the one above is what the chain index + decoded
     record cache buy. *)
  let test_prepare_page_walk =
    let log, page = prepare_env () in
    Test.make ~name:"prepare_page_as_of_walk (400-op rewind)"
      (Staged.stage (fun () ->
           let copy = Page.copy page in
           ignore (Rw_core.Page_undo.prepare_page_as_of_walk ~log ~page:copy ~as_of:(Lsn.of_int 1))))

  let tests =
    Test.make_grouped ~name:"core-primitives"
      [
        test_slotted_insert;
        test_crc32;
        test_log_append;
        test_record_codec;
        test_prepare_page;
        test_prepare_page_walk;
      ]

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let write_json ~path rows =
    let oc = open_out path in
    output_string oc "{\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  \"%s\": %s%s\n" (json_escape name)
          (if Float.is_nan ns then "null" else Printf.sprintf "%.2f" ns)
          (if i < List.length rows - 1 then "," else ""))
      rows;
    output_string oc "}\n";
    close_out oc;
    Printf.printf "wrote %s (%d benchmarks, ns/run)\n" path (List.length rows)

  let run ?(json = false) () =
    print_endline "\n=== Microbenchmarks (Bechamel, real time) ===";
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun name v acc ->
          let est = match Analyze.OLS.estimates v with Some (t :: _) -> t | _ -> nan in
          (name, est) :: acc)
        results []
      |> List.sort compare
    in
    Printf.printf "%-55s %15s\n" "benchmark" "time/run";
    List.iter
      (fun (name, ns) ->
        let pretty =
          if Float.is_nan ns then "n/a"
          else if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
          else if ns < 1_000_000.0 then Printf.sprintf "%.2f us" (ns /. 1_000.0)
          else Printf.sprintf "%.2f ms" (ns /. 1_000_000.0)
        in
        Printf.printf "%-55s %15s\n" name pretty)
      rows;
    if json then write_json ~path:"BENCH_micro.json" rows;
    print_newline ()
end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--json") args in
  let run_micro () = Micro.run ~json () in
  match args with
  | [] | [ "all" ] ->
      Experiments.run_all ~quick ();
      (* The full run always leaves a machine-readable perf trail. *)
      Micro.run ~json:true ()
  | names ->
      List.iter
        (fun arg ->
          match arg with
          | "micro" -> run_micro ()
          | _ -> (
              match Experiments.of_string arg with
              | Some fig -> Experiments.run ~quick fig
              | None ->
                  Printf.eprintf
                    "unknown experiment %S (expected: fig5..fig11, sec6_3, sec6_4, ablation, \
                     micro, all)\n"
                    arg;
                  exit 2))
        names
