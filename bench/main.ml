(* Benchmark harness.

   Usage:
     main.exe                    run every paper experiment + microbenchmarks
     main.exe fig5 fig7 ...      run selected experiments
     main.exe micro              run only the Bechamel microbenchmarks
     main.exe all --quick       shrink workloads (smoke mode)
     main.exe ... --json        also write BENCH_micro.json (name -> ns/run)

   Experiment output is the paper-shaped table for each figure/section of
   the evaluation (see DESIGN.md's per-experiment index). *)

module Experiments = Rw_workload.Experiments

(* --- Bechamel microbenchmarks of the core primitives --- *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Page = Rw_storage.Page
  module Page_id = Rw_storage.Page_id
  module Lsn = Rw_storage.Lsn
  module Media = Rw_storage.Media
  module Sim_clock = Rw_storage.Sim_clock
  module Slotted_page = Rw_storage.Slotted_page
  module Checksum = Rw_storage.Checksum
  module Disk = Rw_storage.Disk
  module Log_manager = Rw_wal.Log_manager
  module Log_record = Rw_wal.Log_record
  module Buffer_pool = Rw_buffer.Buffer_pool
  module Lock_manager = Rw_txn.Lock_manager
  module Txn_manager = Rw_txn.Txn_manager

  let test_slotted_insert =
    Test.make ~name:"slotted_page insert+delete"
      (Staged.stage (fun () ->
           let p = Page.create ~id:(Page_id.of_int 0) ~typ:Page.Heap in
           for i = 0 to 19 do
             Slotted_page.insert p ~at:i "0123456789abcdef"
           done;
           for _ = 0 to 19 do
             Slotted_page.delete p ~at:0
           done))

  let crc_buf =
    let b = Bytes.create Page.page_size in
    for i = 0 to Page.page_size - 1 do
      Bytes.set b i (Char.chr (i * 31 land 0xff))
    done;
    b

  let test_crc32 =
    Test.make ~name:"crc32 of one 8KiB page"
      (Staged.stage (fun () -> ignore (Checksum.crc32 crc_buf ~pos:0 ~len:Page.page_size)))

  (* The pre-overhaul one-byte-at-a-time kernel: the gap to the row above is
     what slicing-by-8 + dual streams buy. *)
  let test_crc32_bytewise =
    Test.make ~name:"crc32 bytewise reference (8KiB page)"
      (Staged.stage (fun () ->
           ignore (Checksum.crc32_bytewise crc_buf ~pos:0 ~len:Page.page_size)))

  (* Commit throughput at increasing group-commit batch sizes.  One run =
     [batch] transactions (begin, one 64B row op, commit) and exactly one
     priced log flush, so ns/run divided by [batch] is the per-commit cost. *)
  let test_group_commit ~batch =
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram () in
    let locks = Lock_manager.create () in
    let txns = Txn_manager.create ~log ~locks in
    if batch > 1 then
      Txn_manager.set_group_commit txns ~max_batch_bytes:max_int ~max_delay_us:infinity;
    Test.make ~name:(Printf.sprintf "group commit (%d txns/flush)" batch)
      (Staged.stage (fun () ->
           for _ = 1 to batch do
             let txn = Txn_manager.begin_txn txns in
             ignore
               (Txn_manager.log_page_op txns txn ~page:(Page_id.of_int 1)
                  ~prev_page_lsn:Lsn.nil
                  (Log_record.Insert_row { slot = 0; row = String.make 64 'r' }));
             ignore (Txn_manager.commit_begin txns txn ~wall_us:0.0);
             Txn_manager.finished txns txn
           done;
           ignore (Txn_manager.flush_commits txns)))

  (* Same commit path with the trace collector enabled: the gap between
     this row and the trace-off row above is the instrumentation overhead
     (ring-buffer pushes for flush spans and group-ack instants).  With
     tracing off the instrumentation is one load+branch per site, which is
     what the ci.sh regression guard on the row above holds to <= 25%. *)
  let test_group_commit_traced ~batch =
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram () in
    let locks = Lock_manager.create () in
    let txns = Txn_manager.create ~log ~locks in
    if batch > 1 then
      Txn_manager.set_group_commit txns ~max_batch_bytes:max_int ~max_delay_us:infinity;
    Rw_obs.Trace.install_clock (fun () -> Sim_clock.now_us clock);
    Test.make ~name:(Printf.sprintf "group commit (%d txns/flush, trace on)" batch)
      (Staged.stage (fun () ->
           Rw_obs.Trace.enable ();
           for _ = 1 to batch do
             let txn = Txn_manager.begin_txn txns in
             ignore
               (Txn_manager.log_page_op txns txn ~page:(Page_id.of_int 1)
                  ~prev_page_lsn:Lsn.nil
                  (Log_record.Insert_row { slot = 0; row = String.make 64 'r' }));
             ignore (Txn_manager.commit_begin txns txn ~wall_us:0.0);
             Txn_manager.finished txns txn
           done;
           ignore (Txn_manager.flush_commits txns);
           Rw_obs.Trace.disable ()))

  (* Sorted checkpoint flush: dirty a contiguous range of pages, write them
     back as one run (one seek, the rest sequential). *)
  let test_checkpoint_flush =
    let pages = 64 in
    let clock = Sim_clock.create () in
    let disk = Disk.create ~clock ~media:Media.ram () in
    for i = 0 to pages - 1 do
      let pid = Page_id.of_int i in
      let p = Page.create ~id:pid ~typ:Page.Heap in
      Page.seal p;
      Disk.write_page_nocost disk pid p
    done;
    let log = Log_manager.create ~clock ~media:Media.ram () in
    let pool =
      Buffer_pool.create ~capacity:(2 * pages) ~source:(Buffer_pool.of_disk disk)
        ~wal_flush:(fun lsn -> Log_manager.flush log ~upto:lsn)
        ()
    in
    Test.make ~name:(Printf.sprintf "checkpoint flush (%d dirty pages)" pages)
      (Staged.stage (fun () ->
           for i = 0 to pages - 1 do
             let f = Buffer_pool.fetch pool (Page_id.of_int i) in
             Buffer_pool.mark_dirty pool f ~lsn:(Page.lsn (Buffer_pool.page f));
             Buffer_pool.unpin pool f
           done;
           Buffer_pool.flush_all pool))

  let test_log_append =
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram () in
    let record =
      Log_record.make
        (Log_record.Page_op
           {
             page = Page_id.of_int 1;
             prev_page_lsn = Lsn.nil;
             op = Log_record.Insert_row { slot = 0; row = String.make 64 'r' };
           })
    in
    Test.make ~name:"log append (64B row record)"
      (Staged.stage (fun () -> ignore (Log_manager.append log record)))

  (* The same append against 4 KiB segments, so the run crosses seal
     boundaries every ~45 records.  Retention truncation every few
     segments keeps the log's resident footprint flat across the many
     Bechamel iterations — the amortized cost of sealing, spilling and
     O(1) segment drops is folded into this row. *)
  let test_log_append_sealing =
    let seg_bytes = 4096 in
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram ~segment_bytes:seg_bytes () in
    let record =
      Log_record.make
        (Log_record.Page_op
           {
             page = Page_id.of_int 1;
             prev_page_lsn = Lsn.nil;
             op = Log_record.Insert_row { slot = 0; row = String.make 64 'r' };
           })
    in
    Test.make ~name:"log append with sealing (4KiB segments)"
      (Staged.stage (fun () ->
           ignore (Log_manager.append log record);
           if Log_manager.segment_count log > 8 then begin
             Log_manager.flush_all log;
             Log_manager.truncate_before log
               (Lsn.of_int (Lsn.to_int (Log_manager.end_lsn log) - (4 * seg_bytes)))
           end))

  (* O(1) retention truncation: fill four 1 KiB segments, then drop them
     all with one [truncate_before].  The refill is part of the measured
     run (the log must be regrown every iteration), so read this row as
     "append 4 segments + drop 4 segments", not truncation alone — the
     point it guards is that the drop stays cheap as segments seal. *)
  let test_log_truncate_segments =
    let clock = Sim_clock.create () in
    let log = Log_manager.create ~clock ~media:Media.ram ~segment_bytes:1024 () in
    let record =
      Log_record.make
        (Log_record.Page_op
           {
             page = Page_id.of_int 1;
             prev_page_lsn = Lsn.nil;
             op = Log_record.Insert_row { slot = 0; row = String.make 64 'r' };
           })
    in
    Test.make ~name:"log truncate (drop 4 segments)"
      (Staged.stage (fun () ->
           while Log_manager.segment_count log < 5 do
             ignore (Log_manager.append log record)
           done;
           Log_manager.flush_all log;
           Log_manager.truncate_before log (Log_manager.end_lsn log)))

  let test_record_codec =
    let record =
      Log_record.make
        (Log_record.Page_op
           {
             page = Page_id.of_int 1;
             prev_page_lsn = Lsn.of_int 123;
             op =
               Log_record.Update_row
                 { slot = 3; before = String.make 60 'b'; after = String.make 60 'a' };
           })
    in
    let encoded = Log_record.encode record in
    Test.make ~name:"log record encode+decode"
      (Staged.stage (fun () -> ignore (Log_record.decode encoded = record)))

  (* One page with a 400-modification history; each run rewinds a copy of
     the final image all the way back. *)
  let prepare_env
      ?(mk_log = fun clock -> Log_manager.create ~clock ~media:Media.ram ~cache_blocks:4096 ())
      () =
    let clock = Sim_clock.create () in
    let log = mk_log clock in
    let pid = Page_id.of_int 0 in
    let page = Page.create ~id:pid ~typ:Page.Heap in
    let append op =
      let prev = Page.lsn page in
      let lsn =
        Log_manager.append log
          (Log_record.make (Log_record.Page_op { page = pid; prev_page_lsn = prev; op }))
      in
      Log_record.redo pid op page;
      Page.set_lsn page lsn
    in
    append (Log_record.Format { typ = Page.Heap; level = 0 });
    for i = 1 to 400 do
      if i mod 3 = 0 && Slotted_page.count page > 0 then
        append (Log_record.Delete_row { slot = 0; row = Slotted_page.get page ~at:0 })
      else append (Log_record.Insert_row { slot = 0; row = Printf.sprintf "row-%04d" i })
    done;
    (log, page)

  let test_prepare_page =
    let log, page = prepare_env () in
    Test.make ~name:"prepare_page_as_of (400-op rewind)"
      (Staged.stage (fun () ->
           let copy = Page.copy page in
           ignore (Rw_core.Page_undo.prepare_page_as_of ~log ~page:copy ~as_of:(Lsn.of_int 1))))

  (* The same 400-op rewind with the history sealed into 4 KiB segments
     behind a deliberately starved cache hierarchy (two 256 B cache
     blocks, a 64 B record cache), so every run re-faults the chain from
     spilled segments — the cold end of the segment tier.  ci.sh holds
     this row to the same 25% budget as the warm row above. *)
  let test_prepare_page_cold =
    let log, page =
      prepare_env
        ~mk_log:(fun clock ->
          Log_manager.create ~clock ~media:Media.ram ~cache_blocks:2 ~block_bytes:256
            ~record_cache_bytes:64 ~segment_bytes:4096 ())
        ()
    in
    Test.make ~name:"prepare_page_as_of (cold segment)"
      (Staged.stage (fun () ->
           let copy = Page.copy page in
           ignore (Rw_core.Page_undo.prepare_page_as_of ~log ~page:copy ~as_of:(Lsn.of_int 1))))

  (* A second overlapping snapshot at the same SplitLSN: the 400-op chain
     rewind above collapses to a prepared-page cache probe plus one page
     copy.  ci.sh guards this row; the gap to the full-rewind row is what
     the shared cache buys concurrent readers (ISSUE 6 / E8). *)
  let test_prepare_page_shared =
    let log, page = prepare_env () in
    let cache = Rw_core.Prepared_cache.create ~log () in
    let image = Page.copy page in
    ignore (Rw_core.Page_undo.prepare_page_as_of ~log ~page:image ~as_of:(Lsn.of_int 1));
    Rw_core.Prepared_cache.add cache (Page_id.of_int 0) ~as_of:(Lsn.of_int 1) image;
    Test.make ~name:"prepare_page_as_of (shared-cache hit)"
      (Staged.stage (fun () ->
           match Rw_core.Prepared_cache.find cache (Page_id.of_int 0) ~split:(Lsn.of_int 1) with
           | Rw_core.Prepared_cache.Exact _ -> ()
           | _ -> assert false))

  (* One writer transaction at the E8 operating point: a small TPC-C
     database with 8 as-of reader sessions open (each pinning its own
     snapshot at a staggered SplitLSN).  Prices what one writer txn costs
     next to a reader fleet — the numerator of the E8 tpmC curve. *)
  let test_e8_writer_txn =
    let module Tpcc = Rw_workload.Tpcc in
    let module Engine = Rw_engine.Engine in
    let module Database = Rw_engine.Database in
    let module Session_manager = Rw_session.Session_manager in
    let eng = Engine.create ~media:Media.ram () in
    let db = Engine.create_database eng ~pool_capacity:1024 "tpcc" in
    let cfg = Tpcc.small_config in
    Tpcc.load db cfg;
    ignore (Database.checkpoint db);
    let drv = Tpcc.create db cfg in
    let t0 = Engine.now_us eng in
    ignore (Tpcc.run_mix drv ~txns:150);
    let t1 = Engine.now_us eng in
    let sm = Session_manager.create db in
    for i = 0 to 7 do
      let frac = 0.10 +. (0.50 *. float_of_int i /. 7.0) in
      ignore
        (Session_manager.open_reader sm
           ~name:(Printf.sprintf "bench_rd_%d" i)
           ~wall_us:(t1 -. (frac *. (t1 -. t0)))
           ~step:(fun _ -> ()))
    done;
    Test.make ~name:"e8 writer txn (8 readers)"
      (Staged.stage (fun () -> ignore (Tpcc.run_mix drv ~txns:1)))

  (* The record-at-a-time reference walk over the same history: the gap
     between this row and the one above is what the chain index + decoded
     record cache buy. *)
  let test_prepare_page_walk =
    let log, page = prepare_env () in
    Test.make ~name:"prepare_page_as_of_walk (400-op rewind)"
      (Staged.stage (fun () ->
           let copy = Page.copy page in
           ignore (Rw_core.Page_undo.prepare_page_as_of_walk ~log ~page:copy ~as_of:(Lsn.of_int 1))))

  (* Rebuilding the same page purely from its log chain — the medium-
     recovery path taken when a fetch fails its checksum.  Replays the
     whole history forward from the Format base record. *)
  let test_page_repair =
    let log, _page = prepare_env () in
    Test.make ~name:"page_repair rebuild (400-op chain)"
      (Staged.stage (fun () ->
           ignore (Rw_recovery.Page_repair.rebuild ~log (Page_id.of_int 0))))

  (* Restart recovery at a fixed operating point: a database whose log
     carries a few thousand committed update records past its last
     checkpoint, written in stride order so consecutive records land on
     different pages, and a buffer pool smaller than the redo working set
     — the realistic restart regime (an OLTP tail interleaves pages, and a
     cold pool does not hold the working set).  The analysis-only row
     prices what instant restart pays before the engine opens.  The
     full-replay row adds record-at-a-time redo, which re-fetches (and
     evicts) pages as the log interleaves them; the parallel row's
     page-partitioned redo groups each page's records and touches every
     page once per batch, which is where its win comes from even before
     any domain fan-out (worker domains are capped at the core count).
     Each run restores the on-disk pages to their checkpoint state first —
     redo is idempotent, so without the restore later iterations would
     measure a no-op replay against already-recovered pages. *)
  let recovery_env =
    lazy
      (let module Database = Rw_engine.Database in
       let module Row = Rw_engine.Row in
       let module Schema = Rw_catalog.Schema in
       let clock = Sim_clock.create () in
       let db =
         Database.create ~name:"bench_rec" ~clock ~media:Media.ram ~pool_capacity:48
           ~checkpoint_interval_us:1e15 ()
       in
       let cols =
         [
           { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text };
         ]
       in
       let payload r i = Printf.sprintf "%04d-%06d-%s" r i (String.make 110 'x') in
       Database.with_txn db (fun txn ->
           ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
           for i = 1 to 1600 do
             Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload 0 i) ]
           done);
       ignore (Database.checkpoint db);
       for r = 1 to 4 do
         Database.with_txn db (fun txn ->
             for j = 0 to 1599 do
               let i = (j * 37 mod 1600) + 1 in
               Database.update db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload r i) ]
             done)
       done;
       Log_manager.flush_all (Database.log db);
       let disk = Database.disk db in
       let pool = Database.pool db in
       Buffer_pool.flush_all pool;
       let baseline = ref [] in
       for i = 0 to Disk.page_count disk - 1 do
         let pid = Page_id.of_int i in
         if Disk.has_page disk pid then
           baseline := (pid, Page.copy (Disk.read_page_nocost disk pid)) :: !baseline
       done;
       let restore () =
         Buffer_pool.drop_all pool;
         List.iter (fun (pid, p) -> Disk.write_page_nocost disk pid (Page.copy p)) !baseline
       in
       (Database.log db, pool, restore))

  let test_recovery_analysis =
    Test.make ~name:"recovery-analysis-only"
      (Staged.stage (fun () ->
           let log, _pool, _restore = Lazy.force recovery_env in
           ignore
             (Rw_recovery.Recovery.analyze ~log
                ~start:(Log_manager.last_checkpoint log)
                ~upto:(Log_manager.end_lsn log))))

  let test_recovery_full ~domains =
    let name = if domains = 1 then "recovery-full-replay" else "recovery-parallel-redo-4" in
    Test.make ~name
      (Staged.stage (fun () ->
           let log, pool, restore = Lazy.force recovery_env in
           restore ();
           ignore (Rw_recovery.Recovery.recover ~redo_domains:domains ~log ~pool ())))

  (* Replica catch-up apply rate: the continuous redo a log-shipping
     replica runs on every ingested shipment.  The env bootstraps a
     replica from the primary's checkpoint (save/load), writes more
     history on the primary, and ships it into the replica's log WITHOUT
     applying; each run resets the replica's pages to the bootstrap
     images and replays the whole shipped backlog with partition-parallel
     redo — the apply path of [Rw_repl.Replica.ingest] at a fixed
     operating point. *)
  let replica_env =
    lazy
      (let module Database = Rw_engine.Database in
       let module Row = Rw_engine.Row in
       let module Schema = Rw_catalog.Schema in
       let clock = Sim_clock.create () in
       let db =
         Database.create ~name:"bench_repl_prim" ~clock ~media:Media.ram ~pool_capacity:48
           ~checkpoint_interval_us:1e15 ()
       in
       let cols =
         [
           { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text };
         ]
       in
       let payload r i = Printf.sprintf "%04d-%06d-%s" r i (String.make 110 'x') in
       Database.with_txn db (fun txn ->
           ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
           for i = 1 to 1600 do
             Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload 0 i) ]
           done);
       ignore (Database.checkpoint db);
       let path = Filename.temp_file "bench_replica" ".db" in
       Database.save db ~path;
       let rdb = Database.load ~clock ~media:Media.ram ~path () in
       Sys.remove path;
       for r = 1 to 4 do
         Database.with_txn db (fun txn ->
             for j = 0 to 1599 do
               let i = (j * 37 mod 1600) + 1 in
               Database.update db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload r i) ]
             done)
       done;
       Log_manager.flush_all (Database.log db);
       let rlog = Database.log rdb in
       let from = Log_manager.end_lsn rlog in
       let rec pump lsn =
         match Log_manager.export_from (Database.log db) ~from:lsn with
         | None -> ()
         | Some ex ->
             ignore (Log_manager.ingest_entries rlog ex.Log_manager.ex_entries);
             pump ex.Log_manager.ex_next
       in
       pump from;
       let rdisk = Database.disk rdb in
       let rpool = Database.pool rdb in
       Buffer_pool.flush_all rpool;
       let baseline = ref [] in
       for i = 0 to Disk.page_count rdisk - 1 do
         let pid = Page_id.of_int i in
         if Disk.has_page rdisk pid then
           baseline := (pid, Page.copy (Disk.read_page_nocost rdisk pid)) :: !baseline
       done;
       let restore () =
         Buffer_pool.drop_all rpool;
         List.iter (fun (pid, p) -> Disk.write_page_nocost rdisk pid (Page.copy p)) !baseline
       in
       (rlog, rpool, from, Log_manager.end_lsn rlog, restore))

  (* What-if selective undo at a fixed operating point: a 64-transaction
     single-table history whose first half chains through shared pages
     and whose second half writes private pages.  The graph-build row
     prices the append-time-index path (no log scan); the replay rows
     price the non-mutating target computation ([Selective.preview]) for
     a mid-history victim — selective replay touches only the victim's
     dependent set, the full-rewind baseline recomputes every later
     transaction, and the gap between the two rows is e11's claim at
     microbenchmark scale. *)
  let whatif_env =
    lazy
      (let module Database = Rw_engine.Database in
       let module Row = Rw_engine.Row in
       let module Schema = Rw_catalog.Schema in
       let clock = Sim_clock.create () in
       let db = Database.create ~name:"bench_whatif" ~clock ~media:Media.ram () in
       let cols =
         [
           { Schema.name = "k"; ctype = Schema.Int }; { Schema.name = "v"; ctype = Schema.Text };
         ]
       in
       let value r k =
         let head = Printf.sprintf "r%03d-k%03d-" r k in
         head ^ String.make (600 - String.length head) 'x'
       in
       (* 600 B rows: keys 20 apart land on distinct leaves, so the
          page-level dependency structure is the one constructed here. *)
       Database.with_txn db (fun txn ->
           ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
           for k = 0 to 199 do
             Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int k); Row.Text (value 0 k) ]
           done);
       ignore (Database.checkpoint db);
       let history = 64 and chain = 32 in
       let graph0 = Rw_whatif.Dep_graph.build ~log:(Database.log db) in
       let base_nodes = Rw_whatif.Dep_graph.node_count graph0 in
       for i = 1 to history do
         let keys = if i <= chain then [ 0; 20 ] else [ 40 + (20 * ((i - chain) mod 8)) ] in
         Database.with_txn db (fun txn ->
             List.iter
               (fun k ->
                 Database.update db txn ~table:"t" [ Row.Int (Int64.of_int k); Row.Text (value i k) ])
               keys)
       done;
       let log = Database.log db in
       let graph = Rw_whatif.Dep_graph.build ~log in
       let victim =
         (List.nth (Rw_whatif.Dep_graph.nodes graph) (base_nodes + 4)).Rw_whatif.Dep_graph.txn
       in
       (Database.ctx db, log, graph, victim))

  let test_dep_graph_build =
    Test.make ~name:"dep-graph-build (64-txn history)"
      (Staged.stage (fun () ->
           let _ctx, log, _graph, _victim = Lazy.force whatif_env in
           ignore (Rw_whatif.Dep_graph.build ~log)))

  let test_selective_replay =
    Test.make ~name:"selective-replay-vs-full-rewind: selective"
      (Staged.stage (fun () ->
           let ctx, log, graph, victim = Lazy.force whatif_env in
           match Rw_whatif.Selective.preview ~ctx ~log ~graph ~victim () with
           | Ok _ -> ()
           | Error _ -> assert false))

  let test_full_rewind =
    Test.make ~name:"selective-replay-vs-full-rewind: full baseline"
      (Staged.stage (fun () ->
           let ctx, log, graph, victim = Lazy.force whatif_env in
           match
             Rw_whatif.Selective.preview ~ctx ~log ~graph ~victim
               ~scope:Rw_whatif.Selective.All_successors ()
           with
           | Ok _ -> ()
           | Error _ -> assert false))

  let test_replica_catchup =
    Test.make ~name:"replica-catchup-apply (parallel redo)"
      (Staged.stage (fun () ->
           let log, pool, from, upto, restore = Lazy.force replica_env in
           restore ();
           ignore (Rw_recovery.Recovery.redo_range ~domains:4 ~log ~pool ~from ~upto ())))

  let tests =
    Test.make_grouped ~name:"core-primitives"
      [
        test_slotted_insert;
        test_crc32;
        test_crc32_bytewise;
        test_log_append;
        test_log_append_sealing;
        test_log_truncate_segments;
        test_record_codec;
        test_prepare_page;
        test_prepare_page_cold;
        test_prepare_page_shared;
        test_prepare_page_walk;
        test_e8_writer_txn;
        test_page_repair;
        test_recovery_analysis;
        test_recovery_full ~domains:1;
        test_recovery_full ~domains:4;
        test_replica_catchup;
        test_dep_graph_build;
        test_selective_replay;
        test_full_rewind;
        test_group_commit ~batch:1;
        test_group_commit ~batch:8;
        test_group_commit ~batch:64;
        test_group_commit_traced ~batch:8;
        test_checkpoint_flush;
      ]

  (* Batched as-of preparation at the cold-chain operating point: data and
     side files on RAM (so publish writes are free), log on SSD behind a
     deliberately starved block cache (two 256 B blocks) with 4 KiB
     spilled segments — every page's chain gather re-faults cold blocks at
     real random-read cost, the regime the staged pipeline overlaps.
     These rows report MODELED (simulated-clock) elapsed, not host time:
     the pipeline attributes each page's gather I/O to its round-robin
     partition and credits the clock down to the slowest partition, so the
     parallel row's win is the overlap model, byte-identical results
     guaranteed by the publish-stage determinism contract (test_pool.ml).
     ci.sh holds prepare_batch_as_of-parallel-4 to a 25% budget and
     requires it to beat prepare_batch_as_of-serial by >= 2x. *)
  let batch_env =
    lazy
      (let module Database = Rw_engine.Database in
       let module Row = Rw_engine.Row in
       let module Schema = Rw_catalog.Schema in
       let clock = Sim_clock.create () in
       let db =
         Database.create ~name:"bench_batch" ~clock ~media:Media.ram ~log_media:Media.ssd
           ~pool_capacity:256 ~log_cache_blocks:2 ~log_block_bytes:256 ~log_segment_bytes:4096
           ~checkpoint_interval_us:1e15 ()
       in
       let cols =
         [
           { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text };
         ]
       in
       let payload r i = Printf.sprintf "%04d-%06d-%s" r i (String.make 110 'x') in
       Database.with_txn db (fun txn ->
           ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
           for i = 1 to 1600 do
             Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload 0 i) ]
           done);
       ignore (Database.checkpoint db);
       (* The rewind target: just after load, so every data page unwinds
          the full update history below. *)
       let t_mid = Sim_clock.now_us clock in
       for r = 1 to 4 do
         Database.with_txn db (fun txn ->
             for j = 0 to 1599 do
               let i = (j * 37 mod 1600) + 1 in
               Database.update db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload r i) ]
             done)
       done;
       Log_manager.flush_all (Database.log db);
       let disk = Database.disk db in
       let pages = ref [] in
       for i = Disk.page_count disk - 1 downto 0 do
         let pid = Page_id.of_int i in
         if Disk.has_page disk pid then pages := pid :: !pages
       done;
       (db, t_mid, !pages))

  (* Modeled elapsed (sim-clock us) of one whole-database batched rewind at
     the given fan-out, on a fresh unshared snapshot so chain gathers stay
     cold and runs are independent. *)
  let measure_batch ~fanout =
    let module Database = Rw_engine.Database in
    let module Snap = Rw_core.As_of_snapshot in
    let db, t_mid, pages = Lazy.force batch_env in
    Fun.protect
      ~finally:(fun () -> Rw_pool.Domain_pool.set_fanout None)
      (fun () ->
        Rw_pool.Domain_pool.set_fanout (Some fanout);
        let clock = Database.clock db in
        let view =
          Database.create_as_of_snapshot ~shared:false db
            ~name:(Printf.sprintf "bench_batch_f%d" fanout)
            ~wall_us:t_mid
        in
        let snap = Option.get (Database.snapshot_handle view) in
        let t0 = Sim_clock.now_us clock in
        let n = Snap.materialize_batch snap pages in
        let dt = Sim_clock.now_us clock -. t0 in
        Snap.drop snap;
        (dt, n))

  let modeled_batch_rows () =
    let serial_us, pages = measure_batch ~fanout:1 in
    let parallel_us, _ = measure_batch ~fanout:4 in
    [
      ("prepare_batch_as_of-serial", serial_us *. 1_000.0);
      ("prepare_batch_as_of-parallel-4", parallel_us *. 1_000.0);
      (* Per-page modeled cost of the parallel batch on the cold-segment
         operating point — compare against the serial per-page
         "prepare_page_as_of (cold segment)" row above. *)
      ("cold-segment-parallel", parallel_us *. 1_000.0 /. float_of_int (max 1 pages));
    ]

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let write_json ~path rows =
    let oc = open_out path in
    output_string oc "{\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  \"%s\": %s%s\n" (json_escape name)
          (if Float.is_nan ns then "null" else Printf.sprintf "%.2f" ns)
          (if i < List.length rows - 1 then "," else ""))
      rows;
    output_string oc "}\n";
    close_out oc;
    Printf.printf "wrote %s (%d benchmarks, ns/run)\n" path (List.length rows)

  let run ?(json = false) () =
    print_endline "\n=== Microbenchmarks (Bechamel, real time) ===";
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun name v acc ->
          let est = match Analyze.OLS.estimates v with Some (t :: _) -> t | _ -> nan in
          (name, est) :: acc)
        results []
      |> List.sort compare
    in
    (* Modeled sim-clock rows for the staged batch pipeline ride along in
       the same table and JSON (units are still ns/run). *)
    let rows = rows @ modeled_batch_rows () in
    Printf.printf "%-55s %15s\n" "benchmark" "time/run";
    List.iter
      (fun (name, ns) ->
        let pretty =
          if Float.is_nan ns then "n/a"
          else if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
          else if ns < 1_000_000.0 then Printf.sprintf "%.2f us" (ns /. 1_000.0)
          else Printf.sprintf "%.2f ms" (ns /. 1_000_000.0)
        in
        Printf.printf "%-55s %15s\n" name pretty)
      rows;
    if json then write_json ~path:"BENCH_micro.json" rows;
    print_newline ()
end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--json") args in
  let run_micro () = Micro.run ~json () in
  match args with
  | [] | [ "all" ] ->
      Experiments.run_all ~quick ();
      (* The full run always leaves a machine-readable perf trail. *)
      Micro.run ~json:true ()
  | names ->
      List.iter
        (fun arg ->
          match arg with
          | "micro" -> run_micro ()
          | _ -> (
              match Experiments.of_string arg with
              | Some fig -> Experiments.run ~quick fig
              | None ->
                  Printf.eprintf
                    "unknown experiment %S (expected: fig5..fig11, sec6_3, sec6_4, e8..e12, \
                     ablation, faults, explain, segments, micro, all)\n"
                    arg;
                  exit 2))
        names
