type literal = Int_lit of int64 | Text_lit of string | Float_lit of float

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type condition = { column : string; op : comparison; value : literal }

type table_ref = { database : string option; table : string }

type aggregate = Count | Sum of string | Min of string | Max of string

type projection = Star | Count_star | Columns of string list | Aggregates of aggregate list

type select = {
  proj : projection;
  from : table_ref;
  where : condition list;
  order_by : (string * [ `Asc | `Desc ]) option;
  limit : int option;
}

type as_of_time = Absolute_s of float | Relative_s of float

type statement =
  | Create_table of { table : string; columns : (string * Rw_catalog.Schema.col_type) list }
  | Drop_table of string
  | Create_index of { name : string; table : table_ref; column : string }
  | Drop_index of { name : string; table : table_ref }
  | Insert of { into : table_ref; rows : literal list list }
  | Insert_select of { into : table_ref; select : select }
  | Select of select
  | Update of { table : table_ref; sets : (string * literal) list; where : condition list }
  | Delete of { from : table_ref; where : condition list }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Create_database of string
  | Create_snapshot of { name : string; of_ : string; as_of : as_of_time }
  | Drop_database of string
  | Alter_retention of { database : string; interval_s : float option }
  | Use of string
  | Show_tables
  | Show_databases
  | Show_history
  | Undo_transaction of int
  | Rewind_transaction of { txn : int; view : string option }
  | Checkpoint_stmt
  | Explain of select

let pp_literal fmt = function
  | Int_lit n -> Format.fprintf fmt "%Ld" n
  | Text_lit s -> Format.fprintf fmt "'%s'" s
  | Float_lit f -> Format.fprintf fmt "%g" f

let op_name = function Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_table_ref fmt { database; table } =
  match database with
  | Some db -> Format.fprintf fmt "%s.%s" db table
  | None -> Format.fprintf fmt "%s" table

let pp_statement fmt = function
  | Create_table { table; _ } -> Format.fprintf fmt "CREATE TABLE %s" table
  | Drop_table t -> Format.fprintf fmt "DROP TABLE %s" t
  | Create_index { name; table; column } ->
      Format.fprintf fmt "CREATE INDEX %s ON %a (%s)" name pp_table_ref table column
  | Drop_index { name; table } ->
      Format.fprintf fmt "DROP INDEX %s ON %a" name pp_table_ref table
  | Insert { into; rows } ->
      Format.fprintf fmt "INSERT INTO %a (%d rows)" pp_table_ref into (List.length rows)
  | Insert_select { into; select } ->
      Format.fprintf fmt "INSERT INTO %a SELECT FROM %a" pp_table_ref into pp_table_ref
        select.from
  | Select s ->
      Format.fprintf fmt "SELECT FROM %a" pp_table_ref s.from;
      List.iter
        (fun c -> Format.fprintf fmt " %s %s %a" c.column (op_name c.op) pp_literal c.value)
        s.where
  | Update { table; _ } -> Format.fprintf fmt "UPDATE %a" pp_table_ref table
  | Delete { from; _ } -> Format.fprintf fmt "DELETE FROM %a" pp_table_ref from
  | Begin_txn -> Format.fprintf fmt "BEGIN"
  | Commit_txn -> Format.fprintf fmt "COMMIT"
  | Rollback_txn -> Format.fprintf fmt "ROLLBACK"
  | Create_database d -> Format.fprintf fmt "CREATE DATABASE %s" d
  | Create_snapshot { name; of_; _ } ->
      Format.fprintf fmt "CREATE DATABASE %s AS SNAPSHOT OF %s" name of_
  | Drop_database d -> Format.fprintf fmt "DROP DATABASE %s" d
  | Alter_retention { database; _ } -> Format.fprintf fmt "ALTER DATABASE %s" database
  | Use d -> Format.fprintf fmt "USE %s" d
  | Show_tables -> Format.fprintf fmt "SHOW TABLES"
  | Show_databases -> Format.fprintf fmt "SHOW DATABASES"
  | Show_history -> Format.fprintf fmt "SHOW HISTORY"
  | Undo_transaction id -> Format.fprintf fmt "UNDO TRANSACTION %d" id
  | Rewind_transaction { txn; view = None } ->
      Format.fprintf fmt "REWIND TRANSACTION %d" txn
  | Rewind_transaction { txn; view = Some name } ->
      Format.fprintf fmt "REWIND TRANSACTION %d AS %s" txn name
  | Checkpoint_stmt -> Format.fprintf fmt "CHECKPOINT"
  | Explain s -> Format.fprintf fmt "EXPLAIN SELECT FROM %a" pp_table_ref s.from
