open Lexer

exception Parse_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { mutable tokens : token list }

let peek c = match c.tokens with [] -> None | t :: _ -> Some t

let advance c =
  match c.tokens with
  | [] -> error "unexpected end of statement"
  | t :: rest ->
      c.tokens <- rest;
      t

let expect c t =
  let got = advance c in
  if got <> t then error "unexpected token"

let kw_of c = match peek c with Some t -> keyword t | None -> None

let accept_kw c name =
  match kw_of c with
  | Some k when k = name ->
      ignore (advance c);
      true
  | _ -> false

let expect_kw c name = if not (accept_kw c name) then error "expected %s" name

let ident c =
  match advance c with
  | Ident s -> s
  | _ -> error "expected identifier"

let literal c : Ast.literal =
  match advance c with
  | Int_tok n -> Ast.Int_lit n
  | Float_tok f -> Ast.Float_lit f
  | String_tok s -> Ast.Text_lit s
  | Minus -> (
      match advance c with
      | Int_tok n -> Ast.Int_lit (Int64.neg n)
      | Float_tok f -> Ast.Float_lit (-.f)
      | _ -> error "expected number after '-'")
  | _ -> error "expected literal"

let table_ref c : Ast.table_ref =
  let first = ident c in
  match peek c with
  | Some Dot ->
      ignore (advance c);
      { Ast.database = Some first; table = ident c }
  | _ -> { Ast.database = None; table = first }

let comparison c : Ast.comparison =
  match advance c with
  | Eq_tok -> Ast.Eq
  | Ne_tok -> Ast.Ne
  | Lt_tok -> Ast.Lt
  | Le_tok -> Ast.Le
  | Gt_tok -> Ast.Gt
  | Ge_tok -> Ast.Ge
  | _ -> error "expected comparison operator"

let rec conditions c acc =
  let column = ident c in
  (* BETWEEN a AND b sugar. *)
  if accept_kw c "BETWEEN" then begin
    let lo = literal c in
    expect_kw c "AND";
    let hi = literal c in
    let acc =
      { Ast.column; op = Ast.Le; value = hi } :: { Ast.column; op = Ast.Ge; value = lo } :: acc
    in
    if accept_kw c "AND" then conditions c acc else List.rev acc
  end
  else begin
    let op = comparison c in
    let value = literal c in
    let acc = { Ast.column; op; value } :: acc in
    if accept_kw c "AND" then conditions c acc else List.rev acc
  end

let where_clause c = if accept_kw c "WHERE" then conditions c [] else []

let aggregate c : Ast.aggregate option =
  let arg_of kw make =
    if accept_kw c kw then begin
      expect c Lparen;
      let col = ident c in
      expect c Rparen;
      Some (make col)
    end
    else None
  in
  if kw_of c = Some "COUNT" then begin
    ignore (advance c);
    expect c Lparen;
    expect c Star_tok;
    expect c Rparen;
    Some Ast.Count
  end
  else
    match arg_of "SUM" (fun col -> Ast.Sum col) with
    | Some a -> Some a
    | None -> (
        match arg_of "MIN" (fun col -> Ast.Min col) with
        | Some a -> Some a
        | None -> arg_of "MAX" (fun col -> Ast.Max col))

let projection c : Ast.projection =
  match peek c with
  | Some Star_tok ->
      ignore (advance c);
      Ast.Star
  | _ -> (
      match aggregate c with
      | Some first ->
          let rec more acc =
            if peek c = Some Comma then begin
              ignore (advance c);
              match aggregate c with
              | Some a -> more (a :: acc)
              | None -> error "aggregates cannot be mixed with plain columns"
            end
            else List.rev acc
          in
          let aggs = more [ first ] in
          (match aggs with [ Ast.Count ] -> Ast.Count_star | _ -> Ast.Aggregates aggs)
      | None ->
          let rec cols acc =
            let col = ident c in
            if peek c = Some Comma then begin
              ignore (advance c);
              cols (col :: acc)
            end
            else List.rev (col :: acc)
          in
          Ast.Columns (cols []))

let select_body c : Ast.select =
  let proj = projection c in
  expect_kw c "FROM";
  let from = table_ref c in
  let where = where_clause c in
  let order_by =
    if accept_kw c "ORDER" then begin
      expect_kw c "BY";
      let col = ident c in
      let dir =
        if accept_kw c "DESC" then `Desc
        else begin
          ignore (accept_kw c "ASC");
          `Asc
        end
      in
      Some (col, dir)
    end
    else None
  in
  let limit =
    if accept_kw c "LIMIT" then
      match advance c with
      | Int_tok n when n >= 0L -> Some (Int64.to_int n)
      | _ -> error "expected a non-negative integer after LIMIT"
    else None
  in
  { Ast.proj; from; where; order_by; limit }

let col_type c =
  match kw_of c with
  | Some "INT" | Some "INTEGER" | Some "BIGINT" ->
      ignore (advance c);
      Rw_catalog.Schema.Int
  | Some "TEXT" | Some "VARCHAR" | Some "STRING" ->
      ignore (advance c);
      Rw_catalog.Schema.Text
  | _ -> error "expected column type (INT or TEXT)"

let column_defs c =
  expect c Lparen;
  let rec go acc =
    let name = ident c in
    let ty = col_type c in
    (* Tolerate and ignore PRIMARY KEY on the first column. *)
    if accept_kw c "PRIMARY" then expect_kw c "KEY";
    match advance c with
    | Comma -> go ((name, ty) :: acc)
    | Rparen -> List.rev ((name, ty) :: acc)
    | _ -> error "expected ',' or ')' in column list"
  in
  go []

let tuple c =
  expect c Lparen;
  let rec go acc =
    let v = literal c in
    match advance c with
    | Comma -> go (v :: acc)
    | Rparen -> List.rev (v :: acc)
    | _ -> error "expected ',' or ')' in VALUES tuple"
  in
  go []

let as_of_time c : Ast.as_of_time =
  let of_float f = if f < 0.0 then Ast.Relative_s (-.f) else Ast.Absolute_s f in
  match advance c with
  | Int_tok n -> of_float (Int64.to_float n)
  | Float_tok f -> of_float f
  | Minus -> (
      match advance c with
      | Int_tok n -> Ast.Relative_s (Int64.to_float n)
      | Float_tok f -> Ast.Relative_s f
      | _ -> error "expected number after '-'")
  | String_tok s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> of_float f
      | None -> error "cannot parse AS OF time %S (expected simulated seconds)" s)
  | _ -> error "expected AS OF time"

let interval_seconds c =
  let n =
    match advance c with
    | Int_tok n -> Int64.to_float n
    | Float_tok f -> f
    | _ -> error "expected retention interval"
  in
  match kw_of c with
  | Some ("SECOND" | "SECONDS") ->
      ignore (advance c);
      n
  | Some ("MINUTE" | "MINUTES") ->
      ignore (advance c);
      n *. 60.0
  | Some ("HOUR" | "HOURS") ->
      ignore (advance c);
      n *. 3600.0
  | _ -> n

let statement c : Ast.statement =
  match kw_of c with
  | Some "CREATE" -> (
      ignore (advance c);
      match kw_of c with
      | Some "TABLE" ->
          ignore (advance c);
          let table = ident c in
          let columns = column_defs c in
          Ast.Create_table { table; columns }
      | Some "INDEX" ->
          ignore (advance c);
          let name = ident c in
          expect_kw c "ON";
          let table = table_ref c in
          expect c Lparen;
          let column = ident c in
          expect c Rparen;
          Ast.Create_index { name; table; column }
      | Some "DATABASE" -> (
          ignore (advance c);
          let name = ident c in
          match kw_of c with
          | Some "AS" ->
              ignore (advance c);
              expect_kw c "SNAPSHOT";
              expect_kw c "OF";
              let of_ = ident c in
              expect_kw c "AS";
              expect_kw c "OF";
              let as_of = as_of_time c in
              Ast.Create_snapshot { name; of_; as_of }
          | _ -> Ast.Create_database name)
      | _ -> error "expected TABLE, INDEX or DATABASE after CREATE")
  | Some "DROP" -> (
      ignore (advance c);
      match kw_of c with
      | Some "TABLE" ->
          ignore (advance c);
          Ast.Drop_table (ident c)
      | Some "INDEX" ->
          ignore (advance c);
          let name = ident c in
          expect_kw c "ON";
          let table = table_ref c in
          Ast.Drop_index { name; table }
      | Some "DATABASE" ->
          ignore (advance c);
          Ast.Drop_database (ident c)
      | _ -> error "expected TABLE, INDEX or DATABASE after DROP")
  | Some "INSERT" ->
      ignore (advance c);
      expect_kw c "INTO";
      let into = table_ref c in
      if accept_kw c "VALUES" then begin
        let rec tuples acc =
          let t = tuple c in
          if peek c = Some Comma then begin
            ignore (advance c);
            tuples (t :: acc)
          end
          else List.rev (t :: acc)
        in
        Ast.Insert { into; rows = tuples [] }
      end
      else if accept_kw c "SELECT" then
        Ast.Insert_select { into; select = select_body c }
      else error "expected VALUES or SELECT after INSERT INTO"
  | Some "SELECT" ->
      ignore (advance c);
      Ast.Select (select_body c)
  | Some "EXPLAIN" ->
      ignore (advance c);
      expect_kw c "SELECT";
      Ast.Explain (select_body c)
  | Some "UPDATE" ->
      ignore (advance c);
      let table = table_ref c in
      expect_kw c "SET";
      let rec sets acc =
        let col = ident c in
        expect c Eq_tok;
        let v = literal c in
        if peek c = Some Comma then begin
          ignore (advance c);
          sets ((col, v) :: acc)
        end
        else List.rev ((col, v) :: acc)
      in
      let sets = sets [] in
      let where = where_clause c in
      Ast.Update { table; sets; where }
  | Some "DELETE" ->
      ignore (advance c);
      expect_kw c "FROM";
      let from = table_ref c in
      let where = where_clause c in
      Ast.Delete { from; where }
  | Some ("BEGIN" | "START") ->
      ignore (advance c);
      ignore (accept_kw c "TRANSACTION");
      Ast.Begin_txn
  | Some "COMMIT" ->
      ignore (advance c);
      Ast.Commit_txn
  | Some "ROLLBACK" ->
      ignore (advance c);
      Ast.Rollback_txn
  | Some "ALTER" ->
      ignore (advance c);
      expect_kw c "DATABASE";
      let database = ident c in
      expect_kw c "SET";
      expect_kw c "UNDO_INTERVAL";
      if peek c = Some Eq_tok then ignore (advance c);
      if accept_kw c "NONE" then Ast.Alter_retention { database; interval_s = None }
      else Ast.Alter_retention { database; interval_s = Some (interval_seconds c) }
  | Some "USE" ->
      ignore (advance c);
      Ast.Use (ident c)
  | Some "SHOW" -> (
      ignore (advance c);
      match kw_of c with
      | Some "TABLES" ->
          ignore (advance c);
          Ast.Show_tables
      | Some "DATABASES" ->
          ignore (advance c);
          Ast.Show_databases
      | Some "HISTORY" ->
          ignore (advance c);
          Ast.Show_history
      | _ -> error "expected TABLES, DATABASES or HISTORY after SHOW")
  | Some "UNDO" -> (
      ignore (advance c);
      expect_kw c "TRANSACTION";
      match advance c with
      | Int_tok n -> Ast.Undo_transaction (Int64.to_int n)
      | _ -> error "expected transaction id after UNDO TRANSACTION")
  | Some "REWIND" -> (
      ignore (advance c);
      expect_kw c "TRANSACTION";
      match advance c with
      | Int_tok n ->
          let txn = Int64.to_int n in
          if accept_kw c "AS" then Ast.Rewind_transaction { txn; view = Some (ident c) }
          else Ast.Rewind_transaction { txn; view = None }
      | _ -> error "expected transaction id after REWIND TRANSACTION")
  | Some "CHECKPOINT" ->
      ignore (advance c);
      Ast.Checkpoint_stmt
  | Some k -> error "unexpected keyword %s" k
  | None -> error "empty statement"

let parse input =
  let c = { tokens = tokenize input } in
  let stmt = statement c in
  (match peek c with
  | Some Semicolon -> (
      ignore (advance c);
      match peek c with None -> () | Some _ -> error "trailing tokens after ';'")
  | None -> ()
  | Some _ -> error "trailing tokens after statement");
  stmt

let parse_script input =
  let tokens = tokenize input in
  let rec split acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | Semicolon :: rest ->
        split (if current = [] then acc else List.rev current :: acc) [] rest
    | t :: rest -> split acc (t :: current) rest
  in
  let groups = split [] [] tokens in
  List.map
    (fun tokens ->
      let c = { tokens } in
      let stmt = statement c in
      match peek c with None -> stmt | Some _ -> error "trailing tokens in statement")
    groups
