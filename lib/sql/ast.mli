(** Abstract syntax of the SQL subset.

    Large enough to run the paper's user-facing scenario end to end —
    creating and dropping tables, DML, transactions, as-of snapshots
    ([CREATE DATABASE ... AS SNAPSHOT OF ... AS OF ...]), retention
    ([ALTER DATABASE ... SET UNDO_INTERVAL ...]) and the
    [INSERT ... SELECT] reconciliation step. *)

type literal = Int_lit of int64 | Text_lit of string | Float_lit of float

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type condition = { column : string; op : comparison; value : literal }
(** WHERE clauses are conjunctions of simple comparisons. *)

type table_ref = { database : string option; table : string }

type aggregate = Count | Sum of string | Min of string | Max of string

type projection =
  | Star
  | Count_star
  | Columns of string list
  | Aggregates of aggregate list

type select = {
  proj : projection;
  from : table_ref;
  where : condition list;  (** conjunction; empty = all rows *)
  order_by : (string * [ `Asc | `Desc ]) option;
  limit : int option;
}

type as_of_time =
  | Absolute_s of float  (** simulated seconds since engine start *)
  | Relative_s of float  (** seconds before now (positive number) *)

type statement =
  | Create_table of { table : string; columns : (string * Rw_catalog.Schema.col_type) list }
  | Drop_table of string
  | Create_index of { name : string; table : table_ref; column : string }
  | Drop_index of { name : string; table : table_ref }
  | Insert of { into : table_ref; rows : literal list list }
  | Insert_select of { into : table_ref; select : select }
  | Select of select
  | Update of { table : table_ref; sets : (string * literal) list; where : condition list }
  | Delete of { from : table_ref; where : condition list }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Create_database of string
  | Create_snapshot of { name : string; of_ : string; as_of : as_of_time }
  | Drop_database of string
  | Alter_retention of { database : string; interval_s : float option }
  | Use of string
  | Show_tables
  | Show_databases
  | Show_history
      (** committed transactions in the retained log (id, commit time,
          operation count) — the hunting ground for {!Undo_transaction} *)
  | Undo_transaction of int
      (** selectively compensate one committed transaction (paper §8) *)
  | Rewind_transaction of { txn : int; view : string option }
      (** remove one committed transaction {e and replay its dependents}
          ([Rw_whatif.Selective]): with [view = Some name] the
          victim-free state is published as a read-only what-if database
          named [name]; with [None] it is repaired in place *)
  | Checkpoint_stmt
  | Explain of select
      (** run the query and report its rewind cost — pages rewound,
          records undone, log bytes read (docs/OBSERVABILITY.md) *)

val pp_literal : Format.formatter -> literal -> unit
val pp_statement : Format.formatter -> statement -> unit
