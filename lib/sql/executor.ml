module Schema = Rw_catalog.Schema
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Io_stats = Rw_storage.Io_stats
module Buffer_pool = Rw_buffer.Buffer_pool
module As_of_snapshot = Rw_core.As_of_snapshot

type session = {
  eng : Engine.t;
  mutable current : string option;
  mutable txn : (Database.t * Database.txn) option;
}

type result =
  | Rows of { columns : string list; rows : Row.value list list }
  | Affected of int
  | Message of string

exception Sql_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

let create_session eng = { eng; current = None; txn = None }
let engine s = s.eng
let current_database s = s.current
let in_transaction s = s.txn <> None

let resolve_db s = function
  | Some name -> (
      match Engine.find_database s.eng name with
      | Some db -> db
      | None -> error "no such database: %s" name)
  | None -> (
      match s.current with
      | Some name -> (
          match Engine.find_database s.eng name with
          | Some db -> db
          | None -> error "current database %s no longer exists" name)
      | None -> error "no database selected (USE <db>)")

let resolve_table s (r : Ast.table_ref) =
  let db = resolve_db s r.Ast.database in
  match Database.table db r.Ast.table with
  | Some tab -> (db, tab)
  | None -> error "no such table: %s" r.Ast.table

(* Run [f txn] inside the session's open transaction if it belongs to
   [db], else in a fresh auto-committed transaction. *)
let with_write_txn s db f =
  match s.txn with
  | Some (txn_db, txn) ->
      if Database.name txn_db <> Database.name db then
        error "open transaction is on database %s" (Database.name txn_db);
      f txn
  | None -> Database.with_txn db f

let value_of_literal (col : Schema.column) = function
  | Ast.Int_lit n -> (
      match col.Schema.ctype with
      | Schema.Int -> Row.Int n
      | Schema.Text -> error "column %s expects TEXT, got integer" col.Schema.name)
  | Ast.Text_lit t -> (
      match col.Schema.ctype with
      | Schema.Text -> Row.Text t
      | Schema.Int -> error "column %s expects INT, got string" col.Schema.name)
  | Ast.Float_lit _ -> error "column %s: floating point values are not supported" col.Schema.name

let column_index (tab : Schema.table) name =
  let rec go i = function
    | [] -> error "no such column %s in table %s" name tab.Schema.name
    | (c : Schema.column) :: _ when c.Schema.name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 tab.Schema.columns

let column_at (tab : Schema.table) i = List.nth tab.Schema.columns i

let compare_values a b =
  match (a, b) with
  | Row.Int x, Row.Int y -> Int64.compare x y
  | Row.Text x, Row.Text y -> String.compare x y
  | Row.Int _, Row.Text _ | Row.Text _, Row.Int _ -> error "type mismatch in comparison"

let cond_holds op c =
  match op with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(* Compile a WHERE conjunction into (key range, residual predicate). *)
let compile_where (tab : Schema.table) (conds : Ast.condition list) =
  let lo = ref Int64.min_int and hi = ref Int64.max_int in
  let residual = ref [] in
  List.iter
    (fun (c : Ast.condition) ->
      let idx = column_index tab c.Ast.column in
      let col = column_at tab idx in
      let v = value_of_literal col c.Ast.value in
      if idx = 0 then begin
        match (c.Ast.op, v) with
        | Ast.Eq, Row.Int n ->
            lo := Int64.max !lo n;
            hi := Int64.min !hi n
        | Ast.Ge, Row.Int n -> lo := Int64.max !lo n
        | Ast.Gt, Row.Int n -> lo := Int64.max !lo (Int64.add n 1L)
        | Ast.Le, Row.Int n -> hi := Int64.min !hi n
        | Ast.Lt, Row.Int n -> hi := Int64.min !hi (Int64.sub n 1L)
        | (Ast.Ne, _ | _, Row.Text _) -> residual := (idx, c.Ast.op, v) :: !residual
      end
      else residual := (idx, c.Ast.op, v) :: !residual)
    conds;
  let matches row =
    List.for_all
      (fun (idx, op, v) -> cond_holds op (compare_values (List.nth row idx) v))
      !residual
  in
  (!lo, !hi, matches)

(* An equality condition on an indexed non-key column lets the executor
   skip the table scan entirely. *)
let index_path db (tab : Schema.table) (conds : Ast.condition list) =
  List.find_map
    (fun (c : Ast.condition) ->
      if c.Ast.op <> Ast.Eq then None
      else
        let idx = column_index tab c.Ast.column in
        if idx = 0 then None
        else if
          List.exists
            (fun (ix : Schema.index) -> ix.Schema.column = c.Ast.column)
            tab.Schema.indexes
        then
          let v = value_of_literal (column_at tab idx) c.Ast.value in
          Some (Database.lookup_by_index db ~table:tab.Schema.name ~column:c.Ast.column ~value:v)
        else None)
    conds

let select_rows s (sel : Ast.select) =
  let db, tab = resolve_table s sel.Ast.from in
  let lo, hi, matches = compile_where tab sel.Ast.where in
  let rows =
    match index_path db tab sel.Ast.where with
    | Some candidates ->
        List.filter (fun row -> Row.key_of row >= lo && Row.key_of row <= hi && matches row)
          candidates
    | None ->
        let acc = ref [] in
        if lo <= hi then
          Database.range db ~table:tab.Schema.name ~lo ~hi ~f:(fun row ->
              if matches row then acc := row :: !acc);
        List.rev !acc
  in
  let rows =
    match sel.Ast.order_by with
    | None -> rows
    | Some (col, dir) ->
        let idx = column_index tab col in
        let cmp a b = compare_values (List.nth a idx) (List.nth b idx) in
        let sorted = List.stable_sort cmp rows in
        if dir = `Desc then List.rev sorted else sorted
  in
  let rows =
    match sel.Ast.limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  (tab, rows)

let all_column_names (tab : Schema.table) =
  List.map (fun (c : Schema.column) -> c.Schema.name) tab.Schema.columns

let int_column tab rows col =
  let idx = column_index tab col in
  (match (column_at tab idx).Schema.ctype with
  | Schema.Int -> ()
  | Schema.Text -> error "aggregate over TEXT column %s" col);
  List.map
    (fun row -> match List.nth row idx with Row.Int v -> v | Row.Text _ -> assert false)
    rows

let eval_aggregate tab rows = function
  | Ast.Count -> ("count", Row.Int (Int64.of_int (List.length rows)))
  | Ast.Sum col ->
      ( Printf.sprintf "sum(%s)" col,
        Row.Int (List.fold_left Int64.add 0L (int_column tab rows col)) )
  | Ast.Min col -> (
      match int_column tab rows col with
      | [] -> error "MIN over no rows"
      | v :: rest -> (Printf.sprintf "min(%s)" col, Row.Int (List.fold_left min v rest)))
  | Ast.Max col -> (
      match int_column tab rows col with
      | [] -> error "MAX over no rows"
      | v :: rest -> (Printf.sprintf "max(%s)" col, Row.Int (List.fold_left max v rest)))

let project (tab : Schema.table) proj rows =
  match proj with
  | Ast.Star -> (all_column_names tab, rows)
  | Ast.Count_star -> ([ "count" ], [ [ Row.Int (Int64.of_int (List.length rows)) ] ])
  | Ast.Aggregates aggs ->
      let results = List.map (eval_aggregate tab rows) aggs in
      (List.map fst results, [ List.map snd results ])
  | Ast.Columns cols ->
      let idxs = List.map (column_index tab) cols in
      (cols, List.map (fun row -> List.map (fun i -> List.nth row i) idxs) rows)

let execute s (stmt : Ast.statement) =
  match stmt with
  | Ast.Create_table { table; columns } ->
      let db = resolve_db s None in
      let columns =
        List.map (fun (name, ctype) -> { Schema.name; ctype }) columns
      in
      with_write_txn s db (fun txn ->
          ignore (Database.create_table db txn ~table ~columns ()));
      Message (Printf.sprintf "table %s created" table)
  | Ast.Drop_table table ->
      let db = resolve_db s None in
      with_write_txn s db (fun txn -> Database.drop_table db txn table);
      Message (Printf.sprintf "table %s dropped" table)
  | Ast.Create_index { name; table; column } ->
      let db, tab = resolve_table s table in
      with_write_txn s db (fun txn ->
          ignore (Database.create_index db txn ~table:tab.Schema.name ~name ~column ()));
      Message (Printf.sprintf "index %s created on %s(%s)" name tab.Schema.name column)
  | Ast.Drop_index { name; table } ->
      let db, tab = resolve_table s table in
      with_write_txn s db (fun txn -> Database.drop_index db txn ~table:tab.Schema.name ~name);
      Message (Printf.sprintf "index %s dropped" name)
  | Ast.Insert { into; rows } ->
      let db, tab = resolve_table s into in
      let typed =
        List.map
          (fun lits ->
            if List.length lits <> List.length tab.Schema.columns then
              error "table %s expects %d values" tab.Schema.name
                (List.length tab.Schema.columns);
            List.map2 value_of_literal tab.Schema.columns lits)
          rows
      in
      with_write_txn s db (fun txn ->
          List.iter (fun row -> Database.insert db txn ~table:tab.Schema.name row) typed);
      Affected (List.length typed)
  | Ast.Insert_select { into; select } ->
      let src_tab, rows = select_rows s select in
      let rows = snd (project src_tab select.Ast.proj rows) in
      (match select.Ast.proj with
      | Ast.Star -> ()
      | _ -> error "INSERT ... SELECT requires SELECT *");
      let db, tab = resolve_table s into in
      if List.length tab.Schema.columns <> List.length src_tab.Schema.columns then
        error "column count mismatch between %s and %s" tab.Schema.name src_tab.Schema.name;
      with_write_txn s db (fun txn ->
          List.iter (fun row -> Database.insert db txn ~table:tab.Schema.name row) rows);
      Affected (List.length rows)
  | Ast.Select sel ->
      let tab, rows = select_rows s sel in
      let columns, rows = project tab sel.Ast.proj rows in
      Rows { columns; rows }
  | Ast.Explain sel ->
      (* Bracket the query with engine-level cost counters and report the
         deltas: on an as-of snapshot this is the paper's per-query rewind
         cost (pages rewound, records undone, log bytes read) made
         visible.  The counters are sampled immediately before and after
         the scan, so the deltas are exactly the query's own work. *)
      let db, _tab = resolve_table s sel.Ast.from in
      let log_stats = Rw_wal.Log_manager.stats (Database.log db) in
      let disk_stats = Rw_storage.Disk.stats (Database.disk db) in
      let pool = Database.pool db in
      let snap = Database.snapshot_handle db in
      let log0 = Io_stats.copy log_stats in
      let disk0 = Io_stats.copy disk_stats in
      let hits0 = Buffer_pool.hits pool and misses0 = Buffer_pool.misses pool in
      let rewinds0, side0 =
        match snap with
        | Some h -> (As_of_snapshot.rewind_count h, As_of_snapshot.side_file_hits h)
        | None -> (0, 0)
      in
      let t0 = Database.now_us db in
      let tab, rows = select_rows s sel in
      let _, projected = project tab sel.Ast.proj rows in
      let t1 = Database.now_us db in
      let logd = Io_stats.diff log_stats log0 in
      let diskd = Io_stats.diff disk_stats disk0 in
      let new_rewinds, side_hits =
        match snap with
        | Some h ->
            let n = As_of_snapshot.rewind_count h - rewinds0 in
            let recent = List.filteri (fun i _ -> i < n) (As_of_snapshot.rewinds h) in
            (recent, As_of_snapshot.side_file_hits h - side0)
        | None -> ([], 0)
      in
      let records_undone =
        List.fold_left (fun a r -> a + r.As_of_snapshot.rc_ops) 0 new_rewinds
      in
      let log_records_read =
        List.fold_left (fun a r -> a + r.As_of_snapshot.rc_log_reads) 0 new_rewinds
      in
      let fpi_jumps =
        List.fold_left (fun a r -> a + if r.As_of_snapshot.rc_fpi then 1 else 0) 0 new_rewinds
      in
      let int v = Row.Int (Int64.of_int v) in
      let metric name v = [ Row.Text name; v ] in
      let header =
        [
          metric "rows_returned" (int (List.length projected));
          metric "elapsed_sim_us" (Row.Text (Printf.sprintf "%.1f" (t1 -. t0)));
          metric "buffer_fetches" (int (Buffer_pool.hits pool - hits0 + Buffer_pool.misses pool - misses0));
          metric "buffer_hits" (int (Buffer_pool.hits pool - hits0));
          metric "buffer_misses" (int (Buffer_pool.misses pool - misses0));
          metric "pages_rewound" (int (List.length new_rewinds));
          metric "records_undone" (int records_undone);
          metric "log_records_read" (int log_records_read);
          metric "fpi_jumps" (int fpi_jumps);
          metric "side_file_hits" (int side_hits);
          metric "log_block_hits" (int logd.Io_stats.log_block_hits);
          metric "log_block_misses" (int logd.Io_stats.log_block_misses);
          metric "log_bytes_read"
            (int (logd.Io_stats.random_read_bytes + logd.Io_stats.seq_read_bytes));
          metric "data_bytes_read"
            (int (diskd.Io_stats.random_read_bytes + diskd.Io_stats.seq_read_bytes));
        ]
      in
      let per_page =
        List.rev_map
          (fun r ->
            metric
              (Printf.sprintf "page %d rewind" (Rw_storage.Page_id.to_int r.As_of_snapshot.rc_page))
              (Row.Text
                 (Printf.sprintf "%d ops, %d log records%s" r.As_of_snapshot.rc_ops
                    r.As_of_snapshot.rc_log_reads
                    (if r.As_of_snapshot.rc_fpi then ", fpi jump" else ""))))
          new_rewinds
      in
      Rows { columns = [ "metric"; "value" ]; rows = header @ per_page }
  | Ast.Update { table; sets; where } ->
      let db, tab = resolve_table s table in
      let lo, hi, matches = compile_where tab where in
      let set_idxs =
        List.map
          (fun (col, lit) ->
            let idx = column_index tab col in
            if idx = 0 then error "cannot update the key column %s" col;
            (idx, value_of_literal (column_at tab idx) lit))
          sets
      in
      let victims = ref [] in
      if lo <= hi then
        Database.range db ~table:tab.Schema.name ~lo ~hi ~f:(fun row ->
            if matches row then victims := row :: !victims);
      with_write_txn s db (fun txn ->
          List.iter
            (fun row ->
              let row' =
                List.mapi
                  (fun i v ->
                    match List.assoc_opt i set_idxs with Some nv -> nv | None -> v)
                  row
              in
              Database.update db txn ~table:tab.Schema.name row')
            !victims);
      Affected (List.length !victims)
  | Ast.Delete { from; where } ->
      let db, tab = resolve_table s from in
      let lo, hi, matches = compile_where tab where in
      let keys = ref [] in
      if lo <= hi then
        Database.range db ~table:tab.Schema.name ~lo ~hi ~f:(fun row ->
            if matches row then keys := Row.key_of row :: !keys);
      with_write_txn s db (fun txn ->
          List.iter (fun key -> Database.delete db txn ~table:tab.Schema.name ~key) !keys);
      Affected (List.length !keys)
  | Ast.Begin_txn ->
      if s.txn <> None then error "transaction already open";
      let db = resolve_db s None in
      let txn = Database.begin_txn db in
      s.txn <- Some (db, txn);
      Message "transaction started"
  | Ast.Commit_txn -> (
      match s.txn with
      | None -> error "no open transaction"
      | Some (db, txn) ->
          Database.commit db txn;
          s.txn <- None;
          Message "committed")
  | Ast.Rollback_txn -> (
      match s.txn with
      | None -> error "no open transaction"
      | Some (db, txn) ->
          Database.rollback db txn;
          s.txn <- None;
          Message "rolled back")
  | Ast.Create_database name ->
      ignore (Engine.create_database s.eng name);
      if s.current = None then s.current <- Some name;
      Message (Printf.sprintf "database %s created" name)
  | Ast.Create_snapshot { name; of_; as_of } ->
      let wall_us =
        match as_of with
        | Ast.Absolute_s sec -> sec *. 1_000_000.0
        | Ast.Relative_s back -> Engine.now_us s.eng -. (back *. 1_000_000.0)
      in
      ignore (Engine.create_snapshot s.eng ~of_ ~name ~wall_us);
      Message (Printf.sprintf "snapshot %s of %s created as of %.3fs" name of_ (wall_us /. 1e6))
  | Ast.Drop_database name ->
      if s.current = Some name then s.current <- None;
      Engine.drop_database s.eng name;
      Message (Printf.sprintf "database %s dropped" name)
  | Ast.Alter_retention { database; interval_s } ->
      let db = resolve_db s (Some database) in
      Database.set_retention db (Option.map (fun sec -> sec *. 1_000_000.0) interval_s);
      ignore (Database.enforce_retention db);
      Message
        (match interval_s with
        | Some sec -> Printf.sprintf "undo interval set to %g seconds" sec
        | None -> "undo interval removed")
  | Ast.Use name ->
      ignore (resolve_db s (Some name));
      s.current <- Some name;
      Message (Printf.sprintf "using %s" name)
  | Ast.Show_tables ->
      let db = resolve_db s None in
      let rows =
        List.map (fun (t : Schema.table) -> [ Row.Text t.Schema.name ]) (Database.tables db)
      in
      Rows { columns = [ "table" ]; rows }
  | Ast.Show_databases ->
      let rows = List.map (fun n -> [ Row.Text n ]) (Engine.database_names s.eng) in
      Rows { columns = [ "database" ]; rows }
  | Ast.Show_history ->
      let db = resolve_db s None in
      let log = Database.log db in
      let candidates =
        Rw_core.Txn_rewind.committed_transactions ~log
          ~since:(Rw_wal.Log_manager.first_lsn log)
      in
      let rows =
        List.map
          (fun (c : Rw_core.Txn_rewind.candidate) ->
            [
              Row.Int (Rw_wal.Txn_id.to_int64 c.Rw_core.Txn_rewind.txn);
              Row.Text
                (match c.Rw_core.Txn_rewind.commit_wall_us with
                | Some w -> Printf.sprintf "%.6f" (w /. 1_000_000.0)
                | None -> "-");
              Row.Int (Int64.of_int c.Rw_core.Txn_rewind.page_ops);
            ])
          candidates
      in
      Rows { columns = [ "txn"; "committed_at_s"; "page_ops" ]; rows }
  | Ast.Undo_transaction id ->
      let db = resolve_db s None in
      if s.txn <> None then error "UNDO TRANSACTION cannot run inside an open transaction";
      let log = Database.log db in
      let candidates =
        Rw_core.Txn_rewind.committed_transactions ~log
          ~since:(Rw_wal.Log_manager.first_lsn log)
      in
      let victim =
        match
          List.find_opt
            (fun (c : Rw_core.Txn_rewind.candidate) ->
              Rw_wal.Txn_id.to_int c.Rw_core.Txn_rewind.txn = id)
            candidates
        with
        | Some c -> c
        | None -> error "no committed transaction %d in the retained log" id
      in
      (match
         Rw_core.Txn_rewind.undo_transaction ~ctx:(Database.ctx db) ~log ~victim
           ~wall_us:(Database.now_us db)
       with
      | Rw_core.Txn_rewind.Undone { ops } ->
          Message (Printf.sprintf "transaction %d undone (%d operations compensated)" id ops)
      | Rw_core.Txn_rewind.Conflicts cs ->
          error "cannot undo transaction %d: %s" id
            (String.concat "; "
               (List.map (fun c -> c.Rw_core.Txn_rewind.reason) cs)))
  | Ast.Rewind_transaction { txn; view } -> (
      let db = resolve_db s None in
      if s.txn <> None then error "REWIND TRANSACTION cannot run inside an open transaction";
      if Database.is_read_only db then
        error "database %s is a read-only snapshot" (Database.name db);
      let log = Database.log db in
      let graph = Rw_whatif.Dep_graph.build ~log in
      let victim = Rw_wal.Txn_id.of_int txn in
      let describe cs =
        String.concat "; "
          (List.map (fun (c : Rw_whatif.Selective.conflict) -> c.Rw_whatif.Selective.reason) cs)
      in
      try
        match view with
        | None -> (
            match
              Rw_whatif.Selective.repair ~ctx:(Database.ctx db) ~log ~graph ~victim
                ~wall_us:(Database.now_us db) ()
            with
            | Ok (st : Rw_whatif.Selective.stats) ->
                Message
                  (Printf.sprintf
                     "transaction %d removed in place: %d dependent transaction%s replayed \
                      over %d page%s (%d ops unwound, %d replayed)"
                     txn st.replayed_txns
                     (if st.replayed_txns = 1 then "" else "s")
                     st.pages_rewound
                     (if st.pages_rewound = 1 then "" else "s")
                     st.ops_unwound st.ops_replayed)
            | Error cs -> error "cannot rewind transaction %d: %s" txn (describe cs))
        | Some name -> (
            match
              Rw_whatif.Selective.what_if_view ~engine:s.eng ~db ~graph ~victim ~name ()
            with
            | Ok (_, (st : Rw_whatif.Selective.stats)) ->
                Message
                  (Printf.sprintf
                     "what-if view %s created without transaction %d: %d dependent \
                      transaction%s replayed over %d page%s"
                     name txn st.replayed_txns
                     (if st.replayed_txns = 1 then "" else "s")
                     st.pages_rewound
                     (if st.pages_rewound = 1 then "" else "s"))
            | Error cs -> error "cannot rewind transaction %d: %s" txn (describe cs))
      with Rw_whatif.Selective.Unknown_txn _ ->
        error "no committed transaction %d in the retained log" txn)
  | Ast.Checkpoint_stmt ->
      let db = resolve_db s None in
      ignore (Database.checkpoint db);
      ignore (Database.enforce_retention db);
      Message "checkpoint complete"

let execute s stmt =
  try execute s stmt with
  | Database.Read_only name -> error "database %s is a read-only snapshot" name
  | Rw_catalog.System_tables.No_such_table t -> error "no such table: %s" t
  | Rw_catalog.System_tables.Table_exists t -> error "table already exists: %s" t
  | Engine.No_such_database d -> error "no such database: %s" d
  | Engine.Database_exists d -> error "database already exists: %s" d
  | Rw_access.Btree.Duplicate_key k -> error "duplicate key %Ld" k
  | Database.No_such_index name -> error "no such index: %s" name
  | Rw_core.Split_lsn.Out_of_retention _ ->
      error "requested time is outside the retention period"
  | Not_found -> error "no matching row"
  | Row.Type_error msg -> error "%s" msg
  | Invalid_argument msg -> error "%s" msg

let run s input = execute s (Parser.parse input)
let run_script s input = List.map (execute s) (Parser.parse_script input)

let pp_result fmt = function
  | Message m -> Format.fprintf fmt "%s" m
  | Affected n -> Format.fprintf fmt "%d row%s affected" n (if n = 1 then "" else "s")
  | Rows { columns; rows } ->
      let render_value = function
        | Row.Int n -> Int64.to_string n
        | Row.Text t -> t
      in
      let table = List.map (List.map render_value) rows in
      let widths =
        List.mapi
          (fun i col ->
            List.fold_left
              (fun acc row -> max acc (String.length (List.nth row i)))
              (String.length col) table)
          columns
      in
      let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
      Format.fprintf fmt "%s@\n"
        (String.concat " | " (List.map2 pad columns widths));
      Format.fprintf fmt "%s@\n"
        (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
      List.iter
        (fun row ->
          Format.fprintf fmt "%s@\n" (String.concat " | " (List.map2 pad row widths)))
        table;
      Format.fprintf fmt "(%d row%s)" (List.length rows)
        (if List.length rows = 1 then "" else "s")
