exception Page_full

let slot_base = Page.header_size
let slot_size = 4
let max_record_size = Page.page_size - Page.header_size - slot_size

let slot_off i = slot_base + (slot_size * i)
let slot_offset p i = Bytes.get_uint16_le p (slot_off i)
let slot_length p i = Bytes.get_uint16_le p (slot_off i + 2)

let set_slot p i ~offset ~length =
  Bytes.set_uint16_le p (slot_off i) offset;
  Bytes.set_uint16_le p (slot_off i + 2) length

let count = Page.slot_count

let slots_end p = slot_base + (slot_size * count p)

let contiguous_free p = Page.data_low p - slots_end p

let free_space p =
  let f = contiguous_free p + Page.garbage p - slot_size in
  if f < 0 then 0 else f

let used_bytes p = (slot_size * count p) + (Page.page_size - Page.data_low p) - Page.garbage p

let check_index p ~at ~for_insert =
  let n = count p in
  let hi = if for_insert then n else n - 1 in
  if at < 0 || at > hi then
    invalid_arg
      (Printf.sprintf "Slotted_page: index %d out of bounds (count %d)" at n)

(* Compaction scratch: one reused page-sized buffer instead of one
   allocation per live record.  The simulator is single-threaded, so a
   single module-level buffer is safe. *)
let compact_scratch = Bytes.create Page.page_size

let compact p =
  let n = count p in
  (* Snapshot the page, then lay the live records back down from the page
     end, reading from the unmodified copy. *)
  Bytes.blit p 0 compact_scratch 0 Page.page_size;
  let low = ref Page.page_size in
  for i = 0 to n - 1 do
    let off = slot_offset compact_scratch i and len = slot_length compact_scratch i in
    low := !low - len;
    Bytes.blit compact_scratch off p !low len;
    set_slot p i ~offset:!low ~length:len
  done;
  Page.set_data_low p !low;
  Page.set_garbage p 0

let alloc_data p len =
  if contiguous_free p < len then compact p;
  let low = Page.data_low p - len in
  Page.set_data_low p low;
  low

let insert p ~at data =
  check_index p ~at ~for_insert:true;
  let len = String.length data in
  if len > max_record_size then invalid_arg "Slotted_page.insert: record too large";
  if free_space p < len then raise Page_full;
  let n = count p in
  (* Make room in the slot array first so compaction sees a consistent
     count; shift existing slots at..n-1 up by one. *)
  if contiguous_free p < slot_size then compact p;
  if contiguous_free p < slot_size then raise Page_full;
  Bytes.blit p (slot_off at) p (slot_off (at + 1)) (slot_size * (n - at));
  Page.set_slot_count p (n + 1);
  set_slot p at ~offset:0 ~length:0;
  let off = alloc_data p len in
  Bytes.blit_string data 0 p off len;
  set_slot p at ~offset:off ~length:len

let delete p ~at =
  check_index p ~at ~for_insert:false;
  let n = count p in
  Page.set_garbage p (Page.garbage p + slot_length p at);
  Bytes.blit p (slot_off (at + 1)) p (slot_off at) (slot_size * (n - at - 1));
  Page.set_slot_count p (n - 1)

let get p ~at =
  check_index p ~at ~for_insert:false;
  Bytes.sub_string p (slot_offset p at) (slot_length p at)

let record_length p ~at =
  check_index p ~at ~for_insert:false;
  slot_length p at

let set p ~at data =
  check_index p ~at ~for_insert:false;
  let len = String.length data in
  if len > max_record_size then invalid_arg "Slotted_page.set: record too large";
  let old_len = slot_length p at in
  if len <= old_len then begin
    Bytes.blit_string data 0 p (slot_offset p at) len;
    set_slot p at ~offset:(slot_offset p at) ~length:len;
    Page.set_garbage p (Page.garbage p + (old_len - len))
  end
  else begin
    if free_space p + slot_size < len - old_len then raise Page_full;
    (* Retire the old record before (possibly) compacting. *)
    Page.set_garbage p (Page.garbage p + old_len);
    set_slot p at ~offset:0 ~length:0;
    let off = alloc_data p len in
    Bytes.blit_string data 0 p off len;
    set_slot p at ~offset:off ~length:len
  end

let iter p f =
  for i = 0 to count p - 1 do
    f i (get p ~at:i)
  done

let fold p ~init ~f =
  let acc = ref init in
  for i = 0 to count p - 1 do
    acc := f !acc i (get p ~at:i)
  done;
  !acc

let key_at p ~at =
  check_index p ~at ~for_insert:false;
  Bytes.get_int64_le p (slot_offset p at)

let find_key p key =
  let rec go lo hi =
    if lo >= hi then Either.Right lo
    else
      let mid = (lo + hi) / 2 in
      let k = key_at p ~at:mid in
      if k = key then Either.Left mid
      else if k < key then go (mid + 1) hi
      else go lo mid
  in
  go 0 (count p)
