(** Simulated wall clock.

    All experiment timing flows through this clock: the media model advances
    it for every I/O, and workloads advance it for CPU costs.  Using a
    simulated clock keeps every experiment deterministic while preserving the
    cost structure of the hardware the paper ran on. *)

type t

val create : ?start_us:float -> unit -> t
val now_us : t -> float
val now_s : t -> float
val advance_us : t -> float -> unit
(** Raises [Invalid_argument] on negative advances: simulated time is
    monotonic. *)

val credit_us : t -> float -> unit
(** Model overlapped execution: give back [d] microseconds of time that
    {!advance_us} just charged serially.  The media model prices each
    stream one operation at a time; a coordinator that issues [k]
    independent streams back-to-back charges their sum, then credits
    [sum - max(stream totals)] so the batch's elapsed time is the
    slowest stream — what concurrent hardware would deliver.  The caller
    must guarantee the credited span was charged within the same batch
    and that nothing observed the intermediate timestamps (clock time
    inside the batch is not monotonic across the credit).  Raises
    [Invalid_argument] on negative credits. *)

val pp_duration : Format.formatter -> float -> unit
(** Pretty-print a duration in microseconds using a human unit. *)
