type t = { mutable now_us : float }

let create ?(start_us = 0.0) () = { now_us = start_us }
let now_us t = t.now_us
let now_s t = t.now_us /. 1_000_000.0

let advance_us t d =
  if d < 0.0 then invalid_arg "Sim_clock.advance_us: negative";
  t.now_us <- t.now_us +. d

let credit_us t d =
  if d < 0.0 then invalid_arg "Sim_clock.credit_us: negative";
  t.now_us <- t.now_us -. d

let pp_duration fmt us =
  if us < 1_000.0 then Format.fprintf fmt "%.1fus" us
  else if us < 1_000_000.0 then Format.fprintf fmt "%.2fms" (us /. 1_000.0)
  else if us < 60_000_000.0 then Format.fprintf fmt "%.2fs" (us /. 1_000_000.0)
  else Format.fprintf fmt "%.1fmin" (us /. 60_000_000.0)
