exception Corrupt_page of Page_id.t
exception Io_error of { page : Page_id.t; write : bool }

type t = {
  clock : Sim_clock.t;
  media : Media.t;
  stats : Io_stats.t;
  mutable pages : Page.t option array;
  mutable page_count : int;
  mutable fault_plan : Fault_plan.t option;
  torn_pending : (int, bytes) Hashtbl.t;
      (* page -> the image the platter would hold if the system crashed
         now: a sector-aligned prefix of the latest write spliced onto the
         previous content.  Cleared by the next clean write of the page,
         applied wholesale by [apply_crash]. *)
}

let create ~clock ~media ?fault_plan () =
  {
    clock;
    media;
    stats = Io_stats.create ();
    pages = Array.make 64 None;
    page_count = 0;
    fault_plan;
    torn_pending = Hashtbl.create 16;
  }

let clock t = t.clock
let media t = t.media
let stats t = t.stats
let page_count t = t.page_count
let fault_plan t = t.fault_plan
let set_fault_plan t plan = t.fault_plan <- plan
let extend t n = if n > t.page_count then t.page_count <- n

let has_page t pid =
  let i = Page_id.to_int pid in
  i < Array.length t.pages && t.pages.(i) <> None

let written_pages t =
  let n = ref 0 in
  Array.iter (function Some _ -> incr n | None -> ()) t.pages;
  !n

let ensure_capacity t n =
  if n > Array.length t.pages then begin
    let cap = ref (Array.length t.pages) in
    while !cap < n do
      cap := !cap * 2
    done;
    let pages = Array.make !cap None in
    Array.blit t.pages 0 pages 0 (Array.length t.pages);
    t.pages <- pages
  end

let fetch t pid =
  let i = Page_id.to_int pid in
  if i < Array.length t.pages then
    match t.pages.(i) with
    | Some p -> Page.copy p
    | None -> Page.create ~id:pid ~typ:Page.Free
  else Page.create ~id:pid ~typ:Page.Free

let store t pid page =
  let i = Page_id.to_int pid in
  ensure_capacity t (i + 1);
  t.pages.(i) <- Some (Page.copy page);
  if i + 1 > t.page_count then t.page_count <- i + 1

(* --- fault injection --- *)

let rot_stored t plan pid =
  (* Media decay: flip one bit of the stored image.  The flip is persistent,
     so it stays detectable (and repairable) on every subsequent read until
     a clean write replaces the page. *)
  let i = Page_id.to_int pid in
  if i < Array.length t.pages then
    match t.pages.(i) with
    | Some p ->
        let off, bit =
          Fault_plan.bit_rot_offset plan ~header_size:Page.header_size ~page_size:Page.page_size
        in
        Bytes.set p off (Char.chr (Char.code (Bytes.get p off) lxor (1 lsl bit)));
        t.stats.Io_stats.faults_injected <- t.stats.Io_stats.faults_injected + 1
    | None -> ()

let consult_read t pid =
  match t.fault_plan with
  | None -> ()
  | Some plan -> (
      match Fault_plan.on_read plan with
      | Fault_plan.Read_ok -> ()
      | Fault_plan.Read_bit_rot -> rot_stored t plan pid
      | Fault_plan.Read_transient ->
          t.stats.Io_stats.faults_injected <- t.stats.Io_stats.faults_injected + 1;
          raise (Io_error { page = pid; write = false }))

let consult_write t pid page =
  match t.fault_plan with
  | None -> ()
  | Some plan -> (
      match Fault_plan.on_write plan with
      | Fault_plan.Write_ok -> Hashtbl.remove t.torn_pending (Page_id.to_int pid)
      | Fault_plan.Write_torn_on_crash ->
          (* The write is acknowledged (the OS buffered it) but only a
             sector prefix would survive a crash before the next rewrite. *)
          let cut = Fault_plan.torn_cut plan ~page_size:Page.page_size in
          let torn = Bytes.copy (fetch t pid) in
          Bytes.blit page 0 torn 0 cut;
          Hashtbl.replace t.torn_pending (Page_id.to_int pid) torn
      | Fault_plan.Write_transient ->
          t.stats.Io_stats.faults_injected <- t.stats.Io_stats.faults_injected + 1;
          raise (Io_error { page = pid; write = true }))

let apply_crash t =
  let torn = Hashtbl.fold (fun i img acc -> (i, img) :: acc) t.torn_pending [] in
  Hashtbl.reset t.torn_pending;
  List.iter
    (fun (i, img) ->
      t.pages.(i) <- Some img;
      t.stats.Io_stats.faults_injected <- t.stats.Io_stats.faults_injected + 1)
    torn;
  List.length torn

let pending_torn t = Hashtbl.length t.torn_pending

(* --- priced I/O --- *)

let read_page t pid =
  Media.random_read t.media t.clock t.stats Page.page_size;
  consult_read t pid;
  fetch t pid

let write_page t pid page =
  Media.random_write t.media t.clock t.stats Page.page_size;
  consult_write t pid page;
  store t pid page

let read_page_seq t pid =
  Media.seq_read t.media t.clock t.stats Page.page_size;
  consult_read t pid;
  fetch t pid

let write_page_seq t pid page =
  Media.seq_write t.media t.clock t.stats Page.page_size;
  consult_write t pid page;
  store t pid page

let read_page_nocost t pid = fetch t pid
let write_page_nocost t pid page = store t pid page

(* --- bounded retry with simulated backoff --- *)

let max_attempts = 4
let backoff_base_us = 200.0

let with_retries t op =
  let rec go attempt backoff_us =
    match op () with
    | v -> v
    | exception Io_error _ when attempt < max_attempts ->
        t.stats.Io_stats.io_retries <- t.stats.Io_stats.io_retries + 1;
        Sim_clock.advance_us t.clock backoff_us;
        go (attempt + 1) (2.0 *. backoff_us)
  in
  go 1 backoff_base_us

let read_page_retrying t pid = with_retries t (fun () -> read_page t pid)
let write_page_retrying t pid page = with_retries t (fun () -> write_page t pid page)
let write_page_seq_retrying t pid page = with_retries t (fun () -> write_page_seq t pid page)

(* --- test / corruption helpers --- *)

let corrupt_stored t pid =
  let i = Page_id.to_int pid in
  if i < Array.length t.pages then
    match t.pages.(i) with
    | Some p ->
        let off = Page.header_size in
        Bytes.set p off (Char.chr (Char.code (Bytes.get p off) lxor 1))
    | None -> ()

let verify_checksums t =
  let ok = ref true in
  for i = 0 to t.page_count - 1 do
    match t.pages.(i) with
    | Some p -> if not (Page.verify p) then ok := false
    | None -> ()
  done;
  !ok
