type t = {
  mutable random_reads : int;
  mutable random_writes : int;
  mutable seq_read_bytes : int;
  mutable seq_write_bytes : int;
  mutable random_read_bytes : int;
  mutable random_write_bytes : int;
  (* Read-path cache layers (see DESIGN.md "Read-path caching layers").
     These count lookups, not costs: only a block miss is charged as a
     simulated random I/O, and record hits/misses never touch the clock. *)
  mutable log_block_hits : int;
  mutable log_block_misses : int;
  mutable log_record_hits : int;
  mutable log_record_misses : int;
  (* Write-path coalescing (see DESIGN.md "Write path").  Flush calls count
     every durability request; batches count the priced device writes that
     actually served them, and coalesced commits count the durability
     acknowledgements those batches delivered. *)
  mutable log_flush_calls : int;
  mutable log_flush_batches : int;
  mutable log_commits_coalesced : int;
  (* Fault injection and recovery (see DESIGN.md "Robustness").  Injected
     counts faults the plan actually fired; detected counts checksum/CRC
     mismatches observed by a reader; repaired counts pages rebuilt from
     the log; retries counts extra attempts after transient errors. *)
  mutable faults_injected : int;
  mutable corruptions_detected : int;
  mutable pages_repaired : int;
  mutable io_retries : int;
}

let create () =
  {
    random_reads = 0;
    random_writes = 0;
    seq_read_bytes = 0;
    seq_write_bytes = 0;
    random_read_bytes = 0;
    random_write_bytes = 0;
    log_block_hits = 0;
    log_block_misses = 0;
    log_record_hits = 0;
    log_record_misses = 0;
    log_flush_calls = 0;
    log_flush_batches = 0;
    log_commits_coalesced = 0;
    faults_injected = 0;
    corruptions_detected = 0;
    pages_repaired = 0;
    io_retries = 0;
  }

let reset t =
  t.random_reads <- 0;
  t.random_writes <- 0;
  t.seq_read_bytes <- 0;
  t.seq_write_bytes <- 0;
  t.random_read_bytes <- 0;
  t.random_write_bytes <- 0;
  t.log_block_hits <- 0;
  t.log_block_misses <- 0;
  t.log_record_hits <- 0;
  t.log_record_misses <- 0;
  t.log_flush_calls <- 0;
  t.log_flush_batches <- 0;
  t.log_commits_coalesced <- 0;
  t.faults_injected <- 0;
  t.corruptions_detected <- 0;
  t.pages_repaired <- 0;
  t.io_retries <- 0

let copy t = { t with random_reads = t.random_reads }

let diff later earlier =
  {
    random_reads = later.random_reads - earlier.random_reads;
    random_writes = later.random_writes - earlier.random_writes;
    seq_read_bytes = later.seq_read_bytes - earlier.seq_read_bytes;
    seq_write_bytes = later.seq_write_bytes - earlier.seq_write_bytes;
    random_read_bytes = later.random_read_bytes - earlier.random_read_bytes;
    random_write_bytes = later.random_write_bytes - earlier.random_write_bytes;
    log_block_hits = later.log_block_hits - earlier.log_block_hits;
    log_block_misses = later.log_block_misses - earlier.log_block_misses;
    log_record_hits = later.log_record_hits - earlier.log_record_hits;
    log_record_misses = later.log_record_misses - earlier.log_record_misses;
    log_flush_calls = later.log_flush_calls - earlier.log_flush_calls;
    log_flush_batches = later.log_flush_batches - earlier.log_flush_batches;
    log_commits_coalesced = later.log_commits_coalesced - earlier.log_commits_coalesced;
    faults_injected = later.faults_injected - earlier.faults_injected;
    corruptions_detected = later.corruptions_detected - earlier.corruptions_detected;
    pages_repaired = later.pages_repaired - earlier.pages_repaired;
    io_retries = later.io_retries - earlier.io_retries;
  }

let total_ios t = t.random_reads + t.random_writes

let total_bytes t =
  t.seq_read_bytes + t.seq_write_bytes + t.random_read_bytes + t.random_write_bytes

let add acc x =
  acc.random_reads <- acc.random_reads + x.random_reads;
  acc.random_writes <- acc.random_writes + x.random_writes;
  acc.seq_read_bytes <- acc.seq_read_bytes + x.seq_read_bytes;
  acc.seq_write_bytes <- acc.seq_write_bytes + x.seq_write_bytes;
  acc.random_read_bytes <- acc.random_read_bytes + x.random_read_bytes;
  acc.random_write_bytes <- acc.random_write_bytes + x.random_write_bytes;
  acc.log_block_hits <- acc.log_block_hits + x.log_block_hits;
  acc.log_block_misses <- acc.log_block_misses + x.log_block_misses;
  acc.log_record_hits <- acc.log_record_hits + x.log_record_hits;
  acc.log_record_misses <- acc.log_record_misses + x.log_record_misses;
  acc.log_flush_calls <- acc.log_flush_calls + x.log_flush_calls;
  acc.log_flush_batches <- acc.log_flush_batches + x.log_flush_batches;
  acc.log_commits_coalesced <- acc.log_commits_coalesced + x.log_commits_coalesced;
  acc.faults_injected <- acc.faults_injected + x.faults_injected;
  acc.corruptions_detected <- acc.corruptions_detected + x.corruptions_detected;
  acc.pages_repaired <- acc.pages_repaired + x.pages_repaired;
  acc.io_retries <- acc.io_retries + x.io_retries

let pp fmt t =
  Format.fprintf fmt "rreads:%d rwrites:%d seqR:%dB seqW:%dB" t.random_reads t.random_writes
    t.seq_read_bytes t.seq_write_bytes

let pp_caches fmt t =
  Format.fprintf fmt "block:%d/%d record:%d/%d" t.log_block_hits
    (t.log_block_hits + t.log_block_misses)
    t.log_record_hits
    (t.log_record_hits + t.log_record_misses)

let pp_writes fmt t =
  let per_batch =
    if t.log_flush_batches = 0 then 0.0
    else float_of_int t.log_commits_coalesced /. float_of_int t.log_flush_batches
  in
  Format.fprintf fmt "flushes:%d/%d commits-coalesced:%d (%.1f/batch)" t.log_flush_batches
    t.log_flush_calls t.log_commits_coalesced per_batch

let pp_faults fmt t =
  Format.fprintf fmt "injected:%d detected:%d repaired:%d retries:%d" t.faults_injected
    t.corruptions_detected t.pages_repaired t.io_retries
