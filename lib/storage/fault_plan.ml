type t = {
  seed : int;
  rng : Prng.t;
  torn_write_rate : float;
  bit_rot_rate : float;
  transient_error_rate : float;
  torn_log_tail_rate : float;
}

let check_rate name r =
  if r < 0.0 || r > 1.0 then invalid_arg (Printf.sprintf "Fault_plan.create: %s not in [0,1]" name)

let create ?(torn_write_rate = 0.0) ?(bit_rot_rate = 0.0) ?(transient_error_rate = 0.0)
    ?(torn_log_tail_rate = 0.0) ~seed () =
  check_rate "torn_write_rate" torn_write_rate;
  check_rate "bit_rot_rate" bit_rot_rate;
  check_rate "transient_error_rate" transient_error_rate;
  check_rate "torn_log_tail_rate" torn_log_tail_rate;
  {
    seed;
    rng = Prng.create (seed lxor 0x5FA017);
    torn_write_rate;
    bit_rot_rate;
    transient_error_rate;
    torn_log_tail_rate;
  }

let seed t = t.seed

type read_fault = Read_ok | Read_bit_rot | Read_transient
type write_fault = Write_ok | Write_torn_on_crash | Write_transient

let roll t rate = rate > 0.0 && Prng.float t.rng 1.0 < rate

let on_read t =
  (* One draw per class keeps the schedule stable: enabling one fault class
     does not shift the decisions of another. *)
  let transient = roll t t.transient_error_rate in
  let rot = roll t t.bit_rot_rate in
  if transient then Read_transient else if rot then Read_bit_rot else Read_ok

let on_write t =
  let transient = roll t t.transient_error_rate in
  let torn = roll t t.torn_write_rate in
  if transient then Write_transient else if torn then Write_torn_on_crash else Write_ok

let tear_log_tail t = roll t t.torn_log_tail_rate

let torn_cut t ~page_size =
  let sectors = page_size / 512 in
  512 * Prng.int_in t.rng 1 (max 1 (sectors - 1))

let bit_rot_offset t ~header_size ~page_size =
  (Prng.int_in t.rng header_size (page_size - 1), Prng.int t.rng 8)

let torn_tail_keep t ~len = if len <= 0 then 0 else Prng.int_in t.rng 0 len

let torn_record_cut t ~len = if len <= 2 then 1 else Prng.int_in t.rng 1 (len - 1)
