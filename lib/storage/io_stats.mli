(** I/O counters.

    Each simulated device keeps a set of counters; experiment harnesses
    snapshot and diff them to report figures such as the estimated number of
    undo log I/Os (paper Figure 11). *)

type t = {
  mutable random_reads : int;
  mutable random_writes : int;
  mutable seq_read_bytes : int;
  mutable seq_write_bytes : int;
  mutable random_read_bytes : int;
  mutable random_write_bytes : int;
  mutable log_block_hits : int;
      (** log block cache: read served without simulated I/O *)
  mutable log_block_misses : int;  (** log block cache: priced random read *)
  mutable log_record_hits : int;
      (** decoded-record cache: decode skipped (pure CPU saving, no effect
          on simulated I/O accounting) *)
  mutable log_record_misses : int;  (** decoded-record cache: full decode *)
  mutable log_flush_calls : int;
      (** log durability requests ([Log_manager.flush] calls, including
          no-ops already covered by a previous batch) *)
  mutable log_flush_batches : int;
      (** priced log writes: one seek + one sequential transfer each *)
  mutable log_commits_coalesced : int;
      (** commit durability acknowledgements delivered by flush batches;
          divided by [log_flush_batches] this is the group-commit
          coalescing factor *)
  mutable faults_injected : int;
      (** faults a {!Fault_plan} actually fired on this device (torn pages
          applied at crash, bit flips, transient errors, torn log tails) *)
  mutable corruptions_detected : int;
      (** checksum/CRC mismatches observed by a reader (page fetch or
          recovery log scan) *)
  mutable pages_repaired : int;
      (** corrupt pages successfully rebuilt from the log *)
  mutable io_retries : int;
      (** extra attempts after transient I/O errors (backoff priced on the
          simulated clock) *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier] is the counter delta between two snapshots. *)

val total_ios : t -> int
val total_bytes : t -> int
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val pp : Format.formatter -> t -> unit

val pp_caches : Format.formatter -> t -> unit
(** Hit/total summary of the log read-path cache layers. *)

val pp_writes : Format.formatter -> t -> unit
(** Batches/requests/coalescing summary of the log write path. *)

val pp_faults : Format.formatter -> t -> unit
(** Injected/detected/repaired/retries summary of the fault-injection
    counters. *)
