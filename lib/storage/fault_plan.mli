(** Deterministic, seeded fault-injection plan.

    A plan is consulted by {!Disk} on every page I/O and by the log manager
    at crash time.  All decisions are drawn from one seeded PRNG, so a run
    with the same seed, the same workload and the same media replays the
    exact same fault schedule — the property harness relies on this to
    compare a faulted run against a fault-free oracle.

    Fault model:
    - {e torn page write}: a page write is marked tearable; if the system
      crashes before the page is written again, only a sector-aligned
      prefix of the new image reaches the platter (the rest keeps the old
      bytes), so the stored checksum no longer matches.
    - {e bit rot on read}: a read flips one bit of the {e stored} image
      (media decay), detected by checksum verification on the next fetch.
    - {e transient I/O error}: the operation fails once; a bounded
      retry-with-backoff (priced on the simulated clock) succeeds.
    - {e torn log tail}: at crash, a random prefix of the unflushed log
      records turns out to have reached disk, with the last of them torn
      mid-record.  Recovery must detect the tear by record CRC and truncate
      there — never below the durability point, so acknowledged commits are
      unaffected. *)

type t

val create :
  ?torn_write_rate:float ->
  ?bit_rot_rate:float ->
  ?transient_error_rate:float ->
  ?torn_log_tail_rate:float ->
  seed:int ->
  unit ->
  t
(** All rates are probabilities in [0, 1] and default to 0 (no faults of
    that class). *)

val seed : t -> int

type read_fault = Read_ok | Read_bit_rot | Read_transient
type write_fault = Write_ok | Write_torn_on_crash | Write_transient

val on_read : t -> read_fault
(** Draw the fault decision for one page read. *)

val on_write : t -> write_fault
(** Draw the fault decision for one page write. *)

val tear_log_tail : t -> bool
(** Whether this crash tears the log tail. *)

val torn_cut : t -> page_size:int -> int
(** Sector-aligned (512 B) cut point in (0, page_size) for a torn page:
    bytes before the cut come from the new image, bytes after from the old
    one. *)

val bit_rot_offset : t -> header_size:int -> page_size:int -> int * int
(** [(byte_offset, bit)] to flip for bit rot.  The offset lands in the page
    body (past the header), so the flip is always covered by the page
    checksum. *)

val torn_tail_keep : t -> len:int -> int
(** How many records of an [len]-record unflushed log tail survived the
    crash (in [0, len]); the last survivor is the torn one. *)

val torn_record_cut : t -> len:int -> int
(** How many bytes of a [len]-byte torn log record reached disk
    (in [1, len - 1]). *)
