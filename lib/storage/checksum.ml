(* Unaligned 16-bit load; callers validate bounds once up front so the hot
   loop is free of per-byte checks. *)
external get16u : Bytes.t -> int -> int = "%caml_bytes_get16u"

(* All arithmetic is on plain [int]s (the CRC state fits in 32 bits on a
   64-bit host): the previous bytewise kernel spent most of its time boxing
   intermediate [Int32] values, one allocation per input byte. *)
let poly = 0xedb88320

(* Slicing-by-8 tables, flat 8*256 array; entry [k*256 + n] advances the CRC
   of byte value [n] past [k] further zero bytes. *)
let tables =
  lazy
    (let t = Array.make (8 * 256) 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
       done;
       t.(n) <- !c
     done;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let prev = t.(((k - 1) * 256) + n) in
         t.((k * 256) + n) <- (prev lsr 8) lxor t.(prev land 0xff)
       done
     done;
     t)

(* --- GF(2) operators over CRC state (zlib's combine machinery) ---

   A matrix is 32 column vectors, each an [int] holding 32 bits; multiplying
   a CRC by the matrix advances it past a block of zero bytes without
   touching any data. *)

let gf2_times mat vec =
  let sum = ref 0 in
  let vec = ref vec in
  let i = ref 0 in
  while !vec <> 0 do
    if !vec land 1 <> 0 then sum := !sum lxor mat.(!i);
    vec := !vec lsr 1;
    incr i
  done;
  !sum

(* [zero_ops.(k)] advances a CRC past [2^k] zero bytes; built once by
   repeated squaring of the one-zero-byte operator. *)
let zero_ops =
  lazy
    (let t = Lazy.force tables in
     let one_byte = Array.init 32 (fun n ->
         let v = 1 lsl n in
         (v lsr 8) lxor t.(v land 0xff))
     in
     let ops = Array.make 63 [||] in
     ops.(0) <- one_byte;
     for k = 1 to 62 do
       let prev = ops.(k - 1) in
       ops.(k) <- Array.init 32 (fun n -> gf2_times prev prev.(n))
     done;
     ops)

(* Advance a (finalized) CRC past [len] zero bytes: one matrix application
   per set bit of [len]. *)
let apply_zeros crc len =
  let ops = Lazy.force zero_ops in
  let crc = ref crc in
  let len = ref len in
  let k = ref 0 in
  while !len <> 0 do
    if !len land 1 <> 0 then crc := gf2_times ops.(!k) !crc;
    len := !len lsr 1;
    incr k
  done;
  !crc

let crc32_combine crc1 crc2 ~len2 =
  if len2 < 0 then invalid_arg "Checksum.crc32_combine: negative len2";
  if len2 = 0 then crc1
  else
    Int32.of_int
      (apply_zeros (Int32.to_int crc1 land 0xffffffff) len2
      lxor (Int32.to_int crc2 land 0xffffffff))

(* --- the kernels --- *)

let crc32_bytewise ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.crc32_bytewise: out of bounds";
  let t = Lazy.force tables in
  let c = ref (Int32.to_int init land 0xffffffff lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xffffffff)

(* One slicing-by-8 step: fold 8 bytes at [i] into pre-conditioned state
   [c].  The table indices are masked to 8 bits (plus a fixed slice offset),
   so the unchecked accesses are in range by construction; [c] stays below
   2^32 because every table entry does. *)
let[@inline] step t c b i =
  let lo = c lxor (get16u b i lor (get16u b (i + 2) lsl 16)) in
  let hi = get16u b (i + 4) lor (get16u b (i + 6) lsl 16) in
  Array.unsafe_get t (0x700 + (lo land 0xff))
  lxor Array.unsafe_get t (0x600 + ((lo lsr 8) land 0xff))
  lxor Array.unsafe_get t (0x500 + ((lo lsr 16) land 0xff))
  lxor Array.unsafe_get t (0x400 + (lo lsr 24))
  lxor Array.unsafe_get t (0x300 + (hi land 0xff))
  lxor Array.unsafe_get t (0x200 + ((hi lsr 8) land 0xff))
  lxor Array.unsafe_get t (0x100 + ((hi lsr 16) land 0xff))
  lxor Array.unsafe_get t (hi lsr 24)

(* Single-stream slicing-by-8 over pre-conditioned state. *)
let crc_stream t b ~pos ~len ~c0 =
  let c = ref c0 in
  let i = ref pos in
  let stop8 = pos + (len land lnot 7) in
  while !i < stop8 do
    c := step t !c b !i;
    i := !i + 8
  done;
  let stop = pos + len in
  while !i < stop do
    c := Array.unsafe_get t ((!c lxor Char.code (Bytes.unsafe_get b !i)) land 0xff) lxor (!c lsr 8);
    incr i
  done;
  !c

(* Above this size the buffer is split into two independently-CRCed streams
   whose slicing steps interleave in one loop: the per-stream serial
   dependency on the CRC state is the throughput limit, and two chains give
   the CPU twice the instruction-level parallelism.  The halves are merged
   with the same zero-operator algebra as {!crc32_combine}. *)
let dual_threshold = 128

let crc32 ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Checksum.crc32: out of bounds";
  let t = Lazy.force tables in
  let c0 = Int32.to_int init land 0xffffffff lxor 0xffffffff in
  if len < dual_threshold then Int32.of_int (crc_stream t b ~pos ~len ~c0 lxor 0xffffffff)
  else begin
    let half = len / 2 land lnot 7 in
    let len2 = len - half in
    let ca = ref c0 in
    let cb = ref 0xffffffff in
    let i = ref pos in
    let j = ref (pos + half) in
    for _ = 1 to half / 8 do
      ca := step t !ca b !i;
      cb := step t !cb b !j;
      i := !i + 8;
      j := !j + 8
    done;
    (* The second stream may be up to 15 bytes longer; finish it alone. *)
    let cb = crc_stream t b ~pos:!j ~len:(pos + len - !j) ~c0:!cb in
    Int32.of_int
      (apply_zeros (!ca lxor 0xffffffff) len2 lxor (cb lxor 0xffffffff))
  end

let crc32_string s = crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
