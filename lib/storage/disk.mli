(** Simulated page-addressed disk.

    The disk holds the durable state of a database file: buffer-pool flushes
    write here, crash simulation discards everything {e except} the disk and
    the flushed portion of the log.  Every access is priced through the
    {!Media} model against the shared {!Sim_clock}.

    Reads of pages that were never written return a zeroed page, matching the
    behaviour of extending a file with zero fill.

    When a {!Fault_plan} is attached, every priced read/write consults it:
    transient errors raise {!Io_error}, bit rot silently damages the stored
    image (detected by the checksum on the next fetch), and torn writes are
    recorded and applied by {!apply_crash} at crash time.  The [nocost]
    paths never fault (they model offline/bulk operations). *)

type t

exception Corrupt_page of Page_id.t
(** A fetched page failed checksum verification (raised by readers that
    verify, e.g. the buffer pool's page source). *)

exception Io_error of { page : Page_id.t; write : bool }
(** A transient device error.  Retryable: the [*_retrying] variants absorb
    up to a bounded number of these with simulated backoff. *)

val create : clock:Sim_clock.t -> media:Media.t -> ?fault_plan:Fault_plan.t -> unit -> t
val clock : t -> Sim_clock.t
val media : t -> Media.t
val stats : t -> Io_stats.t
val fault_plan : t -> Fault_plan.t option
val set_fault_plan : t -> Fault_plan.t option -> unit

val page_count : t -> int
(** One past the highest page ever written (or reserved via {!extend}). *)

val extend : t -> int -> unit
(** [extend t n] grows the file to at least [n] pages with zero fill,
    without storing anything.  Models the cold static bulk of a large
    database: the pages exist (backup must copy them; reads return zeros)
    but occupy no simulator memory. *)

val has_page : t -> Page_id.t -> bool
(** Whether the page was ever actually written (false for zero-filled
    holes). *)

val written_pages : t -> int
(** Number of pages with real content (excludes zero-filled holes). *)

val read_page : t -> Page_id.t -> Page.t
(** Random read of one page; returns a fresh copy. *)

val write_page : t -> Page_id.t -> Page.t -> unit
(** Random write of one page; the disk keeps its own copy. *)

val read_page_seq : t -> Page_id.t -> Page.t
(** Like {!read_page} but priced as sequential I/O (used by backup and
    restore streams). *)

val write_page_seq : t -> Page_id.t -> Page.t -> unit

val read_page_nocost : t -> Page_id.t -> Page.t
(** Read without advancing the clock; test and assertion helper. *)

val write_page_nocost : t -> Page_id.t -> Page.t -> unit
(** Store without advancing the clock, for callers that have already
    priced the transfer in bulk (e.g. a streamed restore). *)

val read_page_retrying : t -> Page_id.t -> Page.t
(** {!read_page} with bounded retry: a transient {!Io_error} is retried up
    to three times with exponential backoff priced on the simulated clock
    ({!Io_stats.t.io_retries} counts the extra attempts).  Exhausting the
    budget re-raises. *)

val write_page_retrying : t -> Page_id.t -> Page.t -> unit
val write_page_seq_retrying : t -> Page_id.t -> Page.t -> unit

val apply_crash : t -> int
(** Apply every pending torn write to the stored images (the crash
    happened before those pages were rewritten); returns how many pages
    were torn.  Clears the pending set. *)

val pending_torn : t -> int
(** Writes currently marked tearable-on-crash. *)

val corrupt_stored : t -> Page_id.t -> unit
(** Deterministically flip one stored bit of the page (first body byte) —
    fault-injection helper for tests; no-op on never-written pages. *)

val verify_checksums : t -> bool
(** Check every stored page's checksum (free of I/O cost). *)
