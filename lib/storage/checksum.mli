(** CRC-32 (IEEE 802.3 polynomial) checksums for page integrity.

    Pages carry a checksum computed on flush and verified on read so that a
    torn or corrupted page image is detected rather than silently used.

    The main kernel is a table-driven slicing-by-8 implementation over plain
    [int] arithmetic (eight bytes per step, no [Int32] boxing); see DESIGN.md
    "Write path". *)

val crc32 : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** [crc32 b ~pos ~len] is the CRC-32 of [len] bytes of [b] starting at
    [pos].  [init] allows incremental computation over several slices. *)

val crc32_bytewise : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** Reference one-byte-at-a-time kernel.  Always agrees with {!crc32}; kept
    for cross-checking and as the benchmark baseline. *)

val crc32_string : string -> int32
(** CRC-32 of a whole string. *)

val crc32_combine : int32 -> int32 -> len2:int -> int32
(** [crc32_combine crc1 crc2 ~len2] is the CRC-32 of the concatenation of two
    buffers whose individual checksums are [crc1] and [crc2], where the
    second buffer is [len2] bytes long — O(log len2), without rereading
    either buffer.  This is the incremental entry point for checksumming a
    page from cached per-region CRCs when only one region changed. *)
