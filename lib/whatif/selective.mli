(** Selective transaction undo with dependency-aware replay.

    Surgically removes one committed {e victim} transaction from the
    database: only the pages in the victim's downstream closure
    ({!Dep_graph.closure}) are rewound — each to just before the removed
    set's first write — and the closure's other members are re-applied
    in commit order with key-aware anchoring, so every independent
    transaction is untouched and pays nothing.  The cost scales with the
    dependent set, not with history length (experiment e11).

    The result is published two ways:
    - {!repair}: in place, as one compensating transaction logged
      through the ordinary write path ([Access_ctx.modify]) — the
      repaired history recovers and replicates like any other;
    - {!what_if_view}: as a read-only database view over a sparse side
      file of repaired images, attached to the engine for querying
      ([REWIND TRANSACTION t AS name] / [\whatif]).

    Exactness caveats (docs/WHATIF.md): dependencies are page-granular
    (conservatively wide), and replay re-applies logged after-images,
    which equals re-execution only for writes that do not compute on the
    victim's data.  Anything outside the replayable envelope —
    structural operations in the removed set, non-B-tree replay targets,
    a cut below the retention window, replay anchors that do not
    resolve — is refused as a conflict, never applied partially. *)

type scope =
  | Dependents  (** the victim's transitive dependents — the normal mode *)
  | All_successors
      (** every transaction committed after the victim — the
          full-database-rewind baseline e11 compares against *)

type conflict = {
  page : Rw_storage.Page_id.t;  (** [Page_id.nil] for whole-transaction conflicts *)
  lsn : Rw_storage.Lsn.t;
  reason : string;
}

type stats = {
  closure_size : int;  (** |D|: victim plus replayed transactions *)
  replayed_txns : int;
  pages_rewound : int;
  ops_unwound : int;  (** modifications undone by the page rewinds *)
  ops_replayed : int;  (** replay-set operations re-applied *)
}

exception Unknown_txn of Rw_wal.Txn_id.t
(** The victim is not a committed transaction in the dependency graph. *)

val preview :
  ctx:Rw_access.Access_ctx.t ->
  log:Rw_wal.Log_manager.t ->
  graph:Dep_graph.t ->
  victim:Rw_wal.Txn_id.t ->
  ?scope:scope ->
  unit ->
  (stats, conflict list) result
(** Dry run: plan the removal and compute every target image on scratch
    copies, touching neither the database nor the engine.  Returns the
    stats the real {!repair}/{!what_if_view} would report — the
    costing path e11 and the microbenchmarks price.  Raises
    {!Unknown_txn}. *)

val repair :
  ctx:Rw_access.Access_ctx.t ->
  log:Rw_wal.Log_manager.t ->
  graph:Dep_graph.t ->
  victim:Rw_wal.Txn_id.t ->
  ?scope:scope ->
  wall_us:float ->
  ?on_progress:(int -> unit) ->
  unit ->
  (stats, conflict list) result
(** Remove the victim in place.  All target images are computed on
    scratch copies first; only a fully conflict-free plan touches the
    database, as one transaction whose per-page row diffs are logged
    through the ordinary write path (crash during the repair rolls it
    back like any other transaction).  [on_progress i] fires before page
    [i] of the repair is applied — the crash-injection hook tests use.
    Raises {!Unknown_txn}. *)

val what_if_view :
  engine:Rw_engine.Engine.t ->
  db:Rw_engine.Database.t ->
  graph:Dep_graph.t ->
  victim:Rw_wal.Txn_id.t ->
  ?scope:scope ->
  name:string ->
  unit ->
  (Rw_engine.Database.t * stats, conflict list) result
(** Publish the victim-free state as a read-only view named [name],
    attached to [engine]: reads of affected pages hit the sparse side
    file of repaired images, everything else falls through to the live
    database.  Raises {!Unknown_txn}. *)
