(* Selective transaction undo with dependency-aware replay.

   Given a committed victim transaction t, rewind only the pages in t's
   downstream closure D (per {!Dep_graph}) to just before t's effects
   and re-apply the other members of D in commit order — leaving every
   independent transaction untouched.  The result is published either as
   a read-only what-if view or as an in-place repair logged through the
   ordinary write path, so the repaired history is itself recoverable
   and replicable.

   Why this is sound at page granularity: cut(P) is one less than the
   first D-write to P, so everything below the cut predates D on that
   page.  Above the cut, {!validate} checks (via the chain index) that
   every record belongs to D or to an aborted transaction whose page
   effects are entirely above the cut (net-nil there); a committed
   outsider writing above the cut is folded into D and the plan is
   recomputed — with serial histories this never fires, it is the
   backstop for interleaved multi-session logs.  A record owned by an
   in-flight transaction (open in some session, neither committed nor
   aborted — {!Log_manager.txn_resolution}) is a hard conflict: the
   rewind would erase writes that nothing ever replays, and that
   session's later commit or abort would then act on pages missing its
   rows.  Likewise any owner whose chain crosses the retention
   boundary.  Rewinding each affected
   page to its cut therefore removes exactly D's effects plus net-nil
   noise, and replaying D minus the victim in global LSN order restores
   everything but the victim.

   Replay is key-aware, not slot-aware: removing the victim shifts slot
   indices, so each logged operation is re-anchored by its row key
   ({!Rw_storage.Slotted_page.find_key}) before being applied.  Logged
   after-images are re-applied verbatim, which equals re-execution
   exactly when the replayed writes do not compute on the victim's data
   — the blind-write caveat docs/WHATIF.md spells out.  Structural
   operations (format/preformat/header/FPI) have no key anchor and are
   refused as conflicts, as is any non-B-tree page with replay work. *)

module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Slotted_page = Rw_storage.Slotted_page
module Sparse_file = Rw_storage.Sparse_file
module Txn_id = Rw_wal.Txn_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Page_undo = Rw_core.Page_undo
module Access_ctx = Rw_access.Access_ctx
module Rowfmt = Rw_access.Rowfmt
module Txn_manager = Rw_txn.Txn_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Database = Rw_engine.Database
module Engine = Rw_engine.Engine
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

type scope = Dependents | All_successors

type conflict = { page : Page_id.t; lsn : Lsn.t; reason : string }

type stats = {
  closure_size : int;
  replayed_txns : int;
  pages_rewound : int;
  ops_unwound : int;
  ops_replayed : int;
}

exception Unknown_txn of Txn_id.t

(* ---------------------------------------------------------------- *)
(* Planning: the removed set D, the affected pages and their cuts.  *)

type plan = {
  victim : Dep_graph.node;
  removed : Dep_graph.node list; (* D: victim + replay set, commit order *)
  replay : Dep_graph.node list; (* D minus the victim, commit order *)
  cuts : (Page_id.t * Lsn.t) list; (* affected page -> rewind target *)
}

let no_page = Page_id.nil

let in_set nodes =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (n : Dep_graph.node) -> Hashtbl.replace tbl (Txn_id.to_int n.txn) ()) nodes;
  fun txn -> Hashtbl.mem tbl (Txn_id.to_int txn)

let cuts_of removed =
  let firsts : (int64, Lsn.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Dep_graph.node) ->
      List.iter
        (fun (page, lsn) ->
          let key = Page_id.to_int64 page in
          match Hashtbl.find_opt firsts key with
          | Some prev when Lsn.(prev <= lsn) -> ()
          | _ -> Hashtbl.replace firsts key lsn)
        n.writes)
    removed;
  Hashtbl.fold
    (fun key first acc ->
      (Page_id.of_int64 key, Lsn.of_int (Lsn.to_int first - 1)) :: acc)
    firsts []
  |> List.sort (fun (a, _) (b, _) -> Page_id.compare a b)

(* Does the (non-graph, i.e. aborted or in-flight) transaction owning
   [from_lsn] have a record on [page] at or below [cut]?  Walks the
   transaction's own backward chain — O(its ops). *)
let straddles_cut ~log ~page ~cut ~from_lsn =
  let rec walk lsn =
    if Lsn.is_nil lsn then false
    else
      let r = Log_manager.read log lsn in
      let here =
        match r.Log_record.body with
        | Page_op { page = p; _ } | Clr { page = p; _ } ->
            Page_id.equal p page && Lsn.(lsn <= cut)
        | _ -> false
      in
      here || walk r.Log_record.prev_txn_lsn
  in
  walk from_lsn

(* Check every above-cut chain record on every affected page: members of
   D are expected; a committed outsider is returned for widening; an
   aborted transaction must not straddle the cut; an in-flight (open,
   uncommitted) transaction — possibly another session's — is refused
   outright, because the page rewind would erase its writes and nothing
   ever replays them.  So is any transaction whose history crosses the
   retention boundary: it can neither be replayed nor proven net-nil. *)
let validate ~log ~graph ~removed ~cuts =
  let is_removed = in_set removed in
  let widen = ref [] in
  let conflicts = ref [] in
  List.iter
    (fun (page, cut) ->
      let lsns =
        Log_manager.chain_segment log page ~from:(Log_manager.end_lsn log) ~down_to:cut
      in
      Array.iter
        (fun lsn ->
          let pk = Log_manager.peek_record log lsn in
          let txn = pk.Log_record.p_txn in
          if Txn_id.is_nil txn || is_removed txn then ()
          else
            match Dep_graph.find graph txn with
            | Some node ->
                if not (List.exists (fun (n : Dep_graph.node) -> Txn_id.equal n.txn txn) !widen)
                then widen := node :: !widen
            | None -> (
                let conflict reason = conflicts := { page; lsn; reason } :: !conflicts in
                match Log_manager.txn_resolution log txn with
                | `Active ->
                    conflict "an in-flight transaction writes above the rewind cut"
                | `Committed ->
                    conflict
                      "a transaction committed after the dependency graph was built; retry"
                | `Unknown ->
                    conflict
                      "a transaction straddling the log retention boundary writes above the \
                       rewind cut"
                | `Aborted -> (
                    match straddles_cut ~log ~page ~cut ~from_lsn:lsn with
                    | true -> conflict "aborted transaction straddles the rewind cut"
                    | false -> ()
                    | exception Log_manager.Log_truncated _ ->
                        conflict
                          "aborted transaction's history crosses the log retention boundary")))
        lsns)
    cuts;
  (!widen, List.rev !conflicts)

let make_plan ~log ~graph ~victim ~scope =
  let victim_node =
    match Dep_graph.find graph victim with
    | Some n -> n
    | None -> raise (Unknown_txn victim)
  in
  let initial =
    match scope with
    | Dependents -> Dep_graph.closure graph victim
    | All_successors -> Dep_graph.successors graph victim
  in
  (* Fixpoint: fold committed outsiders writing above a cut into D. *)
  let rec settle removed =
    let cuts = cuts_of removed in
    let widen, conflicts = validate ~log ~graph ~removed ~cuts in
    if conflicts <> [] then Error conflicts
    else if widen = [] then Ok (removed, cuts)
    else
      let extra =
        List.concat_map (fun (n : Dep_graph.node) -> Dep_graph.closure graph n.txn) widen
      in
      let is_old = in_set removed in
      let fresh =
        List.filter (fun (n : Dep_graph.node) -> not (is_old n.txn)) extra
      in
      let merged =
        List.sort_uniq
          (fun (a : Dep_graph.node) (b : Dep_graph.node) -> Lsn.compare a.commit_lsn b.commit_lsn)
          (removed @ fresh)
      in
      settle merged
  in
  match settle initial with
  | Error conflicts -> Error conflicts
  | Ok (removed, cuts) ->
      let structural =
        List.filter_map
          (fun (n : Dep_graph.node) ->
            if n.structural then
              Some
                {
                  page = no_page;
                  lsn = n.first_lsn;
                  reason =
                    Printf.sprintf "transaction %d logged a structural page operation"
                      (Txn_id.to_int n.txn);
                }
            else None)
          removed
      in
      let clr_victim =
        if victim_node.has_clr then
          [
            {
              page = no_page;
              lsn = victim_node.first_lsn;
              reason = "victim performed a partial rollback (CLRs); remove it whole-history instead";
            };
          ]
        else []
      in
      let conflicts = structural @ clr_victim in
      if conflicts <> [] then Error conflicts
      else
        let replay =
          List.filter
            (fun (n : Dep_graph.node) -> not (Txn_id.equal n.txn victim))
            removed
        in
        Ok { victim = victim_node; removed; replay; cuts }

(* ---------------------------------------------------------------- *)
(* Replay: target images on scratch copies.                         *)

(* The victim-free history shifts slot indices, so each logged
   operation is re-anchored by row key before being applied. *)
let replay_op p page lsn op =
  let fail reason = Error { page; lsn; reason } in
  match op with
  | Log_record.Insert_row { row; _ } -> (
      match Slotted_page.find_key p (Rowfmt.row_key row) with
      | Either.Left _ -> fail "replayed insert finds its key already present"
      | Either.Right at -> (
          try
            Slotted_page.insert p ~at row;
            Ok ()
          with Slotted_page.Page_full -> fail "replayed insert does not fit"))
  | Log_record.Delete_row { row; _ } -> (
      match Slotted_page.find_key p (Rowfmt.row_key row) with
      | Either.Left at ->
          Slotted_page.delete p ~at;
          Ok ()
      | Either.Right _ -> fail "replayed delete finds no row under its key")
  | Log_record.Update_row { before; after; _ } ->
      let key = Rowfmt.row_key before in
      if Rowfmt.row_key after <> key then fail "replayed update changes the row key"
      else (
        match Slotted_page.find_key p key with
        | Either.Left at -> (
            try
              Slotted_page.set p ~at after;
              Ok ()
            with Slotted_page.Page_full -> fail "replayed update does not fit")
        | Either.Right _ -> fail "replayed update finds no row under its key")
  | Log_record.Set_header _ | Log_record.Format _ | Log_record.Preformat _
  | Log_record.Full_image _ ->
      fail "structural operation in the replay set"

(* All page operations (CLRs included — together they are the net
   effect) of one transaction, ascending by LSN; walks the txn chain,
   O(its ops). *)
let ops_of_txn ~log (node : Dep_graph.node) =
  let rec walk lsn acc =
    if Lsn.is_nil lsn then acc
    else
      let r = Log_manager.read log lsn in
      let acc =
        match r.Log_record.body with
        | Page_op { page; op; _ } | Clr { page; op; _ } -> (lsn, page, op) :: acc
        | _ -> acc
      in
      walk r.Log_record.prev_txn_lsn acc
  in
  walk node.last_op_lsn []

type targets = {
  images : (Page_id.t * Page.t) list; (* repaired image per affected page *)
  t_stats : stats;
}

let compute_targets ~ctx ~log (plan : plan) =
  let copies : (int64, Page.t) Hashtbl.t = Hashtbl.create 16 in
  let ops_unwound = ref 0 in
  let conflicts = ref [] in
  (* Rewind every affected page to its cut on a scratch copy. *)
  List.iter
    (fun (page, cut) ->
      let p = Access_ctx.read ctx page (fun p -> Page.copy p) in
      (try
         let r = Page_undo.prepare_page_as_of ~log ~page:p ~as_of:cut in
         ops_unwound := !ops_unwound + r.Page_undo.ops_undone
       with
      | Log_manager.Log_truncated _ ->
          conflicts :=
            { page; lsn = cut; reason = "rewind cut is below the log retention window" }
            :: !conflicts
      | Page_undo.Chain_broken { lsn; _ } ->
          conflicts := { page; lsn; reason = "page chain is broken" } :: !conflicts);
      Hashtbl.replace copies (Page_id.to_int64 page) p)
    plan.cuts;
  (* Gather the replay set's operations in global LSN order.  A replay
     chain reaching below the retention boundary cannot be re-applied;
     surface it as the same typed conflict a truncated rewind gets. *)
  let ops =
    if !conflicts <> [] then []
    else
      try
        plan.replay
        |> List.concat_map (fun n -> ops_of_txn ~log n)
        |> List.sort (fun (a, _, _) (b, _, _) -> Lsn.compare a b)
      with Log_manager.Log_truncated l ->
        conflicts :=
          {
            page = no_page;
            lsn = l;
            reason = "replay set's history crosses the log retention window";
          }
          :: !conflicts;
        []
  in
  let ops_replayed = ref 0 in
  if !conflicts = [] then
    List.iter
      (fun (lsn, page, op) ->
        if !conflicts = [] then
          let p = Hashtbl.find copies (Page_id.to_int64 page) in
          if Page.typ p <> Page.Btree then
            conflicts :=
              { page; lsn; reason = "replay target is not a B-tree page" } :: !conflicts
          else
            match replay_op p page lsn op with
            | Ok () -> incr ops_replayed
            | Error c -> conflicts := c :: !conflicts)
      ops;
  match !conflicts with
  | _ :: _ as cs -> Error (List.rev cs)
  | [] ->
      let images =
        Hashtbl.fold (fun key p acc -> (Page_id.of_int64 key, p) :: acc) copies []
        |> List.sort (fun (a, _) (b, _) -> Page_id.compare a b)
      in
      Ok
        {
          images;
          t_stats =
            {
              closure_size = List.length plan.removed;
              replayed_txns = List.length plan.replay;
              pages_rewound = List.length plan.cuts;
              ops_unwound = !ops_unwound;
              ops_replayed = !ops_replayed;
            };
        }

let record_stats (s : stats) =
  Obs.incr Probes.whatif_rewinds;
  Obs.add Probes.whatif_pages_rewound s.pages_rewound;
  Obs.add Probes.whatif_ops_replayed s.ops_replayed

let conflicted cs =
  Obs.incr Probes.whatif_conflicts;
  Error cs

let prepare ~ctx ~log ~graph ~victim ~scope =
  match make_plan ~log ~graph ~victim ~scope with
  | Error cs -> conflicted cs
  | Ok plan -> (
      match compute_targets ~ctx ~log plan with
      | Error cs -> conflicted cs
      | Ok targets -> Ok (plan, targets))

let preview ~ctx ~log ~graph ~victim ?(scope = Dependents) () =
  match prepare ~ctx ~log ~graph ~victim ~scope with
  | Error _ as e -> e
  | Ok (_plan, targets) -> Ok targets.t_stats

(* ---------------------------------------------------------------- *)
(* Publication 1: in-place repair through the ordinary write path.  *)

(* Turn (current, target) into key-anchored row operations.  Slots are
   computed against a working copy that evolves exactly as the live page
   will under Access_ctx.modify, so each emitted slot index is valid at
   its application time.  Deletes run first (freeing space), then
   updates, then inserts. *)
let diff_ops ~current ~target =
  let w = Page.copy current in
  let keys p = Slotted_page.fold p ~init:[] ~f:(fun acc at _ -> Slotted_page.key_at p ~at :: acc) in
  let target_row key =
    match Slotted_page.find_key target key with
    | Either.Left at -> Some (Slotted_page.get target ~at)
    | Either.Right _ -> None
  in
  let ops = ref [] in
  let emit op =
    Log_record.redo Page_id.nil op w;
    ops := op :: !ops
  in
  let current_keys = List.rev (keys w) in
  (* Deletes. *)
  List.iter
    (fun key ->
      if target_row key = None then
        match Slotted_page.find_key w key with
        | Either.Left at ->
            emit (Log_record.Delete_row { slot = at; row = Slotted_page.get w ~at })
        | Either.Right _ -> assert false)
    current_keys;
  (* Updates. *)
  List.iter
    (fun key ->
      match target_row key with
      | None -> ()
      | Some after -> (
          match Slotted_page.find_key w key with
          | Either.Left at ->
              let before = Slotted_page.get w ~at in
              if before <> after then
                emit (Log_record.Update_row { slot = at; before; after })
          | Either.Right _ -> assert false))
    current_keys;
  (* Inserts. *)
  Slotted_page.iter target (fun _ row ->
      let key = Rowfmt.row_key row in
      match Slotted_page.find_key w key with
      | Either.Left _ -> ()
      | Either.Right at -> emit (Log_record.Insert_row { slot = at; row }));
  List.rev !ops

let repair ~ctx ~log ~graph ~victim ?(scope = Dependents) ~wall_us ?on_progress () =
  match prepare ~ctx ~log ~graph ~victim ~scope with
  | Error _ as e -> e
  | Ok (_plan, targets) ->
      let txns = Access_ctx.txns ctx in
      let txn = Txn_manager.begin_txn txns in
      List.iteri
        (fun i (page, target) ->
          (match on_progress with Some f -> f i | None -> ());
          let current = Access_ctx.read ctx page (fun p -> Page.copy p) in
          List.iter (fun op -> Access_ctx.modify ctx txn page op) (diff_ops ~current ~target))
        targets.images;
      ignore (Txn_manager.commit_begin txns txn ~wall_us);
      ignore (Txn_manager.flush_commits txns);
      Txn_manager.finished txns txn;
      record_stats targets.t_stats;
      Ok targets.t_stats

(* ---------------------------------------------------------------- *)
(* Publication 2: a read-only what-if view.                         *)

let what_if_view ~engine ~db ~graph ~victim ?(scope = Dependents) ~name () =
  let ctx = Database.ctx db in
  let log = Database.log db in
  match prepare ~ctx ~log ~graph ~victim ~scope with
  | Error _ as e -> e
  | Ok (_plan, targets) ->
      let side =
        Sparse_file.create ~clock:(Database.clock db) ~media:(Database.media db) ()
      in
      List.iter (fun (page, image) -> Sparse_file.write side page image) targets.images;
      let source =
        {
          Buffer_pool.read =
            (fun page ->
              match Sparse_file.read side page with
              | Some p -> p
              | None -> Access_ctx.read ctx page (fun p -> Page.copy p));
          write = (fun page p -> Sparse_file.write side page p);
          write_seq = None;
          read_cached = None;
        }
      in
      let pool = Buffer_pool.create ~capacity:64 ~source () in
      let view = Database.view_over_pool ~name ~base:db ~pool ~snapshot:None in
      let view = Engine.attach_database engine view in
      record_stats targets.t_stats;
      Ok (view, targets.t_stats)
