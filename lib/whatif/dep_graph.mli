(** Transaction dependency graph over the committed history.

    One node per committed, non-aborted transaction retained in the log;
    a directed edge links consecutive distinct writers of each page, in
    first-write LSN order (earlier writer -> later writer).  The
    transitive closure of a node therefore contains every committed
    transaction whose reads-from/overwrites chain can reach back to it
    at page granularity — the set that must be replayed when the node is
    surgically removed ({!Selective}).

    Page granularity is deliberately conservative: transactions that
    touched disjoint rows of one page, and predicate reads whose phantom
    range spans a written page, both become edges.  False edges only
    enlarge the replay set; they never cause a missed dependency.  See
    docs/WHATIF.md for the construction rules and exactness caveats. *)

type node = {
  txn : Rw_wal.Txn_id.t;
  commit_lsn : Rw_storage.Lsn.t;
  commit_wall_us : float;
  first_lsn : Rw_storage.Lsn.t;
  last_op_lsn : Rw_storage.Lsn.t;
  ops : int;  (** page operations logged, CLRs included *)
  structural : bool;
      (** logged a structural op (format/preformat/header/FPI) — not
          replayable by the key-aware engine, so not removable and a
          conflict when inside a replay closure *)
  has_clr : bool;  (** wrote compensation records (partial rollback) *)
  writes : (Rw_storage.Page_id.t * Rw_storage.Lsn.t) list;
      (** (page, LSN of first write to it), ascending by LSN *)
}

type t

val build : log:Rw_wal.Log_manager.t -> t
(** Build the graph from the log's append-time write-set index
    ({!Rw_wal.Log_manager.txn_summaries}): O(transactions + write-set
    size + edges), with no log scan unless the index was voided by a
    tail-dropping event (then the summaries call rebuilds it with one
    priced scan — {!built_from_index} reports which path ran). *)

val node_count : t -> int
val edge_count : t -> int

val built_from_index : t -> bool
(** [true] when the graph came from the live append-time index, [false]
    when a rebuild scan was needed. *)

val nodes : t -> node list
(** All nodes, ascending by commit LSN (serialization order). *)

val find : t -> Rw_wal.Txn_id.t -> node option

val dependents : t -> Rw_wal.Txn_id.t -> node list
(** Direct successors only. *)

val closure : t -> Rw_wal.Txn_id.t -> node list
(** The transaction plus its transitive dependents, ascending by commit
    LSN.  Empty if the transaction is not in the graph. *)

val successors : t -> Rw_wal.Txn_id.t -> node list
(** The transaction plus {e every} transaction that committed after it,
    ascending by commit LSN — the scope of a full-database rewind, used
    as the baseline {!Selective} compares against. *)
