(* Transaction dependency graph over the committed history.

   Nodes are the committed, non-aborted transactions retained in the
   log; edges follow the page-granularity dependency rule: on each page,
   consecutive distinct writers (in first-write LSN order) are linked
   earlier -> later.  Because our write sets are page-granular — the
   finest unit the physiological log records without payload
   interpretation — a reader that only {e read} a page some earlier
   transaction wrote is already covered: any write it performed lands on
   some page and is ordered there.  The cost is conservatism: two
   transactions that touched disjoint rows of the same page are declared
   dependent.  (docs/WHATIF.md discusses the exactness caveats,
   including phantom/predicate reads, which page-granularity likewise
   over-approximates safely.)

   The graph is built from {!Log_manager.txn_summaries}, the
   append-time write-set index — O(live transactions + write-set size),
   no log scan, no payload decode — unless a tail-dropping event voided
   the index, in which case the summaries call transparently rebuilds it
   with one priced scan first ({!built_from_index} reports which). *)

module Lsn = Rw_storage.Lsn
module Page_id = Rw_storage.Page_id
module Txn_id = Rw_wal.Txn_id
module Log_manager = Rw_wal.Log_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

type node = {
  txn : Txn_id.t;
  commit_lsn : Lsn.t;
  commit_wall_us : float;
  first_lsn : Lsn.t;
  last_op_lsn : Lsn.t;
  ops : int;
  structural : bool;
  has_clr : bool;
  writes : (Page_id.t * Lsn.t) list;
}

type t = {
  nodes : node array; (* ascending by commit LSN *)
  by_txn : (int, int) Hashtbl.t; (* txn id -> index into [nodes] *)
  succ : int list array; (* direct dependents, ascending index *)
  edge_count : int;
  from_index : bool;
}

let node_of_summary (s : Log_manager.txn_summary) =
  {
    txn = s.ts_txn;
    commit_lsn = s.ts_commit_lsn;
    commit_wall_us = s.ts_commit_wall_us;
    first_lsn = s.ts_first_lsn;
    last_op_lsn = s.ts_last_lsn;
    ops = s.ts_ops;
    structural = s.ts_structural;
    has_clr = s.ts_has_clr;
    writes = s.ts_writes;
  }

let build ~log =
  let from_index = Log_manager.txn_index_live log in
  let nodes =
    Array.of_list (List.map node_of_summary (Log_manager.txn_summaries log))
  in
  let n = Array.length nodes in
  let by_txn = Hashtbl.create (2 * max 1 n) in
  Array.iteri (fun i nd -> Hashtbl.replace by_txn (Txn_id.to_int nd.txn) i) nodes;
  (* Per page, the (first-write LSN, writer index) pairs. *)
  let page_writers : (int64, (Lsn.t * int) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  Array.iteri
    (fun i nd ->
      List.iter
        (fun (page, lsn) ->
          let key = Page_id.to_int64 page in
          let cell =
            match Hashtbl.find_opt page_writers key with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add page_writers key c;
                c
          in
          cell := (lsn, i) :: !cell)
        nd.writes)
    nodes;
  let succ = Array.make n [] in
  let edge_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let edge_count = ref 0 in
  let add_edge i j =
    if i <> j && not (Hashtbl.mem edge_seen (i, j)) then begin
      Hashtbl.add edge_seen (i, j) ();
      succ.(i) <- j :: succ.(i);
      incr edge_count
    end
  in
  Hashtbl.iter
    (fun _page cell ->
      let writers =
        List.sort (fun (a, _) (b, _) -> Lsn.compare a b) !cell
      in
      let rec link = function
        | (_, i) :: ((_, j) :: _ as rest) ->
            add_edge i j;
            link rest
        | [ _ ] | [] -> ()
      in
      link writers)
    page_writers;
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq compare l) succ;
  Obs.incr Probes.whatif_graph_builds;
  Obs.add Probes.whatif_graph_edges !edge_count;
  { nodes; by_txn; succ; edge_count = !edge_count; from_index }

let node_count t = Array.length t.nodes
let edge_count t = t.edge_count
let built_from_index t = t.from_index
let nodes t = Array.to_list t.nodes

let find t txn =
  match Hashtbl.find_opt t.by_txn (Txn_id.to_int txn) with
  | Some i -> Some t.nodes.(i)
  | None -> None

let dependents t txn =
  match Hashtbl.find_opt t.by_txn (Txn_id.to_int txn) with
  | None -> []
  | Some i -> List.map (fun j -> t.nodes.(j)) t.succ.(i)

let closure t txn =
  match Hashtbl.find_opt t.by_txn (Txn_id.to_int txn) with
  | None -> []
  | Some root ->
      let in_closure = Array.make (Array.length t.nodes) false in
      let rec visit i =
        if not in_closure.(i) then begin
          in_closure.(i) <- true;
          List.iter visit t.succ.(i)
        end
      in
      visit root;
      (* Nodes are stored ascending by commit LSN, so a left-to-right
         sweep yields the closure in serialization order. *)
      let acc = ref [] in
      for i = Array.length t.nodes - 1 downto 0 do
        if in_closure.(i) then acc := t.nodes.(i) :: !acc
      done;
      !acc

let successors t txn =
  match Hashtbl.find_opt t.by_txn (Txn_id.to_int txn) with
  | None -> []
  | Some root ->
      let acc = ref [] in
      for i = Array.length t.nodes - 1 downto root do
        acc := t.nodes.(i) :: !acc
      done;
      !acc
