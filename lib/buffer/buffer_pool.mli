(** The buffer manager.

    Caches pages of one page source (the primary database file, or the
    snapshot view of it), enforces the WAL rule before writing back dirty
    pages, and tracks the dirty-page table used by checkpoints and recovery
    analysis.

    The page {e source} is abstract so the same pool serves both the primary
    database (reads hit the disk) and as-of snapshots (reads consult the
    sparse file, fall through to the primary and rewind — paper §5.3); the
    pool itself stays oblivious, exactly like the paper's buffer manager. *)

type source = {
  read : Rw_storage.Page_id.t -> Rw_storage.Page.t;
  write : Rw_storage.Page_id.t -> Rw_storage.Page.t -> unit;
  write_seq : (Rw_storage.Page_id.t -> Rw_storage.Page.t -> unit) option;
      (** Sequential continuation of a write run ({!flush_all} uses it for
          every page of a contiguous run after the first): priced as pure
          transfer, no seek.  [None] falls back to {!field-write}. *)
  read_cached : (Rw_storage.Page_id.t -> Rw_storage.Page.t option) option;
      (** Zero-cost peek consulted on a pool miss {e before} the priced
          {!field-read}.  Snapshot views wire this to exact hits in the
          shared prepared-page cache, so re-fetching an evicted page
          another snapshot has already rewound costs nothing; [Some page]
          must be byte-identical to what {!field-read} would return.
          [None] (the common case) always falls through. *)
}

type t

type frame

val of_disk : Rw_storage.Disk.t -> source
(** The standard source: random page reads/writes on a disk, sealing pages
    on write and verifying checksums on read.  Transient device errors are
    absorbed by bounded retry; a page failing verification raises
    [Rw_storage.Disk.Corrupt_page].  For a source that additionally
    {e repairs} corrupt pages from the log, see [Rw_recovery.Page_repair]. *)

val create :
  capacity:int -> source:source -> ?wal_flush:(Rw_storage.Lsn.t -> unit) -> unit -> t
(** [wal_flush lsn] is invoked before a dirty page with page-LSN [lsn] is
    written back (the WAL rule).  Raises on capacity < 1. *)

val fetch : t -> Rw_storage.Page_id.t -> frame
(** Pin the page, reading it from the source on a miss (evicting if full).
    Raises [Failure] if every frame is pinned. *)

val unpin : t -> frame -> unit

val with_page :
  t -> Rw_storage.Page_id.t -> mode:Latch.mode -> (Rw_storage.Page.t -> 'a) -> 'a
(** Fetch, latch, run, unlatch, unpin. *)

val page : frame -> Rw_storage.Page.t
(** The in-pool page buffer (mutations require the exclusive latch and a
    subsequent {!mark_dirty}). *)

val frame_latch : frame -> Latch.t
val pin_count : frame -> int
val is_dirty : frame -> bool

val capacity : t -> int
(** The frame budget the pool was created with (callers sizing batched
    work against the pool, e.g. parallel redo, use this). *)

val mem : t -> Rw_storage.Page_id.t -> bool
(** Whether the page is resident (framed) right now.  Purely a peek: no
    pin, no recency touch, no hit/miss accounting. *)

val admit : t -> Rw_storage.Page_id.t -> Rw_storage.Page.t -> unit
(** Install an already-read page with exactly the bookkeeping a
    {!fetch} miss would have performed — miss count, [buf.fetch_miss]
    probe and trace, eviction when full — except the frame starts
    unpinned.  No-op when the page is already resident (the framed copy
    may be newer than the caller's).  The batched scrub publishes its
    sweep reads through this, so a scrubbed pool is indistinguishable
    from one that fetched the same pages one at a time. *)

val mark_dirty : t -> frame -> lsn:Rw_storage.Lsn.t -> unit
(** Record that the frame was modified by the log record at [lsn]; on first
    dirtying this becomes the frame's recovery LSN. *)

val dirty_page_table : t -> (Rw_storage.Page_id.t * Rw_storage.Lsn.t) list
(** (page, recLSN) pairs for the checkpoint record. *)

val flush_page : t -> Rw_storage.Page_id.t -> unit
(** Write back if dirty (honouring the WAL rule); no-op when clean or not
    resident. *)

val flush_all : t -> unit
(** Write back every dirty page in page-id order: one WAL barrier for the
    whole batch, then contiguous page-id runs priced as one seek plus
    sequential transfers (see {!field-write_seq}). *)

val drop_all : t -> unit
(** Discard every frame without writing — crash simulation.  Raises if any
    frame is pinned. *)

val resident : t -> int
val hits : t -> int
val misses : t -> int
