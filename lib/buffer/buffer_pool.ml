module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Lsn = Rw_storage.Lsn
module Disk = Rw_storage.Disk
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

type source = {
  read : Page_id.t -> Page.t;
  write : Page_id.t -> Page.t -> unit;
  write_seq : (Page_id.t -> Page.t -> unit) option;
      (* sequential continuation of a write run: no seek, transfer only *)
  read_cached : (Page_id.t -> Page.t option) option;
      (* zero-cost peek consulted on a pool miss before the priced [read];
         snapshot views wire this to the shared prepared-page cache *)
}

type frame = {
  id : Page_id.t;
  mutable page : Page.t;
  mutable pin_count : int;
  mutable dirty : bool;
  mutable rec_lsn : Lsn.t;
  mutable last_used : int;
  latch : Latch.t;
}

type t = {
  capacity : int;
  source : source;
  wal_flush : Lsn.t -> unit;
  frames : (int, frame) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let of_disk disk =
  {
    read =
      (fun pid ->
        let p = Disk.read_page_retrying disk pid in
        if not (Page.verify p) then begin
          let st = Disk.stats disk in
          st.Rw_storage.Io_stats.corruptions_detected <-
            st.Rw_storage.Io_stats.corruptions_detected + 1;
          raise (Disk.Corrupt_page pid)
        end;
        p);
    write =
      (fun pid p ->
        Page.seal p;
        Disk.write_page_retrying disk pid p);
    write_seq =
      Some
        (fun pid p ->
          Page.seal p;
          Disk.write_page_seq_retrying disk pid p);
    read_cached = None;
  }

let create ~capacity ~source ?(wal_flush = fun _ -> ()) () =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    capacity;
    source;
    wal_flush;
    frames = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
  }

let page f = f.page
let frame_latch f = f.latch
let pin_count f = f.pin_count
let is_dirty f = f.dirty
let capacity t = t.capacity
let resident t = Hashtbl.length t.frames
let hits t = t.hits
let misses t = t.misses

let write_back t f =
  if f.dirty then begin
    (* WAL rule: the log covering this page's changes must be durable
       before the page overwrites its prior version on disk. *)
    t.wal_flush (Page.lsn f.page);
    t.source.write f.id f.page;
    f.dirty <- false;
    f.rec_lsn <- Lsn.nil;
    Obs.incr Probes.writebacks
  end

let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ f ->
      if f.pin_count = 0 && Latch.is_free f.latch then
        match !victim with
        | Some v when v.last_used <= f.last_used -> ()
        | _ -> victim := Some f)
    t.frames;
  match !victim with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some f ->
      write_back t f;
      Hashtbl.remove t.frames (Page_id.to_int f.id);
      Obs.incr Probes.evictions

let fetch t pid =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.frames (Page_id.to_int pid) with
  | Some f ->
      t.hits <- t.hits + 1;
      Obs.incr Probes.fetch_hits;
      f.pin_count <- f.pin_count + 1;
      f.last_used <- t.tick;
      f
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr Probes.fetch_misses;
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      if Trace.on () then
        Trace.instant ~cat:"buf"
          ~args:[ ("page", Trace.Int (Page_id.to_int pid)) ]
          "buf.fetch_miss";
      let page =
        match t.source.read_cached with
        | Some peek -> ( match peek pid with Some p -> p | None -> t.source.read pid)
        | None -> t.source.read pid
      in
      let f =
        {
          id = pid;
          page;
          pin_count = 1;
          dirty = false;
          rec_lsn = Lsn.nil;
          last_used = t.tick;
          latch = Latch.create ();
        }
      in
      Hashtbl.replace t.frames (Page_id.to_int pid) f;
      f

let mem t pid = Hashtbl.mem t.frames (Page_id.to_int pid)

(* Install an already-read page with exactly the bookkeeping a fetch miss
   would have done — miss count, probe, eviction, trace — minus the pin.
   The batched scrub publishes its sweep reads through this so a scrubbed
   pool is indistinguishable from one whose pages were fetched one at a
   time.  A page that became resident since the caller read its copy is
   left alone: the framed version may be newer. *)
let admit t pid page =
  if not (mem t pid) then begin
    t.tick <- t.tick + 1;
    t.misses <- t.misses + 1;
    Obs.incr Probes.fetch_misses;
    if Hashtbl.length t.frames >= t.capacity then evict_one t;
    if Trace.on () then
      Trace.instant ~cat:"buf"
        ~args:[ ("page", Trace.Int (Page_id.to_int pid)) ]
        "buf.fetch_miss";
    let f =
      {
        id = pid;
        page;
        pin_count = 0;
        dirty = false;
        rec_lsn = Lsn.nil;
        last_used = t.tick;
        latch = Latch.create ();
      }
    in
    Hashtbl.replace t.frames (Page_id.to_int pid) f
  end

let unpin _t f =
  if f.pin_count <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
  f.pin_count <- f.pin_count - 1

let with_page t pid ~mode f =
  let frame = fetch t pid in
  let finally () = unpin t frame in
  match Latch.with_latch frame.latch mode (fun () -> f frame.page) with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let mark_dirty _t f ~lsn =
  if not f.dirty then begin
    f.dirty <- true;
    f.rec_lsn <- lsn
  end

let dirty_page_table t =
  Hashtbl.fold (fun _ f acc -> if f.dirty then (f.id, f.rec_lsn) :: acc else acc) t.frames []
  |> List.sort (fun (a, _) (b, _) -> Page_id.compare a b)

let flush_page t pid =
  match Hashtbl.find_opt t.frames (Page_id.to_int pid) with
  | Some f -> write_back t f
  | None -> ()

let flush_all t =
  let dirty =
    Hashtbl.fold (fun _ f acc -> if f.dirty then f :: acc else acc) t.frames []
    |> List.sort (fun a b -> Page_id.compare a.id b.id)
  in
  match dirty with
  | [] -> ()
  | _ ->
      let ts = if Trace.on () then Trace.now () else 0.0 in
      (* One WAL barrier for the whole batch instead of one per page. *)
      let max_lsn = List.fold_left (fun acc f -> Lsn.max acc (Page.lsn f.page)) Lsn.nil dirty in
      t.wal_flush max_lsn;
      (* Page-id order: the head of each contiguous run pays the seek, the
         rest of the run streams sequentially — the write-side mirror of the
         read path's prefetch pricing. *)
      let rec go prev = function
        | [] -> ()
        | f :: rest ->
            let pid = Page_id.to_int f.id in
            (match t.source.write_seq with
            | Some wseq when prev >= 0 && pid = prev + 1 -> wseq f.id f.page
            | _ -> t.source.write f.id f.page);
            f.dirty <- false;
            f.rec_lsn <- Lsn.nil;
            Obs.incr Probes.writebacks;
            go pid rest
      in
      go (-1) dirty;
      if Trace.on () then
        Trace.complete ~cat:"buf" ~ts
          ~args:[ ("pages", Trace.Int (List.length dirty)) ]
          "buf.flush_all"

let drop_all t =
  Hashtbl.iter
    (fun _ f -> if f.pin_count > 0 then failwith "Buffer_pool.drop_all: frame pinned")
    t.frames;
  Hashtbl.reset t.frames
