module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Txn_id = Rw_wal.Txn_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Latch = Rw_buffer.Latch
module Txn_manager = Rw_txn.Txn_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

let checkpoint ~log ~pool ~txns ~wall_us ?(flush_pages = false) () =
  let ts = if Trace.on () then Trace.now () else 0.0 in
  if flush_pages then Buffer_pool.flush_all pool;
  let record =
    Log_record.make
      (Log_record.Checkpoint
         {
           wall_us;
           active_txns = Txn_manager.active_txns txns;
           dirty_pages = Buffer_pool.dirty_page_table pool;
         })
  in
  let lsn = Log_manager.append log record in
  Log_manager.flush log ~upto:lsn;
  (* The checkpoint's flush covers every pending commit record, so deliver
     the durability acknowledgements it earned. *)
  ignore (Txn_manager.ack_flushed txns);
  Log_manager.set_last_checkpoint log lsn;
  if Trace.on () then Trace.complete ~cat:"recovery" ~ts "recovery.checkpoint";
  lsn

type analysis = {
  losers : (Txn_id.t, Lsn.t) Hashtbl.t;
  dirty_pages : (int, Lsn.t) Hashtbl.t;
  txn_pages : (Txn_id.t, (int, unit) Hashtbl.t) Hashtbl.t;
  redo_start : Lsn.t;
  max_txn_id : Txn_id.t;
  records_scanned : int;
}

(* Analysis only needs record headers (txn, kind, page); the one exception
   is checkpoint records, whose embedded tables require a decode.  The
   master checkpoint — always the first record of the range — is decoded
   once up front (through the record LRU, so repeated analyses for snapshot
   creation and restart reuse the decode); any later checkpoints inside the
   range use the on-demand thunk.  Everything else is peeked, so the scan
   never allocates row payloads. *)
let analyze ~log ~start ~upto =
  let losers = Hashtbl.create 16 in
  let dirty_pages = Hashtbl.create 64 in
  let txn_pages = Hashtbl.create 16 in
  let max_txn = ref Txn_id.nil in
  let scanned = ref 0 in
  let see_txn txn = if Txn_id.compare txn !max_txn > 0 then max_txn := txn in
  let see_page page lsn =
    let k = Page_id.to_int page in
    if not (Hashtbl.mem dirty_pages k) then Hashtbl.replace dirty_pages k lsn
  in
  let note_txn_page txn page =
    let pages =
      match Hashtbl.find_opt txn_pages txn with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 8 in
          Hashtbl.replace txn_pages txn h;
          h
    in
    Hashtbl.replace pages (Page_id.to_int page) ()
  in
  let seed_checkpoint r =
    match r.Log_record.body with
    | Log_record.Checkpoint { active_txns; dirty_pages = dpt; _ } ->
        List.iter
          (fun (t, last) ->
            see_txn t;
            if not (Hashtbl.mem losers t) then Hashtbl.replace losers t last)
          active_txns;
        List.iter (fun (page, rec_lsn) -> see_page page rec_lsn) dpt
    | _ -> assert false
  in
  let scan_from =
    if Lsn.(start >= upto) || not (Log_manager.mem log start) then start
    else
      let pk = Log_manager.peek_record log start in
      match pk.Log_record.p_kind with
      | Log_record.K_checkpoint ->
          incr scanned;
          seed_checkpoint (Log_manager.read log start);
          Log_manager.next_lsn_after log start
      | _ -> start
  in
  Log_manager.iter_range_peek log ~from:scan_from ~upto (fun lsn pk decode ->
      incr scanned;
      let txn = pk.Log_record.p_txn in
      see_txn txn;
      match pk.Log_record.p_kind with
      | Log_record.K_checkpoint -> seed_checkpoint (decode ())
      | Log_record.K_begin -> Hashtbl.replace losers txn lsn
      | Log_record.K_commit | Log_record.K_end -> Hashtbl.remove losers txn
      | Log_record.K_abort -> if Hashtbl.mem losers txn then Hashtbl.replace losers txn lsn
      | Log_record.K_page_op _ | Log_record.K_clr _ ->
          if not (Txn_id.is_nil txn) then begin
            Hashtbl.replace losers txn lsn;
            note_txn_page txn pk.Log_record.p_page
          end;
          see_page pk.Log_record.p_page lsn);
  let redo_start =
    Hashtbl.fold (fun _ rec_lsn acc -> Lsn.min rec_lsn acc) dirty_pages upto
  in
  { losers; dirty_pages; txn_pages; redo_start; max_txn_id = !max_txn; records_scanned = !scanned }

let loser_pages analysis =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun txn _ ->
      match Hashtbl.find_opt analysis.txn_pages txn with
      | Some pages -> Hashtbl.iter (fun p () -> Hashtbl.replace seen p ()) pages
      | None -> ())
    analysis.losers;
  Hashtbl.fold (fun p () acc -> Page_id.of_int p :: acc) seen []

let redo_pass ~log ~pool ~analysis ~upto =
  let redone = ref 0 in
  (* Peek-filter: only records for a dirty page at or past its recovery LSN
     are decoded; the rest of the scan stays header-only. *)
  Log_manager.iter_range_peek log ~from:analysis.redo_start ~upto (fun lsn pk decode ->
      if Log_record.is_page_kind pk.Log_record.p_kind then
        let page = pk.Log_record.p_page in
        match Hashtbl.find_opt analysis.dirty_pages (Page_id.to_int page) with
        | Some rec_lsn when Lsn.(lsn >= rec_lsn) -> (
            match (decode ()).Log_record.body with
            | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } ->
                let frame = Buffer_pool.fetch pool page in
                Fun.protect
                  ~finally:(fun () -> Buffer_pool.unpin pool frame)
                  (fun () ->
                    Latch.with_latch (Buffer_pool.frame_latch frame) Latch.Exclusive (fun () ->
                        let p = Buffer_pool.page frame in
                        (* The LSN comparison makes redo idempotent. *)
                        if Lsn.(Page.lsn p < lsn) then begin
                          Log_record.redo page op p;
                          Page.set_lsn p lsn;
                          Buffer_pool.mark_dirty pool frame ~lsn;
                          incr redone
                        end))
            | _ -> assert false)
        | _ -> ());
  !redone

(* Partition-parallel redo.  The log scan and page fetches stay on the
   calling domain (priced I/O, caches and the buffer pool are not
   domain-safe); record decode and the page mutations fan out.  The gather
   phase applies exactly the sequential pass's peek-filter, so the two
   variants price identical log I/O; pages are then partitioned by id
   across [domains] partitions, each applying its pages' operations in LSN
   order.  Pages are disjoint across partitions, raw record bytes are
   immutable and [Log_record.decode] is pure, so the workers share nothing
   mutable but the pages they own — the result is byte-identical to the
   sequential pass.  [domains] fixes the partition COUNT (and therefore
   the work split); how many domains actually run them is a separate
   fan-out knob, clamped to the host's core count (see [set_redo_fanout]),
   with partitions assigned round-robin so any fan-out yields the same
   pages. *)
(* The parked worker-domain pool this module once owned now lives in
   [Rw_pool.Domain_pool], shared with snapshot batch rewind and the
   scrub sweep; redo keeps only its partitioning logic.  Partition COUNT
   is fixed by [redo_domains] — that is what determinism and the
   byte-equality contract are stated over — while the shared pool clamps
   how many domains actually run (see [Domain_pool.effective_fanout]).
   On a 1-core host the partitions are applied on the calling domain
   alone — still faster than the sequential pass, which pays a pool
   fetch, a latch and a dirty-table update per RECORD where the
   partitioned layout pays them per page per batch. *)
module Domain_pool = Rw_pool.Domain_pool

let set_redo_fanout cap = Domain_pool.set_fanout cap
let effective_fanout domains = Domain_pool.effective_fanout domains

(* One gathered redo record: ops stay decoded when the apply runs on the
   calling domain (warm record-cache hits cost nothing), but cross domains
   as encoded bytes — [Log_record.decode] is pure, so workers decode their
   own pages' records in parallel, which is most of redo's CPU. *)
type redo_item = Decoded of Log_record.op | Raw of string

let redo_parallel ~log ~pool ~analysis ~upto ~domains =
  let fanout = effective_fanout domains in
  (* The gather scan stays on the calling domain (the log manager's caches
     are single-domain): it peeks headers and keeps only the records that
     qualify under the sequential pass's exact filter. *)
  let work = Hashtbl.create 64 in
  let keep page lsn item =
    let k = Page_id.to_int page in
    let prev = Option.value (Hashtbl.find_opt work k) ~default:[] in
    Hashtbl.replace work k ((lsn, item) :: prev)
  in
  let qualifies lsn pk =
    Log_record.is_page_kind pk.Log_record.p_kind
    &&
    match Hashtbl.find_opt analysis.dirty_pages (Page_id.to_int pk.Log_record.p_page) with
    | Some rec_lsn -> Lsn.(lsn >= rec_lsn)
    | None -> false
  in
  if fanout > 1 then
    Log_manager.iter_range_raw log ~from:analysis.redo_start ~upto (fun lsn pk raw ->
        if qualifies lsn pk then keep pk.Log_record.p_page lsn (Raw (raw ())))
  else
    Log_manager.iter_range_peek log ~from:analysis.redo_start ~upto (fun lsn pk decode ->
        if qualifies lsn pk then
          match (decode ()).Log_record.body with
          | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } ->
              keep pk.Log_record.p_page lsn (Decoded op)
          | _ -> assert false);
  let pages =
    Hashtbl.fold (fun k ops acc -> (k, List.rev ops) :: acc) work []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Batched so the pinned set never overwhelms the pool: each batch pins
     its pages, fans the replay out, then marks dirty and unpins. *)
  let batch_size = max 1 (Buffer_pool.capacity pool / 2) in
  let redone = ref 0 in
  let op_of = function
    | Decoded op -> op
    | Raw raw -> (
        match (Log_record.decode raw).Log_record.body with
        | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } -> op
        | _ -> assert false)
  in
  let apply_item (k, pg, items, first, count) =
    let pid = Page_id.of_int k in
    List.iter
      (fun (lsn, item) ->
        if Lsn.(Page.lsn pg < lsn) then begin
          Log_record.redo pid (op_of item) pg;
          Page.set_lsn pg lsn;
          if Lsn.is_nil !first then first := lsn;
          incr count
        end)
      items
  in
  let rec split n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (n - 1) (x :: acc) rest
  in
  let rec batches = function
    | [] -> ()
    | remaining ->
        let batch, rest = split batch_size [] remaining in
        let items =
          List.map
            (fun (k, ops) ->
              let frame = Buffer_pool.fetch pool (Page_id.of_int k) in
              (frame, (k, Buffer_pool.page frame, ops, ref Lsn.nil, ref 0)))
            batch
        in
        let parts = Array.make domains [] in
        List.iter
          (fun (_, ((k, _, _, _, _) as item)) ->
            let i = k mod domains in
            parts.(i) <- item :: parts.(i))
          items;
        Domain_pool.run ~participants:fanout (fun i ->
            let j = ref i in
            while !j < domains do
              List.iter apply_item parts.(!j);
              j := !j + fanout
            done);
        List.iter
          (fun (frame, (_, _, _, first, count)) ->
            if !count > 0 then Buffer_pool.mark_dirty pool frame ~lsn:!first;
            redone := !redone + !count;
            Buffer_pool.unpin pool frame)
          items;
        batches rest
  in
  batches pages;
  Obs.add Probes.recovery_redo_partitions domains;
  !redone

let undo_losers ~log ~losers ~write_clr ~apply =
  let next_undo = Hashtbl.copy losers in
  let tails = Hashtbl.copy losers in
  let undone = ref 0 in
  let pick () =
    Hashtbl.fold
      (fun txn lsn acc ->
        match acc with Some (_, best) when Lsn.(best >= lsn) -> acc | _ -> Some (txn, lsn))
      next_undo None
  in
  let finish txn =
    if write_clr then begin
      let tail = Hashtbl.find tails txn in
      ignore (Log_manager.append log (Log_record.make ~txn ~prev_txn_lsn:tail Log_record.End))
    end;
    Hashtbl.remove next_undo txn;
    Hashtbl.remove tails txn
  in
  let undo_op txn ~page ~op ~undo_next =
    match Log_record.invert op with
    | None -> ()
    | Some inverse ->
        apply page (fun p ->
            incr undone;
            if write_clr then begin
              let prev_page_lsn = Page.lsn p in
              let tail = Hashtbl.find tails txn in
              let clr_lsn =
                Log_manager.append log
                  (Log_record.make ~txn ~prev_txn_lsn:tail
                     (Log_record.Clr { page; prev_page_lsn; op = inverse; undo_next }))
              in
              Hashtbl.replace tails txn clr_lsn;
              Log_record.redo page inverse p;
              Some clr_lsn
            end
            else begin
              Log_record.undo op p;
              None
            end)
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some (txn, lsn) ->
        if Lsn.is_nil lsn then finish txn
        else begin
          let r = Log_manager.read log lsn in
          (match r.Log_record.body with
          | Log_record.Begin -> finish txn
          | Log_record.Page_op { page; op; _ } ->
              undo_op txn ~page ~op ~undo_next:r.Log_record.prev_txn_lsn;
              Hashtbl.replace next_undo txn r.Log_record.prev_txn_lsn
          | Log_record.Clr { undo_next; _ } -> Hashtbl.replace next_undo txn undo_next
          | Log_record.Abort | Log_record.Commit _ | Log_record.End | Log_record.Checkpoint _ ->
              Hashtbl.replace next_undo txn r.Log_record.prev_txn_lsn);
          loop ()
        end
  in
  loop ();
  !undone

type stats = {
  analysis : analysis;
  mutable redone_ops : int;
  mutable undone_ops : int;
  mutable ended_losers : int;
  tail_truncated : (Lsn.t * int) option;
  mutable analysis_us : float;
  mutable time_to_first_query_us : float;
  mutable time_to_full_recovery_us : float;
}

let recover ?(redo_domains = 1) ?(now_us = fun () -> 0.0) ~log ~pool () =
  let t0 = now_us () in
  (* Before trusting the log, validate the crash-time tail: a torn record
     (and anything after it) is discarded so the scans below only ever see
     whole records — instead of dying mid-analysis on a decode failure. *)
  let tail_truncated = Log_manager.repair_tail log in
  let start =
    let c = Log_manager.last_checkpoint log in
    if Lsn.is_nil c then Log_manager.first_lsn log else c
  in
  let upto = Log_manager.end_lsn log in
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let analysis = analyze ~log ~start ~upto in
  let analysis_us = now_us () -. t0 in
  if Trace.on () then
    Trace.complete ~cat:"recovery" ~ts
      ~args:[ ("records_scanned", Trace.Int analysis.records_scanned) ]
      "recovery.analysis";
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let redone_ops =
    if redo_domains > 1 then redo_parallel ~log ~pool ~analysis ~upto ~domains:redo_domains
    else redo_pass ~log ~pool ~analysis ~upto
  in
  if Trace.on () then
    Trace.complete ~cat:"recovery" ~ts
      ~args:[ ("redone_ops", Trace.Int redone_ops); ("domains", Trace.Int redo_domains) ]
      "recovery.redo";
  let ended_losers = Hashtbl.length analysis.losers in
  let apply pid f =
    let frame = Buffer_pool.fetch pool pid in
    Fun.protect
      ~finally:(fun () -> Buffer_pool.unpin pool frame)
      (fun () ->
        Latch.with_latch (Buffer_pool.frame_latch frame) Latch.Exclusive (fun () ->
            let p = Buffer_pool.page frame in
            match f p with
            | Some lsn ->
                Page.set_lsn p lsn;
                Buffer_pool.mark_dirty pool frame ~lsn
            | None -> ()))
  in
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let undone_ops = undo_losers ~log ~losers:analysis.losers ~write_clr:true ~apply in
  if Trace.on () then
    Trace.complete ~cat:"recovery" ~ts
      ~args:[ ("undone_ops", Trace.Int undone_ops) ]
      "recovery.undo";
  Log_manager.flush_all log;
  Obs.incr Probes.recovery_runs;
  Obs.add Probes.recovery_redone redone_ops;
  Obs.add Probes.recovery_undone undone_ops;
  let total = now_us () -. t0 in
  {
    analysis;
    redone_ops;
    undone_ops;
    ended_losers;
    tail_truncated;
    analysis_us;
    time_to_first_query_us = total;
    time_to_full_recovery_us = total;
  }

(* --- replica-side redo: continuous catch-up and redo-only restart --- *)

let redo_range ?(domains = 1) ~log ~pool ~from ~upto () =
  if Lsn.(from >= upto) then 0
  else begin
    (* One peek scan builds a synthetic dirty-page table — every page
       mentioned in [from, upto), keyed to its first record LSN — then the
       standard redo machinery (sequential or partition-parallel) replays
       the range.  Redo stays idempotent via the page-LSN compare, so a
       duplicate shipment or an overlapping range applies nothing twice. *)
    let dirty_pages = Hashtbl.create 64 in
    let scanned = ref 0 in
    Log_manager.iter_range_peek log ~from ~upto (fun lsn pk _decode ->
        incr scanned;
        if Log_record.is_page_kind pk.Log_record.p_kind then begin
          let k = Page_id.to_int pk.Log_record.p_page in
          if not (Hashtbl.mem dirty_pages k) then Hashtbl.replace dirty_pages k lsn
        end);
    let analysis =
      {
        losers = Hashtbl.create 1;
        dirty_pages;
        txn_pages = Hashtbl.create 1;
        redo_start = from;
        max_txn_id = Txn_id.nil;
        records_scanned = !scanned;
      }
    in
    if domains > 1 then redo_parallel ~log ~pool ~analysis ~upto ~domains
    else redo_pass ~log ~pool ~analysis ~upto
  end

let recover_redo_only ?(redo_domains = 1) ?(now_us = fun () -> 0.0) ~log ~pool () =
  let t0 = now_us () in
  let tail_truncated = Log_manager.repair_tail log in
  let start =
    let c = Log_manager.last_checkpoint log in
    if Lsn.is_nil c then Log_manager.first_lsn log else c
  in
  let upto = Log_manager.end_lsn log in
  let analysis = analyze ~log ~start ~upto in
  let analysis_us = now_us () -. t0 in
  let redone_ops =
    if redo_domains > 1 then redo_parallel ~log ~pool ~analysis ~upto ~domains:redo_domains
    else redo_pass ~log ~pool ~analysis ~upto
  in
  (* No undo and no appended records: a replica's log must stay a
     byte-identical prefix of the primary's stream, so losers are left
     in place on the pages (reads go through as-of snapshots, which
     perform snapshot-local loser undo without logging) and the
     catch-up stream itself will deliver their Aborts or CLRs. *)
  Log_manager.flush_all log;
  Obs.incr Probes.recovery_runs;
  Obs.add Probes.recovery_redone redone_ops;
  let total = now_us () -. t0 in
  {
    analysis;
    redone_ops;
    undone_ops = 0;
    ended_losers = 0;
    tail_truncated;
    analysis_us;
    time_to_first_query_us = total;
    time_to_full_recovery_us = total;
  }

(* --- instant restart: open after analysis, recover pages on first touch --- *)

module Instant = struct
  type io = {
    io_read : Page_id.t -> Page.t;
    io_write : Page_id.t -> Page.t -> unit;
    io_wal_flush : Lsn.t -> unit;
  }

  type t = {
    log : Log_manager.t;
    horizon : Lsn.t;
    stats : stats;
    pending : (int, unit) Hashtbl.t;
    loser_pages : (Txn_id.t, (int, unit) Hashtbl.t) Hashtbl.t;
    open_losers : (Txn_id.t, Lsn.t) Hashtbl.t;
    now_us : unit -> float;
    t_start_us : float;
    mutable io : io option;
    mutable touching : bool;
  }

  let backlog t = Hashtbl.length t.pending
  let pending_page t pid = Hashtbl.mem t.pending (Page_id.to_int pid)
  let stats t = t.stats
  let on_demand_pages t = t.stats.redone_ops

  (* Every page an in-flight transaction touched, including before the
     analysis start: the scanned region's [txn_pages] only covers records
     at or after the master checkpoint, so walk the rest of the chain. *)
  let txn_page_set ~log ~analysis txn last =
    let pages =
      match Hashtbl.find_opt analysis.txn_pages txn with
      | Some h -> Hashtbl.copy h
      | None -> Hashtbl.create 8
    in
    let rec walk lsn =
      if not (Lsn.is_nil lsn) then begin
        let r = Log_manager.read log lsn in
        (match r.Log_record.body with
        | Log_record.Page_op { page; _ } | Log_record.Clr { page; _ } ->
            Hashtbl.replace pages (Page_id.to_int page) ()
        | _ -> ());
        match r.Log_record.body with
        | Log_record.Begin -> ()
        | _ -> walk r.Log_record.prev_txn_lsn
      end
    in
    walk last;
    pages

  let open_ ?(now_us = fun () -> 0.0) ~log () =
    let t_start_us = now_us () in
    let tail_truncated = Log_manager.repair_tail log in
    let start =
      let c = Log_manager.last_checkpoint log in
      if Lsn.is_nil c then Log_manager.first_lsn log else c
    in
    let horizon = Log_manager.end_lsn log in
    let ts = if Trace.on () then Trace.now () else 0.0 in
    let analysis = analyze ~log ~start ~upto:horizon in
    let analysis_us = now_us () -. t_start_us in
    if Trace.on () then
      Trace.complete ~cat:"recovery" ~ts
        ~args:[ ("records_scanned", Trace.Int analysis.records_scanned) ]
        "recovery.analysis";
    let pending = Hashtbl.create 64 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace pending k ()) analysis.dirty_pages;
    let loser_pages = Hashtbl.create 8 in
    Hashtbl.iter
      (fun txn last ->
        let pages = txn_page_set ~log ~analysis txn last in
        Hashtbl.iter (fun k () -> Hashtbl.replace pending k ()) pages;
        Hashtbl.replace loser_pages txn pages)
      analysis.losers;
    let stats =
      {
        analysis;
        redone_ops = 0;
        undone_ops = 0;
        ended_losers = 0;
        tail_truncated;
        analysis_us;
        time_to_first_query_us = 0.0;
        time_to_full_recovery_us = 0.0;
      }
    in
    Obs.incr Probes.recovery_runs;
    Obs.gauge_add Probes.recovery_backlog (float_of_int (Hashtbl.length pending));
    {
      log;
      horizon;
      stats;
      pending;
      loser_pages;
      open_losers = Hashtbl.copy analysis.losers;
      now_us;
      t_start_us;
      io = None;
      touching = false;
    }

  let attach t ~read ~write ~wal_flush =
    t.io <- Some { io_read = read; io_write = write; io_wal_flush = wal_flush }

  let mark_full_recovery t =
    if t.stats.time_to_full_recovery_us = 0.0 then
      t.stats.time_to_full_recovery_us <- t.now_us () -. t.t_start_us

  let mark_open t =
    if t.stats.time_to_first_query_us = 0.0 then
      t.stats.time_to_first_query_us <- t.now_us () -. t.t_start_us;
    if backlog t = 0 then mark_full_recovery t

  (* A base record (Full_image, Format) fully determines the page by redo
     alone, so replay can start at the newest one instead of the page's
     stored LSN — capping per-page work at the FPI interval. *)
  let is_base = function
    | Log_record.K_page_op (Log_record.K_full_image | Log_record.K_format)
    | Log_record.K_clr (Log_record.K_full_image | Log_record.K_format) ->
        true
    | _ -> false

  (* Redo one page in place: replay its backward chain over (page-LSN,
     horizon].  Records at or below the stored page LSN are already
     reflected in the image (redo idempotency, exactly as in the full redo
     pass); the chain walk reads only this page's records. *)
  let redo_page t pid p =
    let chain = Log_manager.chain_segment t.log pid ~from:t.horizon ~down_to:(Page.lsn p) in
    let n = Array.length chain in
    let applied = ref 0 in
    if n > 0 then begin
      let base = ref 0 in
      (try
         for i = n - 1 downto 0 do
           if is_base (Log_manager.peek_record t.log chain.(i)).Log_record.p_kind then begin
             base := i;
             raise Exit
           end
         done
       with Exit -> ());
      let suffix = Array.sub chain !base (n - !base) in
      let records = Log_manager.read_segment t.log suffix in
      Array.iteri
        (fun i r ->
          let lsn = suffix.(i) in
          if Lsn.(Page.lsn p < lsn) then
            match Log_record.op_of r with
            | Some op ->
                Log_record.redo pid op p;
                Page.set_lsn p lsn;
                incr applied
            | None -> ())
        records;
      t.stats.redone_ops <- t.stats.redone_ops + !applied;
      Obs.add Probes.recovery_redone !applied
    end;
    !applied

  (* The recovery unit is a page group: the requested page plus, transitively,
     every page sharing an in-flight transaction with one already in the
     group.  Undoing a loser must be all-or-nothing — its CLR chain walks the
     whole transaction newest-first, so a partially-undone transaction would
     leave [undo_next] pointing into territory a later crash recovery could
     not interpret — and that can force sibling pages into the same unit. *)
  let group_of t pid0 =
    let pages = Hashtbl.create 8 in
    let txns = Hashtbl.create 4 in
    Hashtbl.replace pages (Page_id.to_int pid0) ();
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun txn tpages ->
          if not (Hashtbl.mem txns txn) then
            if Hashtbl.fold (fun k () acc -> acc || Hashtbl.mem pages k) tpages false then begin
              Hashtbl.replace txns txn ();
              changed := true;
              Hashtbl.iter (fun k () -> Hashtbl.replace pages k ()) tpages
            end)
        t.loser_pages
    done;
    (pages, txns)

  (* Recover one page group: read every page (any already-read seed page is
     reused), redo each to the horizon, undo the group's losers with CLRs
     and End records, then publish — force the log covering everything just
     applied and write the pages back (WAL rule), so the recovered images
     are durable and the pages leave the backlog exactly once. *)
  let recover_group t ~on_demand pid0 seed_page =
    let io =
      match t.io with
      | Some io -> io
      | None -> invalid_arg "Recovery.Instant: no page I/O attached"
    in
    let ts = if Trace.on () then Trace.now () else 0.0 in
    let pages, txns = group_of t pid0 in
    let local = Hashtbl.create 8 in
    (match seed_page with
    | Some p -> Hashtbl.replace local (Page_id.to_int pid0) p
    | None -> ());
    let get k =
      match Hashtbl.find_opt local k with
      | Some p -> p
      | None ->
          let p = io.io_read (Page_id.of_int k) in
          Hashtbl.replace local k p;
          p
    in
    let sorted = Hashtbl.fold (fun k () acc -> k :: acc) pages [] |> List.sort compare in
    (* Read everything first: page I/O failures (quarantine) must surface
       before the first CLR is appended, keeping undo all-or-nothing. *)
    List.iter (fun k -> ignore (get k)) sorted;
    let changed = Hashtbl.create 8 in
    List.iter
      (fun k -> if redo_page t (Page_id.of_int k) (get k) > 0 then Hashtbl.replace changed k ())
      sorted;
    if Hashtbl.length txns > 0 then begin
      let subset = Hashtbl.create 4 in
      Hashtbl.iter
        (fun txn () ->
          match Hashtbl.find_opt t.open_losers txn with
          | Some last -> Hashtbl.replace subset txn last
          | None -> ())
        txns;
      let apply pid f =
        let p = get (Page_id.to_int pid) in
        match f p with
        | Some lsn ->
            Page.set_lsn p lsn;
            Hashtbl.replace changed (Page_id.to_int pid) ()
        | None -> ()
      in
      let undone = undo_losers ~log:t.log ~losers:subset ~write_clr:true ~apply in
      t.stats.undone_ops <- t.stats.undone_ops + undone;
      Obs.add Probes.recovery_undone undone;
      Hashtbl.iter
        (fun txn () ->
          if Hashtbl.mem t.open_losers txn then begin
            Hashtbl.remove t.open_losers txn;
            Hashtbl.remove t.loser_pages txn;
            t.stats.ended_losers <- t.stats.ended_losers + 1
          end)
        txns
    end;
    (* Publish: WAL rule first, then write back every page whose image the
       redo or undo actually changed. *)
    let max_lsn =
      Hashtbl.fold (fun k () acc -> Lsn.max acc (Page.lsn (get k))) changed Lsn.nil
    in
    if not (Lsn.is_nil max_lsn) then io.io_wal_flush max_lsn;
    let published = ref 0 in
    List.iter
      (fun k ->
        if Hashtbl.mem changed k then io.io_write (Page_id.of_int k) (get k);
        if Hashtbl.mem t.pending k then begin
          Hashtbl.remove t.pending k;
          incr published;
          Obs.gauge_add Probes.recovery_backlog (-1.0);
          if on_demand then Obs.incr Probes.recovery_pages_on_demand
        end)
      sorted;
    if Trace.on () then
      Trace.complete ~cat:"recovery" ~ts
        ~args:
          [
            ("page", Trace.Int (Page_id.to_int pid0));
            ("group", Trace.Int (List.length sorted));
            ("on_demand", Trace.Int (if on_demand then 1 else 0));
          ]
        "recovery.first_touch";
    if backlog t = 0 then mark_full_recovery t;
    (Hashtbl.find local (Page_id.to_int pid0), !published)

  let touch t pid page =
    if t.touching || not (pending_page t pid) then page
    else begin
      t.touching <- true;
      Fun.protect
        ~finally:(fun () -> t.touching <- false)
        (fun () -> fst (recover_group t ~on_demand:true pid (Some page)))
    end

  let drain t ~max_pages =
    let published = ref 0 in
    let unpend k =
      if Hashtbl.mem t.pending k then begin
        Hashtbl.remove t.pending k;
        incr published;
        Obs.gauge_add Probes.recovery_backlog (-1.0)
      end
    in
    while !published < max_pages && backlog t > 0 do
      let k = Hashtbl.fold (fun k () acc -> min k acc) t.pending max_int in
      match recover_group t ~on_demand:false (Page_id.of_int k) None with
      | _, n -> published := !published + n
      | exception Page_repair.Quarantined qpid ->
          (* Give up on the damaged page so the rest of the backlog still
             drains; reads of it keep failing with the typed error. *)
          unpend (Page_id.to_int qpid);
          unpend k
    done;
    if backlog t = 0 then mark_full_recovery t;
    !published
end
