module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Txn_id = Rw_wal.Txn_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Latch = Rw_buffer.Latch
module Txn_manager = Rw_txn.Txn_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

let checkpoint ~log ~pool ~txns ~wall_us ?(flush_pages = false) () =
  let ts = if Trace.on () then Trace.now () else 0.0 in
  if flush_pages then Buffer_pool.flush_all pool;
  let record =
    Log_record.make
      (Log_record.Checkpoint
         {
           wall_us;
           active_txns = Txn_manager.active_txns txns;
           dirty_pages = Buffer_pool.dirty_page_table pool;
         })
  in
  let lsn = Log_manager.append log record in
  Log_manager.flush log ~upto:lsn;
  (* The checkpoint's flush covers every pending commit record, so deliver
     the durability acknowledgements it earned. *)
  ignore (Txn_manager.ack_flushed txns);
  Log_manager.set_last_checkpoint log lsn;
  if Trace.on () then Trace.complete ~cat:"recovery" ~ts "recovery.checkpoint";
  lsn

type analysis = {
  losers : (Txn_id.t, Lsn.t) Hashtbl.t;
  dirty_pages : (int, Lsn.t) Hashtbl.t;
  txn_pages : (Txn_id.t, (int, unit) Hashtbl.t) Hashtbl.t;
  redo_start : Lsn.t;
  max_txn_id : Txn_id.t;
  records_scanned : int;
}

(* Analysis only needs record headers (txn, kind, page); the one exception
   is checkpoint records, whose embedded tables require a decode — the
   on-demand thunk provides it.  Everything else is peeked, so the scan
   never allocates row payloads. *)
let analyze ~log ~start ~upto =
  let losers = Hashtbl.create 16 in
  let dirty_pages = Hashtbl.create 64 in
  let txn_pages = Hashtbl.create 16 in
  let max_txn = ref Txn_id.nil in
  let scanned = ref 0 in
  let see_txn txn = if Txn_id.compare txn !max_txn > 0 then max_txn := txn in
  let see_page page lsn =
    let k = Page_id.to_int page in
    if not (Hashtbl.mem dirty_pages k) then Hashtbl.replace dirty_pages k lsn
  in
  let note_txn_page txn page =
    let pages =
      match Hashtbl.find_opt txn_pages txn with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 8 in
          Hashtbl.replace txn_pages txn h;
          h
    in
    Hashtbl.replace pages (Page_id.to_int page) ()
  in
  Log_manager.iter_range_peek log ~from:start ~upto (fun lsn pk decode ->
      incr scanned;
      let txn = pk.Log_record.p_txn in
      see_txn txn;
      match pk.Log_record.p_kind with
      | Log_record.K_checkpoint -> (
          match (decode ()).Log_record.body with
          | Log_record.Checkpoint { active_txns; dirty_pages = dpt; _ } ->
              List.iter
                (fun (t, last) ->
                  see_txn t;
                  if not (Hashtbl.mem losers t) then Hashtbl.replace losers t last)
                active_txns;
              List.iter (fun (page, rec_lsn) -> see_page page rec_lsn) dpt
          | _ -> assert false)
      | Log_record.K_begin -> Hashtbl.replace losers txn lsn
      | Log_record.K_commit | Log_record.K_end -> Hashtbl.remove losers txn
      | Log_record.K_abort -> if Hashtbl.mem losers txn then Hashtbl.replace losers txn lsn
      | Log_record.K_page_op _ | Log_record.K_clr _ ->
          if not (Txn_id.is_nil txn) then begin
            Hashtbl.replace losers txn lsn;
            note_txn_page txn pk.Log_record.p_page
          end;
          see_page pk.Log_record.p_page lsn);
  let redo_start =
    Hashtbl.fold (fun _ rec_lsn acc -> Lsn.min rec_lsn acc) dirty_pages upto
  in
  { losers; dirty_pages; txn_pages; redo_start; max_txn_id = !max_txn; records_scanned = !scanned }

let loser_pages analysis =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun txn _ ->
      match Hashtbl.find_opt analysis.txn_pages txn with
      | Some pages -> Hashtbl.iter (fun p () -> Hashtbl.replace seen p ()) pages
      | None -> ())
    analysis.losers;
  Hashtbl.fold (fun p () acc -> Page_id.of_int p :: acc) seen []

let redo_pass ~log ~pool ~analysis ~upto =
  let redone = ref 0 in
  (* Peek-filter: only records for a dirty page at or past its recovery LSN
     are decoded; the rest of the scan stays header-only. *)
  Log_manager.iter_range_peek log ~from:analysis.redo_start ~upto (fun lsn pk decode ->
      if Log_record.is_page_kind pk.Log_record.p_kind then
        let page = pk.Log_record.p_page in
        match Hashtbl.find_opt analysis.dirty_pages (Page_id.to_int page) with
        | Some rec_lsn when Lsn.(lsn >= rec_lsn) -> (
            match (decode ()).Log_record.body with
            | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } ->
                let frame = Buffer_pool.fetch pool page in
                Fun.protect
                  ~finally:(fun () -> Buffer_pool.unpin pool frame)
                  (fun () ->
                    Latch.with_latch (Buffer_pool.frame_latch frame) Latch.Exclusive (fun () ->
                        let p = Buffer_pool.page frame in
                        (* The LSN comparison makes redo idempotent. *)
                        if Lsn.(Page.lsn p < lsn) then begin
                          Log_record.redo page op p;
                          Page.set_lsn p lsn;
                          Buffer_pool.mark_dirty pool frame ~lsn;
                          incr redone
                        end))
            | _ -> assert false)
        | _ -> ());
  !redone

let undo_losers ~log ~losers ~write_clr ~apply =
  let next_undo = Hashtbl.copy losers in
  let tails = Hashtbl.copy losers in
  let undone = ref 0 in
  let pick () =
    Hashtbl.fold
      (fun txn lsn acc ->
        match acc with Some (_, best) when Lsn.(best >= lsn) -> acc | _ -> Some (txn, lsn))
      next_undo None
  in
  let finish txn =
    if write_clr then begin
      let tail = Hashtbl.find tails txn in
      ignore (Log_manager.append log (Log_record.make ~txn ~prev_txn_lsn:tail Log_record.End))
    end;
    Hashtbl.remove next_undo txn;
    Hashtbl.remove tails txn
  in
  let undo_op txn ~page ~op ~undo_next =
    match Log_record.invert op with
    | None -> ()
    | Some inverse ->
        apply page (fun p ->
            incr undone;
            if write_clr then begin
              let prev_page_lsn = Page.lsn p in
              let tail = Hashtbl.find tails txn in
              let clr_lsn =
                Log_manager.append log
                  (Log_record.make ~txn ~prev_txn_lsn:tail
                     (Log_record.Clr { page; prev_page_lsn; op = inverse; undo_next }))
              in
              Hashtbl.replace tails txn clr_lsn;
              Log_record.redo page inverse p;
              Some clr_lsn
            end
            else begin
              Log_record.undo op p;
              None
            end)
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some (txn, lsn) ->
        if Lsn.is_nil lsn then finish txn
        else begin
          let r = Log_manager.read log lsn in
          (match r.Log_record.body with
          | Log_record.Begin -> finish txn
          | Log_record.Page_op { page; op; _ } ->
              undo_op txn ~page ~op ~undo_next:r.Log_record.prev_txn_lsn;
              Hashtbl.replace next_undo txn r.Log_record.prev_txn_lsn
          | Log_record.Clr { undo_next; _ } -> Hashtbl.replace next_undo txn undo_next
          | Log_record.Abort | Log_record.Commit _ | Log_record.End | Log_record.Checkpoint _ ->
              Hashtbl.replace next_undo txn r.Log_record.prev_txn_lsn);
          loop ()
        end
  in
  loop ();
  !undone

type stats = {
  analysis : analysis;
  redone_ops : int;
  undone_ops : int;
  ended_losers : int;
  tail_truncated : (Lsn.t * int) option;
}

let recover ~log ~pool =
  (* Before trusting the log, validate the crash-time tail: a torn record
     (and anything after it) is discarded so the scans below only ever see
     whole records — instead of dying mid-analysis on a decode failure. *)
  let tail_truncated = Log_manager.repair_tail log in
  let start =
    let c = Log_manager.last_checkpoint log in
    if Lsn.is_nil c then Log_manager.first_lsn log else c
  in
  let upto = Log_manager.end_lsn log in
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let analysis = analyze ~log ~start ~upto in
  if Trace.on () then
    Trace.complete ~cat:"recovery" ~ts
      ~args:[ ("records_scanned", Trace.Int analysis.records_scanned) ]
      "recovery.analysis";
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let redone_ops = redo_pass ~log ~pool ~analysis ~upto in
  if Trace.on () then
    Trace.complete ~cat:"recovery" ~ts
      ~args:[ ("redone_ops", Trace.Int redone_ops) ]
      "recovery.redo";
  let ended_losers = Hashtbl.length analysis.losers in
  let apply pid f =
    let frame = Buffer_pool.fetch pool pid in
    Fun.protect
      ~finally:(fun () -> Buffer_pool.unpin pool frame)
      (fun () ->
        Latch.with_latch (Buffer_pool.frame_latch frame) Latch.Exclusive (fun () ->
            let p = Buffer_pool.page frame in
            match f p with
            | Some lsn ->
                Page.set_lsn p lsn;
                Buffer_pool.mark_dirty pool frame ~lsn
            | None -> ()))
  in
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let undone_ops = undo_losers ~log ~losers:analysis.losers ~write_clr:true ~apply in
  if Trace.on () then
    Trace.complete ~cat:"recovery" ~ts
      ~args:[ ("undone_ops", Trace.Int undone_ops) ]
      "recovery.undo";
  Log_manager.flush_all log;
  Obs.incr Probes.recovery_runs;
  Obs.add Probes.recovery_redone redone_ops;
  Obs.add Probes.recovery_undone undone_ops;
  { analysis; redone_ops; undone_ops; ended_losers; tail_truncated }
