(** ARIES-style checkpointing and crash recovery.

    Recovery is the substrate the paper builds on: the as-of snapshot
    machinery reuses {!analyze} (bounded at the SplitLSN) and the same
    loser-undo walk, while crash recovery proper guarantees the primary
    database the paper rewinds from is always consistent. *)

val checkpoint :
  log:Rw_wal.Log_manager.t ->
  pool:Rw_buffer.Buffer_pool.t ->
  txns:Rw_txn.Txn_manager.t ->
  wall_us:float ->
  ?flush_pages:bool ->
  unit ->
  Rw_storage.Lsn.t
(** Write a checkpoint record carrying the active-transaction table, the
    dirty-page table and the wall-clock time (the coarse positioning index
    for SplitLSN searches, paper §5.1); force the log; update the master
    record.  [flush_pages] additionally flushes the buffer pool first, which
    empties the recorded dirty-page table (used at snapshot creation and to
    model a target recovery interval). *)

type analysis = {
  losers : (Rw_wal.Txn_id.t, Rw_storage.Lsn.t) Hashtbl.t;
      (** transactions in flight at the analysis horizon, with last LSN *)
  dirty_pages : (int, Rw_storage.Lsn.t) Hashtbl.t;
      (** page id -> recovery LSN *)
  txn_pages : (Rw_wal.Txn_id.t, (int, unit) Hashtbl.t) Hashtbl.t;
      (** pages each transaction touched within the scanned region *)
  redo_start : Rw_storage.Lsn.t;
  max_txn_id : Rw_wal.Txn_id.t;
  records_scanned : int;
}

val analyze :
  log:Rw_wal.Log_manager.t -> start:Rw_storage.Lsn.t -> upto:Rw_storage.Lsn.t -> analysis
(** Scan forward from [start] (normally the master checkpoint; its record
    seeds the tables) up to, excluding, [upto].  The scan is header-only
    (peek-based); only checkpoint records are decoded. *)

val loser_pages : analysis -> Rw_storage.Page_id.t list
(** Distinct pages touched by surviving losers within the scanned region —
    the advisory work-list for batched loser undo (pages a loser touched
    before [start] are simply absent; undo reads them individually). *)

type stats = {
  analysis : analysis;
  redone_ops : int;
  undone_ops : int;
  ended_losers : int;
  tail_truncated : (Rw_storage.Lsn.t * int) option;
      (** where the torn-tail scan truncated the log, and how many records
          it dropped ([None] if the tail was clean) *)
}

val recover : log:Rw_wal.Log_manager.t -> pool:Rw_buffer.Buffer_pool.t -> stats
(** Full crash recovery on the primary database: first validate the log
    tail record-by-record and truncate at the first torn record
    ([Log_manager.repair_tail]), then analysis from the master checkpoint
    to the end of the (durable) log, redo of missing updates, and rollback
    of losers with compensation records.  The caller should take a
    checkpoint afterwards and seed its transaction-id counter above
    [stats.analysis.max_txn_id]. *)

val undo_losers :
  log:Rw_wal.Log_manager.t ->
  losers:(Rw_wal.Txn_id.t, Rw_storage.Lsn.t) Hashtbl.t ->
  write_clr:bool ->
  apply:(Rw_storage.Page_id.t -> (Rw_storage.Page.t -> Rw_storage.Lsn.t option) -> unit) ->
  int
(** Walk every loser's chain newest-first, applying inverse operations via
    [apply].  With [write_clr] the undo is logged (CLRs + End records —
    crash recovery); without, pages are patched silently (snapshot logical
    undo, which must not write to the primary log).  [apply pid f] presents
    the page; [f] returns the new page LSN to stamp, if any.  Returns the
    number of operations undone. *)
