(** ARIES-style checkpointing and crash recovery.

    Recovery is the substrate the paper builds on: the as-of snapshot
    machinery reuses {!analyze} (bounded at the SplitLSN) and the same
    loser-undo walk, while crash recovery proper guarantees the primary
    database the paper rewinds from is always consistent.

    Two restart modes share the analysis pass: {!recover} replays
    everything before returning (optionally fanning redo out over OCaml 5
    domains), and {!Instant} opens the engine right after analysis and
    recovers pages on first touch or via a background drain. *)

val checkpoint :
  log:Rw_wal.Log_manager.t ->
  pool:Rw_buffer.Buffer_pool.t ->
  txns:Rw_txn.Txn_manager.t ->
  wall_us:float ->
  ?flush_pages:bool ->
  unit ->
  Rw_storage.Lsn.t
(** Write a checkpoint record carrying the active-transaction table, the
    dirty-page table and the wall-clock time (the coarse positioning index
    for SplitLSN searches, paper §5.1); force the log; update the master
    record.  [flush_pages] additionally flushes the buffer pool first, which
    empties the recorded dirty-page table (used at snapshot creation and to
    model a target recovery interval). *)

type analysis = {
  losers : (Rw_wal.Txn_id.t, Rw_storage.Lsn.t) Hashtbl.t;
      (** transactions in flight at the analysis horizon, with last LSN *)
  dirty_pages : (int, Rw_storage.Lsn.t) Hashtbl.t;
      (** page id -> recovery LSN *)
  txn_pages : (Rw_wal.Txn_id.t, (int, unit) Hashtbl.t) Hashtbl.t;
      (** pages each transaction touched within the scanned region *)
  redo_start : Rw_storage.Lsn.t;
  max_txn_id : Rw_wal.Txn_id.t;
  records_scanned : int;
}

val analyze :
  log:Rw_wal.Log_manager.t -> start:Rw_storage.Lsn.t -> upto:Rw_storage.Lsn.t -> analysis
(** Scan forward from [start] (normally the master checkpoint; its record
    seeds the tables, decoded once up front through the record LRU so
    repeated analyses skip the decode) up to, excluding, [upto].  The scan
    is header-only (peek-based); only checkpoint records are decoded. *)

val loser_pages : analysis -> Rw_storage.Page_id.t list
(** Distinct pages touched by surviving losers within the scanned region —
    the advisory work-list for batched loser undo (pages a loser touched
    before [start] are simply absent; undo reads them individually). *)

type stats = {
  analysis : analysis;
  mutable redone_ops : int;
  mutable undone_ops : int;
  mutable ended_losers : int;
  tail_truncated : (Rw_storage.Lsn.t * int) option;
      (** where the torn-tail scan truncated the log, and how many records
          it dropped ([None] if the tail was clean) *)
  mutable analysis_us : float;  (** simulated time spent in tail repair + analysis *)
  mutable time_to_first_query_us : float;
      (** simulated time from restart until the engine could serve a query:
          the whole of recovery for {!recover}, analysis + engine open for
          {!Instant} *)
  mutable time_to_full_recovery_us : float;
      (** simulated time from restart until every page was recovered (equal
          to [time_to_first_query_us] for {!recover}; stamped when the
          instant-restart backlog drains to zero) *)
}

val recover :
  ?redo_domains:int ->
  ?now_us:(unit -> float) ->
  log:Rw_wal.Log_manager.t ->
  pool:Rw_buffer.Buffer_pool.t ->
  unit ->
  stats
(** Full crash recovery on the primary database: first validate the log
    tail record-by-record and truncate at the first torn record
    ([Log_manager.repair_tail]), then analysis from the master checkpoint
    to the end of the (durable) log, redo of missing updates, and rollback
    of losers with compensation records.  The caller should take a
    checkpoint afterwards and seed its transaction-id counter above
    [stats.analysis.max_txn_id].

    [redo_domains] > 1 partitions the dirty-page table by page id into that
    many partitions and fans the record decode + page application out over
    worker domains (the log scan and page I/O stay on the calling domain);
    partitions are disjoint by construction, so the resulting pages are
    byte-identical to the sequential pass.  The number of domains actually
    running concurrently is capped at {!Domain.recommended_domain_count}
    (see {!set_redo_fanout}); the partition count — and therefore the
    result — is not affected by the cap.  [now_us] (normally the simulated
    clock) stamps the timing fields of {!stats}. *)

val redo_range :
  ?domains:int ->
  log:Rw_wal.Log_manager.t ->
  pool:Rw_buffer.Buffer_pool.t ->
  from:Rw_storage.Lsn.t ->
  upto:Rw_storage.Lsn.t ->
  unit ->
  int
(** Replay exactly the records with [from <= lsn < upto] onto the pool —
    the replica catch-up step.  A single peek scan builds the range's
    dirty-page table (first record LSN per page), then the standard redo
    machinery applies it ([domains] > 1 = the same partition-parallel path
    as {!recover}).  Idempotent via the page-LSN compare, so duplicate or
    overlapping shipments are harmless.  Returns operations applied. *)

val recover_redo_only :
  ?redo_domains:int ->
  ?now_us:(unit -> float) ->
  log:Rw_wal.Log_manager.t ->
  pool:Rw_buffer.Buffer_pool.t ->
  unit ->
  stats
(** Replica restart: tail repair, analysis from the master record (the
    replica's persisted recovery checkpoint), and redo — but {e no} loser
    undo and {e no} appended records (no CLRs, no End records, no
    checkpoint), because a replica's log must remain a byte-identical
    prefix of the primary's stream.  In-flight transactions' effects stay
    on the pages; reads go through as-of snapshots (snapshot-local loser
    undo) and the resumed catch-up stream delivers their outcomes.
    [stats.undone_ops]/[ended_losers] are always 0. *)

val set_redo_fanout : int option -> unit
(** Override the concurrent-worker cap used by parallel redo: [Some n]
    runs at most [n] domains (including the caller), [None] (the default)
    uses [Domain.recommended_domain_count ()].  Partition assignment is
    round-robin over the fan-out, so results are identical under any cap;
    tests use [Some n] to force true cross-domain execution on small
    hosts.

    @deprecated The worker pool is shared engine-wide now; this is a
    thin alias for [Rw_pool.Domain_pool.set_fanout] kept so existing
    callers and the [\recovery] docs stay valid.  Note the cap it sets
    is {e global} — it also bounds snapshot batch rewind and the scrub
    sweep.  New code should call [Domain_pool.set_fanout] directly. *)

val undo_losers :
  log:Rw_wal.Log_manager.t ->
  losers:(Rw_wal.Txn_id.t, Rw_storage.Lsn.t) Hashtbl.t ->
  write_clr:bool ->
  apply:(Rw_storage.Page_id.t -> (Rw_storage.Page.t -> Rw_storage.Lsn.t option) -> unit) ->
  int
(** Walk every loser's chain newest-first, applying inverse operations via
    [apply].  With [write_clr] the undo is logged (CLRs + End records —
    crash recovery); without, pages are patched silently (snapshot logical
    undo, which must not write to the primary log).  [apply pid f] presents
    the page; [f] returns the new page LSN to stamp, if any.  Returns the
    number of operations undone. *)

(** Instant restart: open the engine after tail repair + analysis alone and
    recover pages lazily.  {!open_} builds the backlog (analysis dirty-page
    table plus every page an in-flight transaction touched); the engine then
    wires {!touch} into its buffer-pool source so the first fetch of a
    backlog page redoes it to end-of-log and undoes its losers before the
    page is handed out, and a background sweeper calls {!drain} to retire
    the rest.  Time-to-first-query becomes O(analysis) instead of O(log). *)
module Instant : sig
  type t

  val open_ : ?now_us:(unit -> float) -> log:Rw_wal.Log_manager.t -> unit -> t
  (** Repair the log tail, run analysis, and compute the recovery backlog.
      No page is read or written; callers attach page I/O with {!attach}
      before the first {!touch} or {!drain}. *)

  val attach :
    t ->
    read:(Rw_storage.Page_id.t -> Rw_storage.Page.t) ->
    write:(Rw_storage.Page_id.t -> Rw_storage.Page.t -> unit) ->
    wal_flush:(Rw_storage.Lsn.t -> unit) ->
    unit
  (** Provide the page I/O used to recover groups: [read]/[write] against
      the underlying (self-healing) disk source, [wal_flush] to honour the
      WAL rule before recovered pages are written back. *)

  val stats : t -> stats
  (** Live statistics; [redone_ops]/[undone_ops]/[ended_losers] grow as the
      backlog drains, and the timing fields are stamped by {!mark_open} and
      by whichever touch or drain empties the backlog. *)

  val backlog : t -> int
  (** Pages still awaiting recovery. *)

  val pending_page : t -> Rw_storage.Page_id.t -> bool
  (** Is this page still in the backlog?  (The buffer-pool wrapper's fast
      path: one hash probe per fetch miss.) *)

  val mark_open : t -> unit
  (** Stamp [time_to_first_query_us]; the engine calls this once the
      database object is fully assembled and able to serve queries. *)

  val touch : t -> Rw_storage.Page_id.t -> Rw_storage.Page.t -> Rw_storage.Page.t
  (** First-touch recovery: if the page is pending, recover its whole group
      (see DESIGN.md §12 — every in-flight transaction overlapping the
      group is undone completely before any page is published) and return
      the recovered image; otherwise return the page unchanged. *)

  val drain : t -> max_pages:int -> int
  (** Recover up to [max_pages] backlog pages (whole groups at a time,
      lowest page id first); returns how many left the backlog.  A
      quarantined page is dropped from the backlog rather than wedging the
      drain.  The background sweeper and the pre-checkpoint barrier both
      use this. *)

  val on_demand_pages : t -> int
  (** Operations redone so far (diagnostic). *)
end
