(** Single-page repair from the transaction log.

    The log already contains everything needed to rebuild any page: the
    page's backward chain (paper §4) holds every modification since the
    page was formatted, and full-page-image records (§6.1) provide dense
    restart points.  When a checksum failure reveals a torn or rotten page,
    the engine does not need a backup — it replays the page's own chain
    forward from the newest full base record (a [Full_image] or [Format])
    and writes the result back.  This is the medium-recovery counterpart of
    the paper's thesis that the log is a first-class query structure.

    Pages whose history has been truncated past the last full base record
    are {e unrepairable}; they land in a {!Quarantine} set and subsequent
    reads fail with the typed {!Quarantined} error while the rest of the
    database keeps serving — graceful degradation rather than a crashed
    process. *)

exception Unrepairable of { page : Rw_storage.Page_id.t; reason : string }
(** The log no longer holds enough history to rebuild the page. *)

exception Quarantined of Rw_storage.Page_id.t
(** The page was previously found unrepairable; queries touching it fail
    with this error until the page is restored by other means. *)

(** The set of pages known to be damaged beyond log repair. *)
module Quarantine : sig
  type t

  val create : unit -> t
  val add : t -> Rw_storage.Page_id.t -> string -> unit
  val mem : t -> Rw_storage.Page_id.t -> bool
  val remove : t -> Rw_storage.Page_id.t -> unit

  val list : t -> (Rw_storage.Page_id.t * string) list
  (** Quarantined pages with the reason each repair failed, sorted by id. *)

  val count : t -> int
end

val rebuild : log:Rw_wal.Log_manager.t -> Rw_storage.Page_id.t -> Rw_storage.Page.t
(** Rebuild the page's current content purely from the log: locate the
    newest full base record in the page's chain ([Full_image] or [Format];
    if none is retained the chain must reach back to the page's genesis),
    then replay the chain forward to the end of the log, stamping each
    record's LSN.  In-flight (loser) operations are replayed too — exactly
    what redo would have produced — so a subsequent undo pass compensates
    them as usual.  Raises {!Unrepairable} when the retained chain has no
    base and does not start at genesis. *)

val repair_to_disk :
  log:Rw_wal.Log_manager.t ->
  disk:Rw_storage.Disk.t ->
  wal_flush:(Rw_storage.Lsn.t -> unit) ->
  Rw_storage.Page_id.t ->
  Rw_storage.Page.t
(** {!rebuild} the page, then seal and write it back to the disk (honouring
    the WAL rule via [wal_flush] first) and count it in the disk's
    [pages_repaired] statistic.  Returns the repaired page. *)

val source :
  disk:Rw_storage.Disk.t ->
  log:Rw_wal.Log_manager.t ->
  wal_flush:(Rw_storage.Lsn.t -> unit) ->
  quarantine:Quarantine.t ->
  unit ->
  Rw_buffer.Buffer_pool.source
(** A self-healing page source for the buffer pool: like
    [Buffer_pool.of_disk] (retrying reads/writes, checksum verification on
    every fetch) but a verification failure triggers {!repair_to_disk}
    transparently instead of failing the read.  Unrepairable pages are
    added to [quarantine] and the read raises {!Quarantined}; reads of
    already-quarantined pages fail the same way without touching the
    device. *)
