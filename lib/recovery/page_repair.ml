module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Io_stats = Rw_storage.Io_stats
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Trace = Rw_obs.Trace

exception Unrepairable of { page : Page_id.t; reason : string }
exception Quarantined of Page_id.t

module Quarantine = struct
  type t = (int, string) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let add t pid reason = Hashtbl.replace t (Page_id.to_int pid) reason
  let mem t pid = Hashtbl.mem t (Page_id.to_int pid)
  let remove t pid = Hashtbl.remove t (Page_id.to_int pid)

  let list t =
    Hashtbl.fold (fun i r acc -> (Page_id.of_int i, r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> Page_id.compare a b)

  let count t = Hashtbl.length t
end

(* A base record fully determines the page content by redo alone: a
   [Full_image] blits a complete image, a [Format] reinitialises the page.
   ([Preformat]'s redo is a no-op — its image is undo information.) *)
let is_base = function
  | Log_record.K_page_op (Log_record.K_full_image | Log_record.K_format)
  | Log_record.K_clr (Log_record.K_full_image | Log_record.K_format) ->
      true
  | _ -> false

let rebuild ~log pid =
  let chain = Log_manager.chain_segment log pid ~from:(Log_manager.end_lsn log) ~down_to:Lsn.nil in
  let n = Array.length chain in
  if n = 0 then raise (Unrepairable { page = pid; reason = "no retained log history" });
  (* Newest full base record wins: everything before it is irrelevant. *)
  let base = ref (-1) in
  (try
     for i = n - 1 downto 0 do
       if is_base (Log_manager.peek_record log chain.(i)).Log_record.p_kind then begin
         base := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !base < 0 then begin
    (* No base retained: replay is only sound from the page's genesis,
       i.e. if the oldest retained chain record is the chain's first. *)
    let oldest = Log_manager.peek_record log chain.(0) in
    if not (Lsn.is_nil oldest.Log_record.p_prev_page_lsn) then
      raise (Unrepairable { page = pid; reason = "history truncated past last full image" });
    base := 0
  end;
  let suffix = Array.sub chain !base (n - !base) in
  let records = Log_manager.read_segment log suffix in
  let page = Page.create ~id:pid ~typ:Page.Free in
  (try
     Array.iteri
       (fun i r ->
         match Log_record.op_of r with
         | Some op ->
             Log_record.redo pid op page;
             Page.set_lsn page suffix.(i)
         | None -> ())
       records
   with e ->
     raise
       (Unrepairable { page = pid; reason = Printf.sprintf "replay failed: %s" (Printexc.to_string e) }));
  page

let repair_to_disk ~log ~disk ~wal_flush pid =
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let page = rebuild ~log pid in
  (* WAL rule: the chain we replayed must be durable before the rebuilt
     page overwrites the stored (corrupt) image. *)
  wal_flush (Page.lsn page);
  Page.seal page;
  Disk.write_page_retrying disk pid page;
  let st = Disk.stats disk in
  st.Io_stats.pages_repaired <- st.Io_stats.pages_repaired + 1;
  if Trace.on () then
    Trace.complete ~cat:"buf" ~ts
      ~args:[ ("page", Trace.Int (Page_id.to_int pid)) ]
      "buf.repair";
  page

let source ~disk ~log ~wal_flush ~quarantine () =
  let read pid =
    if Quarantine.mem quarantine pid then raise (Quarantined pid);
    let p = Disk.read_page_retrying disk pid in
    if Page.verify p then p
    else begin
      let st = Disk.stats disk in
      st.Io_stats.corruptions_detected <- st.Io_stats.corruptions_detected + 1;
      match repair_to_disk ~log ~disk ~wal_flush pid with
      | page -> page
      | exception Unrepairable { reason; _ } ->
          Quarantine.add quarantine pid reason;
          raise (Quarantined pid)
    end
  in
  {
    Buffer_pool.read;
    write =
      (fun pid p ->
        Page.seal p;
        Disk.write_page_retrying disk pid p);
    write_seq =
      Some
        (fun pid p ->
          Page.seal p;
          Disk.write_page_seq_retrying disk pid p);
    read_cached = None;
  }
