(** Reproduction harnesses for the paper's evaluation (§6).

    One entry per figure/section; each prints the same series the paper
    plots.  Absolute numbers differ (the substrate is a simulator at MB
    scale, not a 40 GB testbed), but the shapes the paper argues from hold:
    FPI logging costs log space but little throughput (Figs. 5-6), as-of
    queries beat full restore by orders of magnitude and degrade linearly
    with time travelled (Figs. 7-10), undo I/Os grow linearly (Fig. 11),
    concurrent as-of queries reduce but do not cripple throughput (§6.3),
    and a crossover exists when enough data is accessed (§6.4). *)

type figure =
  | Fig5  (** log space overhead vs FPI frequency N *)
  | Fig6  (** throughput impact vs FPI frequency N *)
  | Fig7  (** restore vs as-of query, SSD *)
  | Fig8  (** restore vs as-of query, SAS *)
  | Fig9  (** snapshot creation vs query time, SSD *)
  | Fig10  (** snapshot creation vs query time, SAS *)
  | Fig11  (** estimated undo log I/Os vs time back *)
  | Sec6_3  (** throughput with a concurrent as-of query loop *)
  | Sec6_4  (** crossover: log rewind vs backup roll-forward *)
  | E8
      (** §6.3 at scale: TPC-C writer sessions interleaved with fleets of
          0/1/4/16 concurrent as-of reader sessions (each at its own
          SplitLSN, reading through the shared prepared-page cache);
          prints the writer-tpmC degradation curve and self-checks every
          reader byte-equal to a solo (uncached) snapshot — exits
          non-zero on mismatch *)
  | E9
      (** instant restart: time-to-first-query and time-to-full-recovery
          vs log length, full-replay restart next to analysis-only instant
          restart with first-touch recovery; self-checks queries issued
          during the backlog (and the drained end state) against the fully
          recovered twin — exits non-zero on mismatch *)
  | E10
      (** log-shipping replication: a writer fleet with the shipper as the
          scheduler's background service (lag rises and drains on one
          deterministic clock), then the replica fault campaign — crash
          mid-catch-up, sustained lag, network partition, failover+rejoin —
          each converging byte-equal (canonical page form) to a fault-free
          single-node oracle; exits non-zero on divergence *)
  | E11
      (** what-if queries: selectively remove one committed transaction
          and replay only its dependency closure ([Rw_whatif]); as
          history grows, selective replay cost stays pinned to the fixed
          dependent set while the full-database-rewind baseline
          ([All_successors]) grows linearly — both verified byte-equal
          (canonical masked pages + logical rows) against an oracle
          built by replaying the recorded history minus the victim from
          scratch; exits non-zero on any inequality *)
  | E12
      (** domain-parallel batched as-of preparation: the staged
          gather/apply/publish pipeline behind
          [As_of_snapshot.materialize_batch] swept at fan-out 1/2/4/8
          over a growing snapshot page count at the cold-chain operating
          point; reports modeled (simulated-clock) elapsed per fan-out
          and self-checks every run byte-identical (canonical pages) to
          a serial twin — exits non-zero on divergence or if fan-out 4
          fails to beat serial by 2x at the largest scale *)
  | Ablation
      (** design-choice ablations: FPI frequency, log cache size, page- vs
          transaction-oriented undo, and proactive copy-on-write snapshots
          vs the on-demand rewind (§7.1) *)
  | Faults
      (** fault-injection campaign: random crash points under torn writes,
          bit rot, transient I/O errors and torn log tails; verifies
          detection, log-based repair and oracle agreement *)
  | Explain
      (** per-query rewind cost (pages rewound, records undone, log bytes
          read) vs time back — the paper's proportional-cost claim as an
          EXPLAIN table *)
  | Segments
      (** segmented log storage long-run: with retention on, modeled
          resident log memory ([log.resident_bytes]) plateaus while total
          appended bytes grow linearly — the bounded-memory claim of the
          sealed-segment log manager *)

val all : figure list
val of_string : string -> figure option
val name : figure -> string

val run : ?quick:bool -> figure -> unit
(** Run one experiment and print its table to stdout.  [quick] shrinks the
    workload for smoke runs. *)

val run_all : ?quick:bool -> unit -> unit

(** {2 Fault-injection campaign}

    The crash-point property harness behind {!figure.Faults}, exposed so
    tests and the CLI soak command can assert on the rows instead of
    parsing printed tables. *)

type fault_rates = {
  torn_write_rate : float;
  bit_rot_rate : float;
  transient_error_rate : float;
  torn_log_tail_rate : float;
}

val default_fault_rates : fault_rates

type fault_row = {
  fr_seed : int;
  fr_crash_after : int;  (** committed transactions before the crash *)
  fr_crash_lsn : Rw_storage.Lsn.t;
  fr_injected : int;
  fr_detected : int;
  fr_repaired : int;
  fr_retries : int;
  fr_quarantined : int;
  fr_tail_truncated : bool;
  fr_consistent : bool;  (** TPC-C cross-table invariants hold *)
  fr_loser_gone : bool;  (** the in-flight transaction left no trace *)
  fr_state_agrees : bool;  (** row-for-row equal to the fault-free oracle *)
  fr_asof_agrees : bool;  (** mid-history as-of query equals the oracle's *)
}

val fault_row_ok : fault_row -> bool

val crash_repair_run :
  ?instant:bool -> seed:int -> crash_after:int -> rates:fault_rates -> unit -> fault_row
(** Run TPC-C under an active fault plan, crash after [crash_after]
    committed transactions (with one more left in flight), recover, scrub,
    and compare current state and a mid-history as-of query against a
    fault-free oracle run driven by the same seed.  With [instant] the
    reopen uses instant restart: the loser-gone and a stock-level probe are
    additionally checked {e during} the recovery backlog, before it is
    drained for the oracle comparison. *)

val crash_repair_campaign :
  ?instant:bool ->
  ?seeds:int list ->
  ?crash_points:int ->
  ?rates:fault_rates ->
  ?quick:bool ->
  unit ->
  fault_row list
(** {!crash_repair_run} at [crash_points] seed-derived crash points for
    each seed (defaults: 3 seeds x 4 points). *)

val print_fault_rows : fault_row list -> unit

(** {2 Replication fault campaign}

    The scenario harness behind {!figure.E10}, exposed so tests and the
    CLI [replsoak] command can assert on the rows. *)

type repl_scenario =
  | Crash_mid_catchup
      (** replica killed mid-catch-up; resumes from its persisted recovery
          checkpoint, redo-only *)
  | Sustained_lag
      (** faulty link pumped once per traffic batch: the replica stays
          behind all run and still converges *)
  | Partition_heal  (** partition exhausts retries to [Disconnected]; heal reconnects *)
  | Failover_rejoin
      (** primary dies with an unshipped tail; the replica is promoted and
          the demoted primary rejoins by truncating its divergent tail *)

val repl_scenarios : repl_scenario list
val repl_scenario_name : repl_scenario -> string

type repl_row = {
  rr_seed : int;
  rr_scenario : repl_scenario;
  rr_txns : int;  (** committed transactions in the scenario run *)
  rr_shipped : int;  (** shipping units delivered *)
  rr_retries : int;
  rr_lag_max : int;  (** highest observed lag, in segments *)
  rr_stressed : bool;  (** the scenario's fault actually fired *)
  rr_converged : bool;  (** shipper ended [Caught_up] *)
  rr_state_agrees : bool;  (** row-for-row equal to the oracle *)
  rr_pages_equal : bool;  (** canonical page bytes equal to the oracle *)
  rr_asof_agrees : bool;  (** mid-history as-of query equals the oracle's *)
}

val repl_row_ok : repl_row -> bool

val repl_soak_run :
  ?quick:bool -> seed:int -> scenario:repl_scenario -> unit -> repl_row
(** One scenario against a fault-free single-node oracle driven by the
    same seed: run the replicated pair through the scenario, then compare
    the replica-side engine to the oracle row-for-row, page-by-page in
    canonical form, and through a mid-history as-of query. *)

val repl_soak_campaign : ?seeds:int list -> ?quick:bool -> unit -> repl_row list
(** {!repl_soak_run} for every scenario at each seed (default 3 seeds). *)

val print_repl_rows : repl_row list -> unit

(** {2 What-if selective-undo campaign}

    The property harness behind {!figure.E11}, exposed so tests and the
    CLI [whatifsoak] command can assert on the rows.  The workload is a
    deterministic single-table history of blind fixed-size updates whose
    page-level dependency structure is chosen by construction (cells are
    spaced so distinct cells never share a B-tree leaf), which makes the
    replay-from-scratch oracle valid at page granularity. *)

type whatif_scenario =
  | Wf_chain  (** every transaction shares a cell with its successor *)
  | Wf_independent  (** every transaction writes a private cell *)
  | Wf_mixed  (** even transactions chain; odd ones are independent *)

val whatif_scenarios : whatif_scenario list
val whatif_scenario_name : whatif_scenario -> string

type whatif_row = {
  wr_seed : int;
  wr_scenario : whatif_scenario;
  wr_history : int;  (** history transactions committed *)
  wr_closure : int;  (** |D|: victim + dependents *)
  wr_replayed : int;
  wr_pages : int;  (** pages rewound by the repair *)
  wr_ops_replayed : int;
  wr_from_index : bool;  (** graph built from the append-time index *)
  wr_scope_exact : bool;  (** dependent set matches the constructed one *)
  wr_view_agrees : bool;  (** what-if view rows equal the oracle's *)
  wr_repaired : bool;
  wr_state_agrees : bool;  (** repaired rows equal the oracle's *)
  wr_pages_equal : bool;  (** canonical masked page bytes equal *)
  wr_asof_agrees : bool;  (** pre-victim as-of survives the repair *)
}

val whatif_row_ok : whatif_row -> bool

val whatif_soak_run :
  ?quick:bool -> seed:int -> scenario:whatif_scenario -> unit -> whatif_row
(** One scenario: run the deterministic history, pick a mid-history
    victim, publish a what-if view, repair in place, and verify view,
    repaired state (rows + canonical masked pages) and a pre-victim
    as-of query against the replay-minus-victim oracle. *)

val whatif_soak_campaign : ?seeds:int list -> ?quick:bool -> unit -> whatif_row list
(** {!whatif_soak_run} for every scenario at each seed (default 3 seeds). *)

val print_whatif_rows : whatif_row list -> unit
