module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats
module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Log_manager = Rw_wal.Log_manager
module Log_record = Rw_wal.Log_record
module Database = Rw_engine.Database
module Backup = Rw_engine.Backup
module Engine = Rw_engine.Engine
module As_of_snapshot = Rw_core.As_of_snapshot
module Split_lsn = Rw_core.Split_lsn
module Prepared_cache = Rw_core.Prepared_cache
module Session_manager = Rw_session.Session_manager
module Domain_pool = Rw_pool.Domain_pool

type figure =
  | Fig5
  | Fig6
  | Fig7
  | Fig8
  | Fig9
  | Fig10
  | Fig11
  | Sec6_3
  | Sec6_4
  | E8
  | E9
  | E10
  | E11
  | E12
  | Ablation
  | Faults
  | Explain
  | Segments

let all =
  [
    Fig5;
    Fig6;
    Fig7;
    Fig8;
    Fig9;
    Fig10;
    Fig11;
    Sec6_3;
    Sec6_4;
    E8;
    E9;
    E10;
    E11;
    E12;
    Ablation;
    Faults;
    Explain;
    Segments;
  ]

let name = function
  | Fig5 -> "fig5"
  | Fig6 -> "fig6"
  | Fig7 -> "fig7"
  | Fig8 -> "fig8"
  | Fig9 -> "fig9"
  | Fig10 -> "fig10"
  | Fig11 -> "fig11"
  | Sec6_3 -> "sec6_3"
  | Sec6_4 -> "sec6_4"
  | E8 -> "e8"
  | E9 -> "e9"
  | E10 -> "e10"
  | E11 -> "e11"
  | E12 -> "e12"
  | Ablation -> "ablation"
  | Faults -> "faults"
  | Explain -> "explain"
  | Segments -> "segments"

let of_string s = List.find_opt (fun f -> name f = s) all

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let seconds us = us /. 1_000_000.0

(* --- common setup: a TPC-C database with some committed history --- *)

type setup = {
  eng : Engine.t;
  db : Database.t;
  drv : Tpcc.t;
  cfg : Tpcc.config;
  t_run_start : float;  (** sim time when the measured history began *)
  t_run_end : float;
}

let build ?(fpi = 0) ?(media = Media.ssd) ?log_media ?log_cache_blocks ?log_block_bytes
    ?log_segment_bytes ?(group_commit = Some (64 * 1024, 2_000.0)) ?(cfg = Tpcc.default_config)
    ~history_txns () =
  let eng = Engine.create ~media ?log_media () in
  let db =
    Engine.create_database eng ~fpi_frequency:fpi ~pool_capacity:1024
      ~checkpoint_interval_us:2_000_000.0 ?log_cache_blocks ?log_block_bytes ?log_segment_bytes
      "tpcc"
  in
  (* The workload driver runs on the batched commit API: flush once per
     64KiB of log tail or 2ms of simulated waiter age, whichever first. *)
  (match group_commit with
  | Some (max_batch_bytes, max_delay_us) ->
      Database.set_group_commit db ~max_batch_bytes ~max_delay_us
  | None -> ());
  Tpcc.load db cfg;
  ignore (Database.checkpoint db);
  let drv = Tpcc.create db cfg in
  let t_run_start = Engine.now_us eng in
  if history_txns > 0 then ignore (Tpcc.run_mix drv ~txns:history_txns);
  { eng; db; drv; cfg; t_run_start; t_run_end = Engine.now_us eng }

let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d" prefix !n

let time_of eng f =
  let t0 = Engine.now_us eng in
  let v = f () in
  (v, Engine.now_us eng -. t0)

(* --- Figures 5 & 6: FPI frequency sweep --- *)

let fpi_values = [ 0; 100; 50; 20; 10 ]

let fig56 ~quick ~show () =
  let txns = if quick then 600 else 4000 in
  let rows =
    List.map
      (fun fpi ->
        let s = build ~fpi ~history_txns:0 () in
        let log = Database.log s.db in
        let bytes0 = Log_manager.total_appended_bytes log in
        let w0 = Io_stats.copy (Log_manager.stats log) in
        let t0 = Engine.now_us s.eng in
        let stats = Tpcc.run_mix s.drv ~txns in
        let elapsed = Engine.now_us s.eng -. t0 in
        let log_mb =
          float_of_int (Log_manager.total_appended_bytes log - bytes0) /. 1_048_576.0
        in
        let writes = Io_stats.diff (Log_manager.stats log) w0 in
        (fpi, log_mb, Tpcc.tpmc stats ~elapsed_us:elapsed, writes))
      fpi_values
  in
  let base_mb, base_tpmc =
    match rows with (_, mb, tp, _) :: _ -> (mb, tp) | [] -> (1.0, 1.0)
  in
  let fpi_label fpi = if fpi = 0 then "off" else string_of_int fpi in
  (match show with
  | `Space ->
      header "Figure 5: transaction log space vs full-page-image frequency N";
      Printf.printf "%-12s %12s %12s\n" "N" "log (MiB)" "overhead";
      List.iter
        (fun (fpi, mb, _, _) ->
          Printf.printf "%-12s %12.2f %11.0f%%\n" (fpi_label fpi) mb
            ((mb /. base_mb -. 1.0) *. 100.0))
        rows
  | `Throughput ->
      header "Figure 6: throughput (tpmC) vs full-page-image frequency N";
      Printf.printf "%-12s %12s %12s\n" "N" "tpmC" "vs off";
      List.iter
        (fun (fpi, _, tp, _) ->
          Printf.printf "%-12s %12.0f %11.1f%%\n" (fpi_label fpi) tp
            ((tp /. base_tpmc -. 1.0) *. 100.0))
        rows);
  List.iter
    (fun (fpi, _, _, w) ->
      Printf.printf "  N=%-4s log write path: %s\n" (fpi_label fpi)
        (Format.asprintf "%a" Io_stats.pp_writes w))
    rows;
  Printf.printf
    "(paper: additional logging has little throughput impact but grows the log)\n%!"

(* --- Figures 7-11: restore vs as-of query at increasing time-back --- *)

type point = {
  back_s : float;
  snap_create_s : float;
  asof_query_s : float;
  restore_s : float;
  undo_ios : int;
}

(* Each point is measured on a FRESH engine replaying the identical
   deterministic history: measurements must not warm each other's log
   cache, and the log cache is sized well below the history's log volume
   so rewinding into old regions actually stalls on log I/O (the effect
   Figure 11 quantifies). *)
let backward_cache : (string * bool, point list) Hashtbl.t = Hashtbl.create 8

let backward_points ?(fracs = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]) ~media ~quick () =
  match Hashtbl.find_opt backward_cache (media.Media.name, quick) with
  | Some points -> points
  | None ->
  let history_txns = if quick then 1200 else 8000 in
  (* Many warehouses/items spread the update traffic over many pages, as in
     the paper's 800-warehouse setup: per-page chains stay short relative
     to total history, which is what keeps the as-of query cheap. *)
  let cfg =
    if quick then Tpcc.default_config
    else { Tpcc.default_config with warehouses = 16; items = 2000; customers = 300 }
  in
  let points =
  List.map
    (fun frac ->
      let s =
        build ~media ~log_cache_blocks:64 ~log_block_bytes:16384 ~cfg ~history_txns:0 ()
      in
      (* Cold static bulk: the paper's database is 40 GB of which the
         workload touches a small hot set.  The cold region is never read
         by queries or the log rewind, but a full backup/restore must copy
         it — that asymmetry is the heart of Figures 7-10. *)
      Rw_storage.Disk.extend (Database.disk s.db) (if quick then 10_000 else 400_000);
      let backup = Backup.take s.db in
      let t_start = Engine.now_us s.eng in
      ignore (Tpcc.run_mix s.drv ~txns:history_txns);
      let t_end = Engine.now_us s.eng in
      let span = t_end -. t_start in
      let log_stats = Log_manager.stats (Database.log s.db) in
      let target = t_end -. (frac *. span) in
      let snap, create_s =
        time_of s.eng (fun () ->
            Database.create_as_of_snapshot s.db ~name:(fresh_name "snap") ~wall_us:target)
      in
      let ios0 = Io_stats.copy log_stats in
      let _, query_s =
        time_of s.eng (fun () -> Tpcc.stock_level snap s.cfg ~w:1 ~d:1 ~threshold:15)
      in
      let undo_ios = (Io_stats.diff log_stats ios0).Io_stats.random_reads in
      let _, restore_s =
        time_of s.eng (fun () ->
            let restored = Backup.restore_as_of backup ~from:s.db ~wall_us:target in
            ignore (Tpcc.stock_level restored s.cfg ~w:1 ~d:1 ~threshold:15))
      in
      {
        back_s = frac *. span /. 1_000_000.0;
        snap_create_s = seconds create_s;
        asof_query_s = seconds query_s;
        restore_s = seconds restore_s;
        undo_ios;
      })
    fracs
  in
  Hashtbl.replace backward_cache (media.Media.name, quick) points;
  points

let fig_restore_vs_asof ~media ~quick ~fig () =
  let points = backward_points ~media ~quick () in
  header
    (Printf.sprintf "Figure %d: restore vs as-of query end-to-end time (%s)" fig media.Media.name);
  Printf.printf "%-14s %16s %16s %10s\n" "back (sim s)" "as-of total (s)" "restore (s)" "speedup";
  List.iter
    (fun p ->
      let asof = p.snap_create_s +. p.asof_query_s in
      Printf.printf "%-14.2f %16.4f %16.3f %9.0fx\n" p.back_s asof p.restore_s
        (p.restore_s /. (if asof > 0.0 then asof else 1e-9)))
    points;
  Printf.printf
    "(paper: as-of grows with time back; restore is flat and orders of magnitude slower)\n%!"

let fig_create_vs_query ~media ~quick ~fig () =
  let points = backward_points ~media ~quick () in
  header
    (Printf.sprintf "Figure %d: snapshot creation vs as-of query time (%s)" fig
       media.Media.name);
  Printf.printf "%-14s %18s %16s\n" "back (sim s)" "snap creation (s)" "as-of query (s)";
  List.iter
    (fun p -> Printf.printf "%-14.2f %18.4f %16.4f\n" p.back_s p.snap_create_s p.asof_query_s)
    points;
  Printf.printf
    "(paper: creation is roughly constant — bounded by log scanned from the nearest\n\
    \ checkpoint; query time grows with the modifications to be undone)\n%!"

let fig11 ~quick () =
  let points = backward_points ~media:Media.ssd ~quick () in
  header "Figure 11: estimated number of undo log I/Os per as-of query";
  Printf.printf "%-14s %14s\n" "back (sim s)" "undo log IOs";
  List.iter (fun p -> Printf.printf "%-14.2f %14d\n" p.back_s p.undo_ios) points;
  Printf.printf "(paper: grows linearly with the amount of history rewound)\n%!"

(* --- §6.3: concurrent as-of query loop --- *)

let sec6_3 ~quick () =
  let phase = if quick then 400 else 2500 in
  (* Baseline. *)
  let s = build ~history_txns:phase () in
  let t0 = Engine.now_us s.eng in
  let base_stats = Tpcc.run_mix s.drv ~txns:phase in
  let base_elapsed = Engine.now_us s.eng -. t0 in
  let base_tpmc = Tpcc.tpmc base_stats ~elapsed_us:base_elapsed in
  (* Same phase with an as-of query loop interleaved: after every batch of
     transactions, snapshot ~25% of history back and run the stock-level
     query against it. *)
  let s2 = build ~history_txns:phase () in
  let hist_span = s2.t_run_end -. s2.t_run_start in
  let batches = 5 in
  let batch = phase / batches in
  let create_times = ref [] and query_times = ref [] in
  let t0 = Engine.now_us s2.eng in
  let stats = { Tpcc.new_orders = 0; payments = 0; order_statuses = 0; stock_levels = 0 } in
  for _ = 1 to batches do
    let s_batch = Tpcc.run_mix s2.drv ~txns:batch in
    stats.Tpcc.new_orders <- stats.Tpcc.new_orders + s_batch.Tpcc.new_orders;
    let target = Engine.now_us s2.eng -. (0.25 *. hist_span) in
    let snap, create_s =
      time_of s2.eng (fun () ->
          Database.create_as_of_snapshot s2.db ~name:(fresh_name "conc") ~wall_us:target)
    in
    let _, query_s =
      time_of s2.eng (fun () -> Tpcc.stock_level snap s2.cfg ~w:1 ~d:1 ~threshold:15)
    in
    create_times := seconds create_s :: !create_times;
    query_times := seconds query_s :: !query_times
  done;
  let conc_elapsed = Engine.now_us s2.eng -. t0 in
  let conc_tpmc = Tpcc.tpmc stats ~elapsed_us:conc_elapsed in
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  header "Section 6.3: throughput with a concurrent as-of query loop";
  Printf.printf "%-34s %12.0f\n" "baseline tpmC" base_tpmc;
  Printf.printf "%-34s %12.0f\n" "tpmC with concurrent as-of loop" conc_tpmc;
  Printf.printf "%-34s %11.0f%%\n" "throughput retained"
    (conc_tpmc /. base_tpmc *. 100.0);
  Printf.printf "%-34s %12.4f\n" "avg snapshot creation (s)" (avg !create_times);
  Printf.printf "%-34s %12.4f\n" "avg as-of stock-level query (s)" (avg !query_times);
  Printf.printf "%-34s %s\n" "log write path"
    (Format.asprintf "%a" Io_stats.pp_writes (Log_manager.stats (Database.log s2.db)));
  Printf.printf "(paper: 270k -> 180k tpmC, i.e. ~67%% retained; creation 20s, query 30s)\n%!"

(* --- E8: §6.3 at scale — writer tpmC vs concurrent as-of reader count ---

   The paper measures one as-of query loop next to the TPC-C writers; E8
   scales that to a fleet.  For each reader count m, a fresh database runs
   the same writer sessions round-robin-interleaved with m reader sessions,
   each reader holding its own as-of snapshot at its own (staggered)
   SplitLSN and running the stock-level query every round.  Readers consume
   simulated engine time, so writer throughput (new-orders per simulated
   minute) degrades as m grows — the paper's contention effect — while the
   shared prepared-page cache keeps the degradation sub-linear by letting
   overlapping snapshots reuse each other's chain rewinds.

   Self-check: every reader's materialized pages must be byte-equal to a
   fresh *solo* snapshot (shared cache off) at the same wall target — the
   cache must be invisible to results.  FAIL exits non-zero. *)
let e8 ~quick () =
  header "E8 (§6.3 at scale): writer tpmC vs concurrent as-of reader count";
  let phase = if quick then 300 else 1000 in
  let rounds = if quick then 10 else 30 in
  (* 2 writers x 5 txns per round puts one reader's per-round query cost
     near a third of the writers' — the paper's single-loop operating
     point (~67% retained); bigger fleets then degrade from there. *)
  let writers = 2 and txns_per_round = 5 in
  let reader_counts = [ 0; 1; 4; 16 ] in
  let failures = ref 0 in
  let base_tpmc = ref 0.0 in
  Printf.printf "%8s %10s %10s %12s %11s %12s %7s\n" "readers" "tpmC" "retained%" "avg_query_s"
    "cache_hit%" "shared_hits" "check";
  List.iter
    (fun m ->
      let s = build ~history_txns:phase () in
      let hist_span = s.t_run_end -. s.t_run_start in
      let sm = Session_manager.create s.db in
      let stats = { Tpcc.new_orders = 0; payments = 0; order_statuses = 0; stock_levels = 0 } in
      let wsessions =
        List.init writers (fun i ->
            let drv = Tpcc.create s.db { s.cfg with Tpcc.seed = s.cfg.Tpcc.seed + (101 * (i + 1)) } in
            Session_manager.open_writer sm
              ~name:(Printf.sprintf "writer-%d" i)
              ~step:(fun _db ->
                let b = Tpcc.run_mix drv ~txns:txns_per_round in
                stats.Tpcc.new_orders <- stats.Tpcc.new_orders + b.Tpcc.new_orders;
                stats.Tpcc.payments <- stats.Tpcc.payments + b.Tpcc.payments;
                stats.Tpcc.order_statuses <- stats.Tpcc.order_statuses + b.Tpcc.order_statuses;
                stats.Tpcc.stock_levels <- stats.Tpcc.stock_levels + b.Tpcc.stock_levels))
      in
      let query_times = ref [] in
      let rsessions =
        List.init m (fun i ->
            (* Staggered targets across [10%, 60%] of history back: nearby
               but distinct SplitLSNs, the shared cache's home ground. *)
            let frac = 0.10 +. (0.50 *. float_of_int i /. float_of_int (max 1 (m - 1))) in
            let target = s.t_run_end -. (frac *. hist_span) in
            let w = 1 + (i mod s.cfg.Tpcc.warehouses) and d = 1 + (i mod s.cfg.Tpcc.districts) in
            let rs =
              Session_manager.open_reader sm ~name:(fresh_name "e8_rd") ~wall_us:target
                ~step:(fun view ->
                  let _, q =
                    time_of s.eng (fun () -> Tpcc.stock_level view s.cfg ~w ~d ~threshold:15)
                  in
                  query_times := seconds q :: !query_times)
            in
            (rs, target))
      in
      let t0 = Engine.now_us s.eng in
      Session_manager.run sm ~rounds;
      let elapsed = Engine.now_us s.eng -. t0 in
      let tpmc = Tpcc.tpmc stats ~elapsed_us:elapsed in
      if m = 0 then base_tpmc := tpmc;
      (* Self-check before closing: shared readers vs solo oracles. *)
      let ok =
        List.for_all
          (fun (rs, target) ->
            let view = Session_manager.view rs in
            let snap = Option.get (Database.snapshot_handle view) in
            let solo_view =
              Database.create_as_of_snapshot ~shared:false s.db ~name:(fresh_name "e8_solo")
                ~wall_us:target
            in
            let solo = Option.get (Database.snapshot_handle solo_view) in
            let same =
              Lsn.equal (As_of_snapshot.split_lsn snap) (As_of_snapshot.split_lsn solo)
              && List.for_all
                   (fun pid ->
                     String.equal (As_of_snapshot.page_string snap pid)
                       (As_of_snapshot.page_string solo pid))
                   (As_of_snapshot.materialized_page_ids snap)
            in
            As_of_snapshot.drop solo;
            same)
          rsessions
      in
      if not ok then incr failures;
      let cache = Database.prepared_cache s.db in
      let avg_query =
        match !query_times with
        | [] -> "-"
        | l -> Printf.sprintf "%.4f" (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
      in
      Printf.printf "%8d %10.0f %9.0f%% %12s %10.0f%% %12d %7s\n%!" m tpmc
        (if !base_tpmc > 0.0 then tpmc /. !base_tpmc *. 100.0 else 100.0)
        avg_query
        (Prepared_cache.hit_rate cache *. 100.0)
        (Prepared_cache.hits cache + Prepared_cache.delta_hits cache)
        (if ok then "PASS" else "FAIL");
      List.iter (fun ws -> Session_manager.close sm ws) wsessions;
      List.iter (fun (rs, _) -> Session_manager.close sm rs) rsessions)
    reader_counts;
  Printf.printf "(paper: 270k -> 180k tpmC with one concurrent as-of loop, ~67%% retained)\n";
  Printf.printf "self-check (readers byte-equal to solo snapshots): %s\n%!"
    (if !failures = 0 then "PASS" else "FAIL");
  if !failures > 0 then exit 1

(* --- §6.4: crossover between log rewind and backup roll-forward --- *)

let sec6_4 ~quick () =
  let history_txns = if quick then 1200 else 4000 in
  (* Warehouses are the unit of accessed data here: each warehouse has its
     own stock pages, so querying k warehouses touches k times the pages.
     SAS media makes the rewind's random log reads expensive, which is what
     lets a (sequential) full restore win once enough data is accessed far
     enough back. *)
  let cfg = { Tpcc.default_config with warehouses = 20; items = 1000; customers = 20 } in
  header "Section 6.4: crossover — as-of rewind vs restore, by data accessed";
  Printf.printf "%-22s %14s %14s %10s\n" "warehouses accessed" "as-of (s)" "restore (s)" "winner";
  let counts = [ 1; 2; 5; 10; 20 ] in
  List.iter
    (fun k ->
      (* Fresh engine per point: measurements must not warm each other's
         log cache. *)
      let s =
        build ~media:Media.sas ~log_cache_blocks:16 ~log_block_bytes:16384 ~cfg
          ~history_txns:0 ()
      in
      Rw_storage.Disk.extend (Database.disk s.db) (if quick then 60_000 else 150_000);
      let backup = Backup.take s.db in
      let t_start = Engine.now_us s.eng in
      ignore (Tpcc.run_mix s.drv ~txns:history_txns);
      let t_end = Engine.now_us s.eng in
      let target = t_end -. (0.9 *. (t_end -. t_start)) in
      let snap, create_s =
        time_of s.eng (fun () ->
            Database.create_as_of_snapshot s.db ~name:(fresh_name "cross") ~wall_us:target)
      in
      let _, query_s =
        time_of s.eng (fun () ->
            for w = 1 to k do
              ignore (Tpcc.stock_level snap s.cfg ~w ~d:1 ~threshold:15)
            done)
      in
      let restored, restore_s =
        time_of s.eng (fun () -> Backup.restore_as_of backup ~from:s.db ~wall_us:target)
      in
      let _, rq_s =
        time_of s.eng (fun () ->
            for w = 1 to k do
              ignore (Tpcc.stock_level restored s.cfg ~w ~d:1 ~threshold:15)
            done)
      in
      let asof = seconds (create_s +. query_s) in
      let restore = seconds (restore_s +. rq_s) in
      Printf.printf "%-22d %14.3f %14.3f %10s\n" k asof restore
        (if asof <= restore then "as-of" else "restore"))
    counts;
  Printf.printf
    "(paper: a crossover exists where restoring the full database becomes faster\n\
    \ when a large fraction of the data is accessed far in the past)\n%!"

(* --- Ablations --- *)

(* Transaction-oriented (logical) undo of the WHOLE history back to the
   split — the §4.1 alternative the paper rejects: every page touched since
   the target time must be fetched and every record undone, regardless of
   what the query reads. *)
let logical_full_rewind db ~wall_us =
  let log = Database.log db in
  let split = (Split_lsn.find ~log ~wall_us).Split_lsn.split_lsn in
  let disk = Database.disk db in
  let pages : (int, Page.t) Hashtbl.t = Hashtbl.create 256 in
  let undone = ref 0 in
  Log_manager.iter_range_rev log ~from:split ~upto:(Log_manager.end_lsn log) (fun _ r ->
      match r.Log_record.body with
      | Log_record.Page_op { page; op; prev_page_lsn }
      | Log_record.Clr { page; op; prev_page_lsn; _ } ->
          let key = Page_id.to_int page in
          let p =
            match Hashtbl.find_opt pages key with
            | Some p -> p
            | None ->
                let p = Disk.read_page disk page in
                Hashtbl.replace pages key p;
                p
          in
          if Lsn.(Page.lsn p > prev_page_lsn) then begin
            Log_record.undo op p;
            Page.set_lsn p prev_page_lsn;
            incr undone
          end
      | _ -> ());
  (Hashtbl.length pages, !undone)

let ablation ~quick () =
  let history_txns = if quick then 800 else 3000 in
  header "Ablation A: FPI frequency N vs as-of query cost (fixed time-back)";
  Printf.printf "%-8s %16s %14s\n" "N" "query time (s)" "undo log IOs";
  List.iter
    (fun fpi ->
      let s = build ~fpi ~log_cache_blocks:16 ~log_block_bytes:16384 ~history_txns () in
      let target = s.t_run_end -. (0.8 *. (s.t_run_end -. s.t_run_start)) in
      let snap =
        Database.create_as_of_snapshot s.db ~name:(fresh_name "abl") ~wall_us:target
      in
      let log_stats = Log_manager.stats (Database.log s.db) in
      let ios0 = Io_stats.copy log_stats in
      let _, query_s =
        time_of s.eng (fun () -> Tpcc.stock_level snap s.cfg ~w:1 ~d:1 ~threshold:15)
      in
      Printf.printf "%-8s %16.4f %14d\n"
        (if fpi = 0 then "off" else string_of_int fpi)
        (seconds query_s)
        (Io_stats.diff log_stats ios0).Io_stats.random_reads)
    [ 0; 50; 10 ];
  header "Ablation B: log cache size vs as-of query cost";
  Printf.printf "%-14s %16s\n" "cache blocks" "query time (s)";
  List.iter
    (fun blocks ->
      let s = build ~log_cache_blocks:blocks ~log_block_bytes:16384 ~history_txns () in
      let target = s.t_run_end -. (0.8 *. (s.t_run_end -. s.t_run_start)) in
      let snap =
        Database.create_as_of_snapshot s.db ~name:(fresh_name "abl") ~wall_us:target
      in
      let _, query_s =
        time_of s.eng (fun () -> Tpcc.stock_level snap s.cfg ~w:1 ~d:1 ~threshold:15)
      in
      Printf.printf "%-14d %16.4f\n" blocks (seconds query_s))
    [ 8; 128; 1024 ];
  header "Ablation C: page-oriented vs transaction-oriented undo (paper §4.1)";
  let s = build ~history_txns () in
  let target = s.t_run_end -. (0.5 *. (s.t_run_end -. s.t_run_start)) in
  let snap, create_s =
    time_of s.eng (fun () ->
        Database.create_as_of_snapshot s.db ~name:(fresh_name "abl") ~wall_us:target)
  in
  let _, query_s =
    time_of s.eng (fun () -> Tpcc.stock_level snap s.cfg ~w:1 ~d:1 ~threshold:15)
  in
  let handle = Option.get (Database.snapshot_handle snap) in
  let (pages_touched, ops), logical_s =
    time_of s.eng (fun () -> logical_full_rewind s.db ~wall_us:target)
  in
  Printf.printf "page-oriented:  %.4f s, %d pages materialised (only the query's path)\n"
    (seconds (create_s +. query_s))
    (As_of_snapshot.pages_materialised handle);
  Printf.printf "txn-oriented:   %.4f s, %d pages touched, %d ops undone (whole database)\n"
    (seconds logical_s) pages_touched ops;
  Printf.printf "(paper: page-oriented undo limits work to the data actually accessed)\n%!"

let ablation_cow ~quick () =
  let txns = if quick then 600 else 3000 in
  header "Ablation D: proactive copy-on-write snapshot vs on-demand log rewind (paper §7.1)";
  (* Baseline throughput, no snapshot of any kind. *)
  let s0 = build ~history_txns:0 () in
  let t0 = Engine.now_us s0.eng in
  let st0 = Tpcc.run_mix s0.drv ~txns in
  let base_tpmc = Tpcc.tpmc st0 ~elapsed_us:(Engine.now_us s0.eng -. t0) in
  (* Same run with a standing COW snapshot created up front. *)
  let s1 = build ~history_txns:0 () in
  let cow_view = Database.create_cow_snapshot s1.db ~name:"standing" in
  let cow = Option.get (Database.cow_handle cow_view) in
  let t1 = Engine.now_us s1.eng in
  let st1 = Tpcc.run_mix s1.drv ~txns in
  let cow_tpmc = Tpcc.tpmc st1 ~elapsed_us:(Engine.now_us s1.eng -. t1) in
  (* Same run, nothing standing; one as-of query afterwards at the time
     the COW snapshot had been created. *)
  let s2 = build ~history_txns:0 () in
  let t_created = Engine.now_us s2.eng in
  ignore (Tpcc.run_mix s2.drv ~txns);
  let snap, asof_cost =
    time_of s2.eng (fun () ->
        let snap =
          Database.create_as_of_snapshot s2.db ~name:"ondemand" ~wall_us:t_created
        in
        ignore (Tpcc.stock_level snap s2.cfg ~w:1 ~d:1 ~threshold:15);
        snap)
  in
  let handle = Option.get (Database.snapshot_handle snap) in
  Printf.printf "%-44s %12.0f\n" "baseline tpmC (no snapshot)" base_tpmc;
  Printf.printf "%-44s %12.0f (%.1f%%)\n" "tpmC with standing COW snapshot" cow_tpmc
    ((cow_tpmc /. base_tpmc -. 1.0) *. 100.0);
  Printf.printf "%-44s %12d (%.1f MiB pushed proactively)\n" "COW pages copied, zero readers"
    (Rw_core.Cow_snapshot.pages_copied cow)
    (float_of_int (Rw_core.Cow_snapshot.copy_bytes cow) /. 1_048_576.0);
  Printf.printf "%-44s %12.4f s, %d pages, on demand only\n"
    "as-of snapshot + query at the same time" (seconds asof_cost)
    (As_of_snapshot.pages_materialised handle);
  Printf.printf
    "(paper: proactive snapshots are mostly wasted effort for error recovery; the\n\
    \ log already holds the undo information, so the rewind pays only when asked)\n%!"

(* --- fault-injection campaign: the crash-point property harness --- *)

module Fault_plan = Rw_storage.Fault_plan
module Prng = Rw_storage.Prng
module Sim_clock_ = Sim_clock
module Row = Rw_engine.Row

type fault_rates = {
  torn_write_rate : float;
  bit_rot_rate : float;
  transient_error_rate : float;
  torn_log_tail_rate : float;
}

let default_fault_rates =
  {
    torn_write_rate = 0.30;
    bit_rot_rate = 0.02;
    transient_error_rate = 0.01;
    torn_log_tail_rate = 0.50;
  }

type fault_row = {
  fr_seed : int;
  fr_crash_after : int;  (** committed transactions before the crash *)
  fr_crash_lsn : Lsn.t;
  fr_injected : int;
  fr_detected : int;
  fr_repaired : int;
  fr_retries : int;
  fr_quarantined : int;
  fr_tail_truncated : bool;
  fr_consistent : bool;
  fr_loser_gone : bool;
  fr_state_agrees : bool;
  fr_asof_agrees : bool;
}

let fault_row_ok r =
  r.fr_consistent && r.fr_loser_gone && r.fr_state_agrees && r.fr_asof_agrees
  && r.fr_quarantined = 0

(* Full logical state of the database: every row of every TPC-C table. *)
let table_dump db =
  List.map
    (fun table ->
      let rows = ref [] in
      Database.scan db ~table ~f:(fun row -> rows := row :: !rows);
      (table, List.rev !rows))
    Tpcc.table_names

let straggler_key = 999_999L

(* One run of the property: load TPC-C under an active fault plan, commit
   [crash_after] transactions, leave one transaction in flight, crash at a
   fault-chosen point, recover, then verify against a fault-free oracle
   driven by the same seed:
   - cross-table invariants hold and the in-flight transaction is gone;
   - the current state agrees row-for-row with the oracle after the same
     number of committed transactions;
   - an as-of query at mid-history agrees row-for-row with the oracle's
     as-of query at its own mid-history time.

   With [instant] the restart uses instant recovery: the engine opens after
   analysis alone, and the straggler-gone plus a stock-level query are
   issued *during* the redo backlog (first-touch recovery serves them, with
   the fault plan still active); the backlog is then drained before the
   row-for-row oracle comparison. *)
let crash_repair_run ?(instant = false) ~seed ~crash_after ~rates () =
  let cfg = { Tpcc.small_config with Tpcc.seed } in
  let run_txns db drv clock n =
    let wall = Array.make (n + 1) (Sim_clock_.now_us clock) in
    for j = 1 to n do
      (* Media.ram prices no latency; explicit idle time keeps commit wall
         clocks distinct so as-of points are well defined. *)
      Sim_clock_.advance_us clock 1000.0;
      ignore (Tpcc.run_mix drv ~txns:1);
      wall.(j) <- Sim_clock_.now_us clock;
      ignore db
    done;
    wall
  in
  (* Faulted run. *)
  let clock = Sim_clock_.create () in
  let plan =
    Fault_plan.create ~torn_write_rate:rates.torn_write_rate ~bit_rot_rate:rates.bit_rot_rate
      ~transient_error_rate:rates.transient_error_rate
      ~torn_log_tail_rate:rates.torn_log_tail_rate ~seed ()
  in
  let db =
    Database.create ~name:"faulted" ~clock ~media:Media.ram ~pool_capacity:24 ~fpi_frequency:16
      ~checkpoint_interval_us:10_000.0 ~fault_plan:plan ()
  in
  Tpcc.load db cfg;
  let drv = Tpcc.create db cfg in
  let wall_f = run_txns db drv clock crash_after in
  (* A straggler left in flight: recovery must undo it. *)
  let straggler = Database.begin_txn db in
  Database.insert db straggler ~table:"item"
    [ Row.Int straggler_key; Row.Int 42L; Row.Text "inflight" ];
  let crash_lsn = Log_manager.end_lsn (Database.log db) in
  let db2 = Database.crash_and_reopen ~instant db in
  let tail_truncated =
    match Database.last_recovery_stats db2 with
    | Some s -> s.Rw_recovery.Recovery.tail_truncated <> None
    | None -> false
  in
  (* Instant mode: query while the redo backlog is outstanding — the
     straggler must already be invisible and a stock-level scan must return
     post-recovery values, both served by first-touch recovery. *)
  let mid_loser_gone =
    (not instant) || Database.get db2 ~table:"item" ~key:straggler_key = None
  in
  let mid_stock =
    if instant then Some (Tpcc.stock_level db2 cfg ~w:1 ~d:1 ~threshold:15) else None
  in
  (* Verification phase: stop injecting, finish any outstanding instant
     backlog, and scrub out residual damage, so raw-disk readers (the as-of
     snapshot path) see clean pages too. *)
  Disk.set_fault_plan (Database.disk db2) None;
  Database.recovery_drain_all db2;
  ignore (Database.scrub db2);
  let st = Io_stats.copy (Disk.stats (Database.disk db2)) in
  Io_stats.add st (Log_manager.stats (Database.log db2));
  (* Oracle run: identical workload, no faults. *)
  let oclock = Sim_clock_.create () in
  let odb =
    Database.create ~name:"oracle" ~clock:oclock ~media:Media.ram ~pool_capacity:24
      ~fpi_frequency:16 ~checkpoint_interval_us:10_000.0 ()
  in
  Tpcc.load odb cfg;
  let odrv = Tpcc.create odb cfg in
  let wall_o = run_txns odb odrv oclock crash_after in
  (* The properties. *)
  let consistent = Tpcc.consistency_check db2 cfg = Ok () in
  let loser_gone = mid_loser_gone && Database.get db2 ~table:"item" ~key:straggler_key = None in
  let state_agrees =
    table_dump db2 = table_dump odb
    && match mid_stock with
       | None -> true
       | Some sl -> sl = Tpcc.stock_level odb cfg ~w:1 ~d:1 ~threshold:15
  in
  let mid = max 1 (crash_after / 2) in
  let asof_agrees =
    let snap_f = Database.create_as_of_snapshot db2 ~name:"asof_f" ~wall_us:wall_f.(mid) in
    let snap_o = Database.create_as_of_snapshot odb ~name:"asof_o" ~wall_us:wall_o.(mid) in
    let sl db = Tpcc.stock_level db cfg ~w:1 ~d:1 ~threshold:15 in
    table_dump snap_f = table_dump snap_o && sl snap_f = sl snap_o
  in
  {
    fr_seed = seed;
    fr_crash_after = crash_after;
    fr_crash_lsn = crash_lsn;
    fr_injected = st.Io_stats.faults_injected;
    fr_detected = st.Io_stats.corruptions_detected;
    fr_repaired = st.Io_stats.pages_repaired;
    fr_retries = st.Io_stats.io_retries;
    fr_quarantined = List.length (Database.quarantined_pages db2);
    fr_tail_truncated = tail_truncated;
    fr_consistent = consistent;
    fr_loser_gone = loser_gone;
    fr_state_agrees = state_agrees;
    fr_asof_agrees = asof_agrees;
  }

let crash_repair_campaign ?(instant = false) ?(seeds = [ 11; 23; 47 ]) ?(crash_points = 4)
    ?(rates = default_fault_rates) ?(quick = false) () =
  let max_txns = if quick then 24 else 60 in
  List.concat_map
    (fun seed ->
      (* Crash points are drawn from the seed so every (seed, point) pair
         is reproducible but spread over the run. *)
      let rng = Prng.create (seed * 7919) in
      let seen = ref [] in
      List.init crash_points (fun _ ->
          (* Distinct points per seed (bounded retry keeps it total). *)
          let rec draw fuel =
            let c = Prng.int_in rng 5 max_txns in
            if fuel > 0 && List.mem c !seen then draw (fuel - 1) else c
          in
          let crash_after = draw 8 in
          seen := crash_after :: !seen;
          crash_repair_run ~instant ~seed ~crash_after ~rates ()))
    seeds

let print_fault_rows rows =
  Printf.printf "%6s %6s %10s %9s %9s %9s %8s %6s %5s %5s %6s %5s %4s\n" "seed" "txns"
    "crash_lsn" "injected" "detected" "repaired" "retries" "quarnt" "tail" "cons" "state" "asof"
    "ok";
  List.iter
    (fun r ->
      let b v = if v then "yes" else "NO" in
      Printf.printf "%6d %6d %10d %9d %9d %9d %8d %6d %5s %5s %6s %5s %4s\n" r.fr_seed
        r.fr_crash_after (Lsn.to_int r.fr_crash_lsn) r.fr_injected r.fr_detected r.fr_repaired
        r.fr_retries r.fr_quarantined
        (if r.fr_tail_truncated then "torn" else "-")
        (b r.fr_consistent)
        (b (r.fr_state_agrees && r.fr_loser_gone))
        (b r.fr_asof_agrees)
        (if fault_row_ok r then "ok" else "FAIL"))
    rows;
  let ok = List.length (List.filter fault_row_ok rows) in
  Printf.printf "%d/%d crash points passed\n%!" ok (List.length rows)

let faults ~quick () =
  header "Fault injection: crash-point repair campaign";
  Printf.printf
    "torn writes %.0f%%, bit rot %.1f%%, transient errors %.1f%%, torn log tail %.0f%%\n"
    (100.0 *. default_fault_rates.torn_write_rate)
    (100.0 *. default_fault_rates.bit_rot_rate)
    (100.0 *. default_fault_rates.transient_error_rate)
    (100.0 *. default_fault_rates.torn_log_tail_rate);
  print_fault_rows (crash_repair_campaign ~quick ())

(* --- E10: log-shipping replication soak --- *)

module Channel = Rw_repl.Channel
module Replica = Rw_repl.Replica
module Shipper = Rw_repl.Shipper
module Repl_failover = Rw_repl.Failover

type repl_scenario = Crash_mid_catchup | Sustained_lag | Partition_heal | Failover_rejoin

let repl_scenarios = [ Crash_mid_catchup; Sustained_lag; Partition_heal; Failover_rejoin ]

let repl_scenario_name = function
  | Crash_mid_catchup -> "crash"
  | Sustained_lag -> "lag"
  | Partition_heal -> "partition"
  | Failover_rejoin -> "failover"

type repl_row = {
  rr_seed : int;
  rr_scenario : repl_scenario;
  rr_txns : int;
  rr_shipped : int;
  rr_retries : int;
  rr_lag_max : int;
  rr_stressed : bool;
  rr_converged : bool;
  rr_state_agrees : bool;
  rr_pages_equal : bool;
  rr_asof_agrees : bool;
}

let repl_row_ok r =
  r.rr_stressed && r.rr_converged && r.rr_state_agrees && r.rr_pages_equal && r.rr_asof_agrees

(* Canonical-page byte equality of two engines' current states: an as-of
   view at each engine's own now, compared page-by-page in canonical form
   over the union of pages either side materialised. *)
let repl_pages_equal a b =
  let open_now db tag =
    Database.create_as_of_snapshot ~shared:false db ~name:(fresh_name tag)
      ~wall_us:(Sim_clock_.now_us (Database.clock db))
  in
  let va = open_now a "rp_a" and vb = open_now b "rp_b" in
  let sa = Option.get (Database.snapshot_handle va) in
  let sb = Option.get (Database.snapshot_handle vb) in
  let ids =
    As_of_snapshot.materialized_page_ids sa @ As_of_snapshot.materialized_page_ids sb
  in
  let ok =
    List.for_all
      (fun pid ->
        String.equal (As_of_snapshot.page_string sa pid) (As_of_snapshot.page_string sb pid))
      ids
  in
  As_of_snapshot.drop sa;
  As_of_snapshot.drop sb;
  ok

(* One scenario run against a fault-free single-node oracle driven by the
   same seed.  The primary+replica pair runs the scenario; the oracle runs
   the identical committed workload on one node.  Convergence is judged
   three ways: row-for-row state, canonical page bytes, and a mid-history
   as-of query at each engine's own recorded wall time. *)
let repl_soak_run ?(quick = false) ~seed ~scenario () =
  let txns = if quick then 48 else 120 in
  let mk tag =
    let eng = Engine.create ~media:Media.ram () in
    let db =
      Engine.create_database eng ~pool_capacity:1024 ~log_segment_bytes:16384 (fresh_name tag)
    in
    let cfg = { Tpcc.small_config with Tpcc.seed } in
    Tpcc.load db cfg;
    ignore (Database.checkpoint db);
    (db, cfg, Tpcc.create db cfg)
  in
  let db, cfg, drv = mk "repl_prim" in
  let odb, _ocfg, odrv = mk "repl_oracle" in
  let walls_p = ref [] and walls_o = ref [] in
  let run_txns db drv walls n =
    let clock = Database.clock db in
    for _ = 1 to n do
      (* Idle gaps keep commit wall clocks distinct for as-of points. *)
      Sim_clock_.advance_us clock 1000.0;
      ignore (Tpcc.run_mix drv ~txns:1);
      walls := Sim_clock_.now_us clock :: !walls
    done
  in
  let replica = Replica.of_primary ~name:(fresh_name "replica") db in
  let clock = Database.clock db in
  let lag_max = ref 0 in
  let observe sh = lag_max := max !lag_max (Shipper.lag_segments sh) in
  (* Oracle commits the same transactions up front; its wall points are its
     own (each engine's clock advances differently). *)
  run_txns odb odrv walls_o txns;
  let sh, stressed =
    match scenario with
    | Sustained_lag ->
        (* Faulty link pumped only once per traffic batch: the replica lags
           for the whole run and still converges at the end. *)
        let chan =
          Channel.create ~clock ~seed
            ~rates:{ Channel.drop = 0.2; duplicate = 0.1; delay = 0.3; partition = 0.0 }
            ()
        in
        let sh = Shipper.attach ~primary:db ~replica ~channel:chan ~max_retries:50 () in
        let batches = 8 in
        for _ = 1 to batches do
          run_txns db drv walls_p (txns / batches);
          ignore (Database.checkpoint db);
          observe sh;
          ignore (Shipper.step sh)
        done;
        run_txns db drv walls_p (txns mod batches);
        ignore (Database.checkpoint db);
        observe sh;
        Shipper.catch_up sh;
        (sh, !lag_max > 0 && Shipper.retries sh > 0)
    | Crash_mid_catchup ->
        let sh =
          Shipper.attach ~primary:db ~replica ~channel:(Channel.create ~clock ~seed ()) ()
        in
        run_txns db drv walls_p txns;
        ignore (Database.checkpoint db);
        let lag0 = Shipper.lag_segments sh in
        observe sh;
        while Shipper.lag_segments sh > max 1 (lag0 / 2) do
          ignore (Shipper.step sh)
        done;
        Replica.crash_and_reopen replica;
        let redo_only =
          match Database.last_recovery_stats (Replica.db replica) with
          | Some s -> s.Rw_recovery.Recovery.undone_ops = 0
          | None -> false
        in
        Shipper.catch_up sh;
        (sh, redo_only)
    | Partition_heal ->
        let chan = Channel.create ~clock ~seed () in
        let sh = Shipper.attach ~primary:db ~replica ~channel:chan ~max_retries:3 () in
        run_txns db drv walls_p (txns / 2);
        ignore (Database.checkpoint db);
        Channel.partition chan ~sends:100_000;
        Shipper.catch_up sh;
        let disconnected = Shipper.state sh = Shipper.Disconnected in
        run_txns db drv walls_p (txns - (txns / 2));
        ignore (Database.checkpoint db);
        observe sh;
        Channel.heal chan;
        Shipper.catch_up sh;
        (sh, disconnected)
    | Failover_rejoin ->
        let sh =
          Shipper.attach ~primary:db ~replica ~channel:(Channel.create ~clock ~seed ()) ()
        in
        run_txns db drv walls_p txns;
        ignore (Database.checkpoint db);
        Shipper.catch_up sh;
        (sh, true)
  in
  match scenario with
  | Failover_rejoin ->
      (* The primary commits a tail that never ships, then dies.  The
         promoted replica must serve exactly the shipped history; the
         demoted primary rejoins by truncating its divergent tail. *)
      let shipped = Shipper.shipped_segments sh and retries = Shipper.retries sh in
      let tail = ref [] in
      run_txns db drv tail 10;
      Shipper.detach sh;
      let new_primary, at = Repl_failover.promote replica in
      let rejoined = Repl_failover.rejoin ~name:(fresh_name "rejoin") ~at db in
      let sh2 =
        Shipper.attach ~primary:new_primary ~replica:rejoined ~channel:(Channel.create ~clock ())
          ()
      in
      Shipper.catch_up sh2;
      let state_agrees =
        table_dump new_primary = table_dump odb
        && table_dump (Replica.db rejoined) = table_dump odb
      in
      let pages_equal =
        repl_pages_equal new_primary odb
        && repl_pages_equal (Replica.db rejoined) new_primary
      in
      let asof_agrees =
        let wp = List.rev !walls_p and wo = List.rev !walls_o in
        let mid = List.length wp / 2 in
        let sp =
          Database.create_as_of_snapshot ~shared:false new_primary ~name:(fresh_name "rs_p")
            ~wall_us:(List.nth wp mid)
        in
        let so =
          Database.create_as_of_snapshot ~shared:false odb ~name:(fresh_name "rs_o")
            ~wall_us:(List.nth wo mid)
        in
        let sl v = Tpcc.stock_level v cfg ~w:1 ~d:1 ~threshold:15 in
        table_dump sp = table_dump so && sl sp = sl so
      in
      Shipper.detach sh2;
      {
        rr_seed = seed;
        rr_scenario = scenario;
        rr_txns = txns;
        rr_shipped = shipped + Shipper.shipped_segments sh2;
        rr_retries = retries;
        rr_lag_max = !lag_max;
        rr_stressed = stressed;
        rr_converged = Shipper.state sh2 = Shipper.Caught_up;
        rr_state_agrees = state_agrees;
        rr_pages_equal = pages_equal;
        rr_asof_agrees = asof_agrees;
      }
  | _ ->
      let rdb = Replica.db replica in
      let state_agrees = table_dump rdb = table_dump odb in
      let pages_equal = repl_pages_equal rdb odb in
      let asof_agrees =
        let wp = List.rev !walls_p and wo = List.rev !walls_o in
        let mid = List.length wp / 2 in
        let sp =
          Database.create_as_of_snapshot ~shared:false rdb ~name:(fresh_name "rs_r")
            ~wall_us:(List.nth wp mid)
        in
        let so =
          Database.create_as_of_snapshot ~shared:false odb ~name:(fresh_name "rs_o")
            ~wall_us:(List.nth wo mid)
        in
        let sl v = Tpcc.stock_level v cfg ~w:1 ~d:1 ~threshold:15 in
        table_dump sp = table_dump so && sl sp = sl so
      in
      let row =
        {
          rr_seed = seed;
          rr_scenario = scenario;
          rr_txns = txns;
          rr_shipped = Shipper.shipped_segments sh;
          rr_retries = Shipper.retries sh;
          rr_lag_max = !lag_max;
          rr_stressed = stressed;
          rr_converged = Shipper.state sh = Shipper.Caught_up;
          rr_state_agrees = state_agrees;
          rr_pages_equal = pages_equal;
          rr_asof_agrees = asof_agrees;
        }
      in
      Shipper.detach sh;
      row

let repl_soak_campaign ?(seeds = [ 11; 23; 47 ]) ?(quick = false) () =
  List.concat_map
    (fun seed ->
      List.map (fun scenario -> repl_soak_run ~quick ~seed ~scenario ()) repl_scenarios)
    seeds

let print_repl_rows rows =
  Printf.printf "%6s %-10s %6s %8s %8s %8s %8s %6s %6s %6s %5s %5s\n" "seed" "scenario" "txns"
    "shipped" "retries" "lag_max" "stress" "conv" "state" "pages" "asof" "ok";
  List.iter
    (fun r ->
      let b v = if v then "yes" else "NO" in
      Printf.printf "%6d %-10s %6d %8d %8d %8d %8s %6s %6s %6s %5s %5s\n" r.rr_seed
        (repl_scenario_name r.rr_scenario)
        r.rr_txns r.rr_shipped r.rr_retries r.rr_lag_max (b r.rr_stressed) (b r.rr_converged)
        (b r.rr_state_agrees) (b r.rr_pages_equal) (b r.rr_asof_agrees)
        (if repl_row_ok r then "ok" else "FAIL"))
    rows;
  let ok = List.length (List.filter repl_row_ok rows) in
  Printf.printf "%d/%d replication runs passed\n%!" ok (List.length rows)

(* The headline demo: a writer fleet on the primary with the shipper
   installed as the scheduler's background service — replica lag rises
   under bursts and drains between them, all on one deterministic clock. *)
let e10 ~quick () =
  header "E10: log-shipping replication — catch-up redo, faults, failover";
  let eng = Engine.create ~media:Media.ram () in
  let db = Engine.create_database eng ~pool_capacity:1024 ~log_segment_bytes:16384 "e10" in
  let cfg = { Tpcc.small_config with Tpcc.seed = 7 } in
  Tpcc.load db cfg;
  ignore (Database.checkpoint db);
  let drv = Tpcc.create db cfg in
  let replica = Replica.of_primary ~name:"e10_replica" db in
  let chan =
    Channel.create ~clock:(Database.clock db) ~seed:7
      ~rates:{ Channel.drop = 0.1; duplicate = 0.05; delay = 0.2; partition = 0.0 }
      ()
  in
  let sh = Shipper.attach ~primary:db ~replica ~channel:chan ~max_retries:50 () in
  let mgr = Session_manager.create db in
  for i = 1 to 3 do
    ignore
      (Session_manager.open_writer mgr
         ~name:(Printf.sprintf "writer%d" i)
         ~step:(fun d ->
           Sim_clock_.advance_us (Database.clock d) 500.0;
           ignore (Tpcc.run_mix drv ~txns:1)))
  done;
  Session_manager.set_service mgr (Some (fun () -> ignore (Shipper.step sh)));
  let rounds = if quick then 24 else 60 in
  Printf.printf "%8s %10s %12s %10s\n" "round" "lag_segs" "shipped" "retries";
  for r = 1 to rounds do
    Session_manager.run mgr ~rounds:1;
    if r mod 4 = 0 then ignore (Database.checkpoint db);
    if r mod (rounds / 6) = 0 then
      Printf.printf "%8d %10d %12d %10d\n" r (Shipper.lag_segments sh)
        (Shipper.shipped_segments sh) (Shipper.retries sh)
  done;
  ignore (Database.checkpoint db);
  Shipper.catch_up sh;
  (* Read the drained numbers before the byte-equality check: creating
     the comparison snapshots appends (and flushes) a checkpoint on the
     primary, which would show up as fresh lag. *)
  let lag = Shipper.lag_segments sh and shipped = Shipper.shipped_segments sh in
  let retries = Shipper.retries sh in
  let live_ok =
    Shipper.state sh = Shipper.Caught_up && repl_pages_equal db (Replica.db replica)
  in
  Printf.printf "after drain: lag %d, shipped %d, retries %d, replica byte-equal: %s\n" lag
    shipped retries
    (if live_ok then "yes" else "NO");
  Shipper.detach sh;
  Printf.printf "\nFault campaign (each scenario vs a fault-free single-node oracle):\n";
  let rows = repl_soak_campaign ~seeds:(if quick then [ 11; 23 ] else [ 11; 23; 47 ]) ~quick () in
  print_repl_rows rows;
  let ok = live_ok && List.for_all repl_row_ok rows in
  Printf.printf "e10 self-checks: %s\n%!" (if ok then "PASS" else "FAIL");
  if not ok then exit 1

(* --- EXPLAIN cost table: the paper's proportional-cost claim, per query --- *)

(* One stock-level query against snapshots increasingly far back in time.
   The per-query rewind cost comes from the snapshot's own tally (exactly
   what `rewind_cli \explain` reports): pages rewound stays at the query's
   footprint while the records undone and log bytes read grow with the
   distance travelled — cost proportional to data accessed and history
   rewound, never to database size. *)
let explain_costs ~quick () =
  let history_txns = if quick then 800 else 3000 in
  header "EXPLAIN: as-of stock-level query cost vs time back (paper §5 cost claim)";
  Printf.printf "%-10s %8s %10s %10s %10s %12s %12s\n" "back" "pages" "undone" "log recs"
    "side hits" "log KiB" "query (s)";
  List.iter
    (fun frac ->
      let s = build ~log_cache_blocks:16 ~log_block_bytes:16384 ~history_txns () in
      let target = s.t_run_end -. (frac *. (s.t_run_end -. s.t_run_start)) in
      let snap =
        Database.create_as_of_snapshot s.db ~name:(fresh_name "explain") ~wall_us:target
      in
      let handle = Option.get (Database.snapshot_handle snap) in
      let log_stats = Log_manager.stats (Database.log s.db) in
      let io0 = Io_stats.copy log_stats in
      let rewinds0 = As_of_snapshot.rewind_count handle in
      let side0 = As_of_snapshot.side_file_hits handle in
      let _, query_us =
        time_of s.eng (fun () -> Tpcc.stock_level snap s.cfg ~w:1 ~d:1 ~threshold:15)
      in
      let n = As_of_snapshot.rewind_count handle - rewinds0 in
      let recent = List.filteri (fun i _ -> i < n) (As_of_snapshot.rewinds handle) in
      let undone =
        List.fold_left (fun a r -> a + r.As_of_snapshot.rc_ops) 0 recent
      in
      let log_reads =
        List.fold_left (fun a r -> a + r.As_of_snapshot.rc_log_reads) 0 recent
      in
      let iod = Io_stats.diff log_stats io0 in
      let log_kib =
        float_of_int (iod.Io_stats.random_read_bytes + iod.Io_stats.seq_read_bytes) /. 1024.0
      in
      Printf.printf "%8.0f%% %8d %10d %10d %10d %12.1f %12.4f\n" (frac *. 100.0) n undone
        log_reads
        (As_of_snapshot.side_file_hits handle - side0)
        log_kib (seconds query_us))
    [ 0.2; 0.4; 0.6; 0.8 ];
  Printf.printf
    "(pages rewound tracks the query's footprint; undone records and log bytes grow\n\
    \ with time travelled — never with database size)\n\
     %!"

(* --- segmented log: bounded resident memory under retention --- *)

(* The tentpole claim of the segmented log manager, as a long-run table:
   with retention on, the log's modeled resident memory (active tail
   payload + per-segment index overhead, the [log.resident_bytes] gauge)
   plateaus, while the total appended volume grows linearly without
   bound.  The PASS line checks the plateau is flat to within two segment
   sizes over the second half of the run and that total appended bytes
   end at least 10x the plateau. *)
let segments_experiment ~quick () =
  header "segmented log: resident memory vs appended volume (TPC-C, retention on)";
  let seg_bytes = 128 * 1024 in
  let s = build ~media:Media.ssd ~log_segment_bytes:seg_bytes ~history_txns:0 () in
  (* TPC-C batches advance the simulated clock ~30 ms each; a 60 ms undo
     interval keeps roughly two batches of history live. *)
  Database.set_retention s.db (Some 60_000.0);
  let batches = if quick then 10 else 24 in
  let per_batch = if quick then 150 else 400 in
  let log = Database.log s.db in
  Printf.printf "%8s %8s %13s %13s %13s %6s %8s %8s\n" "txns" "sim_s" "appended_kib"
    "retained_kib" "resident_kib" "live" "spilled" "dropped";
  let samples = ref [] in
  for b = 1 to batches do
    ignore (Tpcc.run_mix s.drv ~txns:per_batch);
    (* Retention rides on checkpoints. *)
    ignore (Database.checkpoint s.db);
    let ss = Log_manager.segment_stats log in
    let resident = ss.Log_manager.ss_resident_bytes in
    if 2 * b > batches then samples := resident :: !samples;
    Printf.printf "%8d %8.2f %13d %13d %13d %6d %8d %8d\n%!" (b * per_batch)
      (seconds (Engine.now_us s.eng -. s.t_run_start))
      (Log_manager.total_appended_bytes log / 1024)
      (Log_manager.retained_bytes log / 1024)
      (resident / 1024) ss.Log_manager.ss_live ss.Log_manager.ss_spilled
      ss.Log_manager.ss_dropped
  done;
  let total = Log_manager.total_appended_bytes log in
  let plateau = List.fold_left max 0 !samples in
  let spread = plateau - List.fold_left min max_int !samples in
  Printf.printf "\nplateau (max resident, 2nd half): %d KiB  spread: %d KiB  segment: %d KiB\n"
    (plateau / 1024) (spread / 1024) (seg_bytes / 1024);
  Printf.printf "total appended: %d KiB = %.1fx plateau\n" (total / 1024)
    (float_of_int total /. float_of_int (max 1 plateau));
  Printf.printf "bounded-memory check (spread <= 2 segments && appended >= 10x plateau): %s\n%!"
    (if spread <= 2 * seg_bytes && total >= 10 * plateau then "PASS" else "FAIL")

(* --- E9 (instant restart): time-to-first-query vs log length ---

   One seeded TPC-C history per scale, replayed twice onto identical
   databases: one reopened with full-replay recovery, one with instant
   restart.  Full replay pays analysis + redo + undo before the first
   query; instant restart opens after analysis and serves queries during
   the backlog via first-touch recovery.  As the history grows ~10x the
   full-replay restart grows with it while instant time-to-first-query
   stays within 2x of bare analysis cost.

   Self-checks (exit 1 on any FAIL):
   - a backlog is actually outstanding when the instant engine opens, and
     the straggler-gone + stock-level queries issued during it agree with
     the fully recovered twin;
   - after draining, every table is row-for-row equal to the twin;
   - per scale, instant time-to-first-query <= 2x its analysis cost;
   - across scales, analysis scan grows >= 8x, full-replay restart grows
     >= 4x, and at the largest scale instant opens >= 3x faster than the
     full replay completes. *)
let e9_instant ~quick () =
  header "E9 (instant restart): time-to-first-query vs log length";
  let scales = if quick then [ 1; 4; 10 ] else [ 1; 2; 5; 10 ] in
  let base_txns = if quick then 60 else 250 in
  let failures = ref 0 in
  let check name ok = if not ok then (incr failures; Printf.printf "FAIL %s\n" name) in
  let mk name txns =
    let clock = Sim_clock.create () in
    (* A huge checkpoint interval pins the master record at the post-load
       checkpoint, so restart recovery spans the whole measured history.
       Data on SAS, log on SSD: analysis is a sequential log scan while
       redo/undo pay random data-page I/O, the regime instant restart is
       for. *)
    let db =
      Database.create ~name ~clock ~media:Media.sas ~log_media:Media.ssd ~pool_capacity:256
        ~fpi_frequency:16 ~checkpoint_interval_us:1e15 ()
    in
    let cfg = { Tpcc.small_config with Tpcc.seed = 5 } in
    Tpcc.load db cfg;
    ignore (Database.checkpoint db);
    let drv = Tpcc.create db cfg in
    ignore (Tpcc.run_mix drv ~txns);
    (* A straggler left in flight: both restarts must make it invisible. *)
    let straggler = Database.begin_txn db in
    Database.insert db straggler ~table:"item"
      [ Row.Int straggler_key; Row.Int 42L; Row.Text "inflight" ];
    Log_manager.flush_all (Database.log db);
    (db, cfg)
  in
  Printf.printf "%6s %8s %9s %12s %12s %12s %12s %8s %6s\n" "scale" "txns" "scanned"
    "full_ttfr_s" "analysis_s" "inst_ttfq_s" "inst_ttfr_s" "backlog" "check";
  let results =
    List.map
      (fun scale ->
        let txns = base_txns * scale in
        let fdb, cfg = mk (fresh_name "e9full") txns in
        let fdb2 = Database.crash_and_reopen fdb in
        let fstats = Option.get (Database.last_recovery_stats fdb2) in
        let idb, _ = mk (fresh_name "e9inst") txns in
        let idb2 = Database.crash_and_reopen ~instant:true idb in
        let istats = Option.get (Database.last_recovery_stats idb2) in
        let backlog0 = Database.recovery_backlog idb2 in
        (* Queries during the backlog, answered by first-touch recovery. *)
        let loser_gone = Database.get idb2 ~table:"item" ~key:straggler_key = None in
        let sl_i = Tpcc.stock_level idb2 cfg ~w:1 ~d:1 ~threshold:15 in
        let sl_f = Tpcc.stock_level fdb2 cfg ~w:1 ~d:1 ~threshold:15 in
        Database.recovery_drain_all idb2;
        let state_ok = table_dump idb2 = table_dump fdb2 in
        let scale_ok = backlog0 > 0 && loser_gone && sl_i = sl_f && state_ok in
        Printf.printf "%6d %8d %9d %12.4f %12.4f %12.4f %12.4f %8d %6s\n%!" scale txns
          fstats.Rw_recovery.Recovery.analysis.Rw_recovery.Recovery.records_scanned
          (seconds fstats.Rw_recovery.Recovery.time_to_full_recovery_us)
          (seconds istats.Rw_recovery.Recovery.analysis_us)
          (seconds istats.Rw_recovery.Recovery.time_to_first_query_us)
          (seconds istats.Rw_recovery.Recovery.time_to_full_recovery_us)
          backlog0
          (if scale_ok then "ok" else "FAIL");
        check (Printf.sprintf "scale %d: backlog/during-backlog/state" scale) scale_ok;
        (fstats, istats))
      scales
  in
  let first_f, first_i = List.hd results in
  let last_f, last_i = List.nth results (List.length results - 1) in
  let scanned s = float_of_int s.Rw_recovery.Recovery.analysis.Rw_recovery.Recovery.records_scanned in
  let scan_growth = scanned last_f /. scanned first_f in
  let full_growth =
    last_f.Rw_recovery.Recovery.time_to_full_recovery_us
    /. first_f.Rw_recovery.Recovery.time_to_full_recovery_us
  in
  let open_speedup =
    last_f.Rw_recovery.Recovery.time_to_full_recovery_us
    /. last_i.Rw_recovery.Recovery.time_to_first_query_us
  in
  ignore first_i;
  Printf.printf
    "\nlog scan grew %.1fx; full-replay restart grew %.1fx; at the largest scale the\n\
     instant engine opened %.1fx sooner than full replay finished\n"
    scan_growth full_growth open_speedup;
  check "scan growth >= 8x" (scan_growth >= 8.0);
  check "full-replay restart grows with the log (>= 3x)" (full_growth >= 3.0);
  (* The asymptotic claim: at the largest scale, time-to-first-query is
     within 2x of bare analysis (small scales carry the fixed cost of
     first-touching the boot/allocation pages at open). *)
  check "largest scale: ttfq <= 2x analysis"
    (last_i.Rw_recovery.Recovery.time_to_first_query_us
    <= 2.0 *. last_i.Rw_recovery.Recovery.analysis_us);
  check "instant opens >= 3x sooner at largest scale" (open_speedup >= 3.0);
  Printf.printf "e9 self-checks: %s\n%!" (if !failures = 0 then "PASS" else "FAIL");
  if !failures > 0 then exit 1

(* --- E11: what-if — selective transaction undo vs full-database rewind --- *)

module Schema = Rw_catalog.Schema
module Dep_graph = Rw_whatif.Dep_graph
module Selective = Rw_whatif.Selective

type whatif_scenario = Wf_chain | Wf_independent | Wf_mixed

let whatif_scenarios = [ Wf_chain; Wf_independent; Wf_mixed ]

let whatif_scenario_name = function
  | Wf_chain -> "chain"
  | Wf_independent -> "independent"
  | Wf_mixed -> "mixed"

let wf_table = "cells"
let wf_value_len = 600

(* Key stride between cells.  A leaf holds at most ~13 rows of
   [wf_value_len] bytes, so 17 consecutive keys can never share a page:
   page-level dependencies between history transactions equal cell
   sharing by construction. *)
let wf_cell_gap = 17

(* Blind writes: the value depends only on (seed, epoch, key), never on
   a read — the envelope in which logged-image replay equals
   re-execution (docs/WHATIF.md).  Fixed length keeps the page layout
   split-free through the history phase. *)
let wf_value ~seed ~epoch ~key =
  let head = Printf.sprintf "s%d.e%d.k%d." seed epoch key in
  head ^ String.make (wf_value_len - String.length head) 'x'

(* Cells history transaction [i] updates.  Chained transactions share a
   cell with their successor; private cells live past [chain_limit + 1]
   so they collide with nothing.  Bounding the chain is what lets e11
   grow history while the victim's dependent set stays fixed. *)
let wf_cells_of ~scenario ~chain_limit ~i =
  match scenario with
  | Wf_chain -> if i < chain_limit then [ i; i + 1 ] else [ chain_limit + 2 + i ]
  | Wf_independent -> [ chain_limit + 2 + i ]
  | Wf_mixed ->
      if i land 1 = 0 && i < chain_limit then [ i; i + 2 ] else [ chain_limit + 2 + i ]

let wf_build ?(media = Media.ram) ~seed ~cells () =
  let eng = Engine.create ~media () in
  let db = Engine.create_database eng ~pool_capacity:1024 (fresh_name "whatif") in
  Database.with_txn db (fun txn ->
      ignore
        (Database.create_table db txn ~table:wf_table
           ~columns:
             [
               { Schema.name = "k"; ctype = Schema.Int };
               { Schema.name = "v"; ctype = Schema.Text };
             ]
           ()));
  (* Setup rows, inserted in batches: every cell key plus the filler rows
     that keep cells on distinct leaves.  Splits (structural operations)
     are confined to this pre-history phase. *)
  let max_key = cells * wf_cell_gap in
  let k = ref 0 in
  while !k <= max_key do
    Database.with_txn db (fun txn ->
        let stop = min max_key (!k + 63) in
        while !k <= stop do
          Database.insert db txn ~table:wf_table
            [ Row.Int (Int64.of_int !k); Row.Text (wf_value ~seed ~epoch:0 ~key:!k) ];
          incr k
        done)
  done;
  ignore (Database.checkpoint db);
  (eng, db)

let wf_apply db ~seed ~epoch cells =
  Database.with_txn db (fun txn ->
      List.iter
        (fun c ->
          let key = c * wf_cell_gap in
          Database.update db txn ~table:wf_table
            [ Row.Int (Int64.of_int key); Row.Text (wf_value ~seed ~epoch ~key) ])
        cells)

(* The recorded deterministic history: one update transaction per epoch.
   With [skip] this is the replay-from-scratch oracle — the same history
   minus the victim.  Returns the post-commit wall time of each epoch. *)
let wf_run_history db ~seed ~scenario ~chain_limit ~history ~skip =
  let clock = Database.clock db in
  let walls = Array.make (max history 1) 0.0 in
  for i = 0 to history - 1 do
    Sim_clock_.advance_us clock 1000.0;
    if skip <> Some i then
      wf_apply db ~seed ~epoch:(i + 1) (wf_cells_of ~scenario ~chain_limit ~i);
    walls.(i) <- Sim_clock_.now_us clock
  done;
  walls

(* Summaries of just the history-phase transactions, in commit order:
   entry [i] is history transaction [i]. *)
let wf_history_txns log ~before =
  let all = Log_manager.txn_summaries log in
  Array.of_list (List.filteri (fun i _ -> i >= before) all)

let wf_dump db =
  let rows = ref [] in
  Database.scan db ~table:wf_table ~f:(fun r -> rows := r :: !rows);
  List.rev !rows

(* Canonical page equality with the page LSN masked: the repaired and
   oracle engines reach the same state through different log records, so
   their page LSNs legitimately differ. *)
let wf_mask s = String.sub s 8 (String.length s - 8)

let wf_pages_equal a b =
  let open_now db tag =
    Database.create_as_of_snapshot ~shared:false db ~name:(fresh_name tag)
      ~wall_us:(Sim_clock_.now_us (Database.clock db))
  in
  let va = open_now a "wfp_a" and vb = open_now b "wfp_b" in
  let sa = Option.get (Database.snapshot_handle va) in
  let sb = Option.get (Database.snapshot_handle vb) in
  let ids =
    As_of_snapshot.materialized_page_ids sa @ As_of_snapshot.materialized_page_ids sb
  in
  let ok =
    List.for_all
      (fun pid ->
        String.equal
          (wf_mask (As_of_snapshot.page_string sa pid))
          (wf_mask (As_of_snapshot.page_string sb pid)))
      ids
  in
  As_of_snapshot.drop sa;
  As_of_snapshot.drop sb;
  ok

type whatif_row = {
  wr_seed : int;
  wr_scenario : whatif_scenario;
  wr_history : int;
  wr_closure : int;
  wr_replayed : int;
  wr_pages : int;
  wr_ops_replayed : int;
  wr_from_index : bool;
  wr_scope_exact : bool;
  wr_view_agrees : bool;
  wr_repaired : bool;
  wr_state_agrees : bool;
  wr_pages_equal : bool;
  wr_asof_agrees : bool;
}

let whatif_row_ok r =
  r.wr_from_index && r.wr_scope_exact && r.wr_view_agrees && r.wr_repaired
  && r.wr_state_agrees && r.wr_pages_equal && r.wr_asof_agrees

let whatif_soak_run ?(quick = false) ~seed ~scenario () =
  let history = if quick then 20 else 40 in
  let chain_limit = history in
  let cells = (2 * history) + 4 in
  let eng, db = wf_build ~seed ~cells () in
  let log = Database.log db in
  let before = List.length (Log_manager.txn_summaries log) in
  let walls = wf_run_history db ~seed ~scenario ~chain_limit ~history ~skip:None in
  let hist = wf_history_txns log ~before in
  let victim_i =
    let v = (history / 3) + (seed mod 5) in
    match scenario with Wf_mixed -> v land lnot 1 | _ -> v
  in
  let victim = hist.(victim_i).Log_manager.ts_txn in
  let graph = Dep_graph.build ~log in
  let from_index = Dep_graph.built_from_index graph in
  (* The dependent set each scenario is constructed to produce. *)
  let expected_replayed =
    match scenario with
    | Wf_independent -> 0
    | Wf_chain -> history - 1 - victim_i
    | Wf_mixed -> ((history - 1) / 2) - (victim_i / 2)
  in
  (* Oracle: replay the recorded history minus the victim from scratch. *)
  let _oeng, odb = wf_build ~seed ~cells () in
  let owalls = wf_run_history odb ~seed ~scenario ~chain_limit ~history ~skip:(Some victim_i) in
  let oracle_dump = wf_dump odb in
  (* What-if view first: a read-only preview over the unrepaired state. *)
  let view_agrees, closure, replayed =
    match Selective.what_if_view ~engine:eng ~db ~graph ~victim ~name:(fresh_name "wfv") () with
    | Ok (view, st) ->
        (wf_dump view = oracle_dump, st.Selective.closure_size, st.Selective.replayed_txns)
    | Error _ -> (false, 0, 0)
  in
  (* In-place repair, then the three-way agreement with the oracle. *)
  let repaired, pages, ops_replayed =
    match
      Selective.repair ~ctx:(Database.ctx db) ~log ~graph ~victim
        ~wall_us:(Database.now_us db) ()
    with
    | Ok st -> (true, st.Selective.pages_rewound, st.Selective.ops_replayed)
    | Error _ -> (false, 0, 0)
  in
  let state_agrees = repaired && wf_dump db = oracle_dump in
  let pages_equal = repaired && wf_pages_equal db odb in
  (* Point-in-time queries of the pre-repair history survive the repair:
     an as-of just before the victim committed agrees with the oracle's
     state at its matching point. *)
  let asof_agrees =
    repaired && victim_i > 0
    &&
    let v =
      Database.create_as_of_snapshot ~shared:false db ~name:(fresh_name "wf_asof")
        ~wall_us:walls.(victim_i - 1)
    in
    let ov =
      Database.create_as_of_snapshot ~shared:false odb ~name:(fresh_name "wf_oasof")
        ~wall_us:owalls.(victim_i - 1)
    in
    let ok = wf_dump v = wf_dump ov in
    (match Database.snapshot_handle v with Some s -> As_of_snapshot.drop s | None -> ());
    (match Database.snapshot_handle ov with Some s -> As_of_snapshot.drop s | None -> ());
    ok
  in
  {
    wr_seed = seed;
    wr_scenario = scenario;
    wr_history = history;
    wr_closure = closure;
    wr_replayed = replayed;
    wr_pages = pages;
    wr_ops_replayed = ops_replayed;
    wr_from_index = from_index;
    wr_scope_exact = replayed = expected_replayed;
    wr_view_agrees = view_agrees;
    wr_repaired = repaired;
    wr_state_agrees = state_agrees;
    wr_pages_equal = pages_equal;
    wr_asof_agrees = asof_agrees;
  }

let whatif_soak_campaign ?(seeds = [ 11; 23; 47 ]) ?(quick = false) () =
  List.concat_map
    (fun seed ->
      List.map (fun scenario -> whatif_soak_run ~quick ~seed ~scenario ()) whatif_scenarios)
    seeds

let print_whatif_rows rows =
  Printf.printf "%6s %-12s %8s %8s %8s %6s %6s %6s %5s %6s %6s %6s %5s\n" "seed" "scenario"
    "history" "closure" "replay" "pages" "index" "scope" "view" "state" "pages" "asof" "ok";
  List.iter
    (fun r ->
      let b v = if v then "yes" else "NO" in
      Printf.printf "%6d %-12s %8d %8d %8d %6d %6s %6s %5s %6s %6s %6s %5s\n" r.wr_seed
        (whatif_scenario_name r.wr_scenario)
        r.wr_history r.wr_closure r.wr_replayed r.wr_pages (b r.wr_from_index)
        (b r.wr_scope_exact) (b r.wr_view_agrees)
        (b (r.wr_repaired && r.wr_state_agrees))
        (b r.wr_pages_equal) (b r.wr_asof_agrees)
        (if whatif_row_ok r then "ok" else "FAIL"))
    rows;
  let ok = List.length (List.filter whatif_row_ok rows) in
  Printf.printf "%d/%d what-if runs passed\n%!" ok (List.length rows)

(* The headline figure: cost of removing one early transaction as the
   history after it grows.  The victim's chain is bounded, so selective
   replay touches a fixed dependent set; the full-database rewind
   baseline (same engine, All_successors scope) replays everything that
   committed after the victim and grows linearly with history.  Both
   paths are verified byte-equal against the replay-minus-t oracle. *)
let e11 ~quick () =
  header "E11: what-if — selective replay vs full-database rewind";
  let failures = ref 0 in
  let check name ok = if not ok then (incr failures; Printf.printf "FAIL %s\n" name) in
  let seed = 11 in
  let chain_limit = 8 in
  let victim_i = 2 in
  let histories = if quick then [ 12; 24; 48 ] else [ 16; 32; 64; 128 ] in
  Printf.printf "%8s | %8s %8s %9s %10s | %8s %8s %9s %10s | %5s\n" "history" "sel_txns"
    "sel_pages" "sel_ops" "sel_time_s" "full_txn" "full_pgs" "full_ops" "full_time_s" "ok";
  let results =
    List.map
      (fun history ->
        let cells = chain_limit + history + 4 in
        let run scope =
          let eng, db = wf_build ~media:Media.ssd ~seed ~cells () in
          let log = Database.log db in
          let before = List.length (Log_manager.txn_summaries log) in
          ignore (wf_run_history db ~seed ~scenario:Wf_chain ~chain_limit ~history ~skip:None);
          let hist = wf_history_txns log ~before in
          let victim = hist.(victim_i).Log_manager.ts_txn in
          let graph = Dep_graph.build ~log in
          let res, rtime =
            time_of eng (fun () ->
                Selective.repair ~ctx:(Database.ctx db) ~log ~graph ~victim ~scope
                  ~wall_us:(Database.now_us db) ())
          in
          match res with
          | Ok st -> (db, st, rtime)
          | Error cs ->
              List.iter
                (fun (c : Selective.conflict) -> Printf.printf "conflict: %s\n" c.reason)
                cs;
              check "repair refused" false;
              (db, { Selective.closure_size = 0; replayed_txns = 0; pages_rewound = 0;
                     ops_unwound = 0; ops_replayed = 0 }, rtime)
        in
        let _oeng, odb = wf_build ~media:Media.ssd ~seed ~cells () in
        ignore
          (wf_run_history odb ~seed ~scenario:Wf_chain ~chain_limit ~history
             ~skip:(Some victim_i));
        let oracle = wf_dump odb in
        let sdb, sstat, stime = run Selective.Dependents in
        let fdb, fstat, ftime = run Selective.All_successors in
        let sel_ok = wf_dump sdb = oracle && wf_pages_equal sdb odb in
        let full_ok = wf_dump fdb = oracle && wf_pages_equal fdb odb in
        check (Printf.sprintf "history %d: selective equals oracle" history) sel_ok;
        check (Printf.sprintf "history %d: full rewind equals oracle" history) full_ok;
        Printf.printf "%8d | %8d %8d %9d %10.4f | %8d %8d %9d %10.4f | %5s\n%!" history
          sstat.Selective.replayed_txns sstat.Selective.pages_rewound
          (sstat.Selective.ops_unwound + sstat.Selective.ops_replayed)
          (seconds stime) fstat.Selective.replayed_txns fstat.Selective.pages_rewound
          (fstat.Selective.ops_unwound + fstat.Selective.ops_replayed)
          (seconds ftime)
          (if sel_ok && full_ok then "ok" else "FAIL");
        (history, sstat, fstat))
      histories
  in
  let h0, s0, f0 = List.hd results in
  let hn, sn, fn = List.nth results (List.length results - 1) in
  let work (st : Selective.stats) = st.ops_unwound + st.ops_replayed in
  Printf.printf
    "\nhistory %d -> %d: selective work %d -> %d ops (dependent set fixed at %d txns);\n\
     full rewind work %d -> %d ops (closure %d -> %d txns)\n"
    h0 hn (work s0) (work sn) sn.Selective.replayed_txns (work f0) (work fn)
    f0.Selective.closure_size fn.Selective.closure_size;
  check "selective dependent set is fixed" (sn.Selective.replayed_txns = s0.Selective.replayed_txns);
  check "selective work does not grow with history" (work sn = work s0);
  check "full-rewind closure grows with history"
    (fn.Selective.closure_size - f0.Selective.closure_size = hn - h0);
  check "full-rewind work grows at least linearly" (work fn - work f0 >= hn - h0);
  Printf.printf "e11 self-checks: %s\n%!" (if !failures = 0 then "PASS" else "FAIL");
  if !failures > 0 then exit 1

(* --- E12: domain-parallel batched as-of preparation (shared pool) ---

   The staged gather/apply/publish pipeline behind
   [As_of_snapshot.materialize_batch] sweeps fan-out 1/2/4/8 over a
   growing snapshot page count at the cold-chain operating point (log on
   SSD behind a starved two-block cache, 4 KiB spilled segments): every
   page's chain gather re-faults cold blocks at real random-read cost,
   which is exactly the I/O the pipeline overlaps.  Elapsed is modeled
   (simulated-clock) time — each page's gather I/O is attributed to its
   round-robin partition and the clock credited down to the slowest
   partition — so the curve is the overlap model, independent of host
   cores.

   Self-checks (exit 1 on any FAIL):
   - at every scale and fan-out, each materialised page is byte-identical
     (canonical form) to the serial twin's — the publish-stage
     determinism contract, end to end;
   - every fan-out materialises the same page count;
   - at the largest scale, fan-out 4 beats serial by >= 2x in modeled
     time (the acceptance bar for the staged pipeline). *)
let e12 ~quick () =
  header "E12: domain-parallel batched as-of preparation (shared pool)";
  let row_scales = if quick then [ 400; 1200 ] else [ 400; 800; 1600; 3200 ] in
  let fanouts = [ 1; 2; 4; 8 ] in
  let failures = ref 0 in
  let check name ok = if not ok then (incr failures; Printf.printf "FAIL %s\n" name) in
  let build rows =
    let clock = Sim_clock.create () in
    let db =
      Database.create ~name:(fresh_name "e12") ~clock ~media:Media.ram ~log_media:Media.ssd
        ~pool_capacity:256 ~log_cache_blocks:2 ~log_block_bytes:256 ~log_segment_bytes:4096
        ~checkpoint_interval_us:1e15 ()
    in
    let cols =
      [ { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text } ]
    in
    let payload r i = Printf.sprintf "%04d-%06d-%s" r i (String.make 110 'x') in
    Database.with_txn db (fun txn ->
        ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
        for i = 1 to rows do
          Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload 0 i) ]
        done);
    ignore (Database.checkpoint db);
    let t_mid = Sim_clock.now_us clock in
    for r = 1 to 3 do
      Database.with_txn db (fun txn ->
          for j = 0 to rows - 1 do
            let i = (j * 37 mod rows) + 1 in
            Database.update db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (payload r i) ]
          done)
    done;
    Log_manager.flush_all (Database.log db);
    let disk = Database.disk db in
    let pages = ref [] in
    for i = Disk.page_count disk - 1 downto 0 do
      let pid = Page_id.of_int i in
      if Disk.has_page disk pid then pages := pid :: !pages
    done;
    (db, t_mid, !pages)
  in
  (* One batched materialization at a given fan-out on a fresh unshared
     snapshot: (modeled elapsed us, pages rewound, canonical images). *)
  let measure db t_mid pages fanout =
    Fun.protect
      ~finally:(fun () -> Domain_pool.set_fanout None)
      (fun () ->
        Domain_pool.set_fanout (Some fanout);
        let clock = Database.clock db in
        let view =
          Database.create_as_of_snapshot ~shared:false db ~name:(fresh_name "e12snap")
            ~wall_us:t_mid
        in
        let snap = Option.get (Database.snapshot_handle view) in
        let t0 = Sim_clock.now_us clock in
        let n = As_of_snapshot.materialize_batch snap pages in
        let dt = Sim_clock.now_us clock -. t0 in
        let images =
          List.map
            (fun pid -> (Page_id.to_int pid, As_of_snapshot.page_string snap pid))
            (As_of_snapshot.materialized_page_ids snap)
        in
        As_of_snapshot.drop snap;
        (dt, n, images))
  in
  Printf.printf "%6s %6s %12s %12s %12s %12s %9s %6s\n" "rows" "pages" "d=1 (s)" "d=2 (s)"
    "d=4 (s)" "d=8 (s)" "spd@4" "check";
  let last_speedup = ref 0.0 in
  List.iter
    (fun rows ->
      let db, t_mid, pages = build rows in
      let serial_us, serial_n, serial_images = measure db t_mid pages 1 in
      let results =
        List.map
          (fun d ->
            if d = 1 then (d, serial_us)
            else begin
              let dt, n, images = measure db t_mid pages d in
              let equal = images = serial_images in
              check (Printf.sprintf "rows %d fan-out %d: byte-equal to serial twin" rows d) equal;
              check (Printf.sprintf "rows %d fan-out %d: same page count" rows d) (n = serial_n);
              (d, dt)
            end)
          fanouts
      in
      let at d = List.assoc d results in
      let speedup = serial_us /. at 4 in
      last_speedup := speedup;
      Printf.printf "%6d %6d %12.4f %12.4f %12.4f %12.4f %8.2fx %6s\n%!" rows
        (List.length serial_images) (seconds (at 1)) (seconds (at 2)) (seconds (at 4))
        (seconds (at 8)) speedup
        (if !failures = 0 then "ok" else "FAIL"))
    row_scales;
  check "largest scale: fan-out 4 beats serial >= 2x (modeled)" (!last_speedup >= 2.0);
  Printf.printf "\ne12 self-checks: %s\n%!" (if !failures = 0 then "PASS" else "FAIL");
  if !failures > 0 then exit 1

let run ?(quick = false) = function
  | Fig5 -> fig56 ~quick ~show:`Space ()
  | Fig6 -> fig56 ~quick ~show:`Throughput ()
  | Fig7 -> fig_restore_vs_asof ~media:Media.ssd ~quick ~fig:7 ()
  | Fig8 -> fig_restore_vs_asof ~media:Media.sas ~quick ~fig:8 ()
  | Fig9 -> fig_create_vs_query ~media:Media.ssd ~quick ~fig:9 ()
  | Fig10 -> fig_create_vs_query ~media:Media.sas ~quick ~fig:10 ()
  | Fig11 -> fig11 ~quick ()
  | Sec6_3 -> sec6_3 ~quick ()
  | Sec6_4 -> sec6_4 ~quick ()
  | E8 -> e8 ~quick ()
  | E9 -> e9_instant ~quick ()
  | E10 -> e10 ~quick ()
  | E11 -> e11 ~quick ()
  | E12 -> e12 ~quick ()
  | Ablation ->
      ablation ~quick ();
      ablation_cow ~quick ()
  | Faults -> faults ~quick ()
  | Explain -> explain_costs ~quick ()
  | Segments -> segments_experiment ~quick ()

let run_all ?(quick = false) () = List.iter (run ~quick) all
