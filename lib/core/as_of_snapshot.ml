module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Sparse_file = Rw_storage.Sparse_file
module Slotted_page = Rw_storage.Slotted_page
module Sim_clock = Rw_storage.Sim_clock
module Media = Rw_storage.Media
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Recovery = Rw_recovery.Recovery
module Domain_pool = Rw_pool.Domain_pool
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

(* Cost accounting for EXPLAIN: every page rewound on behalf of this
   snapshot is recorded, so a bracketing reader (the SQL executor, the
   Experiments table) can attribute exact per-page work to one query by
   diffing [rewind_count]/[side_file_hits] around it. *)
type rewind_cost = { rc_page : Page_id.t; rc_ops : int; rc_log_reads : int; rc_fpi : bool }

type tally = {
  mutable t_side_hits : int;
  mutable t_rewinds : rewind_cost list; (* newest first *)
  mutable t_rewind_count : int;
}

type t = {
  name : string;
  split_lsn : Lsn.t;
  as_of_wall_us : float;
  sparse : Sparse_file.t;
  pool : Buffer_pool.t;
  log : Log_manager.t;
  primary_disk : Disk.t;
  clock : Sim_clock.t;
  creation_time_us : float;
  undo_time_us : float;
  in_flight_txns : int;
  undo_ops : int;
  tally : tally;
  shared : Prepared_cache.t option;
}

let name t = t.name
let split_lsn t = t.split_lsn
let as_of_wall_us t = t.as_of_wall_us
let pool t = t.pool
let creation_time_us t = t.creation_time_us
let undo_time_us t = t.undo_time_us
let in_flight_txns t = t.in_flight_txns
let undo_ops t = t.undo_ops
let pages_materialised t = Sparse_file.page_count t.sparse
let sparse_bytes t = Sparse_file.allocated_bytes t.sparse
let side_file_hits t = t.tally.t_side_hits
let rewind_count t = t.tally.t_rewind_count
let rewinds t = t.tally.t_rewinds

let drop t =
  Obs.gauge_add Probes.snapshots_live (-1.0);
  Sparse_file.drop t.sparse

let record_rewind tally pid (r : Page_undo.result) =
  tally.t_rewinds <-
    {
      rc_page = pid;
      rc_ops = r.Page_undo.ops_undone;
      rc_log_reads = r.Page_undo.log_records_read;
      rc_fpi = r.Page_undo.used_fpi;
    }
    :: tally.t_rewinds;
  tally.t_rewind_count <- tally.t_rewind_count + 1;
  Obs.incr Probes.snapshot_pages_materialized

let no_rewind = { Page_undo.ops_undone = 0; log_records_read = 0; used_fpi = false }

(* §5.3 read protocol, extended with the shared prepared-page cache: on a
   side-file miss, an exact cached image skips the rewind entirely and a
   newer cached image is delta-rewound over only the chain records between
   the two SplitLSNs.  Freshly rewound images are published back to the
   cache *before* any snapshot-local mutation (loser undo) touches them —
   the cache holds pure rewind results only. *)
let read_as_of ~tally ~shared ~sparse ~primary_disk ~log ~split pid =
  match Sparse_file.read sparse pid with
  | Some page ->
      tally.t_side_hits <- tally.t_side_hits + 1;
      Obs.incr Probes.snapshot_side_hits;
      page
  | None ->
      let finish page r =
        record_rewind tally pid r;
        Sparse_file.write sparse pid page;
        page
      in
      let cold () =
        let page = Disk.read_page primary_disk pid in
        let r = Page_undo.prepare_page_as_of ~log ~page ~as_of:split in
        (match shared with
        | Some cache -> Prepared_cache.add cache pid ~as_of:split page
        | None -> ());
        finish page r
      in
      (match shared with
      | None -> cold ()
      | Some cache -> (
          match Prepared_cache.find cache pid ~split with
          | Prepared_cache.Exact page -> finish page no_rewind
          | Prepared_cache.Newer page ->
              let r = Page_undo.prepare_page_as_of ~log ~page ~as_of:split in
              Prepared_cache.add cache pid ~as_of:split page;
              finish page r
          | Prepared_cache.Miss -> cold ()))

(* Batched materialization, staged across the shared domain pool:

   1. {e Gather} (coordinator, ascending page order): primary image read
      if the shared cache had nothing, then the page's raw chain plan —
      FPI peek, chain-index lookup, per-page prefetch and the block-cache
      fetch of the encoded records.  Every priced read and every shared
      cache happens here, on the calling domain, in an order independent
      of the fan-out.
   2. {e Apply} (workers, round-robin by index): decode the raw bytes and
      run the undo chain against the private page image — pure CPU over
      private state.
   3. {e Publish} (coordinator, ascending page order): probes, rewind
      tallies, Prepared_cache inserts, decoded-record cache feeding and
      side-file writes; plans the apply rejected rerun through the serial
      path on their untouched pages.

   Because gather and publish orders are fixed and workers touch nothing
   shared, results and counters are byte- and count-identical under any
   fan-out, including 1.  Fan-out changes modeled time only: each page's
   gather I/O is timed and attributed to its round-robin partition, and
   the clock is credited back down to the slowest partition's total —
   [fanout] independent streams finish when the slowest does. *)
let materialize_pages ~tally ~shared ~sparse ~primary_disk ~log ~split pids =
  let ts = if Trace.on () then Trace.now () else 0.0 in
  let clock = Disk.clock primary_disk in
  let todo =
    List.sort_uniq Page_id.compare pids
    |> List.filter (fun pid -> not (Sparse_file.mem sparse pid))
  in
  (* Shared-cache pass first: exact images go straight to the side file
     (no chain to plan), newer images enter the batch needing only their
     delta chains, and misses will read the primary image in the gather. *)
  let entering =
    List.filter_map
      (fun pid ->
        match shared with
        | None -> Some (pid, None)
        | Some cache -> (
            match Prepared_cache.find cache pid ~split with
            | Prepared_cache.Exact page ->
                record_rewind tally pid no_rewind;
                Sparse_file.write sparse pid page;
                None
            | Prepared_cache.Newer page -> Some (pid, Some page)
            | Prepared_cache.Miss -> Some (pid, None)))
      todo
  in
  let arr =
    Array.of_list
      (List.map
         (fun (pid, cached) ->
           let t0 = Sim_clock.now_us clock in
           let page =
             match cached with Some p -> p | None -> Disk.read_page primary_disk pid
           in
           let plan = Page_undo.plan_raw ~log ~page ~as_of:split in
           (page, plan, Sim_clock.now_us clock -. t0))
         entering)
  in
  let n = Array.length arr in
  let fanout = Domain_pool.effective_fanout n in
  let results = Array.make n None in
  if n > 0 then begin
    Domain_pool.run ~participants:fanout (fun w ->
        let i = ref w in
        while !i < n do
          let page, plan, _ = arr.(!i) in
          results.(!i) <- Page_undo.apply_raw ~page ~as_of:split plan;
          i := !i + fanout
        done);
    (* Overlap credit: the gather charged each partition's I/O serially;
       [fanout] concurrent streams finish when the slowest does. *)
    if fanout > 1 then begin
      let per = Array.make fanout 0.0 in
      Array.iteri (fun i (_, _, dt) -> per.(i mod fanout) <- per.(i mod fanout) +. dt) arr;
      let total = Array.fold_left ( +. ) 0.0 per in
      let slowest = Array.fold_left Float.max 0.0 per in
      Sim_clock.credit_us clock (total -. slowest)
    end
  end;
  Array.iteri
    (fun i (page, _, _) ->
      let pid = Page.id page in
      let r =
        match results.(i) with
        | Some (r, feeds) ->
            Array.iter
              (fun (lsn, record) -> Log_manager.feed_record_cache log lsn record)
              feeds;
            Obs.incr Probes.snapshot_parallel_pages;
            ignore (Page_undo.note pid r : Page_undo.result);
            r
        | None -> Page_undo.prepare_page_as_of ~log ~page ~as_of:split
      in
      record_rewind tally pid r;
      (match shared with
      | Some cache -> Prepared_cache.add cache pid ~as_of:split page
      | None -> ());
      Sparse_file.write sparse pid page)
    arr;
  if Trace.on () then
    Trace.complete ~cat:"snapshot" ~ts
      ~args:[ ("pages", Trace.Int (List.length todo)); ("fanout", Trace.Int fanout) ]
      "snapshot.materialize_batch";
  List.length todo

let materialize_batch t pids =
  materialize_pages ~tally:t.tally ~shared:t.shared ~sparse:t.sparse ~primary_disk:t.primary_disk
    ~log:t.log ~split:t.split_lsn pids

let create ~name ~wall_us ~log ~primary_pool ~primary_disk ~txns ~clock ~media
    ?(pool_capacity = 256) ?shared () =
  let t_start = Sim_clock.now_us clock in
  let trace_ts = if Trace.on () then Trace.now () else 0.0 in
  let tally = { t_side_hits = 0; t_rewinds = []; t_rewind_count = 0 } in
  (* 1. Wall-clock time -> SplitLSN. *)
  let split = Split_lsn.find ~log ~wall_us in
  let split_lsn = split.Split_lsn.split_lsn in
  (* 2. Force a checkpoint so every page with changes at or below the
     split is durable in the primary files — this is what lets the redo
     pass skip all page reads (§5.2). *)
  ignore
    (Recovery.checkpoint ~log ~pool:primary_pool ~txns ~wall_us:(Sim_clock.now_us clock)
       ~flush_pages:true ());
  let sparse = Sparse_file.create ~clock ~media () in
  (* 3. Analysis, bounded at the split: find in-flight transactions.  The
     redo pass performs no page I/O and is subsumed by this scan. *)
  let analysis_start =
    if Lsn.is_nil split.Split_lsn.base_checkpoint then Log_manager.first_lsn log
    else split.Split_lsn.base_checkpoint
  in
  let analysis = Recovery.analyze ~log ~start:analysis_start ~upto:split_lsn in
  (* Pages mutated by the loser-undo pass below: their side-file copies
     diverge from the pure rewind images, so the pool's zero-cost cache
     peek must never serve them from the shared cache. *)
  let undone = Hashtbl.create 16 in
  let source =
    {
      Buffer_pool.read =
        (fun pid -> read_as_of ~tally ~shared ~sparse ~primary_disk ~log ~split:split_lsn pid);
      Buffer_pool.write = (fun pid page -> Sparse_file.write sparse pid page);
      Buffer_pool.write_seq = None;
      Buffer_pool.read_cached =
        (match shared with
        | None -> None
        | Some cache ->
            Some
              (fun pid ->
                (* Pages already materialised stay side-file-served (§5.3):
                   the side file is the authority once a page has been
                   rewound (it may carry loser-undo edits), so the peek only
                   accelerates pages this snapshot never touched. *)
                if Hashtbl.mem undone (Page_id.to_int pid) || Sparse_file.mem sparse pid
                then None
                else Prepared_cache.find_exact cache pid ~split:split_lsn));
    }
  in
  let pool = Buffer_pool.create ~capacity:pool_capacity ~source () in
  let t_open = Sim_clock.now_us clock in
  (* 4. Logical undo of in-flight transactions, applied to the snapshot's
     sparse file only: the primary log sees no CLRs from a read-only
     snapshot. *)
  let in_flight = Hashtbl.length analysis.Recovery.losers in
  (* Batch-materialize the pages the losers touched (known from analysis)
     before the undo walk starts: their chains are fetched in one sorted
     pass instead of record-at-a-time as undo stumbles onto each page. *)
  ignore
    (materialize_pages ~tally ~shared ~sparse ~primary_disk ~log ~split:split_lsn
       (Recovery.loser_pages analysis));
  let apply pid f =
    Hashtbl.replace undone (Page_id.to_int pid) ();
    let page = read_as_of ~tally ~shared ~sparse ~primary_disk ~log ~split:split_lsn pid in
    (match f page with Some lsn -> Page.set_lsn page lsn | None -> ());
    Sparse_file.write sparse pid page
  in
  let undo_ops =
    Recovery.undo_losers ~log ~losers:analysis.Recovery.losers ~write_clr:false ~apply
  in
  let t_done = Sim_clock.now_us clock in
  Obs.incr Probes.snapshot_creates;
  Obs.gauge_add Probes.snapshots_live 1.0;
  if Trace.on () then
    Trace.complete ~cat:"snapshot" ~ts:trace_ts
      ~args:
        [
          ("split_lsn", Trace.Int (Lsn.to_int split_lsn));
          ("in_flight_txns", Trace.Int in_flight);
          ("undo_ops", Trace.Int undo_ops);
        ]
      "snapshot.create";
  {
    name;
    split_lsn;
    as_of_wall_us = wall_us;
    sparse;
    pool;
    log;
    primary_disk;
    clock;
    creation_time_us = t_open -. t_start;
    undo_time_us = t_done -. t_open;
    in_flight_txns = in_flight;
    undo_ops;
    tally;
    shared;
  }

let shared_cache t = t.shared
let materialized_page_ids t = Sparse_file.page_ids t.sparse

(* Canonical image of the page's logical state.  Raw page bytes are NOT a
   function of logical content: slotted-page compaction is unlogged
   physical reorganisation, so two rewinds to the same SplitLSN that
   started from different primary states can differ in [data_low],
   [garbage], row placement and the flush-time checksum while holding
   identical rows.  The canonical form keeps exactly what the log
   determines — the logical header fields and every slot's row — and is
   therefore byte-equal across any two snapshots at the same SplitLSN. *)
let page_string t pid =
  let page =
    read_as_of ~tally:t.tally ~shared:t.shared ~sparse:t.sparse ~primary_disk:t.primary_disk
      ~log:t.log ~split:t.split_lsn pid
  in
  let b = Buffer.create Page.page_size in
  (* page_lsn, page_id, page_type, level, slot_count: offsets 0..19. *)
  Buffer.add_string b (Bytes.sub_string page 0 20);
  (* skip data_low/garbage (20..23); prev/next/special: offsets 24..47;
     skip checksum + reserved. *)
  Buffer.add_string b (Bytes.sub_string page 24 24);
  Slotted_page.iter page (fun i row ->
      Buffer.add_string b (Printf.sprintf "|%d:%d:" i (String.length row));
      Buffer.add_string b row);
  Buffer.contents b
