(** As-of database snapshots (paper §5).

    An as-of snapshot presents a transactionally consistent, read-only view
    of the database as of an arbitrary wall-clock time within the retention
    period.  Creation translates the time to a SplitLSN, forces a checkpoint
    so every page image at or before the split is durable, and runs a
    bounded analysis pass to find the transactions in flight at the split.
    The redo pass needs no page I/O at all (everything relevant was just
    flushed), so the snapshot opens as soon as analysis completes; the
    logical undo of in-flight transactions then runs "in the background"
    (here: immediately after open, with its simulated time accounted
    separately, matching how the paper reports creation time).

    Page reads follow §5.3: serve from the sparse side file if present,
    otherwise read the current page from the primary database, rewind it
    with {!Page_undo.prepare_page_as_of}, cache the result in the sparse
    file, and return it.  Previous versions are therefore produced only for
    pages a query actually touches. *)

type t

type rewind_cost = {
  rc_page : Rw_storage.Page_id.t;
  rc_ops : int;  (** row operations undone to rewind this page *)
  rc_log_reads : int;  (** log records read for this page's chain *)
  rc_fpi : bool;  (** whether a full-page-image jump-start was used *)
}
(** Cost of one on-demand page rewind, recorded per materialised page so a
    caller can attribute exact work to one query (see [EXPLAIN] in
    docs/OBSERVABILITY.md): bracket the query with {!rewind_count} and
    {!side_file_hits}, then take the new head of {!rewinds}. *)

val create :
  name:string ->
  wall_us:float ->
  log:Rw_wal.Log_manager.t ->
  primary_pool:Rw_buffer.Buffer_pool.t ->
  primary_disk:Rw_storage.Disk.t ->
  txns:Rw_txn.Txn_manager.t ->
  clock:Rw_storage.Sim_clock.t ->
  media:Rw_storage.Media.t ->
  ?pool_capacity:int ->
  ?shared:Prepared_cache.t ->
  unit ->
  t
(** Raises {!Split_lsn.Out_of_retention} when [wall_us] precedes the
    retained log.

    When [shared] is given, page rewinds consult and feed the shared
    prepared-page cache: an exact image for this snapshot's SplitLSN skips
    the chain walk entirely, a newer image is delta-rewound over only the
    intervening chain records, and every freshly rewound page is published
    back (before any loser undo mutates the side-file copy, so the cache
    only ever holds pure rewind results). *)

val name : t -> string
val split_lsn : t -> Rw_storage.Lsn.t
val as_of_wall_us : t -> float

val pool : t -> Rw_buffer.Buffer_pool.t
(** The snapshot's buffer pool; reads through it follow the §5.3 protocol.
    Access methods and the catalog run against this pool unchanged — the
    snapshot is transparent to everything above the file layer. *)

val creation_time_us : t -> float
(** Simulated time from creation start to snapshot open (split search +
    forced checkpoint + analysis; no redo page I/O). *)

val undo_time_us : t -> float
(** Simulated time of the in-flight-transaction undo pass. *)

val in_flight_txns : t -> int
(** Transactions that were active at the split and were rolled back in the
    snapshot view. *)

val undo_ops : t -> int

val materialize_batch : t -> Rw_storage.Page_id.t list -> int
(** Rewind the given pages into the sparse file in one batch, staged
    across the shared [Rw_pool.Domain_pool]: the coordinator gathers
    each page's primary image and raw chain records in ascending page
    order (every priced read, every shared cache), workers decode and
    apply the undo chains against private page images round-robin, and
    the coordinator publishes results — probes, rewind tallies,
    prepared-cache inserts, decoded-record cache feeding, side-file
    writes — in ascending page order.  Results and counters are byte-
    and count-identical under any pool fan-out, including 1; fan-out
    changes modeled elapsed time only (each page's gather I/O is
    attributed to its partition and the clock credited down to the
    slowest partition).  Pages already materialised are skipped; returns
    the number of pages actually rewound.  Warming is semantically
    transparent — subsequent reads return exactly what the §5.3 protocol
    would. *)

val pages_materialised : t -> int
(** Pages currently cached in the sparse file. *)

val materialized_page_ids : t -> Rw_storage.Page_id.t list
(** Ids of the pages currently materialised in the sparse side file. *)

val page_string : t -> Rw_storage.Page_id.t -> string
(** Canonical image of the page in this snapshot's view, materialising it
    through the §5.3 protocol if needed: the logical header fields plus
    every slot's row, excluding physical-layout artifacts ([data_low],
    [garbage], row placement, flush-time checksum) that unlogged
    slotted-page compaction makes path-dependent.  Two snapshots at the
    same SplitLSN must return identical strings for every page — the E8
    self-check and the interleaving tests compare exactly this. *)

val shared_cache : t -> Prepared_cache.t option
(** The shared prepared-page cache this snapshot reads through, if any. *)

val sparse_bytes : t -> int

val drop : t -> unit
(** Release the sparse side file (and the [snapshot.live] gauge slot). *)

(** {1 Rewind cost accounting} *)

val side_file_hits : t -> int
(** Snapshot reads served from the sparse side file since creation. *)

val rewind_count : t -> int
(** Pages rewound (on demand or batched) since creation.  Monotonic;
    equals [List.length (rewinds t)]. *)

val rewinds : t -> rewind_cost list
(** Per-page rewind costs, newest first.  The first
    [rewind_count t - before] elements are the pages rewound since a
    caller sampled [before = rewind_count t]. *)
