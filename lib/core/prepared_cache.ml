module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Log_manager = Rw_wal.Log_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

(* Shared prepared-page cache: pure chain-rewind page images keyed by
   (page, SplitLSN), shared between every snapshot of one database.

   Entries must stay *pure* rewind results — the image a page has after
   [Page_undo.prepare_page_as_of ~as_of] and nothing else.  In particular
   the logical loser-undo a snapshot applies while being created mutates
   its side-file copies afterwards; those mutated pages never enter this
   cache (the snapshot layer adds copies taken immediately after the
   rewind).  Purity is what makes entries shareable: rewinding is a
   deterministic function of (page history, as_of), so two snapshots at
   the same SplitLSN want byte-identical images, and a snapshot at an
   older SplitLSN can delta-extend a newer image by rewinding only the
   chain records in between (rewind composes: current -> s' -> s equals
   current -> s).

   Invalidation is epoch-based and lazy.  Ordinary appends never
   invalidate anything — history below a cached image's as_of is
   immutable.  Only two events void entries: retention truncation (the
   history a delta-extension might need is gone, and equality probes
   against a clamped chain index would lie) and crash (tail LSNs get
   recycled).  Both bump [Log_manager.invalidation_epoch]; lookups compare
   the entry's fill-time epoch and discard stale entries on sight. *)

type entry = {
  e_image : string; (* immutable page image — copied in, copied out *)
  e_as_of : Lsn.t;
  e_epoch : int;
  mutable e_tick : int; (* recency for eviction *)
}

type t = {
  log : Log_manager.t;
  capacity : int;
  table : (int, entry list ref) Hashtbl.t; (* page id -> entries, few per page *)
  mutable count : int;
  mutable tick : int;
  mutable hits : int; (* exact-image reuses *)
  mutable delta_hits : int; (* newer image delta-extended *)
  mutable misses : int;
  mutable invalidations : int; (* entries discarded on epoch mismatch *)
}

let create ?(capacity = 512) ~log () =
  {
    log;
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    count = 0;
    tick = 0;
    hits = 0;
    delta_hits = 0;
    misses = 0;
    invalidations = 0;
  }

let entries t = t.count
let hits t = t.hits
let delta_hits t = t.delta_hits
let misses t = t.misses
let invalidations t = t.invalidations

let hit_rate t =
  let total = t.hits + t.delta_hits + t.misses in
  if total = 0 then 0.0 else float_of_int (t.hits + t.delta_hits) /. float_of_int total

let page_of_entry e =
  let page = Bytes.of_string e.e_image in
  (page : Page.t)

(* Drop entries from older epochs for one page's list. *)
let prune t cell =
  let epoch = Log_manager.invalidation_epoch t.log in
  let keep, dead = List.partition (fun e -> e.e_epoch = epoch) !cell in
  if dead <> [] then begin
    t.count <- t.count - List.length dead;
    t.invalidations <- t.invalidations + List.length dead;
    cell := keep
  end

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* An entry at an *older* as_of serves a lookup at [split] exactly when
   the page provably has no chain records in (e_as_of, split] — then the
   two rewound images are the same bytes.  The probe is only trustworthy
   when the chain index still covers the range: chain_segment clamps at
   the retention boundary, so an e_as_of below first_lsn could return an
   empty segment for history that merely fell out of retention. *)
let equivalent t pid e ~split =
  Lsn.(e.e_as_of >= Log_manager.first_lsn t.log)
  && Array.length (Log_manager.chain_segment t.log pid ~from:split ~down_to:e.e_as_of) = 0

type outcome = Exact of Page.t | Newer of Page.t | Miss

let find_in t pid ~split cell =
  prune t cell;
  let exact = List.find_opt (fun e -> Lsn.equal e.e_as_of split) !cell in
  match exact with
  | Some e ->
      e.e_tick <- next_tick t;
      Some (`Exact e)
  | None -> (
      (* Older image whose bytes are provably identical at [split]. *)
      match List.find_opt (fun e -> Lsn.(e.e_as_of < split) && equivalent t pid e ~split) !cell with
      | Some e ->
          e.e_tick <- next_tick t;
          Some (`Exact e)
      | None ->
          (* Closest newer image: delta-rewind (split, e_as_of] only. *)
          List.fold_left
            (fun best e ->
              if Lsn.(e.e_as_of > split) then
                match best with
                | Some (`Newer b) when Lsn.(b.e_as_of <= e.e_as_of) -> best
                | _ -> Some (`Newer e)
              else best)
            None !cell)

let find t pid ~split =
  match Hashtbl.find_opt t.table (Page_id.to_int pid) with
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr Probes.snapshot_shared_misses;
      Miss
  | Some cell -> (
      match find_in t pid ~split cell with
      | Some (`Exact e) ->
          t.hits <- t.hits + 1;
          Obs.incr Probes.snapshot_shared_hits;
          Exact (page_of_entry e)
      | Some (`Newer e) ->
          t.delta_hits <- t.delta_hits + 1;
          Obs.incr Probes.snapshot_shared_hits;
          Newer (page_of_entry e)
      | None ->
          t.misses <- t.misses + 1;
          Obs.incr Probes.snapshot_shared_misses;
          Miss)

(* Zero-cost peek used by the snapshot buffer pool's re-fetch path: an
   exact image (same split, or provably identical older image) or
   nothing.  Deliberately silent — it neither counts a miss nor disturbs
   the probes when the pool simply falls through to the priced read. *)
let find_exact t pid ~split =
  match Hashtbl.find_opt t.table (Page_id.to_int pid) with
  | None -> None
  | Some cell -> (
      match find_in t pid ~split cell with
      | Some (`Exact e) ->
          t.hits <- t.hits + 1;
          Obs.incr Probes.snapshot_shared_hits;
          Some (page_of_entry e)
      | _ -> None)

(* Deterministic dump for the fan-out determinism tests: every live
   entry as (page, as_of, image), sorted.  Stale-epoch entries are
   pruned first, so two caches with identical histories compare equal
   regardless of when lookups last happened to prune them. *)
let contents t =
  let rows = ref [] in
  Hashtbl.iter
    (fun pid cell ->
      prune t cell;
      List.iter (fun e -> rows := (Page_id.of_int pid, e.e_as_of, e.e_image) :: !rows) !cell)
    t.table;
  List.sort compare !rows

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun pid cell ->
      List.iter
        (fun e ->
          match !victim with
          | Some (_, v) when v.e_tick <= e.e_tick -> ()
          | _ -> victim := Some (pid, e))
        !cell)
    t.table;
  match !victim with
  | None -> ()
  | Some (pid, v) ->
      let cell = Hashtbl.find t.table pid in
      cell := List.filter (fun e -> e != v) !cell;
      if !cell = [] then Hashtbl.remove t.table pid;
      t.count <- t.count - 1

let add t pid ~as_of page =
  let epoch = Log_manager.invalidation_epoch t.log in
  let key = Page_id.to_int pid in
  let cell =
    match Hashtbl.find_opt t.table key with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.table key c;
        c
  in
  prune t cell;
  if not (List.exists (fun e -> Lsn.equal e.e_as_of as_of) !cell) then begin
    let e =
      { e_image = Bytes.to_string page; e_as_of = as_of; e_epoch = epoch; e_tick = next_tick t }
    in
    cell := e :: !cell;
    t.count <- t.count + 1;
    if t.count > t.capacity then evict_oldest t
  end
