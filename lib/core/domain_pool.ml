(* A process-global pool of parked worker domains shared by every
   fan-out site in the engine (restart redo, replica catch-up, snapshot
   batch rewind, scrub).  [Domain.spawn] costs milliseconds on a loaded
   machine — more than an entire small restart — so spawning per batch
   would make parallel work slower than sequential.  Workers are spawned
   once, on first use, and parked on a condition variable between runs
   (an idle blocked domain does not prevent process exit); a
   wake/claim/report round-trip is a few microseconds.

   Each generation publishes one job closure and [parts - 1] participant
   indexes (the calling domain runs index 0 itself); every worker claims
   at most one index per generation, so [run] ensures at least
   [parts - 1] workers exist before publishing.

   Parked domains are not free: every minor GC is a stop-the-world
   rendezvous across all live domains, so an idle parked worker taxes
   every allocation-heavy loop on the coordinator (measured 5-200x on
   single-core hosts).  The pool therefore retires (joins) its workers
   whenever [set_fanout] shrinks the cap below the spawned count —
   restoring an override to [None] on a small host returns the process
   to a zero-spare-domain state — and respawns on next use. *)

module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

let m = Mutex.create ()
let work_ready = Condition.create ()
let work_done = Condition.create ()
let job : (int -> unit) option ref = ref None
let generation = ref 0
let next_part = ref 1
let parts = ref 0
let pending = ref 0
let failure = ref None
let spawned = ref 0
let retire = ref 0
let handles : unit Domain.t list ref = ref []

let worker () =
  let seen = ref 0 in
  let live = ref true in
  Mutex.lock m;
  while !live do
    while !generation = !seen && !retire = 0 do
      Condition.wait work_ready m
    done;
    if !retire > 0 then begin
      decr retire;
      live := false
    end
    else begin
      seen := !generation;
      (* A worker that wakes after every index is claimed just waits for
         the next generation. *)
      if !next_part < !parts then begin
        let idx = !next_part in
        incr next_part;
        let f = Option.get !job in
        Mutex.unlock m;
        (try f idx
         with e ->
           Mutex.lock m;
           if !failure = None then failure := Some e;
           Mutex.unlock m);
        Mutex.lock m;
        decr pending;
        if !pending = 0 then Condition.broadcast work_done
      end
    end
  done;
  Mutex.unlock m

let ensure_workers n =
  while !spawned < n do
    handles := Domain.spawn worker :: !handles;
    incr spawned
  done

(* Retire every parked worker and join its domain.  Must only be called
   between runs (the coordinator is single-threaded through [run], so
   [set_fanout] call sites satisfy this by construction). *)
let teardown_workers () =
  if !spawned > 0 then begin
    Mutex.lock m;
    retire := !spawned;
    Condition.broadcast work_ready;
    Mutex.unlock m;
    List.iter Domain.join !handles;
    handles := [];
    spawned := 0;
    retire := 0
  end

let spawned_workers () = !spawned

let run ~participants f =
  (* Pool probes are bumped on the calling domain only — the metrics
     registry is not domain-safe, which is also why jobs must confine
     their own shared-state mutations to the caller's index. *)
  Obs.add Probes.pool_tasks (max 1 participants);
  if participants <= 1 then f 0
  else begin
    Obs.add Probes.pool_wakes (participants - 1);
    ensure_workers (participants - 1);
    Mutex.lock m;
    job := Some f;
    parts := participants;
    next_part := 1;
    pending := participants - 1;
    failure := None;
    incr generation;
    Condition.broadcast work_ready;
    Mutex.unlock m;
    f 0;
    Mutex.lock m;
    while !pending > 0 do
      Condition.wait work_done m
    done;
    let fail = !failure in
    job := None;
    Mutex.unlock m;
    match fail with Some e -> raise e | None -> ()
  end

(* How many domains (including the caller) actually run concurrently.
   Work-split counts (redo partitions, batch page lists) are fixed by the
   caller — that is what determinism and the byte-equality contracts are
   stated over — but running more workers than cores is pure loss
   (domains timeslice one core and every minor GC pays a stop-the-world
   rendezvous across all of them), so the fan-out is capped at
   [Domain.recommended_domain_count], overridable for tests and
   experiments. *)
let fanout_override = ref None

let fanout_cap () =
  match !fanout_override with
  | Some c -> max 1 c
  | None -> Domain.recommended_domain_count ()

let set_fanout cap =
  fanout_override := cap;
  (* Shrinking the cap below the spawned count retires the excess —
     there is no per-worker shrink, the pool drops to zero and respawns
     up to the new cap on next use.  Parked domains tax every minor GC
     on the coordinator, so restoring [None] on a small host must leave
     no spare domains behind. *)
  if !spawned > fanout_cap () - 1 then teardown_workers ()

let effective_fanout work = max 1 (min work (fanout_cap ()))
