module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

exception Chain_broken of { page : Page_id.t; lsn : Lsn.t }

type result = { ops_undone : int; log_records_read : int; used_fpi : bool }

(* One completed rewind, whichever strategy produced it.  The fallback
   path is accounted once, inside the walk. *)
let note pid (r : result) =
  Obs.incr Probes.page_rewinds;
  Obs.add Probes.ops_undone r.ops_undone;
  Obs.observe Probes.chain_length (float_of_int r.log_records_read);
  if Trace.on () then
    Trace.instant ~cat:"undo"
      ~args:
        [
          ("page", Trace.Int (Page_id.to_int pid));
          ("ops", Trace.Int r.ops_undone);
          ("log_reads", Trace.Int r.log_records_read);
          ("fpi", Trace.Int (if r.used_fpi then 1 else 0));
        ]
      "undo.prepare_page";
  r

let read_chain_record log pid lsn =
  match Log_manager.read log lsn with
  | r -> r
  | exception Log_manager.No_such_record _ -> raise (Chain_broken { page = pid; lsn })

(* Jump-start: restore the earliest full page image logged after the
   target point, if one exists below the page's current position; the
   image embeds the page LSN it was taken at, so the walk resumes from
   there and the log region above the image is never visited. *)
let try_fpi_jump ~log ~page ~as_of ~reads =
  let pid = Page.id page in
  match Log_manager.earliest_fpi_after log pid ~after:as_of with
  | Some fpi_lsn when Lsn.(fpi_lsn < Page.lsn page) -> (
      incr reads;
      let r = read_chain_record log pid fpi_lsn in
      match Log_record.op_of r with
      | Some (Log_record.Full_image { image }) ->
          Bytes.blit_string image 0 page 0 Page.page_size;
          true
      | _ -> raise (Chain_broken { page = pid; lsn = fpi_lsn }))
  | _ -> false

let prepare_page_as_of_walk ~log ~page ~as_of =
  let pid = Page.id page in
  let reads = ref 0 in
  let used_fpi = try_fpi_jump ~log ~page ~as_of ~reads in
  let undone = ref 0 in
  let rec walk () =
    let curr = Page.lsn page in
    if Lsn.(curr > as_of) then begin
      incr reads;
      let r = read_chain_record log pid curr in
      match r.Log_record.body with
      | Log_record.Page_op { page = rpid; prev_page_lsn; op }
      | Log_record.Clr { page = rpid; prev_page_lsn; op; _ } ->
          if not (Page_id.equal rpid pid) then raise (Chain_broken { page = pid; lsn = curr });
          Log_record.undo op page;
          incr undone;
          Page.set_lsn page prev_page_lsn;
          walk ()
      | _ -> raise (Chain_broken { page = pid; lsn = curr })
    end
  in
  walk ();
  note pid { ops_undone = !undone; log_records_read = !reads; used_fpi }

(* Batched rewind: the chain index yields the page's whole backward chain
   in one lookup, so the records are fetched in ascending LSN order (block
   locality) instead of pointer-chasing backwards.  Every link is validated
   against the fetched headers before the page is mutated; any mismatch —
   stale index, corrupt chain — falls back to the pointer walk on the
   untouched page, which reproduces the walk's exact result and exception
   behaviour. *)
let prepare_page_as_of ~log ~page ~as_of =
  let pid = Page.id page in
  let reads = ref 0 in
  let used_fpi = try_fpi_jump ~log ~page ~as_of ~reads in
  let start = Page.lsn page in
  if Lsn.(start <= as_of) then
    note pid { ops_undone = 0; log_records_read = !reads; used_fpi }
  else begin
    let segment = Log_manager.chain_segment log pid ~from:start ~down_to:as_of in
    let n = Array.length segment in
    let fallback () =
      (* The index does not reach the page's position (e.g. the chain left
         the retention window) or a link failed validation: let the walk
         produce the right answer or the right exception on the untouched
         page. *)
      let w = prepare_page_as_of_walk ~log ~page ~as_of in
      { w with log_records_read = w.log_records_read + !reads; used_fpi }
    in
    if n = 0 || not (Lsn.equal segment.(n - 1) start) then fallback ()
    else
      match Log_manager.read_segment log segment with
      | exception Log_manager.No_such_record _ -> fallback ()
      | records ->
          reads := !reads + n;
          (* Validate linearity before touching the page: each record
             belongs to this page and points at the previous segment
             element; the oldest must point at or below [as_of]. *)
          let prev_of r =
            match r.Log_record.body with
            | Log_record.Page_op { page = rpid; prev_page_lsn; _ }
            | Log_record.Clr { page = rpid; prev_page_lsn; _ } ->
                if Page_id.equal rpid pid then Some prev_page_lsn else None
            | _ -> None
          in
          let valid = ref true in
          let i = ref 0 in
          while !valid && !i < n do
            (match prev_of records.(!i) with
            | Some prev ->
                let want = if !i = 0 then as_of else segment.(!i - 1) in
                if !i = 0 then valid := Lsn.(prev <= want)
                else valid := Lsn.equal prev want
            | None -> valid := false);
            incr i
          done;
          if not !valid then fallback ()
          else begin
            (* Newest record first, as the walk would apply them. *)
            for i = n - 1 downto 0 do
              match records.(i).Log_record.body with
              | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } ->
                  Log_record.undo op page
              | _ -> assert false
            done;
            (* The intermediate page LSNs the walk would stamp are all
               overwritten by the next undo's stamp; only the final one —
               the oldest record's back pointer — is observable. *)
            (match prev_of records.(0) with
            | Some prev -> Page.set_lsn page prev
            | None -> assert false);
            note pid { ops_undone = n; log_records_read = !reads; used_fpi }
          end
  end
