module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

exception Chain_broken of { page : Page_id.t; lsn : Lsn.t }

type result = { ops_undone : int; log_records_read : int; used_fpi : bool }

(* One completed rewind, whichever strategy produced it.  The fallback
   path is accounted once, inside the walk. *)
let note pid (r : result) =
  Obs.incr Probes.page_rewinds;
  Obs.add Probes.ops_undone r.ops_undone;
  Obs.observe Probes.chain_length (float_of_int r.log_records_read);
  if Trace.on () then
    Trace.instant ~cat:"undo"
      ~args:
        [
          ("page", Trace.Int (Page_id.to_int pid));
          ("ops", Trace.Int r.ops_undone);
          ("log_reads", Trace.Int r.log_records_read);
          ("fpi", Trace.Int (if r.used_fpi then 1 else 0));
        ]
      "undo.prepare_page";
  r

let read_chain_record log pid lsn =
  match Log_manager.read log lsn with
  | r -> r
  | exception Log_manager.No_such_record _ -> raise (Chain_broken { page = pid; lsn })

(* Jump-start: restore the earliest full page image logged after the
   target point, if one exists below the page's current position; the
   image embeds the page LSN it was taken at, so the walk resumes from
   there and the log region above the image is never visited. *)
let try_fpi_jump ~log ~page ~as_of ~reads =
  let pid = Page.id page in
  match Log_manager.earliest_fpi_after log pid ~after:as_of with
  | Some fpi_lsn when Lsn.(fpi_lsn < Page.lsn page) -> (
      incr reads;
      let r = read_chain_record log pid fpi_lsn in
      match Log_record.op_of r with
      | Some (Log_record.Full_image { image }) ->
          Bytes.blit_string image 0 page 0 Page.page_size;
          true
      | _ -> raise (Chain_broken { page = pid; lsn = fpi_lsn }))
  | _ -> false

let prepare_page_as_of_walk ~log ~page ~as_of =
  let pid = Page.id page in
  let reads = ref 0 in
  let used_fpi = try_fpi_jump ~log ~page ~as_of ~reads in
  let undone = ref 0 in
  let rec walk () =
    let curr = Page.lsn page in
    if Lsn.(curr > as_of) then begin
      incr reads;
      let r = read_chain_record log pid curr in
      match r.Log_record.body with
      | Log_record.Page_op { page = rpid; prev_page_lsn; op }
      | Log_record.Clr { page = rpid; prev_page_lsn; op; _ } ->
          if not (Page_id.equal rpid pid) then raise (Chain_broken { page = pid; lsn = curr });
          Log_record.undo op page;
          incr undone;
          Page.set_lsn page prev_page_lsn;
          walk ()
      | _ -> raise (Chain_broken { page = pid; lsn = curr })
    end
  in
  walk ();
  note pid { ops_undone = !undone; log_records_read = !reads; used_fpi }

(* ---------- staged rewind: gather / apply / publish ---------- *)

(* The batch pipeline splits a rewind into a coordinator-side gather
   (all priced I/O, all shared caches), a pure worker-side apply, and a
   coordinator-side publish.  The plan carries everything the apply
   needs as immutable raw bytes, so it can cross domains. *)
type raw_plan = {
  rp_fpi : (Lsn.t * string) option;  (* earliest-FPI record, encoded *)
  rp_start : Lsn.t;  (* chain top after the FPI jump (page LSN otherwise) *)
  rp_segment : Lsn.t array;  (* ascending chain LSNs in (as_of, rp_start] *)
  rp_records : string array;  (* encoded records parallel to [rp_segment] *)
  rp_reads : int;  (* log records fetched: segment + FPI *)
  rp_ok : bool;  (* gather succeeded; [false] forces the serial fallback *)
}

let plan_raw ~log ~page ~as_of =
  let pid = Page.id page in
  let top = Page.lsn page in
  let empty ok =
    { rp_fpi = None; rp_start = top; rp_segment = [||]; rp_records = [||]; rp_reads = 0; rp_ok = ok }
  in
  if Lsn.(top <= as_of) then empty true
  else
    match
      (* Mirror [prepare_page_as_of]: jump-start from the earliest full
         page image after the target, then the chain-index segment from
         the image's capture point ([prev_page_lsn]) down to [as_of]. *)
      let fpi_lsn =
        match Log_manager.earliest_fpi_after log pid ~after:as_of with
        | Some f when Lsn.(f < top) -> Some f
        | _ -> None
      in
      let start =
        match fpi_lsn with
        | Some f -> (Log_manager.peek_record log f).Log_record.p_prev_page_lsn
        | None -> top
      in
      let segment =
        if Lsn.(start <= as_of) then [||]
        else Log_manager.chain_segment log pid ~from:start ~down_to:as_of
      in
      let all =
        match fpi_lsn with Some f -> Array.append segment [| f |] | None -> segment
      in
      Log_manager.prefetch log (Array.to_list all);
      let raw = Log_manager.read_segment_raw log all in
      let n = Array.length segment in
      let rp_fpi =
        match fpi_lsn with Some f -> Some (f, raw.(Array.length raw - 1)) | None -> None
      in
      {
        rp_fpi;
        rp_start = start;
        rp_segment = segment;
        rp_records = (if fpi_lsn = None then raw else Array.sub raw 0 n);
        rp_reads = Array.length all;
        rp_ok = true;
      }
    with
    | plan -> plan
    | exception _ ->
        (* Gather failures (truncated chain, missing record) are not
           errors here: the publish stage reruns the page through the
           serial path, which produces the right answer or the right
           exception. *)
        empty false

let apply_raw ~page ~as_of plan =
  if not plan.rp_ok then None
  else
    match
      let n = Array.length plan.rp_segment in
      (* Decode and validate everything BEFORE mutating the page, so a
         rejected apply leaves it untouched for the serial fallback. *)
      let fpi =
        match plan.rp_fpi with
        | None -> None
        | Some (lsn, raw) -> (
            let r = Log_record.decode raw in
            match Log_record.op_of r with
            | Some (Log_record.Full_image { image }) -> Some (lsn, r, image)
            | _ -> raise Exit)
      in
      (* The authoritative resume point is the LSN embedded in the image
         (what the serial path reads after its blit); the plan's
         peek-derived [rp_start] built the segment, so a mismatch simply
         fails validation below. *)
      let start =
        match fpi with
        | Some (_, _, image) -> Page.lsn (Bytes.of_string image)
        | None -> Page.lsn page
      in
      let decoded = Array.map Log_record.decode plan.rp_records in
      let prev_of r =
        match r.Log_record.body with
        | Log_record.Page_op { page = rpid; prev_page_lsn; _ }
        | Log_record.Clr { page = rpid; prev_page_lsn; _ } ->
            if Page_id.equal rpid (Page.id page) then Some prev_page_lsn else None
        | _ -> None
      in
      let valid = ref true in
      if Lsn.(start <= as_of) then (if n > 0 then valid := false)
      else if n = 0 || not (Lsn.equal plan.rp_segment.(n - 1) start) then valid := false
      else begin
        let i = ref 0 in
        while !valid && !i < n do
          (match prev_of decoded.(!i) with
          | Some prev ->
              let want = if !i = 0 then as_of else plan.rp_segment.(!i - 1) in
              if !i = 0 then valid := Lsn.(prev <= want) else valid := Lsn.equal prev want
          | None -> valid := false);
          incr i
        done
      end;
      if not !valid then raise Exit;
      (match fpi with
      | Some (_, _, image) -> Bytes.blit_string image 0 page 0 Page.page_size
      | None -> ());
      for i = n - 1 downto 0 do
        match decoded.(i).Log_record.body with
        | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } -> Log_record.undo op page
        | _ -> assert false
      done;
      if n > 0 then (
        match prev_of decoded.(0) with
        | Some prev -> Page.set_lsn page prev
        | None -> assert false);
      let feeds =
        Array.init plan.rp_reads (fun i ->
            if i < n then (plan.rp_segment.(i), decoded.(i))
            else
              match fpi with Some (lsn, r, _) -> (lsn, r) | None -> assert false)
      in
      ( { ops_undone = n; log_records_read = plan.rp_reads; used_fpi = fpi <> None }, feeds )
    with
    | v -> Some v
    | exception _ -> None

(* Batched rewind: the chain index yields the page's whole backward chain
   in one lookup, so the records are fetched in ascending LSN order (block
   locality) instead of pointer-chasing backwards.  Every link is validated
   against the fetched headers before the page is mutated; any mismatch —
   stale index, corrupt chain — falls back to the pointer walk on the
   untouched page, which reproduces the walk's exact result and exception
   behaviour. *)
let prepare_page_as_of ~log ~page ~as_of =
  let pid = Page.id page in
  let reads = ref 0 in
  let used_fpi = try_fpi_jump ~log ~page ~as_of ~reads in
  let start = Page.lsn page in
  if Lsn.(start <= as_of) then
    note pid { ops_undone = 0; log_records_read = !reads; used_fpi }
  else begin
    let segment = Log_manager.chain_segment log pid ~from:start ~down_to:as_of in
    let n = Array.length segment in
    let fallback () =
      (* The index does not reach the page's position (e.g. the chain left
         the retention window) or a link failed validation: let the walk
         produce the right answer or the right exception on the untouched
         page. *)
      let w = prepare_page_as_of_walk ~log ~page ~as_of in
      { w with log_records_read = w.log_records_read + !reads; used_fpi }
    in
    if n = 0 || not (Lsn.equal segment.(n - 1) start) then fallback ()
    else
      match Log_manager.read_segment log segment with
      | exception Log_manager.No_such_record _ -> fallback ()
      | records ->
          reads := !reads + n;
          (* Validate linearity before touching the page: each record
             belongs to this page and points at the previous segment
             element; the oldest must point at or below [as_of]. *)
          let prev_of r =
            match r.Log_record.body with
            | Log_record.Page_op { page = rpid; prev_page_lsn; _ }
            | Log_record.Clr { page = rpid; prev_page_lsn; _ } ->
                if Page_id.equal rpid pid then Some prev_page_lsn else None
            | _ -> None
          in
          let valid = ref true in
          let i = ref 0 in
          while !valid && !i < n do
            (match prev_of records.(!i) with
            | Some prev ->
                let want = if !i = 0 then as_of else segment.(!i - 1) in
                if !i = 0 then valid := Lsn.(prev <= want)
                else valid := Lsn.equal prev want
            | None -> valid := false);
            incr i
          done;
          if not !valid then fallback ()
          else begin
            (* Newest record first, as the walk would apply them. *)
            for i = n - 1 downto 0 do
              match records.(i).Log_record.body with
              | Log_record.Page_op { op; _ } | Log_record.Clr { op; _ } ->
                  Log_record.undo op page
              | _ -> assert false
            done;
            (* The intermediate page LSNs the walk would stamp are all
               overwritten by the next undo's stamp; only the final one —
               the oldest record's back pointer — is observable. *)
            (match prev_of records.(0) with
            | Some prev -> Page.set_lsn page prev
            | None -> assert false);
            note pid { ops_undone = n; log_records_read = !reads; used_fpi }
          end
  end
