(** [PreparePageAsOf] — the paper's core primitive (§4).

    Rewinds a single page from its current content to its state as of an
    arbitrary LSN by walking the page's backward chain of log records
    ([prevPageLSN]) and applying each record's undo information.  Pages are
    rewound independently of one another, which is exactly what makes the
    cost of an as-of query proportional to the data it touches rather than
    to the size of the database.

    When the log contains full-page-image records for the page (emitted
    every Nth modification, §6.1), the walk jump-starts from the earliest
    image after the target LSN, skipping the log region above it. *)

exception Chain_broken of { page : Rw_storage.Page_id.t; lsn : Rw_storage.Lsn.t }
(** The record found on a page chain does not belong to that page — a
    corrupted chain. *)

type result = {
  ops_undone : int;  (** individual modifications undone *)
  log_records_read : int;  (** total log records fetched, FPI included *)
  used_fpi : bool;
}

val prepare_page_as_of :
  log:Rw_wal.Log_manager.t -> page:Rw_storage.Page.t -> as_of:Rw_storage.Lsn.t -> result
(** Rewind [page] in place so it reflects only log records with
    LSN <= [as_of].  A page whose LSN is already at or below [as_of] is
    untouched.  Raises {!Rw_wal.Log_manager.Log_truncated} when the chain
    leaves the retention window, {!Chain_broken} on corruption.

    The chain records are located through the log manager's per-page chain
    index and fetched in ascending LSN order; every backward link is
    validated against the fetched headers before the page is mutated, and
    any mismatch falls back to {!prepare_page_as_of_walk} on the untouched
    page — the two entry points are byte-identical in effect. *)

val prepare_page_as_of_walk :
  log:Rw_wal.Log_manager.t -> page:Rw_storage.Page.t -> as_of:Rw_storage.Lsn.t -> result
(** The record-at-a-time reference implementation: pointer-chases
    [prevPageLSN] backwards exactly as the paper describes.  Kept public as
    the oracle for regression tests and as the fallback path. *)

(** {2 Staged rewind (gather / apply / publish)}

    The parallel batch pipeline splits {!prepare_page_as_of} into a
    coordinator-side {!plan_raw} (every priced log read, every shared
    cache), a pure domain-safe {!apply_raw}, and a coordinator-side
    publish that calls {!note} and re-seeds the decoded-record cache
    with the returned decodes.  A plan that fails to gather or validate
    makes {!apply_raw} return [None] with the page untouched; rerunning
    the page through {!prepare_page_as_of} then reproduces the serial
    path's exact result or exception. *)

type raw_plan
(** Everything one page's apply needs, as immutable raw bytes — safe to
    hand to a worker domain. *)

val plan_raw :
  log:Rw_wal.Log_manager.t -> page:Rw_storage.Page.t -> as_of:Rw_storage.Lsn.t -> raw_plan
(** Gather the page's undo chain as encoded bytes: the FPI jump-start
    record (if one applies), then the chain-index segment down to
    [as_of], prefetched and fetched through the block cache with the
    same pricing as the serial path — but never touching the
    decoded-record cache (see {!Rw_wal.Log_manager.read_segment_raw}).
    Gather failures are folded into the plan, not raised. *)

val apply_raw :
  page:Rw_storage.Page.t ->
  as_of:Rw_storage.Lsn.t ->
  raw_plan ->
  (result * (Rw_storage.Lsn.t * Rw_wal.Log_record.t) array) option
(** Decode, validate and apply the plan against [page], in place.  Pure
    CPU over private state — no I/O, no caches, no probes — so it may
    run on any domain.  Validation happens entirely before the first
    mutation: [None] means the plan was rejected and [page] is
    untouched.  On success, returns the rewind {!result} plus every
    record decoded, for the publish stage to feed back into the
    decoded-record cache. *)

val note : Rw_storage.Page_id.t -> result -> result
(** Publish-stage accounting for a rewind performed via
    {!apply_raw}: bumps the [undo.*] probes and emits the trace instant
    exactly as the serial path does internally.  Returns its argument. *)
