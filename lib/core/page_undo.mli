(** [PreparePageAsOf] — the paper's core primitive (§4).

    Rewinds a single page from its current content to its state as of an
    arbitrary LSN by walking the page's backward chain of log records
    ([prevPageLSN]) and applying each record's undo information.  Pages are
    rewound independently of one another, which is exactly what makes the
    cost of an as-of query proportional to the data it touches rather than
    to the size of the database.

    When the log contains full-page-image records for the page (emitted
    every Nth modification, §6.1), the walk jump-starts from the earliest
    image after the target LSN, skipping the log region above it. *)

exception Chain_broken of { page : Rw_storage.Page_id.t; lsn : Rw_storage.Lsn.t }
(** The record found on a page chain does not belong to that page — a
    corrupted chain. *)

type result = {
  ops_undone : int;  (** individual modifications undone *)
  log_records_read : int;  (** total log records fetched, FPI included *)
  used_fpi : bool;
}

val prepare_page_as_of :
  log:Rw_wal.Log_manager.t -> page:Rw_storage.Page.t -> as_of:Rw_storage.Lsn.t -> result
(** Rewind [page] in place so it reflects only log records with
    LSN <= [as_of].  A page whose LSN is already at or below [as_of] is
    untouched.  Raises {!Rw_wal.Log_manager.Log_truncated} when the chain
    leaves the retention window, {!Chain_broken} on corruption.

    The chain records are located through the log manager's per-page chain
    index and fetched in ascending LSN order; every backward link is
    validated against the fetched headers before the page is mutated, and
    any mismatch falls back to {!prepare_page_as_of_walk} on the untouched
    page — the two entry points are byte-identical in effect. *)

val prepare_page_as_of_walk :
  log:Rw_wal.Log_manager.t -> page:Rw_storage.Page.t -> as_of:Rw_storage.Lsn.t -> result
(** The record-at-a-time reference implementation: pointer-chases
    [prevPageLSN] backwards exactly as the paper describes.  Kept public as
    the oracle for regression tests and as the fallback path. *)
