(** The process-wide worker-domain pool.

    Every fan-out site in the engine — restart recovery's
    partition-parallel redo, replica catch-up (which rides the same redo
    path), snapshot batch rewind and the scrub sweep — runs through this
    one pool, so there is exactly one spawn cost, one wake/claim
    protocol and one determinism contract in the process.

    Worker domains are spawned lazily on first use and parked on a
    condition variable between runs ([Domain.spawn] costs milliseconds;
    a wake costs microseconds).  Each {!run} publishes one job closure
    for a generation; parked workers claim participant indexes
    [1 .. participants - 1] while the calling domain runs index [0].

    {b Determinism contract.}  Callers fix their work {e split}
    (partition count, page list) independently of the fan-out; workers
    process split units round-robin by participant index, touch only
    private state (their own pages, their own result slots), and all
    shared-state effects — caches, probes, [Io_stats] — happen on the
    calling domain, either before the run (gather) or after it
    (publish).  Under that discipline any fan-out, including 1, yields
    byte-identical results; fan-out changes wall-clock only. *)

val run : participants:int -> (int -> unit) -> unit
(** [run ~participants f] executes [f 0] .. [f (participants - 1)]
    concurrently — [f 0] on the calling domain, the rest on parked
    workers — and returns once all have finished, re-raising the first
    worker exception after the barrier.  [participants <= 1] runs [f 0]
    inline without touching the pool.  Bumps [pool.tasks] by
    [participants] and [pool.wakes] by [participants - 1] (caller-side;
    the metrics registry is not domain-safe). *)

val set_fanout : int option -> unit
(** Override ([Some cap], clamped to at least 1) or restore
    ([None]) the pool's fan-out cap.  The cap bounds how many domains
    run concurrently; it never changes a caller's work split, so results
    are identical under any setting.  Tests and experiments use this to
    force serial or wide execution.

    Shrinking the cap below the spawned worker count retires (joins)
    every parked worker; the pool respawns up to the new cap on next
    use.  This matters because an idle parked domain is not free — every
    minor GC is a stop-the-world rendezvous across all live domains — so
    restoring an override to [None] on a small host returns the process
    to a zero-spare-domain state instead of leaving a permanent GC tax
    behind.  Only call between runs (never from inside a {!run} job). *)

val fanout_cap : unit -> int
(** The current cap: the {!set_fanout} override if any, else
    [Domain.recommended_domain_count ()]. *)

val effective_fanout : int -> int
(** [effective_fanout work] = [max 1 (min work (fanout_cap ()))] — the
    participant count a site should pass to {!run} for [work]
    independent units. *)

val spawned_workers : unit -> int
(** Worker domains spawned so far (parked between runs); introspection
    for the [\pool] meta-command. *)
