(** Log retention (paper §4.3: [ALTER DATABASE ... SET UNDO_INTERVAL]).

    Page-oriented undo needs the transaction log kept for as long as users
    may want to rewind.  Enforcement truncates the log below the newest
    checkpoint older than the retention window — keeping one extra
    checkpoint of slack so that transactions in flight at the boundary can
    still be analysed and undone. *)

type t

val create : ?retention_us:float -> unit -> t
(** No retention bound by default (keep everything). *)

val set_interval : t -> float option -> unit
val interval : t -> float option

val register_floor : t -> name:string -> (unit -> Rw_storage.Lsn.t option) -> unit
(** Install (or replace) a named truncation floor.  Each floor is polled at
    {!cutoff} time; the cut never rises above any floor that returns
    [Some lsn], so history a consumer still needs — e.g. sealed segments an
    attached replica has not yet shipped — survives aggressive retention.
    A floor returning [None] abstains. *)

val unregister_floor : t -> name:string -> unit
(** Remove a named floor (no-op if absent) — a detached replica no longer
    pins the log. *)

val cutoff : t -> log:Rw_wal.Log_manager.t -> now_us:float -> Rw_storage.Lsn.t option
(** The LSN below which the log is no longer needed, if any — the
    retention-window cut clamped by every registered floor. *)

val enforce : t -> log:Rw_wal.Log_manager.t -> now_us:float -> Rw_storage.Lsn.t option
(** Truncate and return the new lower boundary (or [None] if nothing could
    be truncated). *)
