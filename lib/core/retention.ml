module Lsn = Rw_storage.Lsn
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager

type t = {
  mutable retention_us : float option;
  mutable floors : (string * (unit -> Lsn.t option)) list;
      (* Named truncation floors (e.g. one per attached replica): the cut
         never rises above any floor, so sealed segments a live replica
         has not yet shipped survive aggressive retention. *)
}

let create ?retention_us () = { retention_us; floors = [] }
let set_interval t v = t.retention_us <- v
let interval t = t.retention_us

let register_floor t ~name f =
  t.floors <- (name, f) :: List.remove_assoc name t.floors

let unregister_floor t ~name = t.floors <- List.remove_assoc name t.floors

let floor_lsn t =
  List.fold_left
    (fun acc (_, f) ->
      match f () with
      | None -> acc
      | Some l -> ( match acc with None -> Some l | Some a -> Some (Lsn.min a l)))
    None t.floors

let checkpoint_wall log lsn =
  match (Log_manager.read_nocost log lsn).Log_record.body with
  | Log_record.Checkpoint { wall_us; _ } -> wall_us
  | _ -> invalid_arg "Retention: not a checkpoint record"

let cutoff t ~log ~now_us =
  match t.retention_us with
  | None -> None
  | Some retention ->
      let horizon = now_us -. retention in
      (* Checkpoints, newest first.  We need the newest checkpoint whose
         wall time is at or before the horizon — and we keep one more
         checkpoint of history below it so transactions spanning the
         boundary can still be rolled back. *)
      let rec go = function
        | newer :: older :: _ when checkpoint_wall log newer <= horizon -> Some older
        | _ :: rest -> go rest
        | [] -> None
      in
      let cut = go (Log_manager.checkpoints_before log (Log_manager.end_lsn log)) in
      match (cut, floor_lsn t) with
      | Some c, Some f -> Some (Lsn.min c f)
      | other, None -> other
      | None, Some _ -> None

let enforce t ~log ~now_us =
  match cutoff t ~log ~now_us with
  | Some lsn when Lsn.(lsn > Log_manager.first_lsn log) ->
      Log_manager.truncate_before log lsn;
      Some lsn
  | _ -> None
