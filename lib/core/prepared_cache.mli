(** Shared prepared-page cache (the E8 amortization).

    Caches {e pure} chain-rewind page images keyed by (page, SplitLSN) so
    that concurrent as-of snapshots at the same or nearby SplitLSNs share
    rewind work instead of each re-walking the whole chain
    (Lomet's observation that time-travel reads must amortize their redo
    work across consumers to be competitive).

    Reuse rules, in order of preference for a lookup at [split]:
    - an entry at exactly [split] — byte-identical, returned as {!Exact};
    - an entry at an {e older} as_of with provably no chain records in
      between (checked against the in-memory chain index, and only when
      the index still covers the range) — also {!Exact};
    - the closest entry at a {e newer} as_of — returned as {!Newer}; the
      caller delta-rewinds it down to [split], paying only for the chain
      records in (split, newer] instead of the full chain.

    Entries are stamped with {!Rw_wal.Log_manager.invalidation_epoch} at
    fill time and lazily discarded when the log's epoch moves on
    (retention truncation, crash).  Appends never invalidate: rewound
    history is immutable. *)

type t

val create : ?capacity:int -> log:Rw_wal.Log_manager.t -> unit -> t
(** [capacity] (default 512) bounds the entry count; least-recently-used
    entries are evicted beyond it. *)

type outcome =
  | Exact of Rw_storage.Page.t  (** image at exactly [split]; use as is *)
  | Newer of Rw_storage.Page.t
      (** image at a later as_of; delta-rewind it down to [split] *)
  | Miss

val find : t -> Rw_storage.Page_id.t -> split:Rw_storage.Lsn.t -> outcome
(** Look up a rewound image for the page at SplitLSN [split].  Returned
    pages are private copies — callers may mutate them freely.  Counts
    shared hits/misses (the [snapshot.shared_*] probes). *)

val find_exact :
  t -> Rw_storage.Page_id.t -> split:Rw_storage.Lsn.t -> Rw_storage.Page.t option
(** Exact-image peek for the snapshot pool's re-fetch path: [Some] only
    when a byte-identical image is available; never counts a miss. *)

val add : t -> Rw_storage.Page_id.t -> as_of:Rw_storage.Lsn.t -> Rw_storage.Page.t -> unit
(** Publish a freshly rewound {e pure} image (no snapshot-local mutations
    such as loser undo applied).  The page is copied in; duplicates of an
    existing (page, as_of) key are ignored. *)

(* Introspection for the CLI's \sessions display. *)
val entries : t -> int
val hits : t -> int
val delta_hits : t -> int
val misses : t -> int
val invalidations : t -> int

val hit_rate : t -> float
(** (exact + delta hits) / lookups, 0 when no lookups yet. *)

val contents : t -> (Rw_storage.Page_id.t * Rw_storage.Lsn.t * string) list
(** Every live entry as [(page, as_of, image bytes)], sorted — a
    deterministic dump for the fan-out determinism tests (two runs that
    behaved identically produce equal lists).  Stale-epoch entries are
    pruned before listing. *)
