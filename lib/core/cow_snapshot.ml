module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Sparse_file = Rw_storage.Sparse_file
module Sim_clock = Rw_storage.Sim_clock
module Buffer_pool = Rw_buffer.Buffer_pool
module Access_ctx = Rw_access.Access_ctx
module Txn_manager = Rw_txn.Txn_manager
module Recovery = Rw_recovery.Recovery

exception Active_transactions

type t = {
  name : string;
  created_at_lsn : Lsn.t;
  sparse : Sparse_file.t;
  pool : Buffer_pool.t;
  ctx : Access_ctx.t;
  hook : int;
  copied : (int, unit) Hashtbl.t;
  mutable dropped : bool;
}

let name t = t.name
let created_at_lsn t = t.created_at_lsn
let pool t = t.pool
let pages_copied t = Hashtbl.length t.copied
let copy_bytes t = Rw_storage.Sparse_file.allocated_bytes t.sparse

let create ~name ~ctx ~primary_pool ~primary_disk ~txns ~log ~clock ~media
    ?(pool_capacity = 256) () =
  if Txn_manager.active_txns txns <> [] then raise Active_transactions;
  (* Flush so that every unchanged page is readable from the primary
     files at its as-of-creation version. *)
  let created_at_lsn =
    Recovery.checkpoint ~log ~pool:primary_pool ~txns ~wall_us:(Sim_clock.now_us clock)
      ~flush_pages:true ()
  in
  let sparse = Sparse_file.create ~clock ~media () in
  let copied = Hashtbl.create 256 in
  (* The copy-on-write interception: the first time a page is about to be
     modified after creation, its prior image goes to the sparse file —
     unconditionally, whether or not any query will ever want it. *)
  let hook pid page =
    let key = Page_id.to_int pid in
    if not (Hashtbl.mem copied key) then begin
      Hashtbl.replace copied key ();
      Sparse_file.write sparse pid (Page.copy page)
    end
  in
  let hook = Access_ctx.add_pre_modify_hook ctx hook in
  let source =
    {
      Buffer_pool.read =
        (fun pid ->
          match Sparse_file.read sparse pid with
          | Some page -> page
          | None -> Disk.read_page primary_disk pid);
      Buffer_pool.write = (fun pid page -> Sparse_file.write sparse pid page);
      Buffer_pool.write_seq = None;
      Buffer_pool.read_cached = None;
    }
  in
  let pool = Buffer_pool.create ~capacity:pool_capacity ~source () in
  { name; created_at_lsn; sparse; pool; ctx; hook; copied; dropped = false }

let drop t =
  if not t.dropped then begin
    t.dropped <- true;
    Access_ctx.remove_pre_modify_hook t.ctx t.hook;
    Sparse_file.drop t.sparse
  end
