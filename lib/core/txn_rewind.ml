module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Slotted_page = Rw_storage.Slotted_page
module Txn_id = Rw_wal.Txn_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Access_ctx = Rw_access.Access_ctx
module Txn_manager = Rw_txn.Txn_manager

type candidate = {
  txn : Txn_id.t;
  last_lsn : Lsn.t;
  commit_wall_us : float option;
  page_ops : int;
}

let committed_transactions ~log ~since =
  let table : (int, candidate) Hashtbl.t = Hashtbl.create 64 in
  Log_manager.iter_range log ~from:since ~upto:(Log_manager.end_lsn log) (fun lsn r ->
      let txn = r.Log_record.txn in
      if not (Txn_id.is_nil txn) then begin
        let key = Txn_id.to_int txn in
        let prev =
          match Hashtbl.find_opt table key with
          | Some c -> c
          | None -> { txn; last_lsn = Lsn.nil; commit_wall_us = None; page_ops = 0 }
        in
        let c =
          match r.Log_record.body with
          | Log_record.Commit { wall_us } -> { prev with commit_wall_us = Some wall_us }
          | Log_record.Page_op _ ->
              { prev with last_lsn = lsn; page_ops = prev.page_ops + 1 }
          | Log_record.Clr _ ->
              (* A rolled-back (sub)chain: not a clean undo candidate. *)
              { prev with commit_wall_us = None; last_lsn = lsn }
          | _ -> prev
        in
        Hashtbl.replace table key c
      end);
  Hashtbl.fold (fun _ c acc -> if c.commit_wall_us <> None then c :: acc else acc) table []
  |> List.sort (fun a b -> Lsn.compare b.last_lsn a.last_lsn)

type conflict = { page : Page_id.t; lsn : Lsn.t; reason : string }

type outcome = Undone of { ops : int } | Conflicts of conflict list

(* The victim's page operations, newest first. *)
let collect_ops ~log victim =
  let rec walk lsn acc =
    if Lsn.is_nil lsn then acc
    else
      let r = Log_manager.read log lsn in
      match r.Log_record.body with
      | Log_record.Page_op { page; op; _ } ->
          walk r.Log_record.prev_txn_lsn ((lsn, page, op) :: acc)
      | Log_record.Begin -> acc
      | _ -> walk r.Log_record.prev_txn_lsn acc
  in
  List.rev (walk victim.last_lsn [])

(* Check that [op]'s after-state is still physically present on [p] (a
   scratch copy of the page, already rewound past the victim's later
   operations), so its inverse applies cleanly.  Conservative: any doubt
   is a conflict. *)
let check_op p lsn page op =
  let fail reason = Some { page; lsn; reason } in
  let current f = f p in
  match op with
  | Log_record.Insert_row { slot; row } ->
      current (fun p ->
          if slot >= Slotted_page.count p then fail "inserted slot no longer exists"
          else if Slotted_page.get p ~at:slot <> row then
            fail "inserted row was modified or moved since"
          else None)
  | Log_record.Update_row { slot; after; _ } ->
      current (fun p ->
          if slot >= Slotted_page.count p then fail "updated slot no longer exists"
          else if Slotted_page.get p ~at:slot <> after then
            fail "row was updated again since"
          else None)
  | Log_record.Delete_row { slot; row } ->
      current (fun p ->
          if slot > Slotted_page.count p then fail "page shrank since the delete"
          else if Slotted_page.free_space p < String.length row then
            fail "no space to reinstate the deleted row"
          else
            (* Reinstating at [slot] must preserve key order on sorted
               pages; verify the insertion point agrees. *)
            match Slotted_page.find_key p (Rw_access.Rowfmt.row_key row) with
            | Either.Left _ -> fail "key was reinserted since the delete"
            | Either.Right at when at <> slot -> fail "neighbouring rows changed since"
            | Either.Right _ -> None)
  | Log_record.Set_header { field; after; _ } ->
      current (fun p ->
          if Log_record.get_header p field <> after then fail "header changed since" else None)
  | Log_record.Format _ | Log_record.Preformat _ | Log_record.Full_image _ ->
      fail "structural page operation (allocation/split); use an as-of snapshot instead"

let undo_transaction ~ctx ~log ~victim ~wall_us =
  let ops = collect_ops ~log victim in
  (* Dry run newest-first on scratch copies of the affected pages: each
     operation is checked against the page as rewound past the victim's
     own later operations, then undone on the copy.  Nothing real is
     touched until every check passes. *)
  let copies : (int, Page.t) Hashtbl.t = Hashtbl.create 8 in
  let copy_of page =
    let key = Page_id.to_int page in
    match Hashtbl.find_opt copies key with
    | Some p -> p
    | None ->
        let p = Access_ctx.read ctx page (fun p -> Page.copy p) in
        Hashtbl.replace copies key p;
        p
  in
  let conflicts =
    List.filter_map
      (fun (lsn, page, op) ->
        let p = copy_of page in
        match check_op p lsn page op with
        | Some conflict -> Some conflict
        | None ->
            Log_record.undo op p;
            None)
      ops
  in
  if conflicts <> [] then Conflicts conflicts
  else begin
    let txns = Access_ctx.txns ctx in
    let txn = Txn_manager.begin_txn txns in
    let applied = ref 0 in
    List.iter
      (fun (_, page, op) ->
        match Log_record.invert op with
        | Some inverse ->
            Access_ctx.modify ctx txn page inverse;
            incr applied
        | None -> ())
      ops;
    (* Batched commit API: the compensation commit joins any pending batch
       and the explicit flush makes the whole batch durable before the
       rewind is reported done. *)
    ignore (Txn_manager.commit_begin txns txn ~wall_us);
    ignore (Txn_manager.flush_commits txns);
    Txn_manager.finished txns txn;
    Undone { ops = !applied }
  end
