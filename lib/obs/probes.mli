(** The engine's metric instruments, registered eagerly in one place.

    Every counter/gauge/histogram the engine updates lives here, in the
    {!Metrics.default} registry.  Centralising them (instead of
    registering at the top of each instrumented module) keeps the
    registry's name set independent of which modules a given executable
    happens to link: OCaml only links archive modules that are
    referenced, so scattered registration would make [Metrics.names]
    vary per binary.

    docs/OBSERVABILITY.md documents each metric; a test diffs that
    document against [Metrics.names ()] so the two cannot drift. *)

(** {1 WAL} *)

val log_appends : Metrics.counter
val log_append_bytes : Metrics.counter
val flush_batch_bytes : Metrics.histogram
val log_resident_bytes : Metrics.gauge
val log_segments_sealed : Metrics.counter
val log_segments_spilled : Metrics.counter
val log_segments_loaded : Metrics.counter
val log_segments_dropped : Metrics.counter

(** {1 Transactions} *)

val commits : Metrics.counter
val commit_latency_us : Metrics.histogram

(** {1 Buffer pool} *)

val fetch_hits : Metrics.counter
val fetch_misses : Metrics.counter
val evictions : Metrics.counter
val writebacks : Metrics.counter

(** {1 Page rewind (as-of reads)} *)

val page_rewinds : Metrics.counter
val ops_undone : Metrics.counter
val chain_length : Metrics.histogram

(** {1 Restart recovery} *)

val recovery_runs : Metrics.counter
val recovery_redone : Metrics.counter
val recovery_undone : Metrics.counter
val recovery_pages_on_demand : Metrics.counter
val recovery_redo_partitions : Metrics.counter
val recovery_backlog : Metrics.gauge

(** {1 Shared domain pool} *)

val pool_tasks : Metrics.counter
val pool_wakes : Metrics.counter

(** {1 As-of snapshots} *)

val snapshot_creates : Metrics.counter
val snapshot_pages_materialized : Metrics.counter
val snapshot_side_hits : Metrics.counter
val snapshots_live : Metrics.gauge
val snapshot_shared_hits : Metrics.counter
val snapshot_parallel_pages : Metrics.counter
val snapshot_shared_misses : Metrics.counter

(** {1 Sessions} *)

val sessions_live : Metrics.gauge

(** {1 What-if (selective transaction undo)} *)

val whatif_graph_builds : Metrics.counter
val whatif_graph_edges : Metrics.counter
val whatif_rewinds : Metrics.counter
val whatif_pages_rewound : Metrics.counter
val whatif_ops_replayed : Metrics.counter
val whatif_conflicts : Metrics.counter

(** {1 Replication} *)

val repl_segments_shipped : Metrics.counter
val repl_bytes_shipped : Metrics.counter
val repl_lag_segments : Metrics.gauge
val repl_retries : Metrics.counter
val repl_failovers : Metrics.counter
