(* Named metrics: counters, gauges and log-scale histograms.

   The registry generalises the flat [Io_stats] counter struct: an
   instrument is created once (at module initialisation time, so the name
   set is complete as soon as the program links) and updated from the hot
   paths with one or two memory writes.  Snapshots come out through a
   single [pp]/[to_json] path instead of one ad-hoc printer per subsystem. *)

let bucket_count = 64

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  buckets : int array; (* log2 buckets; see [bucket_index] *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type metric = { name : string; help : string; unit_ : string; inst : instrument }

type registry = { mutable metrics : metric list (* newest first *) }

let create () = { metrics = [] }
let default = create ()

let register registry name help unit_ inst =
  let registry = Option.value registry ~default in
  if List.exists (fun m -> m.name = name) registry.metrics then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %s" name);
  registry.metrics <- { name; help; unit_; inst } :: registry.metrics

let counter ?registry ?(unit_ = "count") ~help name =
  let c = { c_name = name; c_value = 0 } in
  register registry name help unit_ (Counter c);
  c

let gauge ?registry ?(unit_ = "value") ~help name =
  let g = { g_name = name; g_value = 0.0 } in
  register registry name help unit_ (Gauge g);
  g

let histogram ?registry ?(unit_ = "value") ~help name =
  let h =
    {
      h_name = name;
      buckets = Array.make bucket_count 0;
      h_count = 0;
      h_sum = 0.0;
      h_min = infinity;
      h_max = neg_infinity;
    }
  in
  register registry name help unit_ (Histogram h);
  h

(* --- updates (the hot path) --- *)

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value
let counter_name c = c.c_name

let set g v = g.g_value <- v
let gauge_add g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

(* Bucket 0 holds everything below 1 (including zero and, defensively,
   negative observations); bucket k >= 1 holds [2^(k-1), 2^k); the last
   bucket absorbs the unbounded tail. *)
let bucket_index v =
  if not (v >= 1.0) then 0
  else min (bucket_count - 1) (1 + int_of_float (Float.log2 v))

let bucket_lower_bound i = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 1))

let observe h v =
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_min h = h.h_min
let hist_max h = h.h_max
let hist_bucket h i = h.buckets.(i)
let hist_name h = h.h_name

(* --- snapshots --- *)

let metrics_of ?registry () =
  let registry = Option.value registry ~default in
  List.rev registry.metrics

let names ?registry () =
  List.map (fun m -> m.name) (metrics_of ?registry ()) |> List.sort compare

let reset ?registry () =
  List.iter
    (fun m ->
      match m.inst with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 bucket_count 0;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
    (metrics_of ?registry ())

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let pp ?registry fmt () =
  List.iter
    (fun m ->
      match m.inst with
      | Counter c -> Format.fprintf fmt "%-28s %12d %s@\n" m.name c.c_value m.unit_
      | Gauge g -> Format.fprintf fmt "%-28s %12s %s@\n" m.name (float_str g.g_value) m.unit_
      | Histogram h ->
          if h.h_count = 0 then Format.fprintf fmt "%-28s %12s %s@\n" m.name "-" m.unit_
          else
            Format.fprintf fmt "%-28s %12d obs: sum %s min %s max %s mean %s (%s)@\n" m.name
              h.h_count (float_str h.h_sum) (float_str h.h_min) (float_str h.h_max)
              (float_str (h.h_sum /. float_of_int h.h_count))
              m.unit_)
    (metrics_of ?registry ())

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_nan v || Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" (if Float.is_nan v then 0.0 else v)
  else Printf.sprintf "%.6g" v

let to_json ?registry () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let ms = metrics_of ?registry () in
  List.iteri
    (fun i m ->
      Buffer.add_string b (Printf.sprintf "  \"%s\": {" (json_escape m.name));
      Buffer.add_string b
        (Printf.sprintf "\"help\": \"%s\", \"unit\": \"%s\", " (json_escape m.help)
           (json_escape m.unit_));
      (match m.inst with
      | Counter c -> Buffer.add_string b (Printf.sprintf "\"type\": \"counter\", \"value\": %d" c.c_value)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "\"type\": \"gauge\", \"value\": %s" (json_float g.g_value))
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "\"type\": \"histogram\", \"count\": %d, \"sum\": %s" h.h_count
               (json_float h.h_sum));
          if h.h_count > 0 then
            Buffer.add_string b
              (Printf.sprintf ", \"min\": %s, \"max\": %s" (json_float h.h_min)
                 (json_float h.h_max));
          Buffer.add_string b ", \"buckets\": [";
          let first = ref true in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                if not !first then Buffer.add_string b ", ";
                first := false;
                Buffer.add_string b
                  (Printf.sprintf "[%s, %d]" (json_float (bucket_lower_bound i)) n)
              end)
            h.buckets;
          Buffer.add_string b "]");
      Buffer.add_string b "}";
      if i < List.length ms - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    ms;
  Buffer.add_string b "}\n";
  Buffer.contents b
