(** A bounded in-memory trace collector on the simulated clock.

    Instrumented code emits {e spans} (an operation with a start time and
    a duration, e.g. a flush batch or a recovery phase) and {e instants}
    (a point event, e.g. one page rewind).  Events go into a fixed-size
    ring buffer; when it fills, the oldest events are overwritten and
    {!dropped} counts the loss, so tracing a long run keeps the most
    recent window instead of growing without bound.

    The collector is disabled by default.  The cost of a disabled
    instrumentation point is a single load and branch; the hot-path idiom
    is:

    {[
      let ts = if Trace.on () then Trace.now () else 0.0 in
      (* ... the work ... *)
      if Trace.on () then Trace.complete ~cat:"wal" ~ts "log.flush_batch"
    ]}

    Timestamps come from an installed clock closure.
    {!Rw_engine.Engine.create} installs the engine's simulated clock, so
    span durations line up with the simulated I/O costs that dominate
    every experiment (and are deterministic across runs).

    {!to_chrome_json} exports the buffer in Chrome [trace_event] format,
    which {{:https://ui.perfetto.dev}Perfetto} and [chrome://tracing]
    open directly. *)

type arg = Int of int | Float of float | Str of string
(** Typed key/value payload attached to an event. *)

type phase = Span | Instant

type event = {
  name : string;
  cat : string;  (** category, e.g. ["wal"], ["buf"], ["recovery"] *)
  ph : phase;
  ts : float;  (** start timestamp, simulated µs *)
  dur : float;  (** duration, simulated µs; 0 for instants *)
  args : (string * arg) list;
}

val on : unit -> bool
(** Whether collection is enabled.  Check this before paying for
    timestamps or argument lists. *)

val enable : unit -> unit
val disable : unit -> unit

val configure : capacity:int -> unit -> unit
(** Replace the ring buffer with one of [capacity] events (discarding any
    collected events).  The default capacity is 65536. *)

val install_clock : (unit -> float) -> unit
(** Set the timestamp source (simulated µs).  Installed by
    [Engine.create]; defaults to a constant 0. *)

val now : unit -> float
(** Current timestamp from the installed clock. *)

val instant : ?args:(string * arg) list -> cat:string -> string -> unit
(** Record a point event.  No-op when disabled. *)

val complete : ?args:(string * arg) list -> cat:string -> ts:float -> string -> unit
(** [complete ~cat ~ts name] records a span that started at [ts] and ends
    now.  No-op when disabled. *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val clear : unit -> unit
(** Empty the buffer and reset the dropped counter. *)

val dropped : unit -> int
(** Events lost to ring-buffer overwrite since the last {!clear}. *)

val to_chrome_json : unit -> string
(** The buffer as a Chrome [trace_event] JSON document
    ([{"traceEvents": [...]}]). *)

val dump : path:string -> unit
(** Write {!to_chrome_json} to [path]. *)
