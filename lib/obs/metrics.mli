(** Named metrics: counters, gauges and log-scale histograms.

    The registry generalises the flat {!Rw_storage.Io_stats} counter
    struct.  An instrument is registered once — normally at module
    initialisation time in {!Probes}, so the name set is complete as soon
    as the program links — and updated from hot paths with one or two
    memory writes.  Snapshots come out of a single {!pp}/{!to_json} path
    instead of one ad-hoc printer per subsystem.

    The engine is single-threaded (everything runs on the simulated
    clock), so no synchronisation is performed. *)

type registry
(** A set of named instruments.  Most callers use {!default}. *)

type counter
(** A monotonically increasing integer. *)

type gauge
(** A float that can move both ways (e.g. live snapshot count). *)

type histogram
(** A log₂-bucketed distribution with count/sum/min/max. *)

val create : unit -> registry
(** A fresh, empty registry (used by tests; the engine uses {!default}). *)

val default : registry
(** The process-wide registry that all {!Probes} instruments live in. *)

(** {1 Registration}

    Each function registers the instrument under [name] and returns the
    handle used for updates.  Raises [Invalid_argument] if [name] is
    already taken in the registry. *)

val counter : ?registry:registry -> ?unit_:string -> help:string -> string -> counter
val gauge : ?registry:registry -> ?unit_:string -> help:string -> string -> gauge
val histogram : ?registry:registry -> ?unit_:string -> help:string -> string -> histogram

(** {1 Updates (hot path)} *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> float -> unit

val gauge_add : gauge -> float -> unit
(** [gauge_add g v] adds [v] (possibly negative) to the gauge. *)

val observe : histogram -> float -> unit
(** Record one observation; updates the bucket, count, sum, min and max. *)

(** {1 Reading back} *)

val counter_value : counter -> int
val counter_name : counter -> string
val gauge_value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float

val hist_bucket : histogram -> int -> int
(** [hist_bucket h i] is the number of observations in bucket [i]. *)

val hist_name : histogram -> string

val bucket_count : int
(** Number of histogram buckets (64). *)

val bucket_index : float -> int
(** [bucket_index v] maps an observation to its bucket: bucket 0 holds
    everything below 1 (including 0 and, defensively, negatives); bucket
    [k >= 1] holds [[2{^k-1}, 2{^k})]; the last bucket absorbs the tail. *)

val bucket_lower_bound : int -> float
(** Inclusive lower bound of bucket [i] (0 for bucket 0). *)

(** {1 Snapshots} *)

val names : ?registry:registry -> unit -> string list
(** All registered metric names, sorted. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every instrument (counters to 0, gauges to 0, histograms emptied). *)

val pp : ?registry:registry -> Format.formatter -> unit -> unit
(** Human-readable snapshot, one line per metric. *)

val to_json : ?registry:registry -> unit -> string
(** JSON snapshot: an object keyed by metric name; histograms include the
    non-empty buckets as [[lower_bound, count]] pairs. *)
