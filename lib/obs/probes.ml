(* The engine's metric instruments, registered eagerly in one place.

   Keeping every instrument here (rather than at the top of each
   instrumented module) matters for linking: OCaml only links archive
   modules that are referenced, so registration scattered across modules
   would run — and the name set would differ — depending on which
   executable is being built.  Any program that touches one probe sees
   the complete registry. *)

let counter = Metrics.counter
let gauge = Metrics.gauge
let histogram = Metrics.histogram

(* WAL *)

let log_appends =
  counter ~unit_:"records" ~help:"Log records appended" "log.appends"

let log_append_bytes =
  counter ~unit_:"bytes" ~help:"Encoded bytes appended to the log" "log.append_bytes"

let flush_batch_bytes =
  histogram ~unit_:"bytes" ~help:"Bytes written per physical log flush batch"
    "log.flush_batch_bytes"

let log_resident_bytes =
  gauge ~unit_:"bytes"
    ~help:"Modeled RAM held by the log: unspilled segment payloads plus per-segment index overhead"
    "log.resident_bytes"

let log_segments_sealed =
  counter ~unit_:"segments" ~help:"Log segments sealed (tail reached the segment size)"
    "log.segments_sealed"

let log_segments_spilled =
  counter ~unit_:"segments" ~help:"Sealed log segments spilled to media (payload left RAM)"
    "log.segments_spilled"

let log_segments_loaded =
  counter ~unit_:"blocks" ~help:"Cold block loads serving reads of spilled log segments"
    "log.segments_loaded"

let log_segments_dropped =
  counter ~unit_:"segments" ~help:"Whole log segments dropped by retention truncation"
    "log.segments_dropped"

(* Transactions *)

let commits = counter ~unit_:"txns" ~help:"Transactions committed durably" "txn.commits"

let commit_latency_us =
  histogram ~unit_:"us"
    ~help:"Simulated time from commit request to durability ack (group commit wait included)"
    "txn.commit_latency_us"

(* Buffer pool *)

let fetch_hits = counter ~unit_:"fetches" ~help:"Buffer-pool fetches served from memory" "buf.fetch_hits"
let fetch_misses = counter ~unit_:"fetches" ~help:"Buffer-pool fetches that read the source" "buf.fetch_misses"
let evictions = counter ~unit_:"pages" ~help:"Pages evicted from the buffer pool" "buf.evictions"
let writebacks = counter ~unit_:"pages" ~help:"Dirty pages written back to the source" "buf.writebacks"

(* Page rewind (as-of) *)

let page_rewinds =
  counter ~unit_:"pages" ~help:"prepare_page_as_of invocations (pages rewound)" "undo.page_rewinds"

let ops_undone =
  counter ~unit_:"ops" ~help:"Row operations undone while rewinding pages" "undo.ops_undone"

let chain_length =
  histogram ~unit_:"records" ~help:"Log records read per page rewind (chain walk length)"
    "undo.chain_length"

(* Recovery *)

let recovery_runs = counter ~unit_:"runs" ~help:"Restart recoveries performed" "recovery.runs"
let recovery_redone = counter ~unit_:"ops" ~help:"Operations replayed by the redo pass" "recovery.redone_ops"
let recovery_undone = counter ~unit_:"ops" ~help:"Loser operations rolled back by the undo pass" "recovery.undone_ops"

let recovery_pages_on_demand =
  counter ~unit_:"pages" ~help:"Backlog pages recovered on first touch during instant restart"
    "recovery.pages_on_demand"

let recovery_redo_partitions =
  counter ~unit_:"partitions" ~help:"Redo partitions executed by domain-parallel restart recovery"
    "recovery.redo_partitions"

let recovery_backlog =
  gauge ~unit_:"pages" ~help:"Pages still awaiting redo/undo after an instant restart"
    "recovery.backlog"

(* Domain pool *)

let pool_tasks =
  counter ~unit_:"tasks" ~help:"Participant slots executed by shared-pool runs (caller included)"
    "pool.tasks"

let pool_wakes =
  counter ~unit_:"wakes" ~help:"Parked worker domains woken by shared-pool runs"
    "pool.wakes"

(* As-of snapshots *)

let snapshot_creates = counter ~unit_:"snapshots" ~help:"As-of snapshots created" "snapshot.creates"

let snapshot_pages_materialized =
  counter ~unit_:"pages" ~help:"Past page versions materialised into side files"
    "snapshot.pages_materialized"

let snapshot_side_hits =
  counter ~unit_:"reads" ~help:"Snapshot reads served from the sparse side file"
    "snapshot.side_file_hits"

let snapshots_live =
  gauge ~unit_:"snapshots" ~help:"As-of snapshots currently open" "snapshot.live"

let snapshot_shared_hits =
  counter ~unit_:"pages"
    ~help:"Prepared-page cache hits: a rewound page was reused (or delta-extended) by a later snapshot"
    "snapshot.shared_hits"

let snapshot_parallel_pages =
  counter ~unit_:"pages"
    ~help:"Pages whose rewind ran through the staged parallel batch pipeline"
    "snapshot.parallel_pages"

let snapshot_shared_misses =
  counter ~unit_:"pages"
    ~help:"Prepared-page cache misses: the full chain rewind ran for the page"
    "snapshot.shared_misses"

(* Sessions *)

let sessions_live =
  gauge ~unit_:"sessions"
    ~help:"Writer and as-of reader sessions currently open in session managers"
    "sessions.live"

(* What-if (selective transaction undo) *)

let whatif_graph_builds =
  counter ~unit_:"graphs" ~help:"Transaction dependency graphs built from the log"
    "whatif.graph_builds"

let whatif_graph_edges =
  counter ~unit_:"edges" ~help:"Dependency edges added across all dependency-graph builds"
    "whatif.graph_edges"

let whatif_rewinds =
  counter ~unit_:"rewinds"
    ~help:"Selective transaction rewinds executed (in-place repairs and what-if views)"
    "whatif.rewinds"

let whatif_pages_rewound =
  counter ~unit_:"pages"
    ~help:"Pages rewound to their dependency-cut LSN by selective rewinds"
    "whatif.pages_rewound"

let whatif_ops_replayed =
  counter ~unit_:"ops"
    ~help:"Dependent-transaction operations re-applied by dependency-aware replay"
    "whatif.ops_replayed"

let whatif_conflicts =
  counter ~unit_:"rewinds"
    ~help:"Selective rewinds refused as conflicted (structural operations or replay mismatch)"
    "whatif.conflicts"

(* Replication *)

let repl_segments_shipped =
  counter ~unit_:"segments" ~help:"Log shipments delivered to replicas (segment-granular units)"
    "repl.segments_shipped"

let repl_bytes_shipped =
  counter ~unit_:"bytes" ~help:"Encoded log bytes delivered to replicas" "repl.bytes_shipped"

let repl_lag_segments =
  gauge ~unit_:"segments" ~help:"Segments the most-lagging attached replica has not yet applied"
    "repl.lag_segments"

let repl_retries =
  counter ~unit_:"sends" ~help:"Shipping sends retried after a channel drop or partition"
    "repl.retries"

let repl_failovers =
  counter ~unit_:"failovers" ~help:"Replica promotions after a primary failure" "repl.failovers"
