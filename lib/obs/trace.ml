(* A bounded in-memory trace collector.

   Disabled by default; the off-path cost at an instrumentation point is
   one load and one branch (callers are written as
   [if Trace.on () then Trace.complete ...] with no closure allocation).
   Timestamps come from an installed clock closure — the engine installs
   the simulated clock, so spans line up with the simulated I/O costs that
   dominate every experiment.  The buffer is a ring: when full, the oldest
   event is overwritten and [dropped] is incremented, so tracing a long
   run keeps the most recent window instead of growing without bound. *)

type arg = Int of int | Float of float | Str of string

type phase = Span | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float; (* simulated µs *)
  dur : float; (* simulated µs; 0 for instants *)
  args : (string * arg) list;
}

let dummy = { name = ""; cat = ""; ph = Instant; ts = 0.0; dur = 0.0; args = [] }

type t = {
  mutable enabled : bool;
  mutable now : unit -> float;
  mutable buf : event array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 65_536

let t =
  {
    enabled = false;
    now = (fun () -> 0.0);
    buf = [||];
    head = 0;
    len = 0;
    dropped = 0;
  }

let ensure_buf () = if Array.length t.buf = 0 then t.buf <- Array.make default_capacity dummy

let configure ~capacity () =
  if capacity < 1 then invalid_arg "Trace.configure: capacity must be positive";
  t.buf <- Array.make capacity dummy;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let install_clock f = t.now <- f
let now () = t.now ()
let on () = t.enabled

let enable () =
  ensure_buf ();
  t.enabled <- true

let disable () = t.enabled <- false

let clear () =
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let dropped () = t.dropped

let push ev =
  let cap = Array.length t.buf in
  t.buf.(t.head) <- ev;
  t.head <- (t.head + 1) mod cap;
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1

let instant ?(args = []) ~cat name =
  if t.enabled then push { name; cat; ph = Instant; ts = t.now (); dur = 0.0; args }

let complete ?(args = []) ~cat ~ts name =
  if t.enabled then
    push { name; cat; ph = Span; ts; dur = Float.max 0.0 (t.now () -. ts); args }

let events () =
  (* Oldest first. *)
  let cap = Array.length t.buf in
  List.init t.len (fun i -> t.buf.((t.head - t.len + i + cap + cap) mod cap))

(* --- Chrome trace_event export --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> if Float.is_nan f || Float.is_integer f then Printf.sprintf "%.0f" (if Float.is_nan f then 0.0 else f) else Printf.sprintf "%.6g" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let event_json b ev =
  Buffer.add_string b
    (Printf.sprintf "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f"
       (json_escape ev.name) (json_escape ev.cat)
       (match ev.ph with Span -> "X" | Instant -> "i")
       ev.ts);
  (match ev.ph with
  | Span -> Buffer.add_string b (Printf.sprintf ", \"dur\": %.3f" ev.dur)
  | Instant -> Buffer.add_string b ", \"s\": \"g\"");
  Buffer.add_string b ", \"pid\": 1, \"tid\": 1";
  if ev.args <> [] then begin
    Buffer.add_string b ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (Printf.sprintf "\"%s\": %s" (json_escape k) (arg_json v)))
      ev.args;
    Buffer.add_string b "}"
  end;
  Buffer.add_string b "}"

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      event_json b ev)
    (events ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let dump ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc
