(** Multi-session scheduler (paper §6.3 at scale).

    Interleaves many OLTP writer sessions with a fleet of concurrent as-of
    reader sessions over one engine, round-robin on the simulated clock:
    each {!run} round gives every live session one step, and a session's
    cost is the simulated time its step consumed.  Readers therefore steal
    engine time from writers exactly as in the paper's concurrent-query
    experiment, while runs stay deterministic.

    Sessions are workload-agnostic step closures.  Writers step against
    the primary database; each reader holds its own {!Rw_core.As_of_snapshot}
    at its own SplitLSN, opened (by default) through the database's shared
    prepared-page cache so overlapping readers amortise chain rewinds.
    The [sessions.live] gauge tracks open sessions. *)

type t

type session

type kind = Writer | Reader

val create : Rw_engine.Database.t -> t
(** A manager over one primary database.  Raises [Invalid_argument] on a
    read-only view. *)

val db : t -> Rw_engine.Database.t

val open_writer : t -> name:string -> step:(Rw_engine.Database.t -> unit) -> session
(** Register a writer session; [step] receives the primary database. *)

val open_reader :
  ?shared:bool ->
  ?prewarm:bool ->
  t ->
  name:string ->
  wall_us:float ->
  step:(Rw_engine.Database.t -> unit) ->
  session
(** Open an as-of snapshot at [wall_us] (see
    {!Rw_engine.Database.create_as_of_snapshot}; [shared] defaults to
    reading through the shared prepared-page cache) and register a reader
    session whose [step] receives the snapshot view.  With [prewarm]
    (default false) the view is warmed up front via
    {!Rw_engine.Time_travel.warm} — every page that changed after the
    split is batch-rewound into the side file through the staged
    domain-pool pipeline, so the session's steps never rewind on the
    fly.  Raises {!Rw_core.Split_lsn.Out_of_retention} like snapshot
    creation does. *)

val close : t -> session -> unit
(** Remove the session from the rotation; a reader's snapshot is dropped
    (sparse side file released).  Idempotent. *)

val set_service : t -> (unit -> unit) option -> unit
(** Install (or clear) a background duty that {!run} invokes once per
    round, after every live session has stepped — e.g. a replication
    shipper pumping one catch-up unit ({!Rw_repl.Shipper.step}), so
    replica lag tracks foreground traffic inside the same deterministic
    schedule. *)

val run : t -> rounds:int -> unit
(** Round-robin interleave: [rounds] times, give every live session one
    step in open order.  Sessions opened by a step join the next round;
    sessions closed by a step stop stepping immediately.  After each round,
    if the primary carries an instant-restart backlog
    ({!Rw_engine.Database.recovery_backlog}), a background sweeper retires a
    few of its pages, so recovery completes even without traffic. *)

(** {1 Introspection} *)

val live : t -> session list
(** Open sessions, in open order. *)

val live_count : t -> int
val name : session -> string
val kind : session -> kind

val view : session -> Rw_engine.Database.t
(** The session's database view: the primary for writers, the snapshot
    view for readers. *)

val split_lsn : session -> Rw_storage.Lsn.t option
(** A reader's SplitLSN; [None] for writers. *)

val steps : session -> int
(** Steps executed so far. *)

val busy_us : session -> float
(** Total simulated time this session's steps have consumed. *)
