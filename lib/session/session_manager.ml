module Lsn = Rw_storage.Lsn
module Sim_clock = Rw_storage.Sim_clock
module Database = Rw_engine.Database
module As_of_snapshot = Rw_core.As_of_snapshot
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

(* Multi-session scheduler (the paper's §6.3 setting, "millions of users"):
   many OLTP writer sessions and a fleet of concurrent point-in-time reader
   sessions share one engine.  Everything in this codebase is a
   single-threaded deterministic simulation, so "concurrent" means
   round-robin interleaving on the simulated clock: each [run] round gives
   every live session one step, and a session's cost is whatever simulated
   time its step consumed.  That is exactly the contention model the paper
   measures — readers steal engine time (and rewind work) from writers —
   while keeping runs reproducible.

   The manager is workload-agnostic: a session is a name, a kind, and a
   step closure over the session's own database view.  Writers step against
   the primary; each reader holds its own as-of snapshot view (its own
   SplitLSN, its own sparse side file) opened through the database's shared
   prepared-page cache, which is what lets a fleet of readers at nearby
   SplitLSNs amortise chain rewinds instead of multiplying them. *)

type kind = Writer | Reader

type session = {
  s_name : string;
  s_kind : kind;
  s_view : Database.t; (* primary for writers, snapshot view for readers *)
  s_step : Database.t -> unit;
  mutable s_steps : int;
  mutable s_busy_us : float; (* simulated time consumed by this session *)
  mutable s_open : bool;
}

type t = {
  db : Database.t;
  clock : Sim_clock.t;
  mutable sessions : session list; (* in open order *)
  mutable opened : int; (* lifetime counter, for unique snapshot names *)
  mutable service : (unit -> unit) option;
      (* background duty run once per round, after every session stepped —
         e.g. a log shipper pumping an attached replica *)
}

let create db =
  if Database.is_read_only db then invalid_arg "Session_manager.create: read-only database";
  { db; clock = Database.clock db; sessions = []; opened = 0; service = None }

let set_service t f = t.service <- f

let db t = t.db

let register t s =
  t.sessions <- t.sessions @ [ s ];
  t.opened <- t.opened + 1;
  Obs.gauge_add Probes.sessions_live 1.0;
  s

let open_writer t ~name ~step =
  register t
    {
      s_name = name;
      s_kind = Writer;
      s_view = t.db;
      s_step = step;
      s_steps = 0;
      s_busy_us = 0.0;
      s_open = true;
    }

let open_reader ?shared ?(prewarm = false) t ~name ~wall_us ~step =
  let view = Database.create_as_of_snapshot ?shared t.db ~name ~wall_us in
  (* Prewarm rides the staged parallel batch pipeline: every page that
     changed after the split is rewound into the side file up front, so
     the reader's steps never pay on-the-fly rewinds. *)
  if prewarm then ignore (Rw_engine.Time_travel.warm view);
  register t
    {
      s_name = name;
      s_kind = Reader;
      s_view = view;
      s_step = step;
      s_steps = 0;
      s_busy_us = 0.0;
      s_open = true;
    }

let close t s =
  if s.s_open then begin
    s.s_open <- false;
    t.sessions <- List.filter (fun x -> x != s) t.sessions;
    Obs.gauge_add Probes.sessions_live (-1.0);
    match Database.snapshot_handle s.s_view with
    | Some snap -> As_of_snapshot.drop snap
    | None -> ()
  end

let live t = t.sessions
let live_count t = List.length t.sessions
let name s = s.s_name
let kind s = s.s_kind
let view s = s.s_view
let steps s = s.s_steps
let busy_us s = s.s_busy_us
let split_lsn s = Database.split_lsn s.s_view

let step t s =
  let t0 = Sim_clock.now_us t.clock in
  s.s_step s.s_view;
  s.s_steps <- s.s_steps + 1;
  s.s_busy_us <- s.s_busy_us +. (Sim_clock.now_us t.clock -. t0)

(* Pages the background sweeper retires between scheduler rounds after an
   instant restart: small, so recovery work interleaves with foreground
   traffic instead of stalling it. *)
let sweep_pages_per_round = 4

let run t ~rounds =
  for _ = 1 to rounds do
    (* Bind the round's roster up front: a step may open or close
       sessions; newcomers join in the next round, departures are
       skipped for the rest of this one. *)
    let roster = t.sessions in
    List.iter (fun s -> if s.s_open then step t s) roster;
    (* Background sweeper: after an instant restart, each round retires a
       little of the recovery backlog so the engine reaches full
       consistency even on pages no session ever touches. *)
    if Database.recovery_backlog t.db > 0 then
      ignore (Database.recovery_drain_step ~max_pages:sweep_pages_per_round t.db);
    (* Background service (e.g. a replication shipper): one pump per
       round, so replica lag tracks foreground traffic deterministically. *)
    match t.service with Some f -> f () | None -> ()
  done
