(** A database: disk, log, buffer pool, transactions, catalog — plus the
    paper's additions: as-of snapshots, retention, and crash simulation.

    A [t] is either a primary (read-write) database or a read-only view
    (an as-of snapshot or a restored backup).  Snapshot views share the
    primary's log and clock but read pages through the snapshot protocol,
    so the catalog, allocation maps and user data all appear as of the
    snapshot time. *)

type t

type txn = Rw_txn.Txn_manager.txn

exception Read_only of string

val create :
  name:string ->
  clock:Rw_storage.Sim_clock.t ->
  media:Rw_storage.Media.t ->
  ?log_media:Rw_storage.Media.t ->
  ?pool_capacity:int ->
  ?log_cache_blocks:int ->
  ?log_block_bytes:int ->
  ?log_segment_bytes:int ->
  ?fpi_frequency:int ->
  ?checkpoint_interval_us:float ->
  ?redo_domains:int ->
  ?fault_plan:Rw_storage.Fault_plan.t ->
  unit ->
  t
(** Create and initialise a fresh database (boot page, allocation map,
    catalog), commit the initialisation and take a first checkpoint.
    [fpi_frequency] is the paper's N (0 disables full-page-image logging);
    [checkpoint_interval_us] (default 30 simulated seconds) triggers an
    automatic checkpoint at commit when exceeded.  [redo_domains] (default
    1 = sequential) is the default domain fan-out for the redo pass of any
    later restart recovery.  An optional [fault_plan] threads deterministic
    fault injection through the disk and the log (see
    {!Rw_storage.Fault_plan}); the engine detects the injected damage by
    checksum, repairs pages from the log ({!Rw_recovery.Page_repair}) and
    truncates torn log tails at recovery. *)

(* Accessors *)
val name : t -> string
val clock : t -> Rw_storage.Sim_clock.t
val now_us : t -> float
val disk : t -> Rw_storage.Disk.t
val media : t -> Rw_storage.Media.t
val log_media : t -> Rw_storage.Media.t
val log : t -> Rw_wal.Log_manager.t
val pool : t -> Rw_buffer.Buffer_pool.t
val ctx : t -> Rw_access.Access_ctx.t
val txn_manager : t -> Rw_txn.Txn_manager.t
val alloc : t -> Rw_access.Alloc_map.t
val is_read_only : t -> bool
val split_lsn : t -> Rw_storage.Lsn.t option
(** The snapshot's split point ([None] on a primary database). *)

val set_fpi_frequency : t -> int -> unit

(* Transactions *)
val begin_txn : t -> txn
val commit : t -> txn -> unit
(** Commit through the group-commit scheduler.  Under the default
    (immediate) policy the commit record is forced durable before this
    returns; with {!set_group_commit} the transaction may be left awaiting
    acknowledgement in the current flush batch (its effects stay visible to
    subsequent reads, but only a crash can reveal the difference). *)

val rollback : t -> txn -> unit
val with_txn : t -> (txn -> 'a) -> 'a
(** Begin, run, commit; roll back and re-raise on exception. *)

val set_group_commit : t -> max_batch_bytes:int -> max_delay_us:float -> unit
(** Enable commit coalescing: flush once the unflushed log tail reaches
    [max_batch_bytes] or the oldest pending commit has waited
    [max_delay_us] of simulated time.  Both zero restores per-commit
    flushing. *)

val flush_commits : t -> int
(** Force the pending commit batch durable now; returns the number of
    commits acknowledged. *)

val pending_commits : t -> int
(** Commits awaiting durability acknowledgement. *)

(* DDL *)
val create_table :
  t ->
  txn ->
  table:string ->
  columns:Rw_catalog.Schema.column list ->
  ?kind:Rw_catalog.Schema.kind ->
  unit ->
  Rw_catalog.Schema.table

val drop_table : t -> txn -> string -> unit
val tables : t -> Rw_catalog.Schema.table list
val table : t -> string -> Rw_catalog.Schema.table option

(* Secondary indexes (maintained on every DML; stored as logged B-trees,
   so they crash-recover and time-travel like base data). *)
exception No_such_index of string

val create_index :
  t -> txn -> table:string -> ?name:string -> column:string -> unit -> Rw_catalog.Schema.index
(** Create and backfill an index on a non-key column of a B-tree table. *)

val drop_index : t -> txn -> table:string -> name:string -> unit
val indexes : t -> table:string -> Rw_catalog.Schema.index list

val lookup_by_index :
  t -> table:string -> column:string -> value:Row.value -> Row.value list list
(** Equality lookup through the column's index; raises {!No_such_index}
    when the column is not indexed. *)

(* DML / queries.  Rows are full typed rows, key column first. *)
val insert : t -> txn -> table:string -> Row.value list -> unit
val update : t -> txn -> table:string -> Row.value list -> unit
val delete : t -> txn -> table:string -> key:int64 -> unit
val get : t -> table:string -> key:int64 -> Row.value list option
val range : t -> table:string -> lo:int64 -> hi:int64 -> f:(Row.value list -> unit) -> unit
val scan : t -> table:string -> f:(Row.value list -> unit) -> unit
val row_count : t -> table:string -> int

(* Checkpoints, retention *)
val checkpoint : ?flush_pages:bool -> t -> Rw_storage.Lsn.t
val set_retention : t -> float option -> unit
(** [SET UNDO_INTERVAL]: retention period in simulated microseconds. *)

val retention : t -> float option
val enforce_retention : t -> Rw_storage.Lsn.t option

val add_retention_floor : t -> name:string -> (unit -> Rw_storage.Lsn.t option) -> unit
(** Install a named truncation floor: retention never reclaims log at or
    above any floor's LSN (see {!Rw_core.Retention.register_floor}).  The
    replication shipper registers each attached replica's ship horizon so
    aggressive retention cannot strand a lagging replica. *)

val remove_retention_floor : t -> name:string -> unit

(* The paper's core: as-of snapshots *)
val create_as_of_snapshot : ?shared:bool -> t -> name:string -> wall_us:float -> t
(** A read-only view of this database as of [wall_us].  Raises
    {!Rw_core.Split_lsn.Out_of_retention} if the time precedes retained
    log; raises {!Read_only} when invoked on a non-primary view.

    [shared] (default [true]) lets the snapshot read through the
    database's shared prepared-page cache, amortising chain rewinds
    across concurrent snapshots at the same or nearby SplitLSNs.  Pass
    [false] for an isolated snapshot that re-derives every page from the
    log — the oracle the E8 self-check and the interleaving tests compare
    shared snapshots against. *)

val prepared_cache : t -> Rw_core.Prepared_cache.t
(** The database's shared prepared-page cache (hit-rate introspection for
    the CLI's [\sessions] display).  Views inherit their base's cache. *)

val snapshot_handle : t -> Rw_core.As_of_snapshot.t option
(** The underlying snapshot object of a snapshot view (timings, sparse-file
    statistics). *)

(* Baseline: classic copy-on-write snapshots (paper §2.2/§7.1). *)
val create_cow_snapshot : t -> name:string -> t
(** A read-only view of this database as of {e now}, maintained by
    copy-on-write interception of subsequent modifications.  Exists as the
    measured baseline the paper argues against; raises
    {!Rw_core.Cow_snapshot.Active_transactions} unless quiescent. *)

val cow_handle : t -> Rw_core.Cow_snapshot.t option

(* Persistence: dump / resume the durable state (pages + log + settings)
   as a real file, so sessions survive process restarts.  The simulated
   clock resumes from the saved wall time, keeping as-of history
   meaningful across save/load. *)
val save : t -> path:string -> unit
(** Checkpoint, then write a self-contained image.  Raises {!Read_only}
    on snapshot views. *)

val load :
  clock:Rw_storage.Sim_clock.t ->
  media:Rw_storage.Media.t ->
  ?log_media:Rw_storage.Media.t ->
  ?pool_capacity:int ->
  ?log_cache_blocks:int ->
  ?log_block_bytes:int ->
  ?log_segment_bytes:int ->
  path:string ->
  unit ->
  t
(** Rebuild a database from {!save} output and run restart recovery.
    Raises [Failure] on a file that is not a rewinddb image. *)

(* Crash simulation *)
val crash_and_reopen : ?instant:bool -> ?redo_domains:int -> t -> t
(** Discard all volatile state (buffer pool, unflushed log) and run ARIES
    restart recovery; returns the reopened database over the same durable
    state.  The old handle must not be used afterwards.

    With [instant:true] (default false) only tail repair + analysis run
    before the database opens; backlog pages are recovered on first touch
    and by {!recovery_drain_step} (see {!Rw_recovery.Recovery.Instant} and
    DESIGN.md §12).  [redo_domains] overrides the database's default fan-out
    for the (non-instant) redo pass; 1 reproduces the sequential pass
    byte-for-byte. *)

val reopen_redo_only : ?redo_domains:int -> t -> t
(** Replica restart: like {!crash_and_reopen} but recovery is
    {!Rw_recovery.Recovery.recover_redo_only} — analysis resumes from the
    persisted master record (the replica's recovery checkpoint), redo
    replays forward, and {e nothing} is appended (no CLRs, no End records,
    no checkpoint), so the log remains a byte-identical prefix of the
    primary's stream and catch-up can resume at the old end of log.  The
    old handle must not be used afterwards. *)

val last_recovery_stats : t -> Rw_recovery.Recovery.stats option

val recovery_backlog : t -> int
(** Pages still awaiting recovery after an instant restart (0 for a fully
    recovered database or one opened with full-replay recovery). *)

val recovery_drain_step : ?max_pages:int -> t -> int
(** Recover up to [max_pages] (default 8) backlog pages; returns how many
    left the backlog.  The session manager's background sweeper calls this
    between scheduler rounds. *)

val recovery_drain_all : t -> unit
(** Drain the whole backlog.  Runs implicitly before checkpoints, retention
    enforcement and snapshot creation. *)

(* Fault injection / graceful degradation *)
val fault_plan : t -> Rw_storage.Fault_plan.t option

val quarantined_pages : t -> (Rw_storage.Page_id.t * string) list
(** Pages found unrepairable (with the reason), sorted by id.  Queries
    touching them raise [Rw_recovery.Page_repair.Quarantined]; everything
    else keeps serving. *)

val scrub : t -> int
(** Read every written page through the self-healing pool, repairing any
    residual damage from the log (unrepairable pages are quarantined, not
    raised).  Returns the number of pages repaired. *)

(* Internal: assemble a read-only view over an arbitrary buffer pool.
   Exposed for Backup. *)
val view_over_pool :
  name:string ->
  base:t ->
  pool:Rw_buffer.Buffer_pool.t ->
  snapshot:Rw_core.As_of_snapshot.t option ->
  t
