module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock

exception Database_exists of string
exception No_such_database of string

type t = {
  clock : Sim_clock.t;
  media : Media.t;
  log_media : Media.t;
  dbs : (string, Database.t) Hashtbl.t;
}

let create ?(media = Media.ssd) ?log_media ?(seed_clock_us = 0.0) () =
  let clock = Sim_clock.create ~start_us:seed_clock_us () in
  (* Trace spans are timestamped on this engine's simulated clock, so the
     exported timeline lines up with the priced I/O.  (A process with
     several engines traces on whichever was created last.) *)
  Rw_obs.Trace.install_clock (fun () -> Sim_clock.now_us clock);
  {
    clock;
    media;
    log_media = Option.value log_media ~default:media;
    dbs = Hashtbl.create 8;
  }

let clock t = t.clock
let now_us t = Sim_clock.now_us t.clock
let now_s t = Sim_clock.now_s t.clock
let media t = t.media

let register t name db =
  if Hashtbl.mem t.dbs name then raise (Database_exists name);
  Hashtbl.replace t.dbs name db;
  db

let create_database t ?fpi_frequency ?pool_capacity ?checkpoint_interval_us ?redo_domains
    ?log_cache_blocks ?log_block_bytes ?log_segment_bytes ?fault_plan name =
  if Hashtbl.mem t.dbs name then raise (Database_exists name);
  let db =
    Database.create ~name ~clock:t.clock ~media:t.media ~log_media:t.log_media ?fpi_frequency
      ?pool_capacity ?checkpoint_interval_us ?redo_domains ?log_cache_blocks ?log_block_bytes
      ?log_segment_bytes ?fault_plan ()
  in
  register t name db

let attach_database t db = register t (Database.name db) db
let find_database t name = Hashtbl.find_opt t.dbs name

let find_database_exn t name =
  match find_database t name with Some db -> db | None -> raise (No_such_database name)

let database_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.dbs [] |> List.sort compare

let create_snapshot ?shared t ~of_ ~name ~wall_us =
  let db = find_database_exn t of_ in
  if Hashtbl.mem t.dbs name then raise (Database_exists name);
  let snap = Database.create_as_of_snapshot ?shared db ~name ~wall_us in
  register t name snap

let drop_database t name =
  let db = find_database_exn t name in
  (match Database.snapshot_handle db with
  | Some snap -> Rw_core.As_of_snapshot.drop snap
  | None -> ());
  Hashtbl.remove t.dbs name
