module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Media = Rw_storage.Media
module Io_stats = Rw_storage.Io_stats
module Log_manager = Rw_wal.Log_manager
module Log_record = Rw_wal.Log_record
module Buffer_pool = Rw_buffer.Buffer_pool
module Latch = Rw_buffer.Latch
module Recovery = Rw_recovery.Recovery
module Split_lsn = Rw_core.Split_lsn

type t = {
  source : string;
  taken_at_lsn : Lsn.t;
  wall_us : float;
  images : (int * Page.t) list;  (** only pages that were ever written *)
  total_pages : int;  (** full file size, zero-filled cold regions included *)
  stats : Io_stats.t;
}

let source t = t.source
let taken_at_lsn t = t.taken_at_lsn
let wall_us t = t.wall_us
let size_bytes t = t.total_pages * Page.page_size

let take db =
  let lsn = Database.checkpoint ~flush_pages:true db in
  let disk = Database.disk db in
  let stats = Io_stats.create () in
  let clock = Disk.clock disk in
  let media = Disk.media disk in
  let total_pages = Disk.page_count disk in
  let images = ref [] in
  for i = total_pages - 1 downto 0 do
    let pid = Page_id.of_int i in
    (* Every page of the file is streamed onto backup media, cold regions
       included — that is precisely the full-backup cost the paper's
       scheme avoids. *)
    Media.seq_read media clock (Disk.stats disk) Page.page_size;
    Media.seq_write media clock stats Page.page_size;
    if Disk.has_page disk pid then images := (i, Disk.read_page_nocost disk pid) :: !images
  done;
  {
    source = Database.name db;
    taken_at_lsn = lsn;
    wall_us = Database.now_us db;
    images = !images;
    total_pages;
    stats;
  }

let restore_as_of t ~from ~wall_us =
  if wall_us < t.wall_us then
    invalid_arg "Backup.restore_as_of: requested time precedes the backup";
  let log = Database.log from in
  let split = Split_lsn.find ~log ~wall_us in
  let split_lsn = split.Split_lsn.split_lsn in
  let clock = Database.clock from in
  let media = Disk.media (Database.disk from) in
  (* 1. Full restore: stream every page from backup media onto fresh files.
     This is the fixed, database-size-proportional cost the paper's scheme
     avoids. *)
  let disk = Disk.create ~clock ~media () in
  let resident : (int, Page.t) Hashtbl.t = Hashtbl.create 1024 in
  (* Stream the whole backup back: every page of the file costs a read
     from backup media and a write to the fresh files; only pages with
     content are actually stored. *)
  Media.seq_read media clock (Disk.stats disk) (t.total_pages * Page.page_size);
  Media.seq_write media clock (Disk.stats disk) (t.total_pages * Page.page_size);
  Disk.extend disk t.total_pages;
  List.iter
    (fun (i, page) ->
      let pid = Page_id.of_int i in
      let page = Page.copy page in
      Page.seal page;
      (* Stored without further charge: the transfer was priced above. *)
      Disk.write_page_nocost disk pid page;
      Hashtbl.replace resident i page)
    t.images;
  (* Restore pipelines redo with the copy: pages it has just streamed are
     still in memory, so replay never stalls on random reads, and the final
     flush of replayed pages is one sorted sequential pass.  The pool covers
     the whole restored file. *)
  let source =
    {
      Buffer_pool.read =
        (fun pid ->
          match Hashtbl.find_opt resident (Page_id.to_int pid) with
          | Some page -> Page.copy page
          | None -> Disk.read_page disk pid);
      Buffer_pool.write =
        (fun pid page ->
          Page.seal page;
          Disk.write_page_seq disk pid page);
      (* Restore writes are already sequential; run continuations are the
         same stream. *)
      Buffer_pool.write_seq =
        Some
          (fun pid page ->
            Page.seal page;
            Disk.write_page_seq disk pid page);
      Buffer_pool.read_cached = None;
    }
  in
  let pool =
    Buffer_pool.create ~capacity:(max 1024 (List.length t.images + 16)) ~source ()
  in
  (* 2. Roll the copy forward by replaying the log up to the split. *)
  Log_manager.iter_range log ~from:t.taken_at_lsn ~upto:split_lsn (fun lsn r ->
      match r.Log_record.body with
      | Log_record.Page_op { page; op; _ } | Log_record.Clr { page; op; _ } ->
          let frame = Buffer_pool.fetch pool page in
          Fun.protect
            ~finally:(fun () -> Buffer_pool.unpin pool frame)
            (fun () ->
              Latch.with_latch (Buffer_pool.frame_latch frame) Latch.Exclusive (fun () ->
                  let p = Buffer_pool.page frame in
                  if Lsn.(Page.lsn p < lsn) then begin
                    Log_record.redo page op p;
                    Page.set_lsn p lsn;
                    Buffer_pool.mark_dirty pool frame ~lsn
                  end))
      | _ -> ());
  (* Initialization of the unused portion of the log (paper §6.2): a
     point-in-time restore still processes the log tail beyond the restore
     point, which is what makes restore cost independent of the point
     chosen. *)
  Log_manager.charge_scan log ~from:split_lsn ~upto:(Log_manager.end_lsn log);
  (* 3. Roll back transactions in flight at the split so the copy is
     transactionally consistent (same as point-in-time restore). *)
  (* Loser analysis is bounded by the last checkpoint before the split,
     exactly as in restart recovery. *)
  let analysis_start =
    if Lsn.is_nil split.Split_lsn.base_checkpoint then t.taken_at_lsn
    else split.Split_lsn.base_checkpoint
  in
  let analysis = Recovery.analyze ~log ~start:analysis_start ~upto:split_lsn in
  let apply pid f =
    let frame = Buffer_pool.fetch pool pid in
    Fun.protect
      ~finally:(fun () -> Buffer_pool.unpin pool frame)
      (fun () ->
        Latch.with_latch (Buffer_pool.frame_latch frame) Latch.Exclusive (fun () ->
            let p = Buffer_pool.page frame in
            match f p with
            | Some lsn ->
                Page.set_lsn p lsn;
                Buffer_pool.mark_dirty pool frame ~lsn
            | None -> Buffer_pool.mark_dirty pool frame ~lsn:split_lsn))
  in
  ignore (Recovery.undo_losers ~log ~losers:analysis.Recovery.losers ~write_clr:false ~apply);
  Buffer_pool.flush_all pool;
  Database.view_over_pool
    ~name:(Printf.sprintf "%s_restored" t.source)
    ~base:from ~pool ~snapshot:None
