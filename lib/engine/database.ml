module Lsn = Rw_storage.Lsn
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Lock_manager = Rw_txn.Lock_manager
module Txn_manager = Rw_txn.Txn_manager
module Access_ctx = Rw_access.Access_ctx
module Alloc_map = Rw_access.Alloc_map
module Btree = Rw_access.Btree
module Heap = Rw_access.Heap
module Boot = Rw_access.Boot
module Schema = Rw_catalog.Schema
module System_tables = Rw_catalog.System_tables
module Recovery = Rw_recovery.Recovery
module Page_repair = Rw_recovery.Page_repair
module Fault_plan = Rw_storage.Fault_plan
module As_of_snapshot = Rw_core.As_of_snapshot
module Retention = Rw_core.Retention
module Domain_pool = Rw_pool.Domain_pool

type txn = Txn_manager.txn

exception Read_only of string

type t = {
  name : string;
  clock : Sim_clock.t;
  media : Media.t;
  log_media : Media.t;
  disk : Disk.t;
  log : Log_manager.t;
  pool : Buffer_pool.t;
  locks : Lock_manager.t;
  txns : Txn_manager.t;
  ctx : Access_ctx.t;
  mutable alloc : Alloc_map.t;
  read_only : bool;
  snapshot : As_of_snapshot.t option;
  mutable cow : Rw_core.Cow_snapshot.t option;
  retention : Retention.t;
  checkpoint_interval_us : float;
  mutable last_checkpoint_wall : float;
  mutable recovery_stats : Recovery.stats option;
  mutable instant : Recovery.Instant.t option;
      (* present when the last restart used instant recovery; pages in its
         backlog are recovered on first touch or by [recovery_drain_step] *)
  redo_domains : int;
  pool_capacity : int;
  quarantine : Page_repair.Quarantine.t;
  prepared_cache : Rw_core.Prepared_cache.t;
      (* shared across every as-of snapshot of this database; views created
         by [view_over_pool] inherit the base's cache *)
}

let name t = t.name
let clock t = t.clock
let now_us t = Sim_clock.now_us t.clock
let disk t = t.disk
let media t = t.media
let log_media t = t.log_media
let log t = t.log
let pool t = t.pool
let ctx t = t.ctx
let txn_manager t = t.txns
let alloc t = t.alloc
let is_read_only t = t.read_only
let split_lsn t = Option.map As_of_snapshot.split_lsn t.snapshot
let snapshot_handle t = t.snapshot
let set_fpi_frequency t n = Access_ctx.set_fpi_frequency t.ctx n
let last_recovery_stats t = t.recovery_stats
let quarantined_pages t = Page_repair.Quarantine.list t.quarantine
let fault_plan t = Disk.fault_plan t.disk
let prepared_cache t = t.prepared_cache

let guard_writable t =
  if t.read_only then raise (Read_only t.name)

let recovery_backlog t =
  match t.instant with Some i -> Recovery.Instant.backlog i | None -> 0

let recovery_drain_step ?(max_pages = 8) t =
  match t.instant with None -> 0 | Some i -> Recovery.Instant.drain i ~max_pages

let recovery_drain_all t =
  match t.instant with None -> () | Some i -> ignore (Recovery.Instant.drain i ~max_pages:max_int)

let assemble ~name ~clock ~media ~log_media ~disk ~log ~pool_capacity ~fpi_frequency
    ~checkpoint_interval_us ~read_only ~snapshot ~instant ~redo_domains ~pool_opt () =
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  let quarantine = Page_repair.Quarantine.create () in
  let pool =
    match pool_opt with
    | Some pool -> pool
    | None ->
        (* WAL-rule flushes route through the txn manager so a page
           write-back that forces the log also acknowledges any commits the
           flush happened to cover. *)
        let wal_flush lsn = Txn_manager.flush_log txns ~upto:lsn in
        (* The primary reads through the self-healing source: a checksum
           failure triggers a rebuild from the page's log chain instead of
           failing the query; unrepairable pages are quarantined. *)
        let base = Page_repair.source ~disk ~log ~wal_flush ~quarantine () in
        let source =
          match instant with
          | None -> base
          | Some inst ->
              (* Instant restart: the pool reads through a first-touch
                 wrapper — a fetch miss on a backlog page recovers its whole
                 group (redo to end-of-log + loser undo) before the page is
                 handed out.  Group recovery itself reads and writes through
                 the unwrapped self-healing source. *)
              Recovery.Instant.attach inst ~read:base.Buffer_pool.read
                ~write:base.Buffer_pool.write ~wal_flush;
              {
                base with
                Buffer_pool.read =
                  (fun pid -> Recovery.Instant.touch inst pid (base.Buffer_pool.read pid));
              }
        in
        Buffer_pool.create ~capacity:pool_capacity ~source ~wal_flush ()
  in
  let ctx = Access_ctx.create ~pool ~txns ~log ~clock ~fpi_frequency () in
  {
    name;
    clock;
    media;
    log_media;
    disk;
    log;
    pool;
    locks;
    txns;
    ctx;
    alloc = Alloc_map.open_ ctx;
    read_only;
    snapshot;
    cow = None;
    retention = Retention.create ();
    checkpoint_interval_us;
    last_checkpoint_wall = Sim_clock.now_us clock;
    recovery_stats = None;
    instant;
    redo_domains;
    pool_capacity;
    quarantine;
    prepared_cache = Rw_core.Prepared_cache.create ~log ();
  }

let checkpoint ?(flush_pages = true) t =
  (* A checkpoint's dirty-page table only describes the pool, so taking one
     while an instant-restart backlog is outstanding would move the master
     record past pages that still need redo.  Finish recovery first. *)
  recovery_drain_all t;
  let lsn =
    Recovery.checkpoint ~log:t.log ~pool:t.pool ~txns:t.txns ~wall_us:(now_us t) ~flush_pages ()
  in
  t.last_checkpoint_wall <- now_us t;
  (* Retention rides on checkpoints: log older than the undo interval is
     reclaimed here (paper §4.3). *)
  ignore (Retention.enforce t.retention ~log:t.log ~now_us:(now_us t));
  lsn

let create ~name ~clock ~media ?log_media ?(pool_capacity = 512) ?(log_cache_blocks = 128)
    ?(log_block_bytes = 65536) ?log_segment_bytes ?(fpi_frequency = 0)
    ?(checkpoint_interval_us = 30_000_000.0) ?(redo_domains = 1) ?fault_plan () =
  let log_media = Option.value log_media ~default:media in
  let disk = Disk.create ~clock ~media ?fault_plan () in
  let log =
    Log_manager.create ~clock ~media:log_media ~cache_blocks:log_cache_blocks
      ~block_bytes:log_block_bytes ?segment_bytes:log_segment_bytes ?fault_plan ()
  in
  let t =
    assemble ~name ~clock ~media ~log_media ~disk ~log ~pool_capacity ~fpi_frequency
      ~checkpoint_interval_us ~read_only:false ~snapshot:None ~instant:None ~redo_domains
      ~pool_opt:None ()
  in
  (* Bootstrap: boot page, page-id counter, allocation map, catalog. *)
  let txn = Txn_manager.begin_txn t.txns in
  Boot.init t.ctx txn;
  Boot.set t.ctx txn Boot.key_next_page_id 2L;
  Alloc_map.init t.ctx txn;
  t.alloc <- Alloc_map.open_ t.ctx;
  System_tables.init t.ctx t.alloc txn;
  Txn_manager.commit t.txns txn ~wall_us:(now_us t);
  Txn_manager.finished t.txns txn;
  ignore (checkpoint t);
  t

(* --- transactions --- *)

let begin_txn t =
  guard_writable t;
  Txn_manager.begin_txn t.txns

let maybe_auto_checkpoint t =
  if now_us t -. t.last_checkpoint_wall >= t.checkpoint_interval_us then ignore (checkpoint t)

let commit t txn =
  ignore (Txn_manager.commit_begin t.txns txn ~wall_us:(now_us t));
  (* The flush scheduler decides whether this commit rides an accumulating
     batch or forces one now; the default (immediate) policy flushes every
     time, i.e. a durable batch of one. *)
  ignore (Txn_manager.maybe_flush t.txns);
  Txn_manager.finished t.txns txn;
  maybe_auto_checkpoint t

let set_group_commit t ~max_batch_bytes ~max_delay_us =
  Txn_manager.set_group_commit t.txns ~max_batch_bytes ~max_delay_us

let flush_commits t = Txn_manager.flush_commits t.txns
let pending_commits t = Txn_manager.pending_commits t.txns

let rollback t txn =
  Txn_manager.rollback t.txns txn ~write_page:(Access_ctx.page_writer t.ctx);
  Txn_manager.finished t.txns txn

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | v ->
      commit t txn;
      v
  | exception e ->
      (match Txn_manager.state txn with
      | Rw_txn.Txn_manager.Active -> rollback t txn
      | _ -> ());
      raise e

(* --- DDL --- *)

let create_table t txn ~table ~columns ?(kind = Schema.Btree_table) () =
  guard_writable t;
  Txn_manager.lock t.txns txn (Lock_manager.Table 0) Lock_manager.IX;
  System_tables.create_table t.ctx t.alloc txn ~name:table ~kind ~columns

let drop_table t txn table =
  guard_writable t;
  System_tables.drop_table t.ctx t.alloc txn table

let tables t = System_tables.list_tables t.ctx
let table t name = System_tables.find t.ctx name

let find_table t name =
  match System_tables.find t.ctx name with
  | Some tab -> tab
  | None -> raise (System_tables.No_such_table name)

(* --- secondary indexes --- *)

exception No_such_index of string

let column_position (tab : Schema.table) column =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "table %s has no column %s" tab.Schema.name column)
    | (c : Schema.column) :: _ when c.Schema.name = column -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 tab.Schema.columns

let indexes t ~table = (find_table t table).Schema.indexes

let indexed_values (tab : Schema.table) row =
  List.map
    (fun (ix : Schema.index) -> (ix, List.nth row (column_position tab ix.Schema.column)))
    tab.Schema.indexes

let create_index t txn ~table ?name ~column () =
  guard_writable t;
  let tab = find_table t table in
  if tab.Schema.kind <> Schema.Btree_table then
    invalid_arg "create_index: only B-tree tables support secondary indexes";
  let pos = column_position tab column in
  if pos = 0 then invalid_arg "create_index: the key column is already the primary index";
  let index_name = Option.value name ~default:(Printf.sprintf "idx_%s_%s" table column) in
  if List.exists (fun (ix : Schema.index) -> ix.Schema.index_name = index_name) tab.Schema.indexes
  then invalid_arg (Printf.sprintf "index %s already exists" index_name);
  let root = Btree.root (Btree.create t.ctx t.alloc txn) in
  let ix = { Schema.index_name; column; index_root = root } in
  (* Backfill from existing rows. *)
  Btree.iter t.ctx (Btree.of_root tab.Schema.root) ~f:(fun key payload ->
      let row = Row.decode tab ~key ~payload in
      Index.add t.ctx t.alloc txn ix ~value:(List.nth row pos) ~pk:key);
  System_tables.update_table t.ctx t.alloc txn
    { tab with Schema.indexes = ix :: tab.Schema.indexes };
  ix

let drop_index t txn ~table ~name =
  guard_writable t;
  let tab = find_table t table in
  match
    List.partition (fun (ix : Schema.index) -> ix.Schema.index_name = name) tab.Schema.indexes
  with
  | [ victim ], rest ->
      Btree.drop t.ctx t.alloc txn (Btree.of_root victim.Schema.index_root);
      System_tables.update_table t.ctx t.alloc txn { tab with Schema.indexes = rest }
  | _ -> raise (No_such_index name)

let lookup_by_index t ~table ~column ~value =
  let tab = find_table t table in
  let pos = column_position tab column in
  match
    List.find_opt (fun (ix : Schema.index) -> ix.Schema.column = column) tab.Schema.indexes
  with
  | None -> raise (No_such_index column)
  | Some ix ->
      Index.lookup t.ctx ix ~value
      |> List.filter_map (fun pk ->
             match Btree.find t.ctx (Btree.of_root tab.Schema.root) pk with
             | Some payload ->
                 let row = Row.decode tab ~key:pk ~payload in
                 (* Hash collisions: verify the predicate. *)
                 if Row.equal_value (List.nth row pos) value then Some row else None
             | None -> None)

(* --- DML --- *)

let insert t txn ~table values =
  guard_writable t;
  let tab = find_table t table in
  let key, payload = Row.encode tab values in
  Txn_manager.lock t.txns txn (Lock_manager.Table tab.Schema.id) Lock_manager.IX;
  Txn_manager.lock t.txns txn (Lock_manager.Row (tab.Schema.id, key)) Lock_manager.X;
  match tab.Schema.kind with
  | Schema.Btree_table ->
      Btree.insert t.ctx t.alloc txn (Btree.of_root tab.Schema.root) ~key ~payload;
      List.iter
        (fun (ix, v) -> Index.add t.ctx t.alloc txn ix ~value:v ~pk:key)
        (indexed_values tab values)
  | Schema.Heap_table ->
      let full = Rw_wal.Codec.encoder () in
      Rw_wal.Codec.i64 full key;
      ignore
        (Heap.insert t.ctx t.alloc txn (Heap.of_first tab.Schema.root)
           (Rw_wal.Codec.to_string full ^ payload))

let update t txn ~table values =
  guard_writable t;
  let tab = find_table t table in
  let key, payload = Row.encode tab values in
  Txn_manager.lock t.txns txn (Lock_manager.Table tab.Schema.id) Lock_manager.IX;
  Txn_manager.lock t.txns txn (Lock_manager.Row (tab.Schema.id, key)) Lock_manager.X;
  match tab.Schema.kind with
  | Schema.Btree_table ->
      let old_row =
        if tab.Schema.indexes = [] then None
        else
          Option.map
            (fun p -> Row.decode tab ~key ~payload:p)
            (Btree.find t.ctx (Btree.of_root tab.Schema.root) key)
      in
      Btree.update t.ctx t.alloc txn (Btree.of_root tab.Schema.root) ~key ~payload;
      (match old_row with
      | None -> ()
      | Some old_row ->
          List.iter2
            (fun (ix, old_v) (_, new_v) ->
              if not (Row.equal_value old_v new_v) then begin
                Index.remove t.ctx t.alloc txn ix ~value:old_v ~pk:key;
                Index.add t.ctx t.alloc txn ix ~value:new_v ~pk:key
              end)
            (indexed_values tab old_row) (indexed_values tab values))
  | Schema.Heap_table ->
      let found = ref false in
      Heap.iter t.ctx (Heap.of_first tab.Schema.root) ~f:(fun rid stored ->
          if (not !found) && String.length stored >= 8 && String.get_int64_le stored 0 = key
          then begin
            found := true;
            let full = Rw_wal.Codec.encoder () in
            Rw_wal.Codec.i64 full key;
            Heap.update t.ctx txn (Heap.of_first tab.Schema.root) rid
              (Rw_wal.Codec.to_string full ^ payload)
          end);
      if not !found then raise Not_found

let delete t txn ~table ~key =
  guard_writable t;
  let tab = find_table t table in
  Txn_manager.lock t.txns txn (Lock_manager.Table tab.Schema.id) Lock_manager.IX;
  Txn_manager.lock t.txns txn (Lock_manager.Row (tab.Schema.id, key)) Lock_manager.X;
  match tab.Schema.kind with
  | Schema.Btree_table ->
      let old_row =
        if tab.Schema.indexes = [] then None
        else
          Option.map
            (fun p -> Row.decode tab ~key ~payload:p)
            (Btree.find t.ctx (Btree.of_root tab.Schema.root) key)
      in
      Btree.delete t.ctx txn (Btree.of_root tab.Schema.root) ~key;
      (match old_row with
      | None -> ()
      | Some old_row ->
          List.iter
            (fun (ix, v) -> Index.remove t.ctx t.alloc txn ix ~value:v ~pk:key)
            (indexed_values tab old_row))
  | Schema.Heap_table ->
      let found = ref false in
      Heap.iter t.ctx (Heap.of_first tab.Schema.root) ~f:(fun rid stored ->
          if (not !found) && String.length stored >= 8 && String.get_int64_le stored 0 = key
          then begin
            found := true;
            Heap.delete t.ctx txn (Heap.of_first tab.Schema.root) rid
          end);
      if not !found then raise Not_found

let heap_row tab stored =
  let key = String.get_int64_le stored 0 in
  Row.decode tab ~key ~payload:(String.sub stored 8 (String.length stored - 8))

let get t ~table ~key =
  let tab = find_table t table in
  match tab.Schema.kind with
  | Schema.Btree_table ->
      Option.map
        (fun payload -> Row.decode tab ~key ~payload)
        (Btree.find t.ctx (Btree.of_root tab.Schema.root) key)
  | Schema.Heap_table ->
      let result = ref None in
      Heap.iter t.ctx (Heap.of_first tab.Schema.root) ~f:(fun _ stored ->
          if !result = None && String.length stored >= 8 && String.get_int64_le stored 0 = key
          then result := Some (heap_row tab stored));
      !result

let range t ~table ~lo ~hi ~f =
  let tab = find_table t table in
  match tab.Schema.kind with
  | Schema.Btree_table ->
      Btree.range t.ctx (Btree.of_root tab.Schema.root) ~lo ~hi ~f:(fun key payload ->
          f (Row.decode tab ~key ~payload))
  | Schema.Heap_table ->
      Heap.iter t.ctx (Heap.of_first tab.Schema.root) ~f:(fun _ stored ->
          let key = String.get_int64_le stored 0 in
          if key >= lo && key <= hi then f (heap_row tab stored))

let scan t ~table ~f = range t ~table ~lo:Int64.min_int ~hi:Int64.max_int ~f

let row_count t ~table =
  let n = ref 0 in
  scan t ~table ~f:(fun _ -> incr n);
  !n

(* --- retention --- *)

let set_retention t v = Retention.set_interval t.retention v
let retention t = Retention.interval t.retention
let enforce_retention t =
  (* Truncation must not reclaim log an outstanding restart backlog still
     needs for redo; finish recovery first. *)
  recovery_drain_all t;
  Retention.enforce t.retention ~log:t.log ~now_us:(now_us t)

(* --- snapshots --- *)

let view_over_pool ~name ~base ~pool ~snapshot =
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log:base.log ~locks in
  let ctx = Access_ctx.create ~pool ~txns ~log:base.log ~clock:base.clock () in
  {
    base with
    name;
    pool;
    locks;
    txns;
    ctx;
    (* Read-only views never allocate; scanning the allocation map here
       would needlessly materialise snapshot pages. *)
    alloc = Alloc_map.empty_handle ();
    read_only = true;
    snapshot;
    cow = None;
    recovery_stats = None;
    instant = None;
  }

let create_cow_snapshot t ~name =
  guard_writable t;
  (* Snapshots read pages beneath the pool, so the on-disk state must be
     fully recovered before one is taken. *)
  recovery_drain_all t;
  let cow =
    Rw_core.Cow_snapshot.create ~name ~ctx:t.ctx ~primary_pool:t.pool ~primary_disk:t.disk
      ~txns:t.txns ~log:t.log ~clock:t.clock ~media:t.media ()
  in
  t.last_checkpoint_wall <- now_us t;
  let view = view_over_pool ~name ~base:t ~pool:(Rw_core.Cow_snapshot.pool cow) ~snapshot:None in
  view.cow <- Some cow;
  view

let cow_handle t = t.cow

let create_as_of_snapshot ?(shared = true) t ~name ~wall_us =
  guard_writable t;
  (* As-of rewinds start from current on-disk images; drain any instant
     restart backlog so those images are consistent. *)
  recovery_drain_all t;
  let snap =
    As_of_snapshot.create ~name ~wall_us ~log:t.log ~primary_pool:t.pool ~primary_disk:t.disk
      ~txns:t.txns ~clock:t.clock ~media:t.media
      ?shared:(if shared then Some t.prepared_cache else None)
      ()
  in
  t.last_checkpoint_wall <- now_us t;
  view_over_pool ~name ~base:t ~pool:(As_of_snapshot.pool snap) ~snapshot:(Some snap)

(* --- persistence --- *)

(* Bumped whenever the on-disk encoding changes; "0002" added the CRC
   trailer to every log record. *)
let magic = "RWDB0002"

let save t ~path =
  guard_writable t;
  (* Quiesce: every page and the whole log become durable first. *)
  ignore (checkpoint t);
  let e = Rw_wal.Codec.encoder () in
  Rw_wal.Codec.str16 e t.name;
  Rw_wal.Codec.f64 e (now_us t);
  (match Retention.interval t.retention with
  | Some r ->
      Rw_wal.Codec.u8 e 1;
      Rw_wal.Codec.f64 e r
  | None -> Rw_wal.Codec.u8 e 0);
  Rw_wal.Codec.u32 e (Access_ctx.fpi_frequency t.ctx);
  Rw_wal.Codec.u32 e (Disk.page_count t.disk);
  let written = Disk.written_pages t.disk in
  Rw_wal.Codec.u32 e written;
  for i = 0 to Disk.page_count t.disk - 1 do
    let pid = Page_id.of_int i in
    if Disk.has_page t.disk pid then begin
      Rw_wal.Codec.u32 e i;
      Rw_wal.Codec.str32 e (Bytes.to_string (Disk.read_page_nocost t.disk pid))
    end
  done;
  let entries = Log_manager.dump_entries t.log in
  Rw_wal.Codec.u32 e (List.length entries);
  List.iter
    (fun (lsn, data) ->
      Rw_wal.Codec.i64 e (Lsn.to_int64 lsn);
      Rw_wal.Codec.str32 e data)
    entries;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_string oc (Rw_wal.Codec.to_string e))

let load ~clock ~media ?log_media ?pool_capacity:(pool_cap = 512) ?(log_cache_blocks = 128)
    ?(log_block_bytes = 65536) ?log_segment_bytes ~path () =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length contents < 8 || String.sub contents 0 8 <> magic then
    failwith (Printf.sprintf "Database.load: %s is not a rewinddb image" path);
  let d = Rw_wal.Codec.decoder_at contents ~pos:8 in
  let name = Rw_wal.Codec.get_str16 d in
  let saved_wall = Rw_wal.Codec.get_f64 d in
  let retention_us =
    if Rw_wal.Codec.get_u8 d = 1 then Some (Rw_wal.Codec.get_f64 d) else None
  in
  let fpi_frequency = Rw_wal.Codec.get_u32 d in
  let page_count = Rw_wal.Codec.get_u32 d in
  let written = Rw_wal.Codec.get_u32 d in
  (* The simulated clock resumes from where the image left off, so saved
     history keeps its wall-clock meaning for as-of queries. *)
  if Sim_clock.now_us clock < saved_wall then
    Sim_clock.advance_us clock (saved_wall -. Sim_clock.now_us clock);
  let log_media = Option.value log_media ~default:media in
  let disk = Disk.create ~clock ~media () in
  for _ = 1 to written do
    let pid = Page_id.of_int (Rw_wal.Codec.get_u32 d) in
    let image = Rw_wal.Codec.get_str32 d in
    Disk.write_page_nocost disk pid (Bytes.of_string image)
  done;
  Disk.extend disk page_count;
  let log =
    Log_manager.create ~clock ~media:log_media ~cache_blocks:log_cache_blocks
      ~block_bytes:log_block_bytes ?segment_bytes:log_segment_bytes ()
  in
  let n = Rw_wal.Codec.get_u32 d in
  let entries =
    List.init n (fun _ ->
        let lsn = Lsn.of_int64 (Rw_wal.Codec.get_i64 d) in
        let data = Rw_wal.Codec.get_str32 d in
        (lsn, data))
  in
  Log_manager.restore_entries log entries;
  let t =
    assemble ~name ~clock ~media ~log_media ~disk ~log ~pool_capacity:pool_cap ~fpi_frequency
      ~checkpoint_interval_us:30_000_000.0 ~read_only:false ~snapshot:None ~instant:None
      ~redo_domains:1 ~pool_opt:None ()
  in
  Retention.set_interval t.retention retention_us;
  (* The image was checkpoint-consistent, so restart recovery is a cheap
     formality that also reseeds the transaction-id counter. *)
  let stats =
    Recovery.recover ~now_us:(fun () -> Sim_clock.now_us clock) ~log:t.log ~pool:t.pool ()
  in
  Txn_manager.set_next_id t.txns (Rw_wal.Txn_id.next stats.Recovery.analysis.Recovery.max_txn_id);
  t.recovery_stats <- Some stats;
  t.alloc <- Alloc_map.open_ t.ctx;
  t

(* --- scrubbing --- *)

let scrub t =
  (* Sweep every written page looking for residual damage (bit rot,
     applied torn writes); corrupt pages are repaired from the log and
     unrepairable ones land in quarantine instead of failing the scrub.
     Returns the number of pages repaired.

     The sweep is staged across the shared domain pool in batches: the
     coordinator reads each non-resident page through the priced,
     fault-consulting path in ascending page order, workers verify
     checksums on those private copies round-robin, and the coordinator
     publishes verdicts — again in ascending page order — admitting
     clean pages into the pool with exactly a fetch miss's bookkeeping,
     repairing (or quarantining) the rest, and touching pages that were
     already resident through [with_page] just as the serial sweep did.
     Detection, repair and quarantine outcomes are identical under any
     fan-out including 1; fan-out only narrows modeled elapsed time
     (each partition's sweep reads are assumed to stream concurrently,
     so the clock is credited down to the slowest partition). *)
  let repaired_before = (Disk.stats t.disk).Rw_storage.Io_stats.pages_repaired in
  let wal_flush lsn = Txn_manager.flush_log t.txns ~upto:lsn in
  let candidates = ref [] in
  for i = Disk.page_count t.disk - 1 downto 0 do
    let pid = Page_id.of_int i in
    if Disk.has_page t.disk pid then candidates := pid :: !candidates
  done;
  (* Batch bound: keeps residency classification fresh relative to the
     evictions our own admissions cause, and bounds gather-copy memory. *)
  let batch_size = max 1 (Buffer_pool.capacity t.pool / 2) in
  let sweep_batch batch =
    (* Gather: priced reads of the pages not resident (and not
       quarantined) right now, ascending, each timed so its I/O can be
       attributed to a round-robin partition. *)
    let items =
      List.filter_map
        (fun pid ->
          if Buffer_pool.mem t.pool pid || Page_repair.Quarantine.mem t.quarantine pid then
            None
          else begin
            let t0 = Sim_clock.now_us t.clock in
            let page = Disk.read_page_retrying t.disk pid in
            Some (pid, page, Sim_clock.now_us t.clock -. t0)
          end)
        batch
    in
    let arr = Array.of_list items in
    let n = Array.length arr in
    let ok = Array.make n false in
    if n > 0 then begin
      let fanout = Domain_pool.effective_fanout n in
      Domain_pool.run ~participants:fanout (fun w ->
          let i = ref w in
          while !i < n do
            let _, page, _ = arr.(!i) in
            ok.(!i) <- Rw_storage.Page.verify page;
            i := !i + fanout
          done);
      if fanout > 1 then begin
        let per = Array.make fanout 0.0 in
        Array.iteri (fun i (_, _, dt) -> per.(i mod fanout) <- per.(i mod fanout) +. dt) arr;
        let total = Array.fold_left ( +. ) 0.0 per in
        let slowest = Array.fold_left Float.max 0.0 per in
        Sim_clock.credit_us t.clock (total -. slowest)
      end
    end;
    (* Publish, ascending: clean pages enter the pool as a fetch miss
       would; corrupt ones repair (or quarantine) exactly as the
       self-healing source does.  Pages that were resident at gather are
       touched through the pool — re-reading via the healing source if
       one of our own admissions evicted them meanwhile. *)
    let verdicts = Hashtbl.create (2 * (n + 1)) in
    Array.iteri
      (fun i (pid, page, _) -> Hashtbl.replace verdicts (Page_id.to_int pid) (page, ok.(i)))
      arr;
    List.iter
      (fun pid ->
        match Hashtbl.find_opt verdicts (Page_id.to_int pid) with
        | Some (page, true) -> Buffer_pool.admit t.pool pid page
        | Some (_, false) -> (
            let st = Disk.stats t.disk in
            st.Rw_storage.Io_stats.corruptions_detected <-
              st.Rw_storage.Io_stats.corruptions_detected + 1;
            match Page_repair.repair_to_disk ~log:t.log ~disk:t.disk ~wal_flush pid with
            | page -> Buffer_pool.admit t.pool pid page
            | exception Page_repair.Unrepairable { reason; _ } ->
                Page_repair.Quarantine.add t.quarantine pid reason)
        | None -> (
            if not (Page_repair.Quarantine.mem t.quarantine pid) then
              try
                Rw_buffer.Buffer_pool.with_page t.pool pid ~mode:Rw_buffer.Latch.Shared
                  (fun _ -> ())
              with Rw_recovery.Page_repair.Quarantined _ -> ()))
      batch
  in
  let rec sweep = function
    | [] -> ()
    | remaining ->
        let rec split k acc rest =
          match rest with
          | [] -> (List.rev acc, [])
          | _ when k = 0 -> (List.rev acc, rest)
          | x :: tl -> split (k - 1) (x :: acc) tl
        in
        let batch, rest = split batch_size [] remaining in
        sweep_batch batch;
        sweep rest
  in
  sweep !candidates;
  (Disk.stats t.disk).Rw_storage.Io_stats.pages_repaired - repaired_before

(* --- crash simulation --- *)

let crash_and_reopen ?(instant = false) ?redo_domains t =
  guard_writable t;
  let redo_domains = Option.value redo_domains ~default:t.redo_domains in
  Buffer_pool.drop_all t.pool;
  (* Torn writes bite now: pages whose last write was marked tearable keep
     only a sector prefix of it, and the log may keep a torn tail. *)
  ignore (Disk.apply_crash t.disk);
  Log_manager.crash t.log;
  let now_us_clock () = Sim_clock.now_us t.clock in
  if instant then begin
    (* Instant restart: tail repair + analysis only, then open for business.
       Backlog pages are recovered on first touch (the pool source wrapper
       installed by [assemble]) or by the background sweeper; the first
       fetches below — boot page, allocation map — already go through it. *)
    let inst = Recovery.Instant.open_ ~now_us:now_us_clock ~log:t.log () in
    let fresh =
      assemble ~name:t.name ~clock:t.clock ~media:t.media ~log_media:t.log_media ~disk:t.disk
        ~log:t.log ~pool_capacity:t.pool_capacity
        ~fpi_frequency:(Access_ctx.fpi_frequency t.ctx)
        ~checkpoint_interval_us:t.checkpoint_interval_us ~read_only:false ~snapshot:None
        ~instant:(Some inst) ~redo_domains ~pool_opt:None ()
    in
    let stats = Recovery.Instant.stats inst in
    Txn_manager.set_next_id fresh.txns
      (Rw_wal.Txn_id.next stats.Recovery.analysis.Recovery.max_txn_id);
    fresh.recovery_stats <- Some stats;
    fresh.alloc <- Alloc_map.open_ fresh.ctx;
    (* No checkpoint yet: the master record must not advance past pages
       still awaiting redo.  The first explicit or automatic checkpoint
       drains the backlog and then advances it. *)
    Recovery.Instant.mark_open inst;
    fresh
  end
  else begin
    let fresh =
      assemble ~name:t.name ~clock:t.clock ~media:t.media ~log_media:t.log_media ~disk:t.disk
        ~log:t.log ~pool_capacity:t.pool_capacity
        ~fpi_frequency:(Access_ctx.fpi_frequency t.ctx)
        ~checkpoint_interval_us:t.checkpoint_interval_us ~read_only:false ~snapshot:None
        ~instant:None ~redo_domains ~pool_opt:None ()
    in
    let stats =
      Recovery.recover ~redo_domains ~now_us:now_us_clock ~log:fresh.log ~pool:fresh.pool ()
    in
    Txn_manager.set_next_id fresh.txns
      (Rw_wal.Txn_id.next stats.Recovery.analysis.Recovery.max_txn_id);
    fresh.recovery_stats <- Some stats;
    (* Allocation state may have changed during redo/undo; rebuild. *)
    fresh.alloc <- Alloc_map.open_ fresh.ctx;
    ignore (checkpoint fresh);
    fresh
  end

(* --- replication support --- *)

let add_retention_floor t ~name f = Retention.register_floor t.retention ~name f
let remove_retention_floor t ~name = Retention.unregister_floor t.retention ~name

let reopen_redo_only ?redo_domains t =
  let redo_domains = Option.value redo_domains ~default:t.redo_domains in
  Buffer_pool.drop_all t.pool;
  ignore (Disk.apply_crash t.disk);
  Log_manager.crash t.log;
  let now_us_clock () = Sim_clock.now_us t.clock in
  let fresh =
    assemble ~name:t.name ~clock:t.clock ~media:t.media ~log_media:t.log_media ~disk:t.disk
      ~log:t.log ~pool_capacity:t.pool_capacity
      ~fpi_frequency:(Access_ctx.fpi_frequency t.ctx)
      ~checkpoint_interval_us:t.checkpoint_interval_us ~read_only:false ~snapshot:None
      ~instant:None ~redo_domains ~pool_opt:None ()
  in
  let stats =
    Recovery.recover_redo_only ~redo_domains ~now_us:now_us_clock ~log:fresh.log
      ~pool:fresh.pool ()
  in
  Txn_manager.set_next_id fresh.txns
    (Rw_wal.Txn_id.next stats.Recovery.analysis.Recovery.max_txn_id);
  fresh.recovery_stats <- Some stats;
  fresh.alloc <- Alloc_map.open_ fresh.ctx;
  (* No checkpoint taken and nothing appended: the log stays a
     byte-identical prefix of the primary's stream, and the master record
     stays wherever the replica last advanced it — the caller resumes
     catch-up from there. *)
  fresh
