(** The "generalized system" sketched in the paper's §6.4: given backups
    taken at predetermined points and the transaction log, reach a past
    point in time by whichever route is estimated cheaper — rolling a
    backup {e forward} (traditional restore) or rolling the current state
    {e backward} (the paper's as-of rewind).

    Estimates come from the same media cost model the engine runs on: the
    rewind's cost is dominated by random log reads proportional to the
    data that will be touched and the distance travelled; the restore's by
    sequentially moving the whole database plus the replay span.  The
    [pages_hint] parameter is the caller's guess at how many pages the
    subsequent queries will touch — the quantity the paper identifies as
    the crossover variable. *)

type route = Rewind | Roll_forward of Backup.t

type plan = {
  route : route;
  rewind_estimate_s : float;
  restore_estimate_s : float;  (** infinity when no usable backup exists *)
}

val plan : db:Database.t -> backups:Backup.t list -> wall_us:float -> pages_hint:int -> plan
(** Estimate both routes to the state as of [wall_us] and pick the
    cheaper.  Only backups taken at or before [wall_us] are considered. *)

val materialise :
  ?prewarm:bool -> db:Database.t -> name:string -> wall_us:float -> plan -> Database.t
(** Execute the chosen route; returns a read-only view as of [wall_us].
    With [prewarm] (default false) a rewind view is immediately warmed via
    {!warm}, trading up-front sequential log I/O for random-read-free
    scans. *)

val warm : Database.t -> int
(** Batch-materialize every page that changed after the view's split point
    into its sparse file ({!Rw_core.As_of_snapshot.materialize_batch}),
    so subsequent scans never rewind on the fly.  Returns the number of
    pages materialized; no-op (0) on a primary database or a restored
    backup. *)

val pp_plan : Format.formatter -> plan -> unit
