(** Top-level engine: a registry of databases and snapshot views sharing one
    simulated clock and media configuration.  This is the surface the SQL
    layer executes against ([CREATE DATABASE ... AS SNAPSHOT OF ...]). *)

type t

exception Database_exists of string
exception No_such_database of string

val create :
  ?media:Rw_storage.Media.t -> ?log_media:Rw_storage.Media.t -> ?seed_clock_us:float -> unit -> t
(** Default media is {!Rw_storage.Media.ssd} for both data and log. *)

val clock : t -> Rw_storage.Sim_clock.t
val now_us : t -> float
val now_s : t -> float
val media : t -> Rw_storage.Media.t

val create_database :
  t ->
  ?fpi_frequency:int ->
  ?pool_capacity:int ->
  ?checkpoint_interval_us:float ->
  ?redo_domains:int ->
  ?log_cache_blocks:int ->
  ?log_block_bytes:int ->
  ?log_segment_bytes:int ->
  ?fault_plan:Rw_storage.Fault_plan.t ->
  string ->
  Database.t

val attach_database : t -> Database.t -> Database.t
(** Register an externally constructed database (e.g. {!Database.load}
    output) under its own name.  It must share this engine's clock. *)

val find_database : t -> string -> Database.t option
val find_database_exn : t -> string -> Database.t
val database_names : t -> string list

val create_snapshot : ?shared:bool -> t -> of_:string -> name:string -> wall_us:float -> Database.t
(** Create an as-of snapshot of database [of_] and register it under
    [name].  [shared] is passed through to
    {!Database.create_as_of_snapshot} (default [true]: read through the
    shared prepared-page cache). *)

val drop_database : t -> string -> unit
(** Unregister a database or snapshot view (dropping a snapshot releases
    its sparse file). *)
