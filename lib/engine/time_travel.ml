module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Disk = Rw_storage.Disk
module Media = Rw_storage.Media
module Log_manager = Rw_wal.Log_manager
module Split_lsn = Rw_core.Split_lsn

type route = Rewind | Roll_forward of Backup.t

type plan = { route : route; rewind_estimate_s : float; restore_estimate_s : float }

(* Rough size of one log record in this engine; only used for estimating
   how many modifications a log region holds. *)
let avg_record_bytes = 128.0

let seq_s media bytes =
  Media.transfer_us ~mb_s:media.Media.seq_read_mb_s bytes /. 1_000_000.0

let rand_read_s media = media.Media.rand_read_lat_us /. 1_000_000.0

let estimate_rewind ~db ~split ~pages_hint =
  let media = Disk.media (Database.disk db) in
  let log = Database.log db in
  let span_bytes =
    max 0 (Lsn.to_int (Log_manager.end_lsn log) - Lsn.to_int split.Split_lsn.split_lsn)
  in
  (* Creation: one analysis scan bounded by the nearest checkpoint, plus
     the checkpoint flush; approximate the latter with the current dirty
     set. *)
  let analysis_bytes =
    let base =
      if Lsn.is_nil split.Split_lsn.base_checkpoint then Log_manager.first_lsn log
      else split.Split_lsn.base_checkpoint
    in
    max 0 (Lsn.to_int split.Split_lsn.split_lsn - Lsn.to_int base)
  in
  let dirty = List.length (Rw_buffer.Buffer_pool.dirty_page_table (Database.pool db)) in
  let creation_s =
    seq_s media analysis_bytes
    +. (float_of_int dirty *. media.Media.rand_write_lat_us /. 1_000_000.0)
  in
  (* Query: each touched page replays its share of the modifications in
     the travelled span, each a potential random log read. *)
  let hot_pages = max 1 (Disk.written_pages (Database.disk db)) in
  let mods_in_span = float_of_int span_bytes /. avg_record_bytes in
  let undo_ios = float_of_int pages_hint *. mods_in_span /. float_of_int hot_pages in
  let query_s =
    (undo_ios *. rand_read_s media)
    +. (float_of_int pages_hint *. rand_read_s media (* page fetch + sparse write *))
  in
  creation_s +. query_s

let estimate_restore ~db ~split backup =
  let media = Disk.media (Database.disk db) in
  let log = Database.log db in
  let size = float_of_int (Backup.size_bytes backup) in
  let copy_s =
    (size /. media.Media.seq_read_mb_s /. 1_000_000.0)
    +. (size /. media.Media.seq_write_mb_s /. 1_000_000.0)
  in
  (* The restore processes the whole retained log tail: replay up to the
     split, initialization beyond it. *)
  let log_bytes =
    max 0 (Lsn.to_int (Log_manager.end_lsn log) - Lsn.to_int (Backup.taken_at_lsn backup))
  in
  ignore split;
  copy_s +. seq_s media log_bytes

let plan ~db ~backups ~wall_us ~pages_hint =
  let split = Split_lsn.find ~log:(Database.log db) ~wall_us in
  let rewind_estimate_s = estimate_rewind ~db ~split ~pages_hint in
  let usable = List.filter (fun b -> Backup.wall_us b <= wall_us) backups in
  (* The most recent usable backup minimises the replay span. *)
  let best =
    List.fold_left
      (fun acc b ->
        match acc with
        | Some best when Backup.wall_us best >= Backup.wall_us b -> acc
        | _ -> Some b)
      None usable
  in
  match best with
  | None -> { route = Rewind; rewind_estimate_s; restore_estimate_s = infinity }
  | Some backup ->
      let restore_estimate_s = estimate_restore ~db ~split backup in
      let route = if rewind_estimate_s <= restore_estimate_s then Rewind else Roll_forward backup in
      { route; rewind_estimate_s; restore_estimate_s }

let warm view =
  match Database.snapshot_handle view with
  | None -> 0
  | Some snap ->
      let log = Database.log view in
      let split = Rw_core.As_of_snapshot.split_lsn snap in
      (* Only pages with chain records after the split need rewinding; the
         rest are served from their primary images as-is. *)
      let pages = Log_manager.pages_changed_since log ~since:split in
      Rw_core.As_of_snapshot.materialize_batch snap pages

let materialise ?(prewarm = false) ~db ~name ~wall_us plan =
  let view =
    match plan.route with
    | Rewind -> Database.create_as_of_snapshot db ~name ~wall_us
    | Roll_forward backup -> Backup.restore_as_of backup ~from:db ~wall_us
  in
  if prewarm then ignore (warm view);
  view

let pp_plan fmt t =
  Format.fprintf fmt "route=%s rewind~%.3fs restore~%.3fs"
    (match t.route with Rewind -> "rewind" | Roll_forward _ -> "roll-forward")
    t.rewind_estimate_s t.restore_estimate_s
