module Sim_clock = Rw_storage.Sim_clock
module Prng = Rw_storage.Prng

type fault_rates = { drop : float; duplicate : float; delay : float; partition : float }

let no_faults = { drop = 0.0; duplicate = 0.0; delay = 0.0; partition = 0.0 }

type outcome = Delivered of int | Dropped | Partitioned

type t = {
  clock : Sim_clock.t;
  rng : Prng.t;
  rates : fault_rates;
  latency_us : float;
  us_per_byte : float;
  delay_us : float;
  partition_sends : int;
  mutable partition_left : int;
  mutable sends : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable partitioned : int;
}

let create ~clock ?(seed = 0) ?(rates = no_faults) ?(latency_us = 200.0) ?(mb_per_s = 100.0)
    ?(delay_us = 2_000.0) ?(partition_sends = 4) () =
  {
    clock;
    rng = Prng.create (seed lxor 0x5eed_11);
    rates;
    latency_us;
    us_per_byte = 1.0 /. (mb_per_s *. 1024.0 *. 1024.0 /. 1_000_000.0);
    delay_us;
    partition_sends;
    partition_left = 0;
    sends = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    partitioned = 0;
  }

let partition t ~sends = t.partition_left <- max t.partition_left sends
let heal t = t.partition_left <- 0
let connected t = t.partition_left = 0

let send t ~bytes =
  t.sends <- t.sends + 1;
  (* One draw per fault class per send, fixed order (partition, drop,
     duplicate, delay): the schedule of any one class is stable under
     changes to the others' rates. *)
  let p_part = Prng.float t.rng 1.0 in
  let p_drop = Prng.float t.rng 1.0 in
  let p_dup = Prng.float t.rng 1.0 in
  let p_delay = Prng.float t.rng 1.0 in
  if t.partition_left = 0 && p_part < t.rates.partition then
    t.partition_left <- t.partition_sends;
  if t.partition_left > 0 then begin
    t.partition_left <- t.partition_left - 1;
    t.partitioned <- t.partitioned + 1;
    (* The sender's timeout burns the round-trip latency. *)
    Sim_clock.advance_us t.clock t.latency_us;
    Partitioned
  end
  else if p_drop < t.rates.drop then begin
    t.dropped <- t.dropped + 1;
    Sim_clock.advance_us t.clock t.latency_us;
    Dropped
  end
  else begin
    let stall =
      if p_delay < t.rates.delay then begin
        t.delayed <- t.delayed + 1;
        t.delay_us
      end
      else 0.0
    in
    Sim_clock.advance_us t.clock
      (t.latency_us +. (float_of_int bytes *. t.us_per_byte) +. stall);
    t.delivered <- t.delivered + 1;
    if p_dup < t.rates.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Delivered 2
    end
    else Delivered 1
  end

type stats = {
  sends : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  partitioned : int;
}

let stats (t : t) =
  {
    sends = t.sends;
    delivered = t.delivered;
    dropped = t.dropped;
    duplicated = t.duplicated;
    delayed = t.delayed;
    partitioned = t.partitioned;
  }
