(** Primary failure: promote the most-caught-up replica, rejoin the old
    primary as a replica.

    Ordering (DESIGN.md §13): first record the promotion horizon — the
    promoted replica's end of log, which is the {e divergence point}: every
    record below it is shared history, everything the dead primary wrote at
    or above it never shipped and therefore never committed on the
    surviving timeline.  Then the replica runs one full restart recovery
    (tail repair, redo, loser undo {e with} CLRs, fresh checkpoint) — now
    it is a primary and owns the log stream, so appending is finally
    allowed.  A demoted primary that comes back {!rejoin}s by truncating
    its divergent tail at the horizon, rewinding any page written ahead of
    it from the retained log, and resuming committed-only catch-up redo as
    an ordinary replica of the new primary. *)

val most_caught_up : Replica.t list -> Replica.t
(** The replica with the highest ingested LSN (the failover candidate).
    Raises [Invalid_argument] on an empty list. *)

val promote : Replica.t -> Rw_engine.Database.t * Rw_storage.Lsn.t
(** Promote the replica to primary.  Returns the new primary engine and
    the promotion horizon (the divergence point to pass to {!rejoin}).
    The replica handle must not be used afterwards.  Bumps the
    [repl.failovers] probe. *)

val rejoin :
  ?redo_domains:int -> name:string -> at:Rw_storage.Lsn.t -> Rw_engine.Database.t -> Replica.t
(** Bring the demoted (crashed) primary back as a replica: discard
    volatile state, truncate the log at the divergence point [at], rewind
    every disk page stamped at or past [at] from the retained log
    ({!Rw_recovery.Page_repair.rebuild}; a page born on the divergent
    timeline resets to a never-written page), and reopen redo-only.
    Attach a {!Shipper} against the new primary to resume catch-up.
    Raises {!Rw_recovery.Page_repair.Unrepairable} if retained history
    cannot rewind some pre-divergence page (re-seed with
    {!Replica.of_primary} instead). *)
