module Lsn = Rw_storage.Lsn
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Recovery = Rw_recovery.Recovery
module Database = Rw_engine.Database

exception Stale_horizon of { requested_us : float; applied_us : float }

type t = {
  name : string;
  mutable db : Database.t;
  mutable next_lsn : Lsn.t;
  mutable applied_wall_us : float;
  redo_domains : int;
}

(* The applied horizon, recomputed from the log alone (restart, rejoin):
   the newest commit/checkpoint wall time at or after the master record.
   Scanning only from the recovery checkpoint may under-estimate — that is
   safe: a conservative horizon refuses reads it could have served, never
   serves reads it cannot prove. *)
let newest_wall log =
  let from =
    let c = Log_manager.last_checkpoint log in
    if Lsn.is_nil c then Log_manager.first_lsn log else c
  in
  let wall = ref 0.0 in
  Log_manager.iter_range_peek log ~from ~upto:(Log_manager.end_lsn log)
    (fun _lsn pk decode ->
      match pk.Log_record.p_kind with
      | Log_record.K_commit | Log_record.K_checkpoint -> (
          match (decode ()).Log_record.body with
          | Log_record.Commit { wall_us } | Log_record.Checkpoint { wall_us; _ } ->
              if wall_us > !wall then wall := wall_us
          | _ -> ())
      | _ -> ());
  !wall

let of_db ?(redo_domains = 2) ~name db =
  let log = Database.log db in
  { name; db; next_lsn = Log_manager.end_lsn log; applied_wall_us = newest_wall log; redo_domains }

let of_primary ?redo_domains ~name primary =
  let path = Filename.temp_file "rewind_repl" ".db" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* The initial base backup: checkpoint + full image.  The replica
         shares the primary's clock (one timeline) and media models, and
         its log after load ends exactly at the primary's end of log at
         save time — the first shipment resumes right there. *)
      Database.save primary ~path;
      let db =
        Database.load ~clock:(Database.clock primary) ~media:(Database.media primary)
          ~log_media:(Database.log_media primary) ~path ()
      in
      of_db ?redo_domains ~name db)

let db t = t.db
let name t = t.name
let next_lsn t = t.next_lsn
let applied_wall_us t = t.applied_wall_us

let ingest t (ex : Log_manager.export) =
  let log = Database.log t.db in
  let applied = Log_manager.ingest_entries log ex.Log_manager.ex_entries in
  if applied = 0 then 0
  else begin
    let from = t.next_lsn in
    let upto = Log_manager.end_lsn log in
    let redone =
      Recovery.redo_range ~domains:t.redo_domains ~log ~pool:(Database.pool t.db) ~from ~upto
        ()
    in
    (* Horizon + recovery-checkpoint maintenance from the fresh records. *)
    let ckpt = ref Lsn.nil in
    List.iter
      (fun (lsn, data) ->
        if Lsn.(lsn >= from) then
          let pk = Log_record.peek data in
          match pk.Log_record.p_kind with
          | Log_record.K_commit | Log_record.K_checkpoint ->
              (match (Log_record.decode data).Log_record.body with
              | Log_record.Commit { wall_us } | Log_record.Checkpoint { wall_us; _ } ->
                  if wall_us > t.applied_wall_us then t.applied_wall_us <- wall_us
              | _ -> ());
              if pk.Log_record.p_kind = Log_record.K_checkpoint && Lsn.(lsn > !ckpt) then
                ckpt := lsn
          | _ -> ())
      ex.Log_manager.ex_entries;
    t.next_lsn <- upto;
    if Lsn.(!ckpt > Lsn.nil) then begin
      (* The shipment carried one of the primary's checkpoints: flush the
         redone pages first, then advance the master record.  Order
         matters — the master record must never point past page state
         that is still volatile.  (The checkpoint's embedded dirty-page
         table describes the primary's pool, not ours; at worst restart
         analysis re-redoes a little, and redo is idempotent.) *)
      Buffer_pool.flush_all (Database.pool t.db);
      Log_manager.set_last_checkpoint log !ckpt
    end;
    redone
  end

let query_as_of ?(shared = true) t ~name ~wall_us =
  if wall_us > t.applied_wall_us then
    raise (Stale_horizon { requested_us = wall_us; applied_us = t.applied_wall_us });
  Database.create_as_of_snapshot ~shared t.db ~name ~wall_us

let crash_and_reopen t =
  t.db <- Database.reopen_redo_only ~redo_domains:t.redo_domains t.db;
  let log = Database.log t.db in
  t.next_lsn <- Log_manager.end_lsn log;
  t.applied_wall_us <- newest_wall log
