(** The shipping link between a primary and one replica.

    A deliberately unreliable pipe: every send draws from a seeded PRNG
    (one draw per fault class per send, in a fixed order, so adjusting one
    rate never reshuffles the schedule of the others — the same discipline
    as {!Rw_storage.Fault_plan}) and may be dropped, duplicated, delayed,
    or swallowed by a network partition.  Delivery latency and transfer
    time are priced on the shared simulated clock, so replica lag is a
    real, measurable quantity on the same timeline the primary runs on. *)

type fault_rates = {
  drop : float;  (** probability a send is lost in flight *)
  duplicate : float;  (** probability a delivered send arrives twice *)
  delay : float;  (** probability a delivered send is stalled *)
  partition : float;
      (** probability a send opens a partition window: it and the next
          [partition_sends - 1] sends all fail with [Partitioned] *)
}

val no_faults : fault_rates

type outcome =
  | Delivered of int
      (** the shipment arrived; the payload is presented this many times
          (2 under a duplicate fault — ingest must be idempotent) *)
  | Dropped  (** lost in flight; the sender times out and retries *)
  | Partitioned  (** the link is partitioned; nothing gets through *)

type t

val create :
  clock:Rw_storage.Sim_clock.t ->
  ?seed:int ->
  ?rates:fault_rates ->
  ?latency_us:float ->
  ?mb_per_s:float ->
  ?delay_us:float ->
  ?partition_sends:int ->
  unit ->
  t
(** [latency_us] (default 200) is the per-send round-trip floor,
    [mb_per_s] (default 100) the modeled link bandwidth, [delay_us]
    (default 2000) the extra stall under a delay fault, and
    [partition_sends] (default 4) the length of a spontaneous partition
    window. *)

val send : t -> bytes:int -> outcome
(** Attempt one shipment of [bytes] encoded log bytes.  Advances the
    shared clock by the latency (plus transfer time on delivery, plus the
    stall under a delay fault; a drop or partition burns the latency as a
    timeout). *)

val partition : t -> sends:int -> unit
(** Force a partition for the next [sends] sends (extends any window in
    progress) — the harness's network-cut lever. *)

val heal : t -> unit
(** Close any partition window immediately. *)

val connected : t -> bool

type stats = {
  sends : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  partitioned : int;
}

val stats : t -> stats
