(** The primary-side shipping loop for one attached replica.

    Each {!step} exports the next segment-granular unit from the primary's
    log ({!Rw_wal.Log_manager.export_from}), pushes it through the
    {!Channel}, and applies it on the replica — retrying dropped or
    partitioned sends with exponential backoff (priced on the shared
    clock) up to a bound, after which the shipper declares itself
    [Disconnected] and re-probes on the next step.

    Attaching a shipper registers a retention floor on the primary
    ({!Rw_engine.Database.add_retention_floor}) at the replica's resume
    point, so aggressive retention can never drop a sealed segment the
    replica has not received; {!detach} releases it. *)

type state =
  | Caught_up  (** every durable record has been shipped and applied *)
  | Lagging  (** durable records remain to ship *)
  | Disconnected  (** the retry budget was exhausted; will re-probe *)

type t

val attach :
  primary:Rw_engine.Database.t ->
  replica:Replica.t ->
  channel:Channel.t ->
  ?max_retries:int ->
  ?backoff_us:float ->
  unit ->
  t
(** [max_retries] (default 5) bounds send attempts per unit; [backoff_us]
    (default 1000) is the initial retry backoff, doubling per attempt. *)

val step : t -> bool
(** Ship at most one unit.  Returns [true] if a shipment was applied
    (call again — more may be pending); [false] when caught up or
    disconnected.  Raises {!Rw_wal.Log_manager.Log_truncated} if retention
    on an unprotected primary already dropped the resume point (the
    replica must be re-seeded). *)

val catch_up : t -> unit
(** Pump {!step} until caught up or disconnected. *)

val state : t -> state
val lag_segments : t -> int
(** Live primary segments not yet fully applied by the replica (0 =
    caught up); also published on the [repl.lag_segments] gauge. *)

val shipped_segments : t -> int
val shipped_bytes : t -> int
val retries : t -> int

val detach : t -> unit
(** Unregister the replica's retention floor on the primary.  The shipper
    must not be stepped afterwards. *)
