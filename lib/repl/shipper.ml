module Sim_clock = Rw_storage.Sim_clock
module Log_manager = Rw_wal.Log_manager
module Database = Rw_engine.Database
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

type state = Caught_up | Lagging | Disconnected

type t = {
  primary : Database.t;
  replica : Replica.t;
  channel : Channel.t;
  max_retries : int;
  backoff_us : float;
  floor_name : string;
  mutable state : state;
  mutable shipped_segments : int;
  mutable shipped_bytes : int;
  mutable retries : int;
}

let publish_lag t =
  let lag =
    Log_manager.segments_behind (Database.log t.primary) ~from:(Replica.next_lsn t.replica)
  in
  Obs.set Probes.repl_lag_segments (float_of_int lag);
  lag

let attach ~primary ~replica ~channel ?(max_retries = 5) ?(backoff_us = 1_000.0) () =
  let floor_name = "repl:" ^ Replica.name replica in
  (* The ship-horizon floor: retention on the primary never truncates at
     or above the replica's resume point, so a lagging replica can always
     catch up from its own log position. *)
  Database.add_retention_floor primary ~name:floor_name (fun () ->
      Some (Replica.next_lsn replica));
  let t =
    {
      primary;
      replica;
      channel;
      max_retries;
      backoff_us;
      floor_name;
      state = Caught_up;
      shipped_segments = 0;
      shipped_bytes = 0;
      retries = 0;
    }
  in
  t.state <- (if publish_lag t = 0 then Caught_up else Lagging);
  t

let export_bytes (ex : Log_manager.export) =
  List.fold_left (fun acc (_, d) -> acc + String.length d) 0 ex.Log_manager.ex_entries

let step t =
  match Log_manager.export_from (Database.log t.primary) ~from:(Replica.next_lsn t.replica) with
  | None ->
      t.state <- Caught_up;
      ignore (publish_lag t);
      false
  | Some ex ->
      t.state <- Lagging;
      let bytes = export_bytes ex in
      let rec attempt n backoff =
        match Channel.send t.channel ~bytes with
        | Channel.Delivered copies ->
            (* A duplicated delivery applies the same unit twice; ingest
               and redo are idempotent, so the second copy is a no-op —
               exercised deliberately under the duplicate fault. *)
            for _ = 1 to copies do
              ignore (Replica.ingest t.replica ex)
            done;
            t.shipped_segments <- t.shipped_segments + 1;
            t.shipped_bytes <- t.shipped_bytes + bytes;
            Obs.incr Probes.repl_segments_shipped;
            Obs.add Probes.repl_bytes_shipped bytes;
            t.state <- (if publish_lag t = 0 then Caught_up else Lagging);
            true
        | Channel.Dropped | Channel.Partitioned ->
            t.retries <- t.retries + 1;
            Obs.incr Probes.repl_retries;
            if n + 1 > t.max_retries then begin
              t.state <- Disconnected;
              ignore (publish_lag t);
              false
            end
            else begin
              (* Exponential backoff before the resend, priced on the
                 shared clock — the primary keeps running meanwhile. *)
              Sim_clock.advance_us (Database.clock t.primary) backoff;
              attempt (n + 1) (backoff *. 2.0)
            end
      in
      attempt 0 t.backoff_us

let catch_up t =
  while step t do
    ()
  done

let state t = t.state
let lag_segments t = publish_lag t
let shipped_segments t = t.shipped_segments
let shipped_bytes t = t.shipped_bytes
let retries t = t.retries
let detach t = Database.remove_retention_floor t.primary ~name:t.floor_name
