module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Page_repair = Rw_recovery.Page_repair
module Database = Rw_engine.Database
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes

let most_caught_up = function
  | [] -> invalid_arg "Failover.most_caught_up: no replicas"
  | r :: rest ->
      List.fold_left
        (fun best c -> if Lsn.(Replica.next_lsn c > Replica.next_lsn best) then c else best)
        r rest

let promote r =
  (* The horizon must be read before promotion: recovery appends (CLRs,
     End records, a checkpoint) past it, and those appends are the first
     records of the new timeline. *)
  let horizon = Replica.next_lsn r in
  let db = Database.crash_and_reopen (Replica.db r) in
  Obs.incr Probes.repl_failovers;
  (db, horizon)

let rejoin ?redo_domains ~name ~at old_primary =
  let disk = Database.disk old_primary in
  let log = Database.log old_primary in
  (* The old primary died mid-flight: volatile state is gone and pending
     torn writes bite, exactly as in [Database.crash_and_reopen]. *)
  Buffer_pool.drop_all (Database.pool old_primary);
  ignore (Disk.apply_crash disk);
  Log_manager.crash log;
  (* Cut the divergent tail: records at or past the failover point exist
     only on the dead timeline — they never shipped, so they never
     committed on the survivor.  The new primary's stream will recycle
     these LSNs. *)
  ignore (Log_manager.truncate_from log at);
  (* Any disk page written ahead of the cut carries divergent state; the
     retained log rewinds it to the shared prefix. *)
  for i = 0 to Disk.page_count disk - 1 do
    let pid = Page_id.of_int i in
    if Disk.has_page disk pid then begin
      let p = Disk.read_page_nocost disk pid in
      if Lsn.(Page.lsn p >= at) then begin
        match Page_repair.rebuild ~log pid with
        | page -> Disk.write_page_nocost disk pid page
        | exception (Page_repair.Unrepairable _ as e) ->
            if Array.length (Log_manager.chain_segment log pid ~from:at ~down_to:Lsn.nil) = 0
            then
              (* No retained history below the cut: the page was born on
                 the divergent timeline.  Reset it to a never-written
                 (zero) page; if the new timeline allocates the id, the
                 shipped Format record reformats it (nil < every LSN). *)
              Disk.write_page_nocost disk pid (Bytes.make Page.page_size '\000')
            else raise e
      end
    end
  done;
  let db = Database.reopen_redo_only ?redo_domains old_primary in
  Replica.of_db ?redo_domains ~name db
