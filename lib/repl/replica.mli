(** A replica engine: a byte-identical copy of the primary, kept current by
    continuous redo over the shipped log.

    The replica's transaction log is a strict prefix copy of the primary's
    stream — same bytes, same LSNs.  Catch-up is the paper's machinery run
    continuously: each shipped unit is appended to the local log
    ({!Rw_wal.Log_manager.ingest_entries}) and replayed onto the local
    pages ({!Rw_recovery.Recovery.redo_range}, optionally
    partition-parallel).  Nothing is ever appended locally — no CLRs, no
    checkpoints — so any prefix of the replica equals the primary at that
    LSN, and as-of queries over the local log return exactly what the
    primary would return.

    {b Recovery checkpoint.}  When a shipment carries one of the primary's
    checkpoint records, the replica flushes its redone pages and advances
    its {e master record} to that checkpoint.  A crashed replica restarts
    with {!crash_and_reopen} (redo-only recovery): analysis resumes from
    the persisted master record, not from the start of history — bounded
    catch-up cost, per-replica recovery points.

    {b Stale horizon.}  Reads are served locally at the replica's applied
    horizon.  Asking for a time the replica has not yet applied raises the
    typed {!Stale_horizon} instead of returning an answer that a lagging
    copy cannot yet prove — graceful degradation, never wrong data. *)

exception Stale_horizon of { requested_us : float; applied_us : float }

type t

val of_primary : ?redo_domains:int -> name:string -> Rw_engine.Database.t -> t
(** Seed a replica from the primary's current state (checkpointed full
    image through a temp file — the initial base backup) sharing the
    primary's clock and media models.  [redo_domains] (default 2) is the
    partition count for continuous catch-up redo. *)

val of_db : ?redo_domains:int -> name:string -> Rw_engine.Database.t -> t
(** Wrap an existing engine as a replica (a demoted primary rejoining
    after failover).  The applied horizon is recomputed from the log. *)

val db : t -> Rw_engine.Database.t
val name : t -> string

val next_lsn : t -> Rw_storage.Lsn.t
(** The resume point: first LSN not yet ingested (= the local end of
    log).  This is the value the shipper exports from and the retention
    floor pins on the primary. *)

val applied_wall_us : t -> float
(** The applied horizon: the newest commit/checkpoint wall-clock time
    redone locally.  As-of queries at or before this are exact. *)

val ingest : t -> Rw_wal.Log_manager.export -> int
(** Apply one shipped unit: append its records to the local log (duplicate
    deliveries skip idempotently), redo exactly the new range onto local
    pages, advance the applied horizon, and — if the shipment carried a
    primary checkpoint — flush redone pages and advance the local master
    record (the recovery checkpoint).  Returns operations redone. *)

val query_as_of : ?shared:bool -> t -> name:string -> wall_us:float -> Rw_engine.Database.t
(** A local read-only as-of view, byte-equal to the primary's view at the
    same time.  Raises {!Stale_horizon} when [wall_us] is past the applied
    horizon. *)

val crash_and_reopen : t -> unit
(** Kill and restart the replica: volatile state is lost, redo-only
    recovery resumes from the persisted recovery checkpoint, and catch-up
    continues from the old end of log (the handle is updated in place;
    {!db} returns the reopened engine). *)
