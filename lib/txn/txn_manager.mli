(** Transaction lifecycle: begin, page-op logging, commit, rollback.

    Every page modification a transaction makes is logged through
    {!log_page_op}, which threads the per-transaction backward chain
    ([prev_txn_lsn]).  Rollback walks that chain, writing {e compensation
    log records that carry undo information} (the paper's §4.2 extension)
    and applying the inverse operations through a caller-supplied page
    writer, so this module needs no knowledge of the buffer manager.

    Commit is split in two for group commit: {!commit_begin} appends the
    commit record, releases locks, and registers a durability waiter;
    {!flush_commits} (or any log flush routed through {!flush_log}) issues
    one priced device write for every waiter in the batch and acknowledges
    them.  The durability invariant: a transaction is reported [Committed]
    only once its commit record is on stable storage.  See DESIGN.md
    "Write path". *)

type t

type txn

type state =
  | Active
  | Committing
      (** Commit record appended and locks released, but durability not yet
          acknowledged — the record may still be in the unflushed log tail. *)
  | Committed
  | Aborted

val create : log:Rw_wal.Log_manager.t -> locks:Lock_manager.t -> t
val locks : t -> Lock_manager.t
val log : t -> Rw_wal.Log_manager.t

val set_group_commit : t -> max_batch_bytes:int -> max_delay_us:float -> unit
(** Tune the flush scheduler: a commit triggers a flush only once the
    unflushed log tail reaches [max_batch_bytes] or the oldest waiter has
    been pending [max_delay_us] of simulated time.  Both zero (the default)
    means flush on every commit — a batch of one. *)

val group_commit_enabled : t -> bool
(** Whether any batching policy is set (either threshold non-zero). *)

val pending_commits : t -> int
(** Number of committing transactions awaiting durability acknowledgement. *)

val set_next_id : t -> Rw_wal.Txn_id.t -> unit
(** Seed the id counter above every id seen in the log (after recovery). *)

val begin_txn : t -> txn
val txn_id : txn -> Rw_wal.Txn_id.t
val state : txn -> state
val last_lsn : txn -> Rw_storage.Lsn.t

val find : t -> Rw_wal.Txn_id.t -> txn option

val active_txns : t -> (Rw_wal.Txn_id.t * Rw_storage.Lsn.t) list
(** For the checkpoint record: (id, last LSN) of every active txn.
    [Committing] txns are excluded — their outcome is decided solely by
    whether their commit record is durable. *)

val active_count : t -> int
(** Number of transactions currently in the [Active] state (the
    [\sessions] display; committing txns are excluded exactly as in
    {!active_txns}). *)

val lock : t -> txn -> Lock_manager.resource -> Lock_manager.mode -> unit

val log_page_op :
  t ->
  txn ->
  page:Rw_storage.Page_id.t ->
  prev_page_lsn:Rw_storage.Lsn.t ->
  Rw_wal.Log_record.op ->
  Rw_storage.Lsn.t
(** Append a [Page_op] on the transaction's chain; returns its LSN.  The
    caller applies the op to the page and stamps the page LSN. *)

val commit_begin : t -> txn -> wall_us:float -> Rw_storage.Lsn.t
(** Append the commit record (carrying wall-clock time for SplitLSN
    searches), move the txn to [Committing], release its locks, and register
    a durability waiter.  Returns the commit record's LSN.  The state leaves
    [Active] atomically with the append, so a failure later in the commit
    path can never leave an active txn with a dangling commit record. *)

val flush_commits : t -> int
(** Force the log up to the newest pending commit record — one seek plus one
    sequential write for the whole batch — and acknowledge every covered
    waiter ([Committed] + [End] record).  Returns the number acknowledged. *)

val maybe_flush : t -> int
(** Run the flush scheduler: flush as {!flush_commits} if the batching
    policy's byte or delay threshold has tripped, else leave the batch
    accumulating.  Returns the number of commits acknowledged. *)

val ack_flushed : t -> int
(** Acknowledge waiters already covered by the durable boundary without
    issuing any flush (used after an externally triggered log flush, e.g. a
    checkpoint).  Returns the number acknowledged. *)

val flush_log : t -> upto:Rw_storage.Lsn.t -> unit
(** [Log_manager.flush] followed by {!ack_flushed}: the WAL-rule entry point
    used by the buffer pool, so page flushes that force the log also deliver
    any pending commit acknowledgements. *)

val commit : t -> txn -> wall_us:float -> unit
(** Compat single-transaction commit: {!commit_begin} then {!flush_commits}
    — a durable batch of one. *)

type page_writer = Rw_storage.Page_id.t -> (Rw_storage.Page.t -> Rw_storage.Lsn.t) -> unit
(** [writer pid f] must present page [pid] exclusively latched to [f];
    [f] returns the page's new LSN, which the writer uses to mark the frame
    dirty. *)

val rollback : t -> txn -> write_page:page_writer -> unit
(** Undo the transaction: walk its chain newest-first, log a CLR (with undo
    information) per undone operation, apply inverses via [write_page].
    Resumes correctly over pre-existing CLRs (partial rollbacks). *)

val finished : t -> txn -> unit
(** Forget a committed/aborted txn (bookkeeping).  Also accepts a
    [Committing] txn: it stays reachable through its durability waiter until
    acknowledged. *)
