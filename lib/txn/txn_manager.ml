module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats
module Txn_id = Rw_wal.Txn_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

type state = Active | Committing | Committed | Aborted

type txn = { id : Txn_id.t; mutable state : state; mutable last_lsn : Lsn.t }

(* A committing transaction waiting for its commit record to reach stable
   storage.  Acknowledged (state [Committed]) once a flush batch covers
   [commit_lsn]. *)
type waiter = { w_txn : txn; commit_lsn : Lsn.t; w_begin_us : float }

type policy = { max_batch_bytes : int; max_delay_us : float }

type t = {
  log : Log_manager.t;
  locks : Lock_manager.t;
  mutable next_id : Txn_id.t;
  active : (int, txn) Hashtbl.t;
  mutable policy : policy;
  mutable waiters : waiter list; (* newest first *)
  mutable oldest_wait_us : float; (* arrival time of the oldest waiter *)
}

(* The default policy flushes on every commit (a batch of one): exactly the
   pre-group-commit behaviour.  Batching is opt-in via [set_group_commit]. *)
let immediate = { max_batch_bytes = 0; max_delay_us = 0.0 }

let create ~log ~locks =
  {
    log;
    locks;
    next_id = Txn_id.of_int 1;
    active = Hashtbl.create 64;
    policy = immediate;
    waiters = [];
    oldest_wait_us = 0.0;
  }

let locks t = t.locks
let log t = t.log
let txn_id txn = txn.id
let state txn = txn.state
let last_lsn txn = txn.last_lsn

let set_group_commit t ~max_batch_bytes ~max_delay_us =
  if max_batch_bytes < 0 || max_delay_us < 0.0 then
    invalid_arg "Txn_manager.set_group_commit: negative threshold";
  t.policy <- { max_batch_bytes; max_delay_us }

let group_commit_enabled t = t.policy.max_batch_bytes > 0 || t.policy.max_delay_us > 0.0
let pending_commits t = List.length t.waiters

let set_next_id t id = if Txn_id.compare id t.next_id > 0 then t.next_id <- id

let begin_txn t =
  let id = t.next_id in
  t.next_id <- Txn_id.next id;
  let txn = { id; state = Active; last_lsn = Lsn.nil } in
  let lsn =
    Log_manager.append t.log (Log_record.make ~txn:id ~prev_txn_lsn:Lsn.nil Log_record.Begin)
  in
  txn.last_lsn <- lsn;
  Hashtbl.replace t.active (Txn_id.to_int id) txn;
  txn

let find t id = Hashtbl.find_opt t.active (Txn_id.to_int id)

let active_txns t =
  (* [Committing] txns are deliberately not listed: their fate is decided by
     whether the commit record itself is durable, and a checkpoint's flush
     (which covers the commit record, appended before the checkpoint record)
     makes it so. *)
  Hashtbl.fold
    (fun _ txn acc -> if txn.state = Active then (txn.id, txn.last_lsn) :: acc else acc)
    t.active []
  |> List.sort (fun (a, _) (b, _) -> Txn_id.compare a b)

let active_count t =
  Hashtbl.fold (fun _ txn n -> if txn.state = Active then n + 1 else n) t.active 0

let lock t txn res mode =
  if txn.state <> Active then invalid_arg "Txn_manager.lock: txn not active";
  Lock_manager.acquire t.locks txn.id res mode

let append_on_chain t txn body =
  let lsn =
    Log_manager.append t.log (Log_record.make ~txn:txn.id ~prev_txn_lsn:txn.last_lsn body)
  in
  txn.last_lsn <- lsn;
  lsn

let log_page_op t txn ~page ~prev_page_lsn op =
  if txn.state <> Active then invalid_arg "Txn_manager.log_page_op: txn not active";
  append_on_chain t txn (Log_record.Page_op { page; prev_page_lsn; op })

(* --- group commit --- *)

(* Acknowledge every waiter whose commit record a flush has covered: mark it
   [Committed] and write its [End] record.  Waiters are acked oldest first so
   End records land in commit order. *)
let ack_flushed t =
  match t.waiters with
  | [] -> 0
  | _ ->
      let durable = Log_manager.flushed_lsn t.log in
      let acked, pending = List.partition (fun w -> Lsn.(w.commit_lsn < durable)) t.waiters in
      t.waiters <- pending;
      (match acked with
      | [] -> ()
      | _ ->
          let io = Log_manager.stats t.log in
          io.Io_stats.log_commits_coalesced <-
            io.Io_stats.log_commits_coalesced + List.length acked;
          let now = Sim_clock.now_us (Log_manager.clock t.log) in
          List.iter
            (fun w ->
              w.w_txn.state <- Committed;
              Obs.incr Probes.commits;
              Obs.observe Probes.commit_latency_us (now -. w.w_begin_us);
              ignore (append_on_chain t w.w_txn Log_record.End))
            (List.rev acked);
          if Trace.on () then
            Trace.instant ~cat:"txn"
              ~args:[ ("acked", Trace.Int (List.length acked)) ]
              "txn.group_ack");
      List.length acked

let flush_log t ~upto =
  Log_manager.flush t.log ~upto;
  ignore (ack_flushed t)

let flush_commits t =
  (match t.waiters with
  | [] -> ()
  | { commit_lsn; _ } :: _ -> Log_manager.flush t.log ~upto:commit_lsn);
  ack_flushed t

let commit_begin t txn ~wall_us =
  if txn.state <> Active then invalid_arg "Txn_manager.commit_begin: txn not active";
  (* The state leaves [Active] together with the commit-record append, so a
     failure later in the commit path (e.g. a flush raising on a broken
     device) can never leave an [Active] transaction with a dangling commit
     record on its chain — rolling such a chain back would be malformed.  A
     [Committing] transaction is never rolled back at runtime; if its commit
     record is lost in a crash, recovery undoes it as a loser. *)
  txn.state <- Committing;
  let commit_lsn = append_on_chain t txn (Log_record.Commit { wall_us }) in
  (* Early lock release: correctness needs locks held only until the commit
     record is appended (commit order is fixed from here); durability is
     signalled separately by the acknowledgement. *)
  Lock_manager.release_all t.locks txn.id;
  let now = Sim_clock.now_us (Log_manager.clock t.log) in
  if t.waiters = [] then t.oldest_wait_us <- now;
  t.waiters <- { w_txn = txn; commit_lsn; w_begin_us = now } :: t.waiters;
  commit_lsn

(* Flush-scheduler trigger: batch bytes or batch age, whichever trips first.
   The immediate policy (thresholds 0) always trips. *)
let maybe_flush t =
  match t.waiters with
  | [] -> 0
  | _ ->
      let now = Sim_clock.now_us (Log_manager.clock t.log) in
      if
        Log_manager.unflushed_bytes t.log >= t.policy.max_batch_bytes
        || now -. t.oldest_wait_us >= t.policy.max_delay_us
      then flush_commits t
      else 0

let commit t txn ~wall_us =
  if txn.state <> Active then invalid_arg "Txn_manager.commit: txn not active";
  ignore (commit_begin t txn ~wall_us);
  (* A batch of one (plus any commits already pending). *)
  ignore (flush_commits t)

type page_writer = Page_id.t -> (Page.t -> Lsn.t) -> unit

let undo_one t txn ~write_page ~page ~op ~undo_next =
  match Log_record.invert op with
  | None -> ()
  | Some inverse ->
      write_page page (fun p ->
          let prev_page_lsn = Page.lsn p in
          let clr_lsn =
            append_on_chain t txn
              (Log_record.Clr { page; prev_page_lsn; op = inverse; undo_next })
          in
          Log_record.redo page inverse p;
          Page.set_lsn p clr_lsn;
          clr_lsn)

let rollback t txn ~write_page =
  if txn.state <> Active then invalid_arg "Txn_manager.rollback: txn not active";
  ignore (append_on_chain t txn Log_record.Abort);
  let rec walk lsn =
    if not (Lsn.is_nil lsn) then begin
      let r = Log_manager.read t.log lsn in
      match r.Log_record.body with
      | Log_record.Page_op { page; op; _ } ->
          undo_one t txn ~write_page ~page ~op ~undo_next:r.Log_record.prev_txn_lsn;
          walk r.Log_record.prev_txn_lsn
      | Log_record.Clr { undo_next; _ } ->
          (* Already-compensated work: skip straight past it. *)
          walk undo_next
      | Log_record.Begin -> ()
      | Log_record.Abort -> walk r.Log_record.prev_txn_lsn
      | Log_record.Commit _ | Log_record.End | Log_record.Checkpoint _ ->
          invalid_arg "Txn_manager.rollback: malformed transaction chain"
    end
  in
  walk txn.last_lsn;
  txn.state <- Aborted;
  Lock_manager.release_all t.locks txn.id;
  ignore (append_on_chain t txn Log_record.End)

let finished t txn =
  if txn.state = Active then invalid_arg "Txn_manager.finished: txn still active";
  Hashtbl.remove t.active (Txn_id.to_int txn.id)
