(** Fixed-capacity LRU set of integer keys.

    Used as the log-block cache: membership means "this log region is in
    memory and reading it stalls on no I/O". *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if capacity < 1. *)

val mem : t -> int -> bool
(** Membership test; does not touch recency. *)

val use : t -> int -> bool
(** [use t k] returns whether [k] was present, and in all cases makes [k]
    the most recently used entry (inserting it, evicting the LRU entry if at
    capacity). *)

val remove : t -> int -> unit
val size : t -> int
val capacity : t -> int
val clear : t -> unit

(** Value-carrying LRU bounded by total weight in bytes — the decoded
    log-record cache.  [add] evicts least-recently-used entries until the
    budget is met again; an entry heavier than the whole budget is simply
    not cached. *)
module Weighted : sig
  type 'a t

  val create : capacity_bytes:int -> 'a t
  (** Raises [Invalid_argument] if the capacity is < 1. *)

  val find : 'a t -> int -> 'a option
  (** Lookup; a hit becomes the most recently used entry. *)

  val mem : 'a t -> int -> bool
  (** Membership test; does not touch recency. *)

  val add : 'a t -> int -> weight:int -> 'a -> unit
  (** Insert or replace, then evict LRU entries until within budget. *)

  type 'a node
  (** Handle to a cache slot, for callers that keep their own pointer to
      the entry and want hit/touch without a table lookup. *)

  val add_node : 'a t -> int -> weight:int -> 'a -> 'a node
  (** Like {!add} but returns the slot handle.  An entry too heavy to cache
      yields a dead handle ({!alive} is false). *)

  val alive : 'a node -> bool
  (** False once the slot has been evicted or removed — the handle is
      stale and the value must be re-fetched. *)

  val node_value : 'a node -> 'a
  val touch : 'a t -> 'a node -> unit
  (** Make a (live) slot the most recently used; no-op on a dead one. *)

  val remove : 'a t -> int -> unit
  val size_bytes : 'a t -> int
  val entry_count : 'a t -> int
  val capacity_bytes : 'a t -> int
  val clear : 'a t -> unit
end
