module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Lsn = Rw_storage.Lsn
module Checksum = Rw_storage.Checksum

exception Corrupt_record

type op =
  | Insert_row of { slot : int; row : string }
  | Delete_row of { slot : int; row : string }
  | Update_row of { slot : int; before : string; after : string }
  | Set_header of { field : header_field; before : int64; after : int64 }
  | Format of { typ : Page.page_type; level : int }
  | Preformat of { prev_image : string }
  | Full_image of { image : string }

and header_field = Prev_page | Next_page | Special | Level

type body =
  | Begin
  | Commit of { wall_us : float }
  | Abort
  | End
  | Page_op of { page : Page_id.t; prev_page_lsn : Lsn.t; op : op }
  | Clr of { page : Page_id.t; prev_page_lsn : Lsn.t; op : op; undo_next : Lsn.t }
  | Checkpoint of {
      wall_us : float;
      active_txns : (Txn_id.t * Lsn.t) list;
      dirty_pages : (Page_id.t * Lsn.t) list;
    }

type t = { txn : Txn_id.t; prev_txn_lsn : Lsn.t; body : body }

let make ?(txn = Txn_id.nil) ?(prev_txn_lsn = Lsn.nil) body = { txn; prev_txn_lsn; body }

let page_of t =
  match t.body with
  | Page_op { page; _ } | Clr { page; _ } -> Some page
  | Begin | Commit _ | Abort | End | Checkpoint _ -> None

let prev_page_lsn_of t =
  match t.body with
  | Page_op { prev_page_lsn; _ } | Clr { prev_page_lsn; _ } -> Some prev_page_lsn
  | Begin | Commit _ | Abort | End | Checkpoint _ -> None

let op_of t =
  match t.body with
  | Page_op { op; _ } | Clr { op; _ } -> Some op
  | Begin | Commit _ | Abort | End | Checkpoint _ -> None

let get_header p = function
  | Prev_page -> Page_id.to_int64 (Page.prev_page p)
  | Next_page -> Page_id.to_int64 (Page.next_page p)
  | Special -> Page.special p
  | Level -> Int64.of_int (Page.level p)

let set_header p field v =
  match field with
  | Prev_page -> Page.set_prev_page p (Page_id.of_int64 v)
  | Next_page -> Page.set_next_page p (Page_id.of_int64 v)
  | Special -> Page.set_special p v
  | Level -> Page.set_level p (Int64.to_int v)

let redo pid op p =
  match op with
  | Insert_row { slot; row } -> Rw_storage.Slotted_page.insert p ~at:slot row
  | Delete_row { slot; _ } -> Rw_storage.Slotted_page.delete p ~at:slot
  | Update_row { slot; after; _ } -> Rw_storage.Slotted_page.set p ~at:slot after
  | Set_header { field; after; _ } -> set_header p field after
  | Format { typ; level } ->
      Page.format p ~id:pid ~typ;
      Page.set_level p level
  | Preformat _ -> ()
  | Full_image { image } ->
      assert (String.length image = Page.page_size);
      Bytes.blit_string image 0 p 0 Page.page_size;
      (* The image belongs to this page by construction; keep the id in
         sync regardless, as [redo] may target a fresh buffer. *)
      Page.set_id p pid

let undo op p =
  match op with
  | Insert_row { slot; _ } -> Rw_storage.Slotted_page.delete p ~at:slot
  | Delete_row { slot; row } -> Rw_storage.Slotted_page.insert p ~at:slot row
  | Update_row { slot; before; _ } -> Rw_storage.Slotted_page.set p ~at:slot before
  | Set_header { field; before; _ } -> set_header p field before
  | Format _ -> Page.format p ~id:(Page.id p) ~typ:Page.Free
  | Preformat { prev_image } ->
      assert (String.length prev_image = Page.page_size);
      Bytes.blit_string prev_image 0 p 0 Page.page_size
  | Full_image _ -> ()

let invert = function
  | Insert_row { slot; row } -> Some (Delete_row { slot; row })
  | Delete_row { slot; row } -> Some (Insert_row { slot; row })
  | Update_row { slot; before; after } -> Some (Update_row { slot; before = after; after = before })
  | Set_header { field; before; after } -> Some (Set_header { field; before = after; after = before })
  | Format _ -> Some (Format { typ = Page.Free; level = 0 })
  | Preformat _ | Full_image _ -> None

(* --- binary codec --- *)

let field_code = function Prev_page -> 0 | Next_page -> 1 | Special -> 2 | Level -> 3

let field_of_code = function
  | 0 -> Prev_page
  | 1 -> Next_page
  | 2 -> Special
  | 3 -> Level
  | c -> invalid_arg (Printf.sprintf "Log_record: bad header field %d" c)

let encode_op e op =
  let open Codec in
  match op with
  | Insert_row { slot; row } ->
      u8 e 0;
      u16 e slot;
      str16 e row
  | Delete_row { slot; row } ->
      u8 e 1;
      u16 e slot;
      str16 e row
  | Update_row { slot; before; after } ->
      u8 e 2;
      u16 e slot;
      str16 e before;
      str16 e after
  | Set_header { field; before; after } ->
      u8 e 3;
      u8 e (field_code field);
      i64 e before;
      i64 e after
  | Format { typ; level } ->
      u8 e 4;
      u8 e (Page.type_code typ);
      u8 e level
  | Preformat { prev_image } ->
      u8 e 5;
      str32 e prev_image
  | Full_image { image } ->
      u8 e 6;
      str32 e image

let decode_op d =
  let open Codec in
  match get_u8 d with
  | 0 ->
      let slot = get_u16 d in
      let row = get_str16 d in
      Insert_row { slot; row }
  | 1 ->
      let slot = get_u16 d in
      let row = get_str16 d in
      Delete_row { slot; row }
  | 2 ->
      let slot = get_u16 d in
      let before = get_str16 d in
      let after = get_str16 d in
      Update_row { slot; before; after }
  | 3 ->
      let field = field_of_code (get_u8 d) in
      let before = get_i64 d in
      let after = get_i64 d in
      Set_header { field; before; after }
  | 4 ->
      let typ = Page.type_of_code (get_u8 d) in
      let level = get_u8 d in
      Format { typ; level }
  | 5 -> Preformat { prev_image = get_str32 d }
  | 6 -> Full_image { image = get_str32 d }
  | c -> invalid_arg (Printf.sprintf "Log_record: bad op kind %d" c)

let encode t =
  let open Codec in
  let e = encoder () in
  i64 e (Txn_id.to_int64 t.txn);
  i64 e (Lsn.to_int64 t.prev_txn_lsn);
  (match t.body with
  | Begin -> u8 e 0
  | Commit { wall_us } ->
      u8 e 1;
      f64 e wall_us
  | Abort -> u8 e 2
  | End -> u8 e 3
  | Checkpoint { wall_us; active_txns; dirty_pages } ->
      u8 e 4;
      f64 e wall_us;
      u32 e (List.length active_txns);
      List.iter
        (fun (txn, lsn) ->
          i64 e (Txn_id.to_int64 txn);
          i64 e (Lsn.to_int64 lsn))
        active_txns;
      u32 e (List.length dirty_pages);
      List.iter
        (fun (page, lsn) ->
          i64 e (Page_id.to_int64 page);
          i64 e (Lsn.to_int64 lsn))
        dirty_pages
  | Page_op { page; prev_page_lsn; op } ->
      u8 e 5;
      i64 e (Page_id.to_int64 page);
      i64 e (Lsn.to_int64 prev_page_lsn);
      encode_op e op
  | Clr { page; prev_page_lsn; op; undo_next } ->
      u8 e 6;
      i64 e (Page_id.to_int64 page);
      i64 e (Lsn.to_int64 prev_page_lsn);
      i64 e (Lsn.to_int64 undo_next);
      encode_op e op);
  (* CRC-32 trailer over everything before it: recovery uses it to tell a
     whole record from a torn tail (see Log_manager.repair_tail). *)
  let body = to_string e in
  let n = String.length body in
  let crc = Checksum.crc32 (Bytes.unsafe_of_string body) ~pos:0 ~len:n in
  let b = Bytes.create (n + 4) in
  Bytes.blit_string body 0 b 0 n;
  Bytes.set_int32_le b n crc;
  Bytes.unsafe_to_string b

(* Smallest encodable record: txn + prev_txn_lsn + tag + CRC trailer. *)
let min_encoded_size = 8 + 8 + 1 + 4

let check s =
  let n = String.length s in
  n >= min_encoded_size
  &&
  let stored = String.get_int32_le s (n - 4) in
  stored = Checksum.crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(n - 4)

let decode s =
  if not (check s) then raise Corrupt_record;
  let open Codec in
  let d = decoder s in
  let txn = Txn_id.of_int64 (get_i64 d) in
  let prev_txn_lsn = Lsn.of_int64 (get_i64 d) in
  let body =
    match get_u8 d with
    | 0 -> Begin
    | 1 -> Commit { wall_us = get_f64 d }
    | 2 -> Abort
    | 3 -> End
    | 4 ->
        let wall_us = get_f64 d in
        let n = get_u32 d in
        let active_txns =
          List.init n (fun _ ->
              let txn = Txn_id.of_int64 (get_i64 d) in
              let lsn = Lsn.of_int64 (get_i64 d) in
              (txn, lsn))
        in
        let m = get_u32 d in
        let dirty_pages =
          List.init m (fun _ ->
              let page = Page_id.of_int64 (get_i64 d) in
              let lsn = Lsn.of_int64 (get_i64 d) in
              (page, lsn))
        in
        Checkpoint { wall_us; active_txns; dirty_pages }
    | 5 ->
        let page = Page_id.of_int64 (get_i64 d) in
        let prev_page_lsn = Lsn.of_int64 (get_i64 d) in
        let op = decode_op d in
        Page_op { page; prev_page_lsn; op }
    | 6 ->
        let page = Page_id.of_int64 (get_i64 d) in
        let prev_page_lsn = Lsn.of_int64 (get_i64 d) in
        let undo_next = Lsn.of_int64 (get_i64 d) in
        let op = decode_op d in
        Clr { page; prev_page_lsn; op; undo_next }
    | c -> invalid_arg (Printf.sprintf "Log_record: bad record kind %d" c)
  in
  { txn; prev_txn_lsn; body }

let encoded_size t = String.length (encode t)

(* --- header peek --- *)

(* The encoded layout begins with fixed-width fields:
     0..7   txn           (i64)
     8..15  prev_txn_lsn  (i64)
     16     body tag      (u8)
   and for page records:
     17..24 page          (i64)
     25..32 prev_page_lsn (i64)
     33     op tag        (u8)          [Page_op]
     33..40 undo_next     (i64)
     41     op tag        (u8)          [Clr]
   so all chain-walk and analysis headers are extractable without decoding
   the (potentially page-sized) payloads. *)

type op_kind =
  | K_insert_row
  | K_delete_row
  | K_update_row
  | K_set_header
  | K_format
  | K_preformat
  | K_full_image

type kind =
  | K_begin
  | K_commit
  | K_abort
  | K_end
  | K_checkpoint
  | K_page_op of op_kind
  | K_clr of op_kind

type peek = {
  p_txn : Txn_id.t;
  p_prev_txn_lsn : Lsn.t;
  p_kind : kind;
  p_page : Page_id.t;  (** [Page_id.nil] for non-page records *)
  p_prev_page_lsn : Lsn.t;  (** [Lsn.nil] for non-page records *)
  p_len : int;  (** encoded length, i.e. the record's LSN footprint *)
}

let op_kind_of_tag = function
  | 0 -> K_insert_row
  | 1 -> K_delete_row
  | 2 -> K_update_row
  | 3 -> K_set_header
  | 4 -> K_format
  | 5 -> K_preformat
  | 6 -> K_full_image
  | c -> invalid_arg (Printf.sprintf "Log_record.peek: bad op kind %d" c)

let peek_head s ~p_len =
  let p_txn = Txn_id.of_int64 (Codec.peek_i64 s 0) in
  let p_prev_txn_lsn = Lsn.of_int64 (Codec.peek_i64 s 8) in
  let plain kind =
    { p_txn; p_prev_txn_lsn; p_kind = kind; p_page = Page_id.nil; p_prev_page_lsn = Lsn.nil; p_len }
  in
  match Codec.peek_u8 s 16 with
  | 0 -> plain K_begin
  | 1 -> plain K_commit
  | 2 -> plain K_abort
  | 3 -> plain K_end
  | 4 -> plain K_checkpoint
  | 5 ->
      {
        p_txn;
        p_prev_txn_lsn;
        p_kind = K_page_op (op_kind_of_tag (Codec.peek_u8 s 33));
        p_page = Page_id.of_int64 (Codec.peek_i64 s 17);
        p_prev_page_lsn = Lsn.of_int64 (Codec.peek_i64 s 25);
        p_len;
      }
  | 6 ->
      {
        p_txn;
        p_prev_txn_lsn;
        p_kind = K_clr (op_kind_of_tag (Codec.peek_u8 s 41));
        p_page = Page_id.of_int64 (Codec.peek_i64 s 17);
        p_prev_page_lsn = Lsn.of_int64 (Codec.peek_i64 s 25);
        p_len;
      }
  | c -> invalid_arg (Printf.sprintf "Log_record.peek: bad record kind %d" c)

let peek s = peek_head s ~p_len:(String.length s)

(* Every header field lives in the first 42 bytes (the Clr op tag at
   offset 41 is the deepest), so peeking a record stored inside a segment
   blob only copies that prefix — an FPI's page image never moves. *)
let peek_header_bytes = 42

let peek_bytes b ~pos ~len =
  peek_head (Bytes.sub_string b pos (min len peek_header_bytes)) ~p_len:len

let check_bytes b ~pos ~len =
  len >= min_encoded_size
  &&
  let stored = Bytes.get_int32_le b (pos + len - 4) in
  stored = Checksum.crc32 b ~pos ~len:(len - 4)

let is_page_kind = function K_page_op _ | K_clr _ -> true | _ -> false

let op_name = function
  | Insert_row _ -> "insert_row"
  | Delete_row _ -> "delete_row"
  | Update_row _ -> "update_row"
  | Set_header _ -> "set_header"
  | Format _ -> "format"
  | Preformat _ -> "preformat"
  | Full_image _ -> "full_image"

let kind_name t =
  match t.body with
  | Begin -> "begin"
  | Commit _ -> "commit"
  | Abort -> "abort"
  | End -> "end"
  | Checkpoint _ -> "checkpoint"
  | Page_op { op; _ } -> op_name op
  | Clr { op; _ } -> "clr:" ^ op_name op

let pp fmt t =
  match t.body with
  | Page_op { page; prev_page_lsn; op } ->
      Format.fprintf fmt "%a %s %a prev=%a" Txn_id.pp t.txn (op_name op) Page_id.pp page Lsn.pp
        prev_page_lsn
  | Clr { page; prev_page_lsn; op; undo_next } ->
      Format.fprintf fmt "%a clr:%s %a prev=%a undo_next=%a" Txn_id.pp t.txn (op_name op)
        Page_id.pp page Lsn.pp prev_page_lsn Lsn.pp undo_next
  | Checkpoint { active_txns; dirty_pages; _ } ->
      Format.fprintf fmt "checkpoint active=%d dirty=%d" (List.length active_txns)
        (List.length dirty_pages)
  | _ -> Format.fprintf fmt "%a %s" Txn_id.pp t.txn (kind_name t)
