module Lsn = Rw_storage.Lsn
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats

exception Log_truncated of Lsn.t
exception No_such_record of Lsn.t

(* Growable sorted array: one page's chain record LSNs, ascending. *)
type chain = { mutable arr : Lsn.t array; mutable len : int }

module Fault_plan = Rw_storage.Fault_plan
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

(* The log is a sequence of fixed-size segments (LevelDB-style sealed
   files).  The newest segment is the active tail: appends land in its
   blob, in RAM.  Once the tail reaches [segment_bytes] it is sealed —
   immutable from then on — and spilled: its payload is priced as one
   sequential write and stops counting against modeled resident memory.
   Reads of a spilled segment go through the same block cache as always;
   a block miss is the "reload from media" event.

   Everything per-record is segment-local: the sorted record-offset array
   that replaces the old global lsn->index Hashtbl (LSNs are byte
   offsets, so locating a record is a binary search over segments plus a
   binary search within one), and the FPI directory / page-chain index /
   checkpoint list slices covering the segment's LSN range.  Retention
   can therefore drop a whole sealed segment in O(1), freeing its indexes
   wholesale, instead of filtering global tables record by record. *)
type segment = {
  s_base : int; (* absolute byte offset (= LSN) of the segment's first byte *)
  mutable s_end : int; (* one past the last record byte, absolute *)
  mutable s_n : int; (* record count *)
  mutable s_dead : int;
      (* records [0, s_dead) fell below the retention boundary while the
         segment straddled it; they stay physically present (the segment
         is immutable) but are invisible: every read path checks
         [truncated_below] first and the merged-view queries clamp. *)
  mutable s_lsns : int array; (* ascending record-start LSNs; length >= s_n *)
  mutable s_cached : Log_record.t Lru.Weighted.node option array;
      (* Parallel to [s_lsns]: slot handles into the decoded-record
         cache.  A hit is one pointer chase plus a liveness check. *)
  mutable s_blob : Bytes.t; (* encoded payloads, contiguous from s_base *)
  mutable s_sealed : bool;
  mutable s_resident : bool; (* payload still counted as modeled RAM *)
  s_fpi : (int, Lsn.t list ref) Hashtbl.t; (* page -> descending FPI lsns *)
  s_chains : (int, chain) Hashtbl.t; (* page -> ascending page-record lsns *)
  mutable s_ckpts : Lsn.t list; (* descending checkpoint lsns *)
  mutable s_index_bytes : int;
      (* modeled footprint of this segment's index structures; freed
         wholesale when the segment is dropped *)
}

let mk_segment ~segment_bytes base =
  {
    s_base = base;
    s_end = base;
    s_n = 0;
    s_dead = 0;
    s_lsns = Array.make 64 0;
    s_cached = Array.make 64 None;
    s_blob = Bytes.create (min (max segment_bytes 64) 4096);
    s_sealed = false;
    s_resident = true;
    s_fpi = Hashtbl.create 8;
    s_chains = Hashtbl.create 16;
    s_ckpts = [];
    s_index_bytes = 0;
  }

(* Shared filler for vacated slots in the segment window; never inside
   [seg_lo, seg_hi) and never mutated. *)
let tombstone = mk_segment ~segment_bytes:64 0

(* Per-transaction summary accumulator for the append-time write-set
   index (what-if dependency graphs).  Mutable builder; the public
   [txn_summary] view is assembled on query. *)
type txn_acc = {
  a_txn : Txn_id.t;
  a_first : Lsn.t;
  mutable a_last_op : Lsn.t;
  mutable a_commit : Lsn.t;
  mutable a_wall : float;
  mutable a_aborted : bool;
  mutable a_ops : int;
  mutable a_clr : bool;
  mutable a_structural : bool;
  mutable a_writes_rev : (Page_id.t * Lsn.t) list; (* newest-first, first-write lsn per page *)
  a_pages : (int, unit) Hashtbl.t; (* pages already in a_writes_rev: O(1) membership *)
}

type t = {
  clock : Sim_clock.t;
  media : Media.t;
  io : Io_stats.t;
  fault_plan : Fault_plan.t option;
  segment_bytes : int; (* seal threshold *)
  mutable segs : segment array; (* live window [seg_lo, seg_hi); ascending *)
  mutable seg_lo : int;
  mutable seg_hi : int;
  mutable nrecords : int; (* retained (non-dead) record count *)
  mutable end_lsn : Lsn.t;
  mutable flushed_lsn : Lsn.t;
  mutable truncated_below : Lsn.t;
  cache : Lru.t;
  block_bytes : int;
  record_cache : Log_record.t Lru.Weighted.t;
      (* Decoded records keyed by LSN, weighed by encoded size.  Layered
         over the block cache: block accounting (and therefore simulated
         I/O cost) is identical whether or not a decode is skipped. *)
  mutable last_checkpoint : Lsn.t;
  mutable total_appended_bytes : int;
  mutable unflushed_bytes : int;
  mutable resident_payload : int; (* unspilled segment payload bytes *)
  mutable index_bytes : int; (* summed s_index_bytes of live segments *)
  mutable sealed_count : int; (* lifetime lifecycle counters *)
  mutable spilled_count : int;
  mutable loaded_count : int; (* cold block loads from spilled segments *)
  mutable dropped_count : int;
  mutable invalidation_epoch : int;
      (* Bumped whenever history is lost (truncation) or LSNs may be
         recycled (crash).  Derived caches of rewound state — e.g. the
         shared prepared-page cache — compare a stored epoch against this
         counter and lazily discard entries from older epochs; ordinary
         appends never bump it, because chain rewinds are deterministic
         over an append-only history. *)
  txn_index : (int, txn_acc) Hashtbl.t;
      (* Append-time per-transaction write-set summaries (unmodeled
         metadata, like the decoded-record cache).  Maintained on every
         ingestion path so dependency-graph construction never scans the
         log; events that drop tail records void it ([txn_index_valid])
         and the next query rebuilds it with one priced scan. *)
  mutable txn_index_valid : bool;
}

let create ~clock ~media ?(cache_blocks = 128) ?(block_bytes = 65536)
    ?(record_cache_bytes = 4 * 1024 * 1024) ?(segment_bytes = 1024 * 1024) ?fault_plan () =
  {
    clock;
    media;
    io = Io_stats.create ();
    fault_plan;
    segment_bytes = max segment_bytes 64;
    segs = Array.make 8 tombstone;
    seg_lo = 0;
    seg_hi = 0;
    nrecords = 0;
    end_lsn = Lsn.of_int 1;
    flushed_lsn = Lsn.of_int 1;
    truncated_below = Lsn.of_int 1;
    cache = Lru.create ~capacity:cache_blocks;
    block_bytes;
    record_cache = Lru.Weighted.create ~capacity_bytes:record_cache_bytes;
    last_checkpoint = Lsn.nil;
    total_appended_bytes = 0;
    unflushed_bytes = 0;
    resident_payload = 0;
    index_bytes = 0;
    sealed_count = 0;
    spilled_count = 0;
    loaded_count = 0;
    dropped_count = 0;
    invalidation_epoch = 0;
    txn_index = Hashtbl.create 64;
    txn_index_valid = true;
  }

let clock t = t.clock
let stats t = t.io
let flushed_lsn t = t.flushed_lsn
let end_lsn t = t.end_lsn
let first_lsn t = t.truncated_below
let last_checkpoint t = t.last_checkpoint
let set_last_checkpoint t lsn = t.last_checkpoint <- lsn
let total_appended_bytes t = t.total_appended_bytes
let retained_bytes t = Lsn.to_int t.end_lsn - Lsn.to_int t.truncated_below
let record_count t = t.nrecords
let record_cache_bytes t = Lru.Weighted.size_bytes t.record_cache
let invalidation_epoch t = t.invalidation_epoch
let segment_count t = t.seg_hi - t.seg_lo
let segment_size t = t.segment_bytes
let resident_bytes t = t.resident_payload + t.index_bytes

type segment_stats = {
  ss_live : int;
  ss_sealed : int;
  ss_spilled : int;
  ss_loaded : int;
  ss_dropped : int;
  ss_resident_bytes : int;
  ss_payload_bytes : int;
  ss_index_bytes : int;
  ss_segment_bytes : int;
}

let segment_stats t =
  {
    ss_live = segment_count t;
    ss_sealed = t.sealed_count;
    ss_spilled = t.spilled_count;
    ss_loaded = t.loaded_count;
    ss_dropped = t.dropped_count;
    ss_resident_bytes = resident_bytes t;
    ss_payload_bytes = t.resident_payload;
    ss_index_bytes = t.index_bytes;
    ss_segment_bytes = t.segment_bytes;
  }

let update_resident_gauge t =
  Obs.set Probes.log_resident_bytes (float_of_int (resident_bytes t))

(* ---------- segment-local primitives ---------- *)

let seg_used s = s.s_end - s.s_base

let rec_len s i = (if i + 1 < s.s_n then s.s_lsns.(i + 1) else s.s_end) - s.s_lsns.(i)
let rec_pos s i = s.s_lsns.(i) - s.s_base
let rec_data s i = Bytes.sub_string s.s_blob (rec_pos s i) (rec_len s i)
let rec_peek s i = Log_record.peek_bytes s.s_blob ~pos:(rec_pos s i) ~len:(rec_len s i)

(* First record index in [s] with start LSN >= target. *)
let rec_lower s target =
  let lo = ref 0 and hi = ref s.s_n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.s_lsns.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let rec_find s li =
  let i = rec_lower s li in
  if i < s.s_n && s.s_lsns.(i) = li then Some i else None

(* Index (into [t.segs]) of the segment containing byte offset [li]. *)
let seg_find t li =
  if t.seg_hi = t.seg_lo then None
  else begin
    let lo = ref t.seg_lo and hi = ref t.seg_hi in
    (* first segment with s_end > li *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.segs.(mid).s_end <= li then lo := mid + 1 else hi := mid
    done;
    if !lo < t.seg_hi && t.segs.(!lo).s_base <= li then Some !lo else None
  end

let locate_opt t lsn =
  let li = Lsn.to_int lsn in
  match seg_find t li with
  | None -> None
  | Some si -> (
      match rec_find t.segs.(si) li with Some i -> Some (si, i) | None -> None)

let locate t lsn =
  if Lsn.(lsn < t.truncated_below) then raise (Log_truncated lsn);
  match locate_opt t lsn with Some x -> x | None -> raise (No_such_record lsn)

(* First record (across segments) with start LSN >= target, clamped at
   the retention boundary — the replacement for the old dense
   lower_bound over one flat array. *)
let global_lower t target =
  let ti = Lsn.to_int (Lsn.max target t.truncated_below) in
  if t.seg_hi = t.seg_lo then None
  else begin
    let lo = ref t.seg_lo and hi = ref t.seg_hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.segs.(mid).s_end <= ti then lo := mid + 1 else hi := mid
    done;
    if !lo >= t.seg_hi then None
    else begin
      let s = t.segs.(!lo) in
      let i = rec_lower s ti in
      if i < s.s_n then Some (!lo, i)
      else if !lo + 1 < t.seg_hi then Some (!lo + 1, 0)
      else None
    end
  end

(* Position of the record preceding (si, i), skipping empty segments. *)
let pred_pos t (si, i) =
  if i > 0 then Some (si, i - 1)
  else begin
    let s = ref (si - 1) in
    while !s >= t.seg_lo && t.segs.(!s).s_n = 0 do
      decr s
    done;
    if !s >= t.seg_lo then Some (!s, t.segs.(!s).s_n - 1) else None
  end

(* ---------- segment window management ---------- *)

let push_seg t seg =
  if t.seg_hi = Array.length t.segs then begin
    let live = t.seg_hi - t.seg_lo in
    let cap = max 8 (2 * (live + 1)) in
    let a = Array.make cap tombstone in
    Array.blit t.segs t.seg_lo a 0 live;
    t.segs <- a;
    t.seg_lo <- 0;
    t.seg_hi <- live
  end;
  t.segs.(t.seg_hi) <- seg;
  t.seg_hi <- t.seg_hi + 1

let seal_segment t ?(priced = true) seg =
  seg.s_sealed <- true;
  (* Immutable from here on: shrink the working arrays to fit. *)
  if Array.length seg.s_lsns > seg.s_n then begin
    seg.s_lsns <- Array.sub seg.s_lsns 0 seg.s_n;
    seg.s_cached <- Array.sub seg.s_cached 0 seg.s_n
  end;
  let used = seg_used seg in
  if Bytes.length seg.s_blob > used then seg.s_blob <- Bytes.sub seg.s_blob 0 used;
  t.sealed_count <- t.sealed_count + 1;
  Obs.incr Probes.log_segments_sealed;
  (* Spill: the payload leaves modeled RAM, priced as the sequential
     write of the whole segment (the background writer pushing a sealed
     log file out).  Restore replays are offline and unpriced. *)
  if seg.s_resident then begin
    seg.s_resident <- false;
    t.resident_payload <- t.resident_payload - used;
    if priced then Media.seq_write t.media t.clock t.io used;
    t.spilled_count <- t.spilled_count + 1;
    Obs.incr Probes.log_segments_spilled
  end;
  update_resident_gauge t

let active_segment t =
  let need_new =
    t.seg_hi = t.seg_lo || t.segs.(t.seg_hi - 1).s_sealed
  in
  if need_new then push_seg t (mk_segment ~segment_bytes:t.segment_bytes (Lsn.to_int t.end_lsn));
  t.segs.(t.seg_hi - 1)

let ensure_blob seg need =
  let cap = Bytes.length seg.s_blob in
  if need > cap then begin
    let ncap = ref (max cap 64) in
    while !ncap < need do
      ncap := !ncap * 2
    done;
    let b = Bytes.create !ncap in
    Bytes.blit seg.s_blob 0 b 0 (seg_used seg);
    seg.s_blob <- b
  end

let ensure_slots seg =
  if seg.s_n = Array.length seg.s_lsns then begin
    let cap = max 64 (2 * seg.s_n) in
    let l = Array.make cap 0 in
    Array.blit seg.s_lsns 0 l 0 seg.s_n;
    seg.s_lsns <- l;
    let c = Array.make cap None in
    Array.blit seg.s_cached 0 c 0 seg.s_n;
    seg.s_cached <- c
  end

(* ---------- block-cache cost model (unchanged by segmentation) ---------- *)

let blocks_of t lsn len =
  let first = (Lsn.to_int lsn - 1) / t.block_bytes in
  let last = (Lsn.to_int lsn - 1 + max 0 (len - 1)) / t.block_bytes in
  (first, last)

let touch_cache_on_append t lsn len =
  let first, last = blocks_of t lsn len in
  for b = first to last do
    ignore (Lru.use t.cache b)
  done

(* A block miss against a spilled segment is the cold-reload event the
   [log.segments_loaded] probe counts; misses against the resident tail
   are the ordinary cache churn the model always had. *)
let charge_block_miss t seg =
  t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
  Media.random_read t.media t.clock t.io t.block_bytes;
  if not seg.s_resident then begin
    t.loaded_count <- t.loaded_count + 1;
    Obs.incr Probes.log_segments_loaded
  end

let charge_blocks t seg lsn len =
  let first, last = blocks_of t lsn len in
  for b = first to last do
    if Lru.use t.cache b then t.io.Io_stats.log_block_hits <- t.io.Io_stats.log_block_hits + 1
    else charge_block_miss t seg
  done

(* ---------- per-segment directory maintenance ---------- *)

let push_descending table key lsn =
  let l =
    match Hashtbl.find_opt table key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace table key l;
        l
  in
  l := lsn :: !l

(* A page's chain slice is a sorted array (appends arrive in LSN order),
   so [chain_segment] is binary searches plus [Array.sub] per touched
   segment — no list walk, no per-record allocation. *)
let chain_push tbl key lsn =
  let c =
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c = { arr = Array.make 8 Lsn.nil; len = 0 } in
        Hashtbl.replace tbl key c;
        c
  in
  if c.len = Array.length c.arr then begin
    let bigger = Array.make (2 * c.len) Lsn.nil in
    Array.blit c.arr 0 bigger 0 c.len;
    c.arr <- bigger
  end;
  c.arr.(c.len) <- lsn;
  c.len <- c.len + 1

let chain_remove tbl key lsn =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some c ->
      (* Removals come from [crash], which discards newest-first, so the
         target is almost always the last element. *)
      let i = ref (c.len - 1) in
      while !i >= 0 && not (Lsn.equal c.arr.(!i) lsn) do
        decr i
      done;
      if !i >= 0 then begin
        Array.blit c.arr (!i + 1) c.arr !i (c.len - !i - 1);
        c.len <- c.len - 1
      end

(* First index in [c] with value > v (c sorted ascending). *)
let chain_upper c v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Lsn.(c.arr.(mid) <= v) then go (mid + 1) hi else go lo mid
  in
  go 0 c.len

(* Modeled index footprint per entry: the record's offset + cache-handle
   slots, a chain array element, an FPI list cons, a checkpoint cons.
   Coarse, but it moves with the structures it models and is freed
   exactly when they are. *)
let idx_record_bytes = 16
let idx_chain_bytes = 8
let idx_fpi_bytes = 24
let idx_ckpt_bytes = 16

(* Directory maintenance from a header peek — shared by append, restore
   and crash so no path needs a payload decode to keep the indexes true. *)
let index_record t seg pk lsn =
  let add = ref idx_record_bytes in
  (match pk.Log_record.p_kind with
  | Log_record.K_page_op Log_record.K_full_image ->
      push_descending seg.s_fpi (Page_id.to_int pk.Log_record.p_page) lsn;
      add := !add + idx_fpi_bytes
  | Log_record.K_checkpoint ->
      seg.s_ckpts <- lsn :: seg.s_ckpts;
      add := !add + idx_ckpt_bytes
  | _ -> ());
  if Log_record.is_page_kind pk.Log_record.p_kind then begin
    chain_push seg.s_chains (Page_id.to_int pk.Log_record.p_page) lsn;
    add := !add + idx_chain_bytes
  end;
  seg.s_index_bytes <- seg.s_index_bytes + !add;
  t.index_bytes <- t.index_bytes + !add

let unindex_record t seg pk lsn =
  let sub = ref idx_record_bytes in
  (match pk.Log_record.p_kind with
  | Log_record.K_page_op Log_record.K_full_image ->
      (match Hashtbl.find_opt seg.s_fpi (Page_id.to_int pk.Log_record.p_page) with
      | Some l -> l := List.filter (fun f -> not (Lsn.equal f lsn)) !l
      | None -> ());
      sub := !sub + idx_fpi_bytes
  | Log_record.K_checkpoint ->
      seg.s_ckpts <- List.filter (fun c -> not (Lsn.equal c lsn)) seg.s_ckpts;
      sub := !sub + idx_ckpt_bytes
  | _ -> ());
  if Log_record.is_page_kind pk.Log_record.p_kind then begin
    chain_remove seg.s_chains (Page_id.to_int pk.Log_record.p_page) lsn;
    sub := !sub + idx_chain_bytes
  end;
  seg.s_index_bytes <- seg.s_index_bytes - !sub;
  t.index_bytes <- t.index_bytes - !sub

(* Txn write-set index maintenance from a header peek.  [wall] is forced
   only for commit records — the one field the header lacks; every
   ingestion path can supply it either from the record in hand (append)
   or by decoding the tiny commit payload (restore/ingest). *)
let structural_op_kind = function
  | Log_record.K_set_header | Log_record.K_format | Log_record.K_preformat
  | Log_record.K_full_image ->
      true
  | Log_record.K_insert_row | Log_record.K_delete_row | Log_record.K_update_row -> false

let note_record t lsn pk ~wall =
  let txn = pk.Log_record.p_txn in
  if not (Txn_id.is_nil txn) then begin
    let key = Txn_id.to_int txn in
    let acc =
      match Hashtbl.find_opt t.txn_index key with
      | Some a -> a
      | None ->
          let a =
            {
              a_txn = txn;
              a_first = lsn;
              a_last_op = Lsn.nil;
              a_commit = Lsn.nil;
              a_wall = 0.0;
              a_aborted = false;
              a_ops = 0;
              a_clr = false;
              a_structural = false;
              a_writes_rev = [];
              a_pages = Hashtbl.create 8;
            }
          in
          Hashtbl.replace t.txn_index key a;
          a
    in
    match pk.Log_record.p_kind with
    | Log_record.K_commit ->
        acc.a_commit <- lsn;
        acc.a_wall <- Lazy.force wall
    | Log_record.K_abort -> acc.a_aborted <- true
    | Log_record.K_page_op k | Log_record.K_clr k ->
        acc.a_last_op <- lsn;
        acc.a_ops <- acc.a_ops + 1;
        (match pk.Log_record.p_kind with
        | Log_record.K_clr _ -> acc.a_clr <- true
        | _ -> ());
        if structural_op_kind k then acc.a_structural <- true;
        let page = pk.Log_record.p_page in
        let pkey = Page_id.to_int page in
        if not (Hashtbl.mem acc.a_pages pkey) then begin
          Hashtbl.replace acc.a_pages pkey ();
          acc.a_writes_rev <- (page, lsn) :: acc.a_writes_rev
        end
    | Log_record.K_begin | Log_record.K_end | Log_record.K_checkpoint -> ()
  end

let wall_of_record record =
  lazy
    (match record.Log_record.body with Log_record.Commit { wall_us } -> wall_us | _ -> 0.0)

let wall_of_data data =
  lazy
    (match (Log_record.decode data).Log_record.body with
    | Log_record.Commit { wall_us } -> wall_us
    | _ -> 0.0)

(* Tail records were dropped (crash, torn-tail repair, replication
   divergence cut): the incremental summaries may describe records that no
   longer exist.  Void the index; the next query rebuilds it with one
   priced scan of the retained log. *)
let void_txn_index t =
  Hashtbl.reset t.txn_index;
  t.txn_index_valid <- false

(* ---------- append path ---------- *)

(* Physical placement shared by [append] and [restore_entries]:
   amortized O(1) — the blob and offset arrays grow by doubling within a
   bounded segment, and sealing touches each byte once. *)
let raw_append t data lsn =
  let len = String.length data in
  let seg = active_segment t in
  ensure_blob seg (seg_used seg + len);
  ensure_slots seg;
  Bytes.blit_string data 0 seg.s_blob (Lsn.to_int lsn - seg.s_base) len;
  seg.s_lsns.(seg.s_n) <- Lsn.to_int lsn;
  seg.s_cached.(seg.s_n) <- None;
  seg.s_n <- seg.s_n + 1;
  seg.s_end <- Lsn.to_int lsn + len;
  t.nrecords <- t.nrecords + 1;
  t.end_lsn <- Lsn.of_int seg.s_end;
  t.total_appended_bytes <- t.total_appended_bytes + len;
  t.resident_payload <- t.resident_payload + len;
  seg

let append t record =
  let data = Log_record.encode record in
  let len = String.length data in
  let lsn = t.end_lsn in
  let seg = raw_append t data lsn in
  t.unflushed_bytes <- t.unflushed_bytes + len;
  touch_cache_on_append t lsn len;
  let pk = Log_record.peek data in
  index_record t seg pk lsn;
  if t.txn_index_valid then note_record t lsn pk ~wall:(wall_of_record record);
  (* The record object is in hand; seed the decoded cache so the first
     chain walk over fresh history never decodes. *)
  seg.s_cached.(seg.s_n - 1) <-
    Some (Lru.Weighted.add_node t.record_cache (Lsn.to_int lsn) ~weight:len record);
  Obs.incr Probes.log_appends;
  Obs.add Probes.log_append_bytes len;
  if seg_used seg >= t.segment_bytes then seal_segment t seg
  else update_resident_gauge t;
  lsn

let unflushed_bytes t = t.unflushed_bytes

let flush t ~upto =
  t.io.Io_stats.log_flush_calls <- t.io.Io_stats.log_flush_calls + 1;
  if Lsn.(t.flushed_lsn <= upto) && Lsn.(t.flushed_lsn < t.end_lsn) then begin
    (* Group commit: one sync plus the sequential transfer of everything
       buffered.  Requests already covered by an earlier batch fall through
       without touching the device — the calls/batches counter gap is the
       coalescing the write path achieves. *)
    t.io.Io_stats.log_flush_batches <- t.io.Io_stats.log_flush_batches + 1;
    let batch_bytes = t.unflushed_bytes in
    let ts = if Trace.on () then Trace.now () else 0.0 in
    Media.random_write t.media t.clock t.io 0;
    Media.seq_write t.media t.clock t.io t.unflushed_bytes;
    t.unflushed_bytes <- 0;
    t.flushed_lsn <- t.end_lsn;
    Obs.observe Probes.flush_batch_bytes (float_of_int batch_bytes);
    if Trace.on () then
      Trace.complete ~cat:"wal" ~ts
        ~args:[ ("bytes", Trace.Int batch_bytes) ]
        "log.flush_batch"
  end

let flush_all t = flush t ~upto:(Lsn.of_int (max 1 (Lsn.to_int t.end_lsn - 1)))

(* ---------- record reads ---------- *)

(* Decode through the record cache; pure CPU layering, no I/O accounting.
   The hit path is the hot loop of every chain walk — one pointer chase
   through the segment's slot handle, no table lookup. *)
let decode_miss t seg i =
  t.io.Io_stats.log_record_misses <- t.io.Io_stats.log_record_misses + 1;
  let data = rec_data seg i in
  let r = Log_record.decode data in
  seg.s_cached.(i) <-
    Some
      (Lru.Weighted.add_node t.record_cache seg.s_lsns.(i) ~weight:(String.length data) r);
  r

let decode_cached t seg i =
  match seg.s_cached.(i) with
  | Some n when Lru.Weighted.alive n ->
      t.io.Io_stats.log_record_hits <- t.io.Io_stats.log_record_hits + 1;
      Lru.Weighted.touch t.record_cache n;
      Lru.Weighted.node_value n
  | _ -> decode_miss t seg i

(* Batch variant: a segment read is one logical access, so hits skip the
   per-record recency splice (the whole batch would land at the head of
   the LRU list anyway). *)
let decode_cached_quiet t seg i =
  match seg.s_cached.(i) with
  | Some n when Lru.Weighted.alive n ->
      t.io.Io_stats.log_record_hits <- t.io.Io_stats.log_record_hits + 1;
      Lru.Weighted.node_value n
  | _ -> decode_miss t seg i

(* Scan variant: reuse a live cached decode but never insert on a miss —
   a range scan over cold history would otherwise flush the hot chain
   entries out of the weighted LRU.  [append] seeds the cache with every
   record it encodes, so scans over fresh history (analysis passes,
   SplitLSN searches at snapshot creation) are pure hits. *)
let decode_scan t seg i =
  match seg.s_cached.(i) with
  | Some n when Lru.Weighted.alive n ->
      t.io.Io_stats.log_record_hits <- t.io.Io_stats.log_record_hits + 1;
      Lru.Weighted.node_value n
  | _ -> Log_record.decode (rec_data seg i)

let read_nocost t lsn =
  let si, i = locate t lsn in
  decode_cached t t.segs.(si) i

let read t lsn =
  let si, i = locate t lsn in
  let seg = t.segs.(si) in
  charge_blocks t seg lsn (rec_len seg i);
  decode_cached t seg i

(* Batched random read of an ascending LSN list.  Block accounting is the
   same as issuing [read] per record — each distinct block is a hit or one
   priced random read — but charged once per block instead of once per
   record, and the decodes go through the segment slot handles.  This is
   the fetch primitive under the batched [prepare_page_as_of]. *)
let read_segment_gen : 'a. t -> Lsn.t array -> (segment -> int -> 'a) -> 'a array =
 fun t lsns extract ->
  if Array.length lsns = 0 then [||]
  else begin
    (* Records are stored in ascending LSN order and the request is
       ascending, so after the first binary search each record is located
       by advancing a (segment, record) finger — the searches are only
       repeated across a long gap of other pages' records. *)
    let si = ref 0 and ri = ref 0 in
    let set_pos lsn =
      let s, i = locate t lsn in
      si := s;
      ri := i
    in
    set_pos lsns.(0);
    let last_block = ref (-1) in
    (* Byte position already covered by the charged blocks; records that
       end at or before it need no block arithmetic at all. *)
    let charged_upto = ref 0 in
    Array.map
      (fun lsn ->
        let li = Lsn.to_int lsn in
        let rec advance fuel =
          if !si >= t.seg_hi then set_pos lsn
          else begin
            let s = t.segs.(!si) in
            if !ri >= s.s_n then
              if !si + 1 < t.seg_hi then begin
                incr si;
                ri := 0;
                advance fuel
              end
              else set_pos lsn
            else if s.s_lsns.(!ri) = li then ()
            else if fuel = 0 || s.s_lsns.(!ri) > li then set_pos lsn
            else begin
              incr ri;
              advance (fuel - 1)
            end
          end
        in
        advance 32;
        let s = t.segs.(!si) in
        let i = !ri in
        let len = rec_len s i in
        if li + len - 1 > !charged_upto then begin
          let first_b, last_b = blocks_of t lsn len in
          for b = max first_b (!last_block + 1) to last_b do
            if Lru.use t.cache b then
              t.io.Io_stats.log_block_hits <- t.io.Io_stats.log_block_hits + 1
            else charge_block_miss t s
          done;
          if last_b > !last_block then begin
            last_block := last_b;
            charged_upto := ((last_b + 1) * t.block_bytes) - 1
          end
        end;
        ri := i + 1;
        extract s i)
      lsns
  end

let read_segment t lsns = read_segment_gen t lsns (fun s i -> decode_cached_quiet t s i)

(* Raw batch variant: identical block accounting, but the encoded bytes
   are copied out undecoded and the (single-domain) record cache is never
   consulted — no record hit/miss accounting at all.  This is the gather
   primitive of the parallel batch-rewind pipeline: workers decode the
   bytes off-thread, and the publish stage hands the decodes back through
   [feed_record_cache]. *)
let read_segment_raw t lsns = read_segment_gen t lsns rec_data

(* Publish-stage seeding: insert an already-decoded record into the
   record cache if its slot is empty or evicted.  Silent — no hit/miss
   accounting — so a batch that gathered raw and decoded off-thread
   leaves the cache as warm as a coordinator-side decode would have,
   without perturbing the counters the raw gather deliberately skipped. *)
let feed_record_cache t lsn record =
  match locate_opt t lsn with
  | None -> ()
  | Some (si, i) -> (
      let seg = t.segs.(si) in
      match seg.s_cached.(i) with
      | Some n when Lru.Weighted.alive n -> ()
      | _ ->
          seg.s_cached.(i) <-
            Some
              (Lru.Weighted.add_node t.record_cache seg.s_lsns.(i) ~weight:(rec_len seg i)
                 record))

let peek_record t lsn =
  let si, i = locate t lsn in
  rec_peek t.segs.(si) i

let mem t lsn =
  Lsn.(lsn >= t.truncated_below) && match locate_opt t lsn with Some _ -> true | None -> false

let next_lsn_after t lsn =
  let si, i = locate t lsn in
  Lsn.of_int (Lsn.to_int lsn + rec_len t.segs.(si) i)

(* ---------- range scans ---------- *)

(* Scans are priced sequentially, per record as it is visited, so an
   early-exit scan only pays for the region it actually read. *)
let charge_seq t bytes = Media.seq_read t.media t.clock t.io bytes

(* Drive [f seg i lsn] over records in [start_pos, upto), ascending,
   crossing segment boundaries. *)
let iter_from t start_pos ~upto f =
  match start_pos with
  | None -> ()
  | Some (si0, i0) ->
      let upto_i = Lsn.to_int upto in
      let si = ref si0 and i = ref i0 in
      let continue = ref true in
      while !continue && !si < t.seg_hi do
        let s = t.segs.(!si) in
        if !i >= s.s_n then begin
          incr si;
          i := 0
        end
        else if s.s_lsns.(!i) >= upto_i then continue := false
        else begin
          f s !i (Lsn.of_int s.s_lsns.(!i));
          incr i
        end
      done

let iter_range t ~from ~upto f =
  iter_from t (global_lower t from) ~upto (fun s i lsn ->
      charge_seq t (rec_len s i);
      f lsn (decode_scan t s i))

let iter_range_peek t ~from ~upto f =
  iter_from t (global_lower t from) ~upto (fun s i lsn ->
      charge_seq t (rec_len s i);
      f lsn (rec_peek s i) (fun () -> decode_cached t s i))

(* Raw variant for consumers that ship the encoded bytes elsewhere to
   decode (domain-parallel redo): same order and pricing as
   [iter_range_peek], but the thunk copies the encoded record out instead
   of decoding it, so the (single-domain) record cache is not involved. *)
let iter_range_raw t ~from ~upto f =
  iter_from t (global_lower t from) ~upto (fun s i lsn ->
      charge_seq t (rec_len s i);
      f lsn (rec_peek s i) (fun () -> rec_data s i))

let iter_range_rev t ~from ~upto f =
  let from_i = Lsn.to_int (Lsn.max from t.truncated_below) in
  let start =
    match global_lower t upto with
    | Some pos -> pred_pos t pos
    | None ->
        (* nothing at or above [upto]: start from the newest record *)
        if t.seg_hi > t.seg_lo then pred_pos t (t.seg_hi - 1, t.segs.(t.seg_hi - 1).s_n)
        else None
  in
  let pos = ref start in
  let continue = ref true in
  while !continue do
    match !pos with
    | None -> continue := false
    | Some (si, i) ->
        let s = t.segs.(si) in
        let li = s.s_lsns.(i) in
        if li < from_i then continue := false
        else begin
          charge_seq t (rec_len s i);
          f (Lsn.of_int li) (decode_scan t s i);
          pos := pred_pos t (si, i)
        end
  done

let fold_range t ~from ~upto ~init ~f =
  let acc = ref init in
  iter_range t ~from ~upto (fun lsn r -> acc := f !acc lsn r);
  !acc

let charge_scan t ~from ~upto =
  let lo = Lsn.max from t.truncated_below in
  let hi = Lsn.min upto t.end_lsn in
  let bytes = max 0 (Lsn.to_int hi - Lsn.to_int lo) in
  charge_seq t bytes

(* ---------- merged directory views ---------- *)

let checkpoints_before t lsn =
  (* Per-segment lists are descending; prepending newer segments' slices
     in front of older ones keeps the merged list descending. *)
  let res = ref [] in
  for si = t.seg_lo to t.seg_hi - 1 do
    let l =
      List.filter
        (fun c -> Lsn.(c <= lsn) && Lsn.(c >= t.truncated_below))
        t.segs.(si).s_ckpts
    in
    res := l @ !res
  done;
  !res

(* Newest retained checkpoint, for the crash/repair fallback of
   [last_checkpoint]. *)
let newest_checkpoint t =
  let res = ref Lsn.nil in
  let si = ref (t.seg_hi - 1) in
  while Lsn.is_nil !res && !si >= t.seg_lo do
    (match t.segs.(!si).s_ckpts with
    | c :: _ when Lsn.(c >= t.truncated_below) -> res := c
    | _ -> ());
    decr si
  done;
  !res

let earliest_fpi_after t page ~after =
  let pid = Page_id.to_int page in
  let ai = Lsn.to_int after in
  let res = ref None in
  let si = ref t.seg_lo in
  (* Oldest-first: the first segment holding a qualifying FPI holds the
     earliest one. *)
  while !res = None && !si < t.seg_hi do
    let s = t.segs.(!si) in
    if s.s_end > ai + 1 then begin
      match Hashtbl.find_opt s.s_fpi pid with
      | None -> ()
      | Some l ->
          (* The list is descending; the earliest FPI still > after is the
             last element before we cross the boundary. *)
          let rec go best = function
            | [] -> best
            | lsn :: rest ->
                if Lsn.(lsn > after) && Lsn.(lsn >= t.truncated_below) then go (Some lsn) rest
                else best
          in
          res := go None !l
    end;
    incr si
  done;
  !res

let empty_segment : Lsn.t array = [||]

let chain_segment t page ~from ~down_to =
  let pid = Page_id.to_int page in
  (* Clamp at the retention boundary: a straddling segment keeps its dead
     prefix physically, so the boundary must be enforced here rather than
     by eager pruning.  [chain_upper] is strict-greater, so the clamp
     value is one below the first retained LSN. *)
  let dt = Lsn.of_int (max (Lsn.to_int down_to) (Lsn.to_int t.truncated_below - 1)) in
  let from_i = Lsn.to_int from in
  if Lsn.(from <= dt) then empty_segment
  else begin
    let slices = ref [] in
    (* (arr, lo, n), newest first *)
    let total = ref 0 in
    for si = t.seg_lo to t.seg_hi - 1 do
      let s = t.segs.(si) in
      if s.s_end > Lsn.to_int dt + 1 && s.s_base <= from_i then
        match Hashtbl.find_opt s.s_chains pid with
        | None -> ()
        | Some c ->
            let lo = chain_upper c dt in
            let hi = chain_upper c from in
            if hi > lo then begin
              slices := (c.arr, lo, hi - lo) :: !slices;
              total := !total + (hi - lo)
            end
    done;
    match !slices with
    | [] -> empty_segment
    | [ (arr, lo, n) ] -> Array.sub arr lo n
    | l ->
        let out = Array.make !total Lsn.nil in
        let pos = ref !total in
        List.iter
          (fun (arr, lo, n) ->
            pos := !pos - n;
            Array.blit arr lo out !pos n)
          l;
        out
  end

let pages_changed_since t ~since =
  let acc = Hashtbl.create 64 in
  let tb = Lsn.to_int t.truncated_below in
  for si = t.seg_lo to t.seg_hi - 1 do
    let s = t.segs.(si) in
    if s.s_end > Lsn.to_int since + 1 then
      Hashtbl.iter
        (fun page c ->
          if
            c.len > 0
            && Lsn.(c.arr.(c.len - 1) > since)
            && Lsn.to_int c.arr.(c.len - 1) >= tb
          then Hashtbl.replace acc page ())
        s.s_chains
  done;
  Hashtbl.fold (fun p () l -> Page_id.of_int p :: l) acc []

let prefetch t lsns =
  (* Resolve every requested record to its block set; unknown or truncated
     LSNs are skipped — prefetch is advisory, the subsequent [read] is what
     reports errors.  Each block carries whether it serves a spilled
     (cold) segment, for the reload probe. *)
  let blocks = ref [] in
  List.iter
    (fun lsn ->
      if Lsn.(lsn >= t.truncated_below) then
        match locate_opt t lsn with
        | Some (si, i) ->
            let s = t.segs.(si) in
            let cold = not s.s_resident in
            let first, last = blocks_of t lsn (rec_len s i) in
            for b = first to last do
              blocks := (b, cold) :: !blocks
            done
        | None -> ())
    lsns;
  let blocks = List.sort_uniq compare !blocks in
  (* Merge duplicate block entries (a boundary block shared by a resident
     and a spilled segment): cold wins. *)
  let blocks =
    List.rev
      (List.fold_left
         (fun acc (b, c) ->
           match acc with
           | (b', c') :: rest when b' = b -> (b', c' || c) :: rest
           | _ -> (b, c) :: acc)
         [] blocks)
  in
  let count_load cold =
    if cold then begin
      t.loaded_count <- t.loaded_count + 1;
      Obs.incr Probes.log_segments_loaded
    end
  in
  (* Consecutive missing blocks are fetched as one run: a single seek plus
     sequential transfer, instead of one random I/O per block.  This is the
     whole point of batching chain reads in LSN order. *)
  let rec go = function
    | [] -> ()
    | (b, cold) :: rest ->
        if Lru.use t.cache b then begin
          t.io.Io_stats.log_block_hits <- t.io.Io_stats.log_block_hits + 1;
          go rest
        end
        else begin
          t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
          Media.random_read t.media t.clock t.io t.block_bytes;
          count_load cold;
          let rec run prev = function
            | (b', cold') :: rest' when b' = prev + 1 && not (Lru.mem t.cache b') ->
                ignore (Lru.use t.cache b');
                t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
                Media.seq_read t.media t.clock t.io t.block_bytes;
                count_load cold';
                run b' rest'
            | rest' -> rest'
          in
          go (run b rest)
        end
  in
  go blocks

(* ---------- truncation (retention) ---------- *)

let drop_record_cache_entry t seg i =
  (match seg.s_cached.(i) with
  | Some n when Lru.Weighted.alive n -> Lru.Weighted.remove t.record_cache seg.s_lsns.(i)
  | _ -> ());
  seg.s_cached.(i) <- None

(* Drop a whole segment: its record-cache slots are released and its
   index tables become garbage in one step — this is what makes
   retention O(1) per segment instead of O(records). *)
let drop_segment t ~counted seg =
  for i = seg.s_dead to seg.s_n - 1 do
    drop_record_cache_entry t seg i
  done;
  if seg.s_resident then t.resident_payload <- t.resident_payload - seg_used seg;
  t.index_bytes <- t.index_bytes - seg.s_index_bytes;
  t.nrecords <- t.nrecords - (seg.s_n - seg.s_dead);
  if counted then begin
    t.dropped_count <- t.dropped_count + 1;
    Obs.incr Probes.log_segments_dropped
  end

let truncate_before t lsn =
  if Lsn.(lsn > t.truncated_below) then begin
    let li = Lsn.to_int lsn in
    (* Whole sealed segments below the cut go wholesale. *)
    while t.seg_lo < t.seg_hi && t.segs.(t.seg_lo).s_end <= li do
      drop_segment t ~counted:true t.segs.(t.seg_lo);
      t.segs.(t.seg_lo) <- tombstone;
      t.seg_lo <- t.seg_lo + 1
    done;
    t.truncated_below <- lsn;
    (* The straddling segment (if any) keeps its dead prefix physically —
       it is immutable — but the prefix's record-cache slots are released
       and the records leave the retained count.  The block cache needs no
       invalidation: membership is a cost-model artifact, and a dropped
       LSN can never be served from it because every read path checks
       [truncated_below] before touching a block. *)
    if t.seg_lo < t.seg_hi then begin
      let s = t.segs.(t.seg_lo) in
      if s.s_base < li then begin
        let dead = rec_lower s li in
        if dead > s.s_dead then begin
          for i = s.s_dead to dead - 1 do
            drop_record_cache_entry t s i
          done;
          t.nrecords <- t.nrecords - (dead - s.s_dead);
          s.s_dead <- dead
        end
      end
    end;
    t.invalidation_epoch <- t.invalidation_epoch + 1;
    (* Txn summaries whose first record fell below the boundary can no
       longer be rewound or replayed; drop them wholesale. *)
    let dead =
      Hashtbl.fold
        (fun key acc dead -> if Lsn.(acc.a_first < lsn) then key :: dead else dead)
        t.txn_index []
    in
    List.iter (Hashtbl.remove t.txn_index) dead;
    update_resident_gauge t
  end

(* ---------- persistence ---------- *)

let dump_entries t =
  let acc = ref [] in
  for si = t.seg_hi - 1 downto t.seg_lo do
    let s = t.segs.(si) in
    for i = s.s_n - 1 downto s.s_dead do
      acc := (Lsn.of_int s.s_lsns.(i), rec_data s i) :: !acc
    done
  done;
  !acc

let restore_entries t entries =
  if t.nrecords > 0 || Lsn.to_int t.end_lsn > 1 then
    invalid_arg "Log_manager.restore_entries: log not empty";
  (match entries with
  | [] -> ()
  | (first, _) :: _ ->
      t.truncated_below <- first;
      t.flushed_lsn <- first;
      t.end_lsn <- first);
  List.iter
    (fun (lsn, data) ->
      if not (Lsn.equal lsn t.end_lsn) then
        invalid_arg "Log_manager.restore_entries: non-contiguous entries";
      let seg = raw_append t data lsn in
      let pk = Log_record.peek data in
      index_record t seg pk lsn;
      if t.txn_index_valid then note_record t lsn pk ~wall:(wall_of_data data);
      (* Replay sealing so a restored log has the same segment shape as
         the one that was dumped — but unpriced: persistence is an
         offline operation. *)
      if seg_used seg >= t.segment_bytes then seal_segment t ~priced:false seg)
    entries;
  t.flushed_lsn <- t.end_lsn;
  t.last_checkpoint <- newest_checkpoint t;
  update_resident_gauge t

(* ---------- crash simulation and tail repair ---------- *)

(* Remove the newest record; pops the tail segment once it has no live
   records left. *)
let remove_last t =
  let si = t.seg_hi - 1 in
  let s = t.segs.(si) in
  let i = s.s_n - 1 in
  let li = s.s_lsns.(i) in
  let len = rec_len s i in
  Lru.Weighted.remove t.record_cache li;
  (try unindex_record t s (rec_peek s i) (Lsn.of_int li) with _ -> ());
  s.s_cached.(i) <- None;
  s.s_n <- i;
  s.s_end <- li;
  if s.s_resident then t.resident_payload <- t.resident_payload - len;
  t.nrecords <- t.nrecords - 1;
  if s.s_n <= s.s_dead then begin
    (* No live records left in the tail segment; its dead prefix (if any)
       already left the retained count at truncation time. *)
    t.index_bytes <- t.index_bytes - s.s_index_bytes;
    t.segs.(si) <- tombstone;
    t.seg_hi <- si
  end

(* Records (across segments) with start LSN >= target. *)
let records_from t target =
  match global_lower t target with
  | None -> 0
  | Some (si, i) ->
      let n = ref (t.segs.(si).s_n - i) in
      for s = si + 1 to t.seg_hi - 1 do
        n := !n + t.segs.(s).s_n
      done;
      !n

(* Drop every record with start LSN >= [ti] off the newest end of the
   log: whole segments above the cut go wholesale (indexes freed per
   segment), the straddler sheds records one by one.  Shared by
   [repair_tail] (cut = first torn record) and [truncate_from] (cut =
   replication divergence point).  Callers fix up [end_lsn]/
   [flushed_lsn]/[last_checkpoint] afterwards. *)
let drop_tail_records t ti =
  let dropped = ref 0 in
  while t.seg_hi > t.seg_lo && t.segs.(t.seg_hi - 1).s_base >= ti do
    let s = t.segs.(t.seg_hi - 1) in
    dropped := !dropped + (s.s_n - s.s_dead);
    drop_segment t ~counted:false s;
    t.segs.(t.seg_hi - 1) <- tombstone;
    t.seg_hi <- t.seg_hi - 1
  done;
  while
    t.seg_hi > t.seg_lo
    &&
    let s = t.segs.(t.seg_hi - 1) in
    s.s_n > s.s_dead && s.s_lsns.(s.s_n - 1) >= ti
  do
    remove_last t;
    incr dropped
  done;
  !dropped

let truncate_from t lsn =
  if Lsn.(lsn >= t.end_lsn) then 0
  else begin
    let dropped = drop_tail_records t (Lsn.to_int lsn) in
    let phys_end =
      if t.seg_hi > t.seg_lo then t.segs.(t.seg_hi - 1).s_end
      else Lsn.to_int t.truncated_below
    in
    t.end_lsn <- Lsn.of_int phys_end;
    if Lsn.(t.flushed_lsn > t.end_lsn) then t.flushed_lsn <- t.end_lsn;
    t.unflushed_bytes <- 0;
    if Lsn.(t.last_checkpoint >= t.end_lsn) then t.last_checkpoint <- newest_checkpoint t;
    (* The dropped LSNs will be recycled by whoever appends next (the new
       primary's stream, re-shipped) — derived rewound state is void. *)
    t.invalidation_epoch <- t.invalidation_epoch + 1;
    void_txn_index t;
    update_resident_gauge t;
    dropped
  end

let crash t =
  (* A torn log tail: the OS may have pushed a prefix of the unflushed
     records to the platter before the crash, with the last of them torn
     mid-write.  The surviving prefix never reaches below [flushed_lsn],
     so every acknowledged commit is intact by construction — the tear is
     strictly in the never-acknowledged tail. *)
  let unflushed_records = records_from t t.flushed_lsn in
  let keep =
    match t.fault_plan with
    | Some plan when unflushed_records > 0 && Fault_plan.tear_log_tail plan ->
        Fault_plan.torn_tail_keep plan ~len:unflushed_records
    | _ -> 0
  in
  for _ = 1 to unflushed_records - keep do
    remove_last t
  done;
  if keep > 0 then begin
    (* Tear the last survivor: only a prefix of its bytes hit the disk.
       Unindex it while its header is still intact; recovery's CRC scan
       ([repair_tail]) will find the stump and truncate there.  The stump
       stays listed in its segment — [s_end] just stops short, exactly as
       a torn file would. *)
    let s = t.segs.(t.seg_hi - 1) in
    let i = s.s_n - 1 in
    let li = s.s_lsns.(i) in
    let len = rec_len s i in
    let cut = Fault_plan.torn_record_cut (Option.get t.fault_plan) ~len in
    Lru.Weighted.remove t.record_cache li;
    (try unindex_record t s (rec_peek s i) (Lsn.of_int li) with _ -> ());
    s.s_cached.(i) <- None;
    s.s_end <- li + cut;
    if s.s_resident then t.resident_payload <- t.resident_payload - (len - cut);
    t.end_lsn <- Lsn.of_int (li + cut);
    t.io.Io_stats.faults_injected <- t.io.Io_stats.faults_injected + 1
  end
  else t.end_lsn <- t.flushed_lsn;
  t.flushed_lsn <- t.end_lsn;
  t.unflushed_bytes <- 0;
  if Lsn.(t.last_checkpoint >= t.end_lsn) then t.last_checkpoint <- newest_checkpoint t;
  (* LSNs above the surviving tail will be recycled by post-restart
     appends; any rewound state derived from the pre-crash log is void. *)
  t.invalidation_epoch <- t.invalidation_epoch + 1;
  void_txn_index t;
  update_resident_gauge t

let repair_tail t =
  (* Recovery's torn-tail detector: validate record CRCs forward from the
     last durable checkpoint (a tear can only live in the crash-time tail,
     which is always above it) and truncate the log at the first record
     that fails.  WAL semantics: nothing after a tear can be trusted, even
     if its bytes happen to look whole.  CRCs are checked in place in the
     segment blobs — no record is extracted. *)
  let from =
    if Lsn.(t.last_checkpoint > Lsn.nil) then t.last_checkpoint else t.truncated_below
  in
  let scanned = ref 0 in
  let torn = ref None in
  let pos = ref (global_lower t from) in
  let continue = ref true in
  while !continue do
    match !pos with
    | None -> continue := false
    | Some (si, i) ->
        let s = t.segs.(si) in
        if i >= s.s_n then pos := (if si + 1 < t.seg_hi then Some (si + 1, 0) else None)
        else begin
          let len = rec_len s i in
          scanned := !scanned + len;
          if Log_record.check_bytes s.s_blob ~pos:(rec_pos s i) ~len then pos := Some (si, i + 1)
          else begin
            torn := Some s.s_lsns.(i);
            continue := false
          end
        end
  done;
  charge_seq t !scanned;
  match !torn with
  | None -> None
  | Some torn_i ->
      let torn_lsn = Lsn.of_int torn_i in
      let dropped = drop_tail_records t torn_i in
      t.end_lsn <- torn_lsn;
      if Lsn.(t.flushed_lsn > torn_lsn) then t.flushed_lsn <- torn_lsn;
      t.unflushed_bytes <- 0;
      if Lsn.(t.last_checkpoint >= torn_lsn) then t.last_checkpoint <- newest_checkpoint t;
      t.io.Io_stats.corruptions_detected <- t.io.Io_stats.corruptions_detected + 1;
      void_txn_index t;
      update_resident_gauge t;
      Some (torn_lsn, dropped)

(* ---------- replication export / ingest ---------- *)

type export = {
  ex_from : Lsn.t;
  ex_next : Lsn.t;
  ex_sealed : bool;
  ex_entries : (Lsn.t * string) list;
}

let export_from t ~from =
  if Lsn.(from < t.truncated_below) then raise (Log_truncated from);
  if Lsn.(from >= t.flushed_lsn) then None
  else
    match global_lower t from with
    | None -> None
    | Some (si, i0) ->
        let s = t.segs.(si) in
        let fl = Lsn.to_int t.flushed_lsn in
        (* The shipping unit is the rest of the segment holding [from]:
           a whole sealed-segment suffix, or the durable prefix of the
           active tail.  The crash-time tail (records at or above
           [flushed_lsn]) never ships — replicas replay committed-only,
           acknowledged history. *)
        let stop = ref i0 in
        while !stop < s.s_n && s.s_lsns.(!stop) < fl do
          incr stop
        done;
        if !stop = i0 then None
        else begin
          let acc = ref [] in
          let bytes = ref 0 in
          for j = !stop - 1 downto i0 do
            let data = rec_data s j in
            bytes := !bytes + String.length data;
            acc := (Lsn.of_int s.s_lsns.(j), data) :: !acc
          done;
          (* Shipping reads the log back: one sequential scan of the
             exported region on the primary's log device. *)
          charge_seq t !bytes;
          let next =
            if !stop < s.s_n then Lsn.of_int s.s_lsns.(!stop) else Lsn.of_int s.s_end
          in
          Some
            {
              ex_from = Lsn.of_int s.s_lsns.(i0);
              ex_next = next;
              ex_sealed = s.s_sealed && !stop = s.s_n;
              ex_entries = !acc;
            }
        end

let segments_behind t ~from =
  (* Lag is measured against the durable horizon: the unflushed tail is
     not shippable (it could still be lost to a crash), so a replica that
     holds every flushed record is caught up even while the tail grows. *)
  if Lsn.(from >= t.flushed_lsn) then 0
  else match global_lower t from with None -> 0 | Some (si, _) -> t.seg_hi - si

let ingest_entries t entries =
  (match entries with
  | (first, _) :: _ when t.nrecords = 0 && Lsn.to_int t.end_lsn <= Lsn.to_int first ->
      (* First shipment into a fresh log: adopt the primary's origin,
         exactly as [restore_entries] does for a persisted dump. *)
      t.truncated_below <- first;
      t.flushed_lsn <- first;
      t.end_lsn <- first
  | _ -> ());
  let applied = ref 0 in
  List.iter
    (fun (lsn, data) ->
      if Lsn.(lsn < t.end_lsn) then ()
        (* duplicate shipment (channel retry/dup fault): idempotent skip *)
      else begin
        if not (Lsn.equal lsn t.end_lsn) then
          invalid_arg "Log_manager.ingest_entries: gap in shipped records";
        let seg = raw_append t data lsn in
        t.unflushed_bytes <- t.unflushed_bytes + String.length data;
        touch_cache_on_append t lsn (String.length data);
        let pk = Log_record.peek data in
        index_record t seg pk lsn;
        if t.txn_index_valid then note_record t lsn pk ~wall:(wall_of_data data);
        incr applied;
        if seg_used seg >= t.segment_bytes then seal_segment t seg
      end)
    entries;
  (* The replica persists its log copy before applying it — shipped
     records are durable on arrival, priced as one sequential write.
     The master record is NOT advanced here: the replica controls its
     recovery checkpoint explicitly (after flushing redone pages). *)
  if !applied > 0 then flush t ~upto:t.end_lsn else update_resident_gauge t;
  !applied

(* ---------- txn write-set summaries (what-if dependency graphs) ---------- *)

type txn_summary = {
  ts_txn : Txn_id.t;
  ts_first_lsn : Lsn.t;
  ts_last_lsn : Lsn.t;
  ts_commit_lsn : Lsn.t;
  ts_commit_wall_us : float;
  ts_ops : int;
  ts_has_clr : bool;
  ts_structural : bool;
  ts_writes : (Page_id.t * Lsn.t) list;
}

let txn_index_live t = t.txn_index_valid

let rebuild_txn_index t =
  Hashtbl.reset t.txn_index;
  t.txn_index_valid <- false;
  (* A transaction whose first retained record carries a non-nil backward
     pointer continues below the retention boundary: its truncated prefix
     would leave the rebuilt summary's write set understated, so such
     accumulators are dropped after the scan — the same rule
     [truncate_before] applies incrementally (a_first < boundary). *)
  let straddlers = Hashtbl.create 8 in
  (try
     iter_range_peek t ~from:t.truncated_below ~upto:t.end_lsn (fun lsn pk decode ->
         let txn = pk.Log_record.p_txn in
         if
           (not (Txn_id.is_nil txn))
           && (not (Hashtbl.mem t.txn_index (Txn_id.to_int txn)))
           && not (Lsn.is_nil pk.Log_record.p_prev_txn_lsn)
         then Hashtbl.replace straddlers (Txn_id.to_int txn) ();
         note_record t lsn pk
           ~wall:
             (lazy
               (match (decode ()).Log_record.body with
               | Log_record.Commit { wall_us } -> wall_us
               | _ -> 0.0)))
   with e ->
     (* A failed scan must not leave a half-populated index serving
        queries: stay void, the next query retries the rebuild. *)
     Hashtbl.reset t.txn_index;
     raise e);
  Hashtbl.iter (fun key () -> Hashtbl.remove t.txn_index key) straddlers;
  t.txn_index_valid <- true

let txn_summaries t =
  if not t.txn_index_valid then rebuild_txn_index t;
  Hashtbl.fold
    (fun _ a acc ->
      if (not (Lsn.is_nil a.a_commit)) && not a.a_aborted then
        {
          ts_txn = a.a_txn;
          ts_first_lsn = a.a_first;
          ts_last_lsn = a.a_last_op;
          ts_commit_lsn = a.a_commit;
          ts_commit_wall_us = a.a_wall;
          ts_ops = a.a_ops;
          ts_has_clr = a.a_clr;
          ts_structural = a.a_structural;
          ts_writes = List.rev a.a_writes_rev;
        }
        :: acc
      else acc)
    t.txn_index []
  |> List.sort (fun x y -> Lsn.compare x.ts_commit_lsn y.ts_commit_lsn)

let txn_resolution t txn =
  if Txn_id.is_nil txn then `Unknown
  else begin
    if not t.txn_index_valid then rebuild_txn_index t;
    match Hashtbl.find_opt t.txn_index (Txn_id.to_int txn) with
    | None -> `Unknown
    | Some a ->
        if a.a_aborted then `Aborted
        else if not (Lsn.is_nil a.a_commit) then `Committed
        else `Active
  end

let txn_summary t txn =
  if not t.txn_index_valid then rebuild_txn_index t;
  match Hashtbl.find_opt t.txn_index (Txn_id.to_int txn) with
  | Some a when (not (Lsn.is_nil a.a_commit)) && not a.a_aborted ->
      Some
        {
          ts_txn = a.a_txn;
          ts_first_lsn = a.a_first;
          ts_last_lsn = a.a_last_op;
          ts_commit_lsn = a.a_commit;
          ts_commit_wall_us = a.a_wall;
          ts_ops = a.a_ops;
          ts_has_clr = a.a_clr;
          ts_structural = a.a_structural;
          ts_writes = List.rev a.a_writes_rev;
        }
  | _ -> None
