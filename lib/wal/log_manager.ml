module Lsn = Rw_storage.Lsn
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats

exception Log_truncated of Lsn.t
exception No_such_record of Lsn.t

type entry = {
  lsn : Lsn.t;
  data : string;
  mutable cached : Log_record.t Lru.Weighted.node option;
      (* Slot handle into the decoded-record cache: a hit is one pointer
         chase plus a liveness check, no table lookup.  A dead handle (the
         cache evicted the slot) reads as a miss and is overwritten. *)
}

let empty_entry () = { lsn = Lsn.nil; data = ""; cached = None }

(* Growable sorted array: one page's chain record LSNs, ascending. *)
type chain = { mutable arr : Lsn.t array; mutable len : int }

module Fault_plan = Rw_storage.Fault_plan
module Obs = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Trace = Rw_obs.Trace

type t = {
  clock : Sim_clock.t;
  media : Media.t;
  io : Io_stats.t;
  fault_plan : Fault_plan.t option;
  mutable entries : entry array;
  mutable start : int; (* first live index (moves on truncation) *)
  mutable count : int; (* one past last live index *)
  index : (int, int) Hashtbl.t; (* lsn -> entry index *)
  mutable end_lsn : Lsn.t;
  mutable flushed_lsn : Lsn.t;
  mutable truncated_below : Lsn.t;
  cache : Lru.t;
  block_bytes : int;
  record_cache : Log_record.t Lru.Weighted.t;
      (* Decoded records keyed by LSN, weighed by encoded size.  Layered
         over the block cache: block accounting (and therefore simulated
         I/O cost) is identical whether or not a decode is skipped. *)
  mutable last_checkpoint : Lsn.t;
  mutable checkpoint_lsns : Lsn.t list; (* descending *)
  fpi_index : (int, Lsn.t list ref) Hashtbl.t; (* page -> descending FPI lsns *)
  chain_index : (int, chain) Hashtbl.t;
      (* page -> ascending LSNs of every Page_op/Clr record for that page;
         the page's whole backward chain, materialised.  Maintained on
         append/restore/truncate/crash exactly like [fpi_index]. *)
  mutable total_appended_bytes : int;
  mutable unflushed_bytes : int;
}

let create ~clock ~media ?(cache_blocks = 128) ?(block_bytes = 65536)
    ?(record_cache_bytes = 4 * 1024 * 1024) ?fault_plan () =
  {
    clock;
    media;
    io = Io_stats.create ();
    fault_plan;
    entries = Array.make 1024 (empty_entry ());
    start = 0;
    count = 0;
    index = Hashtbl.create 4096;
    end_lsn = Lsn.of_int 1;
    flushed_lsn = Lsn.of_int 1;
    truncated_below = Lsn.of_int 1;
    cache = Lru.create ~capacity:cache_blocks;
    block_bytes;
    record_cache = Lru.Weighted.create ~capacity_bytes:record_cache_bytes;
    last_checkpoint = Lsn.nil;
    checkpoint_lsns = [];
    fpi_index = Hashtbl.create 256;
    chain_index = Hashtbl.create 1024;
    total_appended_bytes = 0;
    unflushed_bytes = 0;
  }

let clock t = t.clock
let stats t = t.io
let flushed_lsn t = t.flushed_lsn
let end_lsn t = t.end_lsn
let first_lsn t = t.truncated_below
let last_checkpoint t = t.last_checkpoint
let set_last_checkpoint t lsn = t.last_checkpoint <- lsn
let total_appended_bytes t = t.total_appended_bytes
let retained_bytes t = Lsn.to_int t.end_lsn - Lsn.to_int t.truncated_below
let record_count t = t.count - t.start
let record_cache_bytes t = Lru.Weighted.size_bytes t.record_cache

let grow t =
  if t.count = Array.length t.entries then begin
    let live = t.count - t.start in
    let cap = max 1024 (2 * live) in
    let entries = Array.make cap (empty_entry ()) in
    Array.blit t.entries t.start entries 0 live;
    (* Entry indices shift by [t.start]; rebuild the lsn index. *)
    Hashtbl.reset t.index;
    for i = 0 to live - 1 do
      Hashtbl.replace t.index (Lsn.to_int entries.(i).lsn) i
    done;
    t.entries <- entries;
    t.count <- live;
    t.start <- 0
  end

let blocks_of t lsn len =
  let first = (Lsn.to_int lsn - 1) / t.block_bytes in
  let last = (Lsn.to_int lsn - 1 + max 0 (len - 1)) / t.block_bytes in
  (first, last)

let touch_cache_on_append t lsn len =
  let first, last = blocks_of t lsn len in
  for b = first to last do
    ignore (Lru.use t.cache b)
  done

let push_descending table key lsn =
  let l =
    match Hashtbl.find_opt table key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace table key l;
        l
  in
  l := lsn :: !l

(* A page's chain is a sorted array (appends arrive in LSN order), so
   [chain_segment] is two binary searches plus one [Array.sub] — no list
   walk, no per-record allocation. *)
let chain_push t key lsn =
  let c =
    match Hashtbl.find_opt t.chain_index key with
    | Some c -> c
    | None ->
        let c = { arr = Array.make 8 Lsn.nil; len = 0 } in
        Hashtbl.replace t.chain_index key c;
        c
  in
  if c.len = Array.length c.arr then begin
    let bigger = Array.make (2 * c.len) Lsn.nil in
    Array.blit c.arr 0 bigger 0 c.len;
    c.arr <- bigger
  end;
  c.arr.(c.len) <- lsn;
  c.len <- c.len + 1

let chain_remove t key lsn =
  match Hashtbl.find_opt t.chain_index key with
  | None -> ()
  | Some c ->
      (* Removals come from [crash], which discards newest-first, so the
         target is almost always the last element. *)
      let i = ref (c.len - 1) in
      while !i >= 0 && not (Lsn.equal c.arr.(!i) lsn) do
        decr i
      done;
      if !i >= 0 then begin
        Array.blit c.arr (!i + 1) c.arr !i (c.len - !i - 1);
        c.len <- c.len - 1
      end

(* First index in [c] with value > v (c sorted ascending). *)
let chain_upper c v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Lsn.(c.arr.(mid) <= v) then go (mid + 1) hi else go lo mid
  in
  go 0 c.len

(* Directory maintenance from a header peek — shared by append, restore
   and crash so no path needs a payload decode to keep the indexes true. *)
let index_record t pk lsn =
  (match pk.Log_record.p_kind with
  | Log_record.K_page_op Log_record.K_full_image ->
      push_descending t.fpi_index (Page_id.to_int pk.Log_record.p_page) lsn
  | Log_record.K_checkpoint -> t.checkpoint_lsns <- lsn :: t.checkpoint_lsns
  | _ -> ());
  if Log_record.is_page_kind pk.Log_record.p_kind then
    chain_push t (Page_id.to_int pk.Log_record.p_page) lsn

let unindex_record t pk lsn =
  (match pk.Log_record.p_kind with
  | Log_record.K_page_op Log_record.K_full_image -> (
      match Hashtbl.find_opt t.fpi_index (Page_id.to_int pk.Log_record.p_page) with
      | Some l -> l := List.filter (fun f -> not (Lsn.equal f lsn)) !l
      | None -> ())
  | Log_record.K_checkpoint ->
      t.checkpoint_lsns <- List.filter (fun c -> not (Lsn.equal c lsn)) t.checkpoint_lsns
  | _ -> ());
  if Log_record.is_page_kind pk.Log_record.p_kind then
    chain_remove t (Page_id.to_int pk.Log_record.p_page) lsn

let append t record =
  let data = Log_record.encode record in
  let len = String.length data in
  let lsn = t.end_lsn in
  grow t;
  let e = { lsn; data; cached = None } in
  t.entries.(t.count) <- e;
  Hashtbl.replace t.index (Lsn.to_int lsn) t.count;
  t.count <- t.count + 1;
  t.end_lsn <- Lsn.of_int (Lsn.to_int lsn + len);
  t.total_appended_bytes <- t.total_appended_bytes + len;
  t.unflushed_bytes <- t.unflushed_bytes + len;
  touch_cache_on_append t lsn len;
  index_record t (Log_record.peek data) lsn;
  (* The record object is in hand; seed the decoded cache so the first
     chain walk over fresh history never decodes. *)
  e.cached <- Some (Lru.Weighted.add_node t.record_cache (Lsn.to_int lsn) ~weight:len record);
  Obs.incr Probes.log_appends;
  Obs.add Probes.log_append_bytes len;
  lsn

let unflushed_bytes t = t.unflushed_bytes

let flush t ~upto =
  t.io.Io_stats.log_flush_calls <- t.io.Io_stats.log_flush_calls + 1;
  if Lsn.(t.flushed_lsn <= upto) && Lsn.(t.flushed_lsn < t.end_lsn) then begin
    (* Group commit: one sync plus the sequential transfer of everything
       buffered.  Requests already covered by an earlier batch fall through
       without touching the device — the calls/batches counter gap is the
       coalescing the write path achieves. *)
    t.io.Io_stats.log_flush_batches <- t.io.Io_stats.log_flush_batches + 1;
    let batch_bytes = t.unflushed_bytes in
    let ts = if Trace.on () then Trace.now () else 0.0 in
    Media.random_write t.media t.clock t.io 0;
    Media.seq_write t.media t.clock t.io t.unflushed_bytes;
    t.unflushed_bytes <- 0;
    t.flushed_lsn <- t.end_lsn;
    Obs.observe Probes.flush_batch_bytes (float_of_int batch_bytes);
    if Trace.on () then
      Trace.complete ~cat:"wal" ~ts
        ~args:[ ("bytes", Trace.Int batch_bytes) ]
        "log.flush_batch"
  end

let flush_all t = flush t ~upto:(Lsn.of_int (max 1 (Lsn.to_int t.end_lsn - 1)))

let find_index t lsn =
  if Lsn.(lsn < t.truncated_below) then raise (Log_truncated lsn);
  match Hashtbl.find_opt t.index (Lsn.to_int lsn) with
  | Some i when i >= t.start && i < t.count -> i
  | _ -> raise (No_such_record lsn)

(* Decode through the record cache; pure CPU layering, no I/O accounting.
   The hit path is the hot loop of every chain walk — one pointer chase
   through the entry's slot handle, no table lookup. *)
let decode_miss t e =
  t.io.Io_stats.log_record_misses <- t.io.Io_stats.log_record_misses + 1;
  let r = Log_record.decode e.data in
  e.cached <-
    Some
      (Lru.Weighted.add_node t.record_cache (Lsn.to_int e.lsn) ~weight:(String.length e.data) r);
  r

let decode_cached t e =
  match e.cached with
  | Some n when Lru.Weighted.alive n ->
      t.io.Io_stats.log_record_hits <- t.io.Io_stats.log_record_hits + 1;
      Lru.Weighted.touch t.record_cache n;
      Lru.Weighted.node_value n
  | _ -> decode_miss t e

(* Batch variant: a segment read is one logical access, so hits skip the
   per-record recency splice (the whole segment would land at the head of
   the LRU list anyway). *)
let decode_cached_quiet t e =
  match e.cached with
  | Some n when Lru.Weighted.alive n ->
      t.io.Io_stats.log_record_hits <- t.io.Io_stats.log_record_hits + 1;
      Lru.Weighted.node_value n
  | _ -> decode_miss t e

let read_nocost t lsn =
  let i = find_index t lsn in
  decode_cached t t.entries.(i)

let charge_blocks t e =
  let first, last = blocks_of t e.lsn (String.length e.data) in
  for b = first to last do
    if Lru.use t.cache b then t.io.Io_stats.log_block_hits <- t.io.Io_stats.log_block_hits + 1
    else begin
      t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
      Media.random_read t.media t.clock t.io t.block_bytes
    end
  done

let read t lsn =
  let i = find_index t lsn in
  let e = t.entries.(i) in
  charge_blocks t e;
  decode_cached t e

(* Batched random read of an ascending LSN list.  Block accounting is the
   same as issuing [read] per record — each distinct block is a hit or one
   priced random read — but charged once per block instead of once per
   record, and the decodes go through the entry slot handles.  This is the
   fetch primitive under the batched [prepare_page_as_of]. *)
let read_segment t lsns =
  if Array.length lsns = 0 then [||]
  else begin
    (* Entries are stored in ascending LSN order and the segment is
       ascending, so after the first table lookup each record is located
       by advancing a finger through the array — the lookup table is only
       consulted again across a long gap of other pages' records. *)
    let finger = ref (find_index t lsns.(0)) in
    let last_block = ref (-1) in
    (* Byte position already covered by the charged blocks; records that
       end at or before it need no block arithmetic at all. *)
    let charged_upto = ref 0 in
    Array.map
      (fun lsn ->
        let i =
          if !finger < t.count && Lsn.equal t.entries.(!finger).lsn lsn then !finger
          else begin
            let j = ref (!finger + 1) in
            let fuel = ref 32 in
            while !fuel > 0 && !j < t.count && not (Lsn.equal t.entries.(!j).lsn lsn) do
              incr j;
              decr fuel
            done;
            if !j < t.count && Lsn.equal t.entries.(!j).lsn lsn then !j else find_index t lsn
          end
        in
        finger := i + 1;
        let e = t.entries.(i) in
        if Lsn.to_int e.lsn + String.length e.data - 1 > !charged_upto then begin
          let first_b, last_b = blocks_of t e.lsn (String.length e.data) in
          for b = max first_b (!last_block + 1) to last_b do
            if Lru.use t.cache b then
              t.io.Io_stats.log_block_hits <- t.io.Io_stats.log_block_hits + 1
            else begin
              t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
              Media.random_read t.media t.clock t.io t.block_bytes
            end
          done;
          if last_b > !last_block then begin
            last_block := last_b;
            charged_upto := ((last_b + 1) * t.block_bytes) - 1
          end
        end;
        decode_cached_quiet t e)
      lsns
  end

let peek_record t lsn =
  let i = find_index t lsn in
  Log_record.peek t.entries.(i).data

let mem t lsn =
  Lsn.(lsn >= t.truncated_below)
  &&
  match Hashtbl.find_opt t.index (Lsn.to_int lsn) with
  | Some i -> i >= t.start && i < t.count
  | None -> false

let next_lsn_after t lsn =
  let i = find_index t lsn in
  Lsn.of_int (Lsn.to_int lsn + String.length t.entries.(i).data)

(* Binary search for the first live entry with lsn >= target. *)
let lower_bound t target =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Lsn.(t.entries.(mid).lsn < target) then go (mid + 1) hi else go lo mid
  in
  go t.start t.count

(* Scans are priced sequentially, per record as it is visited, so an
   early-exit scan only pays for the region it actually read. *)
let charge_seq t bytes = Media.seq_read t.media t.clock t.io bytes

let iter_range t ~from ~upto f =
  let i = ref (lower_bound t from) in
  while !i < t.count && Lsn.(t.entries.(!i).lsn < upto) do
    let e = t.entries.(!i) in
    charge_seq t (String.length e.data);
    f e.lsn (Log_record.decode e.data);
    incr i
  done

let iter_range_peek t ~from ~upto f =
  let i = ref (lower_bound t from) in
  while !i < t.count && Lsn.(t.entries.(!i).lsn < upto) do
    let e = t.entries.(!i) in
    charge_seq t (String.length e.data);
    f e.lsn (Log_record.peek e.data) (fun () -> decode_cached t e);
    incr i
  done

let iter_range_rev t ~from ~upto f =
  let first = lower_bound t from in
  let i = ref (lower_bound t upto - 1) in
  while !i >= first do
    let e = t.entries.(!i) in
    charge_seq t (String.length e.data);
    f e.lsn (Log_record.decode e.data);
    decr i
  done

let fold_range t ~from ~upto ~init ~f =
  let acc = ref init in
  iter_range t ~from ~upto (fun lsn r -> acc := f !acc lsn r);
  !acc

let charge_scan t ~from ~upto =
  let lo = Lsn.max from t.truncated_below in
  let hi = Lsn.min upto t.end_lsn in
  let bytes = max 0 (Lsn.to_int hi - Lsn.to_int lo) in
  charge_seq t bytes

let checkpoints_before t lsn =
  List.filter (fun c -> Lsn.(c <= lsn) && Lsn.(c >= t.truncated_below)) t.checkpoint_lsns

let earliest_fpi_after t page ~after =
  match Hashtbl.find_opt t.fpi_index (Page_id.to_int page) with
  | None -> None
  | Some l ->
      (* The list is descending; the earliest FPI still > after is the last
         element before we cross the boundary. *)
      let rec go best = function
        | [] -> best
        | lsn :: rest ->
            if Lsn.(lsn > after) && Lsn.(lsn >= t.truncated_below) then go (Some lsn) rest
            else best
      in
      go None !l

let empty_segment : Lsn.t array = [||]

let chain_segment t page ~from ~down_to =
  match Hashtbl.find_opt t.chain_index (Page_id.to_int page) with
  | None -> empty_segment
  | Some c ->
      (* The chain is pruned at truncation, so every element is retained;
         the segment (down_to, from] is a contiguous run. *)
      let lo = chain_upper c down_to in
      let hi = chain_upper c from in
      if hi <= lo then empty_segment else Array.sub c.arr lo (hi - lo)

let pages_changed_since t ~since =
  Hashtbl.fold
    (fun page c acc ->
      if c.len > 0 && Lsn.(c.arr.(c.len - 1) > since) then Page_id.of_int page :: acc else acc)
    t.chain_index []

let prefetch t lsns =
  (* Resolve every requested record to its block set; unknown or truncated
     LSNs are skipped — prefetch is advisory, the subsequent [read] is what
     reports errors. *)
  let blocks = ref [] in
  List.iter
    (fun lsn ->
      if Lsn.(lsn >= t.truncated_below) then
        match Hashtbl.find_opt t.index (Lsn.to_int lsn) with
        | Some i when i >= t.start && i < t.count ->
            let e = t.entries.(i) in
            let first, last = blocks_of t e.lsn (String.length e.data) in
            for b = first to last do
              blocks := b :: !blocks
            done
        | _ -> ())
    lsns;
  let blocks = List.sort_uniq compare !blocks in
  (* Consecutive missing blocks are fetched as one run: a single seek plus
     sequential transfer, instead of one random I/O per block.  This is the
     whole point of batching chain reads in LSN order. *)
  let rec go = function
    | [] -> ()
    | b :: rest ->
        if Lru.use t.cache b then begin
          t.io.Io_stats.log_block_hits <- t.io.Io_stats.log_block_hits + 1;
          go rest
        end
        else begin
          t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
          Media.random_read t.media t.clock t.io t.block_bytes;
          let rec run prev = function
            | b' :: rest' when b' = prev + 1 && not (Lru.mem t.cache b') ->
                ignore (Lru.use t.cache b');
                t.io.Io_stats.log_block_misses <- t.io.Io_stats.log_block_misses + 1;
                Media.seq_read t.media t.clock t.io t.block_bytes;
                run b' rest'
            | rest' -> rest'
          in
          go (run b rest)
        end
  in
  go blocks

let truncate_before t lsn =
  if Lsn.(lsn > t.truncated_below) then begin
    let cut = lower_bound t lsn in
    for i = t.start to cut - 1 do
      Hashtbl.remove t.index (Lsn.to_int t.entries.(i).lsn);
      Lru.Weighted.remove t.record_cache (Lsn.to_int t.entries.(i).lsn);
      t.entries.(i) <- (empty_entry ())
    done;
    t.start <- cut;
    t.truncated_below <- lsn;
    t.checkpoint_lsns <- List.filter (fun c -> Lsn.(c >= lsn)) t.checkpoint_lsns;
    Hashtbl.iter (fun _ l -> l := List.filter (fun f -> Lsn.(f >= lsn)) !l) t.fpi_index;
    (* Chains are ascending, so truncation drops a prefix: locate the first
       surviving element and shift it to the front. *)
    Hashtbl.iter
      (fun _ c ->
        (* First element >= lsn, i.e. strictly above the last dropped LSN. *)
        let keep_from = chain_upper c (Lsn.of_int (Lsn.to_int lsn - 1)) in
        if keep_from > 0 then begin
          Array.blit c.arr keep_from c.arr 0 (c.len - keep_from);
          c.len <- c.len - keep_from
        end)
      t.chain_index
  end

let dump_entries t =
  let acc = ref [] in
  for i = t.count - 1 downto t.start do
    acc := (t.entries.(i).lsn, t.entries.(i).data) :: !acc
  done;
  !acc

let restore_entries t entries =
  if t.count > t.start || Lsn.to_int t.end_lsn > 1 then
    invalid_arg "Log_manager.restore_entries: log not empty";
  (match entries with
  | [] -> ()
  | (first, _) :: _ ->
      t.truncated_below <- first;
      t.flushed_lsn <- first;
      t.end_lsn <- first);
  List.iter
    (fun (lsn, data) ->
      if not (Lsn.equal lsn t.end_lsn) then
        invalid_arg "Log_manager.restore_entries: non-contiguous entries";
      grow t;
      t.entries.(t.count) <- { lsn; data; cached = None };
      Hashtbl.replace t.index (Lsn.to_int lsn) t.count;
      t.count <- t.count + 1;
      t.end_lsn <- Lsn.of_int (Lsn.to_int lsn + String.length data);
      t.total_appended_bytes <- t.total_appended_bytes + String.length data;
      index_record t (Log_record.peek data) lsn)
    entries;
  t.flushed_lsn <- t.end_lsn;
  t.last_checkpoint <- (match t.checkpoint_lsns with c :: _ -> c | [] -> Lsn.nil)

let discard_newest t target =
  while t.count > target do
    let e = t.entries.(t.count - 1) in
    Hashtbl.remove t.index (Lsn.to_int e.lsn);
    Lru.Weighted.remove t.record_cache (Lsn.to_int e.lsn);
    unindex_record t (Log_record.peek e.data) e.lsn;
    t.entries.(t.count - 1) <- (empty_entry ());
    t.count <- t.count - 1
  done

let crash t =
  (* A torn log tail: the OS may have pushed a prefix of the unflushed
     records to the platter before the crash, with the last of them torn
     mid-write.  The surviving prefix never reaches below [flushed_lsn],
     so every acknowledged commit is intact by construction — the tear is
     strictly in the never-acknowledged tail. *)
  let first_unflushed = lower_bound t t.flushed_lsn in
  let keep =
    match t.fault_plan with
    | Some plan when t.count > first_unflushed && Fault_plan.tear_log_tail plan ->
        Fault_plan.torn_tail_keep plan ~len:(t.count - first_unflushed)
    | _ -> 0
  in
  discard_newest t (first_unflushed + keep);
  if keep > 0 then begin
    (* Tear the last survivor: only a prefix of its bytes hit the disk.
       Unindex it while its header is still intact; recovery's CRC scan
       ([repair_tail]) will find the stump and truncate there. *)
    let i = t.count - 1 in
    let e = t.entries.(i) in
    let cut = Fault_plan.torn_record_cut (Option.get t.fault_plan) ~len:(String.length e.data) in
    Lru.Weighted.remove t.record_cache (Lsn.to_int e.lsn);
    unindex_record t (Log_record.peek e.data) e.lsn;
    t.entries.(i) <- { lsn = e.lsn; data = String.sub e.data 0 cut; cached = None };
    t.end_lsn <- Lsn.of_int (Lsn.to_int e.lsn + cut);
    t.io.Io_stats.faults_injected <- t.io.Io_stats.faults_injected + 1
  end
  else t.end_lsn <- t.flushed_lsn;
  t.flushed_lsn <- t.end_lsn;
  t.unflushed_bytes <- 0;
  if Lsn.(t.last_checkpoint >= t.end_lsn) then
    t.last_checkpoint <- (match t.checkpoint_lsns with c :: _ -> c | [] -> Lsn.nil)

let repair_tail t =
  (* Recovery's torn-tail detector: validate record CRCs forward from the
     last durable checkpoint (a tear can only live in the crash-time tail,
     which is always above it) and truncate the log at the first record
     that fails.  WAL semantics: nothing after a tear can be trusted, even
     if its bytes happen to look whole. *)
  let from =
    if Lsn.(t.last_checkpoint > Lsn.nil) then t.last_checkpoint else t.truncated_below
  in
  let i = ref (lower_bound t from) in
  let scanned = ref 0 in
  let torn = ref (-1) in
  while !torn < 0 && !i < t.count do
    let e = t.entries.(!i) in
    scanned := !scanned + String.length e.data;
    if Log_record.check e.data then incr i else torn := !i
  done;
  charge_seq t !scanned;
  if !torn < 0 then None
  else begin
    let idx = !torn in
    let torn_lsn = t.entries.(idx).lsn in
    let dropped = t.count - idx in
    for j = t.count - 1 downto idx do
      let e = t.entries.(j) in
      Hashtbl.remove t.index (Lsn.to_int e.lsn);
      Lru.Weighted.remove t.record_cache (Lsn.to_int e.lsn);
      (* The torn record's header may be mangled; [crash] already unindexed
         it with intact data, so a failed peek here loses nothing. *)
      (try unindex_record t (Log_record.peek e.data) e.lsn with _ -> ());
      t.entries.(j) <- (empty_entry ())
    done;
    t.count <- idx;
    t.end_lsn <- torn_lsn;
    if Lsn.(t.flushed_lsn > torn_lsn) then t.flushed_lsn <- torn_lsn;
    t.unflushed_bytes <- 0;
    if Lsn.(t.last_checkpoint >= torn_lsn) then
      t.last_checkpoint <- (match t.checkpoint_lsns with c :: _ -> c | [] -> Lsn.nil);
    t.io.Io_stats.corruptions_detected <- t.io.Io_stats.corruptions_detected + 1;
    Some (torn_lsn, dropped)
  end
