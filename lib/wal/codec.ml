type encoder = Buffer.t

let encoder () = Buffer.create 128
let to_string e = Buffer.contents e
let u8 e v = Buffer.add_uint8 e v
let u16 e v = Buffer.add_uint16_le e v

let u32 e v =
  if v < 0 then invalid_arg "Codec.u32: negative";
  Buffer.add_int32_le e (Int32.of_int v)

let i64 e v = Buffer.add_int64_le e v
let f64 e v = Buffer.add_int64_le e (Int64.bits_of_float v)

let str16 e s =
  if String.length s > 0xFFFF then invalid_arg "Codec.str16: too long";
  u16 e (String.length s);
  Buffer.add_string e s

let str32 e s =
  u32 e (String.length s);
  Buffer.add_string e s

(* Positional peeks: read one field out of an encoded string without
   building a decoder or advancing any cursor.  The header-peek read path
   uses these to extract record headers without allocating payloads. *)
let peek_u8 s pos = Char.code s.[pos]
let peek_i64 s pos = String.get_int64_le s pos

type decoder = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }
let decoder_at data ~pos = { data; pos }
let pos d = d.pos
let at_end d = d.pos >= String.length d.data

let get_u8 d =
  let v = Char.code d.data.[d.pos] in
  d.pos <- d.pos + 1;
  v

let get_u16 d =
  let v = String.get_uint16_le d.data d.pos in
  d.pos <- d.pos + 2;
  v

let get_u32 d =
  let v = Int32.to_int (String.get_int32_le d.data d.pos) in
  d.pos <- d.pos + 4;
  (* Encoded from a non-negative int; mask out sign extension artefacts. *)
  v land 0xFFFFFFFF

let get_i64 d =
  let v = String.get_int64_le d.data d.pos in
  d.pos <- d.pos + 8;
  v

let get_f64 d = Int64.float_of_bits (get_i64 d)

let get_str16 d =
  let n = get_u16 d in
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

let get_str32 d =
  let n = get_u32 d in
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s
