(** The write-ahead log.

    Appends are buffered in memory and become durable on {!flush} (commit
    forces a flush, as does the buffer manager before writing a dirty page —
    classic WAL).  An LSN is one plus the byte offset of the record in the
    log stream, so LSNs are dense and order equals position.

    Reads of individual records (the random accesses performed while
    rewinding a page) go through a block cache: a hit is free, a miss is a
    priced random I/O on the log device.  The number of such misses is the
    paper's "estimated number of undo log IOs" (Figure 11).  Range scans
    (recovery analysis/redo) are priced as sequential I/O.

    The log manager also maintains the full-page-image directory used to
    jump-start page undo (paper §6.1), and the retention boundary
    ({!truncate_before}) that implements [SET UNDO_INTERVAL].

    {2 Segmented storage}

    Physically the log is a sequence of fixed-size {e segments}.  The
    newest one is the active tail: appends land in its in-RAM buffer.
    When the tail reaches [segment_bytes] it is {e sealed} (immutable)
    and {e spilled}: its payload is priced as one sequential write to the
    log device and stops counting against modeled resident memory —
    reads of a spilled segment fault blocks back in through the block
    cache exactly like any other cold read.  All record-level indexes
    (the sorted record-offset array, the FPI directory, the per-page
    chain index, the checkpoint list) are segment-local with merged
    views behind the query API, so retention truncation drops whole
    sealed segments in O(1) each and frees their indexes wholesale.
    With retention on, modeled resident memory is bounded by the tail
    segment plus the retained segments' index overhead, while
    {!total_appended_bytes} grows without bound. *)

type t

exception Log_truncated of Rw_storage.Lsn.t
(** Raised when reading below the retention boundary. *)

exception No_such_record of Rw_storage.Lsn.t
(** Raised when an LSN inside the retained region is not a record
    boundary (e.g. a corrupt chain pointer). *)

val create :
  clock:Rw_storage.Sim_clock.t ->
  media:Rw_storage.Media.t ->
  ?cache_blocks:int ->
  ?block_bytes:int ->
  ?record_cache_bytes:int ->
  ?segment_bytes:int ->
  ?fault_plan:Rw_storage.Fault_plan.t ->
  unit ->
  t
(** [cache_blocks] (default 128) and [block_bytes] (default 65536) size the
    log block cache; [record_cache_bytes] (default 4 MiB) budgets the
    decoded-record cache layered above it.  The record cache only skips
    decode CPU work — block-level I/O accounting is identical with or
    without it.  [segment_bytes] (default 1 MiB, minimum 64) is the size
    at which the active tail segment seals and spills.  When a
    [fault_plan] is attached, {!crash} consults it to decide whether the
    log tail tears. *)

val clock : t -> Rw_storage.Sim_clock.t
val stats : t -> Rw_storage.Io_stats.t

val append : t -> Log_record.t -> Rw_storage.Lsn.t
(** Append a record (no I/O cost until flushed) and return its LSN. *)

val flush : t -> upto:Rw_storage.Lsn.t -> unit
(** Make all records appended so far durable if any at or below [upto] are
    not yet.  Priced as one sequential write plus a sync latency. *)

val flush_all : t -> unit
val flushed_lsn : t -> Rw_storage.Lsn.t
(** LSNs strictly below this are durable. *)

val unflushed_bytes : t -> int
(** Bytes appended but not yet flushed — the size of the next flush batch.
    The group-commit scheduler uses this for its max-batch-bytes trigger. *)

val end_lsn : t -> Rw_storage.Lsn.t
(** The LSN the next appended record will receive. *)

val first_lsn : t -> Rw_storage.Lsn.t
(** Oldest retained LSN (moves forward on truncation). *)

val read : t -> Rw_storage.Lsn.t -> Log_record.t
(** Random record read through the block cache.  Raises {!Log_truncated}
    below the retention boundary and {!No_such_record} for an LSN that is
    not a record boundary. *)

val read_nocost : t -> Rw_storage.Lsn.t -> Log_record.t

val read_segment : t -> Rw_storage.Lsn.t array -> Log_record.t array
(** Batched {!read} of an ascending LSN array (e.g. a {!chain_segment}).
    Priced identically — every distinct block is a cache hit or one random
    read — but the block cache is consulted once per block rather than once
    per record, and decodes are served through the record cache.  Same
    exceptions as {!read}. *)

val read_segment_raw : t -> Rw_storage.Lsn.t array -> string array
(** {!read_segment} returning encoded record bytes instead of decodes:
    identical block accounting, but the single-domain decoded-record
    cache is never consulted (no record hit/miss counts).  The gather
    primitive of the parallel batch-rewind pipeline — workers decode the
    bytes off-thread ({!Log_record.decode} is pure) and the coordinator
    re-seeds the cache with {!feed_record_cache} at publish time.  Same
    exceptions as {!read}. *)

val feed_record_cache : t -> Rw_storage.Lsn.t -> Log_record.t -> unit
(** Seed the decoded-record cache with a record decoded elsewhere (the
    publish stage of a parallel batch): inserted only if the record's
    slot is empty or evicted, with no hit/miss accounting.  Unknown LSNs
    are ignored. *)

val peek_record : t -> Rw_storage.Lsn.t -> Log_record.peek
(** Header-only view of a record; no payload allocation, no I/O charge.
    Same exceptions as {!read}. *)

val mem : t -> Rw_storage.Lsn.t -> bool
val next_lsn_after : t -> Rw_storage.Lsn.t -> Rw_storage.Lsn.t
(** The LSN of the record following the given one. *)

val iter_range :
  t -> from:Rw_storage.Lsn.t -> upto:Rw_storage.Lsn.t -> (Rw_storage.Lsn.t -> Log_record.t -> unit) -> unit
(** In-order scan of records with [from <= lsn < upto]; priced sequentially.
    [from] is rounded up to the first retained record. *)

val iter_range_peek :
  t ->
  from:Rw_storage.Lsn.t ->
  upto:Rw_storage.Lsn.t ->
  (Rw_storage.Lsn.t -> Log_record.peek -> (unit -> Log_record.t) -> unit) ->
  unit
(** Like {!iter_range} (same order, same sequential pricing) but the
    callback receives only the record header plus a thunk that decodes the
    full record on demand (through the decoded-record cache).  Scans that
    filter on page/kind — recovery analysis, redo — avoid decoding the
    records they skip. *)

val iter_range_raw :
  t ->
  from:Rw_storage.Lsn.t ->
  upto:Rw_storage.Lsn.t ->
  (Rw_storage.Lsn.t -> Log_record.peek -> (unit -> string) -> unit) ->
  unit
(** Like {!iter_range_peek} but the thunk returns the record's encoded
    bytes instead of decoding them.  For consumers that decode on another
    domain ({!Log_record.decode} is pure): the single-domain decoded-record
    cache stays untouched. *)

val iter_range_rev :
  t -> from:Rw_storage.Lsn.t -> upto:Rw_storage.Lsn.t -> (Rw_storage.Lsn.t -> Log_record.t -> unit) -> unit
(** Same range, reverse order. *)

val fold_range :
  t ->
  from:Rw_storage.Lsn.t ->
  upto:Rw_storage.Lsn.t ->
  init:'a ->
  f:('a -> Rw_storage.Lsn.t -> Log_record.t -> 'a) ->
  'a

val charge_scan : t -> from:Rw_storage.Lsn.t -> upto:Rw_storage.Lsn.t -> unit
(** Account the sequential I/O cost of scanning a log region without
    decoding it (e.g. a restore's initialization of the unused log tail). *)

val last_checkpoint : t -> Rw_storage.Lsn.t
(** The master record: LSN of the most recent checkpoint ([Lsn.nil] if
    none). *)

val set_last_checkpoint : t -> Rw_storage.Lsn.t -> unit

val checkpoints_before : t -> Rw_storage.Lsn.t -> Rw_storage.Lsn.t list
(** LSNs of retained checkpoint records at or before the given LSN,
    descending (newest first). *)

val earliest_fpi_after :
  t -> Rw_storage.Page_id.t -> after:Rw_storage.Lsn.t -> Rw_storage.Lsn.t option
(** The earliest retained full-page-image record for the page with
    LSN strictly greater than [after], if any — the jump-start point for
    page undo. *)

val chain_segment :
  t ->
  Rw_storage.Page_id.t ->
  from:Rw_storage.Lsn.t ->
  down_to:Rw_storage.Lsn.t ->
  Rw_storage.Lsn.t array
(** All retained page-chain record LSNs for the page with
    [down_to < lsn <= from], ascending.  Because every page record's
    [prev_page_lsn] points at the page's previous record, this equals the
    backward pointer walk from [from] truncated at [down_to] — but is
    served from the in-memory chain index with no I/O or decode.  Callers
    that mutate state must validate the chain links (see
    {!Rw_core.Page_undo}) and fall back to the walk on mismatch. *)

val pages_changed_since : t -> since:Rw_storage.Lsn.t -> Rw_storage.Page_id.t list
(** Pages whose newest retained chain record is strictly after [since]
    (unordered) — the batch work-list for snapshot materialization. *)

val prefetch : t -> Rw_storage.Lsn.t list -> unit
(** Load the log blocks holding the given records into the block cache.
    Blocks are visited in sorted order and each contiguous run of missing
    blocks is priced as one random I/O plus sequential reads — this is how
    batched chain reads turn random undo I/O into sequential I/O.  Unknown
    or truncated LSNs are ignored. *)

val truncate_before : t -> Rw_storage.Lsn.t -> unit
(** Drop all records with LSN strictly below the argument (retention). *)

val total_appended_bytes : t -> int
(** Lifetime log volume — the paper's "log space usage" metric. *)

val retained_bytes : t -> int
val record_count : t -> int

val record_cache_bytes : t -> int
(** Current decoded-record cache occupancy. *)

val invalidation_epoch : t -> int
(** Monotone counter bumped whenever log history is invalidated:
    {!truncate_before} (history below the cut is gone, so rewinds that
    might need it can no longer be trusted) and {!crash} (the torn tail's
    LSNs will be recycled after restart).  Derived caches of rewound
    state stamp entries with the epoch at fill time and discard them
    lazily on mismatch; plain appends never bump it. *)

(** {2 Segment introspection} *)

val segment_count : t -> int
(** Live (retained) segments, the active tail included. *)

val segment_size : t -> int
(** The seal threshold ([segment_bytes] of {!create}). *)

val resident_bytes : t -> int
(** Modeled RAM held by the log: unspilled segment payload (the active
    tail) plus the per-segment index overhead of every retained segment.
    Spilled payloads count zero — their simulated home is the log device,
    and reading them back is priced through the block cache.  This is the
    quantity the [log.resident_bytes] gauge tracks; with retention on it
    plateaus while {!total_appended_bytes} keeps growing. *)

type segment_stats = {
  ss_live : int;  (** retained segments, active tail included *)
  ss_sealed : int;  (** lifetime segments sealed *)
  ss_spilled : int;  (** lifetime segments spilled to media *)
  ss_loaded : int;  (** cold block loads serving spilled segments *)
  ss_dropped : int;  (** lifetime segments dropped by retention *)
  ss_resident_bytes : int;  (** {!resident_bytes} *)
  ss_payload_bytes : int;  (** unspilled payload bytes *)
  ss_index_bytes : int;  (** modeled per-segment index overhead *)
  ss_segment_bytes : int;  (** seal threshold *)
}

val segment_stats : t -> segment_stats
(** Lifecycle counters and the resident-memory breakdown — what the
    [\log] CLI meta-command prints. *)

val crash : t -> unit
(** Simulate a crash: discard every record that was not durable.  Under a
    fault plan that tears the log tail, a random prefix of the unflushed
    records survives instead — the OS had pushed them out "by luck" — with
    the last survivor torn mid-record.  The surviving prefix never extends
    below {!flushed_lsn}, so acknowledged commits are intact either way;
    the tear is found and removed by {!repair_tail}. *)

val repair_tail : t -> (Rw_storage.Lsn.t * int) option
(** Validate record CRCs forward from the last durable checkpoint and
    truncate the log at the first record that fails — the recovery scan's
    torn-tail repair.  Returns [Some (lsn, dropped)] — the new end of log
    and how many records were discarded — or [None] if the tail is clean.
    Priced as a sequential scan of the validated region. *)

val dump_entries : t -> (Rw_storage.Lsn.t * string) list
(** All retained records, oldest first, in encoded form — for persisting
    the durable log to a file.  Free of simulated I/O cost (persistence is
    an offline operation). *)

val restore_entries : t -> (Rw_storage.Lsn.t * string) list -> unit
(** Rebuild a fresh log manager's state from {!dump_entries} output
    (indexes, FPI directory and checkpoint list included).  Every restored
    record is considered durable.  Raises on a non-empty log. *)

(** {2 Replication}

    Log shipping works in segment-granular units: {!export_from} on the
    primary hands out the durable remainder of one segment at a time,
    {!ingest_entries} appends a shipment onto a replica's (byte-identical
    prefix) copy of the stream, and {!truncate_from} cuts a demoted
    primary's divergent tail at the failover point so it can rejoin as a
    replica. *)

type export = {
  ex_from : Rw_storage.Lsn.t;  (** LSN of the first shipped record *)
  ex_next : Rw_storage.Lsn.t;
      (** resume point: the LSN immediately after the last shipped record *)
  ex_sealed : bool;
      (** the shipment reaches the end of a sealed segment (a complete
          replication unit); [false] means a durable prefix of the active
          tail was shipped *)
  ex_entries : (Rw_storage.Lsn.t * string) list;
      (** encoded records, oldest first — {!dump_entries} form *)
}

val export_from : t -> from:Rw_storage.Lsn.t -> export option
(** The next shipping unit at or after [from]: the durable records of the
    segment containing [from] (whole sealed-segment suffix, or the durable
    prefix of the active tail).  Records at or above {!flushed_lsn} — the
    crash-time tail — never ship, so replicas replay acknowledged history
    only.  [None] when nothing durable exists at or after [from].  Priced
    as a sequential read of the exported bytes.  Raises {!Log_truncated}
    when [from] has fallen below the retention boundary (the replica must
    re-seed from a fresh snapshot). *)

val segments_behind : t -> from:Rw_storage.Lsn.t -> int
(** How many live segments hold records at or after [from] — the
    replica-lag measure behind the [repl.lag_segments] gauge (0 = caught
    up to the active tail). *)

val ingest_entries : t -> (Rw_storage.Lsn.t * string) list -> int
(** Append a shipment onto the end of this (replica) log.  Entries below
    {!end_lsn} are skipped — duplicate delivery is idempotent — and the
    first genuinely new entry must land exactly at {!end_lsn}
    ([Invalid_argument] on a gap: shipments are applied in order).  Into a
    completely fresh log, the first shipment establishes the origin as
    {!restore_entries} would.  Ingested records are immediately durable
    (priced as one sequential log write); the master record is {e not}
    advanced — the replica moves its recovery checkpoint explicitly via
    {!set_last_checkpoint} after flushing redone pages.  Returns the
    number of records actually appended. *)

val truncate_from : t -> Rw_storage.Lsn.t -> int
(** Drop every record with start LSN at or above the argument — the
    inverse of {!truncate_before}, used when a demoted primary rejoins:
    its unshipped tail past the failover point is discarded before
    committed-only replay of the new primary's stream.  Bumps
    {!invalidation_epoch} (the cut LSNs will be recycled).  Returns the
    number of records dropped. *)

(** {2 Transaction write-set summaries}

    The log manager maintains a per-transaction summary index {e at
    append time}, from the same header peek that feeds the page-chain
    index: which pages each transaction wrote (with the LSN of its first
    write to each), how many page operations it logged, whether it
    committed and when.  What-if dependency graphs
    ([Rw_whatif.Dep_graph]) are built from these summaries in O(live
    transactions) with no log scan and no payload decode.

    The index rides every ingestion path (append, restore, replication
    ingest).  Retention truncation prunes summaries whose first record
    fell below the boundary; events that drop tail records — {!crash},
    {!repair_tail}, {!truncate_from} — void the index, and the next
    query transparently rebuilds it with one priced sequential scan of
    the retained log ({!txn_index_live} reports which regime the index
    is in).  The rebuild applies the same boundary rule: a transaction
    whose first retained record points further back (its chain crosses
    the retention boundary) is excluded rather than resurfaced with an
    understated write set.  Like the decoded-record cache, the index is unmodeled
    metadata: it has no simulated-RAM footprint. *)

type txn_summary = {
  ts_txn : Txn_id.t;
  ts_first_lsn : Rw_storage.Lsn.t;  (** the transaction's first record *)
  ts_last_lsn : Rw_storage.Lsn.t;
      (** its last page operation ([Lsn.nil] if it logged none) *)
  ts_commit_lsn : Rw_storage.Lsn.t;  (** [Lsn.nil] unless committed *)
  ts_commit_wall_us : float;  (** meaningful only when committed *)
  ts_ops : int;  (** page operations logged, CLRs included *)
  ts_has_clr : bool;  (** the txn wrote compensation records *)
  ts_structural : bool;
      (** it logged a structural operation (format/preformat/header/FPI) *)
  ts_writes : (Rw_storage.Page_id.t * Rw_storage.Lsn.t) list;
      (** write set: (page, LSN of the txn's first write to it),
          ascending by LSN *)
}

val txn_summaries : t -> txn_summary list
(** Summaries of every committed, non-aborted transaction wholly inside
    the retained log, ascending by commit LSN (the serialization
    order). *)

val txn_summary : t -> Txn_id.t -> txn_summary option
(** The summary of one committed transaction, if retained. *)

val txn_resolution : t -> Txn_id.t -> [ `Committed | `Aborted | `Active | `Unknown ]
(** How the transaction's retained records resolve: committed, aborted,
    or [`Active] — it has log records but neither a commit nor an abort
    record, i.e. it is still in flight in some session.  [`Unknown] for
    a transaction with no retained summary: never logged, or pruned
    because its history crosses the retention boundary.  Selective undo
    validation consults this to refuse rewinds that would silently erase
    an open transaction's writes. *)

val txn_index_live : t -> bool
(** [true] while summaries are served from the append-time index;
    [false] after a tail-dropping event, until the next query's rebuild
    scan. *)
