(** Log records: the vocabulary of the write-ahead log.

    The engine uses physiological logging in the ARIES style: every change to
    a page is a separate log record carrying both redo and undo information,
    and the records of one page are back-linked through [prev_page_lsn] —
    the chain that {e PreparePageAsOf} walks to rewind a page (paper §4).

    Log extensions required by the paper (§4.2) are all present:
    - {!op.Preformat} records link the chain across page re-allocation and
      carry the complete prior image;
    - {!body.Clr} compensation records carry undo information (classic ARIES
      CLRs are redo-only);
    - {!op.Delete_row} carries the deleted row image so B-tree structure
      modifications (logged as insert + delete) can be undone page-locally;
    - {!op.Full_image} records (every Nth modification, §6.1) let undo skip
      log regions. *)

(** A physical operation against one page.  Redo assumes the pre-state,
    undo assumes the post-state. *)
type op =
  | Insert_row of { slot : int; row : string }
  | Delete_row of { slot : int; row : string }
      (** [row] is the undo information the paper adds for SMO deletes. *)
  | Update_row of { slot : int; before : string; after : string }
  | Set_header of { field : header_field; before : int64; after : int64 }
  | Format of { typ : Rw_storage.Page.page_type; level : int }
      (** Page (re)initialisation; begins a page chain. *)
  | Preformat of { prev_image : string }
      (** Logged at re-allocation, before {!Format}: stores the prior page
          content and links to the prior chain. *)
  | Full_image of { image : string }
      (** Complete page image after the modification; undo no-op. *)

and header_field = Prev_page | Next_page | Special | Level

type body =
  | Begin
  | Commit of { wall_us : float }
      (** Commit records carry wall-clock time; the SplitLSN search uses
          them for fine positioning (paper §5.1). *)
  | Abort
  | End
  | Page_op of { page : Rw_storage.Page_id.t; prev_page_lsn : Rw_storage.Lsn.t; op : op }
  | Clr of {
      page : Rw_storage.Page_id.t;
      prev_page_lsn : Rw_storage.Lsn.t;
      op : op;
      undo_next : Rw_storage.Lsn.t;  (** next record of the txn to undo *)
    }
  | Checkpoint of {
      wall_us : float;
      active_txns : (Txn_id.t * Rw_storage.Lsn.t) list;
          (** txn id, LSN of its most recent log record *)
      dirty_pages : (Rw_storage.Page_id.t * Rw_storage.Lsn.t) list;
          (** page id, recovery LSN (earliest unflushed change) *)
    }

type t = { txn : Txn_id.t; prev_txn_lsn : Rw_storage.Lsn.t; body : body }

exception Corrupt_record
(** An encoded record failed its CRC trailer check (torn or rotten). *)

val make : ?txn:Txn_id.t -> ?prev_txn_lsn:Rw_storage.Lsn.t -> body -> t

val page_of : t -> Rw_storage.Page_id.t option
(** The page a record modifies, if any. *)

val prev_page_lsn_of : t -> Rw_storage.Lsn.t option
val op_of : t -> op option

val get_header : Rw_storage.Page.t -> header_field -> int64
(** Read a header field as an int64; convenient for building
    {!op.Set_header} operations with correct before-images. *)

val redo : Rw_storage.Page_id.t -> op -> Rw_storage.Page.t -> unit
(** [redo pid op page] applies the operation's redo effect to a page whose
    content is the pre-state; [pid] identifies the page so that [Format] can
    initialise a fresh buffer.  The caller updates the page LSN. *)

val undo : op -> Rw_storage.Page.t -> unit
(** Reverse the operation on a page whose content is the post-state. *)

val invert : op -> op option
(** The compensating operation, used to build CLRs during rollback.
    [None] for operations that need no compensation ({!op.Full_image}). *)

val encode : t -> string
(** The encoding ends in a CRC-32 trailer over the preceding bytes, so a
    torn or corrupted record is detectable without attempting a decode. *)

val decode : string -> t
(** Verifies the CRC trailer first, raising {!Corrupt_record} on mismatch;
    a record that passes the CRC but still fails to parse raises
    [Invalid_argument] or [Failure]. *)

val check : string -> bool
(** Whether the encoded record's CRC trailer matches its content — the
    recovery scan's torn-tail detector.  Never raises. *)

val encoded_size : t -> int
val pp : Format.formatter -> t -> unit
val kind_name : t -> string

(** {2 Header peek}

    The hot read paths (chain walks, recovery analysis, redo filtering)
    mostly need a record's {e header} — which page it touches, its backward
    chain pointer, its kind — and not the row payloads, which dominate both
    the encoded bytes and the decode cost.  {!peek} extracts exactly those
    headers from the encoded string without allocating any payload. *)

type op_kind =
  | K_insert_row
  | K_delete_row
  | K_update_row
  | K_set_header
  | K_format
  | K_preformat
  | K_full_image

type kind =
  | K_begin
  | K_commit
  | K_abort
  | K_end
  | K_checkpoint
  | K_page_op of op_kind
  | K_clr of op_kind

type peek = {
  p_txn : Txn_id.t;
  p_prev_txn_lsn : Rw_storage.Lsn.t;
  p_kind : kind;
  p_page : Rw_storage.Page_id.t;  (** [Page_id.nil] for non-page records *)
  p_prev_page_lsn : Rw_storage.Lsn.t;  (** [Lsn.nil] for non-page records *)
  p_len : int;  (** encoded length, i.e. the record's LSN footprint *)
}

val peek : string -> peek
(** O(1) header extraction from an encoded record; never allocates row or
    page-image payloads.  Raises [Invalid_argument] on corrupt input. *)

val peek_bytes : bytes -> pos:int -> len:int -> peek
(** {!peek} of the encoded record occupying [b.[pos .. pos+len-1]] — the
    in-place variant used when records live inside a log-segment blob.
    Copies only the fixed-size header prefix, never the payload. *)

val check_bytes : bytes -> pos:int -> len:int -> bool
(** {!check} of the encoded record occupying [b.[pos .. pos+len-1]],
    without extracting it.  Never raises. *)

val is_page_kind : kind -> bool
(** Whether the kind is [K_page_op] or [K_clr]. *)
