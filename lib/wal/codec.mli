(** Binary encoding helpers shared by log-record and row serialisation. *)

type encoder

val encoder : unit -> encoder
val to_string : encoder -> string
val u8 : encoder -> int -> unit
val u16 : encoder -> int -> unit
val u32 : encoder -> int -> unit
val i64 : encoder -> int64 -> unit
val f64 : encoder -> float -> unit

val str16 : encoder -> string -> unit
(** Length-prefixed (u16) string; raises on strings longer than 65535. *)

val str32 : encoder -> string -> unit

val peek_u8 : string -> int -> int
(** [peek_u8 s pos] reads the byte at [pos] without a decoder. *)

val peek_i64 : string -> int -> int64
(** [peek_i64 s pos] reads a little-endian int64 at [pos] without a
    decoder. *)

type decoder

val decoder : string -> decoder
val decoder_at : string -> pos:int -> decoder
val pos : decoder -> int
val at_end : decoder -> bool
val get_u8 : decoder -> int
val get_u16 : decoder -> int
val get_u32 : decoder -> int
val get_i64 : decoder -> int64
val get_f64 : decoder -> float
val get_str16 : decoder -> string
val get_str32 : decoder -> string
