(* Doubly-linked list threaded through a hashtable; O(1) use/evict. *)

type node = { key : int; mutable prev : node option; mutable next : node option }

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let mem t k = Hashtbl.mem t.table k

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key

let use t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      unlink t n;
      push_front t n;
      true
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let n = { key = k; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n;
      false

let size t = Hashtbl.length t.table
let capacity t = t.capacity

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

(* A value-carrying LRU bounded by total weight (bytes) rather than entry
   count — the decoded-record cache.  Same threaded-list structure as the
   set above, but eviction runs until the weight budget is met, so one
   oversized entry can displace many small ones. *)
module Weighted = struct
  type 'a node = {
    key : int;
    value : 'a;
    weight : int;
    mutable live : bool;
        (* Flipped off on eviction/removal so external pointers to the node
           (e.g. the log manager's per-entry cache slot) can detect
           staleness without a table lookup. *)
    mutable prev : 'a node option;
    mutable next : 'a node option;
  }

  type 'a t = {
    capacity_bytes : int;
    table : (int, 'a node) Hashtbl.t;
    mutable head : 'a node option;
    mutable tail : 'a node option;
    mutable total_weight : int;
  }

  let create ~capacity_bytes =
    if capacity_bytes < 1 then invalid_arg "Lru.Weighted.create: capacity < 1";
    { capacity_bytes; table = Hashtbl.create 256; head = None; tail = None; total_weight = 0 }

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.head;
    n.prev <- None;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let drop_node t n =
    unlink t n;
    n.live <- false;
    Hashtbl.remove t.table n.key;
    t.total_weight <- t.total_weight - n.weight

  let remove t k =
    match Hashtbl.find_opt t.table k with None -> () | Some n -> drop_node t n

  let find t k =
    match Hashtbl.find_opt t.table k with
    | None -> None
    | Some n ->
        unlink t n;
        push_front t n;
        Some n.value

  let mem t k = Hashtbl.mem t.table k

  let rec evict_to_fit t =
    if t.total_weight > t.capacity_bytes then
      match t.tail with
      | None -> ()
      | Some n ->
          drop_node t n;
          evict_to_fit t

  let add_node t k ~weight value =
    remove t k;
    let n = { key = k; value; weight; live = false; prev = None; next = None } in
    (* An entry larger than the whole budget would evict everything and
       still not fit; don't cache it at all (the node is returned dead). *)
    if weight <= t.capacity_bytes then begin
      n.live <- true;
      Hashtbl.replace t.table k n;
      push_front t n;
      t.total_weight <- t.total_weight + weight;
      evict_to_fit t
    end;
    n

  let add t k ~weight value = ignore (add_node t k ~weight value)

  let alive n = n.live
  let node_value n = n.value

  let touch t n =
    if n.live then begin
      unlink t n;
      push_front t n
    end

  let size_bytes t = t.total_weight
  let entry_count t = Hashtbl.length t.table
  let capacity_bytes t = t.capacity_bytes

  let clear t =
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None;
    t.total_weight <- 0
end
