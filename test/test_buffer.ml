(* Buffer manager tests: pin/unpin, eviction and write-back, the WAL rule,
   dirty-page tracking, latches. *)

module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Slotted_page = Rw_storage.Slotted_page
module Latch = Rw_buffer.Latch
module Buffer_pool = Rw_buffer.Buffer_pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(capacity = 4) ?wal_flush () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let pool = Buffer_pool.create ~capacity ~source:(Buffer_pool.of_disk disk) ?wal_flush () in
  (disk, pool)

(* --- latches --- *)

let test_latch_modes () =
  let l = Latch.create () in
  Latch.acquire l Latch.Shared;
  Latch.acquire l Latch.Shared;
  check_int "two shared holders" 2 (Latch.holders l);
  check "exclusive blocked by shared" false (Latch.try_acquire l Latch.Exclusive);
  Latch.release l Latch.Shared;
  Latch.release l Latch.Shared;
  Latch.acquire l Latch.Exclusive;
  check "shared blocked by exclusive" false (Latch.try_acquire l Latch.Shared);
  check "exclusive blocked by exclusive" false (Latch.try_acquire l Latch.Exclusive);
  Latch.release l Latch.Exclusive;
  check "free" true (Latch.is_free l)

let test_latch_conflict_raises () =
  let l = Latch.create () in
  Latch.acquire l Latch.Exclusive;
  Alcotest.check_raises "conflict" Latch.Latch_conflict (fun () -> Latch.acquire l Latch.Shared)

let test_with_latch_releases_on_exn () =
  let l = Latch.create () in
  (try Latch.with_latch l Latch.Exclusive (fun () -> failwith "boom") with Failure _ -> ());
  check "released after exception" true (Latch.is_free l)

(* --- pool --- *)

let test_fetch_hit_miss () =
  let _, pool = mk () in
  let f1 = Buffer_pool.fetch pool (Page_id.of_int 1) in
  Buffer_pool.unpin pool f1;
  let f2 = Buffer_pool.fetch pool (Page_id.of_int 1) in
  Buffer_pool.unpin pool f2;
  check_int "one miss" 1 (Buffer_pool.misses pool);
  check_int "one hit" 1 (Buffer_pool.hits pool)

let test_eviction_writes_back () =
  let disk, pool = mk ~capacity:2 () in
  let fetch_dirty pid text =
    let f = Buffer_pool.fetch pool (Page_id.of_int pid) in
    let p = Buffer_pool.page f in
    Slotted_page.insert p ~at:0 text;
    Page.set_lsn p (Lsn.of_int (pid + 1));
    Buffer_pool.mark_dirty pool f ~lsn:(Lsn.of_int (pid + 1));
    Buffer_pool.unpin pool f
  in
  fetch_dirty 0 "zero";
  fetch_dirty 1 "one";
  fetch_dirty 2 "two" (* evicts one of the first two *);
  check_int "resident at capacity" 2 (Buffer_pool.resident pool);
  (* Whatever was evicted must be durable. *)
  let durable pid = Slotted_page.count (Disk.read_page_nocost disk (Page_id.of_int pid)) = 1 in
  check "an evicted dirty page was written" true (durable 0 || durable 1)

let test_wal_rule () =
  let flushed = ref [] in
  let _, pool = mk ~capacity:1 ~wal_flush:(fun lsn -> flushed := lsn :: !flushed) () in
  let f = Buffer_pool.fetch pool (Page_id.of_int 0) in
  Page.set_lsn (Buffer_pool.page f) (Lsn.of_int 77);
  Buffer_pool.mark_dirty pool f ~lsn:(Lsn.of_int 77);
  Buffer_pool.unpin pool f;
  Buffer_pool.flush_page pool (Page_id.of_int 0);
  check "wal_flush called with page lsn" true (!flushed = [ Lsn.of_int 77 ])

let test_pinned_not_evicted () =
  let _, pool = mk ~capacity:2 () in
  let f0 = Buffer_pool.fetch pool (Page_id.of_int 0) in
  let _f1 = Buffer_pool.fetch pool (Page_id.of_int 1) in
  Alcotest.check_raises "all pinned" (Failure "Buffer_pool: all frames pinned") (fun () ->
      ignore (Buffer_pool.fetch pool (Page_id.of_int 2)));
  Buffer_pool.unpin pool f0;
  let f2 = Buffer_pool.fetch pool (Page_id.of_int 2) in
  check "made progress after unpin" true (Buffer_pool.pin_count f2 = 1)

let test_dirty_page_table () =
  let _, pool = mk () in
  let f = Buffer_pool.fetch pool (Page_id.of_int 3) in
  Buffer_pool.mark_dirty pool f ~lsn:(Lsn.of_int 10);
  (* rec_lsn keeps the FIRST dirtying lsn *)
  Buffer_pool.mark_dirty pool f ~lsn:(Lsn.of_int 20);
  Buffer_pool.unpin pool f;
  (match Buffer_pool.dirty_page_table pool with
  | [ (pid, rec_lsn) ] ->
      check_int "page" 3 (Page_id.to_int pid);
      check_int "rec lsn is first" 10 (Lsn.to_int rec_lsn)
  | _ -> Alcotest.fail "expected exactly one dirty page");
  Buffer_pool.flush_all pool;
  check_int "clean after flush" 0 (List.length (Buffer_pool.dirty_page_table pool))

let test_drop_all () =
  let disk, pool = mk () in
  let f = Buffer_pool.fetch pool (Page_id.of_int 0) in
  Slotted_page.insert (Buffer_pool.page f) ~at:0 "volatile";
  Buffer_pool.mark_dirty pool f ~lsn:(Lsn.of_int 1);
  Buffer_pool.unpin pool f;
  Buffer_pool.drop_all pool;
  check_int "nothing resident" 0 (Buffer_pool.resident pool);
  check_int "dirty page lost (never written)" 0
    (Slotted_page.count (Disk.read_page_nocost disk (Page_id.of_int 0)))

let test_with_page () =
  let _, pool = mk () in
  let v =
    Buffer_pool.with_page pool (Page_id.of_int 5) ~mode:Latch.Shared (fun p ->
        Page_id.to_int (Page.id p))
  in
  check_int "ran under latch" 5 v;
  (* latch and pin released *)
  let f = Buffer_pool.fetch pool (Page_id.of_int 5) in
  check_int "pin count back to 1" 1 (Buffer_pool.pin_count f);
  check "latch free" true (Latch.is_free (Buffer_pool.frame_latch f));
  Buffer_pool.unpin pool f

let test_checksum_verified_on_read () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  (* Corrupt a sealed page behind the pool's back. *)
  let p = Page.create ~id:(Page_id.of_int 0) ~typ:Page.Heap in
  Slotted_page.insert p ~at:0 "data";
  Page.seal p;
  Bytes.set p 100 '!';
  Disk.write_page disk (Page_id.of_int 0) p;
  let pool = Buffer_pool.create ~capacity:2 ~source:(Buffer_pool.of_disk disk) () in
  Alcotest.check_raises "corruption detected" (Disk.Corrupt_page (Page_id.of_int 0)) (fun () ->
      ignore (Buffer_pool.fetch pool (Page_id.of_int 0)));
  check_int "detection counted" 1 (Disk.stats disk).Rw_storage.Io_stats.corruptions_detected

let () =
  Alcotest.run "buffer"
    [
      ( "latch",
        [
          Alcotest.test_case "modes" `Quick test_latch_modes;
          Alcotest.test_case "conflict raises" `Quick test_latch_conflict_raises;
          Alcotest.test_case "with_latch releases" `Quick test_with_latch_releases_on_exn;
        ] );
      ( "pool",
        [
          Alcotest.test_case "hit/miss" `Quick test_fetch_hit_miss;
          Alcotest.test_case "eviction writes back" `Quick test_eviction_writes_back;
          Alcotest.test_case "WAL rule" `Quick test_wal_rule;
          Alcotest.test_case "pinned not evicted" `Quick test_pinned_not_evicted;
          Alcotest.test_case "dirty page table" `Quick test_dirty_page_table;
          Alcotest.test_case "drop_all" `Quick test_drop_all;
          Alcotest.test_case "with_page" `Quick test_with_page;
          Alcotest.test_case "checksum on read" `Quick test_checksum_verified_on_read;
        ] );
    ]
