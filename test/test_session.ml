(* Multi-session scheduler + shared prepared-page cache (ISSUE 6).

   The properties under test:
   - interleaving writer and reader sessions is invisible to results:
     every reader, stepped round-robin against live writers (and across a
     mid-run retention truncation), stays byte-equal to a solo snapshot
     created with the shared cache off;
   - the prepared-page cache survives appends but is invalidated by
     history loss (retention truncation) and crash — never serving an
     image whose chain basis is gone;
   - a second overlapping snapshot actually reuses the first one's
     rewinds (cache hits > 0, far fewer chain reads). *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Slotted_page = Rw_storage.Slotted_page
module Log_manager = Rw_wal.Log_manager
module Log_record = Rw_wal.Log_record
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module As_of_snapshot = Rw_core.As_of_snapshot
module Prepared_cache = Rw_core.Prepared_cache
module Page_undo = Rw_core.Page_undo
module Session_manager = Rw_session.Session_manager
module Tpcc = Rw_workload.Tpcc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* A TPC-C database with [txns] of committed history; returns the run's
   start and end sim times so callers can aim snapshots inside it. *)
let build_tpcc ?(seed = 42) ?log_segment_bytes ~txns () =
  let eng = Engine.create ~media:Media.ram () in
  let db = Engine.create_database eng ~pool_capacity:1024 ?log_segment_bytes "tpcc" in
  let cfg = { Tpcc.small_config with Tpcc.seed } in
  Tpcc.load db cfg;
  ignore (Database.checkpoint db);
  let drv = Tpcc.create db cfg in
  let t0 = Engine.now_us eng in
  ignore (Tpcc.run_mix drv ~txns);
  let t1 = Engine.now_us eng in
  (eng, db, cfg, t0, t1)

(* --- N writers + M readers interleaved, with a mid-run truncation --- *)

let run_interleaving seed =
  (* Small log segments so the mid-run retention enforcement actually
     drops sealed segments (and so bumps the invalidation epoch). *)
  let _eng, db, cfg, t0, t1 = build_tpcc ~seed ~log_segment_bytes:16384 ~txns:120 () in
  let span = t1 -. t0 in
  let sm = Session_manager.create db in
  let writers =
    List.init 2 (fun i ->
        let drv = Tpcc.create db { cfg with Tpcc.seed = seed + (31 * (i + 1)) } in
        Session_manager.open_writer sm
          ~name:(Printf.sprintf "w%d" i)
          ~step:(fun _ -> ignore (Tpcc.run_mix drv ~txns:2)))
  in
  let readers =
    List.init 3 (fun i ->
        (* Staggered targets in the recent fifth of history: they survive
           the retention cut below. *)
        let target = t1 -. ((0.10 +. (0.05 *. float_of_int i)) *. span) in
        let rs =
          Session_manager.open_reader sm
            ~name:(Printf.sprintf "r%d" i)
            ~wall_us:target
            ~step:(fun view ->
              let d = 1 + (i mod cfg.Tpcc.districts) in
              ignore (Tpcc.stock_level view cfg ~w:1 ~d ~threshold:15))
        in
        (rs, target))
  in
  check_int "all sessions live" 5 (Session_manager.live_count sm);
  Session_manager.run sm ~rounds:3;
  (* Mid-run history loss: retention keeps the last 0.9 span, truncating
     the load and early run while every reader's split stays retained. *)
  let epoch0 = Log_manager.invalidation_epoch (Database.log db) in
  Database.set_retention db (Some (0.9 *. span));
  ignore (Database.enforce_retention db);
  check "truncation bumped the invalidation epoch" true
    (Log_manager.invalidation_epoch (Database.log db) > epoch0);
  Session_manager.run sm ~rounds:3;
  (* Every shared reader must be byte-equal (canonical images) to a solo
     snapshot created with the cache off at the same target. *)
  List.iter
    (fun ((rs : Session_manager.session), target) ->
      let view = Session_manager.view rs in
      let snap = Option.get (Database.snapshot_handle view) in
      let solo_view =
        Database.create_as_of_snapshot ~shared:false db
          ~name:(Printf.sprintf "solo_%s" (Session_manager.name rs))
          ~wall_us:target
      in
      let solo = Option.get (Database.snapshot_handle solo_view) in
      check "split lsns equal" true
        (Lsn.equal (As_of_snapshot.split_lsn snap) (As_of_snapshot.split_lsn solo));
      List.iter
        (fun pid ->
          check_string
            (Printf.sprintf "%s page %d" (Session_manager.name rs) (Page_id.to_int pid))
            (As_of_snapshot.page_string solo pid)
            (As_of_snapshot.page_string snap pid))
        (As_of_snapshot.materialized_page_ids snap);
      As_of_snapshot.drop solo)
    readers;
  List.iter (fun w -> Session_manager.close sm w) writers;
  List.iter (fun (r, _) -> Session_manager.close sm r) readers;
  check_int "all sessions closed" 0 (Session_manager.live_count sm)

let test_interleaving_seed_7 () = run_interleaving 7
let test_interleaving_seed_19 () = run_interleaving 19

(* --- epoch invalidation: truncation and crash kill cached images --- *)

let test_epoch_invalidation () =
  let clock = Sim_clock.create () in
  (* Tiny segments: truncate_before can drop whole sealed segments. *)
  let log = Log_manager.create ~clock ~media:Media.ram ~segment_bytes:256 () in
  let pid = Page_id.of_int 0 in
  let page = Page.create ~id:pid ~typ:Page.Heap in
  let append op =
    let prev = Page.lsn page in
    let lsn =
      Log_manager.append log
        (Log_record.make (Log_record.Page_op { page = pid; prev_page_lsn = prev; op }))
    in
    Log_record.redo pid op page;
    Page.set_lsn page lsn;
    lsn
  in
  ignore (append (Log_record.Format { typ = Page.Heap; level = 0 }));
  let lsns = Array.init 40 (fun i -> append (Log_record.Insert_row { slot = 0; row = Printf.sprintf "row-%02d" i })) in
  let cache = Prepared_cache.create ~log () in
  let split = lsns.(20) in
  let image = Page.copy page in
  ignore (Page_undo.prepare_page_as_of ~log ~page:image ~as_of:split);
  Prepared_cache.add cache pid ~as_of:split image;
  (match Prepared_cache.find cache pid ~split with
  | Prepared_cache.Exact _ -> ()
  | _ -> Alcotest.fail "expected an exact hit before truncation");
  (* Truncate above the entry's as_of: its chain basis is gone. *)
  let e0 = Log_manager.invalidation_epoch log in
  Log_manager.truncate_before log lsns.(30);
  check "truncation bumps the epoch" true (Log_manager.invalidation_epoch log > e0);
  (match Prepared_cache.find cache pid ~split:lsns.(30) with
  | Prepared_cache.Miss -> ()
  | _ -> Alcotest.fail "expected a miss after truncation");
  check_int "stale entries pruned" 0 (Prepared_cache.entries cache);
  (* Crash: unflushed LSNs can be recycled with different contents, so
     cached images die even though first_lsn did not move. *)
  let split2 = Log_manager.end_lsn log in
  Prepared_cache.add cache pid ~as_of:split2 (Page.copy page);
  (match Prepared_cache.find cache pid ~split:split2 with
  | Prepared_cache.Exact _ -> ()
  | _ -> Alcotest.fail "expected an exact hit before crash");
  let e1 = Log_manager.invalidation_epoch log in
  Log_manager.crash log;
  check "crash bumps the epoch" true (Log_manager.invalidation_epoch log > e1);
  match Prepared_cache.find cache pid ~split:split2 with
  | Prepared_cache.Miss -> ()
  | _ -> Alcotest.fail "expected a miss after crash"

(* --- a second overlapping snapshot reuses the first one's rewinds --- *)

let test_shared_cache_reuse () =
  let _eng, db, cfg, t0, t1 = build_tpcc ~txns:120 () in
  let target = t1 -. (0.3 *. (t1 -. t0)) in
  let a = Database.create_as_of_snapshot db ~name:"a" ~wall_us:target in
  let snap_a = Option.get (Database.snapshot_handle a) in
  let count_a = Tpcc.stock_level a cfg ~w:1 ~d:1 ~threshold:15 in
  let chain_reads snap =
    List.fold_left (fun acc r -> acc + r.As_of_snapshot.rc_log_reads) 0
      (As_of_snapshot.rewinds snap)
  in
  let reads_a = chain_reads snap_a in
  check "first snapshot read undo chains" true (reads_a > 0);
  let cache = Database.prepared_cache db in
  let hits0 = Prepared_cache.hits cache + Prepared_cache.delta_hits cache in
  let b = Database.create_as_of_snapshot db ~name:"b" ~wall_us:target in
  let snap_b = Option.get (Database.snapshot_handle b) in
  let count_b = Tpcc.stock_level b cfg ~w:1 ~d:1 ~threshold:15 in
  check_int "same query answer" count_a count_b;
  check "second snapshot hit the shared cache" true
    (Prepared_cache.hits cache + Prepared_cache.delta_hits cache > hits0);
  check "second snapshot read far fewer chains" true (chain_reads snap_b * 2 <= reads_a);
  check "same split lsn" true
    (Lsn.equal (As_of_snapshot.split_lsn snap_a) (As_of_snapshot.split_lsn snap_b));
  List.iter
    (fun pid ->
      check_string
        (Printf.sprintf "page %d" (Page_id.to_int pid))
        (As_of_snapshot.page_string snap_a pid)
        (As_of_snapshot.page_string snap_b pid))
    (As_of_snapshot.materialized_page_ids snap_a)

let () =
  Alcotest.run "session"
    [
      ( "interleaving",
        [
          Alcotest.test_case "2 writers + 3 readers, seed 7" `Quick test_interleaving_seed_7;
          Alcotest.test_case "2 writers + 3 readers, seed 19" `Quick test_interleaving_seed_19;
        ] );
      ( "prepared_cache",
        [
          Alcotest.test_case "epoch invalidation" `Quick test_epoch_invalidation;
          Alcotest.test_case "shared-cache reuse" `Quick test_shared_cache_reuse;
        ] );
    ]
