(* Fan-out determinism for the shared domain pool (ISSUE 10).

   The pool's contract (lib/core/domain_pool.mli) is that fan-out changes
   modeled elapsed time only: results, counters and cache contents must be
   byte- and count-identical under any fan-out, including 1, because all
   shared effects happen on the coordinator in a fixed order.  These tests
   hold the staged consumers to that contract:

   - batched snapshot rewinds at fan-out 1 / 2 / 4 / default-clamp produce
     byte-identical canonical pages, identical rewind tallies, identical
     side-file hits and identical prepared-page cache contents;
   - the same holds across a mid-run retention truncation (invalidation
     epoch bump between two batches), at two workload seeds;
   - probe counter totals (undo, snapshot, buf, wal families) and both
     devices' Io_stats are identical at fan-out 1 vs 4 — pool.tasks and
     pool.wakes are deliberately excluded, they count participant slots
     and wakes and are fan-out-dependent by design;
   - the batched scrub sweep detects/repairs identically at any fan-out;
   - the pool itself runs every participant exactly once, reraises worker
     exceptions, and clamps fan-out as documented. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Lsn = Rw_storage.Lsn
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Io_stats = Rw_storage.Io_stats
module Log_manager = Rw_wal.Log_manager
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module As_of_snapshot = Rw_core.As_of_snapshot
module Prepared_cache = Rw_core.Prepared_cache
module Domain_pool = Rw_pool.Domain_pool
module Session_manager = Rw_session.Session_manager
module Metrics = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Tpcc = Rw_workload.Tpcc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- the pool itself --- *)

let test_run_covers_every_participant () =
  let n = 4 in
  let hits = Array.make n 0 in
  Domain_pool.run ~participants:n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri (fun i h -> check_int (Printf.sprintf "participant %d ran once" i) 1 h) hits;
  (* participants <= 1 runs inline on the caller, no workers involved. *)
  let solo = ref 0 in
  Domain_pool.run ~participants:1 (fun i ->
      check_int "solo index" 0 i;
      incr solo);
  check_int "solo ran once" 1 !solo

let test_worker_exception_reraised () =
  Alcotest.check_raises "worker failure surfaces on the caller"
    (Failure "boom") (fun () ->
      Domain_pool.run ~participants:3 (fun i -> if i = 2 then failwith "boom"));
  (* The pool survives a failed run and keeps executing. *)
  let ok = ref 0 in
  Domain_pool.run ~participants:3 (fun _ -> incr ok);
  check "pool usable after failure" true (!ok >= 1)

let test_fanout_clamp () =
  Fun.protect
    ~finally:(fun () -> Domain_pool.set_fanout None)
    (fun () ->
      Domain_pool.set_fanout (Some 3);
      check_int "override cap" 3 (Domain_pool.fanout_cap ());
      check_int "work below cap" 2 (Domain_pool.effective_fanout 2);
      check_int "work above cap" 3 (Domain_pool.effective_fanout 10);
      check_int "no work still 1" 1 (Domain_pool.effective_fanout 0);
      Domain_pool.set_fanout (Some 0);
      check_int "override floored at 1" 1 (Domain_pool.fanout_cap ());
      Domain_pool.set_fanout None;
      check_int "default clamp" (Domain.recommended_domain_count ()) (Domain_pool.fanout_cap ()));
  (* Workers park between runs while the cap is stable, but shrinking
     the cap retires them: a parked domain drags every minor GC on the
     coordinator into a multi-domain rendezvous, so restoring the
     override must leave no spare domains behind. *)
  Domain_pool.set_fanout (Some 3);
  Domain_pool.run ~participants:3 (fun _ -> ());
  check "workers parked while cap is stable" true (Domain_pool.spawned_workers () >= 2);
  Domain_pool.set_fanout None;
  if Domain.recommended_domain_count () = 1 then
    check_int "cap shrink retires parked workers" 0 (Domain_pool.spawned_workers ());
  (* The pool respawns and keeps working after a teardown. *)
  let hits = ref 0 in
  Domain_pool.run ~participants:2 (fun _ -> incr hits);
  check "pool usable after teardown" true (!hits >= 1);
  Domain_pool.set_fanout None

(* --- fan-out determinism on the batched snapshot rewind --- *)

(* Probe counters that every fan-out must agree on.  pool.tasks and
   pool.wakes are excluded by construction: they count participant slots
   and worker wakes, which is exactly what fan-out changes. *)
let tracked =
  [
    ("undo.page_rewinds", Probes.page_rewinds);
    ("undo.ops_undone", Probes.ops_undone);
    ("snapshot.pages_materialized", Probes.snapshot_pages_materialized);
    ("snapshot.parallel_pages", Probes.snapshot_parallel_pages);
    ("snapshot.shared_hits", Probes.snapshot_shared_hits);
    ("snapshot.shared_misses", Probes.snapshot_shared_misses);
    ("snapshot.side_hits", Probes.snapshot_side_hits);
    ("buf.fetch_hits", Probes.fetch_hits);
    ("buf.fetch_misses", Probes.fetch_misses);
    ("buf.evictions", Probes.evictions);
    ("buf.writebacks", Probes.writebacks);
    ("wal.appends", Probes.log_appends);
  ]

let tally () = List.map (fun (n, c) -> (n, Metrics.counter_value c)) tracked

let probe_delta before after =
  List.map2 (fun (n, b) (_, a) -> (n, a - b)) before after

let io_fingerprint (s : Io_stats.t) =
  ( s.Io_stats.random_reads,
    s.Io_stats.random_writes,
    s.Io_stats.seq_read_bytes,
    s.Io_stats.seq_write_bytes,
    s.Io_stats.log_block_hits,
    s.Io_stats.log_block_misses,
    s.Io_stats.log_record_hits,
    s.Io_stats.log_record_misses,
    s.Io_stats.corruptions_detected,
    s.Io_stats.pages_repaired,
    s.Io_stats.io_retries )

let build_tpcc ?(seed = 42) ~txns () =
  let eng = Engine.create ~media:Media.ram () in
  let db =
    Engine.create_database eng ~pool_capacity:1024 ~log_segment_bytes:16384 "tpcc"
  in
  let cfg = { Tpcc.small_config with Tpcc.seed } in
  Tpcc.load db cfg;
  ignore (Database.checkpoint db);
  let drv = Tpcc.create db cfg in
  let t0 = Engine.now_us eng in
  ignore (Tpcc.run_mix drv ~txns);
  let t1 = Engine.now_us eng in
  (db, t0, t1)

let written_pages db =
  let disk = Database.disk db in
  let acc = ref [] in
  for i = Disk.page_count disk - 1 downto 0 do
    let pid = Page_id.of_int i in
    if Disk.has_page disk pid then acc := pid :: !acc
  done;
  !acc

type outcome = {
  o_pages : (int * string) list;  (* canonical image per materialised page *)
  o_rewound : int;  (* materialize_batch return, both halves *)
  o_rewind_count : int;
  o_side_hits : int;
  o_cache : (Page_id.t * Lsn.t * string) list;
  o_probes : (string * int) list;
  o_disk : int * int * int * int * int * int * int * int * int * int * int;
  o_log : int * int * int * int * int * int * int * int * int * int * int;
}

(* One full deterministic run at a given fan-out: identical workload,
   snapshot, batched rewind of every written page in two halves — with an
   optional retention truncation (epoch bump) between the halves — then a
   complete observable fingerprint. *)
let run_once ~seed ~fanout ~truncate () =
  Fun.protect
    ~finally:(fun () -> Domain_pool.set_fanout None)
    (fun () ->
      Domain_pool.set_fanout fanout;
      let db, t0, t1 = build_tpcc ~seed ~txns:80 () in
      let span = t1 -. t0 in
      let before = tally () in
      let view =
        Database.create_as_of_snapshot db ~name:"fan" ~wall_us:(t1 -. (0.2 *. span))
      in
      let snap = Option.get (Database.snapshot_handle view) in
      let pages = written_pages db in
      let half = List.length pages / 2 in
      let first = List.filteri (fun i _ -> i < half) pages in
      let second = List.filteri (fun i _ -> i >= half) pages in
      let r1 = As_of_snapshot.materialize_batch snap first in
      if truncate then begin
        (* Mid-run history loss: keeps the snapshot's split retained but
           bumps the invalidation epoch between the two batches. *)
        let epoch0 = Log_manager.invalidation_epoch (Database.log db) in
        Database.set_retention db (Some (0.6 *. span));
        ignore (Database.enforce_retention db);
        check "truncation bumped the epoch" true
          (Log_manager.invalidation_epoch (Database.log db) > epoch0)
      end;
      let r2 = As_of_snapshot.materialize_batch snap second in
      let o_pages =
        List.map
          (fun pid -> (Page_id.to_int pid, As_of_snapshot.page_string snap pid))
          (As_of_snapshot.materialized_page_ids snap)
      in
      {
        o_pages;
        o_rewound = r1 + r2;
        o_rewind_count = As_of_snapshot.rewind_count snap;
        o_side_hits = As_of_snapshot.side_file_hits snap;
        o_cache = Prepared_cache.contents (Database.prepared_cache db);
        o_probes = probe_delta before (tally ());
        o_disk = io_fingerprint (Disk.stats (Database.disk db));
        o_log = io_fingerprint (Log_manager.stats (Database.log db));
      })

let check_outcomes_equal ~label base other =
  List.iter2
    (fun (pid, a) (pid', b) ->
      check_int (Printf.sprintf "%s: same page set" label) pid pid';
      check (Printf.sprintf "%s: page %d byte-identical" label pid) true (String.equal a b))
    base.o_pages other.o_pages;
  check_int (label ^ ": pages rewound") base.o_rewound other.o_rewound;
  check_int (label ^ ": rewind_count") base.o_rewind_count other.o_rewind_count;
  check_int (label ^ ": side-file hits") base.o_side_hits other.o_side_hits;
  check (label ^ ": prepared-cache contents") true (base.o_cache = other.o_cache);
  List.iter2
    (fun (n, a) (_, b) -> check_int (Printf.sprintf "%s: probe %s" label n) a b)
    base.o_probes other.o_probes;
  check (label ^ ": data-device Io_stats") true (base.o_disk = other.o_disk);
  check (label ^ ": log-device Io_stats") true (base.o_log = other.o_log)

let fanouts = [ ("fanout-1", Some 1); ("fanout-2", Some 2); ("fanout-4", Some 4); ("clamp", None) ]

let test_fanout_determinism () =
  List.iter
    (fun seed ->
      let base = run_once ~seed ~fanout:(Some 1) ~truncate:false () in
      check "the batch actually rewound pages" true (base.o_rewound > 0);
      check "pages went through the parallel pipeline" true
        (List.assoc "snapshot.parallel_pages" base.o_probes > 0);
      List.iter
        (fun (name, fanout) ->
          let other = run_once ~seed ~fanout ~truncate:false () in
          check_outcomes_equal ~label:(Printf.sprintf "seed %d %s" seed name) base other)
        (List.tl fanouts))
    [ 42; 1337 ]

let test_fanout_determinism_across_truncation () =
  List.iter
    (fun seed ->
      let base = run_once ~seed ~fanout:(Some 1) ~truncate:true () in
      List.iter
        (fun (name, fanout) ->
          let other = run_once ~seed ~fanout ~truncate:true () in
          check_outcomes_equal
            ~label:(Printf.sprintf "truncation seed %d %s" seed name)
            base other)
        (List.tl fanouts))
    [ 42; 1337 ]

(* --- fan-out determinism on the batched scrub sweep --- *)

let test_scrub_fanout_determinism () =
  let scrub_once fanout =
    Fun.protect
      ~finally:(fun () -> Domain_pool.set_fanout None)
      (fun () ->
        Domain_pool.set_fanout fanout;
        let db, _, _ = build_tpcc ~seed:7 ~txns:40 () in
        ignore (Database.checkpoint db);
        Rw_buffer.Buffer_pool.drop_all (Database.pool db);
        let before = tally () in
        let repaired = Database.scrub db in
        (repaired, probe_delta before (tally ()), io_fingerprint (Disk.stats (Database.disk db))))
  in
  let r1, p1, d1 = scrub_once (Some 1) in
  let r4, p4, d4 = scrub_once (Some 4) in
  check_int "scrub: same repairs" r1 r4;
  List.iter2
    (fun (n, a) (_, b) -> check_int (Printf.sprintf "scrub: probe %s" n) a b)
    p1 p4;
  check "scrub: identical Io_stats" true (d1 = d4)

(* --- prewarmed reader sessions ride the pipeline transparently --- *)

let test_prewarm_reader_equivalence () =
  let db, t0, t1 = build_tpcc ~seed:42 ~txns:60 () in
  let target = t1 -. (0.3 *. (t1 -. t0)) in
  let sm = Session_manager.create db in
  let warm =
    Session_manager.open_reader ~prewarm:true sm ~name:"warm" ~wall_us:target
      ~step:(fun _ -> ())
  in
  let cold =
    Session_manager.open_reader sm ~name:"cold" ~wall_us:target ~step:(fun _ -> ())
  in
  let warm_snap = Option.get (Database.snapshot_handle (Session_manager.view warm)) in
  let cold_snap = Option.get (Database.snapshot_handle (Session_manager.view cold)) in
  check "prewarm materialised pages up front" true
    (As_of_snapshot.pages_materialised warm_snap > 0);
  (* Every prewarmed page is byte-identical to the on-demand rewind. *)
  List.iter
    (fun pid ->
      check
        (Printf.sprintf "page %d identical warm vs cold" (Page_id.to_int pid))
        true
        (String.equal
           (As_of_snapshot.page_string warm_snap pid)
           (As_of_snapshot.page_string cold_snap pid)))
    (As_of_snapshot.materialized_page_ids warm_snap)

let () =
  Alcotest.run "pool"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "run covers every participant" `Quick
            test_run_covers_every_participant;
          Alcotest.test_case "worker exception reraised" `Quick test_worker_exception_reraised;
          Alcotest.test_case "fan-out clamp" `Quick test_fanout_clamp;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "snapshot batch, fan-out 1/2/4/clamp" `Quick
            test_fanout_determinism;
          Alcotest.test_case "snapshot batch across retention truncation" `Quick
            test_fanout_determinism_across_truncation;
          Alcotest.test_case "scrub sweep, fan-out 1 vs 4" `Quick test_scrub_fanout_determinism;
        ] );
      ( "sessions",
        [ Alcotest.test_case "prewarmed reader equivalence" `Quick test_prewarm_reader_equivalence ] );
    ]
