(* What-if selective undo: dependency-graph shape on a known history,
   the multi-seed byte-equality property campaign (selective replay vs
   the replay-from-scratch oracle), crash atomicity mid-selective-replay,
   and the SQL REWIND TRANSACTION surface. *)

module Media = Rw_storage.Media
module Page_id = Rw_storage.Page_id
module Txn_id = Rw_wal.Txn_id
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Schema = Rw_catalog.Schema
module Executor = Rw_sql.Executor
module Dep_graph = Rw_whatif.Dep_graph
module Selective = Rw_whatif.Selective
module Experiments = Rw_workload.Experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [ { Schema.name = "k"; ctype = Schema.Int }; { Schema.name = "v"; ctype = Schema.Text } ]

(* 600 B values: ~13 rows per 8 KiB leaf, so keys 20 apart land on
   different leaves and updates never split pages. *)
let value ~round ~key =
  let head = Printf.sprintf "r%03d-k%03d-" round key in
  head ^ String.make (600 - String.length head) 'x'

let build_base db =
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for k = 0 to 39 do
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int k); Row.Text (value ~round:0 ~key:k) ]
      done);
  ignore (Database.checkpoint db)

let apply_round db ~round keys =
  Database.with_txn db (fun txn ->
      List.iter
        (fun k ->
          Database.update db txn ~table:"t" [ Row.Int (Int64.of_int k); Row.Text (value ~round ~key:k) ])
        keys)

(* The four-transaction history the direct tests share: T1 writes the
   leaves of keys 0 and 20, T2 depends on it through key 0's leaf, T3
   through key 20's leaf, T4 is independent on key 35's leaf. *)
let history = [ (1, [ 0; 20 ]); (2, [ 0 ]); (3, [ 20 ]); (4, [ 35 ]) ]

let build_history ?(skip = []) () =
  let eng = Engine.create ~media:Media.ram () in
  let db = Engine.create_database eng ~pool_capacity:256 "wf" in
  build_base db;
  List.iter
    (fun (round, keys) -> if not (List.mem round skip) then apply_round db ~round keys)
    history;
  (eng, db)

let dump db =
  let acc = ref [] in
  Database.scan db ~table:"t" ~f:(fun r -> acc := r :: !acc);
  List.sort compare !acc

(* The last [n] graph nodes are the history transactions, in order. *)
let history_node graph ~ordinal =
  let nodes = Dep_graph.nodes graph in
  List.nth nodes (List.length nodes - List.length history + ordinal - 1)

(* --- dependency graph shape on the known history --- *)

let test_graph_shape () =
  let _eng, db = build_history () in
  let graph = Dep_graph.build ~log:(Database.log db) in
  check "built from the append-time index" true (Dep_graph.built_from_index graph);
  let t1 = history_node graph ~ordinal:1 in
  let t4 = history_node graph ~ordinal:4 in
  check "history txns are not structural" true (not t1.Dep_graph.structural);
  check_int "T1 wrote two pages" 2 (List.length t1.Dep_graph.writes);
  let closure_ids n =
    Dep_graph.closure graph n.Dep_graph.txn
    |> List.map (fun m -> Txn_id.to_int m.Dep_graph.txn)
    |> List.sort compare
  in
  let t1_id = Txn_id.to_int t1.Dep_graph.txn in
  check "T1's closure is {T1,T2,T3}" true
    (closure_ids t1 = [ t1_id; t1_id + 1; t1_id + 2 ]);
  check "T4 is fully independent" true (closure_ids t4 = [ Txn_id.to_int t4.Dep_graph.txn ]);
  check_int "T1 has two direct dependents" 2
    (List.length (Dep_graph.dependents graph t1.Dep_graph.txn));
  check_int "full-rewind scope covers the tail" 4
    (List.length (Dep_graph.successors graph t1.Dep_graph.txn));
  check "unknown txn has an empty closure" true (Dep_graph.closure graph (Txn_id.of_int 99999) = [])

(* --- repair equals the replay-from-scratch oracle; independents untouched --- *)

let test_repair_vs_oracle () =
  let _eng, db = build_history () in
  let graph = Dep_graph.build ~log:(Database.log db) in
  let victim = (history_node graph ~ordinal:1).Dep_graph.txn in
  let stats =
    match
      Selective.repair ~ctx:(Database.ctx db) ~log:(Database.log db) ~graph ~victim
        ~wall_us:(Database.now_us db) ()
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "repair reported conflicts"
  in
  check_int "closure is victim + 2 dependents" 3 stats.Selective.closure_size;
  check_int "two replayed transactions" 2 stats.Selective.replayed_txns;
  check_int "only the two shared leaves rewound" 2 stats.Selective.pages_rewound;
  let _oeng, odb = build_history ~skip:[ 1 ] () in
  check "repaired state equals replay-minus-victim oracle" true (dump db = dump odb);
  check "independent T4's write survived" true
    (Database.get db ~table:"t" ~key:35L = Some [ Row.Int 35L; Row.Text (value ~round:4 ~key:35) ])

(* --- the multi-seed byte-equality property campaign --- *)

let test_soak_campaign () =
  let rows = Experiments.whatif_soak_campaign ~seeds:[ 11; 23; 47 ] ~quick:true () in
  check_int "three scenarios at three seeds" 9 (List.length rows);
  List.iter
    (fun (r : Experiments.whatif_row) ->
      let label p =
        Printf.sprintf "seed %d, %s: %s" r.Experiments.wr_seed
          (Experiments.whatif_scenario_name r.Experiments.wr_scenario)
          p
      in
      check (label "graph from append-time index") true r.Experiments.wr_from_index;
      check (label "dependent set exactly the constructed one") true r.Experiments.wr_scope_exact;
      check (label "what-if view agrees with oracle") true r.Experiments.wr_view_agrees;
      check (label "repair ran") true r.Experiments.wr_repaired;
      check (label "repaired rows equal oracle") true r.Experiments.wr_state_agrees;
      check (label "canonical pages equal oracle") true r.Experiments.wr_pages_equal;
      check (label "pre-victim as-of survives repair") true r.Experiments.wr_asof_agrees;
      match r.Experiments.wr_scenario with
      | Experiments.Wf_independent ->
          check_int (label "independent victim replays nothing") 0 r.Experiments.wr_replayed
      | Experiments.Wf_chain ->
          check (label "chained victim drags the whole tail") true
            (r.Experiments.wr_replayed = r.Experiments.wr_closure - 1
            && r.Experiments.wr_replayed > 0)
      | Experiments.Wf_mixed -> check (label "mixed replays some") true (r.Experiments.wr_replayed > 0))
    rows

(* --- crash mid-selective-replay: the repair is atomic --- *)

let test_crash_mid_replay () =
  let _eng, db = build_history () in
  let before = dump db in
  let graph = Dep_graph.build ~log:(Database.log db) in
  let victim = (history_node graph ~ordinal:1).Dep_graph.txn in
  (* Crash after the first page's diff is logged but before the repair
     transaction can commit: the repair must roll back like any other
     in-flight transaction. *)
  let crashed = ref false in
  (try
     ignore
       (Selective.repair ~ctx:(Database.ctx db) ~log:(Database.log db) ~graph ~victim
          ~wall_us:(Database.now_us db)
          ~on_progress:(fun i -> if i = 1 then raise Exit)
          ())
   with Exit -> crashed := true);
  check "crash hook fired on the second page" true !crashed;
  let db2 = Database.crash_and_reopen db in
  check "half-applied repair rolled back" true (dump db2 = before);
  (* The survivor can run the same repair to completion. *)
  let graph2 = Dep_graph.build ~log:(Database.log db2) in
  (match
     Selective.repair ~ctx:(Database.ctx db2) ~log:(Database.log db2) ~graph:graph2 ~victim
       ~wall_us:(Database.now_us db2) ()
   with
  | Ok s -> check_int "retry rewinds both pages" 2 s.Selective.pages_rewound
  | Error _ -> Alcotest.fail "retry reported conflicts");
  let _oeng, odb = build_history ~skip:[ 1 ] () in
  check "post-crash retry equals the oracle" true (dump db2 = dump odb)

(* --- conflicts refuse, never partially apply --- *)

let test_structural_refused () =
  let _eng, db = build_history () in
  let graph = Dep_graph.build ~log:(Database.log db) in
  (* The base-load transaction formats pages: structural, not removable. *)
  let base =
    List.find (fun n -> n.Dep_graph.structural) (Dep_graph.nodes graph)
  in
  let before = dump db in
  (match
     Selective.repair ~ctx:(Database.ctx db) ~log:(Database.log db) ~graph
       ~victim:base.Dep_graph.txn ~wall_us:(Database.now_us db) ()
   with
  | Ok _ -> Alcotest.fail "expected a structural conflict"
  | Error cs ->
      check "conflict names the transaction" true
        (List.exists (fun c -> Page_id.equal c.Selective.page Page_id.nil) cs));
  check "refused repair changed nothing" true (dump db = before);
  Alcotest.check_raises "unknown victim raises" (Selective.Unknown_txn (Txn_id.of_int 424242))
    (fun () ->
      ignore
        (Selective.repair ~ctx:(Database.ctx db) ~log:(Database.log db) ~graph
           ~victim:(Txn_id.of_int 424242) ~wall_us:(Database.now_us db) ()))

(* --- SQL surface: REWIND TRANSACTION t [AS view] --- *)

let run_ok session sql =
  match Executor.run session sql with
  | r -> r
  | exception Executor.Sql_error m -> Alcotest.fail ("sql error: " ^ m)

let test_sql_rewind () =
  let eng, db = build_history () in
  let session = Executor.create_session eng in
  ignore (run_ok session "USE wf");
  let graph = Dep_graph.build ~log:(Database.log db) in
  let victim = Txn_id.to_int (history_node graph ~ordinal:1).Dep_graph.txn in
  (* First as a what-if view: the live database is untouched. *)
  let live = dump db in
  (match run_ok session (Printf.sprintf "REWIND TRANSACTION %d AS wv" victim) with
  | Executor.Message _ -> ()
  | _ -> Alcotest.fail "expected a message");
  check "view creation left the live database alone" true (dump db = live);
  let view = Option.get (Engine.find_database eng "wv") in
  let _oeng, odb = build_history ~skip:[ 1 ] () in
  check "view rows equal the oracle" true (dump view = dump odb);
  (* Then in place. *)
  (match run_ok session (Printf.sprintf "REWIND TRANSACTION %d" victim) with
  | Executor.Message _ -> ()
  | _ -> Alcotest.fail "expected a message");
  check "in-place rewind equals the oracle" true (dump db = dump odb);
  (* Bad victim ids are SQL errors, not exceptions. *)
  check "unknown victim is a sql error" true
    (match Executor.run session "REWIND TRANSACTION 424242" with
    | exception Executor.Sql_error _ -> true
    | _ -> false)

(* --- another session's open transaction blocks the rewind --- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_inflight_conflict () =
  let eng, db = build_history () in
  let s1 = Executor.create_session eng in
  let s2 = Executor.create_session eng in
  ignore (run_ok s1 "USE wf");
  ignore (run_ok s2 "USE wf");
  let graph = Dep_graph.build ~log:(Database.log db) in
  let victim = Txn_id.to_int (history_node graph ~ordinal:1).Dep_graph.txn in
  (* Session 2 opens a transaction and writes key 0's leaf — a page the
     rewind of T1 would unwind — without committing.  The rewind must
     refuse: rewinding would erase the open transaction's row, and
     nothing would ever replay it. *)
  ignore (run_ok s2 "BEGIN");
  check_int "held update applied" 1
    (match run_ok s2 "UPDATE t SET v = 'held' WHERE k = 0" with
    | Executor.Affected n -> n
    | _ -> -1);
  let live = dump db in
  (match Executor.run s1 (Printf.sprintf "REWIND TRANSACTION %d" victim) with
  | exception Executor.Sql_error m ->
      check "conflict names the in-flight transaction" true (contains m "in-flight")
  | _ -> Alcotest.fail "expected an in-flight conflict");
  check "refused rewind changed nothing" true (dump db = live);
  (* Once that transaction commits it is an ordinary committed outsider:
     the planner folds it into the removed set and the rewind goes
     through. *)
  ignore (run_ok s2 "COMMIT");
  (match run_ok s1 (Printf.sprintf "REWIND TRANSACTION %d" victim) with
  | Executor.Message _ -> ()
  | _ -> Alcotest.fail "expected a message");
  check "committed late-comer's write survives the rewind" true
    (Database.get db ~table:"t" ~key:0L = Some [ Row.Int 0L; Row.Text "held" ])

let () =
  Alcotest.run "whatif"
    [
      ("graph", [ Alcotest.test_case "known-history shape" `Quick test_graph_shape ]);
      ( "selective",
        [
          Alcotest.test_case "repair vs oracle" `Quick test_repair_vs_oracle;
          Alcotest.test_case "crash mid-replay atomic" `Quick test_crash_mid_replay;
          Alcotest.test_case "conflicts refuse cleanly" `Quick test_structural_refused;
          Alcotest.test_case "in-flight transaction blocks rewind" `Quick test_inflight_conflict;
        ] );
      ("campaign", [ Alcotest.test_case "three seeds, three scenarios" `Slow test_soak_campaign ]);
      ("sql", [ Alcotest.test_case "rewind transaction" `Quick test_sql_rewind ]);
    ]
