(* Log-shipping replication (ISSUE 8).

   The properties under test:
   - shipping is exact: a replica pumped to Caught_up serves as-of reads
     byte-equal (canonical page form) to the primary at the same wall
     time, and its log is a byte-identical prefix of the primary's;
   - the channel's seeded faults (drop, duplicate, delay, partition) cost
     retries but never correctness — duplicate delivery is idempotent,
     a partition disconnects and a healed link reconnects;
   - a replica killed mid-catch-up reopens from its persisted recovery
     checkpoint (analysis does not rescan shipped history), replays
     committed-only records past it, and converges byte-equal to both the
     primary and a never-crashed twin — at two seeds;
   - retention on the primary never strands an attached lagging replica
     (ship-horizon floor), and detaching releases the floor;
   - failover promotes the replica into a primary that serves correct
     pre-failover as-of queries, and the demoted primary rejoins as a
     replica by truncating its divergent tail and converging on the new
     timeline. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Lsn = Rw_storage.Lsn
module Log_manager = Rw_wal.Log_manager
module Log_record = Rw_wal.Log_record
module Recovery = Rw_recovery.Recovery
module As_of_snapshot = Rw_core.As_of_snapshot
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Channel = Rw_repl.Channel
module Replica = Rw_repl.Replica
module Shipper = Rw_repl.Shipper
module Failover = Rw_repl.Failover
module Tpcc = Rw_workload.Tpcc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A TPC-C primary with committed history and small log segments (so
   catch-up takes several shipping units). *)
let build_primary ?(seed = 42) ?(segment_bytes = 16384) ?(txns = 60) () =
  let eng = Engine.create ~media:Media.ram () in
  let db =
    Engine.create_database eng ~pool_capacity:1024 ~log_segment_bytes:segment_bytes "prim"
  in
  let cfg = { Tpcc.small_config with Tpcc.seed } in
  Tpcc.load db cfg;
  ignore (Database.checkpoint db);
  let drv = Tpcc.create db cfg in
  if txns > 0 then ignore (Tpcc.run_mix drv ~txns);
  (eng, db, cfg, drv)

(* Row-level logical state. *)
let table_dump db =
  List.map
    (fun table ->
      let rows = ref [] in
      Database.scan db ~table ~f:(fun row -> rows := row :: !rows);
      (table, List.rev !rows))
    Tpcc.table_names

(* Canonical-page byte equality of two engines' views at one wall time:
   same [page_string] for every page either side materialised.  Split
   LSNs are deliberately not compared — snapshot creation itself appends
   a checkpoint record to the engine it runs on, so two engines' log
   ends drift apart by exactly those (page-state-neutral) records once
   either has served a snapshot. *)
let snap_equal ?(name = "cmp") a b ~wall_us =
  let va = Database.create_as_of_snapshot ~shared:false a ~name:(name ^ "_a") ~wall_us in
  let vb = Database.create_as_of_snapshot ~shared:false b ~name:(name ^ "_b") ~wall_us in
  let sa = Option.get (Database.snapshot_handle va) in
  let sb = Option.get (Database.snapshot_handle vb) in
  let ids =
    As_of_snapshot.materialized_page_ids sa @ As_of_snapshot.materialized_page_ids sb
  in
  let ok =
    List.for_all
      (fun pid ->
        let e =
          String.equal (As_of_snapshot.page_string sa pid) (As_of_snapshot.page_string sb pid)
        in
        if not e then
          Printf.eprintf "snap_equal %s: page %d differs\n%!" name
            (Rw_storage.Page_id.to_int pid);
        e)
      ids
  in
  As_of_snapshot.drop sa;
  As_of_snapshot.drop sb;
  ok

let log_prefix_equal primary replica_log =
  let pl = Database.log primary in
  let upto = Log_manager.end_lsn replica_log in
  let mine = ref [] and theirs = ref [] in
  Log_manager.iter_range replica_log ~from:(Log_manager.first_lsn replica_log) ~upto
    (fun lsn r -> mine := (lsn, Log_record.encode r) :: !mine);
  Log_manager.iter_range pl ~from:(Log_manager.first_lsn replica_log) ~upto (fun lsn r ->
      theirs := (lsn, Log_record.encode r) :: !theirs);
  !mine = !theirs

(* --- export / ingest primitives --- *)

let test_export_ingest_roundtrip () =
  let _eng, db, _cfg, _drv = build_primary ~txns:25 () in
  let src = Database.log db in
  let clock = Sim_clock.create () in
  let dst =
    Log_manager.create ~clock ~media:Media.ram ~segment_bytes:(Log_manager.segment_size src) ()
  in
  let rec pump from =
    match Log_manager.export_from src ~from with
    | None -> ()
    | Some ex ->
        check_int "applied all" (List.length ex.Log_manager.ex_entries)
          (Log_manager.ingest_entries dst ex.Log_manager.ex_entries);
        (* duplicate delivery is an idempotent no-op *)
        check_int "dup skipped" 0 (Log_manager.ingest_entries dst ex.Log_manager.ex_entries);
        pump ex.Log_manager.ex_next
  in
  pump (Log_manager.first_lsn src);
  check "copy ends at durable horizon"
    (Lsn.equal (Log_manager.end_lsn dst) (Log_manager.flushed_lsn src))
    true;
  let dump_upto log upto =
    List.filter (fun (l, _) -> Lsn.(l < upto)) (Log_manager.dump_entries log)
  in
  check "byte-identical prefix"
    (dump_upto src (Log_manager.flushed_lsn src) = Log_manager.dump_entries dst)
    true;
  (* a gap is rejected *)
  (match Log_manager.dump_entries dst with
  | (_, data) :: _ ->
      let bogus = Lsn.of_int (Lsn.to_int (Log_manager.end_lsn dst) + 64) in
      check "gap rejected"
        (try
           ignore (Log_manager.ingest_entries dst [ (bogus, data) ]);
           false
         with Invalid_argument _ -> true)
        true
  | [] -> Alcotest.fail "empty dump");
  (* lag measure reaches zero *)
  check_int "caught up" 0 (Log_manager.segments_behind src ~from:(Log_manager.end_lsn dst))

let test_truncate_from () =
  let _eng, db, _cfg, _drv = build_primary ~txns:20 () in
  let log = Database.log db in
  let entries = Log_manager.dump_entries log in
  let n = List.length entries in
  let cut_lsn, _ = List.nth entries (n / 2) in
  let keep = List.filter (fun (l, _) -> Lsn.(l < cut_lsn)) entries in
  let epoch0 = Log_manager.invalidation_epoch log in
  let dropped = Log_manager.truncate_from log cut_lsn in
  check_int "dropped count" (n - List.length keep) dropped;
  check "end at cut" (Lsn.equal (Log_manager.end_lsn log) cut_lsn) true;
  check "epoch bumped" (Log_manager.invalidation_epoch log > epoch0) true;
  check "survivors intact" (Log_manager.dump_entries log = keep) true;
  check_int "noop above end" 0 (Log_manager.truncate_from log (Log_manager.end_lsn log))

(* --- ship basics + stale horizon --- *)

let test_ship_basics () =
  let eng, db, _cfg, drv = build_primary ~txns:40 () in
  let t_mid = Engine.now_us eng in
  let replica = Replica.of_primary ~name:"r1" db in
  ignore (Tpcc.run_mix drv ~txns:40);
  let t_end = Engine.now_us eng in
  let sh =
    Shipper.attach ~primary:db ~replica
      ~channel:(Channel.create ~clock:(Engine.clock eng) ())
      ()
  in
  check "lagging before pump" (Shipper.state sh = Shipper.Lagging) true;
  (* reads past the applied horizon refuse rather than lie *)
  check "stale horizon raised"
    (try
       ignore (Replica.query_as_of replica ~name:"early" ~wall_us:t_end);
       false
     with Replica.Stale_horizon _ -> true)
    true;
  Shipper.catch_up sh;
  check "caught up" (Shipper.state sh = Shipper.Caught_up) true;
  check "lag zero" (Shipper.lag_segments sh = 0) true;
  check "shipped something" (Shipper.shipped_segments sh > 0) true;
  check "log is byte-identical prefix" (log_prefix_equal db (Database.log (Replica.db replica))) true;
  check "as-of byte-equal (mid)" (snap_equal db (Replica.db replica) ~wall_us:t_mid) true;
  (* a local replica read at an applied time works and agrees row-for-row *)
  let view = Replica.query_as_of replica ~name:"ok" ~wall_us:t_mid in
  let prim_view = Database.create_as_of_snapshot ~shared:false db ~name:"okp" ~wall_us:t_mid in
  check "rows agree" (table_dump view = table_dump prim_view) true;
  Shipper.detach sh

(* --- channel faults: drop/dup/delay cost retries, never correctness --- *)

let test_channel_faults () =
  let eng, db, _cfg, drv = build_primary ~seed:7 ~txns:30 () in
  let replica = Replica.of_primary ~name:"rf" db in
  ignore (Tpcc.run_mix drv ~txns:50);
  let chan =
    Channel.create ~clock:(Engine.clock eng) ~seed:7
      ~rates:{ Channel.drop = 0.25; duplicate = 0.25; delay = 0.2; partition = 0.0 }
      ()
  in
  let sh = Shipper.attach ~primary:db ~replica ~channel:chan ~max_retries:50 () in
  Shipper.catch_up sh;
  check "caught up despite faults" (Shipper.state sh = Shipper.Caught_up) true;
  let st = Channel.stats chan in
  check "drops occurred" (st.Channel.dropped > 0) true;
  check "dups occurred" (st.Channel.duplicated > 0) true;
  check "retries counted" (Shipper.retries sh > 0) true;
  check "faulty link, identical log"
    (log_prefix_equal db (Database.log (Replica.db replica)))
    true;
  let wall = Engine.now_us eng in
  check "faulty link, byte-equal state" (snap_equal db (Replica.db replica) ~wall_us:wall) true;
  Shipper.detach sh

let test_partition_reconnect () =
  let eng, db, _cfg, drv = build_primary ~seed:11 ~txns:30 () in
  let replica = Replica.of_primary ~name:"rp" db in
  ignore (Tpcc.run_mix drv ~txns:30);
  let chan = Channel.create ~clock:(Engine.clock eng) ~seed:11 () in
  let sh = Shipper.attach ~primary:db ~replica ~channel:chan ~max_retries:3 () in
  Channel.partition chan ~sends:1000;
  Shipper.catch_up sh;
  check "disconnected under partition" (Shipper.state sh = Shipper.Disconnected) true;
  check "nothing shipped" (Shipper.shipped_segments sh = 0) true;
  Channel.heal chan;
  Shipper.catch_up sh;
  check "reconnected and caught up" (Shipper.state sh = Shipper.Caught_up) true;
  check "converged after heal" (log_prefix_equal db (Database.log (Replica.db replica))) true;
  Shipper.detach sh

(* --- replica crash mid-catch-up: resume from the recovery checkpoint --- *)

let crash_resume_run seed =
  let eng, db, cfg, drv = build_primary ~seed ~txns:30 () in
  let replica = Replica.of_primary ~name:"rc" db in
  let twin = Replica.of_primary ~name:"rt" db in
  (* History with periodic primary checkpoints, so shipments carry
     checkpoint records and the replica's recovery checkpoint advances. *)
  for _ = 1 to 4 do
    ignore (Tpcc.run_mix drv ~txns:20);
    ignore (Database.checkpoint db)
  done;
  let clock = Engine.clock eng in
  let sh = Shipper.attach ~primary:db ~replica ~channel:(Channel.create ~clock ()) () in
  let sh_twin = Shipper.attach ~primary:db ~replica:twin ~channel:(Channel.create ~clock ()) () in
  (* Partial catch-up: pump roughly half the backlog, then kill. *)
  let lag0 = Shipper.lag_segments sh in
  while Shipper.lag_segments sh > max 1 (lag0 / 2) do
    ignore (Shipper.step sh)
  done;
  let rlog = Database.log (Replica.db replica) in
  check "recovery checkpoint advanced past bootstrap"
    (Lsn.(Log_manager.last_checkpoint rlog > Log_manager.first_lsn rlog))
    true;
  Replica.crash_and_reopen replica;
  (* Redo-only restart: nothing appended, analysis resumed from the
     persisted master record rather than the start of shipped history. *)
  let stats = Option.get (Database.last_recovery_stats (Replica.db replica)) in
  check_int "no undo on replica restart" 0 stats.Recovery.undone_ops;
  let rlog = Database.log (Replica.db replica) in
  check "bounded rescan"
    (stats.Recovery.analysis.Recovery.records_scanned < Log_manager.record_count rlog)
    true;
  Shipper.catch_up sh;
  Shipper.catch_up sh_twin;
  check "crashed replica caught up" (Shipper.state sh = Shipper.Caught_up) true;
  let wall = Engine.now_us eng in
  ignore cfg;
  check "byte-equal to primary"
    (snap_equal ~name:"prim" db (Replica.db replica) ~wall_us:wall)
    true;
  check "byte-equal to never-crashed twin"
    (snap_equal ~name:"twin" (Replica.db twin) (Replica.db replica) ~wall_us:wall)
    true;
  check "rows equal to primary" (table_dump (Replica.db replica) = table_dump db) true;
  Shipper.detach sh;
  Shipper.detach sh_twin

let test_crash_resume_seed1 () = crash_resume_run 42
let test_crash_resume_seed2 () = crash_resume_run 1337

(* --- retention floor: a lagging replica is never stranded --- *)

let test_retention_floor () =
  let eng, db, _cfg, drv = build_primary ~seed:5 ~segment_bytes:8192 ~txns:20 () in
  let replica = Replica.of_primary ~name:"rr" db in
  let sh =
    Shipper.attach ~primary:db ~replica
      ~channel:(Channel.create ~clock:(Engine.clock eng) ())
      ()
  in
  (* Aggressive retention while the replica lags: checkpoints ride
     enforcement, but the ship-horizon floor must pin the log. *)
  Database.set_retention db (Some 1000.0);
  for _ = 1 to 5 do
    ignore (Tpcc.run_mix drv ~txns:25);
    ignore (Database.checkpoint db)
  done;
  let plog = Database.log db in
  check "floor held retention back"
    (Lsn.(Log_manager.first_lsn plog <= Replica.next_lsn replica))
    true;
  check "replica is genuinely behind" (Shipper.lag_segments sh > 0) true;
  (* The lagging replica still catches up — nothing it needs was dropped. *)
  Shipper.catch_up sh;
  check "caught up after aggressive retention" (Shipper.state sh = Shipper.Caught_up) true;
  check "state agrees" (table_dump (Replica.db replica) = table_dump db) true;
  (* Detaching releases the floor: retention may now pass the old horizon.
     Three more rounds, because the cut keeps one checkpoint of history
     below the newest checkpoint older than the retention horizon. *)
  let pinned = Replica.next_lsn replica in
  Shipper.detach sh;
  for _ = 1 to 3 do
    ignore (Tpcc.run_mix drv ~txns:25);
    ignore (Database.checkpoint db)
  done;
  check "floor released after detach" (Lsn.(Log_manager.first_lsn plog > pinned)) true

(* --- failover + rejoin --- *)

let test_failover_rejoin () =
  let eng, db, _cfg, drv = build_primary ~seed:3 ~txns:40 () in
  let replica = Replica.of_primary ~name:"fo" db in
  ignore (Tpcc.run_mix drv ~txns:40);
  let clock = Engine.clock eng in
  let sh = Shipper.attach ~primary:db ~replica ~channel:(Channel.create ~clock ()) () in
  Shipper.catch_up sh;
  let t_pre = Engine.now_us eng in
  let pre_dump = table_dump db in
  (* Divergent tail: committed work past the last shipment that will
     never reach the replica — lost by the failover, truncated at rejoin. *)
  ignore (Tpcc.run_mix drv ~txns:10);
  Shipper.detach sh;
  (* Primary dies.  Promote the (only) replica. *)
  check "candidate selection" (Failover.most_caught_up [ replica ] == replica) true;
  let new_primary, at = Failover.promote replica in
  check "promotion horizon below dead primary's end"
    (Lsn.(at <= Log_manager.end_lsn (Database.log db)))
    true;
  (* The new primary serves correct as-of queries for pre-failover times. *)
  let v = Database.create_as_of_snapshot new_primary ~name:"pre" ~wall_us:t_pre in
  check "pre-failover as-of on promoted primary" (table_dump v = pre_dump) true;
  (* New timeline: fresh traffic on the new primary. *)
  let drv2 = Tpcc.create new_primary { _cfg with Tpcc.seed = 999 } in
  ignore (Tpcc.run_mix drv2 ~txns:30);
  (* The demoted primary rejoins as a replica: divergent tail truncated,
     pages rewound, committed-only replay past its recovery point. *)
  let rejoined = Failover.rejoin ~name:"demoted" ~at db in
  check "divergent tail cut" (Lsn.equal (Replica.next_lsn rejoined) at) true;
  let sh2 =
    Shipper.attach ~primary:new_primary ~replica:rejoined ~channel:(Channel.create ~clock ()) ()
  in
  Shipper.catch_up sh2;
  check "rejoined replica caught up" (Shipper.state sh2 = Shipper.Caught_up) true;
  check "rejoined log equals new primary's"
    (log_prefix_equal new_primary (Database.log (Replica.db rejoined)))
    true;
  check "rejoined state byte-equal"
    (snap_equal new_primary (Replica.db rejoined) ~wall_us:(Engine.now_us eng))
    true;
  check "rejoined rows equal" (table_dump (Replica.db rejoined) = table_dump new_primary) true;
  Shipper.detach sh2

let () =
  Alcotest.run "repl"
    [
      ( "log-shipping",
        [
          Alcotest.test_case "export/ingest roundtrip" `Quick test_export_ingest_roundtrip;
          Alcotest.test_case "truncate_from" `Quick test_truncate_from;
          Alcotest.test_case "ship basics + stale horizon" `Quick test_ship_basics;
          Alcotest.test_case "channel faults" `Quick test_channel_faults;
          Alcotest.test_case "partition disconnect/reconnect" `Quick test_partition_reconnect;
          Alcotest.test_case "crash mid-catch-up resumes from checkpoint (seed 42)" `Quick
            test_crash_resume_seed1;
          Alcotest.test_case "crash mid-catch-up resumes from checkpoint (seed 1337)" `Quick
            test_crash_resume_seed2;
          Alcotest.test_case "retention floor protects lagging replica" `Quick
            test_retention_floor;
          Alcotest.test_case "failover + rejoin" `Quick test_failover_rejoin;
        ] );
    ]
