(* Lock manager and transaction manager tests, including CLR-based rollback
   (with the paper's undo-information-bearing CLRs). *)

module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Slotted_page = Rw_storage.Slotted_page
module Txn_id = Rw_wal.Txn_id
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Lock_manager = Rw_txn.Lock_manager
module Txn_manager = Rw_txn.Txn_manager
module Access_ctx = Rw_access.Access_ctx

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

type env = {
  clock : Sim_clock.t;
  log : Log_manager.t;
  pool : Buffer_pool.t;
  txns : Txn_manager.t;
  ctx : Access_ctx.t;
}

let mk_env ?fpi_frequency () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let log = Log_manager.create ~clock ~media:Media.ram () in
  let pool =
    Buffer_pool.create ~capacity:64 ~source:(Buffer_pool.of_disk disk)
      ~wal_flush:(fun lsn -> Log_manager.flush log ~upto:lsn)
      ()
  in
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  let ctx = Access_ctx.create ~pool ~txns ~log ~clock ?fpi_frequency () in
  { clock; log; pool; txns; ctx }

(* --- lock manager --- *)

let test_lock_compat_matrix () =
  let open Lock_manager in
  check "IS/IS" true (compatible IS IS);
  check "IS/IX" true (compatible IS IX);
  check "IS/S" true (compatible IS S);
  check "IS/X" false (compatible IS X);
  check "IX/IX" true (compatible IX IX);
  check "IX/S" false (compatible IX S);
  check "IX/X" false (compatible IX X);
  check "S/S" true (compatible S S);
  check "S/X" false (compatible S X);
  check "X/X" false (compatible X X)

let test_lock_grant_conflict () =
  let lm = Lock_manager.create () in
  let t1 = Txn_id.of_int 1 and t2 = Txn_id.of_int 2 in
  let row = Lock_manager.Row (1, 5L) in
  Lock_manager.acquire lm t1 row Lock_manager.S;
  Lock_manager.acquire lm t2 row Lock_manager.S;
  Alcotest.check_raises "S blocks X" (Lock_manager.Lock_conflict row) (fun () ->
      Lock_manager.acquire lm t2 row Lock_manager.X);
  Lock_manager.release_all lm t1;
  Lock_manager.acquire lm t2 row Lock_manager.X;
  check "upgraded" true (Lock_manager.holds lm t2 row Lock_manager.X)

let test_lock_reentrant_and_upgrade () =
  let lm = Lock_manager.create () in
  let t1 = Txn_id.of_int 1 in
  let tab = Lock_manager.Table 3 in
  Lock_manager.acquire lm t1 tab Lock_manager.IS;
  Lock_manager.acquire lm t1 tab Lock_manager.IS;
  check_int "no duplicate entries" 1 (Lock_manager.lock_count lm);
  Lock_manager.acquire lm t1 tab Lock_manager.IX;
  check "IX held" true (Lock_manager.holds lm t1 tab Lock_manager.IX);
  check "covers IS still" true (Lock_manager.holds lm t1 tab Lock_manager.IS);
  Lock_manager.acquire lm t1 tab Lock_manager.X;
  check "upgraded to X" true (Lock_manager.holds lm t1 tab Lock_manager.X);
  Lock_manager.release_all lm t1;
  check_int "all released" 0 (Lock_manager.lock_count lm)

(* --- transactions --- *)

let test_commit_flushes_log () =
  let env = mk_env () in
  let txn = Txn_manager.begin_txn env.txns in
  Access_ctx.modify env.ctx txn (Page_id.of_int 0)
    (Log_record.Format { typ = Page.Heap; level = 0 });
  let modify_lsn = Txn_manager.last_lsn txn in
  check "not yet durable" true Lsn.(Log_manager.flushed_lsn env.log <= modify_lsn);
  Txn_manager.commit env.txns txn ~wall_us:(Sim_clock.now_us env.clock);
  check "durable after commit" true Lsn.(Log_manager.flushed_lsn env.log > modify_lsn);
  check "txn committed" true (Txn_manager.state txn = Txn_manager.Committed)

let setup_page env txn =
  Access_ctx.modify env.ctx txn (Page_id.of_int 0)
    (Log_record.Format { typ = Page.Heap; level = 0 });
  Access_ctx.modify env.ctx txn (Page_id.of_int 0)
    (Log_record.Insert_row { slot = 0; row = "committed" })

let page_rows env =
  Buffer_pool.with_page env.pool (Page_id.of_int 0) ~mode:Rw_buffer.Latch.Shared (fun p ->
      Slotted_page.fold p ~init:[] ~f:(fun acc _ r -> r :: acc) |> List.rev)

let test_rollback_restores_content () =
  let env = mk_env () in
  let t1 = Txn_manager.begin_txn env.txns in
  setup_page env t1;
  Txn_manager.commit env.txns t1 ~wall_us:0.0;
  let t2 = Txn_manager.begin_txn env.txns in
  Access_ctx.modify env.ctx t2 (Page_id.of_int 0)
    (Log_record.Insert_row { slot = 1; row = "uncommitted" });
  Access_ctx.modify env.ctx t2 (Page_id.of_int 0)
    (Log_record.Update_row { slot = 0; before = "committed"; after = "mutated" });
  check "mutations visible" true (page_rows env = [ "mutated"; "uncommitted" ]);
  Txn_manager.rollback env.txns t2 ~write_page:(Access_ctx.page_writer env.ctx);
  check "content restored" true (page_rows env = [ "committed" ]);
  check "txn aborted" true (Txn_manager.state t2 = Txn_manager.Aborted)

let test_rollback_writes_clrs_with_undo_info () =
  let env = mk_env () in
  let t1 = Txn_manager.begin_txn env.txns in
  setup_page env t1;
  Txn_manager.commit env.txns t1 ~wall_us:0.0;
  let t2 = Txn_manager.begin_txn env.txns in
  Access_ctx.modify env.ctx t2 (Page_id.of_int 0)
    (Log_record.Insert_row { slot = 1; row = "x" });
  Txn_manager.rollback env.txns t2 ~write_page:(Access_ctx.page_writer env.ctx);
  (* Find the CLR in the log and check it carries undo info (the row). *)
  let clrs = ref [] in
  Log_manager.iter_range env.log ~from:(Log_manager.first_lsn env.log)
    ~upto:(Log_manager.end_lsn env.log) (fun _ r ->
      match r.Log_record.body with
      | Log_record.Clr { op; _ } -> clrs := op :: !clrs
      | _ -> ());
  (match !clrs with
  | [ Log_record.Delete_row { row; slot } ] ->
      check_str "CLR compensates the insert, carrying the row" "x" row;
      check_int "slot" 1 slot
  | _ -> Alcotest.fail "expected exactly one CLR");
  (* The CLR itself must be invertible — that is the paper's extension. *)
  match !clrs with
  | [ op ] -> check "clr op invertible" true (Log_record.invert op <> None)
  | _ -> ()

let test_rollback_releases_locks () =
  let env = mk_env () in
  let locks = Txn_manager.locks env.txns in
  let t = Txn_manager.begin_txn env.txns in
  Txn_manager.lock env.txns t (Lock_manager.Row (1, 1L)) Lock_manager.X;
  check "lock held" true (Lock_manager.lock_count locks > 0);
  Txn_manager.rollback env.txns t ~write_page:(Access_ctx.page_writer env.ctx);
  check_int "locks released" 0 (Lock_manager.lock_count locks)

let test_active_txns_listing () =
  let env = mk_env () in
  let t1 = Txn_manager.begin_txn env.txns in
  let t2 = Txn_manager.begin_txn env.txns in
  check_int "two active" 2 (List.length (Txn_manager.active_txns env.txns));
  Txn_manager.commit env.txns t1 ~wall_us:0.0;
  check_int "one active" 1 (List.length (Txn_manager.active_txns env.txns));
  Txn_manager.rollback env.txns t2 ~write_page:(Access_ctx.page_writer env.ctx);
  check_int "none active" 0 (List.length (Txn_manager.active_txns env.txns))

let test_double_commit_rejected () =
  let env = mk_env () in
  let t = Txn_manager.begin_txn env.txns in
  Txn_manager.commit env.txns t ~wall_us:0.0;
  Alcotest.check_raises "double commit" (Invalid_argument "Txn_manager.commit: txn not active")
    (fun () -> Txn_manager.commit env.txns t ~wall_us:0.0)

(* --- group commit --- *)

let test_group_commit_batches () =
  let env = mk_env () in
  Txn_manager.set_group_commit env.txns ~max_batch_bytes:max_int ~max_delay_us:infinity;
  let row_resource = Lock_manager.Row (1, 1L) in
  let mk i =
    let txn = Txn_manager.begin_txn env.txns in
    Txn_manager.lock env.txns txn (Lock_manager.Row (1, Int64.of_int i)) Lock_manager.X;
    Access_ctx.modify env.ctx txn (Page_id.of_int i)
      (Log_record.Format { typ = Page.Heap; level = 0 });
    txn
  in
  let txns =
    List.init 3 mk
    |> List.map (fun txn -> (txn, Txn_manager.commit_begin env.txns txn ~wall_us:0.0))
  in
  (* In flight: commit records appended but not yet durable, no ack. *)
  check_int "three pending" 3 (Txn_manager.pending_commits env.txns);
  List.iter
    (fun (txn, _) -> check "committing" true (Txn_manager.state txn = Txn_manager.Committing))
    txns;
  check "commit record appended but not flushed" true
    Lsn.(Log_manager.flushed_lsn env.log <= snd (List.hd txns));
  (* Early lock release: a fresh txn can take X on a resource a committing
     txn wrote under, before the group flush happens. *)
  let probe = Txn_manager.begin_txn env.txns in
  Txn_manager.lock env.txns probe row_resource Lock_manager.X;
  Txn_manager.rollback env.txns probe ~write_page:(Access_ctx.page_writer env.ctx);
  (* One flush makes the whole batch durable and acks every waiter. *)
  let before = (Log_manager.stats env.log).Rw_storage.Io_stats.log_flush_batches in
  check_int "one flush acks all" 3 (Txn_manager.flush_commits env.txns);
  check_int "single priced batch" 1
    ((Log_manager.stats env.log).Rw_storage.Io_stats.log_flush_batches - before);
  check_int "coalesced counter" 3
    (Log_manager.stats env.log).Rw_storage.Io_stats.log_commits_coalesced;
  check_int "none pending" 0 (Txn_manager.pending_commits env.txns);
  List.iter
    (fun (txn, commit_lsn) ->
      check "committed" true (Txn_manager.state txn = Txn_manager.Committed);
      check "durable" true Lsn.(Log_manager.flushed_lsn env.log > commit_lsn);
      (* The chain tail past the commit record is the End record. *)
      match (Log_manager.read_nocost env.log (Txn_manager.last_lsn txn)).Log_record.body with
      | Log_record.End -> ()
      | _ -> Alcotest.fail "chain tail is not an End record")
    txns

(* A log flush that fails (the simulated media rejects the write) must not
   leave the transaction Active with a dangling commit record: the state
   transition to Committing happens before the append, so the failed txn can
   neither be committed again nor rolled back as if the commit never
   happened. *)
let test_commit_failure_leaves_committing () =
  let clock = Sim_clock.create () in
  let failing =
    {
      Media.name = "failing-log";
      seq_read_mb_s = infinity;
      seq_write_mb_s = -1.0;
      rand_read_lat_us = 0.0;
      rand_write_lat_us = 0.0;
    }
  in
  let log = Log_manager.create ~clock ~media:failing () in
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  let txn = Txn_manager.begin_txn txns in
  ignore
    (Txn_manager.log_page_op txns txn ~page:(Page_id.of_int 0) ~prev_page_lsn:Lsn.nil
       (Log_record.Format { typ = Page.Heap; level = 0 }));
  (match Txn_manager.commit txns txn ~wall_us:0.0 with
  | () -> Alcotest.fail "commit on failing media should raise"
  | exception Invalid_argument _ -> ());
  check "stuck in Committing, not Active" true (Txn_manager.state txn = Txn_manager.Committing);
  (* The commit record is on the chain: the outcome is decided (recovery
     would commit it if it became durable, lose it otherwise) — so both
     re-commit and rollback are refused. *)
  (match (Log_manager.read_nocost log (Txn_manager.last_lsn txn)).Log_record.body with
  | Log_record.Commit _ -> ()
  | _ -> Alcotest.fail "chain tail is not the commit record");
  Alcotest.check_raises "re-commit refused"
    (Invalid_argument "Txn_manager.commit: txn not active") (fun () ->
      Txn_manager.commit txns txn ~wall_us:0.0);
  Alcotest.check_raises "rollback refused"
    (Invalid_argument "Txn_manager.rollback: txn not active") (fun () ->
      Txn_manager.rollback txns txn ~write_page:(fun _ _ -> ()));
  (* The txn table may still drop it without touching its state. *)
  Txn_manager.finished txns txn

let test_fpi_emission () =
  let env = mk_env ~fpi_frequency:3 () in
  let t = Txn_manager.begin_txn env.txns in
  Access_ctx.modify env.ctx t (Page_id.of_int 0)
    (Log_record.Format { typ = Page.Heap; level = 0 });
  for i = 0 to 7 do
    Access_ctx.modify env.ctx t (Page_id.of_int 0)
      (Log_record.Insert_row { slot = i; row = Printf.sprintf "row%d" i })
  done;
  Txn_manager.commit env.txns t ~wall_us:0.0;
  let fpis = ref 0 in
  Log_manager.iter_range env.log ~from:(Log_manager.first_lsn env.log)
    ~upto:(Log_manager.end_lsn env.log) (fun _ r ->
      match r.Log_record.body with
      | Log_record.Page_op { op = Log_record.Full_image _; _ } -> incr fpis
      | _ -> ());
  (* 9 modifications with N=3 -> 3 images *)
  check_int "every 3rd modification logs an image" 3 !fpis

let () =
  Alcotest.run "txn"
    [
      ( "locks",
        [
          Alcotest.test_case "compatibility matrix" `Quick test_lock_compat_matrix;
          Alcotest.test_case "grant and conflict" `Quick test_lock_grant_conflict;
          Alcotest.test_case "reentrancy and upgrade" `Quick test_lock_reentrant_and_upgrade;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit forces log" `Quick test_commit_flushes_log;
          Alcotest.test_case "rollback restores content" `Quick test_rollback_restores_content;
          Alcotest.test_case "CLRs carry undo info" `Quick test_rollback_writes_clrs_with_undo_info;
          Alcotest.test_case "rollback releases locks" `Quick test_rollback_releases_locks;
          Alcotest.test_case "active listing" `Quick test_active_txns_listing;
          Alcotest.test_case "double commit rejected" `Quick test_double_commit_rejected;
          Alcotest.test_case "group commit batches and acks" `Quick test_group_commit_batches;
          Alcotest.test_case "failed commit flush leaves Committing" `Quick
            test_commit_failure_leaves_committing;
          Alcotest.test_case "FPI every Nth modification" `Quick test_fpi_emission;
        ] );
    ]
