(* Unit and property tests for the storage substrate: LSNs, pages, slotted
   pages, checksums, the media cost model, the simulated disk and sparse
   files. *)

module Lsn = Rw_storage.Lsn
module Page_id = Rw_storage.Page_id
module Page = Rw_storage.Page
module Slotted_page = Rw_storage.Slotted_page
module Checksum = Rw_storage.Checksum
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats
module Disk = Rw_storage.Disk
module Sparse_file = Rw_storage.Sparse_file
module Prng = Rw_storage.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- LSN --- *)

let test_lsn_order () =
  let a = Lsn.of_int 5 and b = Lsn.of_int 9 in
  check "lt" true Lsn.(a < b);
  check "le" true Lsn.(a <= a);
  check "nil smallest" true Lsn.(Lsn.nil < a);
  check_int "max" 9 (Lsn.to_int (Lsn.max a b));
  check_int "min" 5 (Lsn.to_int (Lsn.min a b));
  check "nil is nil" true (Lsn.is_nil Lsn.nil);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Lsn.of_int: negative") (fun () ->
      ignore (Lsn.of_int (-1)))

let test_page_id () =
  check "nil" true (Page_id.is_nil Page_id.nil);
  check_int "roundtrip" 42 (Page_id.to_int (Page_id.of_int 42));
  check "int64 nil roundtrip" true (Page_id.is_nil (Page_id.of_int64 (Page_id.to_int64 Page_id.nil)));
  check_int "next" 8 (Page_id.to_int (Page_id.next (Page_id.of_int 7)))

(* --- Page header --- *)

let test_page_header () =
  let p = Page.create ~id:(Page_id.of_int 7) ~typ:Page.Btree in
  check_int "id" 7 (Page_id.to_int (Page.id p));
  check "type" true (Page.typ p = Page.Btree);
  check_int "fresh lsn" 0 (Lsn.to_int (Page.lsn p));
  Page.set_lsn p (Lsn.of_int 123);
  Page.set_level p 3;
  Page.set_prev_page p (Page_id.of_int 1);
  Page.set_next_page p (Page_id.of_int 2);
  Page.set_special p 99L;
  check_int "lsn" 123 (Lsn.to_int (Page.lsn p));
  check_int "level" 3 (Page.level p);
  check_int "prev" 1 (Page_id.to_int (Page.prev_page p));
  check_int "next" 2 (Page_id.to_int (Page.next_page p));
  check "special" true (Page.special p = 99L);
  check_int "data_low starts at page end" Page.page_size (Page.data_low p)

let test_page_checksum () =
  let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Heap in
  Slotted_page.insert p ~at:0 "hello";
  Page.seal p;
  check "sealed page verifies" true (Page.verify p);
  Bytes.set p 200 'x';
  check "corruption detected" false (Page.verify p);
  let fresh = Page.create ~id:(Page_id.of_int 2) ~typ:Page.Free in
  check "unsealed fresh page verifies" true (Page.verify fresh)

let test_page_format_resets () =
  let p = Page.create ~id:(Page_id.of_int 3) ~typ:Page.Btree in
  Slotted_page.insert p ~at:0 "somedata";
  Page.format p ~id:(Page_id.of_int 3) ~typ:Page.Free;
  check_int "slots cleared" 0 (Slotted_page.count p);
  check "type reset" true (Page.typ p = Page.Free)

(* --- Slotted pages --- *)

let test_slotted_basic () =
  let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Heap in
  Slotted_page.insert p ~at:0 "bbb";
  Slotted_page.insert p ~at:0 "aaa";
  Slotted_page.insert p ~at:2 "ccc";
  check_int "count" 3 (Slotted_page.count p);
  check_str "slot 0" "aaa" (Slotted_page.get p ~at:0);
  check_str "slot 1" "bbb" (Slotted_page.get p ~at:1);
  check_str "slot 2" "ccc" (Slotted_page.get p ~at:2);
  Slotted_page.delete p ~at:1;
  check_int "count after delete" 2 (Slotted_page.count p);
  check_str "shifted" "ccc" (Slotted_page.get p ~at:1)

let test_slotted_update () =
  let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Heap in
  Slotted_page.insert p ~at:0 "short";
  Slotted_page.set p ~at:0 "longer-content";
  check_str "grown" "longer-content" (Slotted_page.get p ~at:0);
  Slotted_page.set p ~at:0 "s";
  check_str "shrunk" "s" (Slotted_page.get p ~at:0);
  check "garbage recorded" true (Page.garbage p > 0)

let test_slotted_compaction () =
  let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Heap in
  (* Fill the page, delete every other record, then insert something that
     only fits after compaction. *)
  let row = String.make 512 'x' in
  let n = ref 0 in
  (try
     while true do
       Slotted_page.insert p ~at:!n row;
       incr n
     done
   with Slotted_page.Page_full -> ());
  check "page filled" true (!n > 10);
  let deleted = ref 0 in
  let i = ref (!n - 1) in
  while !i >= 0 do
    Slotted_page.delete p ~at:!i;
    incr deleted;
    i := !i - 2
  done;
  (* Space is fragmented now; a large insert must trigger compaction. *)
  let big = String.make 1024 'y' in
  Slotted_page.insert p ~at:0 big;
  check_str "insert after compaction" big (Slotted_page.get p ~at:0)

let test_slotted_bounds () =
  let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Heap in
  Alcotest.check_raises "get on empty" (Invalid_argument "Slotted_page: index 0 out of bounds (count 0)")
    (fun () -> ignore (Slotted_page.get p ~at:0));
  Slotted_page.insert p ~at:0 "x";
  Alcotest.check_raises "bad insert index"
    (Invalid_argument "Slotted_page: index 5 out of bounds (count 1)") (fun () ->
      Slotted_page.insert p ~at:5 "y")

let test_slotted_find_key () =
  let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Btree in
  let row k = Rw_access.Rowfmt.leaf_row ~key:k ~payload:"v" in
  List.iteri (fun i k -> Slotted_page.insert p ~at:i (row k)) [ 10L; 20L; 30L; 40L ];
  (match Slotted_page.find_key p 30L with
  | Either.Left i -> check_int "found at" 2 i
  | Either.Right _ -> Alcotest.fail "expected found");
  (match Slotted_page.find_key p 35L with
  | Either.Right i -> check_int "insertion point" 3 i
  | Either.Left _ -> Alcotest.fail "expected not found");
  (match Slotted_page.find_key p 5L with
  | Either.Right i -> check_int "before all" 0 i
  | Either.Left _ -> Alcotest.fail "expected not found");
  match Slotted_page.find_key p 45L with
  | Either.Right i -> check_int "after all" 4 i
  | Either.Left _ -> Alcotest.fail "expected not found"

(* Model-based property test: a slotted page behaves like a list of
   strings under insert/delete/set at random positions. *)
let slotted_model_test =
  QCheck.Test.make ~name:"slotted page models a string list" ~count:200
    QCheck.(small_list (pair small_nat (string_of_size Gen.(0 -- 40))))
    (fun ops ->
      let p = Page.create ~id:(Page_id.of_int 1) ~typ:Page.Heap in
      let model = ref [] in
      List.iter
        (fun (pos, s) ->
          let n = List.length !model in
          let choice = pos mod 3 in
          if choice = 0 || n = 0 then begin
            let at = if n = 0 then 0 else pos mod (n + 1) in
            match Slotted_page.insert p ~at s with
            | () ->
                model := List.filteri (fun i _ -> i < at) !model @ [ s ]
                         @ List.filteri (fun i _ -> i >= at) !model
            | exception Slotted_page.Page_full -> ()
          end
          else if choice = 1 then begin
            let at = pos mod n in
            Slotted_page.delete p ~at;
            model := List.filteri (fun i _ -> i <> at) !model
          end
          else begin
            let at = pos mod n in
            match Slotted_page.set p ~at s with
            | () -> model := List.mapi (fun i old -> if i = at then s else old) !model
            | exception Slotted_page.Page_full -> ()
          end)
        ops;
      let actual = Slotted_page.fold p ~init:[] ~f:(fun acc _ s -> s :: acc) |> List.rev in
      actual = !model)

(* --- checksum --- *)

let test_crc32_known () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "known vector" 0xCBF43926l (Checksum.crc32_string "123456789");
  Alcotest.(check int32) "empty" 0l (Checksum.crc32_string "")

let test_crc32_incremental () =
  let s = "the quick brown fox" in
  let b = Bytes.of_string s in
  let whole = Checksum.crc32 b ~pos:0 ~len:(Bytes.length b) in
  let first = Checksum.crc32 b ~pos:0 ~len:9 in
  let rest = Checksum.crc32 ~init:first b ~pos:9 ~len:(Bytes.length b - 9) in
  Alcotest.(check int32) "incremental equals whole" whole rest

let test_crc32_kernels_agree () =
  (* The slicing-by-8 dual-stream kernel must agree with the bytewise
     reference at every alignment and length class: empty, sub-word tails,
     the single/dual-stream threshold, and full pages. *)
  let n = 9000 in
  let b = Bytes.init n (fun i -> Char.chr (((i * 131) + (i lsr 3)) land 0xff)) in
  List.iter
    (fun (pos, len) ->
      Alcotest.(check int32)
        (Printf.sprintf "pos=%d len=%d" pos len)
        (Checksum.crc32_bytewise b ~pos ~len)
        (Checksum.crc32 b ~pos ~len))
    [
      (0, 0);
      (0, 1);
      (3, 7);
      (0, 8);
      (5, 9);
      (0, 127);
      (1, 128);
      (0, 129);
      (17, 1000);
      (0, 8192);
      (808, 8192);
    ]

let test_crc32_combine () =
  (* crc(a ++ b) = combine(crc a, crc b, |b|), for every cut point class
     including empty halves. *)
  let n = 4096 in
  let b = Bytes.init n (fun i -> Char.chr (((i * 37) + 11) land 0xff)) in
  let whole = Checksum.crc32 b ~pos:0 ~len:n in
  List.iter
    (fun cut ->
      let a = Checksum.crc32 b ~pos:0 ~len:cut in
      let c = Checksum.crc32 b ~pos:cut ~len:(n - cut) in
      Alcotest.(check int32)
        (Printf.sprintf "cut=%d" cut)
        whole
        (Checksum.crc32_combine a c ~len2:(n - cut)))
    [ 0; 1; 13; 512; 2048; 4095; 4096 ];
  (* Chained init-style incremental and combine must agree too. *)
  let first = Checksum.crc32 b ~pos:0 ~len:1000 in
  let via_init = Checksum.crc32 ~init:first b ~pos:1000 ~len:(n - 1000) in
  Alcotest.(check int32) "combine equals init-chaining" via_init
    (Checksum.crc32_combine first (Checksum.crc32 b ~pos:1000 ~len:(n - 1000)) ~len2:(n - 1000))

(* --- media & clock --- *)

let test_media_costs () =
  let clock = Sim_clock.create () in
  let stats = Io_stats.create () in
  Media.random_read Media.ssd clock stats 8192;
  check "ssd random read costs ~100us+transfer" true
    (Sim_clock.now_us clock > 100.0 && Sim_clock.now_us clock < 200.0);
  let t0 = Sim_clock.now_us clock in
  Media.random_read Media.sas clock stats 8192;
  check "sas slower than ssd" true (Sim_clock.now_us clock -. t0 > 5000.0);
  check_int "ios counted" 2 stats.Io_stats.random_reads

let test_media_seq_vs_random () =
  let clock = Sim_clock.create () in
  let stats = Io_stats.create () in
  Media.seq_read Media.sas clock stats (8192 * 100);
  let seq_time = Sim_clock.now_us clock in
  let clock2 = Sim_clock.create () in
  for _ = 1 to 100 do
    Media.random_read Media.sas clock2 stats 8192
  done;
  check "sequential much cheaper than random on sas" true
    (Sim_clock.now_us clock2 > 10.0 *. seq_time)

let test_clock_monotonic () =
  let clock = Sim_clock.create () in
  Sim_clock.advance_us clock 5.0;
  Alcotest.(check (float 0.001)) "advance" 5.0 (Sim_clock.now_us clock);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Sim_clock.advance_us: negative")
    (fun () -> Sim_clock.advance_us clock (-1.0))

let test_io_stats_diff () =
  let a = Io_stats.create () in
  a.Io_stats.random_reads <- 10;
  let before = Io_stats.copy a in
  a.Io_stats.random_reads <- 25;
  let d = Io_stats.diff a before in
  check_int "diff" 15 d.Io_stats.random_reads

(* --- disk --- *)

let test_disk_roundtrip () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let p = Page.create ~id:(Page_id.of_int 5) ~typ:Page.Heap in
  Slotted_page.insert p ~at:0 "payload";
  Page.seal p;
  Disk.write_page disk (Page_id.of_int 5) p;
  let q = Disk.read_page disk (Page_id.of_int 5) in
  check_str "roundtrip" "payload" (Slotted_page.get q ~at:0);
  check_int "page_count covers highest" 6 (Disk.page_count disk);
  check "checksums valid" true (Disk.verify_checksums disk)

let test_disk_unwritten_page_is_zero () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let p = Disk.read_page disk (Page_id.of_int 3) in
  check_int "no slots" 0 (Slotted_page.count p);
  check "free type" true (Page.typ p = Page.Free);
  check_int "own id" 3 (Page_id.to_int (Page.id p))

let test_disk_write_isolation () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let p = Page.create ~id:(Page_id.of_int 0) ~typ:Page.Heap in
  Disk.write_page disk (Page_id.of_int 0) p;
  (* Mutating the caller's buffer after the write must not affect the
     durable copy. *)
  Slotted_page.insert p ~at:0 "mutated";
  let q = Disk.read_page disk (Page_id.of_int 0) in
  check_int "durable copy unaffected" 0 (Slotted_page.count q)

(* --- sparse file --- *)

let test_sparse_file () =
  let clock = Sim_clock.create () in
  let sf = Sparse_file.create ~clock ~media:Media.ram () in
  check "miss" true (Sparse_file.read sf (Page_id.of_int 9) = None);
  let p = Page.create ~id:(Page_id.of_int 9) ~typ:Page.Btree in
  Sparse_file.write sf (Page_id.of_int 9) p;
  check "hit" true (Sparse_file.read sf (Page_id.of_int 9) <> None);
  check_int "allocated bytes" Page.page_size (Sparse_file.allocated_bytes sf);
  check_int "page count" 1 (Sparse_file.page_count sf);
  Sparse_file.drop sf;
  check_int "dropped" 0 (Sparse_file.page_count sf)

(* --- PRNG --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done;
  let c = Prng.create 43 in
  check "different seed differs" true (Prng.next_int64 a <> Prng.next_int64 c)

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int_in r 5 10 in
    check "in range" true (v >= 5 && v <= 10);
    let n = Prng.non_uniform r ~a:255 ~x:1 ~y:3000 in
    check "nurand range" true (n >= 1 && n <= 3000)
  done;
  check_int "alpha length" 12 (String.length (Prng.alpha_string r 12))

let () =
  Alcotest.run "storage"
    [
      ( "lsn_pageid",
        [
          Alcotest.test_case "lsn ordering" `Quick test_lsn_order;
          Alcotest.test_case "page ids" `Quick test_page_id;
        ] );
      ( "page",
        [
          Alcotest.test_case "header fields" `Quick test_page_header;
          Alcotest.test_case "checksum" `Quick test_page_checksum;
          Alcotest.test_case "format resets" `Quick test_page_format_resets;
        ] );
      ( "slotted",
        [
          Alcotest.test_case "insert/delete/get" `Quick test_slotted_basic;
          Alcotest.test_case "update grow/shrink" `Quick test_slotted_update;
          Alcotest.test_case "compaction" `Quick test_slotted_compaction;
          Alcotest.test_case "bounds checks" `Quick test_slotted_bounds;
          Alcotest.test_case "binary search" `Quick test_slotted_find_key;
          QCheck_alcotest.to_alcotest slotted_model_test;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
          Alcotest.test_case "kernels agree" `Quick test_crc32_kernels_agree;
          Alcotest.test_case "combine" `Quick test_crc32_combine;
        ] );
      ( "media",
        [
          Alcotest.test_case "cost model" `Quick test_media_costs;
          Alcotest.test_case "seq vs random" `Quick test_media_seq_vs_random;
          Alcotest.test_case "clock" `Quick test_clock_monotonic;
          Alcotest.test_case "io stats diff" `Quick test_io_stats_diff;
        ] );
      ( "disk",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "unwritten zero" `Quick test_disk_unwritten_page_is_zero;
          Alcotest.test_case "write isolation" `Quick test_disk_write_isolation;
        ] );
      ("sparse", [ Alcotest.test_case "sparse file" `Quick test_sparse_file ]);
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
    ]
