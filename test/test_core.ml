(* Tests for the paper's core machinery: PreparePageAsOf, the SplitLSN
   search, as-of snapshots and retention. *)

module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Prng = Rw_storage.Prng
module Log_manager = Rw_wal.Log_manager
module Log_record = Rw_wal.Log_record
module Buffer_pool = Rw_buffer.Buffer_pool
module Txn_manager = Rw_txn.Txn_manager
module Access_ctx = Rw_access.Access_ctx
module Page_undo = Rw_core.Page_undo
module Split_lsn = Rw_core.Split_lsn
module Retention = Rw_core.Retention
module As_of_snapshot = Rw_core.As_of_snapshot
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Schema = Rw_catalog.Schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [ { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text } ]

(* --- prepare_page_as_of, golden-history property ---

   Drive random modifications against a single page through the full modify
   path, remembering the page image after every committed operation.  Then
   rewinding the current page to each recorded LSN must reproduce the
   recorded image exactly. *)

type env = { clock : Sim_clock.t; log : Log_manager.t; txns : Txn_manager.t; ctx : Access_ctx.t; pool : Buffer_pool.t }

let mk_env ?fpi_frequency ?segment_bytes () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let log = Log_manager.create ~clock ~media:Media.ram ?segment_bytes () in
  let pool =
    Buffer_pool.create ~capacity:64 ~source:(Buffer_pool.of_disk disk)
      ~wal_flush:(fun lsn -> Log_manager.flush log ~upto:lsn)
      ()
  in
  let locks = Rw_txn.Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  let ctx = Access_ctx.create ~pool ~txns ~log ~clock ?fpi_frequency () in
  { clock; log; txns; ctx; pool }

let page_image env pid =
  Buffer_pool.with_page env.pool pid ~mode:Rw_buffer.Latch.Shared (fun p -> Bytes.to_string p)

let random_history ?fpi_frequency ~ops () =
  let env = mk_env ?fpi_frequency () in
  let pid = Page_id.of_int 0 in
  let rng = Prng.create 7 in
  let txn = Txn_manager.begin_txn env.txns in
  Access_ctx.modify env.ctx txn pid (Log_record.Format { typ = Page.Heap; level = 0 });
  let history = ref [] in
  let record () =
    let img = page_image env pid in
    history := (Lsn.to_int (Page.lsn (Bytes.of_string img)), img) :: !history
  in
  record ();
  let nrows = ref 0 in
  for _ = 1 to ops do
    let choice = Prng.int rng 100 in
    (if choice < 50 || !nrows = 0 then begin
       let row = Prng.alpha_string rng (1 + Prng.int rng 60) in
       Access_ctx.modify env.ctx txn pid
         (Log_record.Insert_row { slot = Prng.int rng (!nrows + 1); row });
       incr nrows
     end
     else if choice < 75 then begin
       let at = Prng.int rng !nrows in
       let before =
         Buffer_pool.with_page env.pool pid ~mode:Rw_buffer.Latch.Shared (fun p ->
             Rw_storage.Slotted_page.get p ~at)
       in
       Access_ctx.modify env.ctx txn pid
         (Log_record.Update_row { slot = at; before; after = Prng.alpha_string rng (1 + Prng.int rng 60) })
     end
     else begin
       let at = Prng.int rng !nrows in
       let row =
         Buffer_pool.with_page env.pool pid ~mode:Rw_buffer.Latch.Shared (fun p ->
             Rw_storage.Slotted_page.get p ~at)
       in
       Access_ctx.modify env.ctx txn pid (Log_record.Delete_row { slot = at; row });
       decr nrows
     end);
    record ()
  done;
  Txn_manager.commit env.txns txn ~wall_us:0.0;
  (env, pid, List.rev !history)

(* Logical page content; rewinds restore records and headers exactly but
   not internal free-space bookkeeping. *)
let canonical img =
  let p = Bytes.of_string img in
  ( Page.lsn p,
    Page.typ p,
    Page.level p,
    Page.prev_page p,
    Page.next_page p,
    Page.special p,
    List.init (Rw_storage.Slotted_page.count p) (fun i -> Rw_storage.Slotted_page.get p ~at:i) )

let run_golden ?fpi_frequency () =
  let env, pid, history = random_history ?fpi_frequency ~ops:120 () in
  let current = page_image env pid in
  List.iter
    (fun (as_of_int, expected) ->
      let page = Bytes.of_string current in
      let result =
        Page_undo.prepare_page_as_of ~log:env.log ~page ~as_of:(Lsn.of_int as_of_int)
      in
      ignore result;
      if canonical (Bytes.to_string page) <> canonical expected then
        Alcotest.failf "rewind to lsn %d did not reproduce history" as_of_int)
    history

let test_prepare_golden () = run_golden ()
let test_prepare_golden_with_fpi () = run_golden ~fpi_frequency:10 ()

let test_prepare_noop_when_old () =
  let env, pid, _ = random_history ~ops:20 () in
  let current = page_image env pid in
  let page = Bytes.of_string current in
  let r = Page_undo.prepare_page_as_of ~log:env.log ~page ~as_of:(Page.lsn page) in
  check_int "no ops undone" 0 r.Page_undo.ops_undone;
  check "bytes untouched" true (Bytes.to_string page = current)

let test_fpi_reduces_reads () =
  (* With frequent FPIs, rewinding a heavily-modified page far back must
     read fewer log records than without. *)
  let env1, pid1, _ = random_history ~ops:300 () in
  let p1 = Bytes.of_string (page_image env1 pid1) in
  let r1 = Page_undo.prepare_page_as_of ~log:env1.log ~page:p1 ~as_of:(Lsn.of_int 1) in
  let env2, pid2, _ = random_history ~fpi_frequency:20 ~ops:300 () in
  let p2 = Bytes.of_string (page_image env2 pid2) in
  let r2 = Page_undo.prepare_page_as_of ~log:env2.log ~page:p2 ~as_of:(Lsn.of_int 1) in
  check "fpi used" true r2.Page_undo.used_fpi;
  check "fewer records read with fpi" true
    (r2.Page_undo.log_records_read < r1.Page_undo.log_records_read)

(* The batched rewind must be indistinguishable from the pointer walk: on
   the same history it must produce byte-identical pages, the same result
   counters, and — reading a cold log — the same priced I/O.  The two
   Prng-seeded histories are identical, so each implementation gets its own
   environment and their effects are compared directly. *)
let test_batched_matches_walk () =
  let module Io_stats = Rw_storage.Io_stats in
  List.iter
    (fun (ops, fpi_frequency) ->
      let env1, pid1, history = random_history ?fpi_frequency ~ops () in
      let env2, pid2, _ = random_history ?fpi_frequency ~ops () in
      let current = page_image env1 pid1 in
      check "deterministic histories" true (current = page_image env2 pid2);
      (* Rebuild each log into a fresh manager with a tiny block cache so
         every rewind below starts cold and block charges are observable. *)
      let mk_cold src =
        let clock = Sim_clock.create () in
        let log = Log_manager.create ~clock ~media:Media.ssd ~cache_blocks:2 () in
        Log_manager.restore_entries log (Log_manager.dump_entries src);
        log
      in
      List.iteri
        (fun i (as_of_int, _) ->
          if i mod 20 = 0 then begin
            let as_of = Lsn.of_int as_of_int in
            let cold1 = mk_cold env1.log and cold2 = mk_cold env2.log in
            let p1 = Bytes.of_string current and p2 = Bytes.of_string current in
            let s1 = Io_stats.copy (Log_manager.stats cold1) in
            let s2 = Io_stats.copy (Log_manager.stats cold2) in
            let r1 = Page_undo.prepare_page_as_of ~log:cold1 ~page:p1 ~as_of in
            let r2 = Page_undo.prepare_page_as_of_walk ~log:cold2 ~page:p2 ~as_of in
            check "byte-identical page" true (Bytes.equal p1 p2);
            check_int "same ops undone" r2.Page_undo.ops_undone r1.Page_undo.ops_undone;
            check_int "same records read" r2.Page_undo.log_records_read
              r1.Page_undo.log_records_read;
            check "same fpi decision" true (r1.Page_undo.used_fpi = r2.Page_undo.used_fpi);
            let d1 = Io_stats.diff (Log_manager.stats cold1) s1 in
            let d2 = Io_stats.diff (Log_manager.stats cold2) s2 in
            check_int "same cold random reads" d2.Io_stats.random_reads d1.Io_stats.random_reads;
            check_int "same cold random bytes" d2.Io_stats.random_read_bytes
              d1.Io_stats.random_read_bytes;
            check_int "same sequential bytes" d2.Io_stats.seq_read_bytes
              d1.Io_stats.seq_read_bytes
          end)
        history)
    [ (120, None); (120, Some 15); (40, Some 4) ]

let test_chain_broken_detection () =
  let env, pid, _ = random_history ~ops:5 () in
  let page = Bytes.of_string (page_image env pid) in
  (* Point the page at a foreign record: a Begin record. *)
  let foreign = Log_manager.append env.log (Log_record.make Log_record.Begin) in
  Page.set_lsn page foreign;
  (try
     ignore (Page_undo.prepare_page_as_of ~log:env.log ~page ~as_of:Lsn.nil);
     Alcotest.fail "expected Chain_broken"
   with Page_undo.Chain_broken _ -> ())

(* --- split lsn --- *)

let mk_db ?(media = Media.ram) ?fpi_frequency ?(name = "core") () =
  let clock = Sim_clock.create () in
  Database.create ~name ~clock ~media ?fpi_frequency ()

let test_split_lsn_boundaries () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn -> ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  (* Commit three transactions at distinct times. *)
  let commit_times =
    List.map
      (fun i ->
        Sim_clock.advance_us clock 1_000_000.0;
        Database.with_txn db (fun txn ->
            Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "x" ]);
        Sim_clock.now_us clock)
      [ 1; 2; 3 ]
  in
  let log = Database.log db in
  let t2 = List.nth commit_times 1 in
  let r_mid = Split_lsn.find ~log ~wall_us:(t2 +. 1.0) in
  let r_all = Split_lsn.find ~log ~wall_us:(Sim_clock.now_us clock) in
  check "mid split before full split" true Lsn.(r_mid.Split_lsn.split_lsn < r_all.Split_lsn.split_lsn);
  (* Splitting exactly between commits 2 and 3 must include commit 2. *)
  check "commits counted" true (r_mid.Split_lsn.commits_seen >= 1)

let test_split_lsn_out_of_retention () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn -> ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  for i = 1 to 50 do
    Sim_clock.advance_us clock 1_000_000.0;
    Database.with_txn db (fun txn ->
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "x" ]);
    if i mod 10 = 0 then ignore (Database.checkpoint db)
  done;
  Database.set_retention db (Some 5_000_000.0);
  ignore (Database.enforce_retention db);
  check "log truncated" true (Lsn.to_int (Log_manager.first_lsn (Database.log db)) > 1);
  Alcotest.check_raises "too far back" (Split_lsn.Out_of_retention 0.5) (fun () ->
      ignore (Split_lsn.find ~log:(Database.log db) ~wall_us:0.5))

(* --- as-of snapshots through the engine --- *)

let value_at db key = Database.get db ~table:"t" ~key

let test_snapshot_sees_past_row_versions () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      Database.insert db txn ~table:"t" [ Row.Int 1L; Row.Text "original" ]);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"t" [ Row.Int 1L; Row.Text "modified" ];
      Database.insert db txn ~table:"t" [ Row.Int 2L; Row.Text "new-row" ]);
  let snap = Database.create_as_of_snapshot db ~name:"snap" ~wall_us:t_past in
  check "snapshot is read only" true (Database.is_read_only snap);
  check "old version visible" true
    (value_at snap 1L = Some [ Row.Int 1L; Row.Text "original" ]);
  check "later row invisible" true (value_at snap 2L = None);
  check "primary unchanged" true (value_at db 1L = Some [ Row.Int 1L; Row.Text "modified" ]);
  (* Snapshot DML is rejected. *)
  (try
     ignore (Database.begin_txn snap);
     Alcotest.fail "expected Read_only"
   with Database.Read_only _ -> ())

let test_snapshot_recovers_dropped_table () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to 30 do
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "r%d" i) ]
      done);
  Sim_clock.advance_us clock 1_000_000.0;
  let before_drop = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  Database.with_txn db (fun txn -> Database.drop_table db txn "t");
  check "table gone on primary" true (Database.table db "t" = None);
  let snap = Database.create_as_of_snapshot db ~name:"snap" ~wall_us:before_drop in
  (* The catalog itself time-travels: the table exists in the snapshot. *)
  (match Database.table snap "t" with
  | Some tab -> check "schema recovered" true (List.length tab.Schema.columns = 2)
  | None -> Alcotest.fail "dropped table not visible in snapshot");
  check_int "all rows readable" 30 (Database.row_count snap ~table:"t");
  check "specific row" true (value_at snap 17L = Some [ Row.Int 17L; Row.Text "r17" ])

let test_snapshot_lazy_materialisation () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to 2000 do
        Database.insert db txn ~table:"t"
          [ Row.Int (Int64.of_int i); Row.Text (String.make 100 'x') ]
      done);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Sim_clock.now_us clock in
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"t" [ Row.Int 1L; Row.Text "changed" ]);
  let snap = Database.create_as_of_snapshot db ~name:"snap" ~wall_us:t_past in
  let handle = Option.get (Database.snapshot_handle snap) in
  check_int "nothing materialised up front" 0 (As_of_snapshot.pages_materialised handle);
  ignore (value_at snap 1L);
  let touched = As_of_snapshot.pages_materialised handle in
  check "only the access path materialised" true (touched > 0 && touched < 10);
  let total_pages = Disk.page_count (Database.disk db) in
  check "database is much larger" true (total_pages > 20)

let test_snapshot_rolls_back_inflight () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      Database.insert db txn ~table:"t" [ Row.Int 1L; Row.Text "committed" ]);
  (* A transaction whose modifications PRECEDE the split point (another
     transaction commits after them, anchoring the SplitLSN) but whose
     commit comes after: it is in flight at the split and must be undone
     logically by snapshot recovery. *)
  let inflight = Database.begin_txn db in
  Database.insert db inflight ~table:"t" [ Row.Int 2L; Row.Text "inflight" ];
  Database.with_txn db (fun txn ->
      Database.insert db txn ~table:"t" [ Row.Int 3L; Row.Text "anchor" ]);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_snap = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  Database.commit db inflight;
  let snap = Database.create_as_of_snapshot db ~name:"snap" ~wall_us:t_snap in
  let handle = Option.get (Database.snapshot_handle snap) in
  check_int "one in-flight txn rolled back" 1 (As_of_snapshot.in_flight_txns handle);
  check "undo performed work" true (As_of_snapshot.undo_ops handle > 0);
  check "uncommitted-at-split row invisible" true (value_at snap 2L = None);
  check "committed row visible" true (value_at snap 1L <> None);
  check "anchor row visible" true (value_at snap 3L <> None);
  (* On the primary the late commit is of course visible. *)
  check "primary sees it" true (value_at db 2L <> None);
  (* A transaction whose Begin itself lies after the split is excluded
     purely physically — no logical undo involved. *)
  let late = Database.begin_txn db in
  Database.insert db late ~table:"t" [ Row.Int 4L; Row.Text "late" ];
  Database.commit db late;
  let snap2 = Database.create_as_of_snapshot db ~name:"snap2" ~wall_us:t_snap in
  let handle2 = Option.get (Database.snapshot_handle snap2) in
  (* Same split point: [inflight] is still the only loser there; the late
     transaction's records all lie beyond the split and are excluded purely
     physically. *)
  check_int "late txn is not a split-time loser" 1 (As_of_snapshot.in_flight_txns handle2);
  check "late row invisible anyway" true (value_at snap2 4L = None)

let test_snapshot_timings_accounted () =
  let db = mk_db ~media:Media.ssd () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to 100 do
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "x" ]
      done);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Sim_clock.now_us clock in
  let snap = Database.create_as_of_snapshot db ~name:"snap" ~wall_us:t_past in
  let handle = Option.get (Database.snapshot_handle snap) in
  check "creation took simulated time" true (As_of_snapshot.creation_time_us handle > 0.0)

(* Rewinding across a page re-allocation: table A is dropped, its pages
   are re-used by table B (logging preformat records), and a snapshot from
   before the drop must reconstruct A's rows by walking through B's chain,
   the format record, and the preformat record back into A's incarnation —
   the paper's §4.2(1) extension end to end. *)
let value_at' db table key = Database.get db ~table ~key

let test_snapshot_across_reallocation () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"a" ~columns:cols ());
      for i = 1 to 200 do
        Database.insert db txn ~table:"a"
          [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "a-%d" i) ]
      done);
  Sim_clock.advance_us clock 1_000_000.0;
  let before_drop = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  let a_pages =
    let tab = Option.get (Database.table db "a") in
    Rw_access.Btree.pages (Database.ctx db) (Rw_access.Btree.of_root tab.Schema.root)
  in
  Database.with_txn db (fun txn -> Database.drop_table db txn "a");
  (* Table B re-uses A's freed pages and fills them with new content. *)
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"b" ~columns:cols ());
      for i = 1 to 200 do
        Database.insert db txn ~table:"b"
          [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "b-%d" i) ]
      done);
  let b_pages =
    let tab = Option.get (Database.table db "b") in
    Rw_access.Btree.pages (Database.ctx db) (Rw_access.Btree.of_root tab.Schema.root)
  in
  let reused =
    List.exists (fun p -> List.exists (Rw_storage.Page_id.equal p) a_pages) b_pages
  in
  check "b reused at least one of a's pages" true reused;
  (* Preformat records were logged for the re-allocations. *)
  let preformats = ref 0 in
  let log = Database.log db in
  Log_manager.iter_range log ~from:(Log_manager.first_lsn log) ~upto:(Log_manager.end_lsn log)
    (fun _ r -> if Rw_wal.Log_record.kind_name r = "preformat" then incr preformats);
  check "preformat records logged" true (!preformats > 0);
  (* And the snapshot reads table A right through them. *)
  let snap = Database.create_as_of_snapshot db ~name:"before_drop" ~wall_us:before_drop in
  check_int "all of A's rows recovered" 200 (Database.row_count snap ~table:"a");
  check "specific A row" true (value_at' snap "a" 123L = Some [ Row.Int 123L; Row.Text "a-123" ]);
  check "B does not exist yet in the snapshot" true (Database.table snap "b" = None);
  (* The primary still sees only B. *)
  check_int "primary has B" 200 (Database.row_count db ~table:"b")

(* Heap tables time-travel through the identical mechanism. *)
let test_snapshot_heap_table () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore
        (Database.create_table db txn ~table:"h" ~columns:cols ~kind:Schema.Heap_table ());
      for i = 1 to 50 do
        Database.insert db txn ~table:"h" [ Row.Int (Int64.of_int i); Row.Text "v1" ]
      done);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Sim_clock.now_us clock in
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"h" [ Row.Int 10L; Row.Text "v2" ];
      Database.delete db txn ~table:"h" ~key:20L);
  let snap = Database.create_as_of_snapshot db ~name:"hsnap" ~wall_us:t_past in
  check "heap old version" true (Database.get snap ~table:"h" ~key:10L = Some [ Row.Int 10L; Row.Text "v1" ]);
  check "heap deleted row visible in past" true (Database.get snap ~table:"h" ~key:20L <> None);
  check_int "heap full count in past" 50 (Database.row_count snap ~table:"h")

(* Several snapshots of different moments coexist and stay independent. *)
let test_multiple_snapshots_coexist () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  let moments = ref [] in
  for i = 1 to 5 do
    Database.with_txn db (fun txn ->
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "x" ]);
    Sim_clock.advance_us clock 500_000.0;
    moments := (i, Sim_clock.now_us clock) :: !moments
  done;
  let snaps =
    List.map
      (fun (i, wall_us) ->
        (i, Database.create_as_of_snapshot db ~name:(Printf.sprintf "m%d" i) ~wall_us))
      (List.rev !moments)
  in
  List.iter
    (fun (i, snap) -> check_int (Printf.sprintf "snapshot %d row count" i) i
        (Database.row_count snap ~table:"t"))
    snaps

(* --- copy-on-write snapshot baseline (paper §2.2 / §7.1) --- *)

module Cow_snapshot = Rw_core.Cow_snapshot

let test_cow_snapshot_reads_past () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      Database.insert db txn ~table:"t" [ Row.Int 1L; Row.Text "v1" ]);
  let snap = Database.create_cow_snapshot db ~name:"cow" in
  let handle = Option.get (Database.cow_handle snap) in
  check_int "nothing copied yet" 0 (Cow_snapshot.pages_copied handle);
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"t" [ Row.Int 1L; Row.Text "v2" ];
      Database.insert db txn ~table:"t" [ Row.Int 2L; Row.Text "post" ]);
  (* Pre-images were pushed proactively, without any snapshot read. *)
  check "copies happened on write" true (Cow_snapshot.pages_copied handle > 0);
  check "cow sees creation-time version" true
    (Database.get snap ~table:"t" ~key:1L = Some [ Row.Int 1L; Row.Text "v1" ]);
  check "cow does not see later insert" true (Database.get snap ~table:"t" ~key:2L = None);
  check "primary sees the update" true
    (Database.get db ~table:"t" ~key:1L = Some [ Row.Int 1L; Row.Text "v2" ]);
  (* Dropping stops the interception. *)
  let before = Cow_snapshot.pages_copied handle in
  Cow_snapshot.drop handle;
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"t" [ Row.Int 1L; Row.Text "v3" ]);
  check_int "no copies after drop" before (Cow_snapshot.pages_copied handle)

let test_cow_vs_asof_overhead () =
  (* The paper's §7.1 argument, in miniature: a standing COW snapshot pays
     a copy for every first-touch of a page even if nobody ever queries
     it; the log-based scheme pays nothing until a query arrives. *)
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to 500 do
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (String.make 80 'x') ]
      done);
  let snap = Database.create_cow_snapshot db ~name:"standing" in
  let handle = Option.get (Database.cow_handle snap) in
  Database.with_txn db (fun txn ->
      for i = 1 to 500 do
        Database.update db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (String.make 80 'y') ]
      done);
  check "COW copied many pages without any reader" true (Cow_snapshot.pages_copied handle > 5);
  check "COW space overhead is real" true (Cow_snapshot.copy_bytes handle > 5 * 8192)

(* --- selective transaction undo (the paper's §8 future work) --- *)

module Txn_rewind = Rw_core.Txn_rewind

let candidates db =
  Txn_rewind.committed_transactions ~log:(Database.log db)
    ~since:(Log_manager.first_lsn (Database.log db))

let test_txn_rewind_happy_path () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      Database.insert db txn ~table:"t" [ Row.Int 1L; Row.Text "keep" ]);
  let wall_before = Database.now_us db in
  (* The victim: inserts two rows and updates an existing one. *)
  Sim_clock.advance_us (Database.clock db) 1_000.0;
  Database.with_txn db (fun txn ->
      Database.insert db txn ~table:"t" [ Row.Int 2L; Row.Text "oops" ];
      Database.insert db txn ~table:"t" [ Row.Int 3L; Row.Text "oops" ];
      Database.update db txn ~table:"t" [ Row.Int 1L; Row.Text "mangled" ]);
  (* Locate it by commit time. *)
  let victim =
    List.find
      (fun (c : Txn_rewind.candidate) ->
        match c.Txn_rewind.commit_wall_us with Some w -> w > wall_before | None -> false)
      (candidates db)
  in
  check "victim has ops" true (victim.Txn_rewind.page_ops >= 3);
  (match
     Txn_rewind.undo_transaction ~ctx:(Database.ctx db) ~log:(Database.log db) ~victim
       ~wall_us:(Database.now_us db)
   with
  | Txn_rewind.Undone { ops } -> check "three ops undone" true (ops >= 3)
  | Txn_rewind.Conflicts cs ->
      Alcotest.failf "unexpected conflicts: %s"
        (String.concat ", " (List.map (fun c -> c.Txn_rewind.reason) cs)));
  check "insert 2 undone" true (value_at db 2L = None);
  check "insert 3 undone" true (value_at db 3L = None);
  check "update reverted" true (value_at db 1L = Some [ Row.Int 1L; Row.Text "keep" ]);
  (* The compensation is normally logged: it survives a crash. *)
  let db = Database.crash_and_reopen db in
  check "survives crash" true (value_at db 2L = None && value_at db 1L <> None)

let test_txn_rewind_conflict_detected () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  let wall_before = Database.now_us db in
  Sim_clock.advance_us (Database.clock db) 1_000.0;
  Database.with_txn db (fun txn ->
      Database.insert db txn ~table:"t" [ Row.Int 7L; Row.Text "victim" ]);
  (* A later transaction builds on the victim's row. *)
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"t" [ Row.Int 7L; Row.Text "built-upon" ]);
  let victim =
    List.find
      (fun (c : Txn_rewind.candidate) ->
        match c.Txn_rewind.commit_wall_us with Some w -> w > wall_before | None -> false)
      (List.rev (candidates db))
  in
  (match
     Txn_rewind.undo_transaction ~ctx:(Database.ctx db) ~log:(Database.log db) ~victim
       ~wall_us:(Database.now_us db)
   with
  | Txn_rewind.Conflicts (_ :: _) -> ()
  | Txn_rewind.Conflicts [] | Txn_rewind.Undone _ -> Alcotest.fail "expected a conflict");
  (* Nothing changed. *)
  check "row untouched" true (value_at db 7L = Some [ Row.Int 7L; Row.Text "built-upon" ])

let test_txn_rewind_structural_conflict () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  let wall_before = Database.now_us db in
  Sim_clock.advance_us (Database.clock db) 1_000.0;
  (* This transaction forces page splits: structural ops are not
     selectively undoable. *)
  Database.with_txn db (fun txn ->
      for i = 1 to 2000 do
        Database.insert db txn ~table:"t"
          [ Row.Int (Int64.of_int i); Row.Text (String.make 120 'x') ]
      done);
  let victim =
    List.find
      (fun (c : Txn_rewind.candidate) ->
        match c.Txn_rewind.commit_wall_us with Some w -> w > wall_before | None -> false)
      (candidates db)
  in
  match
    Txn_rewind.undo_transaction ~ctx:(Database.ctx db) ~log:(Database.log db) ~victim
      ~wall_us:(Database.now_us db)
  with
  | Txn_rewind.Conflicts cs ->
      check "split reported as structural" true
        (List.exists (fun c -> String.length c.Txn_rewind.reason > 0) cs)
  | Txn_rewind.Undone _ -> Alcotest.fail "expected structural conflict"

(* --- retention --- *)

let test_retention_enforcement () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn -> ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  for i = 1 to 100 do
    Sim_clock.advance_us clock 500_000.0;
    Database.with_txn db (fun txn ->
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "x" ]);
    if i mod 20 = 0 then ignore (Database.checkpoint db)
  done;
  let log = Database.log db in
  let before = Log_manager.retained_bytes log in
  Database.set_retention db (Some 10_000_000.0);
  (match Database.enforce_retention db with
  | Some _ -> ()
  | None -> Alcotest.fail "expected truncation");
  check "log shrank" true (Log_manager.retained_bytes log < before);
  (* Recent history still works. *)
  let t_recent = Sim_clock.now_us clock -. 2_000_000.0 in
  let snap = Database.create_as_of_snapshot db ~name:"snap" ~wall_us:t_recent in
  check "recent as-of query fine" true (Database.row_count snap ~table:"t" > 0)

let test_retention_rides_on_checkpoints () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn -> ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  Database.set_retention db (Some 5_000_000.0);
  (* No manual enforcement: periodic checkpoints alone must reclaim log. *)
  for i = 1 to 60 do
    Sim_clock.advance_us clock 1_000_000.0;
    Database.with_txn db (fun txn ->
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "x" ]);
    if i mod 5 = 0 then ignore (Database.checkpoint db)
  done;
  check "log reclaimed automatically" true
    (Lsn.to_int (Log_manager.first_lsn (Database.log db)) > 1)

let test_no_retention_keeps_everything () =
  let db = mk_db () in
  Database.with_txn db (fun txn -> ignore (Database.create_table db txn ~table:"t" ~columns:cols ()));
  check "no cutoff without interval" true (Database.enforce_retention db = None);
  check_int "log intact" 1 (Lsn.to_int (Log_manager.first_lsn (Database.log db)))

(* Retention / index interplay on a segmented log: after [Retention.enforce]
   drops whole sealed segments, the merged index views must surface nothing
   below the new boundary, and rewinds to points inside the window must be
   byte-identical to the same rewinds before truncation. *)
let test_retention_segmented_indexes () =
  let env = mk_env ~fpi_frequency:10 ~segment_bytes:512 () in
  let pid = Page_id.of_int 0 in
  let rng = Prng.create 99 in
  let txn = Txn_manager.begin_txn env.txns in
  Access_ctx.modify env.ctx txn pid (Log_record.Format { typ = Page.Heap; level = 0 });
  let nrows = ref 0 in
  let as_ofs = ref [] in
  for i = 1 to 120 do
    let row = Prng.alpha_string rng (1 + Prng.int rng 40) in
    Access_ctx.modify env.ctx txn pid
      (Log_record.Insert_row { slot = Prng.int rng (!nrows + 1); row });
    incr nrows;
    as_ofs := Page.lsn (Bytes.of_string (page_image env pid)) :: !as_ofs;
    if i mod 15 = 0 then begin
      Sim_clock.advance_us env.clock 1_000_000.0;
      let l =
        Log_manager.append env.log
          (Log_record.make
             (Log_record.Checkpoint
                { wall_us = Sim_clock.now_us env.clock; active_txns = []; dirty_pages = [] }))
      in
      Log_manager.set_last_checkpoint env.log l
    end
  done;
  Txn_manager.commit env.txns txn ~wall_us:(Sim_clock.now_us env.clock);
  check "history spans several segments" true (Log_manager.segment_count env.log > 4);
  let current = page_image env pid in
  let ret = Retention.create ~retention_us:3_000_000.0 () in
  let now = Sim_clock.now_us env.clock in
  let cut =
    match Retention.cutoff ret ~log:env.log ~now_us:now with
    | Some l -> l
    | None -> Alcotest.fail "expected a retention cutoff"
  in
  let inside = List.filter (fun l -> Lsn.(l >= cut)) !as_ofs in
  check "several rewind points stay inside the window" true (List.length inside > 10);
  let rewind as_of =
    let page = Bytes.of_string current in
    ignore (Page_undo.prepare_page_as_of ~log:env.log ~page ~as_of);
    Bytes.to_string page
  in
  let before_imgs = List.map rewind inside in
  (match Retention.enforce ret ~log:env.log ~now_us:now with
  | Some l -> check "enforce used the cutoff" true (Lsn.equal l cut)
  | None -> Alcotest.fail "expected truncation");
  check "first_lsn is the boundary" true (Lsn.equal (Log_manager.first_lsn env.log) cut);
  let top = Log_manager.end_lsn env.log in
  Array.iter
    (fun l -> check "chain_segment respects boundary" true Lsn.(l >= cut))
    (Log_manager.chain_segment env.log pid ~from:top ~down_to:Lsn.nil);
  List.iter
    (fun after ->
      match Log_manager.earliest_fpi_after env.log pid ~after with
      | Some l -> check "earliest_fpi_after respects boundary" true Lsn.(l >= cut)
      | None -> ())
    (Lsn.nil :: inside);
  List.iter
    (fun l -> check "checkpoints_before respects boundary" true Lsn.(l >= cut))
    (Log_manager.checkpoints_before env.log top);
  List.iter2
    (fun as_of before_img ->
      if not (String.equal (rewind as_of) before_img) then
        Alcotest.failf "rewind to lsn %d changed after truncation" (Lsn.to_int as_of))
    inside before_imgs

let () =
  Alcotest.run "core"
    [
      ( "page_undo",
        [
          Alcotest.test_case "golden history rewind" `Quick test_prepare_golden;
          Alcotest.test_case "golden history with FPIs" `Quick test_prepare_golden_with_fpi;
          Alcotest.test_case "noop when already old" `Quick test_prepare_noop_when_old;
          Alcotest.test_case "FPIs reduce log reads" `Quick test_fpi_reduces_reads;
          Alcotest.test_case "chain corruption detected" `Quick test_chain_broken_detection;
          Alcotest.test_case "batched rewind matches walk" `Quick test_batched_matches_walk;
        ] );
      ( "split_lsn",
        [
          Alcotest.test_case "boundaries" `Quick test_split_lsn_boundaries;
          Alcotest.test_case "out of retention" `Quick test_split_lsn_out_of_retention;
        ] );
      ( "as_of_snapshot",
        [
          Alcotest.test_case "past row versions" `Quick test_snapshot_sees_past_row_versions;
          Alcotest.test_case "dropped table recovery" `Quick test_snapshot_recovers_dropped_table;
          Alcotest.test_case "lazy materialisation" `Quick test_snapshot_lazy_materialisation;
          Alcotest.test_case "in-flight rollback" `Quick test_snapshot_rolls_back_inflight;
          Alcotest.test_case "timings" `Quick test_snapshot_timings_accounted;
          Alcotest.test_case "across re-allocation (preformat)" `Quick
            test_snapshot_across_reallocation;
          Alcotest.test_case "heap tables" `Quick test_snapshot_heap_table;
          Alcotest.test_case "multiple snapshots" `Quick test_multiple_snapshots_coexist;
        ] );
      ( "cow_baseline",
        [
          Alcotest.test_case "reads past via copy-on-write" `Quick test_cow_snapshot_reads_past;
          Alcotest.test_case "proactive overhead" `Quick test_cow_vs_asof_overhead;
        ] );
      ( "txn_rewind",
        [
          Alcotest.test_case "undo a committed txn" `Quick test_txn_rewind_happy_path;
          Alcotest.test_case "conflict detection" `Quick test_txn_rewind_conflict_detected;
          Alcotest.test_case "structural conflict" `Quick test_txn_rewind_structural_conflict;
        ] );
      ( "retention",
        [
          Alcotest.test_case "enforcement" `Quick test_retention_enforcement;
          Alcotest.test_case "rides on checkpoints" `Quick test_retention_rides_on_checkpoints;
          Alcotest.test_case "no interval" `Quick test_no_retention_keeps_everything;
          Alcotest.test_case "segmented index boundary" `Quick test_retention_segmented_indexes;
        ] );
    ]
