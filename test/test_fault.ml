(* Fault injection, detection, and repair: log-record CRCs, torn log
   tails, checksum-failure repair from the page chain, transient-error
   retry, quarantine, and the randomized crash-point property campaign. *)

module Lsn = Rw_storage.Lsn
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Io_stats = Rw_storage.Io_stats
module Fault_plan = Rw_storage.Fault_plan
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Page_repair = Rw_recovery.Page_repair
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Schema = Rw_catalog.Schema
module Experiments = Rw_workload.Experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [ { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text } ]

let mk_db ?fault_plan ?(name = "flt") () =
  let clock = Sim_clock.create () in
  let db = Database.create ~name ~clock ~media:Media.ram ?fault_plan () in
  (db, clock)

let seed_table db n =
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to n do
        Database.insert db txn ~table:"t"
          [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "v%d" i) ]
      done)

let rows db =
  let acc = ref [] in
  Database.scan db ~table:"t" ~f:(fun r -> acc := r :: !acc);
  List.rev !acc

(* --- log record CRC trailer --- *)

let test_record_crc () =
  let r =
    Log_record.make ~txn:(Rw_wal.Txn_id.of_int 7)
      (Log_record.Page_op
         {
           page = Page_id.of_int 3;
           prev_page_lsn = Lsn.of_int 11;
           op = Log_record.Insert_row { slot = 0; row = "payload" };
         })
  in
  let s = Log_record.encode r in
  check "intact record checks" true (Log_record.check s);
  check "decode round-trips" true (Log_record.decode s = r);
  (* Flip one payload byte: check fails, decode raises. *)
  let b = Bytes.of_string s in
  Bytes.set b (String.length s / 2) '\xff';
  let s' = Bytes.to_string b in
  check "corrupt record fails check" false (Log_record.check s');
  Alcotest.check_raises "decode raises typed error" Log_record.Corrupt_record (fun () ->
      ignore (Log_record.decode s'));
  (* A torn prefix also fails cleanly. *)
  check "torn prefix fails check" false (Log_record.check (String.sub s 0 (String.length s - 3)))

(* --- torn log tail at crash, truncated by recovery --- *)

let test_torn_log_tail () =
  (* The tear draws from the plan's PRNG, so sweep seeds until a run tears;
     invariants must hold in every run regardless. *)
  let saw_tear = ref false in
  for seed = 1 to 12 do
    let plan = Fault_plan.create ~torn_log_tail_rate:1.0 ~seed () in
    let db, _clock = mk_db ~fault_plan:plan ~name:(Printf.sprintf "tear%d" seed) () in
    seed_table db 20;
    let committed = rows db in
    (* In-flight work: appended to the log but never committed/flushed. *)
    let straggler = Database.begin_txn db in
    Database.insert db straggler ~table:"t" [ Row.Int 999L; Row.Text "inflight" ];
    let db2 = Database.crash_and_reopen db in
    (match Database.last_recovery_stats db2 with
    | Some s when s.Rw_recovery.Recovery.tail_truncated <> None ->
        saw_tear := true;
        check "tear detected and counted" true
          ((Log_manager.stats (Database.log db2)).Io_stats.corruptions_detected > 0)
    | _ -> ());
    check "committed rows survive the torn tail" true (rows db2 = committed);
    check "in-flight insert did not survive" true
      (Database.get db2 ~table:"t" ~key:999L = None)
  done;
  check "at least one seed produced a torn tail" true !saw_tear

(* --- checksum failure on fetch -> transparent repair from the log --- *)

let test_detect_and_repair () =
  let db, _clock = mk_db () in
  seed_table db 30;
  ignore (Database.checkpoint db);
  let before = rows db in
  let root = (Option.get (Database.table db "t")).Schema.root in
  let disk = Database.disk db in
  Disk.corrupt_stored disk root;
  Rw_buffer.Buffer_pool.drop_all (Database.pool db);
  (* The next read detects the damage and rebuilds the page in place. *)
  check "rows read back through repair" true (rows db = before);
  let st = Disk.stats disk in
  check "detection counted" true (st.Io_stats.corruptions_detected >= 1);
  check "repair counted" true (st.Io_stats.pages_repaired >= 1);
  (* The repaired image is durable: a raw re-read now verifies. *)
  check "stored page verifies after repair" true (Disk.verify_checksums disk)

(* --- transient errors absorbed by bounded retry --- *)

let test_transient_retry () =
  let plan = Fault_plan.create ~transient_error_rate:0.2 ~seed:5 () in
  let db, _clock = mk_db ~fault_plan:plan () in
  seed_table db 40;
  ignore (Database.checkpoint db);
  Rw_buffer.Buffer_pool.drop_all (Database.pool db);
  check_int "all rows readable under transient errors" 40 (List.length (rows db));
  let st = Disk.stats (Database.disk db) in
  check "faults were injected" true (st.Io_stats.faults_injected > 0);
  check "retries absorbed them" true (st.Io_stats.io_retries > 0)

(* --- unrepairable page -> quarantine, rest of the database serves --- *)

let test_quarantine () =
  let db, _clock = mk_db () in
  seed_table db 10;
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"other" ~columns:cols ());
      Database.insert db txn ~table:"other" [ Row.Int 1L; Row.Text "fine" ]);
  ignore (Database.checkpoint db);
  (* Drop all log history: the page chain is gone, repair has no base. *)
  let log = Database.log db in
  Log_manager.truncate_before log (Log_manager.end_lsn log);
  let root = (Option.get (Database.table db "t")).Schema.root in
  Disk.corrupt_stored (Database.disk db) root;
  Rw_buffer.Buffer_pool.drop_all (Database.pool db);
  (try
     ignore (rows db);
     Alcotest.fail "expected Quarantined"
   with Page_repair.Quarantined pid ->
     check "quarantined the damaged page" true (Page_id.equal pid root));
  check_int "page listed in quarantine" 1 (List.length (Database.quarantined_pages db));
  (* Graceful degradation: the other table still serves. *)
  check "other table still readable" true
    (Database.get db ~table:"other" ~key:1L <> None);
  (* Repeated reads fail fast with the same typed error. *)
  (try ignore (rows db) with Page_repair.Quarantined _ -> ())

(* --- scrub repairs residual damage in bulk --- *)

let test_scrub () =
  let db, _clock = mk_db () in
  seed_table db 30;
  ignore (Database.checkpoint db);
  let disk = Database.disk db in
  let victims = ref [] in
  for i = 0 to Disk.page_count disk - 1 do
    let pid = Page_id.of_int i in
    if Disk.has_page disk pid && List.length !victims < 3 then begin
      Disk.corrupt_stored disk pid;
      victims := pid :: !victims
    end
  done;
  Rw_buffer.Buffer_pool.drop_all (Database.pool db);
  let repaired = Database.scrub db in
  check "scrub repaired every victim" true (repaired >= List.length !victims);
  check "disk fully verifies after scrub" true (Disk.verify_checksums disk)

(* --- the crash-point property campaign --- *)

let test_crash_point_campaign () =
  let rows =
    Experiments.crash_repair_campaign ~seeds:[ 11; 23 ] ~crash_points:5 ~quick:true ()
  in
  check_int "ten crash points" 10 (List.length rows);
  List.iter
    (fun (r : Experiments.fault_row) ->
      let label p =
        Printf.sprintf "seed %d, crash after %d txns: %s" r.Experiments.fr_seed
          r.Experiments.fr_crash_after p
      in
      check (label "TPC-C invariants hold") true r.Experiments.fr_consistent;
      check (label "in-flight txn gone") true r.Experiments.fr_loser_gone;
      check (label "state agrees with oracle") true r.Experiments.fr_state_agrees;
      check (label "as-of query agrees with oracle") true r.Experiments.fr_asof_agrees;
      check_int (label "nothing quarantined") 0 r.Experiments.fr_quarantined)
    rows;
  (* The campaign must actually exercise the machinery, not just pass. *)
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  check "faults were injected" true (total (fun r -> r.Experiments.fr_injected) > 0);
  check "corruptions were detected" true (total (fun r -> r.Experiments.fr_detected) > 0);
  check "pages were repaired" true (total (fun r -> r.Experiments.fr_repaired) > 0)

let () =
  Alcotest.run "fault"
    [
      ( "log",
        [
          Alcotest.test_case "record crc" `Quick test_record_crc;
          Alcotest.test_case "torn tail truncated" `Quick test_torn_log_tail;
        ] );
      ( "page",
        [
          Alcotest.test_case "detect and repair" `Quick test_detect_and_repair;
          Alcotest.test_case "transient retry" `Quick test_transient_retry;
          Alcotest.test_case "quarantine" `Quick test_quarantine;
          Alcotest.test_case "scrub" `Quick test_scrub;
        ] );
      ("campaign", [ Alcotest.test_case "crash points" `Slow test_crash_point_campaign ]);
    ]
