(* Observability tests: histogram bucketing, trace ring-buffer
   wraparound, Chrome trace JSON well-formedness, EXPLAIN reconciliation
   against Io_stats deltas, and the docs/OBSERVABILITY.md metric table
   staying in sync with the registry. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Executor = Rw_sql.Executor
module As_of_snapshot = Rw_core.As_of_snapshot
module Metrics = Rw_obs.Metrics
module Trace = Rw_obs.Trace
module Probes = Rw_obs.Probes

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- histogram bucketing --- *)

let test_histogram_buckets () =
  check_int "zero -> bucket 0" 0 (Metrics.bucket_index 0.0);
  check_int "negative -> bucket 0" 0 (Metrics.bucket_index (-3.0));
  check_int "0.99 -> bucket 0" 0 (Metrics.bucket_index 0.99);
  check_int "1.0 -> bucket 1" 1 (Metrics.bucket_index 1.0);
  check_int "1.99 -> bucket 1" 1 (Metrics.bucket_index 1.99);
  check_int "2.0 -> bucket 2" 2 (Metrics.bucket_index 2.0);
  check_int "4.0 -> bucket 3" 3 (Metrics.bucket_index 4.0);
  check_int "7.99 -> bucket 3" 3 (Metrics.bucket_index 7.99);
  check_int "2^62 -> last bucket" (Metrics.bucket_count - 1)
    (Metrics.bucket_index (Float.pow 2.0 62.0));
  check_int "huge -> last bucket" (Metrics.bucket_count - 1) (Metrics.bucket_index 1e300);
  check "nan -> bucket 0" true (Metrics.bucket_index Float.nan = 0);
  check "bound b0" true (Metrics.bucket_lower_bound 0 = 0.0);
  check "bound b1" true (Metrics.bucket_lower_bound 1 = 1.0);
  check "bound b5" true (Metrics.bucket_lower_bound 5 = 16.0);
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~help:"test" "t.h" in
  List.iter (Metrics.observe h) [ 0.0; 0.5; 1.0; 1.5; 3.0; 1024.0; -5.0 ];
  check_int "count" 7 (Metrics.hist_count h);
  check "sum" true (Metrics.hist_sum h = 1025.0);
  check "min" true (Metrics.hist_min h = -5.0);
  check "max" true (Metrics.hist_max h = 1024.0);
  check_int "bucket 0 holds <1" 3 (Metrics.hist_bucket h 0);
  check_int "bucket 1 holds [1,2)" 2 (Metrics.hist_bucket h 1);
  check_int "bucket 2 holds [2,4)" 1 (Metrics.hist_bucket h 2);
  check_int "bucket 11 holds [1024,2048)" 1 (Metrics.hist_bucket h 11);
  Metrics.reset ~registry:r ();
  check_int "reset empties" 0 (Metrics.hist_count h);
  check_int "reset empties buckets" 0 (Metrics.hist_bucket h 0)

let test_registry_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"c" "a.c" in
  let g = Metrics.gauge ~registry:r ~help:"g" "a.g" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter" 5 (Metrics.counter_value c);
  Metrics.gauge_add g 2.0;
  Metrics.gauge_add g (-0.5);
  check "gauge" true (Metrics.gauge_value g = 1.5);
  check "names sorted" true (Metrics.names ~registry:r () = [ "a.c"; "a.g" ]);
  check "duplicate rejected" true
    (try
       ignore (Metrics.counter ~registry:r ~help:"dup" "a.c");
       false
     with Invalid_argument _ -> true)

(* --- trace ring buffer --- *)

let test_ring_wraparound () =
  Trace.configure ~capacity:8 ();
  Trace.enable ();
  let tick = ref 0.0 in
  Trace.install_clock (fun () ->
      tick := !tick +. 1.0;
      !tick);
  for i = 0 to 19 do
    Trace.instant ~cat:"test" (Printf.sprintf "i%d" i)
  done;
  Trace.disable ();
  let evs = Trace.events () in
  check_int "capacity bounds the buffer" 8 (List.length evs);
  check_int "dropped counts the overwritten" 12 (Trace.dropped ());
  check "oldest survivor is i12" true ((List.hd evs).Trace.name = "i12");
  check "newest survivor is i19" true
    ((List.nth evs 7).Trace.name = "i19");
  check "timestamps ascend" true
    (let rec asc = function
       | a :: (b :: _ as rest) -> a.Trace.ts < b.Trace.ts && asc rest
       | _ -> true
     in
     asc evs);
  Trace.clear ();
  check_int "clear empties" 0 (List.length (Trace.events ()));
  check_int "clear resets dropped" 0 (Trace.dropped ());
  Trace.configure ~capacity:65536 ()

(* --- Chrome trace JSON well-formedness --- *)

(* A tiny JSON parser: enough to verify the exporter emits a well-formed
   document with the trace_event structure (there is no JSON library in
   the environment, which is also why the exporter is hand-rolled). *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" ch)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char b c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some ('b' | 'f' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          J_arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
    | Some ('t' | 'f' | 'n') ->
        let lit w v =
          if !pos + String.length w <= n && String.sub s !pos (String.length w) = w then (
            pos := !pos + String.length w;
            v)
          else fail "bad literal"
        in
        if s.[!pos] = 't' then lit "true" (J_bool true)
        else if s.[!pos] = 'f' then lit "false" (J_bool false)
        else lit "null" J_null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        let num_char = function
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while (match peek () with Some c -> num_char c | None -> false) do
          advance ()
        done;
        let tok = String.sub s start (!pos - start) in
        (match float_of_string_opt tok with
        | Some f -> J_num f
        | None -> fail "bad number")
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_trace_json () =
  Trace.configure ~capacity:1024 ();
  Trace.enable ();
  let tick = ref 0.0 in
  Trace.install_clock (fun () ->
      tick := !tick +. 0.5;
      !tick);
  (* Args with characters the exporter must escape. *)
  Trace.instant ~cat:"test"
    ~args:[ ("s", Trace.Str "quote \" backslash \\ newline \n done"); ("n", Trace.Int 42) ]
    "tricky \"name\"";
  let ts = Trace.now () in
  Trace.instant ~cat:"test" ~args:[ ("f", Trace.Float 1.25) ] "middle";
  Trace.complete ~cat:"test" ~ts ~args:[ ("bytes", Trace.Int 4096) ] "span";
  Trace.disable ();
  let doc = parse_json (Trace.to_chrome_json ()) in
  let events =
    match doc with
    | J_obj kvs -> (
        match List.assoc_opt "traceEvents" kvs with
        | Some (J_arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents array missing")
    | _ -> Alcotest.fail "top level is not an object"
  in
  check_int "all events exported" 3 (List.length events);
  List.iter
    (fun ev ->
      match ev with
      | J_obj kvs ->
          check "name is a string" true
            (match List.assoc_opt "name" kvs with Some (J_str _) -> true | _ -> false);
          check "ph is X or i" true
            (match List.assoc_opt "ph" kvs with
            | Some (J_str ("X" | "i")) -> true
            | _ -> false);
          check "ts is a number" true
            (match List.assoc_opt "ts" kvs with Some (J_num _) -> true | _ -> false);
          check "pid present" true (List.assoc_opt "pid" kvs <> None);
          check "tid present" true (List.assoc_opt "tid" kvs <> None);
          if List.assoc_opt "ph" kvs = Some (J_str "X") then
            check "span has dur" true
              (match List.assoc_opt "dur" kvs with Some (J_num d) -> d >= 0.0 | _ -> false)
      | _ -> Alcotest.fail "event is not an object")
    events;
  (* The escaped string round-trips through our parser. *)
  let first = List.hd events in
  (match first with
  | J_obj kvs -> (
      match List.assoc_opt "args" kvs with
      | Some (J_obj args) ->
          check "escaped arg round-trips" true
            (List.assoc_opt "s" args = Some (J_str "quote \" backslash \\ newline \n done"))
      | _ -> Alcotest.fail "args missing")
  | _ -> ());
  (* Metrics JSON is parseable too. *)
  (match parse_json (Metrics.to_json ()) with
  | J_obj kvs -> check "metrics json non-empty" true (List.length kvs > 0)
  | _ -> Alcotest.fail "metrics json is not an object");
  Trace.clear ()

(* --- EXPLAIN reconciles with Io_stats deltas --- *)

let run_ok session sql =
  match Executor.run session sql with
  | r -> r
  | exception Executor.Sql_error m -> Alcotest.fail ("sql error: " ^ m)

let metric_rows = function
  | Executor.Rows { columns = [ "metric"; "value" ]; rows } ->
      List.filter_map
        (function [ Row.Text k; v ] -> Some (k, v) | _ -> None)
        rows
  | _ -> Alcotest.fail "expected an EXPLAIN metric/value table"

let metric_int rows key =
  match List.assoc_opt key rows with
  | Some (Row.Int v) -> Int64.to_int v
  | _ -> Alcotest.fail (Printf.sprintf "EXPLAIN row %s missing or not an int" key)

let test_explain_reconciles () =
  let eng = Engine.create ~media:Media.ssd () in
  let session = Executor.create_session eng in
  ignore (run_ok session "CREATE DATABASE d");
  ignore (run_ok session "USE d");
  ignore (run_ok session "CREATE TABLE t (k INT, v INT)");
  ignore (run_ok session "CREATE TABLE u (k INT, v INT)");
  for k = 0 to 19 do
    ignore (run_ok session (Printf.sprintf "INSERT INTO t VALUES (%d, 0)" k));
    ignore (run_ok session (Printf.sprintf "INSERT INTO u VALUES (%d, 0)" k))
  done;
  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;
  for round = 1 to 3 do
    ignore (run_ok session (Printf.sprintf "UPDATE t SET v = %d" round));
    ignore (run_ok session (Printf.sprintf "UPDATE u SET v = %d" round))
  done;
  Sim_clock.advance_us (Engine.clock eng) 2_000_000.0;
  for round = 4 to 8 do
    ignore (run_ok session (Printf.sprintf "UPDATE t SET v = %d" round));
    ignore (run_ok session (Printf.sprintf "UPDATE u SET v = %d" round))
  done;
  ignore (run_ok session "CHECKPOINT");
  (* Snapshot lands between the two update phases: reading it must undo
     the second phase's history on every data page touched. *)
  ignore (run_ok session "CREATE DATABASE p AS SNAPSHOT OF d AS OF -2");
  let db = Option.get (Engine.find_database eng "p") in
  let handle = Option.get (Database.snapshot_handle db) in
  let log_stats = Rw_wal.Log_manager.stats (Database.log db) in
  (* Warm-up query on the *other* table: rewinds the snapshot's catalog
     pages so that resolving [p.u] below is pure cache hits.  Resolution
     happens before EXPLAIN samples its baseline, so catalog rewinds
     during resolve would show up in an external bracket but not in
     EXPLAIN's own deltas. *)
  ignore (run_ok session "SELECT * FROM p.t");
  (* Independent bracket around the whole statement: with the catalog
     warm, parse and resolve do no log I/O, so EXPLAIN's internal deltas
     must match exactly. *)
  let io0 = Io_stats.copy log_stats in
  let rewinds0 = As_of_snapshot.rewind_count handle in
  let rows = metric_rows (run_ok session "EXPLAIN SELECT * FROM p.u") in
  let iod = Io_stats.diff log_stats io0 in
  check_int "rows_returned" 20 (metric_int rows "rows_returned");
  let pages_rewound = metric_int rows "pages_rewound" in
  check "the query rewound pages" true (pages_rewound >= 1);
  check_int "pages_rewound = snapshot tally delta" pages_rewound
    (As_of_snapshot.rewind_count handle - rewinds0);
  let recent =
    List.filteri
      (fun i _ -> i < pages_rewound)
      (As_of_snapshot.rewinds handle)
  in
  let undone = List.fold_left (fun a r -> a + r.As_of_snapshot.rc_ops) 0 recent in
  check "history was undone" true (undone >= 20);
  check_int "records_undone = tally ops" undone (metric_int rows "records_undone");
  check_int "log_records_read = tally reads"
    (List.fold_left (fun a r -> a + r.As_of_snapshot.rc_log_reads) 0 recent)
    (metric_int rows "log_records_read");
  check_int "log_bytes_read = Io_stats delta"
    (iod.Io_stats.random_read_bytes + iod.Io_stats.seq_read_bytes)
    (metric_int rows "log_bytes_read");
  check_int "log_block_hits = Io_stats delta" iod.Io_stats.log_block_hits
    (metric_int rows "log_block_hits");
  check_int "log_block_misses = Io_stats delta" iod.Io_stats.log_block_misses
    (metric_int rows "log_block_misses");
  (* Second run: the rewound versions are in the side file now.  Drop the
     buffer pool so the re-read has to go to the side file rather than
     being served from memory — no new rewinds either way. *)
  Rw_buffer.Buffer_pool.flush_all (Database.pool db);
  Rw_buffer.Buffer_pool.drop_all (Database.pool db);
  let rows2 = metric_rows (run_ok session "EXPLAIN SELECT * FROM p.u") in
  check_int "second run rewinds nothing" 0 (metric_int rows2 "pages_rewound");
  check_int "second run undoes nothing" 0 (metric_int rows2 "records_undone");
  check "second run hits the side file" true (metric_int rows2 "side_file_hits" >= 1);
  (* The probes moved too: the registry's rewind counter covers at least
     the tally's pages (snapshot creation + this query). *)
  check "undo.page_rewinds counted" true
    (Metrics.counter_value Probes.page_rewinds >= As_of_snapshot.rewind_count handle)

(* --- docs/OBSERVABILITY.md lists every registry metric --- *)

let doc_metric_names path =
  (* cwd is _build/default/test under `dune runtest` (the docs glob dep
     materialises ../docs there); fall back to the source tree for direct
     execution. *)
  let path =
    List.find Sys.file_exists
      [ path; "../../../docs/OBSERVABILITY.md"; "docs/OBSERVABILITY.md" ]
  in
  let ic = open_in path in
  let names = ref [] in
  let in_section = ref false in
  (try
     while true do
       let line = input_line ic in
       if String.length line >= 3 && String.sub line 0 3 = "###" then
         in_section := String.trim line = "### Metric reference"
       else if !in_section && String.length line > 4 && String.sub line 0 3 = "| `" then begin
         match String.index_from_opt line 3 '`' with
         | Some stop -> names := String.sub line 3 (stop - 3) :: !names
         | None -> ()
       end
     done
   with End_of_file -> close_in ic);
  List.sort compare !names

let test_doc_sync () =
  (* Touch one probe so the linker cannot drop the Probes module (and with
     it the registrations) from this executable. *)
  ignore (Metrics.counter_name Probes.commits);
  let doc = doc_metric_names "../docs/OBSERVABILITY.md" in
  let registry = Metrics.names () in
  let pp_list l = String.concat ", " l in
  let missing = List.filter (fun n -> not (List.mem n doc)) registry in
  let stale = List.filter (fun n -> not (List.mem n registry)) doc in
  check ("doc missing: " ^ pp_list missing) true (missing = []);
  check ("doc stale: " ^ pp_list stale) true (stale = []);
  check "doc table non-empty" true (List.length doc > 0)

(* --- docs/CLI.md lists every shell meta-command --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let find_existing candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("none of the candidate paths exist: " ^ String.concat ", " candidates)

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* Meta-commands in the source are OCaml string literals like "\\help":
   in raw bytes, two backslashes followed by letters.  The scan requires
   a letter right after the pair, which skips '\\' char literals and
   "\\|" doc escapes. *)
let source_meta_commands src =
  let names = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n - 2 do
    if src.[!i] = '\\' && src.[!i + 1] = '\\' && is_letter src.[!i + 2] then begin
      let j = ref (!i + 2) in
      while !j < n && is_letter src.[!j] do
        incr j
      done;
      names := String.sub src (!i + 2) (!j - !i - 2) :: !names;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !names

(* The doc names meta-commands in backticks: `\help`, `\trace on\|...`.
   One backslash in the markdown bytes, letters up to the next
   non-letter. *)
let doc_meta_commands doc =
  let names = ref [] in
  let n = String.length doc in
  let i = ref 0 in
  while !i < n - 2 do
    if doc.[!i] = '`' && doc.[!i + 1] = '\\' && is_letter doc.[!i + 2] then begin
      let j = ref (!i + 2) in
      while !j < n && is_letter doc.[!j] do
        incr j
      done;
      names := String.sub doc (!i + 2) (!j - !i - 2) :: !names;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !names

let test_cli_doc_sync () =
  let src =
    read_file
      (find_existing
         [ "../bin/rewind_cli.ml"; "../../../bin/rewind_cli.ml"; "bin/rewind_cli.ml" ])
  in
  let doc =
    read_file (find_existing [ "../docs/CLI.md"; "../../../docs/CLI.md"; "docs/CLI.md" ])
  in
  let in_source = source_meta_commands src in
  let in_doc = doc_meta_commands doc in
  let pp_list l = String.concat ", " (List.map (fun n -> "\\" ^ n) l) in
  let missing = List.filter (fun n -> not (List.mem n in_doc)) in_source in
  let stale = List.filter (fun n -> not (List.mem n in_source)) in_doc in
  check ("docs/CLI.md missing meta-commands: " ^ pp_list missing) true (missing = []);
  check ("docs/CLI.md stale meta-commands: " ^ pp_list stale) true (stale = []);
  check "meta-command tables non-empty" true (List.length in_source > 5);
  (* Subcommands too: every `Cmd.info "name"` must appear backticked. *)
  let subcommands =
    let names = ref [] in
    let marker = "Cmd.info \"" in
    let m = String.length marker in
    let n = String.length src in
    for i = 0 to n - m - 1 do
      if String.sub src i m = marker then begin
        let j = ref (i + m) in
        while !j < n && src.[!j] <> '"' do
          incr j
        done;
        let name = String.sub src (i + m) (!j - i - m) in
        if name <> "rewind_cli" then names := name :: !names
      end
    done;
    List.sort_uniq compare !names
  in
  let undocumented =
    List.filter
      (fun name ->
        let needle = "`" ^ name in
        let nl = String.length needle in
        let found = ref false in
        for i = 0 to String.length doc - nl do
          if String.sub doc i nl = needle then found := true
        done;
        not !found)
      subcommands
  in
  check
    ("docs/CLI.md missing subcommands: " ^ String.concat ", " undocumented)
    true (undocumented = []);
  check "subcommand list non-empty" true (List.length subcommands >= 5)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_buckets;
          Alcotest.test_case "registry basics" `Quick test_registry_basics;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "chrome json" `Quick test_trace_json;
        ] );
      ( "explain",
        [ Alcotest.test_case "reconciles with io_stats" `Quick test_explain_reconciles ] );
      ( "docs",
        [
          Alcotest.test_case "metric table in sync" `Quick test_doc_sync;
          Alcotest.test_case "cli meta-commands in sync" `Quick test_cli_doc_sync;
        ] );
    ]
