(* Group-commit durability and coalescing, end to end through the engine.

   The contract under test: a commit ACKNOWLEDGED by the flush scheduler
   (its transaction observed in the [Committed] state) has a durable commit
   record and therefore survives any later crash; a commit still waiting in
   the batch has made no durability promise (it may or may not survive,
   depending on whether some later flush happened to cover it); and a
   transaction that never committed is always rolled back by recovery. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Prng = Rw_storage.Prng
module Io_stats = Rw_storage.Io_stats
module Log_manager = Rw_wal.Log_manager
module Txn_manager = Rw_txn.Txn_manager
module Schema = Rw_catalog.Schema
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Tpcc = Rw_workload.Tpcc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [
    { Schema.name = "id"; ctype = Schema.Int };
    { Schema.name = "amount"; ctype = Schema.Int };
    { Schema.name = "note"; ctype = Schema.Text };
  ]

let row_of_key k = [ Row.Int k; Row.Int (Int64.mul k 10L); Row.Text "gc" ]

(* One round: random committed workload under group commit, crash at several
   random points, check the durability contract after each recovery. *)
let crash_round ~seed =
  let rng = Prng.create seed in
  let clock = Sim_clock.create () in
  let db = ref (Database.create ~name:"gc" ~clock ~media:Media.ram ()) in
  Database.set_group_commit !db ~max_batch_bytes:(8 * 1024) ~max_delay_us:2_000.0;
  Database.with_txn !db (fun txn ->
      ignore (Database.create_table !db txn ~table:"kv" ~columns:cols ()));
  (* Make the schema durable so every epoch starts from a table that
     survives the crash. *)
  ignore (Database.flush_commits !db);
  (* Keys whose commits were acknowledged: must survive every crash. *)
  let acked = Hashtbl.create 64 in
  let next_key = ref 0 in
  for _epoch = 1 to 4 do
    (* Commits whose ack we have not yet observed, newest workload first. *)
    let issued = ref [] in
    (* Transactions deliberately left open at the crash. *)
    let open_keys = ref [] in
    for _ = 1 to 30 do
      incr next_key;
      let key = Int64.of_int !next_key in
      let txn = Database.begin_txn !db in
      Database.insert !db txn ~table:"kv" (row_of_key key);
      Database.commit !db txn;
      issued := (key, txn) :: !issued;
      if Prng.int rng 100 < 12 then begin
        (* An uncommitted transaction: recovery must undo its insert. *)
        incr next_key;
        let okey = Int64.of_int !next_key in
        let otxn = Database.begin_txn !db in
        Database.insert !db otxn ~table:"kv" (row_of_key okey);
        open_keys := okey :: !open_keys
      end;
      Sim_clock.advance_us clock (float_of_int (Prng.int rng 700))
    done;
    (* Snapshot ack state at the instant of the crash. *)
    let acked_now, waiting =
      List.partition (fun (_, txn) -> Txn_manager.state txn = Txn_manager.Committed) !issued
    in
    (* Bookkeeping sanity: every issued-but-unacked commit is still counted
       as pending by the scheduler; none is reported durable. *)
    check_int "pending = unacked" (List.length waiting) (Database.pending_commits !db);
    List.iter (fun (k, _) -> Hashtbl.replace acked k ()) acked_now;
    db := Database.crash_and_reopen !db;
    (* Every acknowledged commit survives. *)
    Hashtbl.iter
      (fun k () ->
        if Database.get !db ~table:"kv" ~key:k <> Some (row_of_key k) then
          Alcotest.failf "acked key %Ld lost in crash (seed %d)" k seed)
      acked;
    (* A waiting commit may have been covered by a later flush (WAL rule,
       checkpoint): if its record proved durable it is committed now and
       must keep surviving; if not it is simply gone. *)
    List.iter
      (fun (k, _) ->
        if Database.get !db ~table:"kv" ~key:k = Some (row_of_key k) then
          Hashtbl.replace acked k ())
      waiting;
    (* A transaction that never committed never survives. *)
    List.iter
      (fun k ->
        if Database.get !db ~table:"kv" ~key:k <> None then
          Alcotest.failf "uncommitted key %Ld survived recovery (seed %d)" k seed)
      !open_keys;
    Database.set_group_commit !db ~max_batch_bytes:(8 * 1024) ~max_delay_us:2_000.0
  done

let test_crash_durability () = List.iter (fun seed -> crash_round ~seed) [ 1; 7; 42 ]

(* The headline write-path claim: at equal transaction count, TPC-C under
   group commit issues at least 5x fewer priced log flushes than the
   flush-per-commit baseline. *)
let test_flush_coalescing_ratio () =
  let run ~group_commit =
    let clock = Sim_clock.create () in
    let db = Database.create ~name:"tpcc" ~clock ~media:Media.ram () in
    if group_commit then
      Database.set_group_commit db ~max_batch_bytes:(32 * 1024) ~max_delay_us:5_000.0;
    Tpcc.load db Tpcc.small_config;
    let drv = Tpcc.create db Tpcc.small_config in
    let before = Io_stats.copy (Log_manager.stats (Database.log db)) in
    ignore (Tpcc.run_mix drv ~txns:300);
    ignore (Database.flush_commits db);
    let d = Io_stats.diff (Log_manager.stats (Database.log db)) before in
    d.Io_stats.log_flush_batches
  in
  let per_commit = run ~group_commit:false in
  let batched = run ~group_commit:true in
  check "batched path flushed at least once" true (batched > 0);
  if per_commit < 5 * batched then
    Alcotest.failf "coalescing too weak: %d flushes per-commit vs %d batched (< 5x)" per_commit
      batched

let () =
  Alcotest.run "group_commit"
    [
      ( "group-commit",
        [
          Alcotest.test_case "crash durability property" `Quick test_crash_durability;
          Alcotest.test_case "5x fewer priced flushes on TPC-C" `Quick
            test_flush_coalescing_ratio;
        ] );
    ]
