(* Tests for the write-ahead log: codec and record round-trips, append /
   flush / crash semantics, the block cache, truncation and the FPI
   directory. *)

module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Io_stats = Rw_storage.Io_stats
module Txn_id = Rw_wal.Txn_id
module Codec = Rw_wal.Codec
module Lru = Rw_wal.Lru
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_log ?(media = Media.ram) ?cache_blocks ?block_bytes ?record_cache_bytes ?segment_bytes () =
  let clock = Sim_clock.create () in
  ( clock,
    Log_manager.create ~clock ~media ?cache_blocks ?block_bytes ?record_cache_bytes
      ?segment_bytes () )

(* --- codec --- *)

let test_codec_roundtrip () =
  let e = Codec.encoder () in
  Codec.u8 e 200;
  Codec.u16 e 65535;
  Codec.u32 e 123456789;
  Codec.i64 e (-42L);
  Codec.f64 e 3.25;
  Codec.str16 e "hello";
  Codec.str32 e (String.make 70000 'z');
  let d = Codec.decoder (Codec.to_string e) in
  check_int "u8" 200 (Codec.get_u8 d);
  check_int "u16" 65535 (Codec.get_u16 d);
  check_int "u32" 123456789 (Codec.get_u32 d);
  check "i64" true (Codec.get_i64 d = -42L);
  Alcotest.(check (float 0.0)) "f64" 3.25 (Codec.get_f64 d);
  Alcotest.(check string) "str16" "hello" (Codec.get_str16 d);
  check_int "str32 length" 70000 (String.length (Codec.get_str32 d));
  check "consumed" true (Codec.at_end d)

(* --- LRU --- *)

let test_lru () =
  let l = Lru.create ~capacity:3 in
  check "miss" false (Lru.use l 1);
  check "miss" false (Lru.use l 2);
  check "miss" false (Lru.use l 3);
  check "hit" true (Lru.use l 1);
  (* inserting 4 evicts the LRU entry, which is 2 *)
  check "miss" false (Lru.use l 4);
  check "2 evicted" false (Lru.mem l 2);
  check "1 kept" true (Lru.mem l 1);
  check "3 kept" true (Lru.mem l 3);
  check_int "size" 3 (Lru.size l);
  Lru.remove l 3;
  check "removed" false (Lru.mem l 3);
  Lru.clear l;
  check_int "cleared" 0 (Lru.size l)

let test_weighted_lru () =
  let module W = Lru.Weighted in
  let c = W.create ~capacity_bytes:100 in
  W.add c 1 ~weight:40 "a";
  W.add c 2 ~weight:40 "b";
  check_int "occupancy" 80 (W.size_bytes c);
  check "find hit" true (W.find c 1 = Some "a");
  (* 1 is now most recent; inserting 3 overflows the budget and evicts 2. *)
  W.add c 3 ~weight:40 "c";
  check "2 evicted" false (W.mem c 2);
  check "1 kept" true (W.mem c 1);
  check "3 kept" true (W.mem c 3);
  check "within budget" true (W.size_bytes c <= 100);
  (* Slot handles: inserting 4 evicts 1 (the LRU entry). *)
  let n = W.add_node c 4 ~weight:40 "d" in
  check "1 evicted" false (W.mem c 1);
  check "node alive" true (W.alive n);
  check "node value" true (W.node_value n = "d");
  W.touch c n;
  W.remove c 4;
  check "node dead after remove" false (W.alive n);
  (* An entry heavier than the whole budget is not cached at all. *)
  let big = W.add_node c 9 ~weight:1000 "huge" in
  check "oversized handle dead" false (W.alive big);
  check "oversized not stored" false (W.mem c 9);
  W.clear c;
  check_int "cleared" 0 (W.entry_count c)

(* --- record serialisation --- *)

let sample_ops =
  [
    Log_record.Insert_row { slot = 3; row = "abc" };
    Log_record.Delete_row { slot = 0; row = "" };
    Log_record.Update_row { slot = 7; before = "old"; after = "newer" };
    Log_record.Set_header { field = Log_record.Next_page; before = -1L; after = 12L };
    Log_record.Set_header { field = Log_record.Level; before = 0L; after = 1L };
    Log_record.Format { typ = Page.Btree; level = 2 };
    Log_record.Preformat { prev_image = String.make Page.page_size 'p' };
    Log_record.Full_image { image = String.make Page.page_size 'i' };
  ]

let sample_bodies =
  Log_record.Begin
  :: Log_record.Commit { wall_us = 123.5 }
  :: Log_record.Abort
  :: Log_record.End
  :: Log_record.Checkpoint
       {
         wall_us = 88.0;
         active_txns = [ (Txn_id.of_int 3, Lsn.of_int 17); (Txn_id.of_int 9, Lsn.of_int 44) ];
         dirty_pages = [ (Page_id.of_int 2, Lsn.of_int 5) ];
       }
  :: List.concat_map
       (fun op ->
         [
           Log_record.Page_op { page = Page_id.of_int 5; prev_page_lsn = Lsn.of_int 9; op };
           Log_record.Clr
             {
               page = Page_id.of_int 5;
               prev_page_lsn = Lsn.of_int 9;
               op;
               undo_next = Lsn.of_int 3;
             };
         ])
       sample_ops

let test_record_roundtrip () =
  List.iteri
    (fun i body ->
      let r = Log_record.make ~txn:(Txn_id.of_int i) ~prev_txn_lsn:(Lsn.of_int (i * 3)) body in
      let r' = Log_record.decode (Log_record.encode r) in
      if r <> r' then Alcotest.failf "roundtrip mismatch for %s" (Log_record.kind_name r))
    sample_bodies

(* The header peek must agree with a full decode on every record kind —
   the directory indexes (FPI, chains, checkpoints) are maintained from
   peeks alone. *)
let test_peek_matches_decode () =
  List.iteri
    (fun i body ->
      let r = Log_record.make ~txn:(Txn_id.of_int i) ~prev_txn_lsn:(Lsn.of_int (i * 5)) body in
      let pk = Log_record.peek (Log_record.encode r) in
      check "txn" true (pk.Log_record.p_txn = Txn_id.of_int i);
      check "prev txn lsn" true (Lsn.equal pk.Log_record.p_prev_txn_lsn (Lsn.of_int (i * 5)));
      match body with
      | Log_record.Page_op { page; prev_page_lsn; _ } | Log_record.Clr { page; prev_page_lsn; _ }
        ->
          check "page kind" true (Log_record.is_page_kind pk.Log_record.p_kind);
          check "page id" true (Page_id.equal pk.Log_record.p_page page);
          check "prev page lsn" true (Lsn.equal pk.Log_record.p_prev_page_lsn prev_page_lsn)
      | _ ->
          check "not a page kind" false (Log_record.is_page_kind pk.Log_record.p_kind);
          check "nil page" true (Page_id.equal pk.Log_record.p_page Page_id.nil))
    sample_bodies

let record_gen =
  let open QCheck.Gen in
  let op_gen =
    oneof
      [
        map2 (fun slot row -> Log_record.Insert_row { slot; row }) (0 -- 100) (string_size (0 -- 50));
        map2 (fun slot row -> Log_record.Delete_row { slot; row }) (0 -- 100) (string_size (0 -- 50));
        map3
          (fun slot before after -> Log_record.Update_row { slot; before; after })
          (0 -- 100) (string_size (0 -- 50)) (string_size (0 -- 50));
        map2
          (fun before after ->
            Log_record.Set_header { field = Log_record.Special; before; after })
          (map Int64.of_int int) (map Int64.of_int int);
      ]
  in
  let body_gen =
    oneof
      [
        return Log_record.Begin;
        map (fun w -> Log_record.Commit { wall_us = w }) (float_bound_inclusive 1e9);
        return Log_record.Abort;
        return Log_record.End;
        map2
          (fun page op ->
            Log_record.Page_op
              { page = Page_id.of_int page; prev_page_lsn = Lsn.of_int 7; op })
          (0 -- 10000) op_gen;
      ]
  in
  map2
    (fun txn body -> Log_record.make ~txn:(Txn_id.of_int txn) body)
    (0 -- 1000) body_gen

let record_roundtrip_prop =
  QCheck.Test.make ~name:"log record encode/decode roundtrip" ~count:500
    (QCheck.make record_gen) (fun r -> Log_record.decode (Log_record.encode r) = r)

let test_invert_involution () =
  List.iter
    (fun op ->
      match Log_record.invert op with
      | None -> ()
      | Some inv -> (
          match (op, Log_record.invert inv) with
          | Log_record.Format _, _ -> () (* format inversion is lossy by design *)
          | _, Some back ->
              if back <> op then Alcotest.fail "invert should be an involution"
          | _, None -> Alcotest.fail "inverse should be invertible"))
    sample_ops

(* Logical page content: slotted ops are not byte-exact inverses (free
   space bookkeeping differs after compaction), but queries only observe
   header fields and records — which must round-trip exactly. *)
let canonical p =
  ( Page.lsn p,
    Page.typ p,
    Page.level p,
    Page.prev_page p,
    Page.next_page p,
    Page.special p,
    List.init (Rw_storage.Slotted_page.count p) (fun i -> Rw_storage.Slotted_page.get p ~at:i) )

let test_redo_undo_inverse () =
  (* For content ops: redo then undo restores the page's logical content. *)
  let mk () =
    let p = Page.create ~id:(Page_id.of_int 5) ~typ:Page.Btree in
    Rw_storage.Slotted_page.insert p ~at:0 "row0";
    Rw_storage.Slotted_page.insert p ~at:1 "row1";
    p
  in
  let ops =
    [
      Log_record.Insert_row { slot = 1; row = "inserted" };
      Log_record.Delete_row { slot = 0; row = "row0" };
      Log_record.Update_row { slot = 1; before = "row1"; after = "replacement" };
      Log_record.Set_header { field = Log_record.Next_page; before = -1L; after = 7L };
    ]
  in
  List.iter
    (fun op ->
      let p = mk () in
      let orig = canonical p in
      Log_record.redo (Page_id.of_int 5) op p;
      check "redo changed page" true (canonical p <> orig);
      Log_record.undo op p;
      check "undo restores logical content" true (canonical p = orig))
    ops

(* --- log manager --- *)

let page_op ?(txn = Txn_id.nil) ?(prev = Lsn.nil) ?(pid = 3) op =
  Log_record.make ~txn (Log_record.Page_op { page = Page_id.of_int pid; prev_page_lsn = prev; op })

let test_append_read () =
  let _, log = mk_log () in
  let r1 = Log_record.make ~txn:(Txn_id.of_int 1) Log_record.Begin in
  let r2 = page_op (Log_record.Insert_row { slot = 0; row = "x" }) in
  let l1 = Log_manager.append log r1 in
  let l2 = Log_manager.append log r2 in
  check "lsns increase" true Lsn.(l2 > l1);
  check "read back 1" true (Log_manager.read log l1 = r1);
  check "read back 2" true (Log_manager.read log l2 = r2);
  check_int "record count" 2 (Log_manager.record_count log);
  check "next_lsn_after" true (Lsn.equal (Log_manager.next_lsn_after log l1) l2)

let test_lsn_is_offset () =
  let _, log = mk_log () in
  let r = Log_record.make Log_record.Begin in
  let l1 = Log_manager.append log r in
  let l2 = Log_manager.append log r in
  check_int "lsn delta equals record size" (String.length (Log_record.encode r))
    (Lsn.to_int l2 - Lsn.to_int l1)

let test_flush_crash () =
  let _, log = mk_log () in
  let l1 = Log_manager.append log (Log_record.make Log_record.Begin) in
  Log_manager.flush log ~upto:l1;
  let l2 = Log_manager.append log (Log_record.make Log_record.Abort) in
  check "l2 not durable" true Lsn.(Log_manager.flushed_lsn log <= l2);
  Log_manager.crash log;
  check "l1 survives" true (Log_manager.mem log l1);
  check "l2 lost" false (Log_manager.mem log l2);
  check "end lsn rolled back" true (Lsn.equal (Log_manager.end_lsn log) (Log_manager.flushed_lsn log))

let test_iter_range () =
  let _, log = mk_log () in
  let lsns =
    List.init 10 (fun i ->
        Log_manager.append log (Log_record.make ~txn:(Txn_id.of_int i) Log_record.Begin))
  in
  let seen = ref [] in
  Log_manager.iter_range log ~from:(List.nth lsns 2) ~upto:(List.nth lsns 7) (fun lsn _ ->
      seen := lsn :: !seen);
  check_int "range covers [2,7)" 5 (List.length !seen);
  let seen_rev = ref [] in
  Log_manager.iter_range_rev log ~from:(List.nth lsns 2) ~upto:(List.nth lsns 7) (fun lsn _ ->
      seen_rev := lsn :: !seen_rev);
  check "reverse order" true (!seen_rev = List.rev !seen)

let test_truncate () =
  let _, log = mk_log () in
  let lsns = List.init 10 (fun _ -> Log_manager.append log (Log_record.make Log_record.Begin)) in
  let cut = List.nth lsns 5 in
  Log_manager.truncate_before log cut;
  check "old gone" false (Log_manager.mem log (List.nth lsns 0));
  check "new kept" true (Log_manager.mem log (List.nth lsns 5));
  check "first_lsn moved" true (Lsn.equal (Log_manager.first_lsn log) cut);
  Alcotest.check_raises "reading truncated raises"
    (Log_manager.Log_truncated (List.nth lsns 0))
    (fun () -> ignore (Log_manager.read log (List.nth lsns 0)))

let test_cache_misses_cost () =
  let clock, log = mk_log ~media:Media.ssd ~cache_blocks:2 () in
  (* Write enough records to span many 64KiB blocks. *)
  let image = String.make Page.page_size 'i' in
  let lsns =
    List.init 64 (fun _ -> Log_manager.append log (page_op (Log_record.Full_image { image })))
  in
  Log_manager.flush_all log;
  let t0 = Sim_clock.now_us clock in
  let stats0 = Io_stats.copy (Log_manager.stats log) in
  (* Reading the oldest record must miss the tiny cache. *)
  ignore (Log_manager.read log (List.hd lsns));
  let d = Io_stats.diff (Log_manager.stats log) stats0 in
  check "cold read misses" true (d.Io_stats.random_reads >= 1);
  check "cold read costs time" true (Sim_clock.now_us clock > t0);
  (* Re-reading the same record now hits. *)
  let stats1 = Io_stats.copy (Log_manager.stats log) in
  ignore (Log_manager.read log (List.hd lsns));
  let d2 = Io_stats.diff (Log_manager.stats log) stats1 in
  check_int "warm read hits" 0 d2.Io_stats.random_reads

let test_fpi_directory () =
  let _, log = mk_log () in
  let image = String.make Page.page_size 'i' in
  let fpi pid = page_op ~pid (Log_record.Full_image { image }) in
  let other pid = page_op ~pid (Log_record.Insert_row { slot = 0; row = "r" }) in
  let _ = Log_manager.append log (other 1) in
  let f1 = Log_manager.append log (fpi 1) in
  let _ = Log_manager.append log (other 1) in
  let f2 = Log_manager.append log (fpi 1) in
  let _ = Log_manager.append log (fpi 2) in
  (match Log_manager.earliest_fpi_after log (Page_id.of_int 1) ~after:Lsn.nil with
  | Some l -> check "earliest is f1" true (Lsn.equal l f1)
  | None -> Alcotest.fail "expected fpi");
  (match Log_manager.earliest_fpi_after log (Page_id.of_int 1) ~after:f1 with
  | Some l -> check "after f1 is f2" true (Lsn.equal l f2)
  | None -> Alcotest.fail "expected fpi");
  check "after f2 none" true
    (Log_manager.earliest_fpi_after log (Page_id.of_int 1) ~after:f2 = None);
  check "unknown page none" true
    (Log_manager.earliest_fpi_after log (Page_id.of_int 99) ~after:Lsn.nil = None)

let test_checkpoints_before () =
  let _, log = mk_log () in
  let ckpt () =
    Log_manager.append log
      (Log_record.make (Log_record.Checkpoint { wall_us = 0.0; active_txns = []; dirty_pages = [] }))
  in
  let c1 = ckpt () in
  let _ = Log_manager.append log (Log_record.make Log_record.Begin) in
  let c2 = ckpt () in
  let cs = Log_manager.checkpoints_before log (Log_manager.end_lsn log) in
  check "two checkpoints newest first" true (cs = [ c2; c1 ]);
  let cs1 = Log_manager.checkpoints_before log c2 in
  check "bounded" true (cs1 = [ c2; c1 ] || cs1 = [ c1 ]);
  check "before c1 only c1" true (Log_manager.checkpoints_before log c1 = [ c1 ])

let test_truncate_prunes_indexes () =
  let _, log = mk_log () in
  let image = String.make Page.page_size 'i' in
  let ckpt () =
    Log_manager.append log
      (Log_record.make (Log_record.Checkpoint { wall_us = 0.0; active_txns = []; dirty_pages = [] }))
  in
  let f1 = Log_manager.append log (page_op ~pid:1 (Log_record.Full_image { image })) in
  let c1 = ckpt () in
  let c2 = ckpt () in
  let _f2 = Log_manager.append log (page_op ~pid:1 (Log_record.Full_image { image })) in
  Log_manager.truncate_before log c2;
  (* The truncated FPI and checkpoint must no longer be surfaced. *)
  (match Log_manager.earliest_fpi_after log (Page_id.of_int 1) ~after:Lsn.nil with
  | Some l -> check "first surviving fpi is after truncation" true Lsn.(l >= c2)
  | None -> Alcotest.fail "expected a surviving fpi lookup path");
  check "old checkpoint pruned" false
    (List.exists (Lsn.equal c1) (Log_manager.checkpoints_before log (Log_manager.end_lsn log)));
  check "old fpi unreadable" true
    (match Log_manager.read log f1 with
    | exception Log_manager.Log_truncated _ -> true
    | _ -> false)

let test_read_non_boundary () =
  let _, log = mk_log () in
  let l1 = Log_manager.append log (Log_record.make Log_record.Begin) in
  let _l2 = Log_manager.append log (Log_record.make Log_record.Begin) in
  let bad = Lsn.of_int (Lsn.to_int l1 + 1) in
  match Log_manager.read log bad with
  | exception Log_manager.No_such_record l ->
      Alcotest.check (module Lsn) "exception carries the lsn" bad l
  | _ -> Alcotest.fail "expected No_such_record for a mid-record lsn"

let test_total_bytes_accounting () =
  let _, log = mk_log () in
  let r = Log_record.make Log_record.Begin in
  let sz = String.length (Log_record.encode r) in
  for _ = 1 to 5 do
    ignore (Log_manager.append log r)
  done;
  check_int "total appended" (5 * sz) (Log_manager.total_appended_bytes log);
  check_int "retained" (5 * sz) (Log_manager.retained_bytes log)

(* --- chain index --- *)

let test_chain_segment () =
  let _, log = mk_log () in
  let track = Hashtbl.create 8 in
  let appended pid lsn =
    Hashtbl.replace track pid
      (lsn :: (match Hashtbl.find_opt track pid with Some l -> l | None -> []))
  in
  for i = 0 to 29 do
    let pid = 1 + (i mod 3) in
    let lsn = Log_manager.append log (page_op ~pid (Log_record.Insert_row { slot = 0; row = "r" })) in
    appended pid lsn;
    (* Interleave records that must not appear in any chain. *)
    if i mod 5 = 0 then ignore (Log_manager.append log (Log_record.make Log_record.Begin))
  done;
  let top = Log_manager.end_lsn log in
  List.iter
    (fun pid ->
      let expect = List.rev (Hashtbl.find track pid) in
      let seg = Log_manager.chain_segment log (Page_id.of_int pid) ~from:top ~down_to:Lsn.nil in
      check "segment equals appended chain" true (Array.to_list seg = expect))
    [ 1; 2; 3 ];
  (* Both bounds: down_to exclusive, from inclusive. *)
  (match List.rev (Hashtbl.find track 1) with
  | a :: b :: c :: _ ->
      let seg = Log_manager.chain_segment log (Page_id.of_int 1) ~from:c ~down_to:a in
      check "bounded segment" true (Array.to_list seg = [ b; c ])
  | _ -> Alcotest.fail "expected at least three records");
  check "unknown page empty" true
    (Log_manager.chain_segment log (Page_id.of_int 99) ~from:top ~down_to:Lsn.nil = [||]);
  (* pages_changed_since: nothing after the end, everything after nil. *)
  check_int "no page changed since top" 0 (List.length (Log_manager.pages_changed_since log ~since:top));
  check_int "all pages changed since nil" 3
    (List.length (Log_manager.pages_changed_since log ~since:Lsn.nil))

(* Truncation and crash must leave the FPI / chain / checkpoint indexes in
   exactly the state a from-scratch rebuild of the surviving records
   produces. *)
let indexes_agree_after_truncate_and_crash ?segment_bytes () =
  let _, log = mk_log ?segment_bytes () in
  let image = String.make Page.page_size 'i' in
  let lsns = ref [] in
  for i = 1 to 40 do
    let pid = 1 + (i mod 4) in
    lsns :=
      Log_manager.append log (page_op ~pid (Log_record.Insert_row { slot = 0; row = "r" }))
      :: !lsns;
    if i mod 7 = 0 then
      lsns := Log_manager.append log (page_op ~pid (Log_record.Full_image { image })) :: !lsns;
    if i mod 11 = 0 then
      lsns :=
        Log_manager.append log
          (Log_record.make
             (Log_record.Checkpoint { wall_us = 0.0; active_txns = []; dirty_pages = [] }))
        :: !lsns
  done;
  let all = List.rev !lsns in
  Log_manager.truncate_before log (List.nth all 12);
  Log_manager.flush_all log;
  (* A tail of unflushed records vanishes at the crash. *)
  for i = 0 to 5 do
    ignore (Log_manager.append log (page_op ~pid:(1 + (i mod 4)) (Log_record.Full_image { image })))
  done;
  Log_manager.crash log;
  let clock2 = Sim_clock.create () in
  let log2 = Log_manager.create ~clock:clock2 ~media:Media.ram ?segment_bytes () in
  Log_manager.restore_entries log2 (Log_manager.dump_entries log);
  let top = Log_manager.end_lsn log in
  check "same end lsn" true (Lsn.equal top (Log_manager.end_lsn log2));
  for pid = 1 to 4 do
    let p = Page_id.of_int pid in
    let seg l = Array.to_list (Log_manager.chain_segment l p ~from:top ~down_to:Lsn.nil) in
    check "chain index agrees with rebuild" true (seg log = seg log2);
    List.iter
      (fun after ->
        check "fpi directory agrees with rebuild" true
          (Log_manager.earliest_fpi_after log p ~after
          = Log_manager.earliest_fpi_after log2 p ~after))
      (Lsn.nil :: List.filteri (fun i _ -> i mod 9 = 0) all)
  done;
  check "checkpoint index agrees with rebuild" true
    (Log_manager.checkpoints_before log top = Log_manager.checkpoints_before log2 top)

let test_indexes_agree_after_truncate_and_crash () = indexes_agree_after_truncate_and_crash ()

(* The same invariant with 256-byte segments, so truncation drops whole
   segments, the crash rolls the tail back across segment boundaries, and
   the restore re-seals as it replays. *)
let test_indexes_agree_tiny_segments () =
  indexes_agree_after_truncate_and_crash ~segment_bytes:256 ()

(* --- segmented storage --- *)

(* Seal/spill lifecycle: appends land in a RAM tail, sealing prices one
   sequential write and evicts the payload from modeled residency, and
   reads of spilled history still work (and count as cold loads). *)
let test_segment_lifecycle () =
  (* Starved caches (two 256 B blocks, a 64 B record budget) so reads of
     spilled history actually fault blocks back in instead of being served
     from the decoded records the appends seeded. *)
  let clock, log =
    mk_log ~media:Media.ssd ~cache_blocks:2 ~block_bytes:256 ~record_cache_bytes:64
      ~segment_bytes:256 ()
  in
  let r = page_op (Log_record.Insert_row { slot = 0; row = String.make 40 'x' }) in
  let t0 = Sim_clock.now_us clock in
  let lsns = Array.init 64 (fun _ -> Log_manager.append log r) in
  let st = Log_manager.segment_stats log in
  check "history spans several segments" true (st.Log_manager.ss_live > 4);
  check_int "segment_count agrees" (Log_manager.segment_count log) st.Log_manager.ss_live;
  check "segments sealed" true (st.Log_manager.ss_sealed > 0);
  check_int "sealed segments spilled" st.Log_manager.ss_sealed st.Log_manager.ss_spilled;
  check "sealing priced as writes" true (Sim_clock.now_us clock > t0);
  check_int "seal threshold" 256 (Log_manager.segment_size log);
  (* Spilled payload left modeled RAM: residency is the tail plus index
     overhead, far below the appended volume's payload. *)
  check "resident excludes spilled payload" true
    (st.Log_manager.ss_payload_bytes < Log_manager.total_appended_bytes log);
  check_int "resident = payload + indexes"
    (st.Log_manager.ss_payload_bytes + st.Log_manager.ss_index_bytes)
    (Log_manager.resident_bytes log);
  Log_manager.flush_all log;
  (* Every record reads back across segment boundaries, single and batched. *)
  Array.iter (fun l -> check "read crosses segments" true (Log_manager.read log l = r)) lsns;
  let batch = Log_manager.read_segment log (Array.copy lsns) in
  check_int "batched read count" (Array.length lsns) (Array.length batch);
  Array.iter (fun r' -> check "batched read crosses segments" true (r' = r)) batch;
  let n = ref 0 in
  Log_manager.iter_range log ~from:lsns.(0) ~upto:(Log_manager.end_lsn log) (fun _ _ -> incr n);
  check_int "scan crosses segments" (Array.length lsns) !n;
  check "cold reads of spilled segments counted" true
    ((Log_manager.segment_stats log).Log_manager.ss_loaded > 0)

(* Regression: append must stay amortized O(1).  The pre-segmentation log
   rebuilt the LSN hashtable on every buffer growth, so a 4x record count
   cost ~16x the time; per-segment sorted offset arrays grow by doubling
   with no rebuild.  Wall-clock bound is deliberately loose (12x for 4x
   work, plus absolute slack) to stay robust against timer noise. *)
let append_wall_time n =
  let _, log = mk_log ~media:Media.ram () in
  let r = page_op (Log_record.Insert_row { slot = 0; row = String.make 64 'r' }) in
  let t0 = Sys.time () in
  for _ = 1 to n do
    ignore (Log_manager.append log r)
  done;
  Sys.time () -. t0

let test_append_amortized () =
  let best f = min (f ()) (f ()) in
  let t_small = best (fun () -> append_wall_time 50_000) in
  let t_large = best (fun () -> append_wall_time 200_000) in
  if t_large > (t_small *. 12.0) +. 0.05 then
    Alcotest.failf "append not amortized O(1): 50k took %.3fs, 200k took %.3fs" t_small t_large

(* Truncation must invalidate every cache layer: a dropped LSN raises
   Log_truncated even when its decoded record and its blocks were warm,
   and the record cache releases the dropped entries' budget. *)
let test_truncate_invalidates_caches () =
  let _, log = mk_log ~segment_bytes:128 () in
  let r = Log_record.make Log_record.Begin in
  let lsns = List.init 20 (fun _ -> Log_manager.append log r) in
  Log_manager.flush_all log;
  List.iter (fun l -> ignore (Log_manager.read log l)) lsns;
  let warm = Log_manager.record_cache_bytes log in
  let cut = List.nth lsns 10 in
  Log_manager.truncate_before log cut;
  check "dropped entries leave the record cache" true
    (Log_manager.record_cache_bytes log < warm);
  List.iteri
    (fun i l ->
      if i < 10 then
        Alcotest.check_raises "cached dropped lsn raises" (Log_manager.Log_truncated l)
          (fun () -> ignore (Log_manager.read log l))
      else check "retained lsn still reads" true (Log_manager.read log l = r))
    lsns

(* After a crash rolls the tail back, re-appended records reuse the same
   LSNs; reads must return the new records, never stale cached ones. *)
let test_crash_invalidates_caches () =
  let _, log = mk_log ~segment_bytes:128 () in
  let old_r = Log_record.make ~txn:(Txn_id.of_int 7) Log_record.Begin in
  let l0 = Log_manager.append log old_r in
  ignore (Log_manager.read log l0);
  (* warm the caches *)
  Log_manager.crash log;
  check "unflushed record gone" false (Log_manager.mem log l0);
  let new_r = Log_record.make ~txn:(Txn_id.of_int 8) Log_record.Begin in
  let l0' = Log_manager.append log new_r in
  check "crash recycles the lsn" true (Lsn.equal l0 l0');
  check "read returns the new record" true (Log_manager.read log l0' = new_r);
  check "peek returns the new record" true
    ((Log_manager.peek_record log l0').Log_record.p_txn = Txn_id.of_int 8)

(* --- decoded-record cache --- *)

let test_record_cache_counters () =
  let r = Log_record.make Log_record.Begin in
  let sz = String.length (Log_record.encode r) in
  let clock = Sim_clock.create () in
  (* Budget of exactly one record: every append/decode evicts the other. *)
  let log = Log_manager.create ~clock ~media:Media.ram ~record_cache_bytes:sz () in
  let l1 = Log_manager.append log r in
  let _l2 = Log_manager.append log r in
  (* Appending l2 seeded the cache with it, evicting l1. *)
  let s0 = Io_stats.copy (Log_manager.stats log) in
  ignore (Log_manager.read log l1);
  let d = Io_stats.diff (Log_manager.stats log) s0 in
  check_int "cold decode is a record miss" 1 d.Io_stats.log_record_misses;
  check_int "no record hit" 0 d.Io_stats.log_record_hits;
  check_int "occupancy is one record" sz (Log_manager.record_cache_bytes log);
  let s1 = Io_stats.copy (Log_manager.stats log) in
  ignore (Log_manager.read log l1);
  let d2 = Io_stats.diff (Log_manager.stats log) s1 in
  check_int "re-read is a record hit" 1 d2.Io_stats.log_record_hits;
  check_int "no second miss" 0 d2.Io_stats.log_record_misses

(* Scans reuse decoded records the appends just seeded into the cache (a
   hit per record, no misses counted), and never insert on their own: a
   scan over cold history must not evict the hot chain entries. *)
let test_scan_uses_cached_decodes () =
  let _, log = mk_log () in
  let n = 50 in
  let lsns =
    List.init n (fun i ->
        Log_manager.append log (Log_record.make ~txn:(Txn_id.of_int i) Log_record.Begin))
  in
  let occupancy = Log_manager.record_cache_bytes log in
  let s0 = Io_stats.copy (Log_manager.stats log) in
  Log_manager.iter_range log ~from:(List.hd lsns) ~upto:(Log_manager.end_lsn log) (fun _ _ -> ());
  let d = Io_stats.diff (Log_manager.stats log) s0 in
  check_int "every record was a cache hit" n d.Io_stats.log_record_hits;
  check_int "no record misses" 0 d.Io_stats.log_record_misses;
  check_int "scan did not grow the cache" occupancy (Log_manager.record_cache_bytes log);
  (* A reverse scan takes the same path. *)
  let s1 = Io_stats.copy (Log_manager.stats log) in
  Log_manager.iter_range_rev log ~from:(List.hd lsns) ~upto:(Log_manager.end_lsn log)
    (fun _ _ -> ());
  let d1 = Io_stats.diff (Log_manager.stats log) s1 in
  check_int "reverse scan hits too" n d1.Io_stats.log_record_hits;
  check_int "reverse scan misses nothing" 0 d1.Io_stats.log_record_misses

(* --- prefetch --- *)

let test_prefetch_sequentialises () =
  let _, log = mk_log ~media:Media.ssd ~cache_blocks:4 () in
  let image = String.make Page.page_size 'i' in
  let lsns =
    List.init 64 (fun _ -> Log_manager.append log (page_op (Log_record.Full_image { image })))
  in
  Log_manager.flush_all log;
  (* The tiny cache only retains the newest blocks; prefetching the whole
     ascending range must price the run as one seek plus sequential reads,
     not one random read per block. *)
  let s0 = Io_stats.copy (Log_manager.stats log) in
  Log_manager.prefetch log lsns;
  let d = Io_stats.diff (Log_manager.stats log) s0 in
  check_int "one seek for the contiguous run" 1 d.Io_stats.random_reads;
  check "rest of the run is sequential" true (d.Io_stats.seq_read_bytes > 0);
  (* The run's tail is now cached: reading the newest record costs nothing. *)
  let s1 = Io_stats.copy (Log_manager.stats log) in
  ignore (Log_manager.read log (List.nth lsns 63));
  let d2 = Io_stats.diff (Log_manager.stats log) s1 in
  check_int "prefetched read is free" 0 d2.Io_stats.random_reads;
  (* Unknown LSNs are ignored, not errors. *)
  Log_manager.prefetch log [ Lsn.of_int 99999999 ]

(* --- txn write-set summaries: rebuild vs the retention boundary --- *)

(* A tail-drop event voids the txn index; the rebuild scan must apply the
   same boundary rule as incremental truncation and exclude a committed
   transaction whose chain crosses [truncated_below], instead of
   resurfacing it with an understated write set.  [txn_resolution] must
   likewise distinguish in-flight from resolved transactions. *)
let test_txn_index_rebuild_boundary () =
  let _, log = mk_log () in
  let t1 = Txn_id.of_int 1 and t2 = Txn_id.of_int 2 and t3 = Txn_id.of_int 3 in
  let app r = Log_manager.append log r in
  let ins = Log_record.Insert_row { slot = 0; row = "x" } in
  let pop ~txn ~prev_txn pid =
    app (Log_record.make ~txn ~prev_txn_lsn:prev_txn
           (Log_record.Page_op { page = Page_id.of_int pid; prev_page_lsn = Lsn.nil; op = ins }))
  in
  (* T1 writes pages 3 and 4, commits; T2 writes page 5, commits; T3 is
     left open (no commit, no abort). *)
  let b1 = app (Log_record.make ~txn:t1 Log_record.Begin) in
  let o1a = pop ~txn:t1 ~prev_txn:b1 3 in
  let o1b = pop ~txn:t1 ~prev_txn:o1a 4 in
  ignore (app (Log_record.make ~txn:t1 ~prev_txn_lsn:o1b (Log_record.Commit { wall_us = 1.0 })));
  let b2 = app (Log_record.make ~txn:t2 Log_record.Begin) in
  let o2 = pop ~txn:t2 ~prev_txn:b2 5 in
  ignore (app (Log_record.make ~txn:t2 ~prev_txn_lsn:o2 (Log_record.Commit { wall_us = 2.0 })));
  let b3 = app (Log_record.make ~txn:t3 Log_record.Begin) in
  ignore (pop ~txn:t3 ~prev_txn:b3 6);
  Log_manager.flush_all log;
  check "t3 is in flight" true (Log_manager.txn_resolution log t3 = `Active);
  (* Crash (nothing unflushed, so no records drop) voids the index;
     then retention cuts T1's chain in half. *)
  Log_manager.crash log;
  check "index voided by the crash" true (not (Log_manager.txn_index_live log));
  Log_manager.truncate_before log o1b;
  let summaries = Log_manager.txn_summaries log in
  check "rebuild ran" true (Log_manager.txn_index_live log);
  check "straddling T1 is excluded from the rebuilt index" true
    (not (List.exists (fun s -> Txn_id.equal s.Log_manager.ts_txn t1) summaries));
  check "T1 resolves as unknown, not as committed-with-partial-writes" true
    (Log_manager.txn_resolution log t1 = `Unknown);
  (match List.find_opt (fun s -> Txn_id.equal s.Log_manager.ts_txn t2) summaries with
  | Some s -> check_int "fully retained T2 keeps its whole write set" 1
      (List.length s.Log_manager.ts_writes)
  | None -> Alcotest.fail "T2 missing from the rebuilt index");
  check "open T3 still resolves as in flight after the rebuild" true
    (Log_manager.txn_resolution log t3 = `Active)

let () =
  Alcotest.run "wal"
    [
      ("codec", [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip ]);
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru;
          Alcotest.test_case "weighted budget + handles" `Quick test_weighted_lru;
        ] );
      ( "records",
        [
          Alcotest.test_case "all kinds roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "peek agrees with decode" `Quick test_peek_matches_decode;
          QCheck_alcotest.to_alcotest record_roundtrip_prop;
          Alcotest.test_case "invert involution" `Quick test_invert_involution;
          Alcotest.test_case "redo/undo inverse" `Quick test_redo_undo_inverse;
        ] );
      ( "log_manager",
        [
          Alcotest.test_case "append and read" `Quick test_append_read;
          Alcotest.test_case "lsn = offset" `Quick test_lsn_is_offset;
          Alcotest.test_case "flush and crash" `Quick test_flush_crash;
          Alcotest.test_case "range iteration" `Quick test_iter_range;
          Alcotest.test_case "truncation" `Quick test_truncate;
          Alcotest.test_case "block cache costs" `Quick test_cache_misses_cost;
          Alcotest.test_case "fpi directory" `Quick test_fpi_directory;
          Alcotest.test_case "checkpoint index" `Quick test_checkpoints_before;
          Alcotest.test_case "truncation prunes indexes" `Quick test_truncate_prunes_indexes;
          Alcotest.test_case "mid-record lsn rejected" `Quick test_read_non_boundary;
          Alcotest.test_case "byte accounting" `Quick test_total_bytes_accounting;
          Alcotest.test_case "chain segments" `Quick test_chain_segment;
          Alcotest.test_case "segment lifecycle" `Quick test_segment_lifecycle;
          Alcotest.test_case "append amortized O(1)" `Quick test_append_amortized;
          Alcotest.test_case "truncate invalidates caches" `Quick test_truncate_invalidates_caches;
          Alcotest.test_case "crash invalidates caches" `Quick test_crash_invalidates_caches;
          Alcotest.test_case "indexes agree with rebuild (tiny segments)" `Quick
            test_indexes_agree_tiny_segments;
          Alcotest.test_case "indexes agree with rebuild" `Quick
            test_indexes_agree_after_truncate_and_crash;
          Alcotest.test_case "record cache counters" `Quick test_record_cache_counters;
          Alcotest.test_case "scans use cached decodes" `Quick test_scan_uses_cached_decodes;
          Alcotest.test_case "prefetch sequentialises" `Quick test_prefetch_sequentialises;
          Alcotest.test_case "txn index rebuild honours the retention boundary" `Quick
            test_txn_index_rebuild_boundary;
        ] );
    ]
