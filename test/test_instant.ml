(* Instant restart tests: open-after-analysis, first-touch recovery,
   background sweeping, checkpoint barriers, and domain-parallel redo
   equivalence with sequential replay. *)

module Lsn = Rw_storage.Lsn
module Media = Rw_storage.Media
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Disk = Rw_storage.Disk
module Sim_clock = Rw_storage.Sim_clock
module Log_manager = Rw_wal.Log_manager
module Recovery = Rw_recovery.Recovery
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Schema = Rw_catalog.Schema
module Session_manager = Rw_session.Session_manager
module Metrics = Rw_obs.Metrics
module Probes = Rw_obs.Probes
module Experiments = Rw_workload.Experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [ { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text } ]

let mk_db ?(name = "inst") ?redo_domains () =
  let clock = Sim_clock.create () in
  Database.create ~name ~clock ~media:Media.ram ?redo_domains ()

let seed db n =
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to n do
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "v%d" i) ]
      done)

let churn db rounds =
  for r = 1 to rounds do
    Database.with_txn db (fun txn ->
        for i = 1 to 40 do
          Database.update db txn ~table:"t"
            [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "r%d-%d" r i) ]
        done)
  done

let rows db =
  let acc = ref [] in
  Database.scan db ~table:"t" ~f:(fun r -> acc := r :: !acc);
  List.rev !acc

(* Leave one transaction in flight, durably logged but uncommitted. *)
let straggle db =
  let txn = Database.begin_txn db in
  Database.insert db txn ~table:"t" [ Row.Int 999_999L; Row.Text "loser" ];
  Database.delete db txn ~table:"t" ~key:7L;
  Log_manager.flush_all (Database.log db)

let test_instant_basics () =
  let db = mk_db () in
  seed db 60;
  churn db 3;
  let before = rows db in
  straggle db;
  let db = Database.crash_and_reopen ~instant:true db in
  check "backlog outstanding at open" true (Database.recovery_backlog db > 0);
  (* Queries during the backlog go through first-touch recovery. *)
  check "loser insert invisible during backlog" true
    (Database.get db ~table:"t" ~key:999_999L = None);
  check "loser delete undone during backlog" true (Database.get db ~table:"t" ~key:7L <> None);
  check "committed rows all visible during backlog" true (rows db = before);
  Database.recovery_drain_all db;
  check_int "backlog drained" 0 (Database.recovery_backlog db);
  check "state intact after drain" true (rows db = before);
  match Database.last_recovery_stats db with
  | None -> Alcotest.fail "expected recovery stats"
  | Some s ->
      check "ttfq stamped" true (s.Recovery.time_to_first_query_us > 0.0);
      check "ttfr stamped" true (s.Recovery.time_to_full_recovery_us > 0.0);
      check "ttfq <= ttfr" true
        (s.Recovery.time_to_first_query_us <= s.Recovery.time_to_full_recovery_us)

let test_on_demand_counter () =
  let db = mk_db () in
  seed db 40;
  churn db 2;
  straggle db;
  let db = Database.crash_and_reopen ~instant:true db in
  let before = Metrics.counter_value Probes.recovery_pages_on_demand in
  ignore (Database.get db ~table:"t" ~key:1L);
  check "first touch counted as on-demand" true
    (Metrics.counter_value Probes.recovery_pages_on_demand > before);
  (* Background draining must not count as on-demand. *)
  let mid = Metrics.counter_value Probes.recovery_pages_on_demand in
  Database.recovery_drain_all db;
  check_int "drain not counted as on-demand" mid
    (Metrics.counter_value Probes.recovery_pages_on_demand)

let test_matches_full_replay_twin () =
  let mk () =
    let db = mk_db () in
    seed db 80;
    churn db 4;
    straggle db;
    db
  in
  let full = Database.crash_and_reopen (mk ()) in
  let inst = Database.crash_and_reopen ~instant:true (mk ()) in
  check "twin backlog outstanding" true (Database.recovery_backlog inst > 0);
  (* Spot reads during the backlog agree with the fully recovered twin. *)
  List.iter
    (fun k ->
      check
        (Printf.sprintf "key %Ld agrees during backlog" k)
        true
        (Database.get inst ~table:"t" ~key:k = Database.get full ~table:"t" ~key:k))
    [ 1L; 7L; 40L; 80L; 999_999L ];
  Database.recovery_drain_all inst;
  check "full table agrees after drain" true (rows inst = rows full)

let test_recrash_mid_backlog () =
  let db = mk_db () in
  seed db 60;
  churn db 3;
  let before = rows db in
  straggle db;
  let db = Database.crash_and_reopen ~instant:true db in
  check "backlog outstanding" true (Database.recovery_backlog db > 0);
  (* Touch a little of it, then crash again before the drain finishes. *)
  ignore (Database.get db ~table:"t" ~key:1L);
  ignore (Database.recovery_drain_step ~max_pages:2 db);
  let db = Database.crash_and_reopen db in
  check "full replay after mid-backlog crash is complete" true (rows db = before);
  check "loser still gone after re-crash" true (Database.get db ~table:"t" ~key:999_999L = None)

let test_sweeper_drains_backlog () =
  let db = mk_db () in
  seed db 60;
  churn db 3;
  let before = rows db in
  straggle db;
  let db = Database.crash_and_reopen ~instant:true db in
  check "backlog outstanding" true (Database.recovery_backlog db > 0);
  let mgr = Session_manager.create db in
  (* An idle writer: the sweeper alone must retire the backlog. *)
  let s = Session_manager.open_writer mgr ~name:"idle" ~step:(fun _ -> ()) in
  Session_manager.run mgr ~rounds:200;
  Session_manager.close mgr s;
  check_int "sweeper drained backlog" 0 (Database.recovery_backlog db);
  check "state intact after sweep" true (rows db = before)

let test_checkpoint_drains_backlog () =
  let db = mk_db () in
  seed db 60;
  churn db 3;
  straggle db;
  let db = Database.crash_and_reopen ~instant:true db in
  check "backlog outstanding" true (Database.recovery_backlog db > 0);
  ignore (Database.checkpoint db);
  check_int "checkpoint drained backlog first" 0 (Database.recovery_backlog db)

(* Per-page header fingerprint of everything on the data device: after a
   full-replay reopen (which checkpoints, flushing every recovered page)
   any divergence between sequential and parallel redo shows up here. *)
let disk_fingerprint db =
  let disk = Database.disk db in
  let acc = ref [] in
  for i = 0 to Disk.page_count disk - 1 do
    let pid = Page_id.of_int i in
    if Disk.has_page disk pid then begin
      let p = Disk.read_page_nocost disk pid in
      acc := (i, Page.lsn p, Page.slot_count p, Page.data_low p, Page.garbage p) :: !acc
    end
  done;
  List.rev !acc

let test_parallel_redo_equals_sequential () =
  let run domains =
    let db = mk_db ~name:(Printf.sprintf "dom%d" domains) () in
    seed db 80;
    churn db 4;
    straggle db;
    let db = Database.crash_and_reopen ~redo_domains:domains db in
    let stats = Option.get (Database.last_recovery_stats db) in
    (rows db, disk_fingerprint db, stats.Recovery.redone_ops)
  in
  (* Force true cross-domain execution even on a 1-core host (the default
     cap would fold the partitions onto the calling domain there). *)
  Recovery.set_redo_fanout (Some 4);
  Fun.protect
    ~finally:(fun () -> Recovery.set_redo_fanout None)
    (fun () ->
      let rows1, fp1, redone1 = run 1 in
      List.iter
        (fun domains ->
          let rowsn, fpn, redonen = run domains in
          check (Printf.sprintf "%d-domain rows equal sequential" domains) true (rowsn = rows1);
          check
            (Printf.sprintf "%d-domain disk pages equal sequential" domains)
            true (fpn = fp1);
          check_int
            (Printf.sprintf "%d-domain redone_ops equal sequential" domains)
            redone1 redonen)
        [ 2; 4 ];
      (* And under the default core-count cap (partitions folded or not,
         the result must be the same). *)
      Recovery.set_redo_fanout None;
      let rows4, fp4, redone4 = run 4 in
      check "capped 4-domain rows equal sequential" true (rows4 = rows1);
      check "capped 4-domain disk pages equal sequential" true (fp4 = fp1);
      check_int "capped 4-domain redone_ops equal sequential" redone1 redone4)

let test_parallel_partitions_counted () =
  let db = mk_db () in
  seed db 80;
  churn db 4;
  let before = Metrics.counter_value Probes.recovery_redo_partitions in
  let db = Database.crash_and_reopen ~redo_domains:4 db in
  check "redo partitions recorded" true
    (Metrics.counter_value Probes.recovery_redo_partitions > before);
  check_int "eighty rows" 80 (List.length (rows db))

let test_instant_fault_campaign () =
  let fault_rows =
    Experiments.crash_repair_campaign ~instant:true ~seeds:[ 11 ] ~crash_points:3 ~quick:true ()
  in
  check "campaign produced rows" true (fault_rows <> []);
  List.iter
    (fun r ->
      check
        (Printf.sprintf "instant crash-repair ok (seed %d, crash_after %d)" r.Experiments.fr_seed
           r.Experiments.fr_crash_after)
        true (Experiments.fault_row_ok r))
    fault_rows

let () =
  Alcotest.run "instant"
    [
      ( "instant-restart",
        [
          Alcotest.test_case "open after analysis, query during backlog" `Quick
            test_instant_basics;
          Alcotest.test_case "on-demand counter semantics" `Quick test_on_demand_counter;
          Alcotest.test_case "agrees with full-replay twin" `Quick test_matches_full_replay_twin;
          Alcotest.test_case "re-crash mid-backlog recovers cleanly" `Quick
            test_recrash_mid_backlog;
          Alcotest.test_case "session-manager sweeper drains backlog" `Quick
            test_sweeper_drains_backlog;
          Alcotest.test_case "checkpoint drains backlog first" `Quick
            test_checkpoint_drains_backlog;
        ] );
      ( "parallel-redo",
        [
          Alcotest.test_case "2/4 domains byte-equal to sequential" `Quick
            test_parallel_redo_equals_sequential;
          Alcotest.test_case "partition counter recorded" `Quick test_parallel_partitions_counted;
        ] );
      ( "fault-campaign",
        [ Alcotest.test_case "instant crash-repair campaign" `Slow test_instant_fault_campaign ] );
    ]
