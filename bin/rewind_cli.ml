(* rewind_cli — interactive SQL shell over the rewinddb engine.

   Subcommands:
     repl   interactive shell (default)           rewind_cli repl --media sas
     exec   run a SQL script from a file or -e    rewind_cli exec -e "CREATE DATABASE d"
     demo   load a TPC-C-like database and open a shell against it

   The engine is in-memory and simulated: a fresh process starts empty.
   Time can be advanced from the shell with the \advance meta-command so
   as-of snapshots have a past to rewind to. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Engine = Rw_engine.Engine
module Executor = Rw_sql.Executor
module Tpcc = Rw_workload.Tpcc
module Trace = Rw_obs.Trace
module Metrics = Rw_obs.Metrics

let media_of_string = function
  | "ssd" -> Ok Media.ssd
  | "sas" -> Ok Media.sas
  | "ram" -> Ok Media.ram
  | s -> Error (`Msg (Printf.sprintf "unknown media %S (expected ssd, sas or ram)" s))

let print_result r = Format.printf "%a@." Executor.pp_result r

(* Live replication state for the shell's \repl meta-command: at most one
   replica per attached database, keyed by primary name. *)
let replicas : (string, Rw_repl.Replica.t * Rw_repl.Shipper.t) Hashtbl.t = Hashtbl.create 4

let repl_command eng db name args =
  let module Shipper = Rw_repl.Shipper in
  let module Replica = Rw_repl.Replica in
  let status (r, sh) =
    let state =
      match Shipper.state sh with
      | Shipper.Caught_up -> "caught-up"
      | Shipper.Lagging -> "lagging"
      | Shipper.Disconnected -> "disconnected"
    in
    Printf.printf
      "replica of %-12s %s | lag %d segment(s) | shipped %d unit(s), %d KiB | retries %d | \
       replica lsn %d, applied through %.6f s\n\
       %!"
      name state (Shipper.lag_segments sh) (Shipper.shipped_segments sh)
      (Shipper.shipped_bytes sh / 1024)
      (Shipper.retries sh)
      (Rw_storage.Lsn.to_int (Replica.next_lsn r))
      (Replica.applied_wall_us r /. 1_000_000.0)
  in
  match (args, Hashtbl.find_opt replicas name) with
  | [ "attach" ], Some _ -> Printf.printf "%s already has a replica (\\repl detach first)\n%!" name
  | [ "attach" ], None ->
      let r = Replica.of_primary ~name:(name ^ "_replica") db in
      let channel = Rw_repl.Channel.create ~clock:(Engine.clock eng) () in
      let sh = Shipper.attach ~primary:db ~replica:r ~channel () in
      Hashtbl.replace replicas name (r, sh);
      Printf.printf
        "attached replica of %s (retention now floors at its ship horizon); \\repl ship to pump\n\
         %!"
        name
  | [ "ship" ], Some (r, sh) ->
      Shipper.catch_up sh;
      status (r, sh)
  | [ "status" ], Some p -> status p
  | [ "detach" ], Some (_, sh) ->
      Shipper.detach sh;
      Hashtbl.remove replicas name;
      Printf.printf "detached (ship-horizon retention floor released)\n%!"
  | ([ "ship" ] | [ "status" ] | [ "detach" ]), None ->
      Printf.printf "no replica attached to %s (\\repl attach)\n%!" name
  | _ -> Printf.printf "usage: \\repl attach|ship|status|detach\n%!"

let run_statement session stmt =
  match Executor.run session stmt with
  | r -> print_result r
  | exception Executor.Sql_error msg -> Printf.printf "ERROR: %s\n%!" msg
  | exception Rw_sql.Parser.Parse_error msg -> Printf.printf "parse error: %s\n%!" msg
  | exception Rw_sql.Lexer.Lex_error msg -> Printf.printf "lex error: %s\n%!" msg

let meta_command session eng line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] | [ "\\quit" ] -> `Quit
  | [ "\\t" ] | [ "\\time" ] ->
      Printf.printf "simulated time: %.6f s\n%!" (Engine.now_s eng);
      `Continue
  | [ "\\save"; path ] -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db ->
              (try
                 Rw_engine.Database.save db ~path;
                 Printf.printf "saved %s to %s\n%!" name path
               with e -> Printf.printf "save failed: %s\n%!" (Printexc.to_string e));
              `Continue
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | [ "\\load"; path ] ->
      (try
         let db =
           Rw_engine.Database.load ~clock:(Engine.clock eng) ~media:Media.ssd ~path ()
         in
         ignore (Engine.attach_database eng db);
         Printf.printf "loaded database %s (USE %s to select it)\n%!"
           (Rw_engine.Database.name db) (Rw_engine.Database.name db)
       with e -> Printf.printf "load failed: %s\n%!" (Printexc.to_string e));
      `Continue
  | [ "\\iostats" ] -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db ->
              let disk_io = Rw_storage.Disk.stats (Rw_engine.Database.disk db) in
              let log_io = Rw_wal.Log_manager.stats (Rw_engine.Database.log db) in
              Printf.printf "data : %s\n" (Format.asprintf "%a" Rw_storage.Io_stats.pp disk_io);
              Printf.printf "log  : %s\n" (Format.asprintf "%a" Rw_storage.Io_stats.pp log_io);
              Printf.printf "write: %s  (pending commits: %d)\n"
                (Format.asprintf "%a" Rw_storage.Io_stats.pp_writes log_io)
                (Rw_engine.Database.pending_commits db);
              Printf.printf "cache: %s\n"
                (Format.asprintf "%a" Rw_storage.Io_stats.pp_caches log_io);
              Printf.printf "fault: data %s | log %s\n%!"
                (Format.asprintf "%a" Rw_storage.Io_stats.pp_faults disk_io)
                (Format.asprintf "%a" Rw_storage.Io_stats.pp_faults log_io);
              `Continue
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | [ "\\log" ] -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db ->
              let log = Rw_engine.Database.log db in
              let ss = Rw_wal.Log_manager.segment_stats log in
              Printf.printf "segments : %d live (%d KiB each) | sealed %d, spilled %d, dropped %d\n"
                ss.Rw_wal.Log_manager.ss_live
                (ss.Rw_wal.Log_manager.ss_segment_bytes / 1024)
                ss.Rw_wal.Log_manager.ss_sealed ss.Rw_wal.Log_manager.ss_spilled
                ss.Rw_wal.Log_manager.ss_dropped;
              Printf.printf "resident : %d KiB (tail payload %d KiB + index %d KiB)\n"
                (ss.Rw_wal.Log_manager.ss_resident_bytes / 1024)
                (ss.Rw_wal.Log_manager.ss_payload_bytes / 1024)
                (ss.Rw_wal.Log_manager.ss_index_bytes / 1024);
              Printf.printf "cold I/O : %d block loads from spilled segments\n"
                ss.Rw_wal.Log_manager.ss_loaded;
              Printf.printf "volume   : appended %d KiB total, retained %d KiB (lsn %d..%d)\n%!"
                (Rw_wal.Log_manager.total_appended_bytes log / 1024)
                (Rw_wal.Log_manager.retained_bytes log / 1024)
                (Rw_storage.Lsn.to_int (Rw_wal.Log_manager.first_lsn log))
                (Rw_storage.Lsn.to_int (Rw_wal.Log_manager.end_lsn log));
              `Continue
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | [ "\\sessions" ] ->
      (* One row per attached database: primaries are writer sessions, as-of
         snapshots are reader sessions pinned to their SplitLSN.  Primaries
         also report their shared prepared-page cache. *)
      List.iter
        (fun name ->
          match Engine.find_database eng name with
          | None -> ()
          | Some db -> (
              match Rw_engine.Database.snapshot_handle db with
              | Some snap ->
                  Printf.printf
                    "%-16s reader  split-lsn %-8d pages materialised %-6d side-file hits %d\n"
                    name
                    (Rw_storage.Lsn.to_int (Rw_core.As_of_snapshot.split_lsn snap))
                    (Rw_core.As_of_snapshot.pages_materialised snap)
                    (Rw_core.As_of_snapshot.side_file_hits snap)
              | None ->
                  let cache = Rw_engine.Database.prepared_cache db in
                  Printf.printf "%-16s writer  end-lsn   %-8d active txns %d\n" name
                    (Rw_storage.Lsn.to_int
                       (Rw_wal.Log_manager.end_lsn (Rw_engine.Database.log db)))
                    (Rw_txn.Txn_manager.active_count (Rw_engine.Database.txn_manager db));
                  Printf.printf
                    "%-16s         prepared-page cache: %d entries, %d hits (%d delta), %d \
                     misses, %d invalidated, hit rate %.0f%%\n"
                    "" (Rw_core.Prepared_cache.entries cache)
                    (Rw_core.Prepared_cache.hits cache)
                    (Rw_core.Prepared_cache.delta_hits cache)
                    (Rw_core.Prepared_cache.misses cache)
                    (Rw_core.Prepared_cache.invalidations cache)
                    (Rw_core.Prepared_cache.hit_rate cache *. 100.0)))
        (Engine.database_names eng);
      Printf.printf "%!";
      `Continue
  | [ "\\faults" ] -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db ->
              let disk_io = Rw_storage.Disk.stats (Rw_engine.Database.disk db) in
              let log_io = Rw_wal.Log_manager.stats (Rw_engine.Database.log db) in
              Printf.printf "data : %s\n"
                (Format.asprintf "%a" Rw_storage.Io_stats.pp_faults disk_io);
              Printf.printf "log  : %s\n"
                (Format.asprintf "%a" Rw_storage.Io_stats.pp_faults log_io);
              (match Rw_engine.Database.fault_plan db with
              | Some plan -> Printf.printf "plan : seed %d\n" (Rw_storage.Fault_plan.seed plan)
              | None -> Printf.printf "plan : none (no fault injection)\n");
              (match Rw_engine.Database.quarantined_pages db with
              | [] -> Printf.printf "quarantine: empty\n%!"
              | pages ->
                  Printf.printf "quarantine: %d page(s)\n" (List.length pages);
                  List.iter
                    (fun (pid, reason) ->
                      Printf.printf "  page %d: %s\n" (Rw_storage.Page_id.to_int pid) reason)
                    pages;
                  Printf.printf "%!");
              `Continue
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | [ "\\recovery" ] -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db ->
              let backlog = Rw_engine.Database.recovery_backlog db in
              (match Rw_engine.Database.last_recovery_stats db with
              | None -> Printf.printf "recovery : never run (clean start)\n"
              | Some s ->
                  if backlog > 0 then
                    Printf.printf "recovery : instant restart, %d page(s) still in the backlog\n"
                      backlog
                  else Printf.printf "recovery : fully recovered\n";
                  Printf.printf "analysis : %.0f us (%d records scanned)\n"
                    s.Rw_recovery.Recovery.analysis_us
                    s.Rw_recovery.Recovery.analysis.Rw_recovery.Recovery.records_scanned;
                  Printf.printf "ttfq     : %.0f us to first query\n"
                    s.Rw_recovery.Recovery.time_to_first_query_us;
                  if s.Rw_recovery.Recovery.time_to_full_recovery_us > 0.0 then
                    Printf.printf "ttfr     : %.0f us to full recovery\n"
                      s.Rw_recovery.Recovery.time_to_full_recovery_us
                  else Printf.printf "ttfr     : pending (backlog draining)\n";
                  Printf.printf "work     : %d redone, %d undone, %d losers ended\n"
                    s.Rw_recovery.Recovery.redone_ops s.Rw_recovery.Recovery.undone_ops
                    s.Rw_recovery.Recovery.ended_losers;
                  match s.Rw_recovery.Recovery.tail_truncated with
                  | Some (lsn, dropped) ->
                      Printf.printf "tail     : torn, truncated at lsn %d (%d record(s) dropped)\n"
                        (Rw_storage.Lsn.to_int lsn) dropped
                  | None -> Printf.printf "tail     : clean\n");
              Printf.printf "on-demand: %d page(s) recovered on first touch (process-wide)\n%!"
                (Metrics.counter_value Rw_obs.Probes.recovery_pages_on_demand);
              `Continue
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | [ "\\pool" ] ->
      (* The shared domain pool behind partition-parallel redo, batched
         snapshot rewinds and the scrub sweep. *)
      let cap = Rw_pool.Domain_pool.fanout_cap () in
      Printf.printf "fanout cap      : %d%s\n" cap
        (if cap = Domain.recommended_domain_count () then " (default clamp)" else " (override)");
      Printf.printf "workers parked  : %d\n" (Rw_pool.Domain_pool.spawned_workers ());
      Printf.printf "pool.tasks      : %d participant slot(s) executed\n"
        (Metrics.counter_value Rw_obs.Probes.pool_tasks);
      Printf.printf "pool.wakes      : %d worker wake(s)\n"
        (Metrics.counter_value Rw_obs.Probes.pool_wakes);
      Printf.printf "parallel rewinds: %d page(s) through the staged batch pipeline\n%!"
        (Metrics.counter_value Rw_obs.Probes.snapshot_parallel_pages);
      `Continue
  | [ "\\advance"; n ] -> (
      match float_of_string_opt n with
      | Some sec when sec >= 0.0 ->
          Sim_clock.advance_us (Engine.clock eng) (sec *. 1_000_000.0);
          Printf.printf "advanced to %.6f s\n%!" (Engine.now_s eng);
          `Continue
      | _ ->
          Printf.printf "usage: \\advance <seconds>\n%!";
          `Continue)
  | "\\trace" :: args ->
      (match args with
      | [ "on" ] ->
          Trace.enable ();
          Printf.printf "trace collection on (%d events buffered)\n%!"
            (List.length (Trace.events ()))
      | [ "off" ] ->
          Trace.disable ();
          Printf.printf "trace collection off\n%!"
      | [ "clear" ] ->
          Trace.clear ();
          Printf.printf "trace buffer cleared\n%!"
      | [ "dump"; path ] ->
          Trace.dump ~path;
          Printf.printf "wrote %d events to %s (open in https://ui.perfetto.dev)\n%!"
            (List.length (Trace.events ()))
            path
      | [] | [ "status" ] ->
          Printf.printf "trace %s: %d events buffered, %d dropped\n%!"
            (if Trace.on () then "on" else "off")
            (List.length (Trace.events ()))
            (Trace.dropped ())
      | _ -> Printf.printf "usage: \\trace [on|off|status|clear|dump <path>]\n%!");
      `Continue
  | "\\metrics" :: args ->
      (match args with
      | [ "json" ] -> print_string (Metrics.to_json ())
      | [] -> Format.printf "%a%!" (fun fmt () -> Metrics.pp fmt ()) ()
      | _ -> Printf.printf "usage: \\metrics [json]\n%!");
      `Continue
  | "\\repl" :: args -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db ->
              (if Rw_engine.Database.snapshot_handle db <> None then
                 Printf.printf "%s is a read-only snapshot; replicate its primary instead\n%!"
                   name
               else repl_command eng db name args);
              `Continue
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | "\\explain" :: rest when rest <> [] ->
      run_statement session ("EXPLAIN " ^ String.concat " " rest);
      `Continue
  | "\\whatif" :: args -> (
      match Executor.current_database session with
      | None ->
          Printf.printf "no database selected (USE <db>)\n%!";
          `Continue
      | Some name -> (
          match Engine.find_database eng name with
          | Some db -> (
              let log = Rw_engine.Database.log db in
              let graph = Rw_whatif.Dep_graph.build ~log in
              match args with
              | [] ->
                  Printf.printf
                    "dependency graph: %d committed transactions, %d edges (%s)\n\
                     usage: \\whatif <txn-id> for one transaction's closure;\n\
                    \       REWIND TRANSACTION <id> [AS <view>] to remove it\n%!"
                    (Rw_whatif.Dep_graph.node_count graph)
                    (Rw_whatif.Dep_graph.edge_count graph)
                    (if Rw_whatif.Dep_graph.built_from_index graph then
                       "from the append-time write-set index"
                     else "rebuilt by log scan");
                  `Continue
              | [ id ] -> (
                  match int_of_string_opt id with
                  | None ->
                      Printf.printf "usage: \\whatif [txn-id]\n%!";
                      `Continue
                  | Some id -> (
                      let txn = Rw_wal.Txn_id.of_int id in
                      match Rw_whatif.Dep_graph.find graph txn with
                      | None ->
                          Printf.printf "no committed transaction %d in the retained log\n%!"
                            id;
                          `Continue
                      | Some node ->
                          let open Rw_whatif.Dep_graph in
                          let direct = dependents graph txn in
                          let closure = closure graph txn in
                          let pages =
                            List.sort_uniq Rw_storage.Page_id.compare
                              (List.concat_map (fun n -> List.map fst n.writes) closure)
                          in
                          Printf.printf
                            "transaction %d: %d page ops over %d pages, committed at %.6f s%s\n"
                            id node.ops (List.length node.writes)
                            (node.commit_wall_us /. 1e6)
                            (if node.structural then " [structural]" else "");
                          Printf.printf
                            "direct dependents : %d\n\
                             downstream closure: %d transactions touching %d pages\n"
                            (List.length direct)
                            (List.length closure - 1)
                            (List.length pages);
                          Printf.printf "closure           : %s\n"
                            (String.concat ", "
                               (List.map
                                  (fun n -> string_of_int (Rw_wal.Txn_id.to_int n.txn))
                                  closure));
                          Printf.printf
                            "REWIND TRANSACTION %d removes it and replays the %d dependents;\n\
                             add AS <view> for a read-only what-if preview\n%!"
                            id
                            (List.length closure - 1);
                          `Continue))
              | _ ->
                  Printf.printf "usage: \\whatif [txn-id]\n%!";
                  `Continue)
          | None ->
              Printf.printf "current database vanished\n%!";
              `Continue))
  | [ "\\help" ] | [ "\\h" ] ->
      print_endline
        "meta commands:\n\
        \  \\help              this help\n\
        \  \\time              show the simulated clock\n\
        \  \\advance <secs>    advance the simulated clock\n\
        \  \\save <path>       persist the current database to a file\n\
        \  \\load <path>       load a previously saved database\n\
        \  \\iostats           I/O counters incl. log flush coalescing\n\
        \  \\log               log segment lifecycle and resident-memory stats\n\
        \  \\sessions          writer/reader sessions and the prepared-page cache\n\
        \  \\faults            fault-injection counters and quarantined pages\n\
        \  \\recovery          restart mode, backlog, and recovery timings\n\
        \  \\pool              shared domain pool: fan-out cap, workers, wake counters\n\
        \  \\metrics [json]    engine metrics registry snapshot\n\
        \  \\trace on|off|status|clear|dump <path>\n\
        \                     trace collector; dump writes Chrome trace_event JSON\n\
        \  \\explain SELECT .. run a query and report its rewind cost\n\
        \  \\whatif [txn-id]   transaction dependency graph / one txn's closure\n\
        \  \\repl attach|ship|status|detach\n\
        \                     log-shipping replica of the current database\n\
        \  \\q                 quit\n\
         statements: CREATE/DROP TABLE|INDEX|DATABASE, INSERT, SELECT, UPDATE, DELETE,\n\
        \  BEGIN/COMMIT/ROLLBACK, USE, SHOW TABLES|DATABASES|HISTORY, CHECKPOINT,\n\
        \  CREATE DATABASE s AS SNAPSHOT OF db AS OF <t|-secs>,\n\
        \  ALTER DATABASE db SET UNDO_INTERVAL = <n> SECONDS|MINUTES|HOURS,\n\
        \  UNDO TRANSACTION <id>, REWIND TRANSACTION <id> [AS <view>]";
      `Continue
  | _ ->
      ignore session;
      Printf.printf "unknown meta command (\\help for help)\n%!";
      `Continue

let repl_loop eng session =
  let buffer = Buffer.create 256 in
  let rec loop () =
    let prompt =
      if Buffer.length buffer > 0 then "   ...> "
      else
        match Executor.current_database session with
        | Some db -> Printf.sprintf "%s> " db
        | None -> "rewind> "
    in
    print_string prompt;
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> print_newline ()
    | line when Buffer.length buffer = 0 && String.length (String.trim line) > 0
                && (String.trim line).[0] = '\\' -> (
        match meta_command session eng line with `Quit -> () | `Continue -> loop ())
    | line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        if String.contains line ';' || String.trim text = "" then begin
          Buffer.clear buffer;
          let text = String.trim text in
          if text <> "" then run_statement session text
        end;
        loop ()
  in
  print_endline "rewinddb shell — \\help for help, \\q to quit";
  loop ()

let make_engine media =
  let eng = Engine.create ~media () in
  (eng, Executor.create_session eng)

let repl media =
  let eng, session = make_engine media in
  repl_loop eng session

let exec media script file trace_path =
  let eng, session = make_engine media in
  let source =
    match (script, file) with
    | Some s, None -> s
    | None, Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | _ -> failwith "exec: provide exactly one of -e <sql> or a file"
  in
  ignore eng;
  if trace_path <> None then Trace.enable ();
  (match Executor.run_script session source with
  | results -> List.iter print_result results
  | exception Executor.Sql_error msg -> Printf.printf "ERROR: %s\n" msg
  | exception Rw_sql.Parser.Parse_error msg -> Printf.printf "parse error: %s\n" msg);
  match trace_path with
  | Some path ->
      Trace.dump ~path;
      Printf.printf "trace: %d events written to %s\n" (List.length (Trace.events ())) path
  | None -> ()

let demo media txns =
  let eng, session = make_engine media in
  let db = Engine.create_database eng ~checkpoint_interval_us:1_000_000.0 "tpcc" in
  Rw_engine.Database.set_group_commit db ~max_batch_bytes:(64 * 1024) ~max_delay_us:2_000.0;
  Printf.printf "loading TPC-C-like demo database...\n%!";
  Tpcc.load db Tpcc.default_config;
  let drv = Tpcc.create db Tpcc.default_config in
  Printf.printf "running %d transactions of history...\n%!" txns;
  ignore (Tpcc.run_mix drv ~txns);
  ignore (Rw_engine.Database.flush_commits db);
  ignore (Executor.run session "USE tpcc");
  Printf.printf "log write path: %s\n"
    (Format.asprintf "%a" Rw_storage.Io_stats.pp_writes
       (Rw_wal.Log_manager.stats (Rw_engine.Database.log db)));
  Printf.printf
    "done: %.3f simulated seconds of history.  Try:\n\
    \  SELECT COUNT(*) FROM orders;\n\
    \  CREATE DATABASE past AS SNAPSHOT OF tpcc AS OF -1;\n\
    \  SELECT COUNT(*) FROM past.orders;\n"
    (Engine.now_s eng);
  repl_loop eng session

let faultsoak seeds crash_points quick =
  Printf.printf "fault-injection soak: seeds %s, %d crash points each%s\n%!"
    (String.concat "," (List.map string_of_int seeds))
    crash_points
    (if quick then " (quick)" else "");
  let rows = Rw_workload.Experiments.crash_repair_campaign ~seeds ~crash_points ~quick () in
  Rw_workload.Experiments.print_fault_rows rows;
  if not (List.for_all Rw_workload.Experiments.fault_row_ok rows) then exit 1

let replsoak seeds quick =
  Printf.printf "replication soak: scenarios %s | seeds %s%s\n%!"
    (String.concat ","
       (List.map Rw_workload.Experiments.repl_scenario_name
          Rw_workload.Experiments.repl_scenarios))
    (String.concat "," (List.map string_of_int seeds))
    (if quick then " (quick)" else "");
  let rows = Rw_workload.Experiments.repl_soak_campaign ~seeds ~quick () in
  Rw_workload.Experiments.print_repl_rows rows;
  if not (List.for_all Rw_workload.Experiments.repl_row_ok rows) then exit 1

let whatifsoak seeds quick =
  Printf.printf "what-if soak: scenarios %s | seeds %s%s\n%!"
    (String.concat ","
       (List.map Rw_workload.Experiments.whatif_scenario_name
          Rw_workload.Experiments.whatif_scenarios))
    (String.concat "," (List.map string_of_int seeds))
    (if quick then " (quick)" else "");
  let rows = Rw_workload.Experiments.whatif_soak_campaign ~seeds ~quick () in
  Rw_workload.Experiments.print_whatif_rows rows;
  if not (List.for_all Rw_workload.Experiments.whatif_row_ok rows) then exit 1

(* --- cmdliner wiring --- *)

open Cmdliner

let media_conv =
  Arg.conv (media_of_string, fun fmt m -> Format.fprintf fmt "%s" m.Media.name)

let media_term =
  Arg.(
    value & opt media_conv Media.ssd
    & info [ "media" ] ~docv:"MEDIA" ~doc:"Media model: ssd, sas or ram.")

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive SQL shell") Term.(const repl $ media_term)

let exec_cmd =
  let script =
    Arg.(value & opt (some string) None & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to run.")
  in
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:"Collect a trace of the run and write Chrome trace_event JSON to $(docv).")
  in
  Cmd.v (Cmd.info "exec" ~doc:"Execute a SQL script")
    Term.(const exec $ media_term $ script $ file $ trace)

let demo_cmd =
  let txns =
    Arg.(value & opt int 2000 & info [ "txns" ] ~docv:"N" ~doc:"History transactions to run.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Shell against a pre-loaded TPC-C-like database")
    Term.(const demo $ media_term $ txns)

let faultsoak_cmd =
  let seeds =
    Arg.(
      value
      & opt (list int) [ 11; 23; 47 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated fault-plan seeds.")
  in
  let points =
    Arg.(
      value & opt int 4
      & info [ "crash-points" ] ~docv:"N" ~doc:"Random crash points per seed.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Shrink the workload for smoke runs.") in
  Cmd.v
    (Cmd.info "faultsoak"
       ~doc:
         "Crash/corruption soak: run TPC-C under fault injection, crash at random points, \
          recover, repair, and verify against a fault-free oracle (exit 1 on any violation)")
    Term.(const faultsoak $ seeds $ points $ quick)

let replsoak_cmd =
  let seeds =
    Arg.(
      value
      & opt (list int) [ 11; 23; 47 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated workload/channel seeds.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Shrink the workload for smoke runs.") in
  Cmd.v
    (Cmd.info "replsoak"
       ~doc:
         "Replication soak: replica crash mid-catch-up, sustained lag, network partition and \
          primary failover, each converging byte-equal (canonical page form) to a fault-free \
          single-node oracle (exit 1 on any divergence)")
    Term.(const replsoak $ seeds $ quick)

let whatifsoak_cmd =
  let seeds =
    Arg.(
      value
      & opt (list int) [ 11; 23; 47 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated workload seeds.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Shrink the workload for smoke runs.") in
  Cmd.v
    (Cmd.info "whatifsoak"
       ~doc:
         "What-if soak: selectively remove a committed transaction per dependency scenario \
          (chain, independent, mixed), publish a what-if view and an in-place repair, and \
          verify both byte-equal (canonical masked pages + rows + pre-victim as-of) against \
          an oracle replaying the history minus the victim from scratch (exit 1 on any \
          inequality)")
    Term.(const whatifsoak $ seeds $ quick)

let main =
  Cmd.group ~default:Term.(const repl $ media_term)
    (Cmd.info "rewind_cli" ~version:"1.0.0"
       ~doc:"Transaction-log based point-in-time query engine (VLDB'12 reproduction)")
    [ repl_cmd; exec_cmd; demo_cmd; faultsoak_cmd; replsoak_cmd; whatifsoak_cmd ]

let () = exit (Cmd.eval main)
