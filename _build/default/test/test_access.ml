(* Access-method tests: boot page, allocation map (first-alloc vs re-alloc,
   preformat logging), B-tree (model-based), heap. *)

module Lsn = Rw_storage.Lsn
module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Prng = Rw_storage.Prng
module Log_record = Rw_wal.Log_record
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Lock_manager = Rw_txn.Lock_manager
module Txn_manager = Rw_txn.Txn_manager
module Access_ctx = Rw_access.Access_ctx
module Alloc_map = Rw_access.Alloc_map
module Boot = Rw_access.Boot
module Btree = Rw_access.Btree
module Heap = Rw_access.Heap
module Rowfmt = Rw_access.Rowfmt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

type env = {
  clock : Sim_clock.t;
  log : Log_manager.t;
  txns : Txn_manager.t;
  ctx : Access_ctx.t;
  alloc : Alloc_map.t;
}

(* A fully bootstrapped environment: boot page + allocation map, as the
   engine sets them up. *)
let mk_env () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let log = Log_manager.create ~clock ~media:Media.ram () in
  let pool =
    Buffer_pool.create ~capacity:128 ~source:(Buffer_pool.of_disk disk)
      ~wal_flush:(fun lsn -> Log_manager.flush log ~upto:lsn)
      ()
  in
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  let ctx = Access_ctx.create ~pool ~txns ~log ~clock () in
  let txn = Txn_manager.begin_txn txns in
  Boot.init ctx txn;
  Boot.set ctx txn Boot.key_next_page_id 2L;
  Alloc_map.init ctx txn;
  let alloc = Alloc_map.open_ ctx in
  Txn_manager.commit txns txn ~wall_us:0.0;
  Txn_manager.finished txns txn;
  { clock; log; txns; ctx; alloc }

let with_txn env f =
  let txn = Txn_manager.begin_txn env.txns in
  let v = f txn in
  Txn_manager.commit env.txns txn ~wall_us:(Sim_clock.now_us env.clock);
  Txn_manager.finished env.txns txn;
  v

(* --- boot --- *)

let test_boot_settings () =
  let env = mk_env () in
  check "next page id" true (Boot.get env.ctx Boot.key_next_page_id = Some 2L);
  with_txn env (fun txn -> Boot.set env.ctx txn 77L 123L);
  check "insert new setting" true (Boot.get env.ctx 77L = Some 123L);
  with_txn env (fun txn -> Boot.set env.ctx txn 77L 124L);
  check "update setting" true (Boot.get env.ctx 77L = Some 124L);
  check "missing" true (Boot.get env.ctx 999L = None)

(* --- alloc map --- *)

let test_alloc_fresh_pages () =
  let env = mk_env () in
  let p1, p2 =
    with_txn env (fun txn ->
        let p1 = Alloc_map.allocate env.alloc env.ctx txn ~typ:Page.Btree ~level:0 in
        let p2 = Alloc_map.allocate env.alloc env.ctx txn ~typ:Page.Heap ~level:0 in
        (p1, p2))
  in
  check "distinct fresh pages" true (not (Page_id.equal p1 p2));
  check "allocated" true (Alloc_map.is_allocated env.ctx p1);
  check "ever allocated" true (Alloc_map.ever_allocated env.ctx p1);
  check_int "fresh ids from 2" 2 (Page_id.to_int p1)

let count_records env ~kind =
  let n = ref 0 in
  Log_manager.iter_range env.log ~from:(Log_manager.first_lsn env.log)
    ~upto:(Log_manager.end_lsn env.log) (fun _ r ->
      if Log_record.kind_name r = kind then incr n);
  !n

let test_realloc_logs_preformat () =
  let env = mk_env () in
  let p1 = with_txn env (fun txn -> Alloc_map.allocate env.alloc env.ctx txn ~typ:Page.Btree ~level:0) in
  check_int "first allocation: no preformat" 0 (count_records env ~kind:"preformat");
  with_txn env (fun txn -> Alloc_map.free env.alloc env.ctx txn p1);
  check "freed" false (Alloc_map.is_allocated env.ctx p1);
  check "but ever-allocated" true (Alloc_map.ever_allocated env.ctx p1);
  let p2 = with_txn env (fun txn -> Alloc_map.allocate env.alloc env.ctx txn ~typ:Page.Heap ~level:0) in
  check "re-uses the freed page" true (Page_id.equal p1 p2);
  check_int "re-allocation logs exactly one preformat" 1 (count_records env ~kind:"preformat")

let test_alloc_map_grows () =
  let env = mk_env () in
  (* Allocate enough pages to overflow the first 8KiB map page. *)
  let pids =
    with_txn env (fun txn ->
        List.init 700 (fun _ -> Alloc_map.allocate env.alloc env.ctx txn ~typ:Page.Heap ~level:0))
  in
  check_int "700 distinct pages" 700 (List.length (List.sort_uniq Page_id.compare pids));
  List.iter (fun p -> check "all allocated" true (Alloc_map.is_allocated env.ctx p)) pids;
  let listed = Alloc_map.allocated_pages env.ctx in
  check "listing includes all" true
    (List.for_all (fun p -> List.exists (Page_id.equal p) listed) pids)

let test_free_list_rebuild () =
  let env = mk_env () in
  let p1 =
    with_txn env (fun txn -> Alloc_map.allocate env.alloc env.ctx txn ~typ:Page.Heap ~level:0)
  in
  with_txn env (fun txn -> Alloc_map.free env.alloc env.ctx txn p1);
  let reopened = Alloc_map.open_ env.ctx in
  check_int "free list found on reopen" 1 (Alloc_map.free_count reopened)

(* --- btree --- *)

let test_btree_basic () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  with_txn env (fun txn ->
      Btree.insert env.ctx env.alloc txn tree ~key:2L ~payload:"two";
      Btree.insert env.ctx env.alloc txn tree ~key:1L ~payload:"one";
      Btree.insert env.ctx env.alloc txn tree ~key:3L ~payload:"three");
  check "find" true (Btree.find env.ctx tree 2L = Some "two");
  check "missing" true (Btree.find env.ctx tree 9L = None);
  check_int "count" 3 (Btree.count env.ctx tree);
  with_txn env (fun txn -> Btree.delete env.ctx txn tree ~key:2L);
  check "deleted" true (Btree.find env.ctx tree 2L = None);
  with_txn env (fun txn -> Btree.update env.ctx env.alloc txn tree ~key:1L ~payload:"ONE");
  check "updated" true (Btree.find env.ctx tree 1L = Some "ONE");
  Btree.check env.ctx tree

let test_btree_duplicate () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  with_txn env (fun txn -> Btree.insert env.ctx env.alloc txn tree ~key:1L ~payload:"a");
  let txn = Txn_manager.begin_txn env.txns in
  Alcotest.check_raises "duplicate" (Btree.Duplicate_key 1L) (fun () ->
      Btree.insert env.ctx env.alloc txn tree ~key:1L ~payload:"b");
  Txn_manager.rollback env.txns txn ~write_page:(Access_ctx.page_writer env.ctx)

let test_btree_split_and_height () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  let payload = String.make 200 'p' in
  with_txn env (fun txn ->
      for i = 1 to 500 do
        Btree.insert env.ctx env.alloc txn tree ~key:(Int64.of_int i) ~payload
      done);
  check "grew beyond one level" true (Btree.height env.ctx tree > 1);
  check_int "all rows present" 500 (Btree.count env.ctx tree);
  Btree.check env.ctx tree;
  (* Every key individually findable. *)
  for i = 1 to 500 do
    if Btree.find env.ctx tree (Int64.of_int i) = None then
      Alcotest.failf "key %d missing after splits" i
  done

let test_btree_range () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  with_txn env (fun txn ->
      List.iter
        (fun i -> Btree.insert env.ctx env.alloc txn tree ~key:(Int64.of_int i) ~payload:"v")
        [ 1; 3; 5; 7; 9; 11 ]);
  let seen = ref [] in
  Btree.range env.ctx tree ~lo:3L ~hi:9L ~f:(fun k _ -> seen := k :: !seen);
  check "range [3,9]" true (List.rev !seen = [ 3L; 5L; 7L; 9L ])

let test_btree_drop_frees_pages () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  let payload = String.make 300 'p' in
  with_txn env (fun txn ->
      for i = 1 to 300 do
        Btree.insert env.ctx env.alloc txn tree ~key:(Int64.of_int i) ~payload
      done);
  let pages = Btree.pages env.ctx tree in
  check "multi-page tree" true (List.length pages > 3);
  with_txn env (fun txn -> Btree.drop env.ctx env.alloc txn tree);
  List.iter (fun p -> check "page freed" false (Alloc_map.is_allocated env.ctx p)) pages;
  (* A new tree reuses the freed pages (preformat path). *)
  let tree2 = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  check "root reused from free list" true (List.exists (Page_id.equal (Btree.root tree2)) pages)

(* Model-based test: random operations against a Map. *)
let btree_model_test =
  QCheck.Test.make ~name:"btree models an int64 map" ~count:30
    QCheck.(small_list (pair (int_bound 2) (int_bound 400)))
    (fun ops ->
      let env = mk_env () in
      let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k) ->
          let key = Int64.of_int k in
          let payload = Printf.sprintf "value-%d" k in
          with_txn env (fun txn ->
              match op with
              | 0 ->
                  if not (Hashtbl.mem model k) then begin
                    Btree.insert env.ctx env.alloc txn tree ~key ~payload;
                    Hashtbl.replace model k payload
                  end
              | 1 ->
                  if Hashtbl.mem model k then begin
                    Btree.delete env.ctx txn tree ~key;
                    Hashtbl.remove model k
                  end
              | _ ->
                  if Hashtbl.mem model k then begin
                    let p = payload ^ "-updated" in
                    Btree.update env.ctx env.alloc txn tree ~key ~payload:p;
                    Hashtbl.replace model k p
                  end))
        ops;
      Btree.check env.ctx tree;
      let actual = Btree.to_list env.ctx tree in
      let expected =
        Hashtbl.fold (fun k v acc -> (Int64.of_int k, v) :: acc) model []
        |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
      in
      actual = expected)

(* Heavier randomized torture: interleaved inserts/deletes with varying
   payload sizes, checked against a map. *)
let test_btree_torture () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  let rng = Prng.create 2024 in
  let model = Hashtbl.create 1024 in
  for round = 1 to 2000 do
    let k = Prng.int rng 1000 in
    let key = Int64.of_int k in
    with_txn env (fun txn ->
        if Prng.int rng 100 < 70 then begin
          let payload = Prng.alpha_string rng (1 + Prng.int rng 400) in
          if Hashtbl.mem model k then begin
            Btree.update env.ctx env.alloc txn tree ~key ~payload;
            Hashtbl.replace model k payload
          end
          else begin
            Btree.insert env.ctx env.alloc txn tree ~key ~payload;
            Hashtbl.replace model k payload
          end
        end
        else if Hashtbl.mem model k then begin
          Btree.delete env.ctx txn tree ~key;
          Hashtbl.remove model k
        end);
    if round mod 500 = 0 then Btree.check env.ctx tree
  done;
  check_int "final count" (Hashtbl.length model) (Btree.count env.ctx tree);
  Hashtbl.iter
    (fun k v ->
      match Btree.find env.ctx tree (Int64.of_int k) with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "key %d mismatch" k)
    model

let test_btree_key_extremes () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  let keys = [ Int64.min_int |> Int64.succ; -1L; 0L; 1L; Int64.max_int ] in
  with_txn env (fun txn ->
      List.iter (fun k -> Btree.insert env.ctx env.alloc txn tree ~key:k ~payload:"x") keys);
  List.iter (fun k -> check "extreme key findable" true (Btree.find env.ctx tree k = Some "x")) keys;
  check "keys in order" true (List.map fst (Btree.to_list env.ctx tree) = List.sort compare keys);
  Btree.check env.ctx tree;
  (* The sentinel key itself is reserved. *)
  let txn = Txn_manager.begin_txn env.txns in
  Alcotest.check_raises "min_int reserved"
    (Invalid_argument "Btree.insert: Int64.min_int is reserved") (fun () ->
      Btree.insert env.ctx env.alloc txn tree ~key:Int64.min_int ~payload:"no");
  Txn_manager.rollback env.txns txn ~write_page:(Access_ctx.page_writer env.ctx)

let test_btree_payload_bounds () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  with_txn env (fun txn ->
      Btree.insert env.ctx env.alloc txn tree ~key:1L ~payload:"";
      Btree.insert env.ctx env.alloc txn tree ~key:2L
        ~payload:(String.make Btree.max_payload 'm'));
  check "empty payload ok" true (Btree.find env.ctx tree 1L = Some "");
  check "max payload ok" true
    (Btree.find env.ctx tree 2L = Some (String.make Btree.max_payload 'm'));
  let txn = Txn_manager.begin_txn env.txns in
  Alcotest.check_raises "oversized rejected"
    (Invalid_argument "Btree.insert: payload too large") (fun () ->
      Btree.insert env.ctx env.alloc txn tree ~key:3L
        ~payload:(String.make (Btree.max_payload + 1) 'm'));
  Txn_manager.rollback env.txns txn ~write_page:(Access_ctx.page_writer env.ctx)

(* Sustained max-size payloads force splits on nearly every insert. *)
let test_btree_large_payload_splits () =
  let env = mk_env () in
  let tree = with_txn env (fun txn -> Btree.create env.ctx env.alloc txn) in
  let payload = String.make Btree.max_payload 'p' in
  with_txn env (fun txn ->
      for i = 1 to 60 do
        Btree.insert env.ctx env.alloc txn tree ~key:(Int64.of_int i) ~payload
      done);
  Btree.check env.ctx tree;
  check_int "all present" 60 (Btree.count env.ctx tree)

(* --- heap --- *)

let test_heap_basic () =
  let env = mk_env () in
  let heap = with_txn env (fun txn -> Heap.create env.ctx env.alloc txn) in
  let r1, r2 =
    with_txn env (fun txn ->
        ( Heap.insert env.ctx env.alloc txn heap "alpha",
          Heap.insert env.ctx env.alloc txn heap "beta" ))
  in
  check_str "get r1" "alpha" (Heap.get env.ctx heap r1);
  check_str "get r2" "beta" (Heap.get env.ctx heap r2);
  with_txn env (fun txn -> Heap.update env.ctx txn heap r1 "ALPHA");
  check_str "updated" "ALPHA" (Heap.get env.ctx heap r1);
  with_txn env (fun txn -> Heap.delete env.ctx txn heap r1);
  Alcotest.check_raises "deleted rid" Not_found (fun () -> ignore (Heap.get env.ctx heap r1));
  check_int "count skips tombstones" 1 (Heap.count env.ctx heap);
  (* RIDs of surviving rows are stable. *)
  check_str "r2 stable" "beta" (Heap.get env.ctx heap r2)

let test_heap_chains_pages () =
  let env = mk_env () in
  let heap = with_txn env (fun txn -> Heap.create env.ctx env.alloc txn) in
  let row = String.make 900 'h' in
  with_txn env (fun txn ->
      for _ = 1 to 100 do
        ignore (Heap.insert env.ctx env.alloc txn heap row)
      done);
  check "spans multiple pages" true (List.length (Heap.pages env.ctx heap) > 5);
  check_int "all rows visible" 100 (Heap.count env.ctx heap);
  let seen = ref 0 in
  Heap.iter env.ctx heap ~f:(fun _ r -> if r = row then incr seen);
  check_int "iter sees all" 100 !seen

let () =
  Alcotest.run "access"
    [
      ("boot", [ Alcotest.test_case "settings" `Quick test_boot_settings ]);
      ( "alloc_map",
        [
          Alcotest.test_case "fresh allocation" `Quick test_alloc_fresh_pages;
          Alcotest.test_case "realloc logs preformat" `Quick test_realloc_logs_preformat;
          Alcotest.test_case "map chain growth" `Quick test_alloc_map_grows;
          Alcotest.test_case "free list rebuild" `Quick test_free_list_rebuild;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic ops" `Quick test_btree_basic;
          Alcotest.test_case "duplicate key" `Quick test_btree_duplicate;
          Alcotest.test_case "splits and height" `Quick test_btree_split_and_height;
          Alcotest.test_case "range scan" `Quick test_btree_range;
          Alcotest.test_case "drop frees pages" `Quick test_btree_drop_frees_pages;
          QCheck_alcotest.to_alcotest btree_model_test;
          Alcotest.test_case "key extremes" `Quick test_btree_key_extremes;
          Alcotest.test_case "payload bounds" `Quick test_btree_payload_bounds;
          Alcotest.test_case "large payload splits" `Quick test_btree_large_payload_splits;
          Alcotest.test_case "torture" `Slow test_btree_torture;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic ops" `Quick test_heap_basic;
          Alcotest.test_case "page chaining" `Quick test_heap_chains_pages;
        ] );
    ]
