(* Route-planner tests: the §6.4 "generalized system" picks the cheaper of
   log rewind and backup roll-forward and both routes agree on the data. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Schema = Rw_catalog.Schema
module Database = Rw_engine.Database
module Backup = Rw_engine.Backup
module Time_travel = Rw_engine.Time_travel
module Row = Rw_engine.Row
module Tpcc = Rw_workload.Tpcc

let check = Alcotest.(check bool)

(* A SAS-media TPC-C database with a backup from before its history. *)
let build () =
  let clock = Sim_clock.create () in
  let db =
    Database.create ~name:"tt" ~clock ~media:Media.sas ~checkpoint_interval_us:1_000_000.0
      ~log_cache_blocks:16 ()
  in
  let cfg = Tpcc.small_config in
  Tpcc.load db cfg;
  (* A substantial cold region: restore must copy it, the rewind never
     touches it. *)
  Disk.extend (Database.disk db) 40_000;
  let backup = Backup.take db in
  let t0 = Sim_clock.now_us clock in
  let drv = Tpcc.create db cfg in
  ignore (Tpcc.run_mix drv ~txns:600);
  let t1 = Sim_clock.now_us clock in
  (* Quiesce so snapshot-creation estimates aren't dominated by a large
     dirty set pending flush. *)
  ignore (Database.checkpoint db);
  (db, cfg, backup, t0, t1)

let test_decision_flips_with_pages_hint () =
  let db, _, backup, t0, t1 = build () in
  let target = t1 -. (0.9 *. (t1 -. t0)) in
  let plan_for hint = Time_travel.plan ~db ~backups:[ backup ] ~wall_us:target ~pages_hint:hint in
  let small = plan_for 1 in
  let huge = plan_for 100_000 in
  check "tiny access -> rewind" true (small.Time_travel.route = Time_travel.Rewind);
  check "huge access -> roll forward" true
    (match huge.Time_travel.route with Time_travel.Roll_forward _ -> true | _ -> false);
  check "rewind estimate grows with hint" true
    (huge.Time_travel.rewind_estimate_s > small.Time_travel.rewind_estimate_s);
  check "restore estimate independent of hint" true
    (huge.Time_travel.restore_estimate_s = small.Time_travel.restore_estimate_s)

let test_no_backup_forces_rewind () =
  let db, _, _, t0, t1 = build () in
  let target = t1 -. (0.5 *. (t1 -. t0)) in
  let p = Time_travel.plan ~db ~backups:[] ~wall_us:target ~pages_hint:1_000_000 in
  check "rewind chosen" true (p.Time_travel.route = Time_travel.Rewind);
  check "restore unavailable" true (p.Time_travel.restore_estimate_s = infinity)

let test_backup_after_target_unusable () =
  let db, _, _, t0, t1 = build () in
  (* A backup taken after the target time cannot roll forward to it. *)
  let late_backup = Backup.take db in
  let target = t1 -. (0.5 *. (t1 -. t0)) in
  let p = Time_travel.plan ~db ~backups:[ late_backup ] ~wall_us:target ~pages_hint:1_000_000 in
  check "late backup ignored" true (p.Time_travel.route = Time_travel.Rewind)

let test_routes_agree_on_data () =
  let db, cfg, backup, t0, t1 = build () in
  let target = t1 -. (0.6 *. (t1 -. t0)) in
  let rewind_plan = Time_travel.plan ~db ~backups:[] ~wall_us:target ~pages_hint:4 in
  let via_rewind = Time_travel.materialise ~db ~name:"via_rewind" ~wall_us:target rewind_plan in
  let forced_restore =
    { Time_travel.route = Time_travel.Roll_forward backup; rewind_estimate_s = 0.0;
      restore_estimate_s = 0.0 }
  in
  let via_restore =
    Time_travel.materialise ~db ~name:"via_restore" ~wall_us:target forced_restore
  in
  (* Same split point, same data — compare a whole table. *)
  let dump view =
    let acc = ref [] in
    Database.scan view ~table:"district" ~f:(fun row -> acc := row :: !acc);
    List.rev !acc
  in
  check "identical district table" true (dump via_rewind = dump via_restore);
  check "identical stock level answer" true
    (Tpcc.stock_level via_rewind cfg ~w:1 ~d:1 ~threshold:50
    = Tpcc.stock_level via_restore cfg ~w:1 ~d:1 ~threshold:50);
  check "both views read-only" true
    (Database.is_read_only via_rewind && Database.is_read_only via_restore)

let test_estimates_are_sane () =
  let db, _, backup, t0, t1 = build () in
  let target = t1 -. (0.5 *. (t1 -. t0)) in
  let p = Time_travel.plan ~db ~backups:[ backup ] ~wall_us:target ~pages_hint:8 in
  (* Execute the chosen route and verify the estimate is the right order
     of magnitude (within 20x — it is a planning heuristic, not a vow). *)
  let before = Sim_clock.now_us (Database.clock db) in
  ignore (Time_travel.materialise ~db ~name:"sanity" ~wall_us:target p);
  let actual_s = (Sim_clock.now_us (Database.clock db) -. before) /. 1_000_000.0 in
  let est =
    match p.Time_travel.route with
    | Time_travel.Rewind -> p.Time_travel.rewind_estimate_s
    | Time_travel.Roll_forward _ -> p.Time_travel.restore_estimate_s
  in
  check "estimate within 20x of actual" true (est < actual_s *. 20.0 && est > actual_s /. 20.0)

let () =
  Alcotest.run "time_travel"
    [
      ( "planner",
        [
          Alcotest.test_case "decision flips with data accessed" `Quick
            test_decision_flips_with_pages_hint;
          Alcotest.test_case "no backup -> rewind" `Quick test_no_backup_forces_rewind;
          Alcotest.test_case "late backup unusable" `Quick test_backup_after_target_unusable;
          Alcotest.test_case "routes agree on data" `Quick test_routes_agree_on_data;
          Alcotest.test_case "estimates sane" `Quick test_estimates_are_sane;
        ] );
    ]
