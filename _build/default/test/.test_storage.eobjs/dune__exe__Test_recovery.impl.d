test/test_recovery.ml: Alcotest Hashtbl Int64 List Printf Rw_access Rw_catalog Rw_engine Rw_recovery Rw_storage Rw_txn Rw_wal
