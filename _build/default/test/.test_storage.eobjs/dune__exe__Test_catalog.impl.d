test/test_catalog.ml: Alcotest List Printf Rw_access Rw_buffer Rw_catalog Rw_storage Rw_txn Rw_wal
