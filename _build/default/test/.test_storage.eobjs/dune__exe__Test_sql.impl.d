test/test_sql.ml: Alcotest Format Int64 List Printf Rw_engine Rw_sql Rw_storage String
