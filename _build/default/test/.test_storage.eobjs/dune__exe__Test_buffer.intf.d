test/test_buffer.mli:
