test/test_core.ml: Alcotest Bytes Int64 List Option Printf Rw_access Rw_buffer Rw_catalog Rw_core Rw_engine Rw_storage Rw_txn Rw_wal String
