test/test_txn.ml: Alcotest List Printf Rw_access Rw_buffer Rw_storage Rw_txn Rw_wal
