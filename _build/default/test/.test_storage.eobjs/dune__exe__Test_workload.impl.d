test/test_workload.ml: Alcotest Int64 List Rw_engine Rw_storage Rw_workload
