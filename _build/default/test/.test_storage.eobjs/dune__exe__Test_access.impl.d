test/test_access.ml: Alcotest Hashtbl Int64 List Printf QCheck QCheck_alcotest Rw_access Rw_buffer Rw_storage Rw_txn Rw_wal String
