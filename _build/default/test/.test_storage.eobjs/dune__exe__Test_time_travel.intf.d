test/test_time_travel.mli:
