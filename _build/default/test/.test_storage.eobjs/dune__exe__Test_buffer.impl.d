test/test_buffer.ml: Alcotest Bytes List Rw_buffer Rw_storage
