test/test_index.ml: Alcotest Array Hashtbl Int64 List Printf Rw_access Rw_catalog Rw_engine Rw_sql Rw_storage
