test/test_time_travel.ml: Alcotest List Rw_catalog Rw_engine Rw_storage Rw_workload
