test/test_wal.ml: Alcotest Int64 List QCheck QCheck_alcotest Rw_storage Rw_wal String
