test/test_engine.ml: Alcotest Filename Hashtbl Int64 List Printf Rw_catalog Rw_engine Rw_storage Sys
