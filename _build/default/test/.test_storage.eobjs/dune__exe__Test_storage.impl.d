test/test_storage.ml: Alcotest Bytes Either Gen List QCheck QCheck_alcotest Rw_access Rw_storage String
