(* End-to-end engine tests: typed rows, DML, snapshots vs recorded history,
   backup/restore baseline, the engine registry. *)

module Lsn = Rw_storage.Lsn
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Prng = Rw_storage.Prng
module Schema = Rw_catalog.Schema
module Database = Rw_engine.Database
module Backup = Rw_engine.Backup
module Engine = Rw_engine.Engine
module Row = Rw_engine.Row

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [
    { Schema.name = "id"; ctype = Schema.Int };
    { Schema.name = "amount"; ctype = Schema.Int };
    { Schema.name = "note"; ctype = Schema.Text };
  ]

let mk_db ?(name = "db") () =
  let clock = Sim_clock.create () in
  Database.create ~name ~clock ~media:Media.ram ()

(* --- typed rows --- *)

let test_row_roundtrip () =
  let table =
    { Schema.id = 1; name = "t"; kind = Schema.Btree_table; root = Rw_storage.Page_id.of_int 2; columns = cols; indexes = [] }
  in
  let row = [ Row.Int 7L; Row.Int 100L; Row.Text "hello" ] in
  let key, payload = Row.encode table row in
  check "key extracted" true (key = 7L);
  check "roundtrip" true (Row.decode table ~key ~payload = row)

let test_row_type_errors () =
  let table =
    { Schema.id = 1; name = "t"; kind = Schema.Btree_table; root = Rw_storage.Page_id.of_int 2; columns = cols; indexes = [] }
  in
  let expect_error row =
    match Row.encode table row with
    | exception Row.Type_error _ -> ()
    | _ -> Alcotest.fail "expected type error"
  in
  expect_error [ Row.Text "k"; Row.Int 1L; Row.Text "x" ];
  expect_error [ Row.Int 1L; Row.Text "wrong"; Row.Text "x" ];
  expect_error [ Row.Int 1L ];
  expect_error []

(* --- database DML --- *)

let seed ?(n = 20) db =
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"acct" ~columns:cols ());
      for i = 1 to n do
        Database.insert db txn ~table:"acct"
          [ Row.Int (Int64.of_int i); Row.Int (Int64.of_int (i * 100)); Row.Text "init" ]
      done)

let test_dml_roundtrip () =
  let db = mk_db () in
  seed db;
  check_int "count" 20 (Database.row_count db ~table:"acct");
  check "get" true
    (Database.get db ~table:"acct" ~key:5L = Some [ Row.Int 5L; Row.Int 500L; Row.Text "init" ]);
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"acct" [ Row.Int 5L; Row.Int 999L; Row.Text "updated" ];
      Database.delete db txn ~table:"acct" ~key:6L);
  check "updated" true
    (Database.get db ~table:"acct" ~key:5L = Some [ Row.Int 5L; Row.Int 999L; Row.Text "updated" ]);
  check "deleted" true (Database.get db ~table:"acct" ~key:6L = None);
  let sum = ref 0L in
  Database.range db ~table:"acct" ~lo:1L ~hi:10L ~f:(fun row ->
      match row with [ _; Row.Int v; _ ] -> sum := Int64.add !sum v | _ -> ());
  check "range aggregates" true (!sum > 0L)

let test_rollback_via_with_txn () =
  let db = mk_db () in
  seed db;
  (try
     Database.with_txn db (fun txn ->
         Database.insert db txn ~table:"acct" [ Row.Int 100L; Row.Int 1L; Row.Text "x" ];
         failwith "abort!")
   with Failure _ -> ());
  check "rolled back" true (Database.get db ~table:"acct" ~key:100L = None);
  check_int "still 20" 20 (Database.row_count db ~table:"acct")

let test_heap_table_dml () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"h" ~columns:cols ~kind:Schema.Heap_table ());
      for i = 1 to 10 do
        Database.insert db txn ~table:"h"
          [ Row.Int (Int64.of_int i); Row.Int 0L; Row.Text "heaprow" ]
      done);
  check_int "heap count" 10 (Database.row_count db ~table:"h");
  check "heap get" true (Database.get db ~table:"h" ~key:7L <> None);
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"h" [ Row.Int 7L; Row.Int 42L; Row.Text "upd" ];
      Database.delete db txn ~table:"h" ~key:3L);
  check "heap updated" true
    (Database.get db ~table:"h" ~key:7L = Some [ Row.Int 7L; Row.Int 42L; Row.Text "upd" ]);
  check "heap deleted" true (Database.get db ~table:"h" ~key:3L = None)

(* --- snapshot equals recorded history (randomised) --- *)

let test_snapshot_matches_history () =
  let db = mk_db () in
  let clock = Database.clock db in
  let rng = Prng.create 99 in
  Database.with_txn db (fun txn -> ignore (Database.create_table db txn ~table:"acct" ~columns:cols ()));
  let model = Hashtbl.create 64 in
  let snapshots = ref [] in
  for round = 1 to 40 do
    Sim_clock.advance_us clock 200_000.0;
    Database.with_txn db (fun txn ->
        for _ = 1 to 5 do
          let k = Prng.int rng 50 in
          let key = Int64.of_int k in
          if Hashtbl.mem model k then
            if Prng.bool rng then begin
              Database.delete db txn ~table:"acct" ~key;
              Hashtbl.remove model k
            end
            else begin
              let row = [ Row.Int key; Row.Int (Int64.of_int round); Row.Text "u" ] in
              Database.update db txn ~table:"acct" row;
              Hashtbl.replace model k row
            end
          else begin
            let row = [ Row.Int key; Row.Int (Int64.of_int round); Row.Text "i" ] in
            Database.insert db txn ~table:"acct" row;
            Hashtbl.replace model k row
          end
        done);
    if round mod 10 = 0 then
      snapshots := (Sim_clock.now_us clock, Hashtbl.copy model) :: !snapshots
  done;
  (* Each recorded moment must be reproducible via an as-of snapshot. *)
  List.iteri
    (fun i (wall_us, expected) ->
      let snap =
        Database.create_as_of_snapshot db ~name:(Printf.sprintf "s%d" i) ~wall_us
      in
      check_int
        (Printf.sprintf "row count as of snapshot %d" i)
        (Hashtbl.length expected)
        (Database.row_count snap ~table:"acct");
      Hashtbl.iter
        (fun k row ->
          if Database.get snap ~table:"acct" ~key:(Int64.of_int k) <> Some row then
            Alcotest.failf "snapshot %d: key %d mismatch" i k)
        expected)
    !snapshots

(* --- backup / restore baseline --- *)

let test_backup_restore_as_of () =
  let db = mk_db () in
  let clock = Database.clock db in
  seed db ~n:30;
  let backup = Backup.take db in
  check "backup has pages" true (Backup.size_bytes backup > 0);
  Sim_clock.advance_us clock 1_000_000.0;
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"acct" [ Row.Int 1L; Row.Int 111L; Row.Text "after-backup" ]);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_mid = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  Database.with_txn db (fun txn -> Database.delete db txn ~table:"acct" ~key:2L);
  (* Restore to t_mid: must contain the update but not the delete. *)
  let restored = Backup.restore_as_of backup ~from:db ~wall_us:t_mid in
  check "restored read-only" true (Database.is_read_only restored);
  check "update replayed" true
    (Database.get restored ~table:"acct" ~key:1L = Some [ Row.Int 1L; Row.Int 111L; Row.Text "after-backup" ]);
  check "later delete not replayed" true (Database.get restored ~table:"acct" ~key:2L <> None);
  check_int "full row count" 30 (Database.row_count restored ~table:"acct");
  (* Restoring before the backup is rejected. *)
  (try
     ignore (Backup.restore_as_of backup ~from:db ~wall_us:0.0);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ())

let test_restore_cost_independent_of_point () =
  let db = mk_db () in
  let clock = Database.clock db in
  seed db ~n:50;
  let backup = Backup.take db in
  Sim_clock.advance_us clock 1_000_000.0;
  let t1 = Sim_clock.now_us clock in
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"acct" [ Row.Int 1L; Row.Int 1L; Row.Text "x" ]);
  Sim_clock.advance_us clock 1_000_000.0;
  let t2 = Sim_clock.now_us clock in
  let c0 = Sim_clock.now_us clock in
  ignore (Backup.restore_as_of backup ~from:db ~wall_us:t1);
  let cost1 = Sim_clock.now_us clock -. c0 in
  let c1 = Sim_clock.now_us clock in
  ignore (Backup.restore_as_of backup ~from:db ~wall_us:t2);
  let cost2 = Sim_clock.now_us clock -. c1 in
  (* Within 50%: both dominated by the full copy. *)
  check "restore cost roughly flat" true (cost2 < cost1 *. 1.5 +. 1.0)

let test_read_only_guards () =
  let db = mk_db () in
  let clock = Database.clock db in
  seed db;
  Sim_clock.advance_us clock 1_000_000.0;
  let t = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  Database.with_txn db (fun txn -> Database.delete db txn ~table:"acct" ~key:1L);
  let snap = Database.create_as_of_snapshot db ~name:"ro" ~wall_us:t in
  let rejected f = match f () with exception Database.Read_only _ -> true | _ -> false in
  check "begin_txn rejected" true (rejected (fun () -> Database.begin_txn snap));
  check "snapshot-of-snapshot rejected" true
    (rejected (fun () -> Database.create_as_of_snapshot snap ~name:"nested" ~wall_us:t));
  check "crash of snapshot rejected" true (rejected (fun () -> Database.crash_and_reopen snap));
  (* Reads keep working. *)
  check "reads fine" true (Database.get snap ~table:"acct" ~key:1L <> None)

let test_crash_fuzz_with_fpi () =
  (* The crash-recovery path must also be correct when full-page-image
     records are interleaved in transaction chains. *)
  let clock = Sim_clock.create () in
  let db = ref (Database.create ~name:"fpi" ~clock ~media:Media.ram ~fpi_frequency:5 ()) in
  Database.with_txn !db (fun txn ->
      ignore (Database.create_table !db txn ~table:"acct" ~columns:cols ()));
  let rng = Prng.create 9 in
  let model = Hashtbl.create 64 in
  for _ = 1 to 8 do
    Database.with_txn !db (fun txn ->
        for _ = 1 to 25 do
          let k = Prng.int rng 60 in
          let key = Int64.of_int k in
          let row = [ Row.Int key; Row.Int (Int64.of_int (Prng.int rng 1000)); Row.Text "f" ] in
          if Hashtbl.mem model k then begin
            Database.update !db txn ~table:"acct" row;
            Hashtbl.replace model k row
          end
          else begin
            Database.insert !db txn ~table:"acct" row;
            Hashtbl.replace model k row
          end
        done);
    db := Database.crash_and_reopen !db;
    Hashtbl.iter
      (fun k row ->
        if Database.get !db ~table:"acct" ~key:(Int64.of_int k) <> Some row then
          Alcotest.failf "key %d diverged after crash (fpi on)" k)
      model
  done

(* --- persistence --- *)

let tmpfile () = Filename.temp_file "rewinddb" ".img"

let test_save_load_roundtrip () =
  let db = mk_db () in
  seed db ~n:25;
  Database.set_retention db (Some 60_000_000.0);
  let before = ref [] in
  Database.scan db ~table:"acct" ~f:(fun row -> before := row :: !before);
  let path = tmpfile () in
  Database.save db ~path;
  (* Load into a completely fresh clock/engine. *)
  let clock2 = Sim_clock.create () in
  let db2 = Database.load ~clock:clock2 ~media:Media.ram ~path () in
  Alcotest.(check string) "name preserved" (Database.name db) (Database.name db2);
  let after = ref [] in
  Database.scan db2 ~table:"acct" ~f:(fun row -> after := row :: !after);
  check "all rows identical" true (!before = !after);
  check "retention preserved" true (Database.retention db2 = Some 60_000_000.0);
  check "clock resumed past save point" true
    (Sim_clock.now_us clock2 >= Sim_clock.now_us (Database.clock db));
  (* The loaded database is fully writable. *)
  Database.with_txn db2 (fun txn ->
      Database.insert db2 txn ~table:"acct" [ Row.Int 99L; Row.Int 1L; Row.Text "post-load" ]);
  check "writable after load" true (Database.get db2 ~table:"acct" ~key:99L <> None);
  Sys.remove path

let test_save_load_preserves_history () =
  let db = mk_db () in
  let clock = Database.clock db in
  seed db ~n:10;
  Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Sim_clock.now_us clock in
  Sim_clock.advance_us clock 1_000_000.0;
  Database.with_txn db (fun txn -> Database.delete db txn ~table:"acct" ~key:5L);
  let path = tmpfile () in
  Database.save db ~path;
  let clock2 = Sim_clock.create () in
  let db2 = Database.load ~clock:clock2 ~media:Media.ram ~path () in
  (* The log came along: the pre-save past is still reachable. *)
  let snap = Database.create_as_of_snapshot db2 ~name:"old" ~wall_us:t_past in
  check "pre-save history visible after load" true
    (Database.get snap ~table:"acct" ~key:5L <> None);
  check "present state correct" true (Database.get db2 ~table:"acct" ~key:5L = None);
  Sys.remove path

let test_load_rejects_garbage () =
  let path = tmpfile () in
  let oc = open_out path in
  output_string oc "not a database image";
  close_out oc;
  (match Database.load ~clock:(Sim_clock.create ()) ~media:Media.ram ~path () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on garbage");
  Sys.remove path

let test_loaded_db_attaches_to_engine () =
  let db = mk_db () in
  seed db ~n:5;
  let path = tmpfile () in
  Database.save db ~path;
  let eng = Engine.create ~media:Media.ram () in
  let db2 = Database.load ~clock:(Engine.clock eng) ~media:Media.ram ~path () in
  ignore (Engine.attach_database eng db2);
  check "registered" true (Engine.find_database eng "db" <> None);
  Sys.remove path

(* --- engine registry --- *)

let test_engine_registry () =
  let eng = Engine.create ~media:Media.ram () in
  let db = Engine.create_database eng "prod" in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      Database.insert db txn ~table:"t" [ Row.Int 1L; Row.Int 1L; Row.Text "x" ]);
  check "find" true (Engine.find_database eng "prod" <> None);
  (try
     ignore (Engine.create_database eng "prod");
     Alcotest.fail "expected Database_exists"
   with Engine.Database_exists _ -> ());
  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;
  let t = Engine.now_us eng in
  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;
  Database.with_txn db (fun txn -> Database.delete db txn ~table:"t" ~key:1L);
  let snap = Engine.create_snapshot eng ~of_:"prod" ~name:"prod_asof" ~wall_us:t in
  check "snapshot registered" true (Engine.find_database eng "prod_asof" <> None);
  check "snapshot sees deleted row" true (Database.get snap ~table:"t" ~key:1L <> None);
  Engine.drop_database eng "prod_asof";
  check "dropped" true (Engine.find_database eng "prod_asof" = None);
  (try
     ignore (Engine.find_database_exn eng "nope");
     Alcotest.fail "expected No_such_database"
   with Engine.No_such_database _ -> ())

let () =
  Alcotest.run "engine"
    [
      ( "rows",
        [
          Alcotest.test_case "roundtrip" `Quick test_row_roundtrip;
          Alcotest.test_case "type errors" `Quick test_row_type_errors;
        ] );
      ( "dml",
        [
          Alcotest.test_case "crud" `Quick test_dml_roundtrip;
          Alcotest.test_case "rollback" `Quick test_rollback_via_with_txn;
          Alcotest.test_case "heap tables" `Quick test_heap_table_dml;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "match recorded history" `Quick test_snapshot_matches_history;
          Alcotest.test_case "read-only guards" `Quick test_read_only_guards;
        ] );
      ( "crash_fpi",
        [ Alcotest.test_case "crash fuzz with FPIs" `Quick test_crash_fuzz_with_fpi ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "history preserved" `Quick test_save_load_preserves_history;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage;
          Alcotest.test_case "attach to engine" `Quick test_loaded_db_attaches_to_engine;
        ] );
      ( "backup",
        [
          Alcotest.test_case "restore as of" `Quick test_backup_restore_as_of;
          Alcotest.test_case "flat restore cost" `Quick test_restore_cost_independent_of_point;
        ] );
      ("registry", [ Alcotest.test_case "engine registry" `Quick test_engine_registry ]);
    ]
