(* ARIES recovery tests: checkpoints, analysis, redo idempotence, loser
   rollback across crashes — exercised through the engine's crash
   simulation. *)

module Lsn = Rw_storage.Lsn
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Log_manager = Rw_wal.Log_manager
module Recovery = Rw_recovery.Recovery
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Schema = Rw_catalog.Schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [ { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "val"; ctype = Schema.Text } ]

let mk_db ?(name = "rec") () =
  let clock = Sim_clock.create () in
  Database.create ~name ~clock ~media:Media.ram ()

let seed db n =
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t" ~columns:cols ());
      for i = 1 to n do
        Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text (Printf.sprintf "v%d" i) ]
      done)

let rows db =
  let acc = ref [] in
  Database.scan db ~table:"t" ~f:(fun r -> acc := r :: !acc);
  List.rev !acc

let test_committed_survive_crash () =
  let db = mk_db () in
  seed db 50;
  (* No checkpoint, no page flushes: everything lives in log + pool. *)
  let before = rows db in
  let db = Database.crash_and_reopen db in
  check "all committed rows recovered" true (rows db = before);
  match Database.last_recovery_stats db with
  | Some stats -> check "redo happened" true (stats.Recovery.redone_ops > 0)
  | None -> Alcotest.fail "expected recovery stats"

let test_uncommitted_rolled_back () =
  let db = mk_db () in
  seed db 10;
  let txn = Database.begin_txn db in
  Database.insert db txn ~table:"t" [ Row.Int 999L; Row.Text "loser" ];
  Database.delete db txn ~table:"t" ~key:5L;
  (* Force the loser's log records to disk so recovery sees them, without
     committing. *)
  Log_manager.flush_all (Database.log db);
  let db = Database.crash_and_reopen db in
  check "loser insert gone" true (Database.get db ~table:"t" ~key:999L = None);
  check "loser delete undone" true (Database.get db ~table:"t" ~key:5L <> None);
  check_int "ten rows" 10 (List.length (rows db));
  match Database.last_recovery_stats db with
  | Some stats ->
      check_int "one loser" 1 stats.Recovery.ended_losers;
      check "ops undone" true (stats.Recovery.undone_ops > 0)
  | None -> Alcotest.fail "expected recovery stats"

let test_unflushed_loser_simply_vanishes () =
  let db = mk_db () in
  seed db 10;
  let txn = Database.begin_txn db in
  Database.insert db txn ~table:"t" [ Row.Int 777L; Row.Text "volatile" ];
  (* Not flushed: crash drops the records entirely. *)
  let db = Database.crash_and_reopen db in
  check "nothing to undo" true (Database.get db ~table:"t" ~key:777L = None);
  check_int "ten rows" 10 (List.length (rows db))

let test_checkpoint_bounds_analysis () =
  let db = mk_db () in
  seed db 30;
  ignore (Database.checkpoint db);
  let log = Database.log db in
  let master = Log_manager.last_checkpoint log in
  check "master set" true (not (Lsn.is_nil master));
  Database.with_txn db (fun txn ->
      Database.insert db txn ~table:"t" [ Row.Int 31L; Row.Text "after-ckpt" ]);
  let db = Database.crash_and_reopen db in
  (match Database.last_recovery_stats db with
  | Some stats ->
      (* Analysis only scans from the checkpoint, not the whole log. *)
      check "bounded scan" true (stats.Recovery.analysis.Recovery.records_scanned < 40)
  | None -> Alcotest.fail "expected stats");
  check_int "31 rows" 31 (List.length (rows db))

let test_double_crash_idempotent () =
  let db = mk_db () in
  seed db 20;
  let txn = Database.begin_txn db in
  Database.insert db txn ~table:"t" [ Row.Int 888L; Row.Text "loser" ];
  Log_manager.flush_all (Database.log db);
  let db = Database.crash_and_reopen db in
  let after_first = rows db in
  (* Crash again immediately: recovery (incl. its CLRs) must be stable. *)
  let db = Database.crash_and_reopen db in
  check "second recovery is a no-op on state" true (rows db = after_first);
  let db = Database.crash_and_reopen db in
  check "third too" true (rows db = after_first)

let test_crash_mid_rollback_resumes () =
  let db = mk_db () in
  seed db 10;
  (* Build a loser with several operations, flush, crash.  Recovery rolls
     it back with CLRs; crash again mid-way is simulated by crashing right
     after recovery flushed its CLRs — the second recovery must skip the
     already-compensated prefix via undo_next. *)
  let txn = Database.begin_txn db in
  for i = 100 to 110 do
    Database.insert db txn ~table:"t" [ Row.Int (Int64.of_int i); Row.Text "loser" ]
  done;
  Log_manager.flush_all (Database.log db);
  let db = Database.crash_and_reopen db in
  check_int "rolled back" 10 (List.length (rows db));
  let db = Database.crash_and_reopen db in
  check_int "still ten" 10 (List.length (rows db))

let test_txn_ids_not_reused_after_recovery () =
  let db = mk_db () in
  seed db 5;
  let log = Database.log db in
  let max_txn_before = ref Rw_wal.Txn_id.nil in
  Log_manager.iter_range log ~from:(Log_manager.first_lsn log) ~upto:(Log_manager.end_lsn log)
    (fun _ r ->
      if Rw_wal.Txn_id.compare r.Rw_wal.Log_record.txn !max_txn_before > 0 then
        max_txn_before := r.Rw_wal.Log_record.txn);
  let db = Database.crash_and_reopen db in
  Database.with_txn db (fun txn ->
      check "fresh txn id above all logged ids" true
        (Rw_wal.Txn_id.compare (Rw_txn.Txn_manager.txn_id txn) !max_txn_before > 0))

let test_recovery_with_drop_and_realloc () =
  let db = mk_db () in
  seed db 40;
  Database.with_txn db (fun txn -> Database.drop_table db txn "t");
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"t2" ~columns:cols ());
      for i = 1 to 40 do
        Database.insert db txn ~table:"t2" [ Row.Int (Int64.of_int i); Row.Text "fresh" ]
      done);
  let db = Database.crash_and_reopen db in
  check "old table gone" true (Database.table db "t" = None);
  check_int "new table intact" 40 (Database.row_count db ~table:"t2")

(* Fuzz: interleave random committed/uncommitted work with crashes at
   random points; after every recovery all committed effects must be
   present and all uncommitted effects absent. *)
let test_crash_fuzz () =
  let rng = Rw_storage.Prng.create 31337 in
  let db = ref (mk_db ()) in
  Database.with_txn !db (fun txn ->
      ignore (Database.create_table !db txn ~table:"t" ~columns:cols ()));
  let model = Hashtbl.create 256 in
  for _round = 1 to 15 do
    (* Committed batch. *)
    let n = 1 + Rw_storage.Prng.int rng 20 in
    Database.with_txn !db (fun txn ->
        for _ = 1 to n do
          let k = Rw_storage.Prng.int rng 200 in
          let key = Int64.of_int k in
          if Hashtbl.mem model k then
            if Rw_storage.Prng.bool rng then begin
              Database.delete !db txn ~table:"t" ~key;
              Hashtbl.remove model k
            end
            else begin
              let v = Rw_storage.Prng.alpha_string rng 20 in
              Database.update !db txn ~table:"t" [ Row.Int key; Row.Text v ];
              Hashtbl.replace model k v
            end
          else begin
            let v = Rw_storage.Prng.alpha_string rng 20 in
            Database.insert !db txn ~table:"t" [ Row.Int key; Row.Text v ];
            Hashtbl.replace model k v
          end
        done);
    (* Sometimes a checkpoint; sometimes an uncommitted loser (flushed or
       not); then crash with 50% probability. *)
    if Rw_storage.Prng.int rng 100 < 30 then ignore (Database.checkpoint !db);
    if Rw_storage.Prng.int rng 100 < 60 then begin
      let txn = Database.begin_txn !db in
      for _ = 1 to 1 + Rw_storage.Prng.int rng 5 do
        let k = 1000 + Rw_storage.Prng.int rng 50 in
        (try Database.insert !db txn ~table:"t" [ Row.Int (Int64.of_int k); Row.Text "loser" ]
         with Rw_access.Btree.Duplicate_key _ -> ())
      done;
      if Rw_storage.Prng.bool rng then Log_manager.flush_all (Database.log !db)
      (* else: the loser's tail is lost with the crash *)
    end;
    if Rw_storage.Prng.bool rng then db := Database.crash_and_reopen !db
    else begin
      (* No crash: roll the loser back if one is still open. *)
      match Rw_txn.Txn_manager.active_txns (Database.txn_manager !db) with
      | [] -> ()
      | _ -> db := Database.crash_and_reopen !db
    end;
    (* Validate against the model. *)
    let actual = ref 0 in
    Database.scan !db ~table:"t" ~f:(fun row ->
        incr actual;
        match row with
        | [ Row.Int k; Row.Text v ] ->
            let k = Int64.to_int k in
            if k < 1000 then begin
              match Hashtbl.find_opt model k with
              | Some v' when v' = v -> ()
              | _ -> Alcotest.failf "key %d diverged from model" k
            end
            else Alcotest.failf "loser row %d survived" k
        | _ -> Alcotest.fail "bad row shape")
    done;
  check_int "final cardinality" (Hashtbl.length model) (Database.row_count !db ~table:"t")

let test_snapshot_after_recovery () =
  let db = mk_db () in
  let clock = Database.clock db in
  seed db 20;
  Rw_storage.Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Rw_storage.Sim_clock.now_us clock in
  Database.with_txn db (fun txn -> Database.delete db txn ~table:"t" ~key:5L);
  let db = Database.crash_and_reopen db in
  (* The log survived the crash, so the past is still reachable. *)
  let snap = Database.create_as_of_snapshot db ~name:"past" ~wall_us:t_past in
  check "pre-crash history visible" true (Database.get snap ~table:"t" ~key:5L <> None);
  check "primary still lacks the row" true (Database.get db ~table:"t" ~key:5L = None)

let () =
  Alcotest.run "recovery"
    [
      ( "crash",
        [
          Alcotest.test_case "committed survive" `Quick test_committed_survive_crash;
          Alcotest.test_case "losers rolled back" `Quick test_uncommitted_rolled_back;
          Alcotest.test_case "unflushed loser vanishes" `Quick test_unflushed_loser_simply_vanishes;
          Alcotest.test_case "checkpoint bounds analysis" `Quick test_checkpoint_bounds_analysis;
          Alcotest.test_case "repeated crash idempotent" `Quick test_double_crash_idempotent;
          Alcotest.test_case "crash mid rollback" `Quick test_crash_mid_rollback_resumes;
          Alcotest.test_case "txn ids not reused" `Quick test_txn_ids_not_reused_after_recovery;
          Alcotest.test_case "drop + realloc recovered" `Quick test_recovery_with_drop_and_realloc;
          Alcotest.test_case "randomised crash fuzz" `Quick test_crash_fuzz;
          Alcotest.test_case "snapshot after recovery" `Quick test_snapshot_after_recovery;
        ] );
    ]
