(* SQL layer tests: lexer, parser, executor semantics, and the paper's
   full dropped-table recovery scenario in plain SQL. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Engine = Rw_engine.Engine
module Row = Rw_engine.Row
module Lexer = Rw_sql.Lexer
module Parser = Rw_sql.Parser
module Ast = Rw_sql.Ast
module Executor = Rw_sql.Executor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_session () =
  let eng = Engine.create ~media:Media.ram () in
  (eng, Executor.create_session eng)

let rows_of = function
  | Executor.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let affected = function
  | Executor.Affected n -> n
  | _ -> Alcotest.fail "expected affected-count"

(* --- lexer --- *)

let test_lexer_basics () =
  let tokens = Lexer.tokenize "SELECT * FROM t WHERE a >= 10 AND b = 'x''y';" in
  check "token count" true (List.length tokens = 13);
  (match Lexer.tokenize "'abc'" with
  | [ Lexer.String_tok "abc" ] -> ()
  | _ -> Alcotest.fail "string literal");
  (match Lexer.tokenize "-- comment\n42" with
  | [ Lexer.Int_tok 42L ] -> ()
  | _ -> Alcotest.fail "comment skipped");
  (match Lexer.tokenize "3.25" with
  | [ Lexer.Float_tok 3.25 ] -> ()
  | _ -> Alcotest.fail "float");
  Alcotest.check_raises "bad char" (Lexer.Lex_error "unexpected character '@'") (fun () ->
      ignore (Lexer.tokenize "a @ b"));
  Alcotest.check_raises "unterminated" (Lexer.Lex_error "unterminated string literal")
    (fun () -> ignore (Lexer.tokenize "'abc"))

(* --- parser --- *)

let test_parse_create_snapshot () =
  match Parser.parse "CREATE DATABASE snap AS SNAPSHOT OF prod AS OF '12.5'" with
  | Ast.Create_snapshot { name = "snap"; of_ = "prod"; as_of = Ast.Absolute_s 12.5 } -> ()
  | _ -> Alcotest.fail "snapshot parse"

let test_parse_relative_time () =
  match Parser.parse "CREATE DATABASE s AS SNAPSHOT OF p AS OF -30" with
  | Ast.Create_snapshot { as_of = Ast.Relative_s 30.0; _ } -> ()
  | _ -> Alcotest.fail "relative time"

let test_parse_retention () =
  (match Parser.parse "ALTER DATABASE db SET UNDO_INTERVAL = 24 HOURS" with
  | Ast.Alter_retention { database = "db"; interval_s = Some s } ->
      check "24h in seconds" true (s = 86400.0)
  | _ -> Alcotest.fail "retention parse");
  match Parser.parse "ALTER DATABASE db SET UNDO_INTERVAL NONE" with
  | Ast.Alter_retention { interval_s = None; _ } -> ()
  | _ -> Alcotest.fail "retention none"

let test_parse_select_where () =
  match Parser.parse "SELECT a, b FROM db.t WHERE k BETWEEN 3 AND 7 AND b = 'z'" with
  | Ast.Select
      { proj = Ast.Columns [ "a"; "b" ]; from = { database = Some "db"; table = "t" }; where; _ }
    ->
      check_int "three conditions (between expands)" 3 (List.length where)
  | _ -> Alcotest.fail "select parse"

let test_parse_errors () =
  let bad s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> ()
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "SELECT";
  bad "CREATE TABLE t";
  bad "INSERT INTO t";
  bad "SELECT * FROM t WHERE";
  bad "FROB THE KNOB";
  bad "SELECT * FROM t extra"

let test_parse_script () =
  let stmts = Parser.parse_script "BEGIN; COMMIT;  ; ROLLBACK" in
  check_int "three statements" 3 (List.length stmts)

(* --- executor --- *)

let setup_shop () =
  let eng, s = mk_session () in
  ignore (Executor.run s "CREATE DATABASE shop");
  ignore (Executor.run s "USE shop");
  ignore (Executor.run s "CREATE TABLE items (id INT PRIMARY KEY, qty INT, name TEXT)");
  ignore
    (Executor.run s
       "INSERT INTO items VALUES (1, 10, 'apple'), (2, 20, 'pear'), (3, 30, 'fig')");
  (eng, s)

let test_crud_roundtrip () =
  let _, s = setup_shop () in
  let r = rows_of (Executor.run s "SELECT * FROM items WHERE id = 2") in
  check "select by key" true (r = [ [ Row.Int 2L; Row.Int 20L; Row.Text "pear" ] ]);
  check_int "update" 1 (affected (Executor.run s "UPDATE items SET qty = 99 WHERE id = 2"));
  let r = rows_of (Executor.run s "SELECT qty FROM items WHERE id = 2") in
  check "updated" true (r = [ [ Row.Int 99L ] ]);
  check_int "delete" 1 (affected (Executor.run s "DELETE FROM items WHERE id = 1"));
  let r = rows_of (Executor.run s "SELECT COUNT(*) FROM items") in
  check "count" true (r = [ [ Row.Int 2L ] ])

let test_where_variants () =
  let _, s = setup_shop () in
  let count q = List.length (rows_of (Executor.run s q)) in
  check_int "range" 2 (count "SELECT * FROM items WHERE id >= 2");
  check_int "between" 2 (count "SELECT * FROM items WHERE id BETWEEN 1 AND 2");
  check_int "ne on key" 2 (count "SELECT * FROM items WHERE id <> 2");
  check_int "non-key filter" 1 (count "SELECT * FROM items WHERE name = 'fig'");
  check_int "combined" 1 (count "SELECT * FROM items WHERE id >= 2 AND qty = 30");
  check_int "empty range" 0 (count "SELECT * FROM items WHERE id > 5 AND id < 3")

let test_explicit_transaction () =
  let _, s = setup_shop () in
  ignore (Executor.run s "BEGIN");
  ignore (Executor.run s "INSERT INTO items VALUES (4, 40, 'plum')");
  ignore (Executor.run s "ROLLBACK");
  check_int "rolled back" 0
    (List.length (rows_of (Executor.run s "SELECT * FROM items WHERE id = 4")));
  ignore (Executor.run s "BEGIN");
  ignore (Executor.run s "INSERT INTO items VALUES (4, 40, 'plum')");
  ignore (Executor.run s "COMMIT");
  check_int "committed" 1
    (List.length (rows_of (Executor.run s "SELECT * FROM items WHERE id = 4")))

let test_type_errors () =
  let _, s = setup_shop () in
  let bad q =
    match Executor.run s q with
    | exception Executor.Sql_error _ -> ()
    | _ -> Alcotest.failf "expected error for %S" q
  in
  bad "INSERT INTO items VALUES ('one', 10, 'apple')";
  bad "INSERT INTO items VALUES (9, 'ten', 'apple')";
  bad "INSERT INTO items VALUES (9, 10)";
  bad "UPDATE items SET id = 5 WHERE id = 2";
  bad "SELECT * FROM ghosts";
  bad "SELECT nope FROM items";
  bad "INSERT INTO items VALUES (1, 1, 'dup')";
  bad "CREATE TABLE items (id INT)"

let test_paper_scenario_in_sql () =
  (* The motivating example from the paper's introduction: a table dropped
     by mistake is recovered by mounting an as-of snapshot, inspecting the
     metadata, and reconciling with INSERT ... SELECT. *)
  let eng, s = setup_shop () in
  Sim_clock.advance_us (Engine.clock eng) 2_000_000.0;
  ignore (Executor.run s "CHECKPOINT");
  let t_before_drop = Engine.now_s eng in
  Sim_clock.advance_us (Engine.clock eng) 2_000_000.0;
  ignore (Executor.run s "DROP TABLE items");
  (match Executor.run s "SELECT * FROM items" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "table should be gone");
  (* Mount a snapshot as of a time when the table still existed. *)
  ignore
    (Executor.run s
       (Printf.sprintf "CREATE DATABASE shop_asof AS SNAPSHOT OF shop AS OF %.6f"
          t_before_drop));
  (* The catalog time-travelled: the table is visible in the snapshot. *)
  let r = rows_of (Executor.run s "SELECT * FROM shop_asof.items WHERE id = 2") in
  check "old row visible in snapshot" true (r = [ [ Row.Int 2L; Row.Int 20L; Row.Text "pear" ] ]);
  (* Recreate and reconcile. *)
  ignore (Executor.run s "CREATE TABLE items (id INT PRIMARY KEY, qty INT, name TEXT)");
  let n = affected (Executor.run s "INSERT INTO shop.items SELECT * FROM shop_asof.items") in
  check_int "all rows recovered" 3 n;
  let r = rows_of (Executor.run s "SELECT COUNT(*) FROM items") in
  check "reconciled" true (r = [ [ Row.Int 3L ] ]);
  (* Snapshots are read-only. *)
  match Executor.run s "INSERT INTO shop_asof.items VALUES (9, 9, 'x')" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "snapshot must be read-only"

let test_show_and_use () =
  let _, s = setup_shop () in
  ignore (Executor.run s "CREATE DATABASE other");
  let dbs = rows_of (Executor.run s "SHOW DATABASES") in
  check_int "two databases" 2 (List.length dbs);
  ignore (Executor.run s "USE other");
  check "current switched" true (Executor.current_database s = Some "other");
  let tables = rows_of (Executor.run s "SHOW TABLES") in
  check_int "no tables in fresh db" 0 (List.length tables)

let test_retention_via_sql () =
  let eng, s = setup_shop () in
  let clock = Engine.clock eng in
  ignore (Executor.run s "ALTER DATABASE shop SET UNDO_INTERVAL = 5 SECONDS");
  for i = 10 to 40 do
    Sim_clock.advance_us clock 1_000_000.0;
    ignore (Executor.run s (Printf.sprintf "INSERT INTO items VALUES (%d, 1, 'r')" i));
    if i mod 5 = 0 then ignore (Executor.run s "CHECKPOINT")
  done;
  (* Asking for a snapshot way before the retention window fails cleanly. *)
  (match Executor.run s "CREATE DATABASE old AS SNAPSHOT OF shop AS OF 0.5" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected out-of-retention error");
  (* A recent snapshot works. *)
  ignore (Executor.run s "CREATE DATABASE recent AS SNAPSHOT OF shop AS OF -2");
  check "recent snapshot queryable" true
    (List.length (rows_of (Executor.run s "SELECT * FROM recent.items")) > 0)

let test_order_by_limit () =
  let _, s = setup_shop () in
  let keys q =
    List.map
      (fun row -> match row with Row.Int k :: _ -> Int64.to_int k | _ -> -1)
      (rows_of (Executor.run s q))
  in
  check "order asc" true (keys "SELECT * FROM items ORDER BY qty ASC" = [ 1; 2; 3 ]);
  check "order desc" true (keys "SELECT * FROM items ORDER BY qty DESC" = [ 3; 2; 1 ]);
  check "order by text" true (keys "SELECT * FROM items ORDER BY name" = [ 1; 3; 2 ]);
  check "limit" true (keys "SELECT * FROM items ORDER BY id DESC LIMIT 2" = [ 3; 2 ]);
  check "limit zero" true (keys "SELECT * FROM items LIMIT 0" = []);
  match Executor.run s "SELECT * FROM items ORDER BY ghost" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected error for unknown order column"

let test_aggregates () =
  let _, s = setup_shop () in
  let one q =
    match rows_of (Executor.run s q) with [ row ] -> row | _ -> Alcotest.fail "one row"
  in
  check "sum" true (one "SELECT SUM(qty) FROM items" = [ Row.Int 60L ]);
  check "min/max together" true
    (one "SELECT MIN(qty), MAX(qty), COUNT(*) FROM items"
    = [ Row.Int 10L; Row.Int 30L; Row.Int 3L ]);
  check "filtered sum" true (one "SELECT SUM(qty) FROM items WHERE id >= 2" = [ Row.Int 50L ]);
  check "empty sum is zero" true
    (one "SELECT SUM(qty) FROM items WHERE id > 100" = [ Row.Int 0L ]);
  (match Executor.run s "SELECT MIN(qty) FROM items WHERE id > 100" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "MIN over empty should error");
  match Executor.run s "SELECT SUM(name) FROM items" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "SUM over TEXT should error"

let test_undo_transaction_sql () =
  let _, s = setup_shop () in
  ignore (Executor.run s "INSERT INTO items VALUES (9, 90, 'mistake')");
  (* Find the newest committed transaction in SHOW HISTORY. *)
  let victim =
    match rows_of (Executor.run s "SHOW HISTORY") with
    | (Row.Int id :: _) :: _ -> Int64.to_int id
    | _ -> Alcotest.fail "expected history rows"
  in
  (match Executor.run s (Printf.sprintf "UNDO TRANSACTION %d" victim) with
  | Executor.Message _ -> ()
  | _ -> Alcotest.fail "expected message");
  check_int "mistake erased" 0
    (List.length (rows_of (Executor.run s "SELECT * FROM items WHERE id = 9")));
  check_int "other rows untouched" 3
    (List.length (rows_of (Executor.run s "SELECT * FROM items")));
  (* Undoing a transaction that later work built on is refused. *)
  ignore (Executor.run s "INSERT INTO items VALUES (10, 1, 'base')");
  let victim2 =
    match rows_of (Executor.run s "SHOW HISTORY") with
    | (Row.Int id :: _) :: _ -> Int64.to_int id
    | _ -> Alcotest.fail "expected history rows"
  in
  ignore (Executor.run s "UPDATE items SET qty = 2 WHERE id = 10");
  (match Executor.run s (Printf.sprintf "UNDO TRANSACTION %d" victim2) with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected conflict error");
  (* Unknown ids are rejected. *)
  match Executor.run s "UNDO TRANSACTION 99999" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected error for unknown txn"

let test_pp_result () =
  let _, s = setup_shop () in
  let out = Format.asprintf "%a" Executor.pp_result (Executor.run s "SELECT * FROM items") in
  check "header present" true
    (String.length out > 0
    && String.sub out 0 2 = "id"
    && String.length (String.trim out) > 10)

let () =
  Alcotest.run "sql"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer_basics ]);
      ( "parser",
        [
          Alcotest.test_case "create snapshot" `Quick test_parse_create_snapshot;
          Alcotest.test_case "relative time" `Quick test_parse_relative_time;
          Alcotest.test_case "retention" `Quick test_parse_retention;
          Alcotest.test_case "select where" `Quick test_parse_select_where;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "script" `Quick test_parse_script;
        ] );
      ( "executor",
        [
          Alcotest.test_case "crud" `Quick test_crud_roundtrip;
          Alcotest.test_case "where variants" `Quick test_where_variants;
          Alcotest.test_case "transactions" `Quick test_explicit_transaction;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "paper scenario" `Quick test_paper_scenario_in_sql;
          Alcotest.test_case "show/use" `Quick test_show_and_use;
          Alcotest.test_case "retention" `Quick test_retention_via_sql;
          Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "undo transaction" `Quick test_undo_transaction_sql;
          Alcotest.test_case "result formatting" `Quick test_pp_result;
        ] );
    ]
