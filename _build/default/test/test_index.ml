(* Secondary index tests: backfill, DML maintenance, lookups (INT and TEXT,
   hash collisions included), crash recovery, as-of snapshots of index
   state, and the SQL planner path. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Prng = Rw_storage.Prng
module Schema = Rw_catalog.Schema
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module Index = Rw_engine.Index
module Executor = Rw_sql.Executor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cols =
  [
    { Schema.name = "id"; ctype = Schema.Int };
    { Schema.name = "city"; ctype = Schema.Text };
    { Schema.name = "amount"; ctype = Schema.Int };
  ]

let cities = [| "oslo"; "lima"; "pune"; "kiel" |]

let mk_db ?(n = 40) () =
  let clock = Sim_clock.create () in
  let db = Database.create ~name:"ix" ~clock ~media:Media.ram () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_table db txn ~table:"orders" ~columns:cols ());
      for i = 1 to n do
        Database.insert db txn ~table:"orders"
          [
            Row.Int (Int64.of_int i);
            Row.Text cities.(i mod Array.length cities);
            Row.Int (Int64.of_int (i * 10));
          ]
      done);
  db

let lookup_ids db column value =
  Database.lookup_by_index db ~table:"orders" ~column ~value
  |> List.map (fun row -> match row with Row.Int id :: _ -> Int64.to_int id | _ -> -1)
  |> List.sort compare

let scan_ids db column value =
  let acc = ref [] in
  Database.scan db ~table:"orders" ~f:(fun row ->
      let v = match column with "city" -> List.nth row 1 | _ -> List.nth row 2 in
      match row with
      | Row.Int id :: _ when Row.equal_value v value -> acc := Int64.to_int id :: !acc
      | _ -> ());
  List.sort compare !acc

let test_backfill_and_lookup () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  Array.iter
    (fun city ->
      let v = Row.Text city in
      check (Printf.sprintf "index agrees with scan for %s" city) true
        (lookup_ids db "city" v = scan_ids db "city" v))
    cities;
  check "no hits for unknown value" true (lookup_ids db "city" (Row.Text "nowhere") = []);
  check_int "entry count equals rows" 40
    (Index.entry_count (Database.ctx db) (List.hd (Database.indexes db ~table:"orders")))

let test_maintenance_on_dml () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  Database.with_txn db (fun txn ->
      Database.insert db txn ~table:"orders" [ Row.Int 100L; Row.Text "oslo"; Row.Int 5L ];
      (* Move row 1 from lima to kiel. *)
      Database.update db txn ~table:"orders" [ Row.Int 1L; Row.Text "kiel"; Row.Int 10L ];
      Database.delete db txn ~table:"orders" ~key:2L);
  check "insert indexed" true (List.mem 100 (lookup_ids db "city" (Row.Text "oslo")));
  check "update moved posting" true (List.mem 1 (lookup_ids db "city" (Row.Text "kiel")));
  check "update removed old posting" false (List.mem 1 (lookup_ids db "city" (Row.Text "lima")));
  check "delete removed posting" false
    (List.mem 2 (lookup_ids db "city" (Row.Text (cities.(2 mod 4)))));
  Array.iter
    (fun city ->
      let v = Row.Text city in
      check "still agrees with scan" true (lookup_ids db "city" v = scan_ids db "city" v))
    cities

let test_int_index_and_duplicates () =
  let db = mk_db ~n:0 () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"amount" ()));
  (* 500 rows sharing one value exercises posting-bucket chaining. *)
  Database.with_txn db (fun txn ->
      for i = 1 to 500 do
        Database.insert db txn ~table:"orders"
          [ Row.Int (Int64.of_int i); Row.Text "x"; Row.Int 7L ]
      done);
  check_int "500 duplicates found" 500 (List.length (lookup_ids db "amount" (Row.Int 7L)));
  (* Delete half and re-check. *)
  Database.with_txn db (fun txn ->
      for i = 1 to 250 do
        Database.delete db txn ~table:"orders" ~key:(Int64.of_int i)
      done);
  check_int "250 left" 250 (List.length (lookup_ids db "amount" (Row.Int 7L)))

let test_rejections () =
  let db = mk_db () in
  let rejected f =
    match Database.with_txn db f with
    | exception Invalid_argument _ -> true
    | exception Rw_engine.Database.No_such_index _ -> true
    | _ -> false
  in
  check "key column rejected" true
    (rejected (fun txn -> ignore (Database.create_index db txn ~table:"orders" ~column:"id" ())));
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  check "duplicate name rejected" true
    (rejected (fun txn ->
         ignore (Database.create_index db txn ~table:"orders" ~column:"city" ())));
  Database.with_txn db (fun txn ->
      ignore
        (Database.create_table db txn ~table:"hp" ~columns:cols ~kind:Schema.Heap_table ()));
  check "heap table rejected" true
    (rejected (fun txn -> ignore (Database.create_index db txn ~table:"hp" ~column:"city" ())));
  check "unknown index on drop" true
    (rejected (fun txn -> Database.drop_index db txn ~table:"orders" ~name:"ghost"))

let test_drop_frees_pages () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  let ix = List.hd (Database.indexes db ~table:"orders") in
  Database.with_txn db (fun txn -> Database.drop_index db txn ~table:"orders" ~name:ix.Schema.index_name);
  check "catalog updated" true (Database.indexes db ~table:"orders" = []);
  check "index pages freed" false
    (Rw_access.Alloc_map.is_allocated (Database.ctx db) ix.Schema.index_root);
  (* Dropping the whole table frees index pages too. *)
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  let ix2 = List.hd (Database.indexes db ~table:"orders") in
  Database.with_txn db (fun txn -> Database.drop_table db txn "orders");
  check "index pages freed with table" false
    (Rw_access.Alloc_map.is_allocated (Database.ctx db) ix2.Schema.index_root)

let test_index_crash_recovery () =
  let db = mk_db () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  Database.with_txn db (fun txn ->
      Database.insert db txn ~table:"orders" [ Row.Int 200L; Row.Text "oslo"; Row.Int 1L ]);
  let db = Database.crash_and_reopen db in
  check "index survives crash" true (List.mem 200 (lookup_ids db "city" (Row.Text "oslo")));
  Array.iter
    (fun city ->
      let v = Row.Text city in
      check "post-crash agreement" true (lookup_ids db "city" v = scan_ids db "city" v))
    cities

let test_index_time_travel () =
  let db = mk_db () in
  let clock = Database.clock db in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ()));
  Sim_clock.advance_us clock 1_000_000.0;
  let t_past = Sim_clock.now_us clock in
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"orders" [ Row.Int 1L; Row.Text "kiel"; Row.Int 10L ]);
  let snap = Database.create_as_of_snapshot db ~name:"ixsnap" ~wall_us:t_past in
  (* The index in the snapshot reflects the OLD value: the posting pages
     themselves were rewound. *)
  check "snapshot index has old posting" true (List.mem 1 (lookup_ids snap "city" (Row.Text "lima")));
  check "snapshot index lacks new posting" false
    (List.mem 1 (lookup_ids snap "city" (Row.Text "kiel")));
  check "primary index has new posting" true (List.mem 1 (lookup_ids db "city" (Row.Text "kiel")))

let test_sql_index_path () =
  let eng = Rw_engine.Engine.create ~media:Media.ram () in
  let s = Executor.create_session eng in
  let run q = Executor.run s q in
  ignore (run "CREATE DATABASE d");
  ignore (run "CREATE TABLE events (id INT, tag TEXT, n INT)");
  for i = 1 to 60 do
    ignore
      (run
         (Printf.sprintf "INSERT INTO events VALUES (%d, 'tag%d', %d)" i (i mod 3) (i mod 7)))
  done;
  ignore (run "CREATE INDEX ix_tag ON events (tag)");
  ignore (run "CREATE INDEX ix_n ON events (n)");
  let rows q = match run q with Executor.Rows { rows; _ } -> rows | _ -> [] in
  check_int "indexed text lookup" 20 (List.length (rows "SELECT * FROM events WHERE tag = 'tag1'"));
  check_int "indexed int lookup + residual" 3
    (List.length (rows "SELECT * FROM events WHERE n = 3 AND id <= 20"));
  check_int "order+limit over index path" 2
    (List.length (rows "SELECT * FROM events WHERE tag = 'tag0' ORDER BY id DESC LIMIT 2"));
  ignore (run "DROP INDEX ix_tag ON events");
  check_int "same answer without index" 20
    (List.length (rows "SELECT * FROM events WHERE tag = 'tag1'"));
  match run "DROP INDEX ix_tag ON events" with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected error dropping missing index"

(* Randomised agreement: arbitrary DML with an index on both a TEXT and an
   INT column must always agree with full scans. *)
let test_index_fuzz () =
  let db = mk_db ~n:0 () in
  Database.with_txn db (fun txn ->
      ignore (Database.create_index db txn ~table:"orders" ~column:"city" ());
      ignore (Database.create_index db txn ~table:"orders" ~column:"amount" ()));
  let rng = Prng.create 555 in
  let present = Hashtbl.create 64 in
  for _ = 1 to 400 do
    let k = Prng.int rng 80 in
    let key = Int64.of_int k in
    Database.with_txn db (fun txn ->
        if Hashtbl.mem present k then
          if Prng.bool rng then begin
            Database.delete db txn ~table:"orders" ~key;
            Hashtbl.remove present k
          end
          else
            Database.update db txn ~table:"orders"
              [ Row.Int key; Row.Text (Prng.pick rng cities); Row.Int (Int64.of_int (Prng.int rng 5)) ]
        else begin
          Database.insert db txn ~table:"orders"
            [ Row.Int key; Row.Text (Prng.pick rng cities); Row.Int (Int64.of_int (Prng.int rng 5)) ];
          Hashtbl.replace present k ()
        end)
  done;
  Array.iter
    (fun city ->
      let v = Row.Text city in
      check "city agreement" true (lookup_ids db "city" v = scan_ids db "city" v))
    cities;
  for n = 0 to 4 do
    let v = Row.Int (Int64.of_int n) in
    check "amount agreement" true (lookup_ids db "amount" v = scan_ids db "amount" v)
  done

let () =
  Alcotest.run "index"
    [
      ( "engine",
        [
          Alcotest.test_case "backfill + lookup" `Quick test_backfill_and_lookup;
          Alcotest.test_case "DML maintenance" `Quick test_maintenance_on_dml;
          Alcotest.test_case "duplicates / buckets" `Quick test_int_index_and_duplicates;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "drop frees pages" `Quick test_drop_frees_pages;
          Alcotest.test_case "crash recovery" `Quick test_index_crash_recovery;
          Alcotest.test_case "time travel" `Quick test_index_time_travel;
          Alcotest.test_case "randomised agreement" `Quick test_index_fuzz;
        ] );
      ("sql", [ Alcotest.test_case "planner path" `Quick test_sql_index_path ]);
    ]
