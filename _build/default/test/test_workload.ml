(* Workload tests: TPC-C-like loader, transaction mix, cross-table
   consistency — including consistency of as-of snapshots and of the
   database after crash recovery under the full workload. *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Database = Rw_engine.Database
module Engine = Rw_engine.Engine
module Row = Rw_engine.Row
module Tpcc = Rw_workload.Tpcc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Tpcc.small_config

let mk () =
  let eng = Engine.create ~media:Media.ram () in
  let db = Engine.create_database eng ~checkpoint_interval_us:500_000.0 "tpcc" in
  Tpcc.load db cfg;
  (eng, db, Tpcc.create db cfg)

let test_load_population () =
  let _, db, _ = mk () in
  check_int "warehouses" cfg.Tpcc.warehouses (Database.row_count db ~table:"warehouse");
  check_int "districts" (cfg.Tpcc.warehouses * cfg.Tpcc.districts)
    (Database.row_count db ~table:"district");
  check_int "customers"
    (cfg.Tpcc.warehouses * cfg.Tpcc.districts * cfg.Tpcc.customers)
    (Database.row_count db ~table:"customer");
  check_int "items" cfg.Tpcc.items (Database.row_count db ~table:"item");
  check_int "stock" (cfg.Tpcc.warehouses * cfg.Tpcc.items) (Database.row_count db ~table:"stock");
  check_int "initial orders"
    (cfg.Tpcc.warehouses * cfg.Tpcc.districts * cfg.Tpcc.initial_orders)
    (Database.row_count db ~table:"orders");
  check "initially consistent" true (Tpcc.consistency_check db cfg = Ok ())

let test_new_order_effects () =
  let _, db, drv = mk () in
  let orders0 = Database.row_count db ~table:"orders" in
  let lines0 = Database.row_count db ~table:"order_line" in
  for _ = 1 to 10 do
    Tpcc.new_order drv
  done;
  check_int "ten orders" (orders0 + 10) (Database.row_count db ~table:"orders");
  check "order lines grew" true (Database.row_count db ~table:"order_line" > lines0);
  check "still consistent" true (Tpcc.consistency_check db cfg = Ok ())

let test_payment_effects () =
  let _, db, drv = mk () in
  for _ = 1 to 10 do
    Tpcc.payment drv
  done;
  (* Money conservation: sum of warehouse ytd equals sum of district ytd. *)
  let sum table idx =
    let total = ref 0L in
    Database.scan db ~table ~f:(fun row ->
        match List.nth row idx with
        | Row.Int v -> total := Int64.add !total v
        | Row.Text _ -> ());
    !total
  in
  check "w_ytd = sum d_ytd" true (sum "warehouse" 1 = sum "district" 2);
  check "ytd positive" true (sum "warehouse" 1 > 0L)

let test_mix_and_tpmc () =
  let eng, db, drv = mk () in
  let t0 = Engine.now_us eng in
  let stats = Tpcc.run_mix drv ~txns:300 in
  let elapsed = Engine.now_us eng -. t0 in
  check_int "all txns ran" 300
    (stats.Tpcc.new_orders + stats.Tpcc.payments + stats.Tpcc.order_statuses
   + stats.Tpcc.stock_levels);
  check "mix roughly 45% new-order" true
    (stats.Tpcc.new_orders > 90 && stats.Tpcc.new_orders < 190);
  check "tpmc positive" true (Tpcc.tpmc stats ~elapsed_us:elapsed > 0.0);
  check "consistent after mix" true (Tpcc.consistency_check db cfg = Ok ())

let test_stock_level_query () =
  let _, db, drv = mk () in
  for _ = 1 to 30 do
    Tpcc.new_order drv
  done;
  let n = Tpcc.stock_level db cfg ~w:1 ~d:1 ~threshold:101 in
  (* Threshold above max quantity: every distinct recent item counts. *)
  check "stock level counts items" true (n > 0);
  check_int "threshold 0 counts nothing" 0 (Tpcc.stock_level db cfg ~w:1 ~d:1 ~threshold:0)

let test_snapshot_consistency_under_load () =
  let eng, db, drv = mk () in
  let clock = Engine.clock eng in
  ignore (Tpcc.run_mix drv ~txns:150);
  Sim_clock.advance_us clock 1_000_000.0;
  let t_mid = Engine.now_us eng in
  let mid_orders = Database.row_count db ~table:"orders" in
  ignore (Tpcc.run_mix drv ~txns:150);
  let snap = Database.create_as_of_snapshot db ~name:"mid" ~wall_us:t_mid in
  (* The snapshot view satisfies all cross-table invariants... *)
  check "snapshot consistent" true (Tpcc.consistency_check snap cfg = Ok ());
  (* ...and reflects exactly the mid-point state. *)
  check_int "orders as of mid" mid_orders (Database.row_count snap ~table:"orders");
  check "primary moved on" true (Database.row_count db ~table:"orders" > mid_orders);
  (* The as-of stock-level query works against the snapshot. *)
  ignore (Tpcc.stock_level snap cfg ~w:1 ~d:1 ~threshold:15)

let test_crash_recovery_under_load () =
  let _, db, drv = mk () in
  ignore (Tpcc.run_mix drv ~txns:200);
  let orders = Database.row_count db ~table:"orders" in
  let db = Database.crash_and_reopen db in
  check_int "orders survive" orders (Database.row_count db ~table:"orders");
  check "consistent after recovery" true (Tpcc.consistency_check db cfg = Ok ())

let test_determinism () =
  let run () =
    let _, db, drv = mk () in
    ignore (Tpcc.run_mix drv ~txns:100);
    let acc = ref [] in
    Database.scan db ~table:"orders" ~f:(fun row -> acc := row :: !acc);
    !acc
  in
  check "same seed, same orders" true (run () = run ())

let () =
  Alcotest.run "workload"
    [
      ( "tpcc",
        [
          Alcotest.test_case "load population" `Quick test_load_population;
          Alcotest.test_case "new order" `Quick test_new_order_effects;
          Alcotest.test_case "payment conservation" `Quick test_payment_effects;
          Alcotest.test_case "mix and tpmc" `Quick test_mix_and_tpmc;
          Alcotest.test_case "stock level" `Quick test_stock_level_query;
          Alcotest.test_case "snapshot consistency" `Quick test_snapshot_consistency_under_load;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery_under_load;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
