(* Catalog tests: schema serialisation, table lifecycle, metadata stored as
   ordinary logged data. *)

module Page = Rw_storage.Page
module Page_id = Rw_storage.Page_id
module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Log_manager = Rw_wal.Log_manager
module Buffer_pool = Rw_buffer.Buffer_pool
module Lock_manager = Rw_txn.Lock_manager
module Txn_manager = Rw_txn.Txn_manager
module Access_ctx = Rw_access.Access_ctx
module Alloc_map = Rw_access.Alloc_map
module Boot = Rw_access.Boot
module Schema = Rw_catalog.Schema
module System_tables = Rw_catalog.System_tables

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = { txns : Txn_manager.t; ctx : Access_ctx.t; alloc : Alloc_map.t }

let mk_env () =
  let clock = Sim_clock.create () in
  let disk = Disk.create ~clock ~media:Media.ram () in
  let log = Log_manager.create ~clock ~media:Media.ram () in
  let pool =
    Buffer_pool.create ~capacity:128 ~source:(Buffer_pool.of_disk disk)
      ~wal_flush:(fun lsn -> Log_manager.flush log ~upto:lsn)
      ()
  in
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  let ctx = Access_ctx.create ~pool ~txns ~log ~clock () in
  let txn = Txn_manager.begin_txn txns in
  Boot.init ctx txn;
  Boot.set ctx txn Boot.key_next_page_id 2L;
  Alloc_map.init ctx txn;
  let alloc = Alloc_map.open_ ctx in
  System_tables.init ctx alloc txn;
  Txn_manager.commit txns txn ~wall_us:0.0;
  Txn_manager.finished txns txn;
  { txns; ctx; alloc }

let with_txn env f =
  let txn = Txn_manager.begin_txn env.txns in
  let v = f txn in
  Txn_manager.commit env.txns txn ~wall_us:0.0;
  Txn_manager.finished env.txns txn;
  v

let cols = [ { Schema.name = "id"; ctype = Schema.Int }; { Schema.name = "body"; ctype = Schema.Text } ]

(* --- schema codec --- *)

let test_schema_roundtrip () =
  let t =
    {
      Schema.id = 42;
      name = "orders";
      kind = Schema.Btree_table;
      root = Page_id.of_int 17;
      columns =
        [
          { Schema.name = "o_id"; ctype = Schema.Int };
          { Schema.name = "note"; ctype = Schema.Text };
          { Schema.name = "qty"; ctype = Schema.Int };
        ];
      indexes = [];
    }
  in
  check "roundtrip" true (Schema.decode (Schema.encode t) = t);
  let heap = { t with Schema.kind = Schema.Heap_table; columns = cols } in
  check "heap roundtrip" true (Schema.decode (Schema.encode heap) = heap)

let test_schema_validate () =
  let ok name columns = Schema.validate ~name ~columns = Ok () in
  check "valid" true (ok "orders" cols);
  check "empty name" false (ok "" cols);
  check "bad chars" false (ok "or der" cols);
  check "leading digit" false (ok "1orders" cols);
  check "no columns" false (ok "orders" []);
  check "text key" false
    (ok "orders" [ { Schema.name = "k"; ctype = Schema.Text } ]);
  check "duplicate columns" false
    (ok "orders" [ { Schema.name = "a"; ctype = Schema.Int }; { Schema.name = "a"; ctype = Schema.Int } ])

(* --- system tables --- *)

let test_create_find_drop () =
  let env = mk_env () in
  let tab =
    with_txn env (fun txn ->
        System_tables.create_table env.ctx env.alloc txn ~name:"events" ~kind:Schema.Btree_table
          ~columns:cols)
  in
  check_int "first user table id" 1 tab.Schema.id;
  (match System_tables.find env.ctx "events" with
  | Some found -> check "found equals created" true (found = tab)
  | None -> Alcotest.fail "not found");
  check "find_by_id" true (System_tables.find_by_id env.ctx tab.Schema.id = Some tab);
  with_txn env (fun txn -> System_tables.drop_table env.ctx env.alloc txn "events");
  check "gone" true (System_tables.find env.ctx "events" = None);
  check "root freed" false (Alloc_map.is_allocated env.ctx tab.Schema.root)

let test_duplicate_name_rejected () =
  let env = mk_env () in
  with_txn env (fun txn ->
      ignore
        (System_tables.create_table env.ctx env.alloc txn ~name:"t" ~kind:Schema.Btree_table
           ~columns:cols));
  let txn = Txn_manager.begin_txn env.txns in
  Alcotest.check_raises "duplicate" (System_tables.Table_exists "t") (fun () ->
      ignore
        (System_tables.create_table env.ctx env.alloc txn ~name:"t" ~kind:Schema.Btree_table
           ~columns:cols));
  Txn_manager.rollback env.txns txn ~write_page:(Access_ctx.page_writer env.ctx)

let test_drop_missing () =
  let env = mk_env () in
  let txn = Txn_manager.begin_txn env.txns in
  Alcotest.check_raises "missing" (System_tables.No_such_table "ghost") (fun () ->
      System_tables.drop_table env.ctx env.alloc txn "ghost");
  Txn_manager.rollback env.txns txn ~write_page:(Access_ctx.page_writer env.ctx)

let test_list_tables_ordered () =
  let env = mk_env () in
  with_txn env (fun txn ->
      List.iter
        (fun n ->
          ignore
            (System_tables.create_table env.ctx env.alloc txn ~name:n ~kind:Schema.Btree_table
               ~columns:cols))
        [ "charlie"; "alpha"; "bravo" ]);
  let names = List.map (fun (t : Schema.table) -> t.Schema.name) (System_tables.list_tables env.ctx) in
  check "in id (creation) order" true (names = [ "charlie"; "alpha"; "bravo" ])

let test_many_tables_split_catalog () =
  let env = mk_env () in
  (* Force the catalog B-tree itself to split across pages. *)
  with_txn env (fun txn ->
      for i = 1 to 300 do
        ignore
          (System_tables.create_table env.ctx env.alloc txn
             ~name:(Printf.sprintf "table_%03d" i) ~kind:Schema.Btree_table ~columns:cols)
      done);
  check_int "all listed" 300 (List.length (System_tables.list_tables env.ctx));
  check "specific lookup" true (System_tables.find env.ctx "table_250" <> None)

let test_heap_table_kind () =
  let env = mk_env () in
  let tab =
    with_txn env (fun txn ->
        System_tables.create_table env.ctx env.alloc txn ~name:"hp" ~kind:Schema.Heap_table
          ~columns:cols)
  in
  check "heap kind persisted" true
    ((System_tables.find_exn env.ctx "hp").Schema.kind = Schema.Heap_table);
  with_txn env (fun txn -> System_tables.drop_table env.ctx env.alloc txn "hp");
  check "heap pages freed" false (Alloc_map.is_allocated env.ctx tab.Schema.root)

let () =
  Alcotest.run "catalog"
    [
      ( "schema",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_schema_roundtrip;
          Alcotest.test_case "validation" `Quick test_schema_validate;
        ] );
      ( "system_tables",
        [
          Alcotest.test_case "create/find/drop" `Quick test_create_find_drop;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_name_rejected;
          Alcotest.test_case "drop missing" `Quick test_drop_missing;
          Alcotest.test_case "list order" `Quick test_list_tables_ordered;
          Alcotest.test_case "catalog splits" `Quick test_many_tables_split_catalog;
          Alcotest.test_case "heap tables" `Quick test_heap_table_kind;
        ] );
    ]
