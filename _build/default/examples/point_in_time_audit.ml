(* Point-in-time auditing: a ledger of account transfers is queried as of
   several moments in the past — the "arbitrary point in time query"
   capability of the paper, used not for error recovery but for audit.

   Shows that each as-of query only materialises the pages it touches,
   and that repeated queries against the same snapshot reuse the sparse
   file (the paper's amortisation argument, §6.2).

     dune exec examples/point_in_time_audit.exe *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Prng = Rw_storage.Prng
module Schema = Rw_catalog.Schema
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module As_of_snapshot = Rw_core.As_of_snapshot

let accounts = 50
let initial_balance = 1_000L

let balance db account =
  match Database.get db ~table:"accounts" ~key:(Int64.of_int account) with
  | Some [ _; Row.Int b ] -> b
  | _ -> failwith "missing account"

let total db =
  let t = ref 0L in
  Database.scan db ~table:"accounts" ~f:(fun row ->
      match row with [ _; Row.Int b ] -> t := Int64.add !t b | _ -> ());
  !t

let transfer db rng =
  let a = 1 + Prng.int rng accounts and b = 1 + Prng.int rng accounts in
  if a <> b then
    Database.with_txn db (fun txn ->
        let amount = Int64.of_int (1 + Prng.int rng 50) in
        let ba = balance db a and bb = balance db b in
        Database.update db txn ~table:"accounts"
          [ Row.Int (Int64.of_int a); Row.Int (Int64.sub ba amount) ];
        Database.update db txn ~table:"accounts"
          [ Row.Int (Int64.of_int b); Row.Int (Int64.add bb amount) ])

let () =
  let eng = Engine.create ~media:Media.ssd () in
  let db = Engine.create_database eng ~checkpoint_interval_us:1_000_000.0 "bank" in
  let rng = Prng.create 17 in
  Database.with_txn db (fun txn ->
      ignore
        (Database.create_table db txn ~table:"accounts"
           ~columns:
             [
               { Schema.name = "id"; ctype = Schema.Int };
               { Schema.name = "balance"; ctype = Schema.Int };
             ]
           ());
      for i = 1 to accounts do
        Database.insert db txn ~table:"accounts" [ Row.Int (Int64.of_int i); Row.Int initial_balance ]
      done);

  (* Run transfers, remembering audit points along the way. *)
  let audit_points = ref [] in
  for phase = 1 to 4 do
    for _ = 1 to 200 do
      transfer db rng
    done;
    Sim_clock.advance_us (Engine.clock eng) 500_000.0;
    audit_points := (phase, Engine.now_us eng, balance db 1) :: !audit_points
  done;
  Printf.printf "final:   account 1 = %Ld, total = %Ld\n\n" (balance db 1) (total db);

  (* Audit: reconstruct account 1's balance at each recorded moment and
     check the conservation invariant as of that time. *)
  List.iter
    (fun (phase, wall_us, recorded) ->
      let snap =
        Database.create_as_of_snapshot db ~name:(Printf.sprintf "audit%d" phase) ~wall_us
      in
      let b = balance snap 1 in
      let handle = Option.get (Database.snapshot_handle snap) in
      Printf.printf
        "phase %d: account 1 as-of = %4Ld (recorded %4Ld) %s | total conserved: %b | pages \
         materialised: %d\n"
        phase b recorded
        (if b = recorded then "OK " else "BUG")
        (total snap = Int64.mul (Int64.of_int accounts) initial_balance)
        (As_of_snapshot.pages_materialised handle);
      assert (b = recorded))
    (List.rev !audit_points);
  print_endline "\naudit complete: every past balance reproduced exactly."
