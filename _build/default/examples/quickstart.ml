(* Quickstart: the engine API in one file.

   Creates a database, runs transactions, rewinds the database to a past
   point with an as-of snapshot, and survives a crash.

     dune exec examples/quickstart.exe *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Schema = Rw_catalog.Schema
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Row = Rw_engine.Row
module As_of_snapshot = Rw_core.As_of_snapshot

let () =
  (* An engine bundles a simulated clock and a media model; [ssd] prices
     every I/O like a 2012-era SSD. *)
  let eng = Engine.create ~media:Media.ssd () in
  let db = Engine.create_database eng "inventory" in

  (* DDL + DML run inside transactions; [with_txn] auto-commits. *)
  Database.with_txn db (fun txn ->
      ignore
        (Database.create_table db txn ~table:"gadgets"
           ~columns:
             [
               { Schema.name = "id"; ctype = Schema.Int };
               { Schema.name = "stock"; ctype = Schema.Int };
               { Schema.name = "name"; ctype = Schema.Text };
             ]
           ());
      for i = 1 to 5 do
        Database.insert db txn ~table:"gadgets"
          [ Row.Int (Int64.of_int i); Row.Int 100L; Row.Text (Printf.sprintf "gadget-%d" i) ]
      done);
  Printf.printf "loaded %d gadgets\n" (Database.row_count db ~table:"gadgets");

  (* Let simulated time pass and remember the moment. *)
  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;
  let before_changes = Engine.now_us eng in
  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;

  (* Mutate: sell most of gadget 3, discontinue gadget 5. *)
  Database.with_txn db (fun txn ->
      Database.update db txn ~table:"gadgets" [ Row.Int 3L; Row.Int 7L; Row.Text "gadget-3" ];
      Database.delete db txn ~table:"gadgets" ~key:5L);

  (* Rewind: a read-only view of the database as of [before_changes].
     Only the pages the queries touch are reconstructed. *)
  let snap = Database.create_as_of_snapshot db ~name:"inventory_asof" ~wall_us:before_changes in
  let show label view key =
    match Database.get view ~table:"gadgets" ~key with
    | Some [ _; Row.Int stock; Row.Text name ] ->
        Printf.printf "%-12s %s stock=%Ld\n" label name stock
    | Some _ -> assert false
    | None -> Printf.printf "%-12s gadget %Ld: <no row>\n" label key
  in
  show "now:" db 3L;
  show "as-of:" snap 3L;
  show "now:" db 5L;
  show "as-of:" snap 5L;
  let handle = Option.get (Database.snapshot_handle snap) in
  Printf.printf "snapshot rebuilt only %d pages (database has %d)\n"
    (As_of_snapshot.pages_materialised handle)
    (Rw_storage.Disk.page_count (Database.disk db));

  (* Crash safety: drop all volatile state and recover via ARIES restart. *)
  let db = Database.crash_and_reopen db in
  Printf.printf "after crash recovery: %d gadgets, gadget 5 %s\n"
    (Database.row_count db ~table:"gadgets")
    (match Database.get db ~table:"gadgets" ~key:5L with Some _ -> "back?!" | None -> "still gone");
  print_endline "quickstart done"
