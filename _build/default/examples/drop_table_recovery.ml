(* The paper's motivating scenario (§1), verbatim in SQL: an application
   error drops a table; the user mounts an as-of snapshot, verifies the
   table exists there, and reconciles with INSERT ... SELECT — all without
   restoring a backup.

     dune exec examples/drop_table_recovery.exe *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Engine = Rw_engine.Engine
module Executor = Rw_sql.Executor

let sql session stmt =
  Printf.printf "sql> %s\n" stmt;
  match Executor.run session stmt with
  | result -> Format.printf "%a@." Executor.pp_result result
  | exception Executor.Sql_error msg -> Printf.printf "ERROR: %s\n" msg

let () =
  let eng = Engine.create ~media:Media.ssd () in
  let s = Executor.create_session eng in
  sql s "CREATE DATABASE shopdb";
  sql s "CREATE TABLE orders (o_id INT PRIMARY KEY, amount INT, customer TEXT)";
  sql s
    "INSERT INTO orders VALUES (1, 120, 'ada'), (2, 80, 'grace'), (3, 310, 'edsger'), (4, 45, \
     'barbara')";
  sql s "ALTER DATABASE shopdb SET UNDO_INTERVAL = 24 HOURS";
  sql s "CHECKPOINT";

  (* Time passes; more activity. *)
  Sim_clock.advance_us (Engine.clock eng) 3_000_000.0;
  sql s "INSERT INTO orders VALUES (5, 99, 'alan')";
  Sim_clock.advance_us (Engine.clock eng) 2_000_000.0;

  print_endline "\n-- the application error: --";
  sql s "DROP TABLE orders";
  sql s "SELECT * FROM orders";

  print_endline "\n-- recovery: mount a snapshot as of ~5 seconds ago --";
  (* The user guesses an approximate time; iterating over guesses is cheap
     because only metadata pages are rewound to check the catalog. *)
  sql s "CREATE DATABASE shopdb_asof AS SNAPSHOT OF shopdb AS OF -5";
  sql s "SELECT COUNT(*) FROM shopdb_asof.orders";
  sql s "SELECT * FROM shopdb_asof.orders WHERE o_id BETWEEN 1 AND 3";

  print_endline "\n-- reconcile: recreate the table and pull the rows over --";
  sql s "CREATE TABLE orders (o_id INT PRIMARY KEY, amount INT, customer TEXT)";
  sql s "INSERT INTO shopdb.orders SELECT * FROM shopdb_asof.orders";
  sql s "SELECT * FROM orders";
  sql s "DROP DATABASE shopdb_asof";
  print_endline "recovered without touching a backup."
