(* Selective transaction undo — the paper's §8 future work, implemented.

   A batch job posts wrong fees to many accounts; instead of rewinding the
   whole database (or restoring anything), the operator finds the guilty
   transaction in the log and compensates exactly its operations, with
   conflict detection against later activity.

     dune exec examples/undo_transaction.exe *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Engine = Rw_engine.Engine
module Executor = Rw_sql.Executor
module Row = Rw_engine.Row

let sql s stmt =
  Printf.printf "sql> %s\n" stmt;
  match Executor.run s stmt with
  | result -> Format.printf "%a@." Executor.pp_result result
  | exception Executor.Sql_error msg -> Printf.printf "ERROR: %s\n" msg

let () =
  let eng = Engine.create ~media:Media.ssd () in
  let s = Executor.create_session eng in
  sql s "CREATE DATABASE bank";
  sql s "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)";
  sql s "INSERT INTO accounts VALUES (1, 1000), (2, 1000), (3, 1000)";
  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;

  print_endline "\n-- the buggy batch job: double-charges every account --";
  let before_batch = Engine.now_s eng in
  sql s "BEGIN";
  sql s "UPDATE accounts SET balance = 800 WHERE id = 1";
  sql s "UPDATE accounts SET balance = 800 WHERE id = 2";
  sql s "UPDATE accounts SET balance = 800 WHERE id = 3";
  sql s "COMMIT";
  let after_batch = Engine.now_s eng in

  Sim_clock.advance_us (Engine.clock eng) 1_000_000.0;
  print_endline "\n-- unrelated activity continues on OTHER rows --";
  sql s "INSERT INTO accounts VALUES (4, 500)";

  print_endline "\n-- find the culprit in the log --";
  sql s "SHOW HISTORY";
  (* The operator knows roughly when the batch ran; pick the transaction
     whose commit time falls in that window. *)
  let victim =
    match Executor.run s "SHOW HISTORY" with
    | Executor.Rows { rows; _ } ->
        List.find_map
          (fun row ->
            match row with
            | [ Row.Int id; Row.Text at; _ ] -> (
                match float_of_string_opt at with
                | Some t when t >= before_batch && t <= after_batch -> Some (Int64.to_int id)
                | _ -> None)
            | _ -> None)
          rows
        |> Option.get
    | _ -> assert false
  in

  Printf.printf "\n-- compensate exactly transaction %d --\n" victim;
  sql s (Printf.sprintf "UNDO TRANSACTION %d" victim);
  sql s "SELECT * FROM accounts";
  print_endline "balances restored; the unrelated insert (account 4) untouched."
