examples/backup_vs_rewind.ml: Format List Option Printf Rw_core Rw_engine Rw_storage Rw_workload
