examples/drop_table_recovery.ml: Format Printf Rw_engine Rw_sql Rw_storage
