examples/quickstart.ml: Int64 Option Printf Rw_catalog Rw_core Rw_engine Rw_storage
