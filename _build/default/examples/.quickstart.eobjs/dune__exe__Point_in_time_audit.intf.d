examples/point_in_time_audit.mli:
