examples/undo_transaction.mli:
