examples/undo_transaction.ml: Format Int64 List Option Printf Rw_engine Rw_sql Rw_storage
