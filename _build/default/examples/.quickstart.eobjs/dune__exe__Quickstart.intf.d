examples/quickstart.mli:
