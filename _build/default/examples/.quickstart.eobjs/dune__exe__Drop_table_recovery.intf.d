examples/drop_table_recovery.mli:
