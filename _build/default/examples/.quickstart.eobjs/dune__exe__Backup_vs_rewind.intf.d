examples/backup_vs_rewind.mli:
