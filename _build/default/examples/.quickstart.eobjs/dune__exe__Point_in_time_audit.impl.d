examples/point_in_time_audit.ml: Int64 List Option Printf Rw_catalog Rw_core Rw_engine Rw_storage
