(* Backup-restore vs log rewind, head to head (the comparison behind the
   paper's Figures 7/8), on a small TPC-C-like database.

     dune exec examples/backup_vs_rewind.exe *)

module Media = Rw_storage.Media
module Sim_clock = Rw_storage.Sim_clock
module Disk = Rw_storage.Disk
module Engine = Rw_engine.Engine
module Database = Rw_engine.Database
module Backup = Rw_engine.Backup
module As_of_snapshot = Rw_core.As_of_snapshot
module Tpcc = Rw_workload.Tpcc

let seconds us = us /. 1_000_000.0

let () =
  let eng = Engine.create ~media:Media.ssd () in
  let db =
    Engine.create_database eng ~checkpoint_interval_us:1_000_000.0 ~log_cache_blocks:32 "tpcc"
  in
  let cfg = Tpcc.default_config in
  Printf.printf "loading TPC-C-like database (%d warehouses)...\n%!" cfg.Tpcc.warehouses;
  Tpcc.load db cfg;
  (* Pretend the file also contains a large cold region (history tables,
     old partitions): restore must copy it, the rewind never reads it. *)
  Disk.extend (Database.disk db) 30_000;
  let backup = Backup.take db in
  Printf.printf "full backup taken: %.1f MiB\n%!"
    (float_of_int (Backup.size_bytes backup) /. 1024.0 /. 1024.0);

  let drv = Tpcc.create db cfg in
  let t0 = Engine.now_us eng in
  ignore (Tpcc.run_mix drv ~txns:2000);
  let t1 = Engine.now_us eng in
  Printf.printf "ran 2000 transactions covering %.2f simulated seconds\n\n%!"
    (seconds (t1 -. t0));

  let target = t1 -. (0.5 *. (t1 -. t0)) in

  (* Route 1: as-of snapshot + query. *)
  let a0 = Engine.now_us eng in
  let snap = Database.create_as_of_snapshot db ~name:"half_way" ~wall_us:target in
  let low = Tpcc.stock_level snap cfg ~w:1 ~d:1 ~threshold:50 in
  let a1 = Engine.now_us eng in
  let handle = Option.get (Database.snapshot_handle snap) in
  Printf.printf "log rewind:      %8.4f s  (creation %.4f s; %d pages materialised; %d items low)\n"
    (seconds (a1 -. a0))
    (seconds (As_of_snapshot.creation_time_us handle))
    (As_of_snapshot.pages_materialised handle)
    low;

  (* Route 2: restore the backup and roll forward. *)
  let r0 = Engine.now_us eng in
  let restored = Backup.restore_as_of backup ~from:db ~wall_us:target in
  let low' = Tpcc.stock_level restored cfg ~w:1 ~d:1 ~threshold:50 in
  let r1 = Engine.now_us eng in
  Printf.printf "backup restore:  %8.4f s  (%d items low)\n" (seconds (r1 -. r0)) low';
  assert (low = low');
  Printf.printf "\nsame answer, %.0fx faster via the transaction log.\n"
    ((r1 -. r0) /. (a1 -. a0));

  (* The paper's §6.4 "generalized system": let a planner pick the route
     from the estimated costs. *)
  let module Time_travel = Rw_engine.Time_travel in
  List.iter
    (fun hint ->
      let plan = Time_travel.plan ~db ~backups:[ backup ] ~wall_us:target ~pages_hint:hint in
      Format.printf "planner, expecting to touch %6d pages: %a@." hint Time_travel.pp_plan plan)
    [ 10; 1_000; 100_000 ]
