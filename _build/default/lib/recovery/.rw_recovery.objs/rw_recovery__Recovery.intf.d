lib/recovery/recovery.mli: Hashtbl Rw_buffer Rw_storage Rw_txn Rw_wal
